# Findliburing.cmake — locate liburing and verify it is new enough for the
# wire front's io_uring backend (buffer rings + multishot recvmsg need the
# liburing 2.2+ registered-buffer-ring API and the 2.3+ recvmsg helpers).
#
# Defines:
#   liburing_FOUND
#   liburing_INCLUDE_DIR
#   liburing_LIBRARY
#   imported target liburing::liburing
#
# A liburing that is present but too old (no io_uring_setup_buf_ring /
# io_uring_prep_recvmsg_multishot) is treated as NOT found, so the build
# falls back to the recvmmsg backend instead of failing to compile.

find_path(liburing_INCLUDE_DIR NAMES liburing.h)
find_library(liburing_LIBRARY NAMES uring)

set(_sld_liburing_api_ok FALSE)
if(liburing_INCLUDE_DIR AND liburing_LIBRARY)
  include(CheckCXXSourceCompiles)
  set(CMAKE_REQUIRED_INCLUDES "${liburing_INCLUDE_DIR}")
  set(CMAKE_REQUIRED_LIBRARIES "${liburing_LIBRARY}")
  check_cxx_source_compiles("
    #include <liburing.h>
    int main() {
      struct io_uring ring;
      int err = 0;
      struct io_uring_buf_ring* br =
          io_uring_setup_buf_ring(&ring, 8, 0, 0, &err);
      struct msghdr hdr {};
      io_uring_prep_recvmsg_multishot(nullptr, -1, &hdr, 0);
      struct io_uring_recvmsg_out* out =
          io_uring_recvmsg_validate(nullptr, 0, &hdr);
      return br && out && err ? 0 : 0;
    }" SLD_LIBURING_API_OK)
  unset(CMAKE_REQUIRED_INCLUDES)
  unset(CMAKE_REQUIRED_LIBRARIES)
  if(SLD_LIBURING_API_OK)
    set(_sld_liburing_api_ok TRUE)
  endif()
endif()

include(FindPackageHandleStandardArgs)
find_package_handle_standard_args(liburing
  REQUIRED_VARS liburing_LIBRARY liburing_INCLUDE_DIR _sld_liburing_api_ok)

if(liburing_FOUND AND NOT TARGET liburing::liburing)
  add_library(liburing::liburing UNKNOWN IMPORTED)
  set_target_properties(liburing::liburing PROPERTIES
    IMPORTED_LOCATION "${liburing_LIBRARY}"
    INTERFACE_INCLUDE_DIRECTORIES "${liburing_INCLUDE_DIR}")
endif()

mark_as_advanced(liburing_INCLUDE_DIR liburing_LIBRARY)
