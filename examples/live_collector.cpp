// Online operation end-to-end: routers emit RFC 3164 datagrams with
// network jitter and reordering, a collector reassembles a time-ordered
// stream, and a StreamingDigester emits each event as soon as it closes —
// the deployment shape of the paper's Fig. 1 online component.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "core/learn.h"
#include "core/stream.h"
#include "net/config_parser.h"
#include "sim/generator.h"
#include "syslog/collector.h"

using namespace sld;

int main() {
  const sim::DatasetSpec spec = sim::DatasetASpec();
  const sim::Dataset history = sim::GenerateDataset(spec, 0, 14, 31);
  const sim::Dataset live = sim::GenerateDataset(spec, 14, 1, 32);

  std::vector<net::ParsedConfig> parsed;
  for (const std::string& cfg : history.configs) {
    parsed.push_back(net::ParseConfig(cfg));
  }
  const core::LocationDict dict = core::LocationDict::Build(parsed);
  core::OfflineLearner learner;
  core::KnowledgeBase kb = learner.Learn(history.messages, dict);

  // Wire transmission: encode to RFC 3164, add up to 2 s of delivery
  // jitter so datagrams arrive out of order, occasionally corrupt one.
  struct Arrival {
    TimeMs at;
    std::string datagram;
  };
  Rng rng(7);
  std::vector<Arrival> arrivals;
  arrivals.reserve(live.messages.size());
  for (const auto& msg : live.messages) {
    Arrival a;
    a.at = msg.time + rng.UniformInt(0, 2000);
    a.datagram = syslog::EncodeRfc3164(msg);
    if (rng.Bernoulli(0.001)) a.datagram[0] = '#';  // line noise
    arrivals.push_back(std::move(a));
  }
  std::sort(arrivals.begin(), arrivals.end(),
            [](const Arrival& a, const Arrival& b) { return a.at < b.at; });

  // Collector in front (reordering), streaming digester behind (events
  // emitted the moment they close; 30-minute idle horizon keeps latency
  // low at the cost of occasionally splitting a >30-min-quiet event).
  syslog::Collector collector(/*hold_ms=*/5000, /*year=*/2009);
  core::StreamingDigester digester(&kb, &dict, core::DigestOptions{},
                                   /*idle_close_ms=*/30 * kMsPerMinute);
  std::size_t shown = 0;
  std::size_t total_events = 0;
  std::size_t total_records = 0;
  for (const Arrival& a : arrivals) {
    collector.IngestDatagram(a.datagram);
    for (auto& rec : collector.Drain()) {
      ++total_records;
      for (const auto& ev : digester.Push(rec)) {
        ++total_events;
        if (ev.messages.size() >= 8 && shown < 10) {
          std::printf("closed: %s\n", ev.Format().c_str());
          ++shown;
        }
      }
    }
  }
  for (auto& rec : collector.Flush()) {
    ++total_records;
    total_events += digester.Push(rec).size();
  }
  total_events += digester.Flush().size();

  std::printf("...\n");
  std::printf(
      "day complete: %zu datagrams sent, %zu malformed dropped, %zu "
      "records digested into %zu events (%zu rules fired)\n",
      arrivals.size(), collector.malformed_count(), total_records,
      total_events, digester.active_rule_count());
  return 0;
}
