// Operator workflow: querying the digest, drilling into raw messages, and
// feeding expert knowledge back into the system (the Fig. 1 "Domain
// Expert" arrows).
//
//  1. digest two days of syslog and print the ops report
//  2. filter: "what link events involved router X this morning?"
//  3. drill down: retrieve the raw messages behind one digest line
//  4. adjust: name an event type and pin an expert rule, then re-digest
#include <cstdio>

#include "core/learn.h"
#include "core/priority/report.h"
#include "core/query.h"
#include "net/config_parser.h"
#include "sim/generator.h"

using namespace sld;

int main() {
  const sim::DatasetSpec spec = sim::DatasetASpec();
  const sim::Dataset history = sim::GenerateDataset(spec, 0, 14, 41);
  const sim::Dataset live = sim::GenerateDataset(spec, 14, 2, 42);

  std::vector<net::ParsedConfig> parsed;
  for (const std::string& cfg : history.configs) {
    parsed.push_back(net::ParseConfig(cfg));
  }
  const core::LocationDict dict = core::LocationDict::Build(parsed);
  core::OfflineLearner learner;
  core::KnowledgeBase kb = learner.Learn(history.messages, dict);
  core::Digester digester(&kb, &dict);
  core::DigestResult result = digester.Digest(live.messages);

  // 1. The morning report (truncated).
  core::ReportOptions opts;
  opts.top_events = 5;
  opts.top_routers = 5;
  std::fputs(core::RenderReport(result, dict, opts).c_str(), stdout);

  // 2. Query: link events on a specific router.
  core::EventFilter filter;
  filter.label_contains = "link";
  filter.min_messages = 4;
  const auto link_events = core::FilterEvents(result, dict, filter);
  std::printf("\nlink events with >= 4 messages: %zu\n", link_events.size());
  if (link_events.empty()) return 0;
  const core::DigestEvent& focus = *link_events.front();
  std::printf("focus: %s\n", focus.Format().c_str());

  // 3. Drill down: the raw syslog behind the digest line (first five).
  std::printf("\nraw messages behind it:\n");
  const auto records = core::EventRecords(focus, live.messages);
  for (std::size_t i = 0; i < records.size() && i < 5; ++i) {
    std::printf("  %s\n", syslog::FormatRecord(*records[i]).c_str());
  }
  if (records.size() > 5) {
    std::printf("  ... %zu more\n", records.size() - 5);
  }

  // 4a. Expert naming: call LSP events "transport path" events.
  kb.label_rules.push_back({"MPLS", "transport path", true});
  // 4b. Expert rule: assert that configuration changes relate to the CPU
  // spikes that follow them (an association mining may not clear 0.8 on).
  const auto cfg_tmpl =
      kb.templates.Match("SYS-5-CONFIG_I",
                         "Configured from console by admin on vty0 (x)");
  const auto cpu_tmpl = kb.templates.Match(
      "SYS-1-CPUFALLINGTHRESHOLD",
      "Threshold: Total CPU Utilization(Total/Intr) 30%/1%.");
  if (cfg_tmpl && cpu_tmpl) {
    kb.rules.AddExpertRule(*cfg_tmpl, *cpu_tmpl);
    std::printf("\npinned expert rule: config change <-> CPU falling\n");
  }
  const std::size_t before = result.events.size();
  result = digester.Digest(live.messages);
  std::printf(
      "re-digest with expert knowledge: %zu -> %zu events; MPLS events "
      "now labeled 'transport path'\n",
      before, result.events.size());
  for (const auto& ev : result.events) {
    if (ev.label.find("transport path") != std::string::npos) {
      std::printf("  e.g. %s\n", ev.Format().c_str());
      break;
    }
  }
  return 0;
}
