// Quickstart: generate a small network + workload, learn a knowledge base
// offline, digest a fresh online period, and print the top events.
//
// This is the whole SyslogDigest lifecycle in ~60 lines:
//   topology -> configs -> location dictionary
//   historical syslog -> OfflineLearner -> KnowledgeBase
//   live syslog -> Digester -> prioritized events
#include <cstdio>

#include "core/learn.h"
#include "net/config_parser.h"
#include "sim/generator.h"

int main() {
  using namespace sld;

  // A two-week history and a two-day online window on dataset A's network.
  sim::DatasetSpec spec = sim::DatasetASpec();
  const sim::Dataset history = sim::GenerateDataset(spec, 0, 14, 1);
  const sim::Dataset live = sim::GenerateDataset(spec, 14, 2, 2);
  std::printf("history: %zu messages over %d days\n",
              history.messages.size(), history.num_days);
  std::printf("live:    %zu messages over %d days\n", live.messages.size(),
              live.num_days);

  // Location dictionary from config text, as in production.
  std::vector<net::ParsedConfig> parsed;
  for (const std::string& cfg : history.configs) {
    parsed.push_back(net::ParseConfig(cfg));
  }
  const core::LocationDict dict = core::LocationDict::Build(parsed);
  std::printf("dictionary: %zu locations, %zu links, %zu paths\n",
              dict.size(), dict.links().size(), dict.paths().size());

  // Offline learning.  The knowledge base is plain text: persist it once,
  // reload it in every online process.
  core::OfflineLearner learner;
  core::KnowledgeBase learned = learner.Learn(history.messages, dict);
  core::KnowledgeBase kb =
      core::KnowledgeBase::Deserialize(learned.Serialize());
  std::printf("knowledge: %zu templates, %zu rules (%zu bytes serialized)\n",
              kb.templates.size(), kb.rules.size(),
              learned.Serialize().size());

  // Online digesting.
  core::Digester digester(&kb, &dict);
  const core::DigestResult result = digester.Digest(live.messages);
  std::printf("digest: %zu events from %zu messages (ratio %.2e, "
              "%zu active rules)\n\n",
              result.events.size(), result.message_count,
              result.CompressionRatio(), result.active_rule_count);

  std::printf("top 10 events:\n");
  for (std::size_t i = 0; i < result.events.size() && i < 10; ++i) {
    std::printf("  %2zu. %s\n", i + 1, result.events[i].Format().c_str());
  }
  return 0;
}
