// Complex network troubleshooting (§6.1 of the paper).
//
// Scenario: in the IPTV network, the secondary FRR path between two VHOs
// silently fails to establish (setup retries every five minutes); hours
// later the primary link fails, and — against design expectations — the
// PIM neighbor session drops, disrupting live TV delivery.
//
// Without SyslogDigest an operator investigating the PIM loss must guess a
// time window and sift raw syslog on every involved router.  This example
// shows what the digest gives instead: ONE event whose signature spans the
// retries, the link failure, and the downstream service churn.
#include <algorithm>
#include <cstdio>
#include <set>

#include "core/learn.h"
#include "core/priority/report.h"
#include "net/config_parser.h"
#include "sim/generator.h"

using namespace sld;

int main() {
  // Dataset B with the rare dual-failure scenario forced into the online
  // window so the demo always has one to investigate.
  sim::DatasetSpec spec = sim::DatasetBSpec();
  const sim::Dataset history = sim::GenerateDataset(spec, 0, 28, 11);
  spec.rates.pim_dual_failure = {3.0, 0};
  const sim::Dataset live = sim::GenerateDataset(spec, 28, 2, 12);

  std::vector<net::ParsedConfig> parsed;
  for (const std::string& cfg : history.configs) {
    parsed.push_back(net::ParseConfig(cfg));
  }
  const core::LocationDict dict = core::LocationDict::Build(parsed);
  core::OfflineLearner learner;
  core::KnowledgeBase kb = learner.Learn(history.messages, dict);
  core::Digester digester(&kb, &dict);
  const core::DigestResult result = digester.Digest(live.messages);

  // The incident under investigation: the (rare) dual failure.  The
  // operator's entry point is its PIM neighbor loss alarm; we use the
  // simulator's ground truth only to locate that alarm in the stream.
  const sim::GtEvent* incident = nullptr;
  for (const sim::GtEvent& gt : live.ground_truth) {
    if (gt.kind == "pim-dual-failure") {
      incident = &gt;
      break;
    }
  }
  if (incident == nullptr) {
    std::printf("no dual failure in this window\n");
    return 1;
  }
  std::size_t alarm_index = incident->message_indices.front();
  for (const std::size_t idx : incident->message_indices) {
    if (live.messages[idx].code.find("pimNeighborLoss") !=
        std::string::npos) {
      alarm_index = idx;
      break;
    }
  }
  const core::DigestEvent* pim_event = nullptr;
  std::size_t pim_rank = 0;
  for (std::size_t i = 0; i < result.events.size(); ++i) {
    const auto& msgs = result.events[i].messages;
    if (std::find(msgs.begin(), msgs.end(), alarm_index) != msgs.end()) {
      pim_event = &result.events[i];
      pim_rank = i + 1;
      break;
    }
  }
  if (pim_event == nullptr) {
    std::printf("alarm not present in any digest event\n");
    return 1;
  }
  // How completely did the digest assemble the incident?
  std::size_t covered = 0;
  for (const std::size_t idx : incident->message_indices) {
    const auto& msgs = pim_event->messages;
    if (std::find(msgs.begin(), msgs.end(), idx) != msgs.end()) ++covered;
  }
  std::printf(
      "ground truth: the dual failure produced %zu messages; the digest "
      "event holding the PIM alarm contains %zu of them (%.0f%%).\n\n",
      incident->message_indices.size(), covered,
      100.0 * static_cast<double>(covered) /
          static_cast<double>(incident->message_indices.size()));

  std::printf("PIM neighbor loss investigation\n");
  std::printf("===============================\n\n");
  std::printf("digest (rank %zu of %zu events):\n  %s\n\n", pim_rank,
              result.events.size(), pim_event->Format().c_str());

  std::set<std::string> codes;
  std::set<std::string> routers;
  std::set<std::string> facilities;
  for (const std::size_t idx : pim_event->messages) {
    codes.insert(live.messages[idx].code);
    routers.insert(live.messages[idx].router);
    facilities.insert(
        std::string(syslog::CodeFacility(live.messages[idx].code)));
  }
  std::printf(
      "the event groups %zu raw messages: %zu distinct error codes from "
      "%zu subsystems across %zu routers\n",
      pim_event->messages.size(), codes.size(), facilities.size(),
      routers.size());
  std::printf("subsystems:");
  for (const std::string& f : facilities) std::printf(" %s", f.c_str());
  std::printf("\nrouters:");
  for (const std::string& r : routers) std::printf(" %s", r.c_str());
  std::printf("\n\nevent timeline (first occurrence of each error code):\n");
  std::fputs(core::RenderTimeline(*pim_event, live.messages).c_str(),
             stdout);

  // What manual search would have faced: all messages on the involved
  // routers within +-1 hour of the PIM loss.
  TimeMs pim_time = 0;
  for (const std::size_t idx : pim_event->messages) {
    if (live.messages[idx].code.find("pimNeighborLoss") !=
        std::string::npos) {
      pim_time = live.messages[idx].time;
      break;
    }
  }
  std::size_t haystack = 0;
  for (const auto& msg : live.messages) {
    if (routers.count(msg.router) != 0 &&
        msg.time >= pim_time - kMsPerHour &&
        msg.time <= pim_time + kMsPerHour) {
      ++haystack;
    }
  }
  std::printf(
      "\nmanual alternative: a +-60 min window on these routers holds %zu "
      "messages — and the root cause (the failed secondary-path setup) "
      "started %.1f hours BEFORE the PIM loss, outside any such window.\n",
      haystack,
      static_cast<double>(pim_time - pim_event->start) / kMsPerHour);
  std::printf(
      "the digest covers %s -> %s in one line.\n",
      FormatTimestamp(pim_event->start).c_str(),
      FormatTimestamp(pim_event->end).c_str());
  return 0;
}
