// Network health monitoring and visualization (§6.2 of the paper).
//
// Renders the paper's Figures 14/15 comparison as text: a network status
// "map" for a 10-minute window built from digest events vs one built from
// raw message counts.  Raw counts spotlight the chattiest routers; the
// event view shows what is actually happening — one marker per network
// event, labeled.
#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "core/learn.h"
#include "net/config_parser.h"
#include "sim/generator.h"

using namespace sld;

namespace {

char Marker(std::size_t count) {
  if (count == 0) return '.';
  if (count <= 2) return 'o';
  if (count <= 10) return 'O';
  return '@';
}

}  // namespace

int main() {
  const sim::DatasetSpec spec = sim::DatasetASpec();
  const sim::Dataset history = sim::GenerateDataset(spec, 0, 28, 21);
  const sim::Dataset live = sim::GenerateDataset(spec, 28, 1, 22);

  std::vector<net::ParsedConfig> parsed;
  for (const std::string& cfg : history.configs) {
    parsed.push_back(net::ParseConfig(cfg));
  }
  const core::LocationDict dict = core::LocationDict::Build(parsed);
  core::OfflineLearner learner;
  core::KnowledgeBase kb = learner.Learn(history.messages, dict);
  core::Digester digester(&kb, &dict);

  // Pick the busiest 10-minute window of the day.
  const TimeMs window = 10 * kMsPerMinute;
  std::map<TimeMs, std::size_t> per_bucket;
  for (const auto& msg : live.messages) {
    ++per_bucket[(msg.time - live.epoch) / window];
  }
  TimeMs best_bucket = 0;
  std::size_t best_count = 0;
  for (const auto& [bucket, count] : per_bucket) {
    if (count > best_count) {
      best_count = count;
      best_bucket = bucket;
    }
  }
  const TimeMs w_start = live.epoch + best_bucket * window;
  const TimeMs w_end = w_start + window;
  std::vector<syslog::SyslogRecord> slice;
  for (const auto& msg : live.messages) {
    if (msg.time >= w_start && msg.time < w_end) slice.push_back(msg);
  }
  const core::DigestResult result = digester.Digest(slice);

  std::printf("network status map %s .. %s (10-minute window)\n\n",
              FormatTimestamp(w_start).c_str(),
              FormatTimestamp(w_end).c_str());

  std::map<std::string, std::size_t> raw_of;
  for (const auto& msg : slice) ++raw_of[msg.router];
  std::map<std::string, std::size_t> events_of;
  for (const core::DigestEvent& ev : result.events) {
    for (const std::uint32_t key : ev.router_keys) {
      if (key < dict.router_count()) ++events_of[dict.RouterName(key)];
    }
  }

  // Two maps over the same router grid (8 per row).
  std::vector<std::string> names;
  for (const net::Router& r : live.topo.routers) names.push_back(r.name);
  const auto print_map = [&](const char* title,
                             const std::map<std::string, std::size_t>& m) {
    std::printf("%s\n", title);
    for (std::size_t i = 0; i < names.size(); i += 8) {
      std::printf("  ");
      for (std::size_t j = i; j < std::min(i + 8, names.size()); ++j) {
        const auto it = m.find(names[j]);
        std::printf("%c ", Marker(it == m.end() ? 0 : it->second));
      }
      std::printf("\n");
    }
  };
  print_map("raw syslog view ('.'=0 'o'<=2 'O'<=10 '@'>10 messages):",
            raw_of);
  std::printf("\n");
  print_map("SyslogDigest view (markers are EVENTS, not messages):",
            events_of);

  std::printf("\n%zu raw messages vs %zu events in this window\n\n",
              slice.size(), result.events.size());
  std::printf("event board (what an operator reads):\n");
  for (std::size_t i = 0; i < result.events.size() && i < 12; ++i) {
    std::printf("  %2zu. %s\n", i + 1, result.events[i].Format().c_str());
  }

  // The paper's warning: high message counts do not mean big trouble.
  std::string chattiest;
  std::size_t chatty_count = 0;
  for (const auto& [router, count] : raw_of) {
    if (count > chatty_count) {
      chatty_count = count;
      chattiest = router;
    }
  }
  std::printf(
      "\nchattiest router this window: %s (%zu messages, %zu events) — "
      "message volume alone would steer the operator there regardless of "
      "event importance.\n",
      chattiest.c_str(), chatty_count,
      events_of.count(chattiest) ? events_of[chattiest] : 0);
  return 0;
}
