#!/usr/bin/env python3
"""Threshold gate for bench_match smoke runs.

Usage: bench_gate.py FRESH.json BASELINE.json [--max-regress PCT]

Compares a freshly produced BENCH_match.json against the committed
baseline and fails (exit 1) when:

  - cached_msgs_per_sec regressed by more than --max-regress percent
    (default 20), or
  - allocs_per_message is non-zero (the steady-state hot path must stay
    allocation-free).

Hosted runners are noisy, hence the generous default margin: the gate
catches "someone put an allocation or a lock back on the hot path"
regressions, not single-digit jitter.  Improvements always pass.
"""

import argparse
import json
import sys


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("fresh")
    parser.add_argument("baseline")
    parser.add_argument("--max-regress", type=float, default=20.0,
                        help="max allowed regression in percent")
    args = parser.parse_args()

    with open(args.fresh, encoding="utf-8") as f:
        fresh = json.load(f)
    with open(args.baseline, encoding="utf-8") as f:
        baseline = json.load(f)

    failures = []

    base_rate = float(baseline["cached_msgs_per_sec"])
    fresh_rate = float(fresh["cached_msgs_per_sec"])
    floor = base_rate * (1.0 - args.max_regress / 100.0)
    delta_pct = (fresh_rate - base_rate) / base_rate * 100.0
    print(f"cached_msgs_per_sec: fresh={fresh_rate:.3e} "
          f"baseline={base_rate:.3e} ({delta_pct:+.1f}%)")
    if fresh_rate < floor:
        failures.append(
            f"cached_msgs_per_sec {fresh_rate:.3e} is more than "
            f"{args.max_regress:.0f}% below baseline {base_rate:.3e}"
        )

    allocs = float(fresh.get("allocs_per_message", 0.0))
    print(f"allocs_per_message: {allocs}")
    if allocs > 0.0:
        failures.append(
            f"allocs_per_message is {allocs}; the steady-state match path "
            "must stay allocation-free"
        )

    if failures:
        for msg in failures:
            print(f"BENCH GATE FAIL: {msg}", file=sys.stderr)
        return 1
    print("bench gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
