#!/usr/bin/env python3
"""Threshold gate for bench smoke runs (match, throughput, learn, ...).

Usage: bench_gate.py FRESH.json BASELINE.json [--max-regress PCT]
                     [--min-speedup X] [--speedup-threads N]
                     [--float-tol REL]

Dispatches on the "benchmark" field of FRESH.json:

  match       - cached_msgs_per_sec must not regress by more than the
                noise margin, and allocs_per_message must stay zero.
  throughput  - sharded-pipeline rate at threads=1 must not regress by
                more than the noise margin; when the run carries an
                "engine" block, the Engine-layer rate must stay within
                the noise margin of driving the ShardedPipeline
                directly (a same-process relative measure, asserted on
                any host -- the refactored CLI path must cost nothing).
  ablation    - the run is deterministic (fixed seeds, no timing), so
                fresh must deep-equal the baseline: same structure,
                integers and strings exact, floats within --float-tol
                relative tolerance (absorbs cross-libm jitter only).
  learn       - "identical" must be true (the parallel learner's
                knowledge base is bit-identical to serial), the serial
                learning rate must not regress by more than the noise
                margin, and -- on multi-core hosts only -- the sweep
                point at --speedup-threads must reach --min-speedup.
                When the fresh run reports cpus == 1 the speedup
                assertion is skipped: a single-core container cannot
                show parallel speedup by construction.
  ingest      - "identical" must be true (the block reader's records
                equal the serial reader's), extra_allocs_per_msg must
                stay ~0, the threads=1 rate must not regress by more
                than the noise margin, the threads=1 speedup over the
                in-bench legacy istream reader must reach --min-speedup
                (a same-process relative measure, asserted on any
                host), and -- on multi-core hosts only -- the sweep
                point at --speedup-threads must scale >= 2x over
                threads=1.
  ckpt        - "identical" must be true (an engine restored from a
                snapshot closes byte-identical events to the live engine
                on the same continuation), encode_allocs_per_msg must
                stay ~0 (AppendRfc3164 into a reused buffer), and the
                checkpoint-save and restore rates (groups/sec) at every
                open-group sweep point shared with the baseline must not
                regress by more than the noise margin.  The smoke run
                must use the baseline's --routers/--rate-scale profile
                so per-group state sizes are comparable.
  wire        - "identical" must be true (every wire-front backend
                delivered the byte-identical payload stream from the
                identical send sequence), every backend's
                allocs_per_datagram must stay ~0, the poll (recvmmsg)
                backend's speedup over the in-bench legacy
                one-datagram-per-poll loop must reach the 2x floor (a
                same-process relative measure, asserted on any host;
                --min-speedup raises but never lowers it), and each
                backend's absolute datagrams/sec is compared against
                the baseline only when the fresh host reports the same
                cpu count (loopback drain rate does not travel across
                host shapes).
  e2e         - "ledger_ok" must be true (the slgen fault ledger and the
                receiving engine's collector counters reconciled
                exactly), allocs_per_msg must stay ~0 (the render +
                sendmmsg path reuses its slab), speedup_vs_legacy over
                the seed's paced single-sendto replay loop must reach
                the 5x floor (--min-speedup raises but never lowers
                it), the ingest-to-emit latency histogram must hold
                samples with p99 under the ceiling, and -- on
                multi-core hosts only -- slgen must not fall below 0.9x
                of the in-bench unpaced single-sendto loop (on one cpu
                the sender threads merely timeslice one core, so the
                fan-out cannot help by construction).  Absolute slgen
                msgs/s is compared against the baseline only when the
                fresh host reports the same cpu count.
  kernels     - "identical" must be true (every SIMD level produced the
                same checksums as the scalar oracle) and steady_allocs
                must be zero on every host.  When the fresh run reports
                best_level == "avx2", the vectorizable kernels must
                also beat their own scalar run by a per-kernel floor
                (an in-process relative measure, so it holds on any
                AVX2 host regardless of absolute speed); hash_bytes,
                equal_date10 and parse_clock8 are agreement-only --
                hash_bytes is value-stable by a serial combine, and the
                two fixed-width parsers are too small to gate reliably.

Noise model: when a metric carries a per-rep array ("reps",
"serial_reps"), the compared statistic is the median of the reps, and
the allowed regression is widened to cover the observed run-to-run
spread: margin = max(--max-regress, 3 * max(fresh_spread,
baseline_spread)) where spread = (max - min) / median over one run's
reps, in percent.  A noisy runner therefore widens its own gate instead
of flaking, while a quiet runner keeps the tight default.  Improvements
always pass.
"""

import argparse
import json
import sys


def median(values):
    ordered = sorted(float(v) for v in values)
    n = len(ordered)
    if n == 0:
        raise ValueError("median of empty rep list")
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def spread_pct(values):
    """Run-to-run spread of one rep list, percent of its median."""
    ordered = sorted(float(v) for v in values)
    if len(ordered) < 2:
        return 0.0
    mid = median(ordered)
    if mid <= 0:
        return 0.0
    return (ordered[-1] - ordered[0]) / mid * 100.0


class Gate:
    def __init__(self, max_regress_pct):
        self.max_regress_pct = max_regress_pct
        self.failures = []

    def check_rate(self, name, fresh_reps, baseline_reps):
        """Median-of-N comparison with a spread-widened margin."""
        fresh_mid = median(fresh_reps)
        base_mid = median(baseline_reps)
        noise = max(spread_pct(fresh_reps), spread_pct(baseline_reps))
        margin = max(self.max_regress_pct, 3.0 * noise)
        floor = base_mid * (1.0 - margin / 100.0)
        delta = (fresh_mid - base_mid) / base_mid * 100.0
        print(f"{name}: fresh={fresh_mid:.3e} baseline={base_mid:.3e} "
              f"({delta:+.1f}%, margin {margin:.0f}%)")
        if fresh_mid < floor:
            self.failures.append(
                f"{name} {fresh_mid:.3e} is more than {margin:.0f}% below "
                f"baseline {base_mid:.3e}")

    def fail(self, message):
        self.failures.append(message)


def reps_of(obj, scalar_key, reps_key):
    """Per-rep list when present, else the scalar as a 1-rep list."""
    reps = obj.get(reps_key)
    if reps:
        return [float(v) for v in reps]
    return [float(obj[scalar_key])]


def sweep_entry(fresh, threads):
    for entry in fresh.get("sweep", []):
        if int(entry.get("threads", 0)) == threads:
            return entry
    return None


def gate_match(gate, fresh, baseline, args):
    gate.check_rate("cached_msgs_per_sec",
                    reps_of(fresh, "cached_msgs_per_sec", "cached_reps"),
                    reps_of(baseline, "cached_msgs_per_sec", "cached_reps"))
    allocs = float(fresh.get("allocs_per_message", 0.0))
    print(f"allocs_per_message: {allocs}")
    if allocs > 0.0:
        gate.fail(f"allocs_per_message is {allocs}; the steady-state match "
                  "path must stay allocation-free")


def gate_throughput(gate, fresh, baseline, args):
    fresh_base = sweep_entry(fresh, 1)
    baseline_base = sweep_entry(baseline, 1)
    if fresh_base is None or baseline_base is None:
        gate.fail("throughput sweep has no threads=1 entry to compare")
        return
    gate.check_rate("sharded_msgs_per_sec[threads=1]",
                    reps_of(fresh_base, "msgs_per_sec", "reps"),
                    reps_of(baseline_base, "msgs_per_sec", "reps"))

    # Engine-vs-driver: both rep lists come from the same fresh process
    # with interleaved runs, so the comparison is immune to host speed
    # and holds on single-core runners too.  "Baseline" here is the
    # driver reps, not the committed file.
    engine = fresh.get("engine")
    if engine is None:
        if baseline.get("engine") is not None:
            gate.fail("baseline has an engine-vs-driver block but the "
                      "fresh run does not; the Engine measurement was "
                      "dropped")
        return
    threads = int(engine.get("threads", 0))
    gate.check_rate(f"engine_msgs_per_sec[threads={threads}] vs driver",
                    [float(v) for v in engine["reps"]],
                    [float(v) for v in engine["driver_reps"]])


def deep_compare(gate, path, fresh, baseline, float_tol):
    """Structural equality with relative float tolerance."""
    if isinstance(baseline, dict):
        if not isinstance(fresh, dict):
            gate.fail(f"{path}: expected object, got {type(fresh).__name__}")
            return
        for key in sorted(set(baseline) | set(fresh)):
            if key not in fresh:
                gate.fail(f"{path}.{key}: missing from fresh run")
            elif key not in baseline:
                gate.fail(f"{path}.{key}: not in baseline (new field -- "
                          "regenerate the baseline)")
            else:
                deep_compare(gate, f"{path}.{key}", fresh[key],
                             baseline[key], float_tol)
    elif isinstance(baseline, list):
        if not isinstance(fresh, list):
            gate.fail(f"{path}: expected array, got {type(fresh).__name__}")
        elif len(fresh) != len(baseline):
            gate.fail(f"{path}: {len(fresh)} entries, baseline has "
                      f"{len(baseline)}")
        else:
            for i, (f, b) in enumerate(zip(fresh, baseline)):
                deep_compare(gate, f"{path}[{i}]", f, b, float_tol)
    elif isinstance(baseline, bool) or isinstance(fresh, bool):
        if fresh is not baseline:
            gate.fail(f"{path}: {fresh} != baseline {baseline}")
    elif isinstance(baseline, float) or isinstance(fresh, float):
        f, b = float(fresh), float(baseline)
        if abs(f - b) > float_tol * max(abs(f), abs(b), 1.0):
            gate.fail(f"{path}: {f!r} differs from baseline {b!r} beyond "
                      f"relative tolerance {float_tol}")
    elif fresh != baseline:
        gate.fail(f"{path}: {fresh!r} != baseline {baseline!r}")


def gate_ablation(gate, fresh, baseline, args):
    name = fresh.get("name", "?")
    print(f"ablation '{name}': deterministic deep compare "
          f"(float tol {args.float_tol})")
    deep_compare(gate, name, fresh, baseline, args.float_tol)


def gate_learn(gate, fresh, baseline, args):
    if not fresh.get("identical", False):
        gate.fail("learn bench reports identical=false: the parallel "
                  "learner's knowledge base diverged from serial")
    gate.check_rate("serial_learn_msgs_per_sec",
                    reps_of(fresh, "serial_msgs_per_sec", "serial_reps"),
                    reps_of(baseline, "serial_msgs_per_sec", "serial_reps"))

    cpus = int(fresh.get("cpus", 0))
    if cpus <= 1:
        print(f"speedup assertion skipped: fresh run reports cpus={cpus} "
              "(single-core host cannot show parallel speedup)")
        return
    entry = sweep_entry(fresh, args.speedup_threads)
    if entry is None:
        gate.fail(f"learn sweep has no threads={args.speedup_threads} entry "
                  "for the speedup assertion")
        return
    speedup = float(entry.get("speedup", 0.0))
    print(f"learn speedup at {args.speedup_threads} threads: "
          f"{speedup:.2f}x (cpus={cpus}, need >= {args.min_speedup:.2f}x)")
    if speedup < args.min_speedup:
        gate.fail(f"learn speedup {speedup:.2f}x at {args.speedup_threads} "
                  f"threads is below the {args.min_speedup:.2f}x floor on a "
                  f"{cpus}-cpu host")


def gate_ingest(gate, fresh, baseline, args):
    if not fresh.get("identical", False):
        gate.fail("ingest bench reports identical=false: the block reader's "
                  "records diverged from the serial reader")
    extra = float(fresh.get("extra_allocs_per_msg", 0.0))
    print(f"extra_allocs_per_msg: {extra}")
    if extra > 0.01:
        gate.fail(f"extra_allocs_per_msg is {extra}; the steady-state parse "
                  "must allocate only the records' own string fields")

    fresh_base = sweep_entry(fresh, 1)
    baseline_base = sweep_entry(baseline, 1)
    if fresh_base is None or baseline_base is None:
        gate.fail("ingest sweep has no threads=1 entry to compare")
        return
    gate.check_rate("ingest_msgs_per_sec[threads=1]",
                    reps_of(fresh_base, "msgs_per_sec", "reps"),
                    reps_of(baseline_base, "msgs_per_sec", "reps"))

    # Single-thread speedup over the in-bench legacy istream reader: both
    # sides run in the same process on the same bytes, so this holds on
    # any host, single-core included.
    speedup = float(fresh_base.get("speedup", 0.0))
    print(f"ingest speedup vs legacy reader at 1 thread: {speedup:.2f}x "
          f"(need >= {args.min_speedup:.2f}x)")
    if speedup < args.min_speedup:
        gate.fail(f"ingest speedup {speedup:.2f}x over the legacy istream "
                  f"reader is below the {args.min_speedup:.2f}x floor")

    cpus = int(fresh.get("cpus", 0))
    if cpus <= 1:
        print(f"scaling assertion skipped: fresh run reports cpus={cpus} "
              "(single-core host cannot show parallel speedup)")
        return
    entry = sweep_entry(fresh, args.speedup_threads)
    if entry is None:
        gate.fail(f"ingest sweep has no threads={args.speedup_threads} "
                  "entry for the scaling assertion")
        return
    scaling = float(entry.get("scaling", 0.0))
    print(f"ingest scaling at {args.speedup_threads} threads: "
          f"{scaling:.2f}x over threads=1 (cpus={cpus}, need >= 2.00x)")
    if scaling < 2.0:
        gate.fail(f"ingest scaling {scaling:.2f}x at {args.speedup_threads} "
                  f"threads is below the 2.00x floor on a {cpus}-cpu host")


# avx2-over-scalar floors for the kernels whose hot loop actually
# vectorizes.  Measured headroom on the reference AVX2 host: find_newline
# 2.8x, split_whitespace 1.8x, validate_digits 2.5x -- the floors sit
# well below so runner noise cannot flake the gate, while still catching
# a dispatch wiring bug (which would pin every ratio to ~1.0x).
KERNEL_SPEEDUP_FLOORS = {
    "find_newline": 1.4,
    "split_whitespace": 1.15,
    "validate_digits": 1.4,
}


def kernel_level_reps(entry, level):
    for lv in entry.get("levels", []):
        if lv.get("level") == level:
            return reps_of(lv, "gb_per_sec", "reps")
    return None


def gate_kernels(gate, fresh, baseline, args):
    if not fresh.get("identical", False):
        gate.fail("kernels bench reports identical=false: a SIMD level "
                  "diverged from the scalar oracle")
    allocs = int(fresh.get("steady_allocs", -1))
    print(f"steady_allocs: {allocs}")
    if allocs != 0:
        gate.fail(f"steady_allocs is {allocs}; the kernel hot loops must "
                  "stay allocation-free after warm-up")

    best = fresh.get("best_level", "scalar")
    if best != "avx2":
        print(f"speedup floors skipped: fresh host dispatches at "
              f"'{best}' (floors are asserted only under avx2)")
        return
    for entry in fresh.get("kernels", []):
        name = entry.get("name", "?")
        floor = KERNEL_SPEEDUP_FLOORS.get(name)
        if floor is None:
            continue
        scalar = kernel_level_reps(entry, "scalar")
        avx2 = kernel_level_reps(entry, "avx2")
        if not scalar or not avx2:
            gate.fail(f"kernel '{name}' is missing a scalar or avx2 level "
                      "for the speedup assertion")
            continue
        speedup = median(avx2) / median(scalar)
        print(f"kernel {name}: avx2/scalar {speedup:.2f}x "
              f"(need >= {floor:.2f}x)")
        if speedup < floor:
            gate.fail(f"kernel '{name}' avx2 speedup {speedup:.2f}x is "
                      f"below the {floor:.2f}x floor on an avx2 host")


# The acceptance floor for the batched wire front: >= 2x over the seed
# one-datagram-per-poll loop.  --min-speedup can only tighten it.
WIRE_SPEEDUP_FLOOR = 2.0


def wire_backend(run, name):
    for entry in run.get("backends", []):
        if entry.get("backend") == name:
            return entry
    return None


def gate_wire(gate, fresh, baseline, args):
    if not fresh.get("identical", False):
        gate.fail("wire bench reports identical=false: a wire-front "
                  "backend delivered a different byte stream than the "
                  "legacy receive loop")

    backends = fresh.get("backends", [])
    if not backends:
        gate.fail("wire bench reports no backends; nothing was gated")
        return
    for entry in backends:
        name = entry.get("backend", "?")
        allocs = float(entry.get("allocs_per_datagram", -1.0))
        print(f"allocs_per_datagram[{name}]: {allocs}")
        if allocs < 0.0 or allocs > 0.01:
            gate.fail(f"backend '{name}' allocs_per_datagram is {allocs}; "
                      "the steady-state datagram path must stay "
                      "allocation-free")

    # In-process speedup of the batched recvmmsg backend over the seed
    # loop: both sides drain the same loopback bursts in the same
    # process, so the floor holds on any host, single-core included.
    poll = wire_backend(fresh, "poll")
    if poll is None:
        gate.fail("wire bench has no poll (recvmmsg) backend entry for "
                  "the speedup assertion")
    else:
        floor = max(WIRE_SPEEDUP_FLOOR, args.min_speedup)
        speedup = float(poll.get("speedup_vs_legacy", 0.0))
        print(f"wire speedup vs legacy one-datagram-per-poll loop: "
              f"{speedup:.2f}x (need >= {floor:.2f}x)")
        if speedup < floor:
            gate.fail(f"wire poll-backend speedup {speedup:.2f}x over the "
                      f"legacy receive loop is below the {floor:.2f}x "
                      "floor")

    # Absolute drain rates only travel between same-shaped hosts.
    fresh_cpus = int(fresh.get("cpus", 0))
    base_cpus = int(baseline.get("cpus", 0))
    if fresh_cpus != base_cpus:
        print(f"absolute-rate comparison skipped: fresh host has "
              f"{fresh_cpus} cpus, baseline has {base_cpus}")
        return
    gate.check_rate("legacy_dgrams_per_sec",
                    reps_of(fresh, "legacy_dgrams_per_sec", "legacy_reps"),
                    reps_of(baseline, "legacy_dgrams_per_sec",
                            "legacy_reps"))
    for entry in backends:
        name = entry.get("backend", "?")
        base = wire_backend(baseline, name)
        if base is None:
            print(f"backend '{name}' has no baseline entry; absolute rate "
                  "not gated (relative floors above still applied)")
            continue
        gate.check_rate(f"wire_dgrams_per_sec[{name}]",
                        reps_of(entry, "dgrams_per_sec", "reps"),
                        reps_of(base, "dgrams_per_sec", "reps"))


def ckpt_entry(run, open_groups):
    for entry in run.get("sweep", []):
        if int(entry.get("open_groups", 0)) == open_groups:
            return entry
    return None


def gate_ckpt(gate, fresh, baseline, args):
    if not fresh.get("identical", False):
        gate.fail("ckpt bench reports identical=false: a restored engine "
                  "diverged from the live one on the same continuation")
    allocs = float(fresh.get("encode_allocs_per_msg", 0.0))
    print(f"encode_allocs_per_msg: {allocs}")
    if allocs > 0.01:
        gate.fail(f"encode_allocs_per_msg is {allocs}; AppendRfc3164 into "
                  "a reused buffer must stay allocation-free")

    # The smoke run sweeps a subset of the baseline's open-group points
    # (the exact counts overshoot the target by a few groups, so entries
    # are matched on the requested order of magnitude: each fresh point
    # is paired with the baseline point nearest to it).
    compared = 0
    for entry in fresh.get("sweep", []):
        n = int(entry.get("open_groups", 0))
        base = min(
            baseline.get("sweep", []),
            key=lambda b: abs(int(b.get("open_groups", 0)) - n),
            default=None)
        if base is None:
            continue
        bn = int(base.get("open_groups", 0))
        if abs(bn - n) > max(n, bn) * 0.2:
            continue  # no baseline point at this order of magnitude
        compared += 1
        gate.check_rate(f"ckpt_save_groups_per_sec[{n}]",
                        reps_of(entry, "save_groups_per_sec",
                                "save_rate_reps"),
                        reps_of(base, "save_groups_per_sec",
                                "save_rate_reps"))
        gate.check_rate(f"ckpt_restore_groups_per_sec[{n}]",
                        reps_of(entry, "restore_groups_per_sec",
                                "restore_rate_reps"),
                        reps_of(base, "restore_groups_per_sec",
                                "restore_rate_reps"))
    if compared == 0:
        gate.fail("ckpt sweep shares no open-group point with the "
                  "baseline; nothing was gated")


# Acceptance floors for the end-to-end soak: slgen throughput over the
# seed's paced replay sender, its ratio to the unpaced single-sendto
# loop, and the ingest-to-emit latency p99 ceiling (seconds).  The p99
# ceiling is generous -- the soak holds records for a few virtual
# seconds by design -- and exists to catch a stalled pump or an
# unbounded tag backlog, not to benchmark the host.
E2E_SPEEDUP_FLOOR = 5.0
E2E_UNPACED_FLOOR = 0.9
E2E_P99_CEILING_S = 15.0


def gate_e2e(gate, fresh, baseline, args):
    if not fresh.get("ledger_ok", False):
        gate.fail("e2e bench reports ledger_ok=false: the slgen fault "
                  "ledger and the engine's collector counters did not "
                  "reconcile")

    allocs = float(fresh.get("allocs_per_msg", -1.0))
    print(f"allocs_per_msg: {allocs}")
    if allocs < 0.0 or allocs > 0.01:
        gate.fail(f"allocs_per_msg is {allocs}; the steady-state render + "
                  "sendmmsg path must stay allocation-free")

    floor = max(E2E_SPEEDUP_FLOOR, args.min_speedup)
    speedup = float(fresh.get("speedup_vs_legacy", 0.0))
    print(f"e2e speedup vs seed paced replay sender: {speedup:.2f}x "
          f"(need >= {floor:.2f}x)")
    if speedup < floor:
        gate.fail(f"e2e slgen speedup {speedup:.2f}x over the seed replay "
                  f"sender is below the {floor:.2f}x floor")

    cpus = int(fresh.get("cpus", 0))
    unpaced = float(fresh.get("speedup_vs_unpaced", 0.0))
    if cpus <= 1:
        print(f"unpaced-floor assertion skipped: fresh run reports "
              f"cpus={cpus} (sender threads timeslice one core)")
    else:
        print(f"e2e speedup vs unpaced single-sendto loop: {unpaced:.2f}x "
              f"(need >= {E2E_UNPACED_FLOOR:.2f}x)")
        if unpaced < E2E_UNPACED_FLOOR:
            gate.fail(f"e2e slgen at {unpaced:.2f}x of the unpaced "
                      f"single-sendto loop is below the "
                      f"{E2E_UNPACED_FLOOR:.2f}x floor on a {cpus}-cpu "
                      "host")

    latency = fresh.get("latency", {})
    samples = int(latency.get("samples", 0))
    p99 = float(latency.get("p99_s", -1.0))
    print(f"e2e latency: {samples} samples, p99 {p99:.3f}s "
          f"(ceiling {E2E_P99_CEILING_S:.0f}s)")
    if samples <= 0:
        gate.fail("e2e soak recorded no ingest-to-emit latency samples; "
                  "the latency hook is not wired through")
    elif p99 < 0.0 or p99 > E2E_P99_CEILING_S:
        gate.fail(f"e2e latency p99 {p99:.3f}s breaches the "
                  f"{E2E_P99_CEILING_S:.0f}s ceiling")

    base_cpus = int(baseline.get("cpus", 0))
    if cpus != base_cpus:
        print(f"absolute-rate comparison skipped: fresh host has {cpus} "
              f"cpus, baseline has {base_cpus}")
        return
    gate.check_rate("slgen_msgs_per_s",
                    reps_of(fresh, "slgen_msgs_per_s", "slgen_reps"),
                    reps_of(baseline, "slgen_msgs_per_s", "slgen_reps"))


GATES = {
    "match": gate_match,
    "throughput": gate_throughput,
    "learn": gate_learn,
    "ingest": gate_ingest,
    "kernels": gate_kernels,
    "ablation": gate_ablation,
    "ckpt": gate_ckpt,
    "wire": gate_wire,
    "e2e": gate_e2e,
}


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("fresh")
    parser.add_argument("baseline")
    parser.add_argument("--max-regress", type=float, default=20.0,
                        help="base allowed regression in percent (widened "
                             "by the per-rep noise model when reps exist)")
    parser.add_argument("--min-speedup", type=float, default=1.5,
                        help="learn: required parallel speedup on multi-core "
                             "hosts; ingest: required 1-thread speedup over "
                             "the legacy reader")
    parser.add_argument("--speedup-threads", type=int, default=4,
                        help="learn/ingest: sweep point the speedup/scaling "
                             "assertion reads")
    parser.add_argument("--float-tol", type=float, default=1e-6,
                        help="ablation: relative tolerance for float "
                             "fields (integers compare exactly)")
    args = parser.parse_args()

    with open(args.fresh, encoding="utf-8") as f:
        fresh = json.load(f)
    with open(args.baseline, encoding="utf-8") as f:
        baseline = json.load(f)

    kind = fresh.get("benchmark", "match")
    if baseline.get("benchmark", "match") != kind:
        print(f"BENCH GATE FAIL: fresh is '{kind}' but baseline is "
              f"'{baseline.get('benchmark')}'", file=sys.stderr)
        return 1
    handler = GATES.get(kind)
    if handler is None:
        print(f"BENCH GATE FAIL: unknown benchmark kind '{kind}'",
              file=sys.stderr)
        return 1

    gate = Gate(args.max_regress)
    handler(gate, fresh, baseline, args)

    if gate.failures:
        for msg in gate.failures:
            print(f"BENCH GATE FAIL: {msg}", file=sys.stderr)
        return 1
    print(f"bench gate passed ({kind})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
