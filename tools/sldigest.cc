// sldigest — command-line front end for the SyslogDigest library.
//
//   sldigest gen     --dataset A --days 14 [--day0 0] [--seed 1]
//                    --out msgs.log --configs DIR
//       Generates a synthetic dataset: a syslog archive plus one router
//       config file per router under DIR.
//
//   sldigest learn   --configs DIR --history msgs.log --kb kb.txt
//                    [--window-s 120] [--sweep] [--learn-threads N]
//       Offline learning: templates, temporal patterns, rules, and
//       signature frequencies, written as a knowledge-base file.  The
//       learned KB is identical at any --learn-threads value.
//
//   sldigest digest  --configs DIR --kb kb.txt --in live.log
//                    [--report] [--csv out.csv] [--top N]
//       Online digesting: prints digest lines (or a full report) and can
//       export CSV.
//
//   sldigest serve   --configs DIR --kb kb.txt [--port N]
//   sldigest serve   --tenant NAME:CONFIGS:KB:PORT [--tenant ...]
//       Live UDP mode.  With repeated --tenant specs one process serves
//       several networks at once: per-tenant engines over a shared pool
//       (see src/engine/).
//
//   sldigest inspect --kb kb.txt [--configs DIR]
//       Dumps the learned domain knowledge in human-readable form.
//
//   sldigest events  --checkpoint-dir DIR
//       Dumps a durable event log (written by serve --checkpoint-dir) as
//       "seq|event" lines.
//
// The digest/stream/serve commands are thin drivers over engine::Engine;
// all collector -> digester wiring lives there.
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "ckpt/event_codec.h"
#include "ckpt/eventlog.h"
#include "common/simd.h"
#include "core/learn.h"
#include "core/priority/report.h"
#include "engine/engine.h"
#include "engine/host.h"
#include "flags.h"
#include "obs/registry.h"
#include "sim/generator.h"
#include "syslog/archive.h"
#include "syslog/collector.h"
#include "syslog/ingest.h"
#include "syslog/udp.h"
#include "wirefront/wirefront.h"

namespace {

using namespace sld;
using tools::Flags;

// --simd LEVEL pins the kernel dispatch level before any command runs
// (the SLD_SIMD env var was already applied at static init; the flag
// wins).  Unknown names are fatal, unlike the env var, because a typo'd
// flag is an operator error; a level above the host's capability clamps
// down with a warning so scripts can ask for avx2 unconditionally.
int ApplySimdFlag(const Flags& flags) {
  if (!flags.Has("simd")) return 0;
  const std::string name = flags.Get("simd");
  if (name == "native" || name == "auto") {
    simd::SetLevel(simd::MaxSupported());
    return 0;
  }
  const auto want = simd::LevelFromName(name);
  if (!want) {
    std::fprintf(stderr, "--simd %s: want scalar|sse2|avx2|native\n",
                 name.c_str());
    return 2;
  }
  const simd::Level got = simd::SetLevel(*want);
  if (got != *want) {
    std::fprintf(stderr, "--simd %s not supported on this cpu; using %s\n",
                 name.c_str(), simd::LevelName(got));
  }
  return 0;
}

// Records the active dispatch level in metrics snapshots (gauge value is
// the numeric simd::Level: 0=scalar 1=sse2 2=avx2).
void RecordSimdLevel(obs::Registry* reg) {
  if (reg == nullptr) return;
  reg->AddGauge("simd_level",
                "Active SIMD dispatch level (0=scalar 1=sse2 2=avx2)")
      ->Set(static_cast<std::int64_t>(simd::ActiveLevel()));
}

// One startup line so serve/stream logs record what actually ran.
void LogSimdLevel() {
  std::fprintf(stderr, "simd: %s\n", simd::LevelName(simd::ActiveLevel()));
}

// Shared --metrics-out handling: when the flag is set, snapshots of `reg`
// are written to PATH (JSON) and PATH.prom (Prometheus text).  Periodic()
// rewrites them at most once per `interval_s` of wall clock; Final()
// always writes.
class MetricsWriter {
 public:
  MetricsWriter(Flags& flags, obs::Registry* reg)
      : reg_(reg),
        path_(flags.Get("metrics-out")),
        interval_s_(flags.GetInt("metrics-interval-s", 10)) {}

  bool enabled() const { return !path_.empty(); }

  void Periodic() {
    if (!enabled()) return;
    const auto now = std::chrono::steady_clock::now();
    if (wrote_once_ &&
        now - last_write_ < std::chrono::seconds(interval_s_)) {
      return;
    }
    Final();
    last_write_ = now;
    wrote_once_ = true;
  }

  void Final() {
    if (!enabled()) return;
    if (!obs::WriteSnapshotFiles(reg_->Collect(), path_)) {
      std::fprintf(stderr, "cannot write metrics to %s\n", path_.c_str());
    }
  }

 private:
  obs::Registry* reg_;
  std::string path_;
  long interval_s_;
  bool wrote_once_ = false;
  std::chrono::steady_clock::time_point last_write_;
};

// Shared archive ingest for every record-consuming mode: the parallel
// block reader behind --ingest-threads (0 = one per core; any value
// yields bit-identical records), ingest_* metrics when a registry is
// given, and a stderr warning when malformed lines were skipped — bad
// input is no longer silently dropped.
std::vector<syslog::SyslogRecord> ReadRecordsCli(
    Flags& flags, const std::string& path, obs::Registry* metrics,
    bool& ok, std::size_t* malformed_out = nullptr) {
  syslog::IngestOptions opts;
  opts.threads = static_cast<int>(flags.GetInt("ingest-threads", 1));
  opts.metrics = metrics;
  syslog::IngestStats stats;
  auto records = syslog::ReadArchiveFileParallel(path, opts, &stats, &ok);
  if (!ok) {
    std::fprintf(stderr, "cannot read %s\n", path.c_str());
    return records;
  }
  if (stats.malformed > 0) {
    std::fprintf(stderr, "warning: skipped %zu malformed line(s) in %s\n",
                 stats.malformed, path.c_str());
  }
  if (malformed_out != nullptr) *malformed_out = stats.malformed;
  return records;
}

int CmdGen(Flags& flags) {
  const std::string dataset = flags.Get("dataset", "A");
  const std::string out = flags.Require("out");
  const std::string configs = flags.Require("configs");
  if (!flags.ok()) return 2;
  sim::DatasetSpec spec =
      dataset == "B" ? sim::DatasetBSpec() : sim::DatasetASpec();
  const sim::Dataset ds = sim::GenerateDataset(
      spec, static_cast<int>(flags.GetInt("day0", 0)),
      static_cast<int>(flags.GetInt("days", 14)),
      static_cast<std::uint64_t>(flags.GetInt("seed", 1)));
  if (!syslog::WriteArchiveFile(out, ds.messages)) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  std::filesystem::create_directories(configs);
  for (std::size_t i = 0; i < ds.configs.size(); ++i) {
    const std::string path =
        configs + "/" + ds.topo.routers[i].name + ".cfg";
    std::ofstream cfg(path);
    cfg << ds.configs[i];
  }
  std::printf("wrote %zu messages to %s and %zu configs to %s/\n",
              ds.messages.size(), out.c_str(), ds.configs.size(),
              configs.c_str());
  return 0;
}

int CmdLearn(Flags& flags) {
  const std::string configs = flags.Require("configs");
  const std::string history = flags.Require("history");
  const std::string kb_path = flags.Require("kb");
  if (!flags.ok()) return 2;
  std::string cfg_error;
  const auto parsed_configs = engine::LoadConfigDir(configs, &cfg_error);
  if (!cfg_error.empty()) {
    std::fprintf(stderr, "%s\n", cfg_error.c_str());
    return 1;
  }
  const core::LocationDict dict = core::LocationDict::Build(parsed_configs);
  obs::Registry metrics;
  MetricsWriter metrics_out(flags, &metrics);
  RecordSimdLevel(metrics_out.enabled() ? &metrics : nullptr);
  std::size_t malformed = 0;
  bool ok = true;
  const auto records = ReadRecordsCli(
      flags, history, metrics_out.enabled() ? &metrics : nullptr, ok,
      &malformed);
  if (!ok) return 1;
  core::OfflineLearnerParams params;
  params.rules.window_ms = flags.GetInt("window-s", 120) * kMsPerSecond;
  params.sweep_temporal = flags.Has("sweep");
  // 1 = serial; 0 = one thread per core.  Any value learns the same KB.
  params.threads = static_cast<int>(flags.GetInt("learn-threads", 1));
  core::OfflineLearner learner(params);
  if (metrics_out.enabled()) learner.BindMetrics(&metrics);
  core::LearnTimings timings;
  const core::KnowledgeBase kb =
      learner.Learn(records, dict, nullptr, &timings);
  metrics_out.Final();
  std::ofstream out(kb_path);
  out << kb.Serialize();
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", kb_path.c_str());
    return 1;
  }
  std::printf(
      "learned from %zu messages (%zu malformed skipped): %zu templates, "
      "%zu rules, alpha=%g beta=%g in %.2fs -> %s\n",
      records.size(), malformed, kb.templates.size(), kb.rules.size(),
      kb.temporal_params.alpha, kb.temporal_params.beta, timings.total_s,
      kb_path.c_str());
  return 0;
}

int CmdDigest(Flags& flags) {
  const std::string configs = flags.Require("configs");
  const std::string kb_path = flags.Require("kb");
  const std::string in_path = flags.Require("in");
  if (!flags.ok()) return 2;
  obs::Registry metrics;
  MetricsWriter metrics_out(flags, &metrics);
  RecordSimdLevel(metrics_out.enabled() ? &metrics : nullptr);
  engine::EngineOptions opts;
  opts.shards =
      static_cast<std::size_t>(std::max(1L, flags.GetInt("threads", 1)));
  opts.metrics = metrics_out.enabled() ? &metrics : nullptr;
  std::string error;
  const auto eng = engine::Engine::Load(configs, kb_path, opts, &error);
  if (eng == nullptr) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  bool ok = true;
  const auto records = ReadRecordsCli(
      flags, in_path, metrics_out.enabled() ? &metrics : nullptr, ok);
  if (!ok) return 1;
  const core::DigestResult result = eng->Digest(records);
  metrics_out.Final();
  if (flags.Has("report")) {
    std::fputs(core::RenderReport(result, eng->dict()).c_str(), stdout);
  } else {
    const std::size_t top = static_cast<std::size_t>(
        flags.GetInt("top", static_cast<long>(result.events.size())));
    for (std::size_t i = 0; i < result.events.size() && i < top; ++i) {
      std::printf("%s\n", result.events[i].Format().c_str());
    }
  }
  if (flags.Has("csv")) {
    std::ofstream csv(flags.Get("csv"));
    csv << core::ToCsv(result);
  }
  return 0;
}

// Streaming mode over an archive file: events print the moment they
// close.  Records route through the engine's Collector first — the same
// reorder/dedup/loss-accounting front the live UDP mode uses — so the
// run is a faithful end-to-end simulation and the collector_* metrics
// reconcile: accepted = released + buffered, and ingested
// (accepted + late + malformed + duplicates) equals the archive size.
int CmdStream(Flags& flags) {
  const std::string configs = flags.Require("configs");
  const std::string kb_path = flags.Require("kb");
  const std::string in_path = flags.Require("in");
  if (!flags.ok()) return 2;
  obs::Registry metrics;
  MetricsWriter metrics_out(flags, &metrics);
  const bool want_metrics = metrics_out.enabled() || flags.Has("stats");
  LogSimdLevel();
  RecordSimdLevel(want_metrics ? &metrics : nullptr);
  engine::EngineOptions opts;
  opts.shards =
      static_cast<std::size_t>(std::max(1L, flags.GetInt("threads", 1)));
  opts.hold_ms = flags.GetInt("hold-ms", 5000);
  opts.idle_close_ms = flags.GetInt("idle-close-s", 1800) * kMsPerSecond;
  opts.metrics = want_metrics ? &metrics : nullptr;
  std::string error;
  const auto eng = engine::Engine::Load(configs, kb_path, opts, &error);
  if (eng == nullptr) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 2;
  }
  bool ok = true;
  const auto records = ReadRecordsCli(
      flags, in_path, want_metrics ? &metrics : nullptr, ok);
  if (!ok) return 1;
  eng->SetEventSink([](const core::DigestEvent& ev) {
    std::printf("%s\n", ev.Format().c_str());
  });
  for (const auto& rec : records) {
    eng->IngestRecord(rec);
    eng->Pump();
    metrics_out.Periodic();
  }
  eng->Finish();
  metrics_out.Final();
  if (flags.Has("stats")) {
    std::fputs(metrics.Collect().RenderPrometheus().c_str(), stderr);
  }
  std::fprintf(stderr, "%zu records -> %zu events\n", records.size(),
               eng->event_count());
  return 0;
}

// Live collector mode: listen for RFC 3164 datagrams on UDP and print
// events as they close.  One network with --configs/--kb/--port, or many
// with repeated --tenant NAME:CONFIGS:KB[:PORT] specs — each tenant gets
// its own engine (KB, collector, digest state) and its own socket, all
// multiplexed by one EngineHost over a shared thread pool and registry.
// Exits after --max-datagrams across all tenants (for scripting) or runs
// until killed.
int CmdServe(Flags& flags) {
  obs::Registry metrics;
  MetricsWriter metrics_out(flags, &metrics);
  LogSimdLevel();
  RecordSimdLevel(metrics_out.enabled() ? &metrics : nullptr);
  engine::EngineOptions base;
  base.shards =
      static_cast<std::size_t>(std::max(1L, flags.GetInt("shards", 1)));
  base.hold_ms = flags.GetInt("hold-ms", 5000);
  base.year = static_cast<int>(flags.GetInt("year", 2009));
  base.idle_close_ms = flags.GetInt("idle-close-s", 1800) * kMsPerSecond;
  // Crash-consistent restarts need the resend of already-seen datagrams
  // to be idempotent, which is what the collector's duplicate window
  // provides; checkpointed deployments should run with --dedup on.
  base.suppress_duplicates = flags.Has("dedup");

  std::vector<engine::TenantSpec> specs;
  const bool multi = flags.Has("tenant");
  if (multi) {
    for (const std::string& text : flags.GetAll("tenant")) {
      engine::TenantSpec spec;
      std::string error;
      if (!engine::ParseTenantSpec(text, &spec, &error)) {
        std::fprintf(stderr, "%s\n", error.c_str());
        return 2;
      }
      spec.options = base;
      specs.push_back(std::move(spec));
    }
  } else {
    engine::TenantSpec spec;
    spec.configs_dir = flags.Require("configs");
    spec.kb_path = flags.Require("kb");
    if (!flags.ok()) return 2;
    spec.port = static_cast<std::uint16_t>(flags.GetInt("port", 5514));
    spec.options = base;
    specs.push_back(std::move(spec));
  }

  engine::HostOptions host_opts;
  host_opts.pool_threads =
      static_cast<int>(flags.GetInt("pump-threads", 0));
  host_opts.metrics = metrics_out.enabled() ? &metrics : nullptr;
  engine::EngineHost host(host_opts);
  std::string error;
  if (!host.LoadTenants(std::move(specs), &error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 2;
  }
  const std::string ckpt_dir = flags.Get("checkpoint-dir");
  if (!ckpt_dir.empty()) {
    for (std::size_t i = 0; i < host.tenant_count(); ++i) {
      engine::Engine* eng = host.engine(i);
      // Each tenant snapshots independently under its own subdirectory.
      const std::string dir =
          multi ? ckpt_dir + "/" + eng->tenant() : ckpt_dir;
      if (!eng->OpenDurable(dir, &error)) {
        std::fprintf(stderr, "%s\n", error.c_str());
        return 1;
      }
      if (eng->replay_cursor() > 0) {
        std::fprintf(stderr, "%s%srestored; replay cursor at %llu\n",
                     eng->tenant().c_str(), eng->tenant().empty() ? "" : ": ",
                     static_cast<unsigned long long>(eng->replay_cursor()));
      }
    }
  }
  wirefront::WireOptions wire;
  wire.listeners = static_cast<int>(flags.GetInt("listeners", 1));
  if (wire.listeners < 1 || wire.listeners > 64) {
    std::fprintf(stderr, "--listeners must be in [1, 64]\n");
    return 2;
  }
  if (const std::string name = flags.Get("wire"); !name.empty()) {
    wire.backend = wirefront::BackendFromName(name);
    if (!wire.backend.has_value()) {
      std::fprintf(stderr, "--wire must be poll or uring, not '%s'\n",
                   name.c_str());
      return 2;
    }
  }
  if (!host.BindAll(wire, &error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  std::fprintf(stderr, "wire front: %s backend, %d listener(s)/tenant\n",
               wirefront::BackendName(host.front()->backend()),
               host.front()->listeners_per_tenant());
  // One mutex serializes event lines across tenants; each tenant's own
  // subsequence stays its deterministic close order.  Multi-tenant lines
  // are prefixed "NAME|"; single-tenant output is byte-identical to the
  // historical serve mode.
  std::mutex out_mutex;
  for (std::size_t i = 0; i < host.tenant_count(); ++i) {
    engine::Engine* eng = host.engine(i);
    const std::string prefix = multi ? eng->tenant() + "|" : "";
    eng->SetEventSink([prefix, &out_mutex](const core::DigestEvent& ev) {
      const std::lock_guard<std::mutex> lock(out_mutex);
      std::printf("%s%s\n", prefix.c_str(), ev.Format().c_str());
      std::fflush(stdout);
    });
    if (multi) {
      std::fprintf(stderr, "tenant %s listening on 127.0.0.1:%u\n",
                   eng->tenant().c_str(), host.port_of(i));
    } else {
      std::fprintf(stderr, "listening on 127.0.0.1:%u\n", host.port_of(i));
    }
  }
  engine::EngineHost::ServeOptions serve;
  serve.max_datagrams = flags.GetInt("max-datagrams", 0);
  // After traffic has been seen, an idle stretch of this many seconds
  // ends the server (0 = run forever); makes scripted runs robust to UDP
  // loss under bursts.
  serve.idle_exit_s = flags.GetInt("idle-exit-s", 0);
  if (!ckpt_dir.empty()) {
    serve.checkpoint_interval_s = flags.GetInt("checkpoint-interval-s", 30);
  }
  serve.on_tick = [&metrics_out] { metrics_out.Periodic(); };
  host.Serve(serve);
  metrics_out.Final();
  for (std::size_t i = 0; i < host.tenant_count(); ++i) {
    const syslog::Collector& c = host.engine(i)->collector();
    if (multi) {
      std::fprintf(stderr, "tenant %s done: %zu datagrams (%zu malformed)\n",
                   host.engine(i)->tenant().c_str(),
                   c.accepted_count() + c.malformed_count(),
                   c.malformed_count());
    } else {
      std::fprintf(stderr, "done: %zu datagrams (%zu malformed)\n",
                   c.accepted_count() + c.malformed_count(),
                   c.malformed_count());
    }
  }
  return 0;
}

// Replays an archive as RFC 3164 datagrams to a UDP collector ("router
// side" of the serve mode; real time is not simulated — datagrams are
// sent back-to-back).
int CmdReplay(Flags& flags) {
  const std::string in_path = flags.Require("in");
  if (!flags.ok()) return 2;
  const auto port = static_cast<std::uint16_t>(flags.GetInt("port", 5514));
  auto sender =
      syslog::UdpSender::Open(flags.Get("host", "127.0.0.1"), port);
  if (!sender) {
    std::fprintf(stderr, "cannot open UDP sender\n");
    return 1;
  }
  bool ok = true;
  const auto records = ReadRecordsCli(flags, in_path, nullptr, ok);
  if (!ok) return 1;
  // Pace the replay so the receiver's socket buffer keeps up (UDP has no
  // flow control); default ~20k datagrams/s.
  const long pace_us = flags.GetInt("pace-us", 50);
  std::size_t sent = 0;
  std::string datagram;
  for (const auto& rec : records) {
    datagram.clear();
    syslog::AppendRfc3164(rec, &datagram);
    sent += sender->Send(datagram);
    if (pace_us > 0) ::usleep(static_cast<useconds_t>(pace_us));
  }
  std::fprintf(stderr, "replayed %zu/%zu records to port %u\n", sent,
               records.size(), port);
  return sent == records.size() ? 0 : 1;
}

// Dumps a durable event log as "seq|event" lines: the operator's (and
// the crash tests') view of exactly what a checkpointed server emitted.
int CmdEvents(Flags& flags) {
  const std::string dir = flags.Require("checkpoint-dir");
  if (!flags.ok()) return 2;
  std::string error;
  std::size_t undecodable = 0;
  const bool ok = ckpt::EventLog::ForEach(
      dir + "/events.log",
      [&undecodable](std::uint64_t seq, std::string_view payload) {
        ckpt::Reader r(payload);
        core::DigestEvent ev;
        if (!ckpt::ReadEvent(&r, &ev)) {
          ++undecodable;
          return;
        }
        std::printf("%llu|%s\n", static_cast<unsigned long long>(seq),
                    ev.Format().c_str());
      },
      &error);
  if (!ok) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  if (undecodable > 0) {
    std::fprintf(stderr, "%zu undecodable event record(s)\n", undecodable);
    return 1;
  }
  return 0;
}

int CmdInspect(Flags& flags) {
  const std::string kb_path = flags.Require("kb");
  if (!flags.ok()) return 2;
  std::ifstream kb_in(kb_path);
  std::stringstream kb_text;
  kb_text << kb_in.rdbuf();
  core::KnowledgeBase kb = core::KnowledgeBase::Deserialize(kb_text.str());
  std::printf("knowledge base: %zu templates, %zu rules, %llu historical "
              "messages\n",
              kb.templates.size(), kb.rules.size(),
              static_cast<unsigned long long>(kb.history_message_count));
  std::printf("temporal: alpha=%g beta=%g smin=%llds smax=%llds\n",
              kb.temporal_params.alpha, kb.temporal_params.beta,
              static_cast<long long>(kb.temporal_params.smin / 1000),
              static_cast<long long>(kb.temporal_params.smax / 1000));
  std::printf("rules: W=%llds SP_min=%g Conf_min=%g\n\n",
              static_cast<long long>(kb.rule_params.window_ms / 1000),
              kb.rule_params.min_support, kb.rule_params.min_confidence);
  std::printf("templates:\n");
  for (const core::Template& tmpl : kb.templates.All()) {
    const auto prior = kb.temporal_priors.find(tmpl.id);
    if (prior != kb.temporal_priors.end()) {
      std::printf("  [%3u] %-90s ~%.0fs period\n", tmpl.id,
                  tmpl.Canonical().c_str(), prior->second / 1000.0);
    } else {
      std::printf("  [%3u] %s\n", tmpl.id, tmpl.Canonical().c_str());
    }
  }
  std::printf("\nassociation rules (conf, supp):\n");
  for (const core::Rule& rule : kb.rules.All()) {
    std::printf("  (%.2f, %.2e) %s  <->  %s\n", rule.confidence,
                rule.support, kb.templates.Get(rule.a).Canonical().c_str(),
                kb.templates.Get(rule.b).Canonical().c_str());
  }
  return 0;
}

void Usage() {
  std::fputs(
      "usage: sldigest <gen|learn|digest|stream|serve|replay|inspect|events> "
      "[flags]\n"
      "  gen     --dataset A|B --days N [--day0 N] [--seed S] --out FILE "
      "--configs DIR\n"
      "  learn   --configs DIR --history FILE --kb FILE [--window-s N] "
      "[--sweep]\n"
      "          [--learn-threads N]  (N=0: one thread per core; same KB "
      "at any N)\n"
      "  digest  --configs DIR --kb FILE --in FILE [--report] [--csv FILE] "
      "[--top N]\n"
      "          [--threads N]\n"
      "  stream  --configs DIR --kb FILE --in FILE [--idle-close-s N] "
      "[--threads N]\n"
      "          [--hold-ms N] [--stats]\n"
      "  serve   --configs DIR --kb FILE [--port N] [--year N]\n"
      "          or repeatable --tenant NAME:CONFIGS:KB[:PORT] to serve "
      "several\n"
      "          networks in one process (events print as \"NAME|event\"; "
      "every\n"
      "          metric series carries a tenant label)\n"
      "          [--shards N] [--pump-threads N] [--hold-ms N] "
      "[--idle-close-s N]\n"
      "          [--max-datagrams N] [--idle-exit-s N] [--dedup]\n"
      "          [--listeners K] [--wire poll|uring]\n"
      "          --listeners K fans each tenant port over K SO_REUSEPORT\n"
      "          sockets; --wire picks the drain backend (default: uring "
      "when\n"
      "          liburing+kernel support it, else batched recvmmsg; env "
      "SLD_WIRE\n"
      "          overrides)\n"
      "          [--checkpoint-dir DIR] [--checkpoint-interval-s N]\n"
      "          --checkpoint-dir restores state at start and snapshots "
      "every N\n"
      "          seconds (default 30) with a durable event log; resends "
      "after a\n"
      "          crash are idempotent when --dedup is on (multi-tenant "
      "runs use\n"
      "          DIR/NAME per tenant)\n"
      "  replay  --in FILE [--host IP] [--port N] [--pace-us N]\n"
      "  inspect --kb FILE\n"
      "  events  --checkpoint-dir DIR  (dumps the durable event log as "
      "\"seq|event\")\n"
      "common flags:\n"
      "  --metrics-out FILE writes metric snapshots as FILE (JSON) and "
      "FILE.prom\n"
      "    (Prometheus text); --metrics-interval-s N rewrites them at most "
      "every\n"
      "    N seconds (learn/digest/stream/serve)\n"
      "  --ingest-threads N reads archives with N parse workers "
      "(learn/digest/\n"
      "    stream/replay; N=0: one per core; same records at any N)\n"
      "  --threads / --shards N digests with N shard workers (same events "
      "at any N)\n"
      "  --simd scalar|sse2|avx2|native pins the byte-kernel dispatch "
      "level\n"
      "    (default: autodetect; env SLD_SIMD sets the default; output is\n"
      "    identical at every level)\n",
      stderr);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    Usage();
    return 2;
  }
  const std::string cmd = argv[1];
  Flags flags(argc, argv, 2);
  if (const int rc = ApplySimdFlag(flags); rc != 0) return rc;
  if (cmd == "gen") return CmdGen(flags);
  if (cmd == "learn") return CmdLearn(flags);
  if (cmd == "digest") return CmdDigest(flags);
  if (cmd == "stream") return CmdStream(flags);
  if (cmd == "serve") return CmdServe(flags);
  if (cmd == "replay") return CmdReplay(flags);
  if (cmd == "inspect") return CmdInspect(flags);
  if (cmd == "events") return CmdEvents(flags);
  Usage();
  return 2;
}
