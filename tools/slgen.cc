// slgen — wire-rate batched UDP syslog load generator.
//
// Renders the simulator's vendor message formats into per-thread buffers
// and transmits them with sendmmsg() batches (src/loadgen/), paced by a
// token bucket, with deterministic duplicate/drop/reorder fault
// injection.  The exit ledger line
//   slgen: sent=S generated=G duplicates=D injected_drops=I reorders=R
//          wire=W elapsed_s=E msgs_per_s=M
// always satisfies sent = generated + duplicates = wire + injected_drops,
// and against a receiving `sldigest serve --metrics-out` snapshot
//   sent = accepted + kernel_drops + malformed + injected_drops
// (tests/tools/cli_slgen_soak.sh reconciles exactly that).

#include <cstdio>
#include <cstdlib>
#include <string>

#include "flags.h"
#include "loadgen/loadgen.h"
#include "sim/workload.h"

namespace {

void Usage() {
  std::fprintf(
      stderr,
      "slgen — batched UDP syslog load generator\n"
      "\n"
      "usage: slgen --port P [--host A] [--total N] [--threads N]\n"
      "             [--rate MSGS_PER_SEC] [--burst N] [--batch N]\n"
      "             [--routers N] [--seed N] [--msgs-per-vsec N]\n"
      "             [--duplicate P] [--drop P] [--reorder P]\n"
      "             [--stats FILE]\n"
      "\n"
      "  --port P          destination UDP port (required)\n"
      "  --host A          destination IPv4 address (default 127.0.0.1)\n"
      "  --total N         distinct messages to generate (default 100000)\n"
      "  --threads N       sender threads (default 4)\n"
      "  --rate R          aggregate pacing in msgs/s; 0 = unthrottled\n"
      "  --burst N         token-bucket depth in msgs (default 4x batch)\n"
      "  --batch N         datagrams per sendmmsg round (default 64)\n"
      "  --routers N       synthetic router identities (default 20)\n"
      "  --seed N          RNG seed; fault decisions are a pure function\n"
      "                    of (seed, batch, index) (default 1)\n"
      "  --msgs-per-vsec N virtual-clock rate: messages per virtual\n"
      "                    second of timestamp advance (default 2000)\n"
      "  --duplicate P     probability a message is sent twice\n"
      "  --drop P          probability a message is withheld from the wire\n"
      "  --reorder P       probability of an adjacent in-round swap\n"
      "  --stats FILE      also write the ledger as JSON to FILE\n");
}

}  // namespace

int main(int argc, char** argv) {
  sld::tools::Flags flags(argc, argv, 1);
  if (flags.Has("help")) {
    Usage();
    return 0;
  }
  if (!flags.ok()) {
    Usage();
    return 2;
  }

  sld::loadgen::RunOptions options;
  const long port = flags.GetInt("port", 0);
  if (port <= 0 || port > 65535) {
    std::fprintf(stderr, "missing or invalid --port\n");
    Usage();
    return 2;
  }
  options.port = static_cast<std::uint16_t>(port);
  options.host = flags.Get("host", "127.0.0.1");
  options.total = static_cast<std::uint64_t>(
      std::max(1L, flags.GetInt("total", 100000)));
  options.threads = static_cast<int>(flags.GetInt("threads", 4));
  options.rate = flags.GetDouble("rate", 0.0);
  options.burst = flags.GetDouble("burst", 0.0);
  options.stream.batch = static_cast<int>(flags.GetInt("batch", 64));
  options.stream.routers = static_cast<int>(flags.GetInt("routers", 20));
  options.stream.seed =
      static_cast<std::uint64_t>(flags.GetInt("seed", 1));
  options.stream.msgs_per_vsec = flags.GetInt("msgs-per-vsec", 2000);
  options.stream.faults.duplicate = flags.GetDouble("duplicate", 0.0);
  options.stream.faults.drop = flags.GetDouble("drop", 0.0);
  options.stream.faults.reorder = flags.GetDouble("reorder", 0.0);
  options.stream.epoch = sld::sim::DatasetEpoch();

  const sld::loadgen::RunResult result = sld::loadgen::Run(options);
  if (!result.ok) {
    std::fprintf(stderr, "slgen: %s\n", result.error.c_str());
    return 1;
  }

  const sld::loadgen::StreamStats& s = result.stats;
  const double rate =
      result.elapsed_seconds > 0
          ? static_cast<double>(s.wire) / result.elapsed_seconds
          : 0.0;
  std::printf(
      "slgen: sent=%llu generated=%llu duplicates=%llu injected_drops=%llu "
      "reorders=%llu wire=%llu elapsed_s=%.3f msgs_per_s=%.0f\n",
      static_cast<unsigned long long>(s.sent()),
      static_cast<unsigned long long>(s.generated),
      static_cast<unsigned long long>(s.duplicates),
      static_cast<unsigned long long>(s.injected_drops),
      static_cast<unsigned long long>(s.reorders),
      static_cast<unsigned long long>(s.wire), result.elapsed_seconds, rate);

  if (flags.Has("stats")) {
    const std::string path = flags.Get("stats");
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "slgen: cannot write --stats %s\n", path.c_str());
      return 1;
    }
    std::fprintf(
        f,
        "{\"sent\":%llu,\"generated\":%llu,\"duplicates\":%llu,"
        "\"injected_drops\":%llu,\"reorders\":%llu,\"wire\":%llu,"
        "\"elapsed_s\":%.6f,\"msgs_per_s\":%.1f}\n",
        static_cast<unsigned long long>(s.sent()),
        static_cast<unsigned long long>(s.generated),
        static_cast<unsigned long long>(s.duplicates),
        static_cast<unsigned long long>(s.injected_drops),
        static_cast<unsigned long long>(s.reorders),
        static_cast<unsigned long long>(s.wire), result.elapsed_seconds,
        rate);
    std::fclose(f);
  }
  return 0;
}
