// Minimal flag parser for the sldigest CLI: --name value, --name=value,
// and boolean --name.
//
// A following argument is consumed as the flag's value unless it looks
// like a flag itself ("--" followed by a non-digit).  The digit carve-out
// matters for negative numbers: "--day0 -5" and even "--top --5" are
// values, not flags — the seed parser's bare strncmp(next, "--", 2) test
// swallowed such values (tools/flags_test.cc pins the regression).
#pragma once

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

namespace sld::tools {

class Flags {
 public:
  Flags(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string arg = argv[i];
      if (!LooksLikeFlag(arg.c_str())) {
        std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
        ok_ = false;
        continue;
      }
      arg = arg.substr(2);
      const std::size_t eq = arg.find('=');
      if (eq != std::string::npos) {
        values_[arg.substr(0, eq)].push_back(arg.substr(eq + 1));
      } else if (i + 1 < argc && !LooksLikeFlag(argv[i + 1])) {
        values_[arg].push_back(argv[++i]);
      } else {
        values_[arg].push_back("");
      }
    }
  }

  bool ok() const { return ok_; }
  bool Has(const std::string& name) const { return values_.count(name); }
  // A repeated flag keeps every value (GetAll); the scalar accessors see
  // the last occurrence, the usual CLI override convention.
  std::string Get(const std::string& name,
                  const std::string& fallback = "") const {
    const auto it = values_.find(name);
    return it == values_.end() ? fallback : it->second.back();
  }
  const std::vector<std::string>& GetAll(const std::string& name) const {
    static const std::vector<std::string> kEmpty;
    const auto it = values_.find(name);
    return it == values_.end() ? kEmpty : it->second;
  }
  long GetInt(const std::string& name, long fallback) const {
    const auto it = values_.find(name);
    if (it == values_.end() || it->second.back().empty()) return fallback;
    const std::string& text = it->second.back();
    char* end = nullptr;
    const long value = std::strtol(text.c_str(), &end, 10);
    if (end == text.c_str() || *end != '\0') {
      std::fprintf(stderr, "flag --%s: not a number: %s\n", name.c_str(),
                   text.c_str());
      return fallback;
    }
    return value;
  }
  double GetDouble(const std::string& name, double fallback) const {
    const auto it = values_.find(name);
    if (it == values_.end() || it->second.back().empty()) return fallback;
    const std::string& text = it->second.back();
    char* end = nullptr;
    const double value = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || *end != '\0') {
      std::fprintf(stderr, "flag --%s: not a number: %s\n", name.c_str(),
                   text.c_str());
      return fallback;
    }
    return value;
  }
  std::string Require(const std::string& name) {
    if (!Has(name) || values_.at(name).back().empty()) {
      std::fprintf(stderr, "missing required flag --%s\n", name.c_str());
      ok_ = false;
      return "";
    }
    return values_.at(name).back();
  }

 private:
  // "--name" is a flag; "-5", "--5", "-" and plain words are values.
  static bool LooksLikeFlag(const char* s) {
    return std::strncmp(s, "--", 2) == 0 && s[2] != '\0' &&
           !std::isdigit(static_cast<unsigned char>(s[2]));
  }

  std::map<std::string, std::vector<std::string>> values_;
  bool ok_ = true;
};

}  // namespace sld::tools
