#include "syslog/wire.h"

#include <gtest/gtest.h>

namespace sld::syslog {
namespace {

SyslogRecord Sample(int day = 10, int hour = 0) {
  SyslogRecord rec;
  rec.time = ToTimeMs(CivilTime{2009, 1, day, hour, 0, 15, 0});
  rec.router = "cr01.dllstx";
  rec.code = "LINK-3-UPDOWN";
  rec.detail = "Interface Serial1/0.10:0, changed state to down";
  return rec;
}

TEST(WireTest, EncodeProducesPriAndCiscoTag) {
  const std::string wire = EncodeRfc3164(Sample());
  // local7 (23) * 8 + severity 3 = 187.
  EXPECT_TRUE(wire.starts_with("<187>Jan 10 00:00:15 cr01.dllstx "
                               "%LINK-3-UPDOWN: "))
      << wire;
}

TEST(WireTest, RoundTrip) {
  const SyslogRecord rec = Sample();
  const auto decoded = DecodeRfc3164(EncodeRfc3164(rec), 2009);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, rec);
}

TEST(WireTest, SingleDigitDayIsSpacePadded) {
  const std::string wire = EncodeRfc3164(Sample(3));
  EXPECT_NE(wire.find("Jan  3 "), std::string::npos) << wire;
  const auto decoded = DecodeRfc3164(wire, 2009);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(ToCivil(decoded->time).day, 3);
}

TEST(WireTest, RoundTripAllMonths) {
  for (int month = 1; month <= 12; ++month) {
    SyslogRecord rec = Sample();
    rec.time = ToTimeMs(CivilTime{2009, month, 15, 12, 30, 45, 0});
    const auto decoded = DecodeRfc3164(EncodeRfc3164(rec), 2009);
    ASSERT_TRUE(decoded.has_value()) << month;
    EXPECT_EQ(decoded->time, rec.time);
  }
}

TEST(WireTest, SeverityClampedToSevenInPri) {
  SyslogRecord rec = Sample();
  rec.code = "X-6-Y";
  EXPECT_TRUE(EncodeRfc3164(rec).starts_with("<190>"));
}

TEST(WireTest, DecodeRejectsMalformed) {
  EXPECT_FALSE(DecodeRfc3164("", 2009).has_value());
  EXPECT_FALSE(DecodeRfc3164("no pri here", 2009).has_value());
  EXPECT_FALSE(DecodeRfc3164("<999>Jan 10 00:00:15 h %C: d", 2009)
                   .has_value());
  EXPECT_FALSE(DecodeRfc3164("<187>Foo 10 00:00:15 h %C: d", 2009)
                   .has_value());
  EXPECT_FALSE(DecodeRfc3164("<187>Jan 40 00:00:15 h %C: d", 2009)
                   .has_value());
  EXPECT_FALSE(DecodeRfc3164("<187>Jan 10 25:00:15 h %C: d", 2009)
                   .has_value());
  EXPECT_FALSE(
      DecodeRfc3164("<187>Jan 10 00:00:15 hostonly", 2009).has_value());
  // Missing '%' tag marker.
  EXPECT_FALSE(
      DecodeRfc3164("<187>Jan 10 00:00:15 h C: d", 2009).has_value());
  // Feb 29 in a non-leap reference year.
  EXPECT_FALSE(
      DecodeRfc3164("<187>Feb 29 00:00:15 h %C: d", 2009).has_value());
  EXPECT_TRUE(
      DecodeRfc3164("<187>Feb 29 00:00:15 h %C: d", 2008).has_value());
}

TEST(WireTest, DecodeCodeWithoutDetail) {
  const auto decoded =
      DecodeRfc3164("<187>Jan 10 00:00:15 r1 %SYS-5-RESTART:", 2009);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->code, "SYS-5-RESTART");
  EXPECT_TRUE(decoded->detail.empty());
}

TEST(WireTest, MonthHelpers) {
  EXPECT_EQ(MonthAbbrev(1), "Jan");
  EXPECT_EQ(MonthAbbrev(12), "Dec");
  EXPECT_EQ(MonthAbbrev(0), "");
  EXPECT_EQ(MonthAbbrev(13), "");
  EXPECT_EQ(MonthFromAbbrev("Sep"), 9);
  EXPECT_EQ(MonthFromAbbrev("xxx"), 0);
}

TEST(WireTest, YearlessTimestampUsesReferenceYear) {
  const auto a = DecodeRfc3164("<187>Jun  1 01:02:03 h %C-1-D: m", 2009);
  const auto b = DecodeRfc3164("<187>Jun  1 01:02:03 h %C-1-D: m", 2010);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(ToCivil(a->time).year, 2009);
  EXPECT_EQ(ToCivil(b->time).year, 2010);
}

// Documented limitation of RFC 3164's yearless timestamps: a stream that
// crosses New Year decodes into the same reference year, so December
// sorts after January.  Deployments pass the current year per datagram
// batch (sldigest serve's --year flag).
// The byte after the clock must be a space.  The decoder used to skip
// position 15 unchecked, so "00:00:15Xr1 ..." silently parsed with
// router "Xr1" instead of being rejected.
TEST(WireTest, DecodeRequiresSpaceAfterClock) {
  ASSERT_TRUE(
      DecodeRfc3164("<187>Jan 10 00:00:15 r1 %A-1-B: d", 2009).has_value());
  EXPECT_FALSE(
      DecodeRfc3164("<187>Jan 10 00:00:15Xr1 %A-1-B: d", 2009).has_value());
  // A clock running straight into extra digits is malformed too.
  EXPECT_FALSE(
      DecodeRfc3164("<187>Jan 10 00:00:159 r1 %A-1-B: d", 2009).has_value());
  EXPECT_FALSE(
      DecodeRfc3164("<187>Jan 10 00:00:15\tr1 %A-1-B: d", 2009).has_value());
}

// AppendRfc3164 is the allocation-free form the replay path uses: same
// bytes as EncodeRfc3164, appended into a caller-owned buffer.
TEST(WireTest, AppendMatchesEncode) {
  std::string buf;
  for (const int day : {3, 10}) {
    const SyslogRecord rec = Sample(day);
    buf.clear();
    AppendRfc3164(rec, &buf);
    EXPECT_EQ(buf, EncodeRfc3164(rec));
  }
  // Appending (not overwriting): existing bytes are preserved.
  buf = "prefix|";
  AppendRfc3164(Sample(), &buf);
  EXPECT_TRUE(buf.starts_with("prefix|<187>")) << buf;
}

TEST(WireTest, YearlessTimestampsDoNotCrossNewYear) {
  const auto dec = DecodeRfc3164("<187>Dec 31 23:59:59 h %C-1-D: m", 2009);
  const auto jan = DecodeRfc3164("<187>Jan  1 00:00:01 h %C-1-D: m", 2009);
  ASSERT_TRUE(dec && jan);
  EXPECT_GT(dec->time, jan->time);  // both land in 2009
}

}  // namespace
}  // namespace sld::syslog
