#include "syslog/udp.h"

#include <gtest/gtest.h>

#include <chrono>
#include <optional>
#include <string>

#include "syslog/collector.h"
#include "syslog/wire.h"

namespace sld::syslog {
namespace {

// Loopback UDP is reliable in practice, but the kernel may still drop
// datagrams when a receiver is slow -- which is exactly what happens
// under sanitizer builds.  Tests therefore never assert on a single
// send/receive exchange: they retransmit on receive timeout until an
// overall bounded deadline, and let the Collector's duplicate
// suppression absorb any copies that arrive twice.
constexpr int kMaxAttempts = 40;
constexpr int kReceiveTimeoutMs = 250;

std::optional<std::string> SendUntilReceived(UdpSender& sender,
                                             UdpReceiver& receiver,
                                             const std::string& payload) {
  std::string got;
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    if (!sender.Send(payload)) return std::nullopt;
    got.clear();
    if (receiver.Receive(&got, kReceiveTimeoutMs)) return got;
  }
  return std::nullopt;
}

TEST(UdpTest, LoopbackRoundTrip) {
  auto receiver = UdpReceiver::Bind(0);
  ASSERT_TRUE(receiver.has_value());
  ASSERT_NE(receiver->port(), 0);
  auto sender = UdpSender::Open("127.0.0.1", receiver->port());
  ASSERT_TRUE(sender.has_value());

  const std::string frame = "<187>Jan 10 00:00:15 r1 %LINK-3-UPDOWN: down";
  const auto got = SendUntilReceived(*sender, *receiver, frame);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, frame);
  EXPECT_GE(sender->sent_count(), 1u);
  EXPECT_GE(receiver->received_count(), 1u);
  EXPECT_LE(receiver->received_count(), sender->sent_count());
}

TEST(UdpTest, ReceiveAppendsToCallerBuffer) {
  // The reuse-buffer overload appends: existing bytes stay put, the
  // datagram lands behind them, and a timeout leaves the buffer alone.
  auto receiver = UdpReceiver::Bind(0);
  ASSERT_TRUE(receiver.has_value());
  auto sender = UdpSender::Open("127.0.0.1", receiver->port());
  ASSERT_TRUE(sender.has_value());

  std::string buffer = "prefix|";
  EXPECT_FALSE(receiver->Receive(&buffer, 0));  // quiet socket: untouched
  EXPECT_EQ(buffer, "prefix|");

  const std::string payload = "appended datagram";
  bool delivered = false;
  for (int attempt = 0; attempt < kMaxAttempts && !delivered; ++attempt) {
    ASSERT_TRUE(sender->Send(payload));
    delivered = receiver->Receive(&buffer, kReceiveTimeoutMs);
  }
  ASSERT_TRUE(delivered);
  EXPECT_EQ(buffer, "prefix|" + payload);
}

TEST(UdpTest, BindReadsBackReceiveBuffer) {
  // The kernel clamps (and typically doubles) the SO_RCVBUF request; the
  // readback must report something positive and at least as large as a
  // modest request so under-provisioned kernels are visible.
  UdpReceiver::BindOptions options;
  options.rcvbuf_bytes = 128 * 1024;
  auto receiver = UdpReceiver::Bind(0, options);
  ASSERT_TRUE(receiver.has_value());
  EXPECT_GT(receiver->rcvbuf_bytes(), 0);
  EXPECT_GE(receiver->rcvbuf_bytes(), 128 * 1024);
}

TEST(UdpTest, ReusePortBindsTwice) {
  // Two sockets may share one port only when both opt in.
  UdpReceiver::BindOptions reuse;
  reuse.reuse_port = true;
  auto first = UdpReceiver::Bind(0, reuse);
  ASSERT_TRUE(first.has_value());
  auto second = UdpReceiver::Bind(first->port(), reuse);
  EXPECT_TRUE(second.has_value());
  // Without the flag the port is taken.
  EXPECT_FALSE(UdpReceiver::Bind(first->port()).has_value());
}

TEST(UdpTest, ReceiveTimesOutWhenQuiet) {
  auto receiver = UdpReceiver::Bind(0);
  ASSERT_TRUE(receiver.has_value());
  std::string buffer;
  EXPECT_FALSE(receiver->Receive(&buffer, 50));
  EXPECT_TRUE(buffer.empty());
}

TEST(UdpTest, OpenRejectsBadAddress) {
  EXPECT_FALSE(UdpSender::Open("not-an-address", 9).has_value());
  EXPECT_FALSE(UdpSender::Open("300.1.1.1", 9).has_value());
}

TEST(UdpTest, MoveTransfersOwnership) {
  auto receiver = UdpReceiver::Bind(0);
  ASSERT_TRUE(receiver.has_value());
  const std::uint16_t port = receiver->port();
  UdpReceiver moved = std::move(*receiver);
  EXPECT_EQ(moved.port(), port);
  auto sender = UdpSender::Open("127.0.0.1", port);
  ASSERT_TRUE(sender.has_value());
  UdpSender moved_sender = std::move(*sender);
  EXPECT_TRUE(SendUntilReceived(moved_sender, moved, "x").has_value());
}

TEST(UdpTest, EndToEndWireIntoCollector) {
  // Router side: encode records and fire them over loopback UDP.
  // Collector side: receive, decode, reorder, release in time order.
  auto receiver = UdpReceiver::Bind(0);
  ASSERT_TRUE(receiver.has_value());
  auto sender = UdpSender::Open("127.0.0.1", receiver->port());
  ASSERT_TRUE(sender.has_value());

  std::vector<SyslogRecord> sent;
  for (int i = 0; i < 20; ++i) {
    SyslogRecord rec;
    rec.time = ToTimeMs(CivilTime{2009, 9, 1, 12, 0, i, 0});
    rec.router = "cr01.dllstx";
    rec.code = "LINK-3-UPDOWN";
    rec.detail = "Interface Serial1/0, changed state to down";
    sent.push_back(rec);
  }
  // Ship slightly out of order.
  std::swap(sent[3], sent[4]);
  std::swap(sent[10], sent[12]);

  // Deliver each record with retransmit-on-timeout: the collector's
  // duplicate window discards the extra copy when both the original and
  // a retransmission arrive.  One datagram buffer serves the whole run.
  Collector collector(/*hold_ms=*/5000, /*year=*/2009,
                      /*suppress_duplicates=*/true);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  std::string datagram;
  for (std::size_t i = 0; i < sent.size(); ++i) {
    const std::string frame = EncodeRfc3164(sent[i]);
    while (collector.accepted_count() == i) {
      ASSERT_LT(std::chrono::steady_clock::now(), deadline)
          << "record " << i << " never delivered";
      ASSERT_TRUE(sender->Send(frame));
      datagram.clear();
      if (receiver->Receive(&datagram, kReceiveTimeoutMs)) {
        collector.IngestDatagram(datagram);
      }
    }
  }
  EXPECT_EQ(collector.accepted_count(), sent.size());
  EXPECT_EQ(collector.malformed_count(), 0u);

  const auto records = collector.Flush();
  ASSERT_EQ(records.size(), 20u);
  for (std::size_t i = 1; i < records.size(); ++i) {
    EXPECT_LE(records[i - 1].time, records[i].time);
  }
}

}  // namespace
}  // namespace sld::syslog
