#include "syslog/udp.h"

#include <gtest/gtest.h>

#include "syslog/collector.h"
#include "syslog/wire.h"

namespace sld::syslog {
namespace {

TEST(UdpTest, LoopbackRoundTrip) {
  auto receiver = UdpReceiver::Bind(0);
  ASSERT_TRUE(receiver.has_value());
  ASSERT_NE(receiver->port(), 0);
  auto sender = UdpSender::Open("127.0.0.1", receiver->port());
  ASSERT_TRUE(sender.has_value());

  ASSERT_TRUE(sender->Send("<187>Jan 10 00:00:15 r1 %LINK-3-UPDOWN: down"));
  const auto got = receiver->Receive(2000);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, "<187>Jan 10 00:00:15 r1 %LINK-3-UPDOWN: down");
  EXPECT_EQ(sender->sent_count(), 1u);
  EXPECT_EQ(receiver->received_count(), 1u);
}

TEST(UdpTest, ReceiveTimesOutWhenQuiet) {
  auto receiver = UdpReceiver::Bind(0);
  ASSERT_TRUE(receiver.has_value());
  EXPECT_FALSE(receiver->Receive(50).has_value());
}

TEST(UdpTest, OpenRejectsBadAddress) {
  EXPECT_FALSE(UdpSender::Open("not-an-address", 9).has_value());
  EXPECT_FALSE(UdpSender::Open("300.1.1.1", 9).has_value());
}

TEST(UdpTest, MoveTransfersOwnership) {
  auto receiver = UdpReceiver::Bind(0);
  ASSERT_TRUE(receiver.has_value());
  const std::uint16_t port = receiver->port();
  UdpReceiver moved = std::move(*receiver);
  EXPECT_EQ(moved.port(), port);
  auto sender = UdpSender::Open("127.0.0.1", port);
  ASSERT_TRUE(sender.has_value());
  UdpSender moved_sender = std::move(*sender);
  EXPECT_TRUE(moved_sender.Send("x"));
  EXPECT_TRUE(moved.Receive(2000).has_value());
}

TEST(UdpTest, EndToEndWireIntoCollector) {
  // Router side: encode records and fire them over loopback UDP.
  // Collector side: receive, decode, reorder, release in time order.
  auto receiver = UdpReceiver::Bind(0);
  ASSERT_TRUE(receiver.has_value());
  auto sender = UdpSender::Open("127.0.0.1", receiver->port());
  ASSERT_TRUE(sender.has_value());

  std::vector<SyslogRecord> sent;
  for (int i = 0; i < 20; ++i) {
    SyslogRecord rec;
    rec.time = ToTimeMs(CivilTime{2009, 9, 1, 12, 0, i, 0});
    rec.router = "cr01.dllstx";
    rec.code = "LINK-3-UPDOWN";
    rec.detail = "Interface Serial1/0, changed state to down";
    sent.push_back(rec);
  }
  // Ship slightly out of order.
  std::swap(sent[3], sent[4]);
  std::swap(sent[10], sent[12]);
  for (const auto& rec : sent) {
    ASSERT_TRUE(sender->Send(EncodeRfc3164(rec)));
  }

  Collector collector(/*hold_ms=*/5000, /*year=*/2009);
  for (int i = 0; i < 20; ++i) {
    const auto datagram = receiver->Receive(2000);
    ASSERT_TRUE(datagram.has_value());
    EXPECT_TRUE(collector.IngestDatagram(*datagram));
  }
  const auto records = collector.Flush();
  ASSERT_EQ(records.size(), 20u);
  for (std::size_t i = 1; i < records.size(); ++i) {
    EXPECT_LE(records[i - 1].time, records[i].time);
  }
}

}  // namespace
}  // namespace sld::syslog
