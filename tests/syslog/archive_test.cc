#include "syslog/archive.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>

namespace sld::syslog {
namespace {

std::vector<SyslogRecord> Sample() {
  std::vector<SyslogRecord> records;
  for (int i = 0; i < 5; ++i) {
    SyslogRecord rec;
    rec.time = ToTimeMs(CivilTime{2009, 9, 1, 0, 0, i, 0});
    rec.router = "r" + std::to_string(i);
    rec.code = "LINK-3-UPDOWN";
    rec.detail = "Interface Serial" + std::to_string(i) +
                 "/0, changed state to down";
    records.push_back(std::move(rec));
  }
  return records;
}

TEST(ArchiveTest, StreamRoundTrip) {
  const auto records = Sample();
  std::stringstream buffer;
  WriteArchive(buffer, records);
  std::size_t malformed = 99;
  const auto restored = ReadArchive(buffer, &malformed);
  EXPECT_EQ(malformed, 0u);
  ASSERT_EQ(restored.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(restored[i], records[i]);
  }
}

TEST(ArchiveTest, SkipsCommentsBlanksAndGarbage) {
  std::stringstream buffer;
  buffer << "# a comment\n"
         << "\n"
         << "garbage line\n"
         << "2009-09-01 00:00:01 r1 A-1-B some detail\n"
         << "2009-13-01 00:00:01 r1 A-1-B bad month\n";
  std::size_t malformed = 0;
  const auto records = ReadArchive(buffer, &malformed);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].router, "r1");
  EXPECT_EQ(malformed, 2u);
}

TEST(ArchiveTest, AppendRecordMatchesFormatRecord) {
  for (const auto& rec : Sample()) {
    std::string appended = "prefix|";
    AppendRecord(rec, appended);
    EXPECT_EQ(appended, "prefix|" + FormatRecord(rec));
  }
  // Empty detail keeps the trailing-space rendering FormatRecord had.
  SyslogRecord bare;
  bare.time = ToTimeMs(CivilTime{2009, 9, 1, 0, 0, 0, 0});
  bare.router = "r1";
  bare.code = "A-1-B";
  std::string out;
  AppendRecord(bare, out);
  EXPECT_EQ(out, FormatRecord(bare));
  EXPECT_EQ(out.back(), ' ');
}

TEST(ArchiveTest, LargeWriteCrossesFlushBoundary) {
  // Enough records to cross WriteArchive's internal flush threshold, so
  // the buffered multi-write path round-trips too.
  std::vector<SyslogRecord> records;
  for (int i = 0; i < 5000; ++i) {
    SyslogRecord rec;
    rec.time = ToTimeMs(CivilTime{2009, 9, 1 + i / 5000, 0, 0, i % 60, 0});
    rec.router = "router-" + std::to_string(i % 97);
    rec.code = "LINK-3-UPDOWN";
    rec.detail = "Interface Serial" + std::to_string(i) +
                 "/0/0, changed state to down (padding padding padding)";
    records.push_back(std::move(rec));
  }
  std::stringstream buffer;
  WriteArchive(buffer, records);
  std::size_t malformed = 99;
  const auto restored = ReadArchive(buffer, &malformed);
  EXPECT_EQ(malformed, 0u);
  ASSERT_EQ(restored.size(), records.size());
  EXPECT_TRUE(restored == records);
}

TEST(ArchiveTest, FileRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "sld_archive_test.log")
          .string();
  const auto records = Sample();
  ASSERT_TRUE(WriteArchiveFile(path, records));
  bool ok = false;
  const auto restored = ReadArchiveFile(path, nullptr, &ok);
  EXPECT_TRUE(ok);
  EXPECT_EQ(restored.size(), records.size());
  std::remove(path.c_str());
}

TEST(ArchiveTest, MissingFileReportsFailure) {
  bool ok = true;
  const auto records =
      ReadArchiveFile("/nonexistent/path/file.log", nullptr, &ok);
  EXPECT_FALSE(ok);
  EXPECT_TRUE(records.empty());
}

}  // namespace
}  // namespace sld::syslog
