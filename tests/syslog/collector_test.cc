#include "syslog/collector.h"

#include <gtest/gtest.h>

#include "obs/registry.h"

namespace sld::syslog {
namespace {

SyslogRecord At(TimeMs t, const char* router = "r1") {
  SyslogRecord rec;
  rec.time = t;
  rec.router = router;
  rec.code = "LINK-3-UPDOWN";
  rec.detail = "Interface Serial0/0, changed state to down";
  return rec;
}

TEST(CollectorTest, HoldsRecordsUntilWatermarkPasses) {
  Collector c(/*hold_ms=*/5000);
  c.IngestRecord(At(1000));
  EXPECT_TRUE(c.Drain().empty());  // watermark 1000, release up to -4000
  c.IngestRecord(At(7000));
  const auto out = c.Drain();  // release up to 2000
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].time, 1000);
  EXPECT_EQ(c.buffered(), 1u);
}

TEST(CollectorTest, ReordersWithinHoldWindow) {
  Collector c(5000);
  c.IngestRecord(At(3000));
  c.IngestRecord(At(1000));  // out of order but within hold
  c.IngestRecord(At(2000));
  c.IngestRecord(At(20000));
  const auto out = c.Drain();
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].time, 1000);
  EXPECT_EQ(out[1].time, 2000);
  EXPECT_EQ(out[2].time, 3000);
}

TEST(CollectorTest, DropsRecordsOlderThanReleasedWatermark) {
  Collector c(1000);
  c.IngestRecord(At(1000));
  c.IngestRecord(At(10000));
  (void)c.Drain();  // 1000 released
  EXPECT_FALSE(c.IngestRecord(At(500)));  // strictly older: too late
  EXPECT_EQ(c.late_count(), 1u);
  EXPECT_TRUE(c.IngestRecord(At(9500)));  // not yet released
}

// Regression for the release-boundary data loss: at syslog's 1-second
// granularity, a record sharing a timestamp with an already-released
// record is NOT late — ties release in arrival order, so ordering is
// preserved and no same-second record is dropped.
TEST(CollectorTest, SameTimestampRecordsSplitAcrossDrainAreNotLost) {
  Collector c(/*hold_ms=*/1000);
  SyslogRecord first = At(5000, "alpha");
  SyslogRecord second = At(5000, "beta");
  c.IngestRecord(first);
  c.IngestRecord(At(10000));  // watermark 10000: release up to 9000
  const auto released = c.Drain();
  ASSERT_EQ(released.size(), 1u);
  EXPECT_EQ(released[0].router, "alpha");

  // The second same-second record arrives just after the drain.
  EXPECT_TRUE(c.IngestRecord(second));
  EXPECT_EQ(c.late_count(), 0u);
  const auto next = c.Drain();
  ASSERT_EQ(next.size(), 1u);
  EXPECT_EQ(next[0].router, "beta");
  EXPECT_EQ(next[0].time, 5000);  // output is still non-decreasing
  EXPECT_EQ(c.accepted_count(), 3u);
}

// Flush() ends an epoch: the watermarks reset, so a reused collector
// classifies the next epoch's (possibly earlier) timestamps cleanly
// instead of dropping them against the previous epoch's clock.
TEST(CollectorTest, FlushResetsEpochForReuse) {
  Collector c(/*hold_ms=*/1000);
  c.IngestRecord(At(50000));
  c.IngestRecord(At(60000));
  // Drain advances released_through_ to 59000; Flush must not leave it
  // there for the next epoch.
  ASSERT_EQ(c.Drain().size(), 1u);
  ASSERT_EQ(c.Flush().size(), 1u);

  // Next epoch restarts earlier (e.g. a replayed archive).
  EXPECT_TRUE(c.IngestRecord(At(1000)));
  EXPECT_TRUE(c.IngestRecord(At(7000)));
  EXPECT_EQ(c.late_count(), 0u);
  const auto out = c.Drain();  // watermark 7000: release up to 6000
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].time, 1000);
  EXPECT_EQ(c.Flush().size(), 1u);
  EXPECT_EQ(c.accepted_count(), 4u);
  EXPECT_EQ(c.released_count(), 4u);
}

TEST(CollectorTest, FlushReleasesEverything) {
  Collector c(60000);
  for (TimeMs t = 0; t < 10; ++t) c.IngestRecord(At(9 - t));
  const auto out = c.Flush();
  ASSERT_EQ(out.size(), 10u);
  for (std::size_t i = 1; i < out.size(); ++i) {
    EXPECT_LE(out[i - 1].time, out[i].time);
  }
  EXPECT_EQ(c.buffered(), 0u);
}

TEST(CollectorTest, IngestsWireDatagrams) {
  Collector c(1000, 2009);
  const SyslogRecord rec = At(ToTimeMs(CivilTime{2009, 3, 4, 5, 6, 7, 0}));
  EXPECT_TRUE(c.IngestDatagram(EncodeRfc3164(rec)));
  const auto out = c.Flush();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], rec);
}

TEST(CollectorTest, CountsMalformedDatagrams) {
  Collector c;
  EXPECT_FALSE(c.IngestDatagram("not a syslog frame"));
  EXPECT_FALSE(c.IngestDatagram("<9999>junk"));
  EXPECT_EQ(c.malformed_count(), 2u);
  EXPECT_EQ(c.accepted_count(), 0u);
}

TEST(CollectorTest, TiesReleasedInArrivalOrder) {
  Collector c(1000);
  SyslogRecord first = At(5000, "alpha");
  SyslogRecord second = At(5000, "beta");
  c.IngestRecord(first);
  c.IngestRecord(second);
  const auto out = c.Flush();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].router, "alpha");
  EXPECT_EQ(out[1].router, "beta");
}

TEST(CollectorTest, StreamingSortedStreamPassesThrough) {
  Collector c(2000);
  std::vector<TimeMs> released;
  for (TimeMs t = 0; t < 100; ++t) {
    c.IngestRecord(At(t * 1000));
    for (const auto& rec : c.Drain()) released.push_back(rec.time);
  }
  for (const auto& rec : c.Flush()) released.push_back(rec.time);
  ASSERT_EQ(released.size(), 100u);
  for (std::size_t i = 0; i < released.size(); ++i) {
    EXPECT_EQ(released[i], static_cast<TimeMs>(i) * 1000);
  }
}

TEST(CollectorTest, DuplicateSuppressionDropsIdenticalBufferedRecords) {
  Collector c(/*hold_ms=*/5000, /*year=*/2009,
              /*suppress_duplicates=*/true);
  EXPECT_TRUE(c.IngestRecord(At(1000)));
  EXPECT_FALSE(c.IngestRecord(At(1000)));  // exact duplicate
  EXPECT_EQ(c.duplicate_count(), 1u);
  // Same time, different payload: not a duplicate.
  SyslogRecord other = At(1000);
  other.detail = "different detail";
  EXPECT_TRUE(c.IngestRecord(other));
  EXPECT_EQ(c.Flush().size(), 2u);
}

TEST(CollectorTest, BoundaryDuplicateIsSuppressedAfterRelease) {
  Collector c(/*hold_ms=*/1000, /*year=*/2009,
              /*suppress_duplicates=*/true);
  c.IngestRecord(At(1000));
  c.IngestRecord(At(10000));
  (void)c.Drain();  // the t=1000 record has been released
  // An exact duplicate of a record released AT the boundary second is
  // suppressed: the boundary window keeps released boundary records so a
  // full resend after a crash restore is idempotent (DESIGN.md §14).
  EXPECT_FALSE(c.IngestRecord(At(1000)));
  EXPECT_EQ(c.duplicate_count(), 1u);
  EXPECT_EQ(c.late_count(), 0u);
  // A DIFFERENT record sharing the boundary second is still accepted —
  // same-second records must not be lost.
  EXPECT_TRUE(c.IngestRecord(At(1000, "other-router")));
  // A duplicate of a released record that is strictly older than the
  // watermark is still rejected as late.
  (void)c.IngestRecord(At(20000));
  (void)c.Drain();  // releases through 10000; watermark passes 10000
  EXPECT_FALSE(c.IngestRecord(At(10000 - 1)));
  EXPECT_EQ(c.late_count(), 1u);
}

// The boundary window tracks the CURRENT boundary only: once the
// released watermark advances past a second, duplicates of that second
// are late anyway, and the window resets to the new boundary's records.
TEST(CollectorTest, BoundaryWindowFollowsTheWatermark) {
  Collector c(/*hold_ms=*/1000, /*year=*/2009,
              /*suppress_duplicates=*/true);
  c.IngestRecord(At(1000));
  c.IngestRecord(At(10000));
  (void)c.Drain();  // boundary now 1000
  c.IngestRecord(At(20000));
  (void)c.Drain();  // boundary advances to 10000
  EXPECT_FALSE(c.IngestRecord(At(10000)));  // boundary duplicate
  EXPECT_EQ(c.duplicate_count(), 1u);
  // Flush resets the epoch entirely: the stream restarts from scratch
  // and nothing earlier is remembered.
  (void)c.Flush();
  EXPECT_TRUE(c.IngestRecord(At(10000)));
}

// A hash collision between non-equal records must not suppress either
// one: the multiset is only a fast-path filter, the equality scan
// decides.  Reachable via the test-only hash override.
TEST(CollectorTest, HashCollisionWithNonEqualRecordIsNotSuppressed) {
  Collector c(/*hold_ms=*/5000, /*year=*/2009,
              /*suppress_duplicates=*/true);
  c.SetHashForTesting([](const SyslogRecord&) -> std::size_t { return 7; });
  SyslogRecord a = At(1000, "alpha");
  SyslogRecord b = At(1000, "beta");   // same time, different payload
  SyslogRecord d = At(2000, "gamma");  // different time bucket entirely
  EXPECT_TRUE(c.IngestRecord(a));
  EXPECT_TRUE(c.IngestRecord(b));
  EXPECT_TRUE(c.IngestRecord(d));
  EXPECT_EQ(c.duplicate_count(), 0u);
  EXPECT_EQ(c.duplicate_window_size(), 3u);
  // True duplicates are still caught through the collision pile-up.
  EXPECT_FALSE(c.IngestRecord(a));
  EXPECT_EQ(c.duplicate_count(), 1u);
  EXPECT_EQ(c.Flush().size(), 3u);
}

// Draining must erase exactly ONE multiset entry per released record —
// an erase(hash) call would wipe every collided entry and reopen the
// window for still-buffered records.
TEST(CollectorTest, DrainErasesOneHashEntryPerReleasedRecord) {
  Collector c(/*hold_ms=*/1000, /*year=*/2009,
              /*suppress_duplicates=*/true);
  c.SetHashForTesting([](const SyslogRecord&) -> std::size_t { return 7; });
  SyslogRecord early = At(1000, "alpha");
  SyslogRecord late_twin = At(6000, "alpha");
  c.IngestRecord(early);
  c.IngestRecord(late_twin);
  c.IngestRecord(At(10000, "tick"));
  EXPECT_EQ(c.duplicate_window_size(), 3u);
  const auto out = c.Drain();  // releases t=1000 and t=6000
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(c.duplicate_window_size(), 1u);  // one entry per release
  // The still-buffered t=10000 record keeps its window entry: replaying
  // it is still suppressed.
  EXPECT_FALSE(c.IngestRecord(At(10000, "tick")));
  EXPECT_EQ(c.duplicate_count(), 1u);
  (void)c.Flush();
  EXPECT_EQ(c.duplicate_window_size(), 0u);
}

// The collector_* metric series reconcile at every point:
//   accepted = released + buffered
//   ingested (= accepted + late + malformed + duplicates) = offered
TEST(CollectorTest, MetricsReconcile) {
  obs::Registry reg;
  Collector c(/*hold_ms=*/1000, /*year=*/2009,
              /*suppress_duplicates=*/true);
  c.BindMetrics(&reg);

  std::size_t offered = 0;
  const auto check = [&] {
    const obs::MetricsSnapshot snap = reg.Collect();
    EXPECT_EQ(snap.Value("collector_accepted_total"),
              snap.Value("collector_released_total") +
                  snap.Value("collector_reorder_buffer_depth"));
    EXPECT_EQ(snap.Value("collector_accepted_total") +
                  snap.Value("collector_late_total") +
                  snap.Value("collector_malformed_total") +
                  snap.Value("collector_duplicate_total"),
              static_cast<std::int64_t>(offered));
  };

  for (TimeMs t = 0; t < 50; ++t) {
    c.IngestRecord(At(t * 500));  // same-second pairs at 1-s granularity
    ++offered;
    if (t % 7 == 0) {
      c.IngestRecord(At(t * 500));  // duplicate while buffered
      ++offered;
    }
    for ([[maybe_unused]] auto& rec : c.Drain()) {
    }
    check();
  }
  c.IngestDatagram("not a syslog frame");
  ++offered;
  c.IngestRecord(At(0));  // strictly late by now
  ++offered;
  (void)c.Flush();
  check();
  const obs::MetricsSnapshot snap = reg.Collect();
  EXPECT_EQ(snap.Value("collector_reorder_buffer_depth"), 0);
  EXPECT_GT(snap.Value("collector_duplicate_total"), 0);
  EXPECT_EQ(snap.Value("collector_malformed_total"), 1);
  EXPECT_EQ(snap.Value("collector_late_total"), 1);
}

TEST(CollectorTest, DuplicatesAllowedWhenSuppressionOff) {
  Collector c;  // default: no suppression
  EXPECT_TRUE(c.IngestRecord(At(1000)));
  EXPECT_TRUE(c.IngestRecord(At(1000)));
  EXPECT_EQ(c.Flush().size(), 2u);
}

}  // namespace
}  // namespace sld::syslog
