#include "syslog/collector.h"

#include <gtest/gtest.h>

namespace sld::syslog {
namespace {

SyslogRecord At(TimeMs t, const char* router = "r1") {
  SyslogRecord rec;
  rec.time = t;
  rec.router = router;
  rec.code = "LINK-3-UPDOWN";
  rec.detail = "Interface Serial0/0, changed state to down";
  return rec;
}

TEST(CollectorTest, HoldsRecordsUntilWatermarkPasses) {
  Collector c(/*hold_ms=*/5000);
  c.IngestRecord(At(1000));
  EXPECT_TRUE(c.Drain().empty());  // watermark 1000, release up to -4000
  c.IngestRecord(At(7000));
  const auto out = c.Drain();  // release up to 2000
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].time, 1000);
  EXPECT_EQ(c.buffered(), 1u);
}

TEST(CollectorTest, ReordersWithinHoldWindow) {
  Collector c(5000);
  c.IngestRecord(At(3000));
  c.IngestRecord(At(1000));  // out of order but within hold
  c.IngestRecord(At(2000));
  c.IngestRecord(At(20000));
  const auto out = c.Drain();
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].time, 1000);
  EXPECT_EQ(out[1].time, 2000);
  EXPECT_EQ(out[2].time, 3000);
}

TEST(CollectorTest, DropsRecordsOlderThanReleasedWatermark) {
  Collector c(1000);
  c.IngestRecord(At(1000));
  c.IngestRecord(At(10000));
  (void)c.Drain();  // 1000 released
  EXPECT_FALSE(c.IngestRecord(At(500)));  // too late
  EXPECT_EQ(c.late_count(), 1u);
  EXPECT_TRUE(c.IngestRecord(At(9500)));  // not yet released
}

TEST(CollectorTest, FlushReleasesEverything) {
  Collector c(60000);
  for (TimeMs t = 0; t < 10; ++t) c.IngestRecord(At(9 - t));
  const auto out = c.Flush();
  ASSERT_EQ(out.size(), 10u);
  for (std::size_t i = 1; i < out.size(); ++i) {
    EXPECT_LE(out[i - 1].time, out[i].time);
  }
  EXPECT_EQ(c.buffered(), 0u);
}

TEST(CollectorTest, IngestsWireDatagrams) {
  Collector c(1000, 2009);
  const SyslogRecord rec = At(ToTimeMs(CivilTime{2009, 3, 4, 5, 6, 7, 0}));
  EXPECT_TRUE(c.IngestDatagram(EncodeRfc3164(rec)));
  const auto out = c.Flush();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], rec);
}

TEST(CollectorTest, CountsMalformedDatagrams) {
  Collector c;
  EXPECT_FALSE(c.IngestDatagram("not a syslog frame"));
  EXPECT_FALSE(c.IngestDatagram("<9999>junk"));
  EXPECT_EQ(c.malformed_count(), 2u);
  EXPECT_EQ(c.accepted_count(), 0u);
}

TEST(CollectorTest, TiesReleasedInArrivalOrder) {
  Collector c(1000);
  SyslogRecord first = At(5000, "alpha");
  SyslogRecord second = At(5000, "beta");
  c.IngestRecord(first);
  c.IngestRecord(second);
  const auto out = c.Flush();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].router, "alpha");
  EXPECT_EQ(out[1].router, "beta");
}

TEST(CollectorTest, StreamingSortedStreamPassesThrough) {
  Collector c(2000);
  std::vector<TimeMs> released;
  for (TimeMs t = 0; t < 100; ++t) {
    c.IngestRecord(At(t * 1000));
    for (const auto& rec : c.Drain()) released.push_back(rec.time);
  }
  for (const auto& rec : c.Flush()) released.push_back(rec.time);
  ASSERT_EQ(released.size(), 100u);
  for (std::size_t i = 0; i < released.size(); ++i) {
    EXPECT_EQ(released[i], static_cast<TimeMs>(i) * 1000);
  }
}

TEST(CollectorTest, DuplicateSuppressionDropsIdenticalBufferedRecords) {
  Collector c(/*hold_ms=*/5000, /*year=*/2009,
              /*suppress_duplicates=*/true);
  EXPECT_TRUE(c.IngestRecord(At(1000)));
  EXPECT_FALSE(c.IngestRecord(At(1000)));  // exact duplicate
  EXPECT_EQ(c.duplicate_count(), 1u);
  // Same time, different payload: not a duplicate.
  SyslogRecord other = At(1000);
  other.detail = "different detail";
  EXPECT_TRUE(c.IngestRecord(other));
  EXPECT_EQ(c.Flush().size(), 2u);
}

TEST(CollectorTest, DuplicateWindowExpiresWithRelease) {
  Collector c(/*hold_ms=*/1000, /*year=*/2009,
              /*suppress_duplicates=*/true);
  c.IngestRecord(At(1000));
  c.IngestRecord(At(10000));
  (void)c.Drain();  // the t=1000 record has been released
  // A replay of the released record is no longer in the duplicate window;
  // it is rejected as LATE, not as duplicate.
  EXPECT_FALSE(c.IngestRecord(At(1000)));
  EXPECT_EQ(c.duplicate_count(), 0u);
  EXPECT_EQ(c.late_count(), 1u);
}

TEST(CollectorTest, DuplicatesAllowedWhenSuppressionOff) {
  Collector c;  // default: no suppression
  EXPECT_TRUE(c.IngestRecord(At(1000)));
  EXPECT_TRUE(c.IngestRecord(At(1000)));
  EXPECT_EQ(c.Flush().size(), 2u);
}

}  // namespace
}  // namespace sld::syslog
