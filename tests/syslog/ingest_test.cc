#include "syslog/ingest.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/registry.h"
#include "syslog/archive.h"

namespace sld::syslog {
namespace {

// Serial ground truth: the istream reader over the same bytes.
std::vector<SyslogRecord> SerialRead(const std::string& text,
                                     std::size_t* malformed) {
  std::istringstream in(text);
  return ReadArchive(in, malformed);
}

void ExpectMatchesSerial(const std::string& text,
                         const IngestOptions& options) {
  std::size_t serial_malformed = 0;
  const auto serial = SerialRead(text, &serial_malformed);
  IngestStats stats;
  const auto parallel = ParseArchive(text, options, &stats);
  EXPECT_EQ(stats.malformed, serial_malformed);
  ASSERT_EQ(parallel.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(parallel[i], serial[i]) << "record " << i;
  }
}

std::string Line(int day, int sec, const std::string& router,
                 const std::string& detail) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "2009-09-%02d %02d:%02d:%02d %s LINK-3-UPDOWN %s\n",
                day, sec / 3600, (sec / 60) % 60, sec % 60, router.c_str(),
                detail.c_str());
  return buf;
}

// A messy archive: multi-day records interleaved with comments, blank
// lines, CRLF endings and malformed rows.
std::string MessyArchive(int lines) {
  std::string text;
  for (int i = 0; i < lines; ++i) {
    if (i % 7 == 0) text += "# comment straddling blocks\n";
    if (i % 11 == 0) text += "\n";
    if (i % 13 == 0) text += "garbage that fails to parse\n";
    if (i % 17 == 0) text += "2009-13-01 00:00:01 r1 A-1-B bad month\n";
    std::string line = Line(1 + (i % 28), i % 86400, "r" + std::to_string(i % 5),
                            "Interface Serial" + std::to_string(i) +
                                "/0, changed state to down");
    if (i % 5 == 0) {
      line.insert(line.size() - 1, "\r");  // CRLF ending
    }
    text += line;
  }
  return text;
}

TEST(IngestTest, EmptyInput) {
  IngestStats stats;
  const auto records = ParseArchive("", {}, &stats);
  EXPECT_TRUE(records.empty());
  EXPECT_EQ(stats.records, 0u);
  EXPECT_EQ(stats.malformed, 0u);
  EXPECT_EQ(stats.blocks, 0u);
}

TEST(IngestTest, SingleRecordSmallerThanOneBlock) {
  const std::string text =
      "2009-09-01 00:00:01 r1 LINK-3-UPDOWN some detail\n";
  IngestOptions options;
  options.threads = 4;
  ExpectMatchesSerial(text, options);
  const auto records = ParseArchive(text, options);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].router, "r1");
  EXPECT_EQ(records[0].detail, "some detail");
}

TEST(IngestTest, MissingTrailingNewline) {
  IngestOptions options;
  options.block_bytes = 32;  // several blocks; final line unterminated
  const std::string text =
      Line(1, 10, "r1", "first detail") +
      "2009-09-01 00:00:11 r2 LINK-3-UPDOWN last line no newline";
  ExpectMatchesSerial(text, options);
  const auto records = ParseArchive(text, options);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[1].detail, "last line no newline");
}

TEST(IngestTest, CrlfLineEndings) {
  IngestOptions options;
  options.block_bytes = 16;
  std::string text;
  text += "2009-09-01 00:00:01 r1 A-1-B detail one\r\n";
  text += "\r\n";  // CR-only content line: malformed, same as getline's
  text += "# comment\r\n";
  text += "2009-09-01 00:00:02 r2 A-1-B detail two\r\n";
  ExpectMatchesSerial(text, options);
  const auto records = ParseArchive(text, options);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].detail, "detail one");  // '\r' trimmed
  EXPECT_EQ(records[1].router, "r2");
}

TEST(IngestTest, CommentsAndBlanksStraddlingBlockBoundaries) {
  const std::string text = MessyArchive(300);
  // Sweep tiny block sizes so every line category starts, ends and spans
  // block boundaries somewhere in the sweep.
  for (const std::size_t block : {1u, 3u, 7u, 16u, 64u, 256u, 4096u}) {
    IngestOptions options;
    options.block_bytes = block;
    options.threads = 4;
    ExpectMatchesSerial(text, options);
  }
}

TEST(IngestTest, ThreadSweepIsBitIdenticalToSerial) {
  const std::string text = MessyArchive(2000);
  std::size_t serial_malformed = 0;
  const auto serial = SerialRead(text, &serial_malformed);
  ASSERT_GT(serial_malformed, 0u);
  for (const int threads : {1, 4, 16}) {
    IngestOptions options;
    options.threads = threads;
    options.block_bytes = 1u << 12;
    IngestStats stats;
    const auto parallel = ParseArchive(text, options, &stats);
    EXPECT_EQ(stats.malformed, serial_malformed) << threads << " threads";
    ASSERT_EQ(parallel.size(), serial.size()) << threads << " threads";
    EXPECT_TRUE(parallel == serial) << threads << " threads";
  }
}

TEST(IngestTest, TimestampMemoSurvivesDateChangesAndGarbage) {
  // Dates going forward, backward, and invalid in between: the memo may
  // only ever short-circuit exact repeats of a validated date.
  std::string text;
  text += "2008-02-29 23:59:59 r1 A-1-B leap day\n";
  text += "2008-02-29 00:00:00 r1 A-1-B same day again\n";
  text += "2009-02-29 00:00:00 r1 A-1-B not a leap year\n";
  text += "2008-03-01 00:00:00 r1 A-1-B next day\n";
  text += "2008-02-29 12:00:00.250 r1 A-1-B back in time with millis\n";
  text += "2008-02-30 00:00:00 r1 A-1-B bad day\n";
  for (const int threads : {1, 4}) {
    IngestOptions options;
    options.threads = threads;
    ExpectMatchesSerial(text, options);
  }
}

TEST(IngestTest, FileRoundTripAndMetrics) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "sld_ingest_test.log")
          .string();
  const std::string text = MessyArchive(500);
  {
    std::ofstream out(path, std::ios::binary);
    out << text;
  }
  std::size_t serial_malformed = 0;
  const auto serial = SerialRead(text, &serial_malformed);

  obs::Registry registry;
  IngestOptions options;
  options.threads = 4;
  options.block_bytes = 1u << 12;
  options.metrics = &registry;
  IngestStats stats;
  bool ok = false;
  const auto records = ReadArchiveFileParallel(path, options, &stats, &ok);
  std::remove(path.c_str());
  ASSERT_TRUE(ok);
  EXPECT_TRUE(records == serial);
  EXPECT_EQ(stats.bytes, text.size());
  EXPECT_GT(stats.blocks, 1u);

  const auto snapshot = registry.Collect();
  EXPECT_EQ(snapshot.Value("ingest_bytes_total"),
            static_cast<std::int64_t>(text.size()));
  EXPECT_EQ(snapshot.Value("ingest_records_total"),
            static_cast<std::int64_t>(serial.size()));
  EXPECT_EQ(snapshot.Value("ingest_malformed_total"),
            static_cast<std::int64_t>(serial_malformed));
  EXPECT_EQ(snapshot.Value("ingest_threads"), 4);
}

TEST(IngestTest, MissingFileReportsFailure) {
  bool ok = true;
  IngestStats stats;
  const auto records = ReadArchiveFileParallel(
      "/nonexistent/path/file.log", {}, &stats, &ok);
  EXPECT_FALSE(ok);
  EXPECT_TRUE(records.empty());
  EXPECT_EQ(stats.records, 0u);
}

TEST(IngestTest, EmptyFileIsOk) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "sld_ingest_empty.log")
          .string();
  { std::ofstream out(path); }
  bool ok = false;
  const auto records = ReadArchiveFileParallel(path, {}, nullptr, &ok);
  std::remove(path.c_str());
  EXPECT_TRUE(ok);
  EXPECT_TRUE(records.empty());
}

}  // namespace
}  // namespace sld::syslog
