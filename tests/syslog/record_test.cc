#include "syslog/record.h"

#include <gtest/gtest.h>

namespace sld::syslog {
namespace {

SyslogRecord Sample() {
  SyslogRecord rec;
  rec.time = ToTimeMs(CivilTime{2010, 1, 10, 0, 0, 15, 0});
  rec.router = "cr01.dllstx";
  rec.code = "LINK-3-UPDOWN";
  rec.detail = "Interface Serial1/0.10:0, changed state to down";
  return rec;
}

TEST(RecordTest, FormatMatchesTableOneLayout) {
  EXPECT_EQ(FormatRecord(Sample()),
            "2010-01-10 00:00:15 cr01.dllstx LINK-3-UPDOWN "
            "Interface Serial1/0.10:0, changed state to down");
}

TEST(RecordTest, ParseRoundTrip) {
  const auto parsed = ParseRecordLine(FormatRecord(Sample()));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, Sample());
}

TEST(RecordTest, ParseNoDetail) {
  const auto parsed =
      ParseRecordLine("2010-01-10 00:00:15 r1 SYS-5-RESTART");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->code, "SYS-5-RESTART");
  EXPECT_TRUE(parsed->detail.empty());
}

TEST(RecordTest, ParseTrimsSurroundingWhitespace) {
  const auto parsed =
      ParseRecordLine("  2010-01-10 00:00:15 r1 A-1-B detail text \n");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->router, "r1");
  EXPECT_EQ(parsed->detail, "detail text");
}

TEST(RecordTest, ParseRejectsMalformed) {
  EXPECT_FALSE(ParseRecordLine("").has_value());
  EXPECT_FALSE(ParseRecordLine("garbage").has_value());
  EXPECT_FALSE(ParseRecordLine("2010-01-10 00:00:15").has_value());
  EXPECT_FALSE(ParseRecordLine("2010-13-99 00:00:15 r1 C msg").has_value());
  EXPECT_FALSE(ParseRecordLine("2010-01-10 00:00:15 r1only").has_value());
}

struct SeverityCase {
  const char* code;
  int severity;
};

class SeverityTest : public ::testing::TestWithParam<SeverityCase> {};

TEST_P(SeverityTest, ExtractsVendorSeverity) {
  EXPECT_EQ(VendorSeverity(GetParam().code), GetParam().severity)
      << GetParam().code;
}

INSTANTIATE_TEST_SUITE_P(
    Table, SeverityTest,
    ::testing::Values(
        SeverityCase{"LINK-3-UPDOWN", 3},
        SeverityCase{"LINEPROTO-5-UPDOWN", 5},
        SeverityCase{"SYS-1-CPURISINGTHRESHOLD", 1},
        SeverityCase{"TCP-6-BADAUTH", 6},
        SeverityCase{"SNMP-WARNING-linkDown", 4},
        SeverityCase{"SVCMGR-MAJOR-sapPortStateChangeProcessed", 3},
        SeverityCase{"PIM-MINOR-pimNeighborUp", 4},
        SeverityCase{"SYSTEM-INFO-tmnxTimeSync", 6},
        SeverityCase{"NOSEVERITY", 6},
        SeverityCase{"WEIRD-99-THING", 6},  // 99 is not a single digit
        SeverityCase{"A-0-B", 0}));

TEST(RecordTest, CodeFacility) {
  EXPECT_EQ(CodeFacility("LINK-3-UPDOWN"), "LINK");
  EXPECT_EQ(CodeFacility("SNMP-WARNING-linkDown"), "SNMP");
  EXPECT_EQ(CodeFacility("PLAIN"), "PLAIN");
}

// The paper's §2 point: vendor severity does NOT order operational
// importance — a CPU message (severity 1) is "more severe" than a link
// down (severity 3), which operators would dispute.
TEST(RecordTest, VendorSeverityIsNotOperationalImportance) {
  EXPECT_LT(VendorSeverity("SYS-1-CPURISINGTHRESHOLD"),
            VendorSeverity("LINK-3-UPDOWN"));
}

}  // namespace
}  // namespace sld::syslog
