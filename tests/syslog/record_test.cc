#include "syslog/record.h"

#include <gtest/gtest.h>

namespace sld::syslog {
namespace {

SyslogRecord Sample() {
  SyslogRecord rec;
  rec.time = ToTimeMs(CivilTime{2010, 1, 10, 0, 0, 15, 0});
  rec.router = "cr01.dllstx";
  rec.code = "LINK-3-UPDOWN";
  rec.detail = "Interface Serial1/0.10:0, changed state to down";
  return rec;
}

TEST(RecordTest, FormatMatchesTableOneLayout) {
  EXPECT_EQ(FormatRecord(Sample()),
            "2010-01-10 00:00:15 cr01.dllstx LINK-3-UPDOWN "
            "Interface Serial1/0.10:0, changed state to down");
}

TEST(RecordTest, ParseRoundTrip) {
  const auto parsed = ParseRecordLine(FormatRecord(Sample()));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, Sample());
}

TEST(RecordTest, ParseNoDetail) {
  const auto parsed =
      ParseRecordLine("2010-01-10 00:00:15 r1 SYS-5-RESTART");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->code, "SYS-5-RESTART");
  EXPECT_TRUE(parsed->detail.empty());
}

TEST(RecordTest, ParseTrimsSurroundingWhitespace) {
  const auto parsed =
      ParseRecordLine("  2010-01-10 00:00:15 r1 A-1-B detail text \n");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->router, "r1");
  EXPECT_EQ(parsed->detail, "detail text");
}

TEST(RecordTest, ParseRejectsMalformed) {
  EXPECT_FALSE(ParseRecordLine("").has_value());
  EXPECT_FALSE(ParseRecordLine("garbage").has_value());
  EXPECT_FALSE(ParseRecordLine("2010-01-10 00:00:15").has_value());
  EXPECT_FALSE(ParseRecordLine("2010-13-99 00:00:15 r1 C msg").has_value());
  EXPECT_FALSE(ParseRecordLine("2010-01-10 00:00:15 r1only").has_value());
}

struct SeverityCase {
  const char* code;
  int severity;
};

class SeverityTest : public ::testing::TestWithParam<SeverityCase> {};

TEST_P(SeverityTest, ExtractsVendorSeverity) {
  EXPECT_EQ(VendorSeverity(GetParam().code), GetParam().severity)
      << GetParam().code;
}

INSTANTIATE_TEST_SUITE_P(
    Table, SeverityTest,
    ::testing::Values(
        SeverityCase{"LINK-3-UPDOWN", 3},
        SeverityCase{"LINEPROTO-5-UPDOWN", 5},
        SeverityCase{"SYS-1-CPURISINGTHRESHOLD", 1},
        SeverityCase{"TCP-6-BADAUTH", 6},
        SeverityCase{"SNMP-WARNING-linkDown", 4},
        SeverityCase{"SVCMGR-MAJOR-sapPortStateChangeProcessed", 3},
        SeverityCase{"PIM-MINOR-pimNeighborUp", 4},
        SeverityCase{"SYSTEM-INFO-tmnxTimeSync", 6},
        SeverityCase{"NOSEVERITY", 6},
        SeverityCase{"WEIRD-99-THING", 6},  // 99 is not a single digit
        SeverityCase{"A-0-B", 0},
        // Trailing-dash codes: the severity field may sit at the end or
        // be empty.
        SeverityCase{"LINK-3-", 3},
        SeverityCase{"CODE-", 6},    // nothing after the first dash
        SeverityCase{"A--B", 6},     // empty middle field
        // Named severities, including names the table does not know.
        SeverityCase{"A-CRITICAL-B", 2},
        SeverityCase{"A-EMERGENCY-B", 0},
        SeverityCase{"A-BANANA-B", 6},
        SeverityCase{"A-warning-B", 6},  // names are case-sensitive
        // More than two dashes: only the field between the first two
        // counts.
        SeverityCase{"A-1-B-C-D", 1},
        SeverityCase{"SVCMGR-MAJOR-sap-extra-parts", 3},
        SeverityCase{"A-B-2-C", 6},  // digit in the wrong field
        SeverityCase{"A-8-B", 6},    // out of the 0..7 range
        SeverityCase{"A-42", 6}));   // two digits, no third field

TEST(RecordTest, CodeFacility) {
  EXPECT_EQ(CodeFacility("LINK-3-UPDOWN"), "LINK");
  EXPECT_EQ(CodeFacility("SNMP-WARNING-linkDown"), "SNMP");
  EXPECT_EQ(CodeFacility("PLAIN"), "PLAIN");
  EXPECT_EQ(CodeFacility("LINK-"), "LINK");
}

TEST(RecordTest, ParseRejectsSub21CharLines) {
  // A bare timestamp (19 chars) or timestamp plus separator (20) carries
  // no router/code and must be rejected, not sliced out of bounds.
  EXPECT_FALSE(ParseRecordLine("2010-01-10 00:00:15").has_value());
  EXPECT_FALSE(ParseRecordLine("2010-01-10 00:00:15 ").has_value());
  // 21 chars but router only — still no code.
  EXPECT_FALSE(ParseRecordLine("2010-01-10 00:00:15 r").has_value());
  // The shortest parseable form: router plus code, no detail.
  const auto parsed = ParseRecordLine("2010-01-10 00:00:15 r C");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->router, "r");
  EXPECT_EQ(parsed->code, "C");
  EXPECT_TRUE(parsed->detail.empty());
}

TEST(RecordTest, ParseCollapsesMultiSpaceSeparators) {
  const auto parsed = ParseRecordLine(
      "2010-01-10 00:00:15   cr01.dllstx    LINK-3-UPDOWN    Interface "
      "down");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->router, "cr01.dllstx");
  EXPECT_EQ(parsed->code, "LINK-3-UPDOWN");
  EXPECT_EQ(parsed->detail, "Interface down");
}

TEST(RecordTest, ParsePreservesInternalDetailSpacing) {
  // Only the separators around router/code collapse; spacing inside the
  // detail text is payload and survives.
  const auto parsed =
      ParseRecordLine("2010-01-10 00:00:15 r1 A-1-B hello   world");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->detail, "hello   world");
}

TEST(RecordTest, ParseNoDetailWithTrailingSpaces) {
  const auto parsed = ParseRecordLine("2010-01-10 00:00:15 r1 SYS-5-X   ");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->code, "SYS-5-X");
  EXPECT_TRUE(parsed->detail.empty());
}

TEST(RecordTest, ParseKeepsTrailingDashCode) {
  const auto parsed = ParseRecordLine("2010-01-10 00:00:15 r1 LINK-3- up");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->code, "LINK-3-");
  EXPECT_EQ(VendorSeverity(parsed->code), 3);
}

// The paper's §2 point: vendor severity does NOT order operational
// importance — a CPU message (severity 1) is "more severe" than a link
// down (severity 3), which operators would dispute.
TEST(RecordTest, VendorSeverityIsNotOperationalImportance) {
  EXPECT_LT(VendorSeverity("SYS-1-CPURISINGTHRESHOLD"),
            VendorSeverity("LINK-3-UPDOWN"));
}

TEST(RecordTest, ParseRecordIntoReusesRecordWithoutLeakingFields) {
  SyslogRecord rec;
  TimestampMemo memo;
  ASSERT_TRUE(ParseRecordInto(
      "2009-09-01 00:00:01 r1 LINK-3-UPDOWN long detail text", rec, &memo));
  EXPECT_EQ(rec.detail, "long detail text");
  // A detail-less line parsed into the same record must clear the stale
  // detail, not keep the previous parse's.
  ASSERT_TRUE(ParseRecordInto("2009-09-01 00:00:02 r2 OSPF-5-ADJCHG", rec,
                              &memo));
  EXPECT_EQ(rec.router, "r2");
  EXPECT_EQ(rec.code, "OSPF-5-ADJCHG");
  EXPECT_TRUE(rec.detail.empty());
}

TEST(RecordTest, ParseRecordIntoMatchesParseRecordLine) {
  const char* lines[] = {
      "2009-09-01 00:00:01 r1 LINK-3-UPDOWN Interface down",
      "  2009-09-01 00:00:01   r1   LINK-3-UPDOWN   spaced out  ",
      "2009-09-01 00:00:01 r1 CODE-ONLY",
      "2009-09-01 00:00:01.250 r1 A-1-B millis are not archive form",
      "2009-13-01 00:00:01 r1 A-1-B bad month",
      "2009-09-01 00:00:01 router-without-code",
      "short",
      "",
  };
  TimestampMemo memo;
  for (const char* line : lines) {
    const auto viaLine = ParseRecordLine(line);
    SyslogRecord rec;
    const bool ok = ParseRecordInto(line, rec, &memo);
    ASSERT_EQ(ok, viaLine.has_value()) << "line: " << line;
    if (viaLine.has_value()) {
      EXPECT_EQ(rec, *viaLine) << "line: " << line;
    }
  }
}

}  // namespace
}  // namespace sld::syslog
