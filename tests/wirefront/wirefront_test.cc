// Wire-front behavior over real loopback sockets: batched delivery, the
// exact max cap, SO_REUSEPORT fan-out, kernel-drop accounting, and the
// acceptance invariant that every backend (legacy one-at-a-time receive,
// batched recvmmsg, io_uring when the host supports it) produces a
// byte-identical event log from the same replayed stream at 1/4/16
// shards.
//
// Loopback UDP drops datagrams when the receiver is slow (routine under
// sanitizers), so nothing here asserts on a single send/receive
// exchange: streams use ack-window flow control with retransmission and
// duplicate suppression, all bounded by wall-clock deadlines.
#include "wirefront/wirefront.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "core/learn.h"
#include "engine/engine.h"
#include "net/config_parser.h"
#include "sim/generator.h"
#include "syslog/collector.h"
#include "syslog/udp.h"
#include "syslog/wire.h"

namespace sld::wirefront {
namespace {

using Clock = std::chrono::steady_clock;

Clock::time_point Deadline(int seconds = 60) {
  return Clock::now() + std::chrono::seconds(seconds);
}

TEST(WireFrontTest, BackendNamesRoundTrip) {
  EXPECT_STREQ(BackendName(Backend::kPoll), "poll");
  EXPECT_STREQ(BackendName(Backend::kUring), "uring");
  EXPECT_EQ(BackendFromName("poll"), Backend::kPoll);
  EXPECT_EQ(BackendFromName("recvmmsg"), Backend::kPoll);
  EXPECT_EQ(BackendFromName("uring"), Backend::kUring);
  EXPECT_EQ(BackendFromName("io_uring"), Backend::kUring);
  EXPECT_FALSE(BackendFromName("epoll").has_value());
}

TEST(WireFrontTest, OpenValidatesOptions) {
  std::string error;
  EXPECT_EQ(WireFront::Open(WireOptions{}, {}, &error), nullptr);
  EXPECT_NE(error.find("no tenants"), std::string::npos);

  WireOptions bad;
  bad.listeners = 0;
  EXPECT_EQ(WireFront::Open(bad, {TenantPort{}}, &error), nullptr);

  // Two tenants on one explicit port would share a flow-hash group.
  std::vector<TenantPort> dup(2);
  dup[0].port = 45678;
  dup[1].port = 45678;
  EXPECT_EQ(WireFront::Open(WireOptions{}, dup, &error), nullptr);
  EXPECT_NE(error.find("duplicate"), std::string::npos);
}

TEST(WireFrontTest, ExplicitUringFailsLoudlyWhenUnsupported) {
  if (UringSupported()) GTEST_SKIP() << "io_uring available here";
  WireOptions options;
  options.backend = Backend::kUring;
  std::string error;
  EXPECT_EQ(WireFront::Open(options, {TenantPort{}}, &error), nullptr);
  EXPECT_FALSE(error.empty());
}

// Sends `frames` one at a time with retransmit-until-delivered, so every
// backend sees the identical arrival sequence; delivered payloads are
// appended through `sink`.
void SendAllInOrder(WireFront& front, syslog::UdpSender& sender,
                    const std::vector<std::string>& frames,
                    const WireFront::Sink& sink) {
  const auto deadline = Deadline(120);
  for (const std::string& frame : frames) {
    const std::uint64_t before = front.datagrams();
    while (front.datagrams() == before) {
      ASSERT_LT(Clock::now(), deadline) << "frame never delivered";
      ASSERT_TRUE(sender.Send(frame));
      const std::ptrdiff_t got = front.PollOnce(250, 1, sink);
      ASSERT_NE(got, WireFront::kError);
    }
  }
}

TEST(WireFrontTest, DeliversBatchesAndCountsPerListener) {
  WireOptions options;
  options.batch = 8;
  std::string error;
  auto front = WireFront::Open(options, {TenantPort{}}, &error);
  ASSERT_NE(front, nullptr) << error;
  ASSERT_NE(front->port_of(0), 0);
  auto sender = syslog::UdpSender::Open("127.0.0.1", front->port_of(0));
  ASSERT_TRUE(sender.has_value());

  std::vector<std::string> frames;
  for (int i = 0; i < 50; ++i) frames.push_back("payload " + std::to_string(i));

  std::vector<std::string> got;
  const WireFront::Sink sink = [&](std::size_t tenant,
                                   std::string_view datagram) {
    EXPECT_EQ(tenant, 0u);
    got.emplace_back(datagram);
  };
  SendAllInOrder(*front, *sender, frames, sink);
  EXPECT_EQ(got, frames);
  EXPECT_EQ(front->datagrams(), frames.size());
  ASSERT_EQ(front->listener_count(), 1u);
  EXPECT_EQ(front->listener_datagrams(0), frames.size());
}

TEST(WireFrontTest, MaxCapIsExact) {
  // A capped PollOnce must deliver at most `max` datagrams and leave the
  // rest queued — the host's --max-datagrams contract depends on it.
  WireOptions options;
  options.batch = 64;  // batch larger than the cap: the cap must win
  std::string error;
  auto front = WireFront::Open(options, {TenantPort{}}, &error);
  ASSERT_NE(front, nullptr) << error;
  auto sender = syslog::UdpSender::Open("127.0.0.1", front->port_of(0));
  ASSERT_TRUE(sender.has_value());

  constexpr std::size_t kFrames = 10;
  std::set<std::string> seen;
  const WireFront::Sink sink = [&](std::size_t, std::string_view datagram) {
    seen.emplace(datagram);
  };
  const auto deadline = Deadline(120);
  while (seen.size() < kFrames) {
    ASSERT_LT(Clock::now(), deadline);
    for (std::size_t i = 0; i < kFrames; ++i) {
      ASSERT_TRUE(sender->Send("frame " + std::to_string(i)));
    }
    std::ptrdiff_t got;
    do {
      got = front->PollOnce(250, 3, sink);
      ASSERT_NE(got, WireFront::kError);
      ASSERT_LE(got, 3);  // the cap, exactly
    } while (got > 0 && Clock::now() < deadline);
  }
  EXPECT_EQ(seen.size(), kFrames);
}

TEST(WireFrontTest, ReusePortFanOutSpreadsFlows) {
  // --listeners 4: 64 distinct source sockets (flows) must spread across
  // the SO_REUSEPORT group.  The kernel hashes by flow, so a single flow
  // landing on one listener is expected — but 64 flows all hashing onto
  // one listener out of four is (1/4)^63: effectively impossible.
  WireOptions options;
  options.listeners = 4;
  std::string error;
  auto front = WireFront::Open(options, {TenantPort{}}, &error);
  ASSERT_NE(front, nullptr) << error;
  ASSERT_EQ(front->listener_count(), 4u);

  constexpr std::size_t kFlows = 64;
  std::vector<syslog::UdpSender> senders;
  for (std::size_t i = 0; i < kFlows; ++i) {
    auto sender = syslog::UdpSender::Open("127.0.0.1", front->port_of(0));
    ASSERT_TRUE(sender.has_value());
    senders.push_back(std::move(*sender));
  }

  std::set<std::string> seen;
  const WireFront::Sink sink = [&](std::size_t, std::string_view datagram) {
    seen.emplace(datagram);
  };
  const auto deadline = Deadline(120);
  while (seen.size() < kFlows) {
    ASSERT_LT(Clock::now(), deadline);
    for (std::size_t i = 0; i < kFlows; ++i) {
      if (seen.count("flow " + std::to_string(i)) != 0) continue;
      ASSERT_TRUE(senders[i].Send("flow " + std::to_string(i)));
    }
    while (front->PollOnce(250, 0, sink) > 0) {
    }
  }
  EXPECT_EQ(seen.size(), kFlows);

  int active_listeners = 0;
  for (std::size_t i = 0; i < front->listener_count(); ++i) {
    if (front->listener_datagrams(i) > 0) ++active_listeners;
  }
  EXPECT_GE(active_listeners, 2) << "SO_REUSEPORT fan-out is not spreading";
}

TEST(WireFrontTest, KernelDropAccountingClosesTheLedger) {
  // Overrun a deliberately tiny receive buffer, then verify the loss
  // ledger balances: delivered + kernel_drops == sent.  SO_RXQ_OVFL
  // attaches the cumulative drop count to the NEXT datagram that fits,
  // so after the burst we keep nudging single datagrams through until
  // the counter surfaces the tail loss.
  WireOptions options;
  options.rcvbuf_bytes = 4096;  // the kernel clamps to its minimum
  std::string error;
  auto front = WireFront::Open(options, {TenantPort{}}, &error);
  ASSERT_NE(front, nullptr) << error;
  auto sender = syslog::UdpSender::Open("127.0.0.1", front->port_of(0));
  ASSERT_TRUE(sender.has_value());

  const WireFront::Sink sink = [](std::size_t, std::string_view) {};

  // Burst without draining: most of this overflows the socket buffer.
  const std::string payload(1024, 'x');
  std::size_t sent = 0;
  for (int i = 0; i < 512; ++i) {
    if (sender->Send(payload)) ++sent;
  }
  ASSERT_GT(sent, 0u);

  const auto deadline = Deadline(60);
  while (front->datagrams() + front->kernel_drops() < sent &&
         Clock::now() < deadline) {
    while (front->PollOnce(100, 0, sink) > 0) {
    }
    if (front->datagrams() + front->kernel_drops() >= sent) break;
    // The queue has space now; a nudge datagram carries the counter.
    if (sender->Send(payload)) ++sent;
  }
  EXPECT_EQ(front->datagrams() + front->kernel_drops(), sent);
  EXPECT_GT(front->kernel_drops(), 0u)
      << "a 512 KiB burst into a ~4 KiB buffer must drop";
}

// ---- Backend parity --------------------------------------------------------

struct ParityFixture {
  sim::Dataset history;
  sim::Dataset live;
  core::LocationDict dict;
  core::KnowledgeBase kb;
  std::vector<std::string> frames;  // unique wire frames, send order

  ParityFixture() {
    sim::DatasetSpec spec = sim::DatasetASpec();
    spec.topo.num_routers = 8;
    history = sim::GenerateDataset(spec, 0, 5, 601);
    live = sim::GenerateDataset(spec, 5, 1, 602);
    std::vector<net::ParsedConfig> parsed;
    for (const std::string& cfg : history.configs) {
      parsed.push_back(net::ParseConfig(cfg));
    }
    dict = core::LocationDict::Build(parsed);
    core::OfflineLearner learner;
    kb = learner.Learn(history.messages, dict);
    std::set<std::string> seen;
    for (const auto& rec : live.messages) {
      std::string frame = syslog::EncodeRfc3164(rec);
      if (seen.insert(frame).second) frames.push_back(std::move(frame));
      if (frames.size() == 600) break;
    }
  }

  engine::EngineOptions Options(std::size_t shards) const {
    engine::EngineOptions opts;
    opts.shards = shards;
    opts.hold_ms = 5000;
    opts.year = 2009;
    opts.suppress_duplicates = true;  // retransmissions must be harmless
    return opts;
  }
};

// One run: every frame through `ingest` (retransmitting until the
// collector accepts it), pumping as we go; returns the formatted event
// log.
template <typename IngestOnce>
std::vector<std::string> RunEngine(const ParityFixture& fx, std::size_t shards,
                                   IngestOnce&& ingest_once) {
  // Each run gets a private KB (learning is deterministic): a live
  // engine may add catch-all templates, which must not leak across runs.
  core::OfflineLearner learner;
  core::KnowledgeBase kb = learner.Learn(fx.history.messages, fx.dict);
  engine::Engine eng(&kb, &fx.dict, fx.Options(shards));
  std::vector<std::string> events;
  eng.SetEventSink([&events](const core::DigestEvent& ev) {
    events.push_back(ev.Format());
  });
  const auto deadline = Deadline(180);
  for (const std::string& frame : fx.frames) {
    const std::size_t before = eng.collector().accepted_count();
    while (eng.collector().accepted_count() == before) {
      if (Clock::now() >= deadline) {
        ADD_FAILURE() << "frame never accepted";
        return events;
      }
      ingest_once(eng, frame);
    }
    eng.Pump();
  }
  for (auto& ev : eng.Finish()) events.push_back(ev.Format());
  // Events close on the merge thread at shards > 1; sort for a stable
  // comparison across shard counts and backends.
  std::sort(events.begin(), events.end());
  return events;
}

TEST(WireFrontParityTest, AllBackendsByteIdenticalEventLogs) {
  const ParityFixture fx;
  ASSERT_GT(fx.frames.size(), 100u);

  for (const std::size_t shards : {1u, 4u, 16u}) {
    SCOPED_TRACE(testing::Message() << shards << " shard(s)");

    // Reference: direct ingest, no sockets.
    const std::vector<std::string> want =
        RunEngine(fx, shards, [](engine::Engine& eng, const std::string& f) {
          eng.IngestDatagram(f);
        });
    ASSERT_GT(want.size(), 0u);

    // Legacy backend: the one-datagram-per-poll UdpReceiver path.
    {
      auto receiver = syslog::UdpReceiver::Bind(0);
      ASSERT_TRUE(receiver.has_value());
      auto sender = syslog::UdpSender::Open("127.0.0.1", receiver->port());
      ASSERT_TRUE(sender.has_value());
      std::string buffer;
      const std::vector<std::string> got = RunEngine(
          fx, shards, [&](engine::Engine& eng, const std::string& f) {
            ASSERT_TRUE(sender->Send(f));
            buffer.clear();
            if (receiver->Receive(&buffer, 250)) eng.IngestDatagram(buffer);
          });
      EXPECT_EQ(got, want) << "legacy receive path diverged";
    }

    // Wire-front backends: poll always; uring when this host supports it.
    std::vector<Backend> backends{Backend::kPoll};
    if (UringSupported()) backends.push_back(Backend::kUring);
    for (const Backend backend : backends) {
      SCOPED_TRACE(BackendName(backend));
      WireOptions options;
      options.backend = backend;
      options.batch = 16;
      std::string error;
      auto front = WireFront::Open(options, {TenantPort{}}, &error);
      ASSERT_NE(front, nullptr) << error;
      auto sender = syslog::UdpSender::Open("127.0.0.1", front->port_of(0));
      ASSERT_TRUE(sender.has_value());
      const std::vector<std::string> got = RunEngine(
          fx, shards, [&](engine::Engine& eng, const std::string& f) {
            ASSERT_TRUE(sender->Send(f));
            const WireFront::Sink sink = [&eng](std::size_t,
                                                std::string_view datagram) {
              eng.IngestDatagram(datagram);
            };
            ASSERT_NE(front->PollOnce(250, 0, sink), WireFront::kError);
          });
      EXPECT_EQ(got, want) << "wire front diverged";
    }
  }
}

// Buffer-ring exhaustion and wrap: blast more datagrams than the uring
// buffer ring holds, drain, and repeat so every ring slot is recycled
// several times over.  Runs only where the kernel supports io_uring.
TEST(WireFrontTest, UringBufferRingExhaustionAndWrap) {
  if (!UringSupported()) GTEST_SKIP() << "io_uring unsupported here";
  WireOptions options;
  options.backend = Backend::kUring;
  options.ring_buffers = 8;  // tiny ring: bursts exhaust it immediately
  options.ring_buffer_bytes = 2048;
  std::string error;
  auto front = WireFront::Open(options, {TenantPort{}}, &error);
  ASSERT_NE(front, nullptr) << error;
  ASSERT_EQ(front->backend(), Backend::kUring);
  auto sender = syslog::UdpSender::Open("127.0.0.1", front->port_of(0));
  ASSERT_TRUE(sender.has_value());

  std::set<std::string> seen;
  const WireFront::Sink sink = [&](std::size_t, std::string_view datagram) {
    seen.emplace(datagram);
  };
  // Four generations of 32 frames against an 8-buffer ring: the ring
  // must starve (ENOBUFS terminates the multishot arm), recycle, re-arm,
  // and wrap its buffer ids many times without losing integrity.
  const auto deadline = Deadline(120);
  for (int gen = 0; gen < 4; ++gen) {
    const std::size_t target = (gen + 1) * 32;
    while (seen.size() < target) {
      ASSERT_LT(Clock::now(), deadline);
      for (std::size_t i = gen * 32; i < target; ++i) {
        const std::string frame = "gen frame " + std::to_string(i);
        if (seen.count(frame) == 0) ASSERT_TRUE(sender->Send(frame));
      }
      std::ptrdiff_t got;
      do {
        got = front->PollOnce(100, 0, sink);
        ASSERT_NE(got, WireFront::kError);
      } while (got > 0);
    }
  }
  EXPECT_EQ(seen.size(), 128u);
}

}  // namespace
}  // namespace sld::wirefront
