#!/usr/bin/env bash
# Loopback soak: slgen blasts a live `sldigest serve` with deterministic
# fault injection and the ledgers on both sides must reconcile exactly
# (DESIGN.md section 16):
#
#   sender:   sent = generated + duplicates = wire + injected_drops
#   receiver: received = accepted + late + malformed + duplicates
#   joint:    sent = accepted + kernel_drops + malformed + injected_drops
#
# with kernel_drops = wire - received (socket-buffer overflow is the only
# loss source on loopback UDP), late = 0 (sender-thread skew is bounded
# by threads x batch virtual milliseconds, far under the hold window) and
# duplicates = 0 (serve runs without --dedup, so injected duplicates land
# as ordinary accepted records).  check_metrics.py separately verifies
# the collector's internal identities and the histogram p50/p99 ranges.
#
# Usage: cli_slgen_soak.sh SLDIGEST_BIN SLGEN_BIN CHECK_METRICS_PY
set -euo pipefail
BIN=$1
SLGEN=$2
CHECK=$3
d=$(mktemp -d)
cleanup() {
  kill $(jobs -p) 2>/dev/null || true
  rm -rf "$d"
}
trap cleanup EXIT

# Two simulated days of history so serve has a KB to match against.
"$BIN" gen --dataset A --days 2 --seed 41 \
  --out "$d/hist.log" --configs "$d/cfg" > /dev/null
"$BIN" learn --configs "$d/cfg" --history "$d/hist.log" \
  --kb "$d/kb.txt" > /dev/null

"$BIN" serve --configs "$d/cfg" --kb "$d/kb.txt" --port 0 \
  --idle-exit-s 10 --metrics-out "$d/m.json" \
  > "$d/serve.txt" 2> "$d/serve.err" &
pid=$!
port=""
for _ in $(seq 1 150); do
  port=$(grep -o 'listening on 127.0.0.1:[0-9]*' "$d/serve.err" \
    2>/dev/null | grep -o '[0-9]*$' | head -1 || true)
  [ -n "$port" ] && break
  sleep 0.1
done
[ -n "$port" ] || { echo "serve never announced a port" >&2; exit 1; }

# Paced well under loopback capacity so kernel_drops stays small, with
# every fault knob engaged and the seed the unit tests pin counts for.
"$SLGEN" --port "$port" --total 20000 --threads 2 --rate 15000 \
  --duplicate 0.02 --drop 0.01 --reorder 0.05 --seed 42 \
  --stats "$d/slgen.json" > "$d/slgen.txt"
wait "$pid"

received=$(grep -o 'done: [0-9]* datagrams' "$d/serve.err" \
  | grep -o '[0-9]*' | head -1)
srv_malformed=$(grep -o '([0-9]* malformed)' "$d/serve.err" \
  | grep -o '[0-9]*' | head -1)

# Collector-internal identities plus histogram p50/p99 range checks.
python3 "$CHECK" "$d/m.json" "$received"

python3 - "$d/slgen.json" "$d/m.json" "$received" "$srv_malformed" <<'PY'
import json
import sys

slgen_path, metrics_path, received_s, srv_malformed_s = sys.argv[1:5]
received = int(received_s)
srv_malformed = int(srv_malformed_s)

with open(slgen_path, encoding="utf-8") as f:
    sl = json.load(f)
with open(metrics_path, encoding="utf-8") as f:
    snapshot = json.load(f)
m = {s["name"]: s["value"] for s in snapshot["series"]
     if s["type"] != "histogram"}

failures = []


def check(label, got, want):
    if got != want:
        failures.append(f"{label}: {got} != {want}")


# Sender-side ledger (also enforced by slgen itself; re-derived here so
# a stale --stats file cannot silently pass).
check("sent = generated + duplicates", sl["sent"],
      sl["generated"] + sl["duplicates"])
check("sent = wire + injected_drops", sl["sent"],
      sl["wire"] + sl["injected_drops"])

# Receiver-side: no --dedup and a generous hold window mean every
# received datagram is an accepted record.
accepted = m["collector_accepted_total"]
late = m["collector_late_total"]
malformed = m["collector_malformed_total"]
duplicates = m["collector_duplicate_total"]
check("late", late, 0)
check("malformed (collector)", malformed, 0)
check("malformed (serve stderr)", srv_malformed, 0)
check("duplicates (no --dedup)", duplicates, 0)
check("received = accepted + late + malformed + duplicates", received,
      accepted + late + malformed + duplicates)

# The joint identity the whole soak exists to witness.
kernel_drops = sl["wire"] - received
if kernel_drops < 0:
    failures.append(f"kernel_drops negative: wire {sl['wire']} < "
                    f"received {received}")
check("sent = accepted + kernel_drops + malformed + injected_drops",
      sl["sent"],
      accepted + kernel_drops + malformed + sl["injected_drops"])

if failures:
    for f in failures:
        print(f"SOAK FAIL: {f}", file=sys.stderr)
    sys.exit(1)
print(f"soak reconciled: sent={sl['sent']} wire={sl['wire']} "
      f"received={received} accepted={accepted} "
      f"kernel_drops={kernel_drops} injected_drops={sl['injected_drops']}")
PY
echo "PASS: slgen/serve ledgers reconcile over loopback"
