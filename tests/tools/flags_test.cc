#include "tools/flags.h"

#include <gtest/gtest.h>

#include <vector>

namespace sld::tools {
namespace {

// Builds a mutable argv from string literals (Flags wants char**).
class Argv {
 public:
  explicit Argv(std::initializer_list<const char*> args) {
    for (const char* a : args) storage_.emplace_back(a);
    for (std::string& s : storage_) ptrs_.push_back(s.data());
  }
  int argc() const { return static_cast<int>(ptrs_.size()); }
  char** argv() { return ptrs_.data(); }

 private:
  std::vector<std::string> storage_;
  std::vector<char*> ptrs_;
};

TEST(FlagsTest, ParsesValuesAndBooleans) {
  Argv a({"sldigest", "digest", "--kb", "kb.txt", "--report", "--top", "5"});
  Flags flags(a.argc(), a.argv(), 2);
  EXPECT_TRUE(flags.ok());
  EXPECT_EQ(flags.Get("kb"), "kb.txt");
  EXPECT_TRUE(flags.Has("report"));
  EXPECT_EQ(flags.Get("report"), "");
  EXPECT_EQ(flags.GetInt("top", 0), 5);
  EXPECT_FALSE(flags.Has("csv"));
  EXPECT_EQ(flags.GetInt("missing", 7), 7);
}

TEST(FlagsTest, NegativeValueIsNotSwallowedAsFlag) {
  // Regression: the seed parser treated any "--"-prefixed or "-"-prefixed
  // successor inconsistently; "--day0 -5" must parse as day0=-5, and the
  // following flag must still be seen.
  Argv a({"sldigest", "gen", "--day0", "-5", "--days", "3"});
  Flags flags(a.argc(), a.argv(), 2);
  EXPECT_TRUE(flags.ok());
  EXPECT_EQ(flags.GetInt("day0", 0), -5);
  EXPECT_EQ(flags.GetInt("days", 0), 3);
}

TEST(FlagsTest, DoubleDashDigitIsAValueToo) {
  // "--top --5" — a typo'd negative — still lands as top's value rather
  // than registering a bogus flag named "5".
  Argv a({"sldigest", "digest", "--top", "--5"});
  Flags flags(a.argc(), a.argv(), 2);
  EXPECT_TRUE(flags.ok());
  EXPECT_FALSE(flags.Has("5"));
  EXPECT_EQ(flags.Get("top"), "--5");
}

TEST(FlagsTest, FlagLikeSuccessorStaysBoolean) {
  Argv a({"sldigest", "learn", "--sweep", "--kb", "kb.txt"});
  Flags flags(a.argc(), a.argv(), 2);
  EXPECT_TRUE(flags.ok());
  EXPECT_TRUE(flags.Has("sweep"));
  EXPECT_EQ(flags.Get("sweep"), "");
  EXPECT_EQ(flags.Get("kb"), "kb.txt");
}

TEST(FlagsTest, EqualsSyntax) {
  Argv a({"sldigest", "digest", "--top=12", "--csv=out.csv", "--empty="});
  Flags flags(a.argc(), a.argv(), 2);
  EXPECT_TRUE(flags.ok());
  EXPECT_EQ(flags.GetInt("top", 0), 12);
  EXPECT_EQ(flags.Get("csv"), "out.csv");
  EXPECT_TRUE(flags.Has("empty"));
  EXPECT_EQ(flags.Get("empty"), "");
}

TEST(FlagsTest, GetIntRejectsGarbage) {
  Argv a({"sldigest", "digest", "--top", "many", "--days", "3x"});
  Flags flags(a.argc(), a.argv(), 2);
  EXPECT_EQ(flags.GetInt("top", 42), 42);
  EXPECT_EQ(flags.GetInt("days", 9), 9);
}

TEST(FlagsTest, StrayPositionalFlagsError) {
  Argv a({"sldigest", "digest", "oops", "--kb", "kb.txt"});
  Flags flags(a.argc(), a.argv(), 2);
  EXPECT_FALSE(flags.ok());
  EXPECT_EQ(flags.Get("kb"), "kb.txt");  // parsing continues past it
}

TEST(FlagsTest, RequireFlagsMissingValues) {
  Argv a({"sldigest", "digest", "--report"});
  Flags flags(a.argc(), a.argv(), 2);
  EXPECT_TRUE(flags.ok());
  flags.Require("kb");
  EXPECT_FALSE(flags.ok());
}

TEST(FlagsTest, LastOccurrenceWins) {
  Argv a({"sldigest", "digest", "--top", "3", "--top", "8"});
  Flags flags(a.argc(), a.argv(), 2);
  EXPECT_EQ(flags.GetInt("top", 0), 8);
  EXPECT_EQ(flags.Get("top"), "8");
}

// Repeatable flags (serve --tenant) keep every occurrence in order.
TEST(FlagsTest, GetAllKeepsEveryOccurrenceInOrder) {
  Argv a({"sldigest", "serve", "--tenant", "a:cfg:kb:1", "--shards", "4",
          "--tenant=b:cfg:kb:2", "--tenant", "c:cfg:kb:3"});
  Flags flags(a.argc(), a.argv(), 2);
  EXPECT_TRUE(flags.ok());
  const std::vector<std::string> expected = {"a:cfg:kb:1", "b:cfg:kb:2",
                                             "c:cfg:kb:3"};
  EXPECT_EQ(flags.GetAll("tenant"), expected);
  // Scalar accessors on a repeated flag see the last value.
  EXPECT_EQ(flags.Get("tenant"), "c:cfg:kb:3");
  // Absent flags yield an empty list, not an error.
  EXPECT_TRUE(flags.GetAll("port").empty());
}

}  // namespace
}  // namespace sld::tools
