#!/usr/bin/env python3
"""Verify collector reconciliation invariants on a metrics snapshot.

Usage: check_metrics.py SNAPSHOT.json EXPECTED_INGESTED

Reads the JSON snapshot written by `sldigest --metrics-out` and checks
the collector accounting identities documented in DESIGN.md section 9:

  accepted == released + buffered          (no record vanishes)
  accepted + late + malformed + duplicates == EXPECTED_INGESTED

EXPECTED_INGESTED is the number of records offered to the collector
(for `sldigest stream` runs, the archive size).  Exits non-zero with a
diagnostic on any violation.
"""

import json
import sys


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    path = sys.argv[1]
    expected = int(sys.argv[2])

    with open(path, encoding="utf-8") as f:
        snapshot = json.load(f)

    totals: dict[str, int] = {}
    for series in snapshot["series"]:
        if series["type"] == "histogram":
            continue
        totals[series["name"]] = totals.get(series["name"], 0) + series["value"]

    def get(name: str) -> int:
        return totals.get(name, 0)

    accepted = get("collector_accepted_total")
    released = get("collector_released_total")
    buffered = get("collector_reorder_buffer_depth")
    late = get("collector_late_total")
    malformed = get("collector_malformed_total")
    duplicates = get("collector_duplicate_total")

    failures = []
    if accepted != released + buffered:
        failures.append(
            f"accepted ({accepted}) != released ({released}) "
            f"+ buffered ({buffered})"
        )
    ingested = accepted + late + malformed + duplicates
    if ingested != expected:
        failures.append(
            f"accepted ({accepted}) + late ({late}) + malformed ({malformed})"
            f" + duplicates ({duplicates}) = {ingested}, expected {expected}"
        )
    if accepted == 0:
        failures.append("accepted is 0 -- metrics were not wired through")

    if failures:
        for f in failures:
            print(f"RECONCILE FAIL: {f}", file=sys.stderr)
        return 1
    print(
        f"reconciled: accepted={accepted} released={released} "
        f"buffered={buffered} late={late} malformed={malformed} "
        f"duplicates={duplicates}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
