#!/usr/bin/env python3
"""Verify collector reconciliation invariants on a metrics snapshot.

Usage: check_metrics.py SNAPSHOT.json EXPECTED_INGESTED
       check_metrics.py --per-tenant SNAPSHOT.json NAME=EXPECTED [...]

Reads the JSON snapshot written by `sldigest --metrics-out` and checks
the collector accounting identities documented in DESIGN.md section 9:

  accepted == released + buffered          (no record vanishes)
  accepted + late + malformed + duplicates == EXPECTED_INGESTED

Every histogram series carrying p50/p99 fields is additionally
range-checked: when count > 0, 0 <= p50 <= p99 <= last finite bucket
bound (the +Inf bucket clamps there by construction).

EXPECTED_INGESTED is the number of records offered to the collector
(for `sldigest stream` runs, the archive size).

In --per-tenant mode the snapshot comes from a multi-tenant
`sldigest serve` run: every collector series must carry a tenant label,
the identities must hold within each named tenant separately, and the
per-tenant totals must also reconcile when summed (the whole-process
view a dashboard aggregates to).  Exits non-zero with a diagnostic on
any violation.
"""

import json
import sys

COLLECTOR_SERIES = (
    "collector_accepted_total",
    "collector_released_total",
    "collector_reorder_buffer_depth",
    "collector_late_total",
    "collector_malformed_total",
    "collector_duplicate_total",
)


def check_histogram_quantiles(path, failures):
    """p50/p99 sanity for every histogram series in the snapshot."""
    with open(path, encoding="utf-8") as f:
        snapshot = json.load(f)
    for series in snapshot["series"]:
        if series["type"] != "histogram":
            continue
        name = series["name"]
        if "p50" not in series or "p99" not in series:
            failures.append(f"histogram {name} missing p50/p99 fields")
            continue
        if series.get("count", 0) == 0:
            continue
        p50, p99 = series["p50"], series["p99"]
        finite = [b["le"] for b in series["buckets"] if b["le"] != "+Inf"]
        top = finite[-1] if finite else 0.0
        if not 0.0 <= p50 <= p99 <= top:
            failures.append(
                f"histogram {name}: expected 0 <= p50 ({p50}) <= "
                f"p99 ({p99}) <= {top}"
            )


def load_totals(path, by_tenant):
    """name -> value, or (tenant, name) -> value when by_tenant."""
    with open(path, encoding="utf-8") as f:
        snapshot = json.load(f)
    totals = {}
    unlabeled = []
    for series in snapshot["series"]:
        if series["type"] == "histogram":
            continue
        name = series["name"]
        if by_tenant:
            tenant = series.get("labels", {}).get("tenant")
            if tenant is None:
                if name in COLLECTOR_SERIES:
                    unlabeled.append(name)
                continue
            key = (tenant, name)
        else:
            key = name
        totals[key] = totals.get(key, 0) + series["value"]
    return totals, unlabeled


def reconcile(get, expected, failures, who=""):
    tag = f"[{who}] " if who else ""
    accepted = get("collector_accepted_total")
    released = get("collector_released_total")
    buffered = get("collector_reorder_buffer_depth")
    late = get("collector_late_total")
    malformed = get("collector_malformed_total")
    duplicates = get("collector_duplicate_total")

    if accepted != released + buffered:
        failures.append(
            f"{tag}accepted ({accepted}) != released ({released}) "
            f"+ buffered ({buffered})"
        )
    ingested = accepted + late + malformed + duplicates
    if expected is not None and ingested != expected:
        failures.append(
            f"{tag}accepted ({accepted}) + late ({late}) "
            f"+ malformed ({malformed}) + duplicates ({duplicates}) "
            f"= {ingested}, expected {expected}"
        )
    if accepted == 0 and malformed == 0:
        failures.append(f"{tag}no traffic counted -- metrics not wired through")
    return (
        f"{tag}accepted={accepted} released={released} buffered={buffered} "
        f"late={late} malformed={malformed} duplicates={duplicates}"
    )


def main() -> int:
    args = sys.argv[1:]
    per_tenant = bool(args) and args[0] == "--per-tenant"
    if per_tenant:
        args = args[1:]
    if len(args) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    path = args[0]
    failures = []
    lines = []
    check_histogram_quantiles(path, failures)

    if not per_tenant:
        totals, _ = load_totals(path, by_tenant=False)
        lines.append(
            reconcile(lambda n: totals.get(n, 0), int(args[1]), failures)
        )
        # The simd_level gauge (when the run records one) must be a known
        # dispatch level: 0=scalar 1=sse2 2=avx2.
        if "simd_level" in totals and totals["simd_level"] not in (0, 1, 2):
            failures.append(
                f"simd_level gauge is {totals['simd_level']}, "
                "not a known dispatch level (0..2)"
            )
    else:
        totals, unlabeled = load_totals(path, by_tenant=True)
        for name in unlabeled:
            failures.append(f"collector series without tenant label: {name}")
        summed = {}
        total_expected = 0
        for spec in args[1:]:
            tenant, _, count = spec.partition("=")
            expected = int(count)
            total_expected += expected
            lines.append(
                reconcile(
                    lambda n, t=tenant: totals.get((t, n), 0),
                    expected,
                    failures,
                    who=tenant,
                )
            )
        for (tenant, name), value in totals.items():
            summed[name] = summed.get(name, 0) + value
        lines.append(
            reconcile(
                lambda n: summed.get(n, 0), total_expected, failures,
                who="sum",
            )
        )

    if failures:
        for f in failures:
            print(f"RECONCILE FAIL: {f}", file=sys.stderr)
        return 1
    for line in lines:
        print(f"reconciled: {line}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
