#!/usr/bin/env bash
# Three-tenant serve equivalence: one multi-tenant sldigest process must
# produce, per tenant, byte-identical events to three dedicated
# single-tenant serve processes — at 1, 4, and 16 shards — and its
# shared metrics snapshot must reconcile per tenant (DESIGN.md section
# 12).  Replays are paced so loopback UDP stays lossless; --max-datagrams
# plus --idle-exit-s bound every run.
#
# Usage: serve_multitenant_test.sh SLDIGEST_BIN CHECK_METRICS_PY
set -euo pipefail
BIN=$1
CHECK=$2
d=$(mktemp -d)
cleanup() {
  kill $(jobs -p) 2>/dev/null || true
  rm -rf "$d"
}
trap cleanup EXIT

# Three independent networks: configs, history, learned KB, live day.
for i in 1 2 3; do
  "$BIN" gen --dataset A --days 2 --seed $((30 + i)) \
    --out "$d/hist$i.log" --configs "$d/cfg$i" > /dev/null
  "$BIN" gen --dataset A --days 1 --day0 2 --seed $((60 + i)) \
    --out "$d/live$i.log" --configs "$d/cfgx$i" > /dev/null
  "$BIN" learn --configs "$d/cfg$i" --history "$d/hist$i.log" \
    --kb "$d/kb$i.txt" > /dev/null
done
n1=$(wc -l < "$d/live1.log")
n2=$(wc -l < "$d/live2.log")
n3=$(wc -l < "$d/live3.log")

# Waits until $2 "listening" lines appear in stderr file $1, then echoes
# the bound ports in announcement order.
wait_ports() {
  for _ in $(seq 1 150); do
    if [ "$(grep -c 'listening on' "$1" 2>/dev/null || true)" -ge "$2" ]; then
      break
    fi
    sleep 0.1
  done
  grep -o 'listening on 127.0.0.1:[0-9]*' "$1" | grep -o '[0-9]*$'
}

replay() {
  "$BIN" replay --in "$1" --port "$2" --pace-us 100 > /dev/null 2>&1
}

# Reference: three dedicated single-tenant processes (shards=1), the
# pre-multi-tenant deployment shape.
for i in 1 2 3; do
  n=$(wc -l < "$d/live$i.log")
  "$BIN" serve --configs "$d/cfg$i" --kb "$d/kb$i.txt" --port 0 \
    --max-datagrams "$n" --idle-exit-s 15 \
    > "$d/ref$i.txt" 2> "$d/ref$i.err" &
  pid=$!
  port=$(wait_ports "$d/ref$i.err" 1)
  replay "$d/live$i.log" "$port"
  wait "$pid"
  grep -q "done: $n datagrams (0 malformed)" "$d/ref$i.err"
done

# Multi-tenant: one process, three tenants, at 1/4/16 shards.
total=$((n1 + n2 + n3))
for shards in 1 4 16; do
  "$BIN" serve \
    --tenant "t1:$d/cfg1:$d/kb1.txt:0" \
    --tenant "t2:$d/cfg2:$d/kb2.txt:0" \
    --tenant "t3:$d/cfg3:$d/kb3.txt:0" \
    --shards "$shards" --max-datagrams "$total" --idle-exit-s 15 \
    --listeners 2 --metrics-out "$d/m$shards.json" \
    > "$d/multi$shards.txt" 2> "$d/multi$shards.err" &
  pid=$!
  ports=$(wait_ports "$d/multi$shards.err" 3)
  [ "$(echo "$ports" | wc -l)" -eq 3 ]
  p1=$(echo "$ports" | sed -n 1p)
  p2=$(echo "$ports" | sed -n 2p)
  p3=$(echo "$ports" | sed -n 3p)
  # Concurrent senders: the three tenants' traffic interleaves on the
  # wire, which must not perturb any tenant's output.
  replay "$d/live1.log" "$p1" &
  r1=$!
  replay "$d/live2.log" "$p2" &
  r2=$!
  replay "$d/live3.log" "$p3" &
  r3=$!
  wait "$r1" "$r2" "$r3"
  wait "$pid"

  for i in 1 2 3; do
    grep "^t$i|" "$d/multi$shards.txt" | sed "s/^t$i|//" \
      > "$d/got${shards}_$i.txt"
    if ! cmp "$d/got${shards}_$i.txt" "$d/ref$i.txt"; then
      echo "tenant t$i diverged from standalone at $shards shards" >&2
      exit 1
    fi
    grep -q "tenant t$i done:" "$d/multi$shards.err"
  done
  # No unprefixed event lines leak through in multi-tenant mode.
  if grep -qv '^t[123]|' "$d/multi$shards.txt"; then
    echo "unprefixed output line in multi-tenant serve" >&2
    exit 1
  fi
  python3 "$CHECK" --per-tenant "$d/m$shards.json" \
    "t1=$n1" "t2=$n2" "t3=$n3"
done
echo "PASS: 3 tenants bit-identical to standalone at 1/4/16 shards"
