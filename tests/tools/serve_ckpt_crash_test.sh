#!/usr/bin/env bash
# Crash-consistent checkpoint/restart, end to end over the real serve
# loop (DESIGN.md section 14): SIGKILL a durable serve mid-replay, then
# restart it and resend the whole stream from the beginning — the
# durable event log must come out byte-identical to an uninterrupted
# run, at 1, 4, and 16 shards, and for two tenants multiplexed in one
# process (per-tenant checkpoint subdirs).  Also pins the failure modes:
# a corrupted snapshot refuses to restore instead of serving from bad
# state.
#
# Usage: serve_ckpt_crash_test.sh SLDIGEST_BIN
set -euo pipefail
BIN=$1
d=$(mktemp -d)
cleanup() {
  kill -9 $(jobs -p) 2>/dev/null || true
  rm -rf "$d"
}
trap cleanup EXIT

"$BIN" gen --dataset A --days 2 --seed 71 \
  --out "$d/hist.log" --configs "$d/cfg" > /dev/null
"$BIN" gen --dataset A --days 1 --day0 2 --seed 72 \
  --out "$d/live.log" --configs "$d/cfgx" > /dev/null
"$BIN" learn --configs "$d/cfg" --history "$d/hist.log" \
  --kb "$d/kb.txt" > /dev/null
n=$(wc -l < "$d/live.log")

wait_listening() {  # stderr-file count
  for _ in $(seq 1 150); do
    c=$(grep -c 'listening on' "$1" 2>/dev/null || true)
    if [ "${c:-0}" -ge "$2" ]; then
      return 0
    fi
    sleep 0.1
  done
  echo "server never announced $2 listener(s)"; return 1
}

port_at() {  # stderr-file index
  grep -o 'listening on 127.0.0.1:[0-9]*' "$1" | grep -o '[0-9]*$' |
    sed -n "$2p"
}

# Waits until the durable log at $1 holds at least $2 events (the kill
# trigger: guarantees the crash lands mid-stream with work to recover).
wait_events() {
  for _ in $(seq 1 200); do
    if [ "$("$BIN" events --checkpoint-dir "$1" 2>/dev/null | wc -l)" \
         -ge "$2" ]; then
      return 0
    fi
    sleep 0.1
  done
  echo "log at $1 never reached $2 events"; return 1
}

serve_flags() {  # shards ckpt-dir
  echo "--dedup --checkpoint-dir $2 --checkpoint-interval-s 1 \
        --hold-ms 200 --idle-close-s 60 --shards $1"
}

# Golden: one uninterrupted run.
rm -rf "$d/ckpt_golden"
"$BIN" serve --configs "$d/cfg" --kb "$d/kb.txt" --port 0 \
  $(serve_flags 1 "$d/ckpt_golden") \
  --max-datagrams "$n" --idle-exit-s 15 \
  > /dev/null 2> "$d/golden.err" &
pid=$!
wait_listening "$d/golden.err" 1
"$BIN" replay --in "$d/live.log" --port "$(port_at "$d/golden.err" 1)" \
  --pace-us 50 > /dev/null 2>&1
wait "$pid"
"$BIN" events --checkpoint-dir "$d/ckpt_golden" > "$d/golden.txt"
[ -s "$d/golden.txt" ]

for shards in 1 4 16; do
  dir="$d/ckpt_$shards"
  rm -rf "$dir"
  # Leg 1: serve without exit bounds, kill -9 once events are flowing.
  "$BIN" serve --configs "$d/cfg" --kb "$d/kb.txt" --port 0 \
    $(serve_flags "$shards" "$dir") \
    > /dev/null 2> "$d/crash$shards.err" &
  pid=$!
  wait_listening "$d/crash$shards.err" 1
  "$BIN" replay --in "$d/live.log" \
    --port "$(port_at "$d/crash$shards.err" 1)" \
    --pace-us 50 > /dev/null 2>&1 &
  rep=$!
  wait_events "$dir" 5
  kill -9 "$pid"
  wait "$pid" 2>/dev/null || true
  kill "$rep" 2>/dev/null || true
  wait "$rep" 2>/dev/null || true
  # Leg 2: restart on the same checkpoint dir, resend EVERYTHING.
  "$BIN" serve --configs "$d/cfg" --kb "$d/kb.txt" --port 0 \
    $(serve_flags "$shards" "$dir") \
    --max-datagrams "$n" --idle-exit-s 15 \
    > /dev/null 2> "$d/restart$shards.err" &
  pid=$!
  wait_listening "$d/restart$shards.err" 1
  grep -q 'restored; replay cursor at' "$d/restart$shards.err"
  "$BIN" replay --in "$d/live.log" \
    --port "$(port_at "$d/restart$shards.err" 1)" \
    --pace-us 50 > /dev/null 2>&1
  wait "$pid"
  "$BIN" events --checkpoint-dir "$dir" > "$d/recovered$shards.txt"
  cmp "$d/golden.txt" "$d/recovered$shards.txt"
done

# Multi-tenant: two tenants in one process, per-tenant checkpoint
# subdirs (DIR/NAME), killed and restarted together.
"$BIN" gen --dataset A --days 2 --seed 81 \
  --out "$d/hist2.log" --configs "$d/cfg2" > /dev/null
"$BIN" gen --dataset A --days 1 --day0 2 --seed 82 \
  --out "$d/live2.log" --configs "$d/cfgx2" > /dev/null
"$BIN" learn --configs "$d/cfg2" --history "$d/hist2.log" \
  --kb "$d/kb2.txt" > /dev/null
n2=$(wc -l < "$d/live2.log")

# Per-tenant goldens from the same multi-tenant shape, uninterrupted.
rm -rf "$d/ckpt_mt_golden"
"$BIN" serve \
  --tenant "ta:$d/cfg:$d/kb.txt:0" \
  --tenant "tb:$d/cfg2:$d/kb2.txt:0" \
  $(serve_flags 4 "$d/ckpt_mt_golden") \
  --max-datagrams $((n + n2)) --idle-exit-s 15 \
  > /dev/null 2> "$d/mtg.err" &
pid=$!
wait_listening "$d/mtg.err" 2
"$BIN" replay --in "$d/live.log" --port "$(port_at "$d/mtg.err" 1)" \
  --pace-us 50 > /dev/null 2>&1 &
r1=$!
"$BIN" replay --in "$d/live2.log" --port "$(port_at "$d/mtg.err" 2)" \
  --pace-us 50 > /dev/null 2>&1 &
r2=$!
wait "$r1" "$r2"
wait "$pid"
for t in ta tb; do
  "$BIN" events --checkpoint-dir "$d/ckpt_mt_golden/$t" > "$d/mtg_$t.txt"
  [ -s "$d/mtg_$t.txt" ]
done

rm -rf "$d/ckpt_mt"
"$BIN" serve \
  --tenant "ta:$d/cfg:$d/kb.txt:0" \
  --tenant "tb:$d/cfg2:$d/kb2.txt:0" \
  $(serve_flags 4 "$d/ckpt_mt") \
  > /dev/null 2> "$d/mtc.err" &
pid=$!
wait_listening "$d/mtc.err" 2
"$BIN" replay --in "$d/live.log" --port "$(port_at "$d/mtc.err" 1)" \
  --pace-us 50 > /dev/null 2>&1 &
r1=$!
"$BIN" replay --in "$d/live2.log" --port "$(port_at "$d/mtc.err" 2)" \
  --pace-us 50 > /dev/null 2>&1 &
r2=$!
wait_events "$d/ckpt_mt/ta" 3
wait_events "$d/ckpt_mt/tb" 3
kill -9 "$pid"
wait "$pid" 2>/dev/null || true
kill "$r1" "$r2" 2>/dev/null || true
wait "$r1" "$r2" 2>/dev/null || true

"$BIN" serve \
  --tenant "ta:$d/cfg:$d/kb.txt:0" \
  --tenant "tb:$d/cfg2:$d/kb2.txt:0" \
  $(serve_flags 4 "$d/ckpt_mt") \
  --max-datagrams $((n + n2)) --idle-exit-s 15 \
  > /dev/null 2> "$d/mtr.err" &
pid=$!
wait_listening "$d/mtr.err" 2
[ "$(grep -c 'restored; replay cursor at' "$d/mtr.err")" -eq 2 ]
"$BIN" replay --in "$d/live.log" --port "$(port_at "$d/mtr.err" 1)" \
  --pace-us 50 > /dev/null 2>&1 &
r1=$!
"$BIN" replay --in "$d/live2.log" --port "$(port_at "$d/mtr.err" 2)" \
  --pace-us 50 > /dev/null 2>&1 &
r2=$!
wait "$r1" "$r2"
wait "$pid"
for t in ta tb; do
  "$BIN" events --checkpoint-dir "$d/ckpt_mt/$t" > "$d/mtr_$t.txt"
  cmp "$d/mtg_$t.txt" "$d/mtr_$t.txt"
done

# A corrupted snapshot must refuse to serve, not limp along.
dd if=/dev/urandom of="$d/ckpt_1/snapshot" bs=64 count=1 \
  conv=notrunc > /dev/null 2>&1
rc=0
"$BIN" serve --configs "$d/cfg" --kb "$d/kb.txt" --port 0 \
  $(serve_flags 1 "$d/ckpt_1") > /dev/null 2> "$d/corrupt.err" || rc=$?
[ "$rc" -ne 0 ]
grep -q 'refusing to restore' "$d/corrupt.err"

echo "serve checkpoint crash test passed"
