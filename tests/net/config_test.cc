#include <gtest/gtest.h>

#include <algorithm>

#include "net/config_parser.h"
#include "net/config_writer.h"

namespace sld::net {
namespace {

TopologyParams Params(Vendor vendor) {
  TopologyParams p;
  p.vendor = vendor;
  p.num_routers = 8;
  p.slots_per_router = 2;
  p.ports_per_slot = 3;
  p.subifs_per_phys = 2;
  p.seed = 5;
  return p;
}

class ConfigRoundTrip : public ::testing::TestWithParam<Vendor> {};

TEST_P(ConfigRoundTrip, HostnameAndLoopbackSurvive) {
  const Topology topo = GenerateTopology(Params(GetParam()));
  for (const Router& r : topo.routers) {
    const ParsedConfig cfg = ParseConfig(WriteConfig(topo, r.id));
    EXPECT_EQ(cfg.hostname, r.name);
    EXPECT_EQ(cfg.vendor, GetParam());
    EXPECT_EQ(cfg.loopback_ip, r.loopback_ip);
  }
}

TEST_P(ConfigRoundTrip, AllPortsSurvive) {
  const Topology topo = GenerateTopology(Params(GetParam()));
  const Router& r = topo.routers[0];
  const ParsedConfig cfg = ParseConfig(WriteConfig(topo, r.id));
  EXPECT_EQ(cfg.ports.size(), r.phys_ifs.size());
  for (const PhysIfId pid : r.phys_ifs) {
    const std::string& name = topo.phys_ifs[pid].name;
    EXPECT_TRUE(std::any_of(cfg.ports.begin(), cfg.ports.end(),
                            [&](const ParsedPort& p) {
                              return p.name == name;
                            }))
        << name;
  }
}

TEST_P(ConfigRoundTrip, InterfaceAddressesSurvive) {
  const Topology topo = GenerateTopology(Params(GetParam()));
  const Router& r = topo.routers[1];
  const ParsedConfig cfg = ParseConfig(WriteConfig(topo, r.id));
  std::size_t expected = 0;
  for (const PhysIfId pid : r.phys_ifs) {
    expected += topo.phys_ifs[pid].logical_ifs.size();
  }
  EXPECT_EQ(cfg.interfaces.size(), expected);
  for (const PhysIfId pid : r.phys_ifs) {
    for (const LogicalIfId lid : topo.phys_ifs[pid].logical_ifs) {
      const LogicalIf& logical = topo.logical_ifs[lid];
      const auto it = std::find_if(
          cfg.interfaces.begin(), cfg.interfaces.end(),
          [&](const ParsedInterface& i) { return i.name == logical.name; });
      ASSERT_NE(it, cfg.interfaces.end()) << logical.name;
      EXPECT_EQ(it->ip, logical.ip);
    }
  }
}

TEST_P(ConfigRoundTrip, LinkDescriptionsSurvive) {
  const Topology topo = GenerateTopology(Params(GetParam()));
  for (const Link& link : topo.links) {
    const ParsedConfig cfg =
        ParseConfig(WriteConfig(topo, link.router_a));
    const std::string& local = topo.phys_ifs[link.phys_a].name;
    const auto it = std::find_if(
        cfg.ports.begin(), cfg.ports.end(),
        [&](const ParsedPort& p) { return p.name == local; });
    ASSERT_NE(it, cfg.ports.end());
    EXPECT_EQ(it->peer_router, topo.routers[link.router_b].name);
    EXPECT_EQ(it->peer_if, topo.phys_ifs[link.phys_b].name);
  }
}

TEST_P(ConfigRoundTrip, BundlesSurviveWithMembers) {
  const Topology topo = GenerateTopology(Params(GetParam()));
  for (const Bundle& bundle : topo.bundles) {
    const ParsedConfig cfg = ParseConfig(WriteConfig(topo, bundle.router));
    const auto it = std::find_if(
        cfg.bundles.begin(), cfg.bundles.end(),
        [&](const ParsedBundle& b) { return b.name == bundle.name; });
    ASSERT_NE(it, cfg.bundles.end()) << bundle.name;
    ASSERT_EQ(it->members.size(), bundle.members.size());
    for (const PhysIfId m : bundle.members) {
      EXPECT_TRUE(std::find(it->members.begin(), it->members.end(),
                            topo.phys_ifs[m].name) != it->members.end());
    }
  }
}

TEST_P(ConfigRoundTrip, BgpNeighborsSurvive) {
  const Topology topo = GenerateTopology(Params(GetParam()));
  const Router& r = topo.routers[2];
  const ParsedConfig cfg = ParseConfig(WriteConfig(topo, r.id));
  EXPECT_EQ(cfg.bgp_neighbors.size(), r.sessions.size());
  for (const SessionId sid : r.sessions) {
    const BgpSession& s = topo.sessions[sid];
    const std::string& ip = s.router_a == r.id || s.router_b == kInvalidId
                                ? s.neighbor_ip_of_a
                                : s.neighbor_ip_of_b;
    const std::string& expected_ip =
        s.router_a == r.id ? s.neighbor_ip_of_a : s.neighbor_ip_of_b;
    (void)ip;
    const auto it = std::find_if(cfg.bgp_neighbors.begin(),
                                 cfg.bgp_neighbors.end(),
                                 [&](const ParsedBgpNeighbor& n) {
                                   return n.ip == expected_ip;
                                 });
    ASSERT_NE(it, cfg.bgp_neighbors.end()) << expected_ip;
    EXPECT_EQ(it->vrf, s.vrf);
  }
}

TEST_P(ConfigRoundTrip, PathsSurviveOnHeadRouter) {
  const Topology topo = GenerateTopology(Params(GetParam()));
  for (const Path& path : topo.paths) {
    const ParsedConfig cfg =
        ParseConfig(WriteConfig(topo, path.hops.front()));
    const auto it = std::find_if(
        cfg.paths.begin(), cfg.paths.end(),
        [&](const ParsedPath& p) { return p.name == path.name; });
    ASSERT_NE(it, cfg.paths.end()) << path.name;
    ASSERT_EQ(it->hops.size(), path.hops.size());
    for (std::size_t i = 0; i < path.hops.size(); ++i) {
      EXPECT_EQ(it->hops[i], topo.routers[path.hops[i]].name);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(BothVendors, ConfigRoundTrip,
                         ::testing::Values(Vendor::kV1, Vendor::kV2));

TEST(ConfigParserTest, V1ControllersParsed) {
  const Topology topo = GenerateTopology(Params(Vendor::kV1));
  const Router& r = topo.routers[0];
  const ParsedConfig cfg = ParseConfig(WriteConfig(topo, r.id));
  std::size_t expected = 0;
  for (const PhysIfId pid : r.phys_ifs) {
    if (topo.phys_ifs[pid].has_controller) ++expected;
  }
  EXPECT_EQ(cfg.controllers.size(), expected);
  for (const std::string& c : cfg.controllers) {
    EXPECT_TRUE(c.starts_with("T1 "));
  }
}

TEST(ConfigParserTest, RejectsUnknownDialect) {
  EXPECT_THROW(ParseConfig("just some text\nwith lines\n"),
               std::runtime_error);
  EXPECT_THROW(ParseConfig(""), std::runtime_error);
}

TEST(ConfigParserTest, V1HandWrittenMinimal) {
  const ParsedConfig cfg = ParseConfig(
      "hostname lab1\n"
      "!\n"
      "interface Loopback0\n"
      " ip address 192.168.9.9 255.255.255.255\n"
      "!\n"
      "interface Serial0/1\n"
      " description to lab2 Serial1/0\n"
      " no ip address\n"
      "!\n"
      "interface Serial0/1.10:0\n"
      " ip address 10.9.9.1 255.255.255.252\n"
      "!\n");
  EXPECT_EQ(cfg.hostname, "lab1");
  EXPECT_EQ(cfg.loopback_ip, "192.168.9.9");
  ASSERT_EQ(cfg.ports.size(), 1u);
  EXPECT_EQ(cfg.ports[0].name, "Serial0/1");
  EXPECT_EQ(cfg.ports[0].peer_router, "lab2");
  ASSERT_EQ(cfg.interfaces.size(), 1u);
  EXPECT_EQ(cfg.interfaces[0].name, "Serial0/1.10:0");
  EXPECT_EQ(cfg.interfaces[0].ip, "10.9.9.1");
}

TEST(ConfigParserTest, V2HandWrittenMinimal) {
  const ParsedConfig cfg = ParseConfig(
      "configure\n"
      "    system\n"
      "        name \"labv2\"\n"
      "    exit\n"
      "    port 1/1/1\n"
      "        description \"to peer1 2/1/1\"\n"
      "    exit\n"
      "    router\n"
      "        interface \"system\"\n"
      "            address 192.168.7.7/32\n"
      "        exit\n"
      "        interface \"1/1/1\"\n"
      "            address 10.7.7.1/30\n"
      "            port 1/1/1\n"
      "        exit\n"
      "        bgp\n"
      "            group \"vpn-1000:1002\"\n"
      "                neighbor 192.168.100.9\n"
      "            exit\n"
      "        exit\n"
      "    exit\n"
      "exit\n");
  EXPECT_EQ(cfg.hostname, "labv2");
  EXPECT_EQ(cfg.loopback_ip, "192.168.7.7");
  ASSERT_EQ(cfg.ports.size(), 1u);
  EXPECT_EQ(cfg.ports[0].peer_router, "peer1");
  ASSERT_EQ(cfg.interfaces.size(), 1u);
  EXPECT_EQ(cfg.interfaces[0].ip, "10.7.7.1");
  ASSERT_EQ(cfg.bgp_neighbors.size(), 1u);
  EXPECT_EQ(cfg.bgp_neighbors[0].vrf, "1000:1002");
}

}  // namespace
}  // namespace sld::net
