#include "net/addr.h"

#include <gtest/gtest.h>

namespace sld::net {
namespace {

TEST(Ipv4Test, ParseAndFormatRoundTrip) {
  const auto addr = Ipv4::Parse("192.168.32.42");
  ASSERT_TRUE(addr.has_value());
  EXPECT_EQ(addr->ToString(), "192.168.32.42");
  EXPECT_EQ(addr->value(), (192u << 24) | (168u << 16) | (32u << 8) | 42u);
}

TEST(Ipv4Test, ParseRejectsMalformed) {
  EXPECT_FALSE(Ipv4::Parse("").has_value());
  EXPECT_FALSE(Ipv4::Parse("1.2.3").has_value());
  EXPECT_FALSE(Ipv4::Parse("1.2.3.256").has_value());
  EXPECT_FALSE(Ipv4::Parse("a.b.c.d").has_value());
}

TEST(Ipv4Test, Ordering) {
  EXPECT_LT(*Ipv4::Parse("10.0.0.1"), *Ipv4::Parse("10.0.0.2"));
  EXPECT_EQ(*Ipv4::Parse("10.0.0.1"), Ipv4((10u << 24) | 1));
}

TEST(PrefixTest, CanonicalizesHostBits) {
  const Ipv4Prefix p(*Ipv4::Parse("10.0.0.7"), 30);
  EXPECT_EQ(p.ToString(), "10.0.0.4/30");
  EXPECT_EQ(p.length(), 30);
}

TEST(PrefixTest, ParseCidr) {
  const auto p = Ipv4Prefix::Parse("10.1.2.0/24");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->ToString(), "10.1.2.0/24");
  EXPECT_FALSE(Ipv4Prefix::Parse("10.1.2.0").has_value());
  EXPECT_FALSE(Ipv4Prefix::Parse("10.1.2.0/33").has_value());
  EXPECT_FALSE(Ipv4Prefix::Parse("banana/8").has_value());
}

TEST(PrefixTest, Containment) {
  const Ipv4Prefix p(*Ipv4::Parse("10.0.0.4"), 30);
  EXPECT_TRUE(p.Contains(*Ipv4::Parse("10.0.0.4")));
  EXPECT_TRUE(p.Contains(*Ipv4::Parse("10.0.0.5")));
  EXPECT_TRUE(p.Contains(*Ipv4::Parse("10.0.0.7")));
  EXPECT_FALSE(p.Contains(*Ipv4::Parse("10.0.0.8")));
  EXPECT_FALSE(p.Contains(*Ipv4::Parse("10.0.1.5")));
}

TEST(PrefixTest, ZeroAndFullLengths) {
  const Ipv4Prefix all(*Ipv4::Parse("1.2.3.4"), 0);
  EXPECT_TRUE(all.Contains(*Ipv4::Parse("255.255.255.255")));
  const Ipv4Prefix host(*Ipv4::Parse("1.2.3.4"), 32);
  EXPECT_TRUE(host.Contains(*Ipv4::Parse("1.2.3.4")));
  EXPECT_FALSE(host.Contains(*Ipv4::Parse("1.2.3.5")));
}

TEST(PrefixTest, FromMask) {
  const auto p = Ipv4Prefix::FromMask("10.0.0.1", "255.255.255.252");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->ToString(), "10.0.0.0/30");
  EXPECT_FALSE(
      Ipv4Prefix::FromMask("10.0.0.1", "255.0.255.0").has_value());
}

struct MaskCase {
  const char* mask;
  int length;  // -1 = invalid
};

class MaskTest : public ::testing::TestWithParam<MaskCase> {};

TEST_P(MaskTest, ConvertsOrRejects) {
  const auto length = MaskToPrefixLength(GetParam().mask);
  if (GetParam().length < 0) {
    EXPECT_FALSE(length.has_value()) << GetParam().mask;
  } else {
    ASSERT_TRUE(length.has_value()) << GetParam().mask;
    EXPECT_EQ(*length, GetParam().length);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Table, MaskTest,
    ::testing::Values(MaskCase{"255.255.255.255", 32},
                      MaskCase{"255.255.255.252", 30},
                      MaskCase{"255.255.255.0", 24},
                      MaskCase{"255.255.0.0", 16},
                      MaskCase{"255.0.0.0", 8}, MaskCase{"0.0.0.0", 0},
                      MaskCase{"255.0.255.0", -1},
                      MaskCase{"0.255.0.0", -1},
                      MaskCase{"not-a-mask", -1}));

}  // namespace
}  // namespace sld::net
