#include "net/topology.h"

#include <gtest/gtest.h>

#include <queue>
#include <set>

namespace sld::net {
namespace {

TopologyParams SmallParams(Vendor vendor) {
  TopologyParams p;
  p.vendor = vendor;
  p.num_routers = 12;
  p.slots_per_router = 3;
  p.ports_per_slot = 4;
  p.subifs_per_phys = 2;
  p.seed = 99;
  return p;
}

TEST(TopologyTest, GeneratesRequestedRouterCount) {
  const Topology topo = GenerateTopology(SmallParams(Vendor::kV1));
  EXPECT_EQ(topo.routers.size(), 12u);
  for (const Router& r : topo.routers) {
    EXPECT_EQ(r.phys_ifs.size(), 3u * 4u);
    EXPECT_FALSE(r.name.empty());
    EXPECT_FALSE(r.loopback_ip.empty());
    EXPECT_FALSE(r.state.empty());
  }
}

TEST(TopologyTest, DeterministicForSameSeed) {
  const Topology a = GenerateTopology(SmallParams(Vendor::kV1));
  const Topology b = GenerateTopology(SmallParams(Vendor::kV1));
  ASSERT_EQ(a.links.size(), b.links.size());
  for (std::size_t i = 0; i < a.links.size(); ++i) {
    EXPECT_EQ(a.links[i].router_a, b.links[i].router_a);
    EXPECT_EQ(a.links[i].router_b, b.links[i].router_b);
  }
  ASSERT_EQ(a.logical_ifs.size(), b.logical_ifs.size());
  for (std::size_t i = 0; i < a.logical_ifs.size(); ++i) {
    EXPECT_EQ(a.logical_ifs[i].ip, b.logical_ifs[i].ip);
  }
}

TEST(TopologyTest, LinkGraphIsConnected) {
  const Topology topo = GenerateTopology(SmallParams(Vendor::kV1));
  std::vector<std::vector<RouterId>> adj(topo.routers.size());
  for (const Link& l : topo.links) {
    adj[l.router_a].push_back(l.router_b);
    adj[l.router_b].push_back(l.router_a);
  }
  std::vector<bool> seen(topo.routers.size(), false);
  std::queue<RouterId> q;
  q.push(0);
  seen[0] = true;
  std::size_t count = 0;
  while (!q.empty()) {
    const RouterId at = q.front();
    q.pop();
    ++count;
    for (const RouterId next : adj[at]) {
      if (!seen[next]) {
        seen[next] = true;
        q.push(next);
      }
    }
  }
  EXPECT_EQ(count, topo.routers.size());
}

TEST(TopologyTest, LinkEndpointsAreConsistent) {
  const Topology topo = GenerateTopology(SmallParams(Vendor::kV2));
  for (const Link& l : topo.links) {
    EXPECT_NE(l.router_a, l.router_b);
    EXPECT_EQ(topo.phys_ifs[l.phys_a].router, l.router_a);
    EXPECT_EQ(topo.phys_ifs[l.phys_b].router, l.router_b);
    EXPECT_EQ(topo.phys_ifs[l.phys_a].link, l.id);
    EXPECT_EQ(topo.phys_ifs[l.phys_b].link, l.id);
    EXPECT_EQ(topo.LinkPeer(l.id, l.router_a), l.router_b);
    EXPECT_EQ(topo.LinkEnd(l.id, l.router_b), l.phys_b);
  }
}

TEST(TopologyTest, EveryLogicalInterfaceHasUniqueAddress) {
  const Topology topo = GenerateTopology(SmallParams(Vendor::kV1));
  std::set<std::string> ips;
  for (const LogicalIf& l : topo.logical_ifs) {
    EXPECT_FALSE(l.ip.empty());
    EXPECT_TRUE(ips.insert(l.ip).second) << "duplicate " << l.ip;
  }
}

TEST(TopologyTest, BundleMembersBelongToBundleRouter) {
  const Topology topo = GenerateTopology(SmallParams(Vendor::kV1));
  EXPECT_FALSE(topo.bundles.empty());
  for (const Bundle& b : topo.bundles) {
    for (const PhysIfId m : b.members) {
      EXPECT_EQ(topo.phys_ifs[m].router, b.router);
      EXPECT_EQ(topo.phys_ifs[m].bundle, b.id);
      EXPECT_FALSE(topo.phys_ifs[m].link.has_value());
    }
  }
}

TEST(TopologyTest, EbgpSessionsCarryVrf) {
  const Topology topo = GenerateTopology(SmallParams(Vendor::kV1));
  std::size_t ebgp = 0;
  std::size_t ibgp = 0;
  for (const BgpSession& s : topo.sessions) {
    if (s.vrf.empty()) {
      ++ibgp;
      ASSERT_NE(s.router_b, kInvalidId);
      EXPECT_EQ(s.neighbor_ip_of_a, topo.routers[s.router_b].loopback_ip);
      EXPECT_EQ(s.neighbor_ip_of_b, topo.routers[s.router_a].loopback_ip);
    } else {
      ++ebgp;
      EXPECT_EQ(s.router_b, kInvalidId);
      EXPECT_TRUE(s.vrf.starts_with("1000:"));
    }
  }
  EXPECT_EQ(ebgp, topo.routers.size() * 3);  // default 3 per router
  EXPECT_GT(ibgp, 0u);
}

TEST(TopologyTest, PathsFollowLinks) {
  const Topology topo = GenerateTopology(SmallParams(Vendor::kV2));
  EXPECT_FALSE(topo.paths.empty());
  for (const Path& p : topo.paths) {
    ASSERT_GE(p.hops.size(), 2u);
    ASSERT_EQ(p.links.size(), p.hops.size() - 1);
    for (std::size_t i = 0; i < p.links.size(); ++i) {
      EXPECT_EQ(topo.LinkPeer(p.links[i], p.hops[i]), p.hops[i + 1]);
    }
  }
}

TEST(TopologyTest, VendorNamingConventions) {
  const Topology v1 = GenerateTopology(SmallParams(Vendor::kV1));
  EXPECT_TRUE(v1.routers[0].name.starts_with("cr"));
  bool any_serial = false;
  for (const PhysIf& p : v1.phys_ifs) {
    if (p.name.starts_with("Serial")) any_serial = true;
  }
  EXPECT_TRUE(any_serial);

  const Topology v2 = GenerateTopology(SmallParams(Vendor::kV2));
  EXPECT_TRUE(v2.routers[0].name.starts_with("vho"));
  EXPECT_EQ(v2.phys_ifs[0].name, "1/1/1");
}

TEST(TopologyTest, ControllerOnlyOnEvenV1Slots) {
  const Topology topo = GenerateTopology(SmallParams(Vendor::kV1));
  for (const PhysIf& p : topo.phys_ifs) {
    EXPECT_EQ(p.has_controller, p.slot % 2 == 0);
  }
  const Topology v2 = GenerateTopology(SmallParams(Vendor::kV2));
  for (const PhysIf& p : v2.phys_ifs) {
    EXPECT_FALSE(p.has_controller);
  }
}

TEST(TopologyTest, RejectsInfeasibleParams) {
  TopologyParams p = SmallParams(Vendor::kV1);
  p.num_routers = 1;
  EXPECT_THROW(GenerateTopology(p), std::invalid_argument);
  p = SmallParams(Vendor::kV1);
  p.slots_per_router = 0;
  EXPECT_THROW(GenerateTopology(p), std::invalid_argument);
  p = SmallParams(Vendor::kV1);
  p.num_routers = 40;
  p.slots_per_router = 1;
  p.ports_per_slot = 1;  // one port per router cannot form a tree
  EXPECT_THROW(GenerateTopology(p), std::invalid_argument);
}

TEST(TopologyTest, FindRouterByName) {
  const Topology topo = GenerateTopology(SmallParams(Vendor::kV1));
  const Router* r = topo.FindRouter(topo.routers[3].name);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->id, 3u);
  EXPECT_EQ(topo.FindRouter("nonexistent"), nullptr);
}

// Different seeds produce different graphs (sanity against frozen RNG).
class TopologySeedTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TopologySeedTest, ValidAcrossSeeds) {
  TopologyParams p = SmallParams(Vendor::kV1);
  p.seed = GetParam();
  const Topology topo = GenerateTopology(p);
  EXPECT_GE(topo.links.size(), topo.routers.size() - 1);
  for (const Link& l : topo.links) {
    EXPECT_NE(l.router_a, l.router_b);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TopologySeedTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace sld::net
