#include "sim/generator.h"

#include <gtest/gtest.h>

#include <set>

#include "sim/messages.h"

namespace sld::sim {
namespace {

DatasetSpec TinySpec(net::Vendor vendor) {
  DatasetSpec spec = vendor == net::Vendor::kV1 ? DatasetASpec()
                                                : DatasetBSpec();
  spec.topo.num_routers = 10;
  return spec;
}

TEST(GeneratorTest, DeterministicForSameInputs) {
  const Dataset a = GenerateDataset(TinySpec(net::Vendor::kV1), 0, 2, 7);
  const Dataset b = GenerateDataset(TinySpec(net::Vendor::kV1), 0, 2, 7);
  ASSERT_EQ(a.messages.size(), b.messages.size());
  for (std::size_t i = 0; i < a.messages.size(); ++i) {
    EXPECT_EQ(a.messages[i], b.messages[i]);
  }
  ASSERT_EQ(a.ground_truth.size(), b.ground_truth.size());
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  const Dataset a = GenerateDataset(TinySpec(net::Vendor::kV1), 0, 2, 7);
  const Dataset b = GenerateDataset(TinySpec(net::Vendor::kV1), 0, 2, 8);
  EXPECT_NE(a.messages.size(), b.messages.size());
}

TEST(GeneratorTest, MessagesAreTimeSortedWithinWindow) {
  const Dataset ds = GenerateDataset(TinySpec(net::Vendor::kV1), 3, 2, 7);
  ASSERT_FALSE(ds.messages.empty());
  for (std::size_t i = 1; i < ds.messages.size(); ++i) {
    EXPECT_LE(ds.messages[i - 1].time, ds.messages[i].time);
  }
  EXPECT_GE(ds.messages.front().time, ds.epoch);
  EXPECT_EQ(ds.epoch, DatasetEpoch() + 3 * kMsPerDay);
  EXPECT_EQ(ds.num_days, 2);
}

TEST(GeneratorTest, GroundTruthIndicesValidAndOwned) {
  const Dataset ds = GenerateDataset(TinySpec(net::Vendor::kV1), 0, 2, 7);
  std::set<std::size_t> owned;
  for (const GtEvent& ev : ds.ground_truth) {
    EXPECT_FALSE(ev.message_indices.empty());
    EXPECT_LE(ev.start, ev.end);
    EXPECT_FALSE(ev.routers.empty());
    EXPECT_FALSE(ev.state.empty());
    for (const std::size_t idx : ev.message_indices) {
      ASSERT_LT(idx, ds.messages.size());
      EXPECT_TRUE(owned.insert(idx).second)
          << "message in two ground-truth events";
    }
    EXPECT_EQ(ds.messages[ev.message_indices.front()].time, ev.start);
    EXPECT_EQ(ds.messages[ev.message_indices.back()].time, ev.end);
  }
  // Background noise exists (some messages belong to no event).
  EXPECT_LT(owned.size(), ds.messages.size());
}

TEST(GeneratorTest, RoutersInMessagesExistInTopology) {
  const Dataset ds = GenerateDataset(TinySpec(net::Vendor::kV2), 0, 1, 7);
  for (const auto& msg : ds.messages) {
    EXPECT_NE(ds.topo.FindRouter(msg.router), nullptr) << msg.router;
  }
}

TEST(GeneratorTest, VendorCodesMatchDataset) {
  const Dataset a = GenerateDataset(TinySpec(net::Vendor::kV1), 0, 1, 7);
  for (const auto& msg : a.messages) {
    EXPECT_EQ(msg.code.find("tmnx"), std::string::npos) << msg.code;
    EXPECT_EQ(msg.code.find("SVCMGR"), std::string::npos) << msg.code;
  }
  const Dataset b = GenerateDataset(TinySpec(net::Vendor::kV2), 0, 1, 7);
  for (const auto& msg : b.messages) {
    EXPECT_EQ(msg.code.find("LINEPROTO"), std::string::npos) << msg.code;
    EXPECT_EQ(msg.code.find("SYS-1-"), std::string::npos) << msg.code;
  }
}

TEST(GeneratorTest, FromDayGatesScenarios) {
  DatasetSpec spec = TinySpec(net::Vendor::kV1);
  spec.rates = ScenarioRates{};
  spec.rates.link_flap = {0, 0};
  spec.rates.controller_flap = {0, 0};
  spec.rates.bundle_flap = {0, 0};
  spec.rates.bgp_vpn_flap = {0, 0};
  spec.rates.ibgp_flap = {0, 0};
  spec.rates.cpu_spike = {0, 0};
  spec.rates.bad_auth_scan = {0, 0};
  spec.rates.login_scan = {0, 0};
  spec.rates.config_change = {50, 5};  // only from day 5
  spec.rates.env_alarm = {0, 0};
  spec.rates.card_oir = {0, 0};
  spec.rates.maintenance_window = {0, 0};
  spec.rates.rp_switchover = {0, 0};
  spec.rates.duplex_mismatch = {0, 0};
  spec.rates.timer_noise_per_router_day = 0;
  spec.rates.random_noise_per_day = 0;
  const Dataset before = GenerateDataset(spec, 0, 2, 7);
  EXPECT_TRUE(before.messages.empty());
  const Dataset after = GenerateDataset(spec, 5, 2, 7);
  EXPECT_FALSE(after.messages.empty());
}

TEST(GeneratorTest, TicketsReferenceRealEventsAndTheirState) {
  const Dataset ds = GenerateDataset(TinySpec(net::Vendor::kV2), 0, 7, 7);
  EXPECT_FALSE(ds.tickets.empty());
  for (const TroubleTicket& ticket : ds.tickets) {
    ASSERT_GE(ticket.gt_event_id, 0);
    ASSERT_LT(static_cast<std::size_t>(ticket.gt_event_id),
              ds.ground_truth.size());
    const GtEvent& ev = ds.ground_truth[ticket.gt_event_id];
    EXPECT_EQ(ticket.state, ev.state);
    EXPECT_GE(ticket.created, ev.start);
    EXPECT_GE(ticket.update_count, 1);
  }
}

TEST(GeneratorTest, GtTemplatesCoverBothDirections) {
  const Dataset ds = GenerateDataset(TinySpec(net::Vendor::kV1), 0, 3, 7);
  auto has = [&](std::string_view needle) {
    for (const auto& [t, count] : ds.gt_templates) {
      (void)count;
      if (t.find(needle) != std::string::npos) return true;
    }
    return false;
  };
  EXPECT_TRUE(has("changed state to down"));
  EXPECT_TRUE(has("changed state to up"));
  EXPECT_TRUE(has("LINEPROTO-5-UPDOWN"));
}

TEST(GeneratorTest, ConfigsMatchRouters) {
  const Dataset ds = GenerateDataset(TinySpec(net::Vendor::kV1), 0, 1, 7);
  ASSERT_EQ(ds.configs.size(), ds.topo.routers.size());
  for (std::size_t i = 0; i < ds.configs.size(); ++i) {
    EXPECT_NE(ds.configs[i].find(ds.topo.routers[i].name),
              std::string::npos);
  }
}

TEST(GeneratorTest, DayOfComputesRelativeDay) {
  const Dataset ds = GenerateDataset(TinySpec(net::Vendor::kV1), 2, 3, 7);
  EXPECT_EQ(ds.DayOf(ds.epoch), 0);
  EXPECT_EQ(ds.DayOf(ds.epoch + kMsPerDay + 5), 1);
  // Long-running scenarios (multi-hour scans on busy routers) may spill
  // past the generation window, but only by a bounded amount.
  EXPECT_LE(ds.DayOf(ds.messages.back().time), 6);
}

TEST(MessagesTest, GroundTruthTemplateMatchesRendering) {
  // The masked template must equal the detail with variable tokens
  // replaced by "*": verify a couple of representative constructors.
  const Msg link = V1LinkUpDown("Serial1/0.10:0", false);
  EXPECT_EQ(link.gt_template,
            "LINK-3-UPDOWN Interface * changed state to down");
  EXPECT_EQ(link.detail, "Interface Serial1/0.10:0, changed state to down");

  const Msg bgp = V1BgpVpnAdj("192.168.32.42", "1000:1001", false,
                              BgpDownReason::kPeerClosed);
  EXPECT_EQ(bgp.detail,
            "neighbor 192.168.32.42 vpn vrf 1000:1001 Down Peer closed "
            "the session");
  EXPECT_EQ(bgp.gt_template,
            "BGP-5-ADJCHANGE neighbor * vpn vrf * Down Peer closed the "
            "session");

  const Msg sap = V2SapPortChange("1/1/1");
  EXPECT_EQ(sap.detail,
            "The status of all affected SAPs on port 1/1/1 has been "
            "updated.");
}

TEST(MessagesTest, BgpReasonsMatchPaperTableFour) {
  EXPECT_EQ(BgpDownReasonText(BgpDownReason::kInterfaceFlap),
            "Interface flap");
  EXPECT_EQ(BgpDownReasonText(BgpDownReason::kNotificationSent),
            "BGP Notification sent");
  EXPECT_EQ(BgpDownReasonText(BgpDownReason::kNotificationReceived),
            "BGP Notification received");
  EXPECT_EQ(BgpDownReasonText(BgpDownReason::kPeerClosed),
            "Peer closed the session");
}

}  // namespace
}  // namespace sld::sim
