// Behavioural checks of the fault scenarios: the shapes the miners rely
// on (cascade ordering, timer periodicity, cross-router symmetry) must
// actually appear in the generated streams.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "sim/generator.h"

namespace sld::sim {
namespace {

DatasetSpec OnlyScenario(net::Vendor vendor,
                         const char* which, double rate) {
  DatasetSpec spec = vendor == net::Vendor::kV1 ? DatasetASpec()
                                                : DatasetBSpec();
  spec.topo.num_routers = 10;
  ScenarioRates r;  // all defaults...
  r.link_flap = {0, 0};
  r.controller_flap = {0, 0};
  r.bundle_flap = {0, 0};
  r.bgp_vpn_flap = {0, 0};
  r.ibgp_flap = {0, 0};
  r.cpu_spike = {0, 0};
  r.bad_auth_scan = {0, 0};
  r.login_scan = {0, 0};
  r.config_change = {0, 0};
  r.env_alarm = {0, 0};
  r.card_oir = {0, 0};
  r.maintenance_window = {0, 0};
  r.rp_switchover = {0, 0};
  r.sap_churn = {0, 0};
  r.service_churn = {0, 0};
  r.pim_dual_failure = {0, 0};
  r.duplex_mismatch = {0, 0};
  r.timer_noise_per_router_day = 0;
  r.random_noise_per_day = 0;
  const std::string name = which;
  if (name == "link_flap") r.link_flap = {rate, 0};
  if (name == "controller_flap") r.controller_flap = {rate, 0};
  if (name == "bgp_vpn_flap") r.bgp_vpn_flap = {rate, 0};
  if (name == "cpu_spike") r.cpu_spike = {rate, 0};
  if (name == "bad_auth_scan") r.bad_auth_scan = {rate, 0};
  if (name == "login_scan") r.login_scan = {rate, 0};
  if (name == "card_oir") r.card_oir = {rate, 0};
  if (name == "maintenance_window") r.maintenance_window = {rate, 0};
  if (name == "rp_switchover") r.rp_switchover = {rate, 0};
  if (name == "env_alarm") r.env_alarm = {rate, 0};
  if (name == "pim_dual_failure") r.pim_dual_failure = {rate, 0};
  spec.rates = r;
  return spec;
}

TEST(ScenarioTest, LinkFlapEmitsSymmetricCascade) {
  const Dataset ds = GenerateDataset(
      OnlyScenario(net::Vendor::kV1, "link_flap", 5), 0, 2, 91);
  ASSERT_FALSE(ds.ground_truth.empty());
  for (const GtEvent& ev : ds.ground_truth) {
    ASSERT_EQ(ev.kind, "link-flap");
    // Both ends of the link log, and the physical layer leads.
    std::set<std::string> routers;
    bool link_before_proto = false;
    TimeMs first_link = INT64_MAX;
    TimeMs first_proto = INT64_MAX;
    for (const std::size_t m : ev.message_indices) {
      routers.insert(ds.messages[m].router);
      if (ds.messages[m].code == "LINK-3-UPDOWN") {
        first_link = std::min(first_link, ds.messages[m].time);
      }
      if (ds.messages[m].code == "LINEPROTO-5-UPDOWN") {
        first_proto = std::min(first_proto, ds.messages[m].time);
      }
    }
    link_before_proto = first_link <= first_proto;
    EXPECT_GE(routers.size(), 2u);
    EXPECT_TRUE(link_before_proto);
  }
}

TEST(ScenarioTest, ControllerFlapIsDenseBurst) {
  const Dataset ds = GenerateDataset(
      OnlyScenario(net::Vendor::kV1, "controller_flap", 3), 0, 2, 92);
  ASSERT_FALSE(ds.ground_truth.empty());
  for (const GtEvent& ev : ds.ground_truth) {
    std::size_t controller_msgs = 0;
    for (const std::size_t m : ev.message_indices) {
      controller_msgs += ds.messages[m].code == "CONTROLLER-5-UPDOWN";
    }
    // 20-150 flaps, two messages each.
    EXPECT_GE(controller_msgs, 40u);
    // The whole event is compact relative to its message count (Fig. 4:
    // many occurrences within a short interval).
    const double span_hours =
        static_cast<double>(ev.end - ev.start) / kMsPerHour;
    EXPECT_LT(span_hours, 4.0);
  }
}

TEST(ScenarioTest, BadAuthScanIsPeriodic) {
  const Dataset ds = GenerateDataset(
      OnlyScenario(net::Vendor::kV1, "bad_auth_scan", 2), 0, 1, 93);
  ASSERT_FALSE(ds.ground_truth.empty());
  const GtEvent& ev = ds.ground_truth.front();
  ASSERT_GE(ev.message_indices.size(), 20u);
  std::vector<double> gaps;
  for (std::size_t i = 1; i < ev.message_indices.size(); ++i) {
    gaps.push_back(static_cast<double>(
        ds.messages[ev.message_indices[i]].time -
        ds.messages[ev.message_indices[i - 1]].time));
  }
  // Periodic: the max/min gap ratio is tightly bounded (10% jitter).
  const auto [lo, hi] = std::minmax_element(gaps.begin(), gaps.end());
  EXPECT_LT(*hi / *lo, 1.5);
}

TEST(ScenarioTest, CpuSpikeAlternatesRisingFalling) {
  const Dataset ds = GenerateDataset(
      OnlyScenario(net::Vendor::kV1, "cpu_spike", 5), 0, 2, 94);
  ASSERT_FALSE(ds.ground_truth.empty());
  for (const GtEvent& ev : ds.ground_truth) {
    int balance = 0;
    for (const std::size_t m : ev.message_indices) {
      if (ds.messages[m].code == "SYS-1-CPURISINGTHRESHOLD") ++balance;
      if (ds.messages[m].code == "SYS-1-CPUFALLINGTHRESHOLD") --balance;
      EXPECT_GE(balance, 0);  // never falls before rising
    }
    EXPECT_EQ(balance, 0);  // every spike recovers
  }
}

TEST(ScenarioTest, LoginScanPairsSshWithSecondProbe) {
  const Dataset ds = GenerateDataset(
      OnlyScenario(net::Vendor::kV2, "login_scan", 5), 0, 2, 95);
  ASSERT_FALSE(ds.ground_truth.empty());
  std::size_t ssh = 0;
  std::size_t ftp = 0;
  for (const auto& msg : ds.messages) {
    ssh += msg.code == "SECURITY-WARNING-sshLoginFailed";
    ftp += msg.code == "SECURITY-WARNING-ftpLoginFailed";
  }
  EXPECT_GT(ssh, 0u);
  EXPECT_GT(ftp, ssh / 2);  // ftp follows ssh ~85% of the time
  EXPECT_LE(ftp, ssh);
}

TEST(ScenarioTest, CardOirPairsRemovedWithInserted) {
  const Dataset ds = GenerateDataset(
      OnlyScenario(net::Vendor::kV1, "card_oir", 6), 0, 2, 96);
  ASSERT_FALSE(ds.ground_truth.empty());
  for (const GtEvent& ev : ds.ground_truth) {
    ASSERT_EQ(ev.message_indices.size(), 2u);
    EXPECT_EQ(ds.messages[ev.message_indices[0]].code, "OIR-6-REMCARD");
    EXPECT_EQ(ds.messages[ev.message_indices[1]].code, "OIR-6-INSCARD");
    const TimeMs gap = ds.messages[ev.message_indices[1]].time -
                       ds.messages[ev.message_indices[0]].time;
    EXPECT_GE(gap, 5 * kMsPerSecond);
    EXPECT_LE(gap, 30 * kMsPerSecond);
  }
}

TEST(ScenarioTest, PimDualFailureSpansLayersAndRouters) {
  const Dataset ds = GenerateDataset(
      OnlyScenario(net::Vendor::kV2, "pim_dual_failure", 2), 0, 2, 97);
  ASSERT_FALSE(ds.ground_truth.empty());
  const GtEvent& ev = ds.ground_truth.front();
  std::set<std::string> codes;
  std::set<std::string> routers;
  for (const std::size_t m : ev.message_indices) {
    codes.insert(ds.messages[m].code);
    routers.insert(ds.messages[m].router);
  }
  EXPECT_GE(codes.size(), 6u);    // many distinct error codes (§6.1)
  EXPECT_GE(routers.size(), 3u);  // several routers involved
  EXPECT_TRUE(codes.count("PIM-MAJOR-pimNeighborLoss"));
  EXPECT_TRUE(codes.count("MPLS-MAJOR-lspSetupRetry"));
  // Retries start long before the PIM loss.
  TimeMs first_retry = INT64_MAX;
  TimeMs pim_loss = INT64_MAX;
  for (const std::size_t m : ev.message_indices) {
    if (ds.messages[m].code == "MPLS-MAJOR-lspSetupRetry") {
      first_retry = std::min(first_retry, ds.messages[m].time);
    }
    if (ds.messages[m].code == "PIM-MAJOR-pimNeighborLoss") {
      pim_loss = std::min(pim_loss, ds.messages[m].time);
    }
  }
  EXPECT_LT(first_retry + 30 * kMsPerMinute, pim_loss);
}

TEST(ScenarioTest, EnvAlarmRaisesFanAlarmNearby) {
  const Dataset ds = GenerateDataset(
      OnlyScenario(net::Vendor::kV1, "env_alarm", 6), 0, 3, 98);
  std::size_t temp = 0;
  std::size_t fan = 0;
  for (const auto& msg : ds.messages) {
    temp += msg.code == "ENVMON-2-TEMP";
    fan += msg.code == "ENVMON-2-FANFAIL";
  }
  EXPECT_GT(temp, 0u);
  EXPECT_GT(fan, temp / 2);  // ~90% accompaniment
}

TEST(ScenarioTest, MaintenanceWindowBracketsHardwareWork) {
  const Dataset ds = GenerateDataset(
      OnlyScenario(net::Vendor::kV1, "maintenance_window", 4), 0, 3, 99);
  ASSERT_FALSE(ds.ground_truth.empty());
  for (const GtEvent& ev : ds.ground_truth) {
    TimeMs cfg_first = INT64_MAX;
    TimeMs cfg_last = INT64_MIN;
    TimeMs rem = 0;
    TimeMs ins = 0;
    for (const std::size_t m : ev.message_indices) {
      const auto& msg = ds.messages[m];
      if (msg.code == "SYS-5-CONFIG_I") {
        cfg_first = std::min(cfg_first, msg.time);
        cfg_last = std::max(cfg_last, msg.time);
      }
      if (msg.code == "OIR-6-REMCARD") rem = msg.time;
      if (msg.code == "OIR-6-INSCARD") ins = msg.time;
    }
    // Config saves bracket the card pull/reseat.
    ASSERT_NE(rem, 0);
    ASSERT_NE(ins, 0);
    EXPECT_LT(cfg_first, rem);
    EXPECT_LT(rem, ins);
    EXPECT_GT(cfg_last, ins);
    // Happens in business hours.
    const int hour = ToCivil(ev.start).hour;
    EXPECT_GE(hour, 7);
    EXPECT_LE(hour, 21);
  }
}

TEST(ScenarioTest, RpSwitchoverIsRouterScoped) {
  const Dataset ds = GenerateDataset(
      OnlyScenario(net::Vendor::kV1, "rp_switchover", 4), 0, 3, 100);
  ASSERT_FALSE(ds.ground_truth.empty());
  for (const GtEvent& ev : ds.ground_truth) {
    // One router only, and it leads with the switchover message.
    EXPECT_EQ(ev.routers.size(), 1u);
    EXPECT_EQ(ds.messages[ev.message_indices.front()].code,
              "REDUNDANCY-3-SWITCHOVER");
    // Sessions that dropped came back.
    int balance = 0;
    for (const std::size_t m : ev.message_indices) {
      const auto& detail = ds.messages[m].detail;
      if (ds.messages[m].code != "BGP-5-ADJCHANGE") continue;
      balance += detail.find(" Down ") != std::string::npos ? 1 : -1;
    }
    EXPECT_EQ(balance, 0);
  }
}

}  // namespace
}  // namespace sld::sim
