#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace sld {
namespace {

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, [&](std::size_t i, std::size_t) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, WorkerIdsAreInRange) {
  ThreadPool pool(4);
  ASSERT_EQ(pool.thread_count(), 4u);
  std::vector<std::atomic<int>> used(pool.thread_count());
  pool.ParallelFor(4096, [&](std::size_t, std::size_t worker) {
    ASSERT_LT(worker, pool.thread_count());
    used[worker].fetch_add(1, std::memory_order_relaxed);
  });
  // The caller participates as worker 0, but whether it wins any chunk
  // is a race against the helpers — only the total is guaranteed.
  int total = 0;
  for (auto& u : used) total += u.load();
  EXPECT_EQ(total, 4096);
}

TEST(ThreadPoolTest, ReusableAcrossManyJobs) {
  ThreadPool pool(3);
  for (int round = 0; round < 50; ++round) {
    std::vector<int> out(17, 0);
    pool.ParallelFor(out.size(),
                     [&](std::size_t i, std::size_t) { out[i] = round; });
    for (const int v : out) EXPECT_EQ(v, round);
  }
}

TEST(ThreadPoolTest, ZeroAndOneElementJobs) {
  ThreadPool pool(4);
  int calls = 0;
  pool.ParallelFor(0, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.ParallelFor(1, [&](std::size_t i, std::size_t) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, SingleThreadRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.thread_count(), 1u);
  // Inline execution preserves index order — observable, and what makes
  // threads=1 exactly the serial code path.
  std::vector<std::size_t> order;
  pool.ParallelFor(8, [&](std::size_t i, std::size_t worker) {
    EXPECT_EQ(worker, 0u);
    order.push_back(i);
  });
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPoolTest, NullPoolFreeFunctionRunsInline) {
  std::vector<std::size_t> order;
  ParallelFor(nullptr, 5, [&](std::size_t i, std::size_t worker) {
    EXPECT_EQ(worker, 0u);
    order.push_back(i);
  });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ThreadPoolTest, PropagatesExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.ParallelFor(100,
                                [&](std::size_t i, std::size_t) {
                                  if (i == 37) throw std::runtime_error("x");
                                }),
               std::runtime_error);
  // The pool survives a throwing job and keeps working.
  std::atomic<int> count{0};
  pool.ParallelFor(100, [&](std::size_t, std::size_t) {
    count.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, ExplicitChunkSizeCoversAllIndices) {
  ThreadPool pool(2);
  std::vector<std::atomic<int>> hits(101);
  pool.ParallelFor(
      hits.size(),
      [&](std::size_t i, std::size_t) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
      },
      /*chunk=*/7);
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

// Stress: many small jobs back to back from the same pool.  Under TSan
// this shakes out handoff races between generations.
TEST(ThreadPoolTest, StressManySmallGenerations) {
  ThreadPool pool(4);
  std::atomic<std::int64_t> sum{0};
  std::int64_t expect = 0;
  for (int round = 0; round < 200; ++round) {
    const std::size_t n = static_cast<std::size_t>(round % 7);
    for (std::size_t i = 0; i < n; ++i) {
      expect += static_cast<std::int64_t>(i);
    }
    pool.ParallelFor(n, [&](std::size_t i, std::size_t) {
      sum.fetch_add(static_cast<std::int64_t>(i),
                    std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(sum.load(), expect);
}

TEST(ThreadPoolTest, HardwareDefaultWhenNonPositive) {
  ThreadPool pool(0);
  EXPECT_GE(pool.thread_count(), 1u);
  std::atomic<int> count{0};
  pool.ParallelFor(64, [&](std::size_t, std::size_t) {
    count.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(count.load(), 64);
}

}  // namespace
}  // namespace sld
