// Differential tests for the SIMD kernel layer (common/simd.h).
//
// Every vector kernel must agree byte-for-byte with the scalar oracle for
// every input: the sweeps below cover lengths 0..257 at all 64 alignments
// of an oversized page, adversarial byte placements (NUL, newline, space,
// tab, high bytes at every position), guard-page spans that fault on any
// overread, and a seeded random fuzz rep — all run per dispatch level the
// host actually supports.  HashBytes additionally must return the *same
// value* at every level (memo-cache keys are serialized into bench
// identities), and flipping the active level must be invisible through
// the public sld:: wrappers.

#include "common/simd.h"

#include <sys/mman.h>

#include <cstring>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/hash.h"
#include "common/strings.h"
#include "common/time.h"

namespace sld::simd {
namespace {

std::vector<Level> HostLevels() {
  std::vector<Level> levels = {Level::kScalar};
  if (Supported(Level::kSse2)) levels.push_back(Level::kSse2);
  if (Supported(Level::kAvx2)) levels.push_back(Level::kAvx2);
  return levels;
}

// Fills `n` bytes with a palette rich in the bytes the kernels classify.
void Fill(std::mt19937_64& rng, char* p, std::size_t n) {
  static constexpr char kPalette[] = {
      'a',  'z',  'A',  '0',  '5',  '9',  ' ',  '\t', '\n', ':',
      '-',  '.',  '/',  '\0', '\r', '#',  '<',  '*',  '>',
      static_cast<char>(0x80), static_cast<char>(0xC3),
      static_cast<char>(0xFF)};
  for (std::size_t i = 0; i < n; ++i) {
    p[i] = kPalette[rng() % sizeof(kPalette)];
  }
}

// Runs every span-shaped kernel at `level` against the scalar table on
// [data, data+n) and asserts full agreement.
void ExpectSpanAgreement(Level level, const char* data, std::size_t n) {
  const KernelTable& oracle = TableFor(Level::kScalar);
  const KernelTable& table = TableFor(level);
  const std::string_view text(data, n);

  for (const char needle : {'\n', ' ', '\0'}) {
    for (const std::size_t from : {std::size_t{0}, n / 2, n}) {
      ASSERT_EQ(table.find_byte(data, n, from, needle),
                oracle.find_byte(data, n, from, needle))
          << "level=" << LevelName(level) << " n=" << n << " from=" << from
          << " needle=" << static_cast<int>(needle);
    }
  }

  std::vector<std::string_view> got, want;
  table.split_whitespace(text, &got);
  oracle.split_whitespace(text, &want);
  ASSERT_EQ(got.size(), want.size())
      << "level=" << LevelName(level) << " n=" << n;
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(static_cast<const void*>(got[i].data()),
              static_cast<const void*>(want[i].data()))
        << "level=" << LevelName(level) << " n=" << n << " token=" << i;
    ASSERT_EQ(got[i].size(), want[i].size())
        << "level=" << LevelName(level) << " n=" << n << " token=" << i;
  }

  for (const std::uint64_t seed : {kFnv1aOffset, std::uint64_t{0},
                                   std::uint64_t{0x1234abcd5678ef00ull}}) {
    ASSERT_EQ(table.hash_bytes(data, n, seed),
              oracle.hash_bytes(data, n, seed))
        << "level=" << LevelName(level) << " n=" << n << " seed=" << seed;
  }

  ASSERT_EQ(table.validate_digits(data, n), oracle.validate_digits(data, n))
      << "level=" << LevelName(level) << " n=" << n;
}

TEST(SimdKernels, LengthAlignmentSweep) {
  std::mt19937_64 rng(12345);
  alignas(64) static char page[4096];
  for (std::size_t len = 0; len <= 257; ++len) {
    for (std::size_t align = 0; align < 64; ++align) {
      char* p = page + align;
      Fill(rng, p, len);
      // Variant 2: plant newlines at the edges and middle; variant 3:
      // all digits (validate_digits true path).
      for (int variant = 0; variant < 3; ++variant) {
        if (variant == 1 && len > 0) {
          p[0] = '\n';
          p[len - 1] = '\n';
          p[len / 2] = '\n';
        }
        if (variant == 2) {
          for (std::size_t i = 0; i < len; ++i) {
            p[i] = static_cast<char>('0' + (rng() % 10));
          }
        }
        for (const Level level : HostLevels()) {
          ExpectSpanAgreement(level, p, len);
        }
      }
    }
  }
}

TEST(SimdKernels, AdversarialBytePlacements) {
  static constexpr unsigned char kSpecials[] = {0x00, 0x0A, 0x20, 0x09,
                                                0x80, 0xFF};
  alignas(64) static char page[4096];
  for (const std::size_t align : {std::size_t{0}, std::size_t{1},
                                  std::size_t{15}, std::size_t{31},
                                  std::size_t{33}, std::size_t{63}}) {
    char* p = page + align;
    constexpr std::size_t kLen = 130;  // spans 4 AVX2 chunks + tail
    for (const unsigned char special : kSpecials) {
      std::memset(p, 'a', kLen);
      for (std::size_t pos = 0; pos < kLen; ++pos) {
        p[pos] = static_cast<char>(special);
        for (const Level level : HostLevels()) {
          ExpectSpanAgreement(level, p, kLen);
        }
        p[pos] = 'a';
      }
    }
  }
}

// Spans placed flush against a PROT_NONE page: any read past the span
// faults.  (EqualDate10/ParseClock8 are exercised at their contract
// widths — 16 and 8 readable bytes — likewise flush to the boundary.)
TEST(SimdKernels, NoOverreadAtGuardPage) {
  const std::size_t page = 4096;
  void* raw = mmap(nullptr, 3 * page, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  ASSERT_NE(raw, MAP_FAILED);
  char* base = static_cast<char*>(raw);
  ASSERT_EQ(mprotect(base + 2 * page, page, PROT_NONE), 0);
  char* boundary = base + 2 * page;
  std::mt19937_64 rng(777);
  std::vector<std::string_view> scratch;
  for (std::size_t len = 0; len <= 257; ++len) {
    char* p = boundary - len;
    Fill(rng, p, len);
    for (const Level level : HostLevels()) {
      const KernelTable& table = TableFor(level);
      (void)table.find_byte(p, len, 0, '\n');
      table.split_whitespace(std::string_view(p, len), &scratch);
      (void)table.hash_bytes(p, len, kFnv1aOffset);
      (void)table.validate_digits(p, len);
    }
  }
  std::memcpy(boundary - 16, "2010-01-10 extra", 16);
  std::memcpy(boundary - 32, "2010-01-10 other", 16);
  for (const Level level : HostLevels()) {
    EXPECT_TRUE(TableFor(level).equal_date10(boundary - 16, boundary - 32));
  }
  std::memcpy(boundary - 8, "12:34:56", 8);
  for (const Level level : HostLevels()) {
    EXPECT_EQ(TableFor(level).parse_clock8(boundary - 8),
              (12 << 16) | (34 << 8) | 56);
  }
  munmap(base, 3 * page);
}

// Only the first 10 bytes participate in the compare; the 6 padding bytes
// may differ arbitrarily at every level.
TEST(SimdKernels, EqualDate10IgnoresPadding) {
  char a[16];
  char b[16];
  std::memcpy(a, "2010-01-10 12:34", 16);
  for (std::size_t diff = 0; diff < 16; ++diff) {
    std::memcpy(b, a, 16);
    b[diff] = '!';
    const bool want = std::memcmp(a, b, 10) == 0;
    for (const Level level : HostLevels()) {
      EXPECT_EQ(TableFor(level).equal_date10(a, b), want)
          << "level=" << LevelName(level) << " diff=" << diff;
    }
  }
}

TEST(SimdKernels, ParseClock8Sweep) {
  const KernelTable& oracle = TableFor(Level::kScalar);
  static constexpr char kReplacements[] = {
      '0', '5', '9', ':', '/', '.', ' ', 'a', '\0', '\n',
      static_cast<char>('0' - 1), static_cast<char>('9' + 1),
      static_cast<char>(0x80), static_cast<char>(0xFF)};
  char buf[8];
  for (std::size_t pos = 0; pos < 8; ++pos) {
    for (const char replacement : kReplacements) {
      std::memcpy(buf, "12:34:56", 8);
      buf[pos] = replacement;
      for (const Level level : HostLevels()) {
        ASSERT_EQ(TableFor(level).parse_clock8(buf), oracle.parse_clock8(buf))
            << "level=" << LevelName(level) << " pos=" << pos
            << " byte=" << static_cast<int>(replacement);
      }
    }
  }
  // All two-digit fields, varied one at a time (and packing spot checks).
  for (int v = 0; v < 100; ++v) {
    char hh[9], mm[9], ss[9];
    std::snprintf(hh, sizeof(hh), "%02d:11:22", v);
    std::snprintf(mm, sizeof(mm), "03:%02d:22", v);
    std::snprintf(ss, sizeof(ss), "03:11:%02d", v);
    for (const Level level : HostLevels()) {
      const KernelTable& table = TableFor(level);
      EXPECT_EQ(table.parse_clock8(hh), (v << 16) | (11 << 8) | 22);
      EXPECT_EQ(table.parse_clock8(mm), (3 << 16) | (v << 8) | 22);
      EXPECT_EQ(table.parse_clock8(ss), (3 << 16) | (11 << 8) | v);
    }
  }
}

// The memo-key identity: same 64-bit value at every level, including the
// chained two-hash pattern the match memo uses.
TEST(SimdKernels, HashBytesValueStableAcrossLevels) {
  std::mt19937_64 rng(42);
  for (std::size_t len = 0; len <= 300; ++len) {
    std::string s(len, '\0');
    Fill(rng, s.data(), len);
    const std::uint64_t want = HashBytesScalar(s);
    for (const Level level : HostLevels()) {
      const KernelTable& table = TableFor(level);
      EXPECT_EQ(table.hash_bytes(s.data(), s.size(), kFnv1aOffset), want);
      const std::uint64_t chained = table.hash_bytes(
          s.data(), s.size(), want ^ 0x9ae16a3b2f90404full);
      EXPECT_EQ(chained, HashBytesScalar(s, want ^ 0x9ae16a3b2f90404full));
    }
  }
}

TEST(SimdKernels, SeededRandomFuzz) {
  std::mt19937_64 rng(20260809);
  alignas(64) static char page[4096];
  for (int rep = 0; rep < 20000; ++rep) {
    const std::size_t len = rng() % 512;
    const std::size_t align = rng() % 64;
    char* p = page + align;
    Fill(rng, p, len);
    for (const Level level : HostLevels()) {
      ExpectSpanAgreement(level, p, len);
    }
  }
}

TEST(SimdDispatch, LevelNamesRoundTrip) {
  EXPECT_EQ(LevelFromName("scalar"), Level::kScalar);
  EXPECT_EQ(LevelFromName("sse2"), Level::kSse2);
  EXPECT_EQ(LevelFromName("avx2"), Level::kAvx2);
  EXPECT_FALSE(LevelFromName("avx512").has_value());
  EXPECT_FALSE(LevelFromName("").has_value());
  EXPECT_FALSE(LevelFromName("native").has_value());
  for (const Level level : HostLevels()) {
    EXPECT_EQ(LevelFromName(LevelName(level)), level);
  }
}

TEST(SimdDispatch, SetLevelClampsToHost) {
  const Level before = ActiveLevel();
  const Level got = SetLevel(Level::kAvx2);
  EXPECT_EQ(got, MaxSupported() >= Level::kAvx2 ? Level::kAvx2
                                                : MaxSupported());
  EXPECT_EQ(ActiveLevel(), got);
  EXPECT_EQ(SetLevel(Level::kScalar), Level::kScalar);
  EXPECT_EQ(ActiveLevel(), Level::kScalar);
  SetLevel(before);
  EXPECT_EQ(ActiveLevel(), before);
}

// Flipping the level must be invisible through the public wrappers the
// library actually calls: tokenization, digit checks, hashing, and the
// fast timestamp parse (vs its independent slow oracle).
TEST(SimdDispatch, PublicWrappersIdenticalAtEveryLevel) {
  const Level before = ActiveLevel();
  const std::vector<std::string> samples = {
      "",
      " ",
      "\t\t",
      "one",
      "  leading and trailing  ",
      "Interface TenGigE0/1/0/3 changed state to down",
      "neighbor 10.0.0.1 (AS 65001) down \t BGP-5-ADJCHANGE",
      std::string(300, ' '),
      std::string(127, 'x') + " " + std::string(129, 'y'),
  };
  const std::vector<std::string> stamps = {
      "2010-01-10 00:00:15",        "2010-01-10 23:59:59",
      "2010-01-10 24:00:00",        "2010-02-29 10:00:00",
      "2012-02-29 10:00:00",        "2010-01-10 12:34:56.789",
      "2010-01-10 12:3x:56",        "garbage",
      "2010-01-1  12:34:56",
  };
  for (const Level level : HostLevels()) {
    ASSERT_EQ(SetLevel(level), level);
    for (const std::string& s : samples) {
      EXPECT_EQ(sld::SplitWhitespace(s), [&] {
        std::vector<std::string_view> out;
        TableFor(Level::kScalar).split_whitespace(s, &out);
        return out;
      }());
      EXPECT_EQ(sld::IsAllDigits(s),
                !s.empty() &&
                    TableFor(Level::kScalar)
                        .validate_digits(s.data(), s.size()));
      EXPECT_EQ(sld::HashBytes(s), HashBytesScalar(s));
    }
    TimestampMemo memo;
    for (const std::string& s : stamps) {
      EXPECT_EQ(ParseTimestampFast(s, memo), ParseTimestamp(s)) << s;
      // Twice: once cold, once through the memo's date-compare kernel.
      EXPECT_EQ(ParseTimestampFast(s, memo), ParseTimestamp(s)) << s;
    }
  }
  SetLevel(before);
}

}  // namespace
}  // namespace sld::simd
