#include <gtest/gtest.h>

#include <set>

#include "common/interner.h"
#include "common/rng.h"
#include "common/union_find.h"

namespace sld {
namespace {

TEST(UnionFindTest, SingletonsInitially) {
  UnionFind uf(5);
  EXPECT_EQ(uf.SetCount(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(uf.Find(i), i);
    EXPECT_EQ(uf.SetSize(i), 1u);
  }
}

TEST(UnionFindTest, UnionMergesTransitively) {
  UnionFind uf(6);
  uf.Union(0, 1);
  uf.Union(2, 3);
  EXPECT_FALSE(uf.Connected(0, 2));
  uf.Union(1, 2);
  EXPECT_TRUE(uf.Connected(0, 3));
  EXPECT_EQ(uf.SetSize(3), 4u);
  EXPECT_EQ(uf.SetCount(), 3u);  // {0,1,2,3}, {4}, {5}
}

TEST(UnionFindTest, UnionIsIdempotent) {
  UnionFind uf(3);
  const std::size_t r1 = uf.Union(0, 1);
  const std::size_t r2 = uf.Union(0, 1);
  EXPECT_EQ(r1, r2);
  EXPECT_EQ(uf.SetCount(), 2u);
}

TEST(UnionFindTest, OrderOfUnionsDoesNotChangePartition) {
  // The property the digester relies on: any order of the same merge set
  // yields the same partition.
  const std::vector<std::pair<std::size_t, std::size_t>> merges = {
      {0, 1}, {2, 3}, {4, 5}, {1, 2}, {6, 7}, {5, 6}};
  UnionFind forward(9);
  for (const auto& [a, b] : merges) forward.Union(a, b);
  UnionFind backward(9);
  for (auto it = merges.rbegin(); it != merges.rend(); ++it) {
    backward.Union(it->first, it->second);
  }
  for (std::size_t i = 0; i < 9; ++i) {
    for (std::size_t j = 0; j < 9; ++j) {
      EXPECT_EQ(forward.Connected(i, j), backward.Connected(i, j));
    }
  }
}

TEST(InternerTest, SameStringSameId) {
  StringInterner interner;
  const auto a = interner.Intern("hello");
  const auto b = interner.Intern("world");
  const auto c = interner.Intern("hello");
  EXPECT_EQ(a, c);
  EXPECT_NE(a, b);
  EXPECT_EQ(interner.Get(a), "hello");
  EXPECT_EQ(interner.Get(b), "world");
  EXPECT_EQ(interner.size(), 2u);
}

TEST(InternerTest, LookupWithoutInsert) {
  StringInterner interner;
  EXPECT_FALSE(interner.Lookup("absent").has_value());
  const auto id = interner.Intern("present");
  EXPECT_EQ(interner.Lookup("present").value(), id);
}

TEST(InternerTest, ViewsStableAcrossGrowth) {
  StringInterner interner;
  const auto first = interner.Intern("stable");
  const std::string_view view = interner.Get(first);
  for (int i = 0; i < 10000; ++i) {
    interner.Intern("filler" + std::to_string(i));
  }
  EXPECT_EQ(view, "stable");  // deque storage never relocates
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000000), b.UniformInt(0, 1000000));
  }
}

TEST(RngTest, UniformIntWithinBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.UniformInt(5, 9);
    EXPECT_GE(v, 5);
    EXPECT_LE(v, 9);
  }
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(7);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
  EXPECT_FALSE(rng.Bernoulli(-0.5));
  EXPECT_TRUE(rng.Bernoulli(1.5));
}

TEST(RngTest, WeightedRespectsZeroWeight) {
  Rng rng(7);
  const std::vector<double> weights = {0.0, 1.0, 0.0};
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(rng.Weighted(weights), 1u);
  }
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(7);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  rng.Shuffle(v);
  std::set<int> s(v.begin(), v.end());
  EXPECT_EQ(s.size(), 8u);
}

TEST(RngTest, ForkedStreamsAreIndependent) {
  Rng a(42);
  Rng fork = a.Fork();
  // Draw from the fork; the parent's subsequent draws must equal a fresh
  // parent that also forked once but never used the fork.
  Rng b(42);
  (void)b.Fork();
  for (int i = 0; i < 10; ++i) (void)fork.UniformReal();
  EXPECT_EQ(a.UniformInt(0, 1 << 30), b.UniformInt(0, 1 << 30));
}

TEST(RngTest, PoissonMeanRoughlyCorrect) {
  Rng rng(123);
  double sum = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) sum += static_cast<double>(rng.Poisson(4.0));
  EXPECT_NEAR(sum / kN, 4.0, 0.1);
}

}  // namespace
}  // namespace sld
