#include "common/strings.h"

#include <gtest/gtest.h>

namespace sld {
namespace {

TEST(SplitWhitespaceTest, Basic) {
  const auto parts = SplitWhitespace("a bb  ccc");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "bb");
  EXPECT_EQ(parts[2], "ccc");
}

TEST(SplitWhitespaceTest, LeadingTrailingAndTabs) {
  const auto parts = SplitWhitespace("\t x\t y  ");
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0], "x");
  EXPECT_EQ(parts[1], "y");
}

TEST(SplitWhitespaceTest, Empty) {
  EXPECT_TRUE(SplitWhitespace("").empty());
  EXPECT_TRUE(SplitWhitespace("   ").empty());
}

TEST(SplitWhitespaceTest, ScratchFormClearsAndRefills) {
  std::vector<std::string_view> scratch;
  SplitWhitespace("a bb  ccc", &scratch);
  ASSERT_EQ(scratch.size(), 3u);
  EXPECT_EQ(scratch[2], "ccc");
  // A second call replaces, never appends; capacity is reused.
  const auto capacity = scratch.capacity();
  SplitWhitespace("x y", &scratch);
  ASSERT_EQ(scratch.size(), 2u);
  EXPECT_EQ(scratch[0], "x");
  EXPECT_EQ(scratch.capacity(), capacity);
  SplitWhitespace("", &scratch);
  EXPECT_TRUE(scratch.empty());
}

TEST(SplitCharTest, PreservesEmptyFields) {
  const auto parts = SplitChar("a||b|", '|');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(SplitCharTest, NoDelimiter) {
  const auto parts = SplitChar("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(JoinTest, JoinsWithSeparator) {
  const std::vector<std::string> parts = {"a", "b", "c"};
  EXPECT_EQ(Join(parts, ", "), "a, b, c");
  EXPECT_EQ(Join(std::vector<std::string>{}, ", "), "");
  EXPECT_EQ(Join(std::vector<std::string>{"x"}, ", "), "x");
}

TEST(TrimTest, RemovesSurroundingWhitespace) {
  EXPECT_EQ(Trim("  a b \r\n"), "a b");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim(" \t "), "");
  EXPECT_EQ(Trim("x"), "x");
}

TEST(ParseIntTest, Valid) {
  EXPECT_EQ(ParseInt("0").value(), 0);
  EXPECT_EQ(ParseInt("42").value(), 42);
  EXPECT_EQ(ParseInt("123456789012345").value(), 123456789012345LL);
}

TEST(ParseIntTest, Invalid) {
  EXPECT_FALSE(ParseInt("").has_value());
  EXPECT_FALSE(ParseInt("-1").has_value());
  EXPECT_FALSE(ParseInt("1x").has_value());
  EXPECT_FALSE(ParseInt("1234567890123456789").has_value());  // 19 digits
}

struct Ipv4Case {
  const char* text;
  bool valid;
};

class Ipv4Test : public ::testing::TestWithParam<Ipv4Case> {};

TEST_P(Ipv4Test, Classifies) {
  EXPECT_EQ(LooksLikeIpv4(GetParam().text), GetParam().valid)
      << GetParam().text;
}

INSTANTIATE_TEST_SUITE_P(
    Table, Ipv4Test,
    ::testing::Values(
        Ipv4Case{"0.0.0.0", true}, Ipv4Case{"255.255.255.255", true},
        Ipv4Case{"192.168.32.42", true}, Ipv4Case{"10.0.0.1", true},
        Ipv4Case{"256.1.1.1", false}, Ipv4Case{"1.1.1", false},
        Ipv4Case{"1.1.1.1.1", false}, Ipv4Case{"", false},
        Ipv4Case{"a.b.c.d", false}, Ipv4Case{"1..1.1", false},
        Ipv4Case{"1.1.1.1234", false}, Ipv4Case{"01.2.3.4", true},
        Ipv4Case{"1.2.3.4x", false}));

struct IfPosCase {
  const char* text;
  bool valid;
};

class IfPositionTest : public ::testing::TestWithParam<IfPosCase> {};

TEST_P(IfPositionTest, Classifies) {
  EXPECT_EQ(LooksLikeIfPosition(GetParam().text), GetParam().valid)
      << GetParam().text;
}

INSTANTIATE_TEST_SUITE_P(
    Table, IfPositionTest,
    ::testing::Values(IfPosCase{"1/0", true}, IfPosCase{"2/0/0", true},
                      IfPosCase{"1/0/0:1", true},
                      IfPosCase{"13/0.10/20:0", true},
                      IfPosCase{"1", false},       // no slash
                      IfPosCase{"1.2", false},     // no slash
                      IfPosCase{"1/", false},      // ends on separator
                      IfPosCase{"/1", false},      // starts with separator
                      IfPosCase{"a/b", false}, IfPosCase{"", false},
                      IfPosCase{"1//2", false}));

}  // namespace
}  // namespace sld
