#include "common/bounded_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace sld {
namespace {

TEST(BoundedQueueTest, FifoOrder) {
  BoundedQueue<int> q(10);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.Push(i));
  for (int i = 0; i < 5; ++i) {
    const auto item = q.Pop();
    ASSERT_TRUE(item.has_value());
    EXPECT_EQ(*item, i);
  }
}

TEST(BoundedQueueTest, TryPushRespectsCapacity) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_FALSE(q.TryPush(3));
  EXPECT_EQ(q.size(), 2u);
}

TEST(BoundedQueueTest, CloseDrainsThenSignalsEnd) {
  BoundedQueue<int> q(10);
  q.Push(1);
  q.Push(2);
  q.Close();
  EXPECT_FALSE(q.Push(3));
  EXPECT_EQ(q.Pop().value(), 1);
  EXPECT_EQ(q.Pop().value(), 2);
  EXPECT_FALSE(q.Pop().has_value());
  EXPECT_TRUE(q.closed());
}

TEST(BoundedQueueTest, PushBlocksUntilSpaceFrees) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.Push(1));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    q.Push(2);  // blocks until the consumer pops
    pushed = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());
  EXPECT_EQ(q.Pop().value(), 1);
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(q.Pop().value(), 2);
}

TEST(BoundedQueueTest, PopBlocksUntilItemArrives) {
  BoundedQueue<int> q(4);
  std::optional<int> got;
  std::thread consumer([&] { got = q.Pop(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.Push(42);
  consumer.join();
  EXPECT_EQ(got.value(), 42);
}

TEST(BoundedQueueTest, CloseWakesBlockedConsumer) {
  BoundedQueue<int> q(4);
  std::optional<int> got = 99;
  std::thread consumer([&] { got = q.Pop(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.Close();
  consumer.join();
  EXPECT_FALSE(got.has_value());
}

TEST(BoundedQueueTest, TryPopReturnsNulloptWhenEmpty) {
  BoundedQueue<int> q(4);
  EXPECT_FALSE(q.TryPop().has_value());
  q.Push(7);
  EXPECT_EQ(q.TryPop().value(), 7);
  EXPECT_FALSE(q.TryPop().has_value());
}

TEST(BoundedQueueTest, TryPopStillDrainsAfterClose) {
  BoundedQueue<int> q(4);
  q.Push(1);
  q.Close();
  EXPECT_EQ(q.TryPop().value(), 1);
  EXPECT_FALSE(q.TryPop().has_value());
}

TEST(BoundedQueueTest, PopAllDrainsEverythingQueued) {
  BoundedQueue<int> q(8);
  for (int i = 0; i < 5; ++i) q.Push(i);
  const std::deque<int> got = q.PopAll();
  ASSERT_EQ(got.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(got[static_cast<std::size_t>(i)], i);
  EXPECT_EQ(q.size(), 0u);
}

TEST(BoundedQueueTest, PopAllReturnsEmptyOnceClosedAndDrained) {
  BoundedQueue<int> q(4);
  q.Push(3);
  q.Close();
  EXPECT_EQ(q.PopAll().size(), 1u);
  EXPECT_TRUE(q.PopAll().empty());
}

TEST(BoundedQueueTest, PopAllFreesBlockedProducers) {
  BoundedQueue<int> q(2);
  q.Push(1);
  q.Push(2);
  std::atomic<int> pushed{0};
  std::thread a([&] {
    q.Push(3);
    ++pushed;
  });
  std::thread b([&] {
    q.Push(4);
    ++pushed;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(pushed.load(), 0);
  EXPECT_EQ(q.PopAll().size(), 2u);  // notify_all releases both producers
  a.join();
  b.join();
  EXPECT_EQ(pushed.load(), 2);
  EXPECT_EQ(q.size(), 2u);
}

TEST(BoundedQueueTest, CloseReleasesBlockedProducer) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.Push(1));
  std::atomic<bool> returned{false};
  bool push_result = true;
  std::thread producer([&] {
    push_result = q.Push(2);  // blocked on full queue
    returned = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(returned.load());
  q.Close();
  producer.join();
  EXPECT_FALSE(push_result);  // rejected, not silently enqueued
  EXPECT_EQ(q.Pop().value(), 1);
  EXPECT_FALSE(q.Pop().has_value());
}

TEST(BoundedQueueTest, CapacityIsExposed) {
  BoundedQueue<int> q(3);
  EXPECT_EQ(q.capacity(), 3u);
}

TEST(BoundedQueueTest, ManyProducersOneConsumer) {
  BoundedQueue<int> q(8);
  constexpr int kPerProducer = 500;
  constexpr int kProducers = 4;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        q.Push(p * kPerProducer + i);
      }
    });
  }
  std::vector<bool> seen(kProducers * kPerProducer, false);
  std::size_t count = 0;
  while (count < seen.size()) {
    const auto item = q.Pop();
    ASSERT_TRUE(item.has_value());
    ASSERT_FALSE(seen[static_cast<std::size_t>(*item)]);
    seen[static_cast<std::size_t>(*item)] = true;
    ++count;
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(q.size(), 0u);
}

}  // namespace
}  // namespace sld
