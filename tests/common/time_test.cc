#include "common/time.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <string_view>

namespace sld {
namespace {

TEST(TimeTest, EpochIsZero) {
  EXPECT_EQ(ToTimeMs(CivilTime{1970, 1, 1, 0, 0, 0, 0}), 0);
}

TEST(TimeTest, KnownTimestamp) {
  // 2010-01-10 00:00:15 UTC = 1263081615 seconds since epoch.
  const CivilTime ct{2010, 1, 10, 0, 0, 15, 0};
  EXPECT_EQ(ToTimeMs(ct), 1263081615LL * 1000);
}

TEST(TimeTest, CivilRoundTripAroundEpoch) {
  for (TimeMs t = -3 * kMsPerDay; t <= 3 * kMsPerDay; t += 7919 * 13) {
    EXPECT_EQ(ToTimeMs(ToCivil(t)), t);
  }
}

TEST(TimeTest, FormatMatchesSyslogStyle) {
  const TimeMs t = ToTimeMs(CivilTime{2009, 9, 1, 7, 5, 3, 0});
  EXPECT_EQ(FormatTimestamp(t), "2009-09-01 07:05:03");
}

TEST(TimeTest, FormatWithMilliseconds) {
  const TimeMs t = ToTimeMs(CivilTime{2009, 12, 31, 23, 59, 59, 7});
  EXPECT_EQ(FormatTimestampMs(t), "2009-12-31 23:59:59.007");
}

TEST(TimeTest, ParseValid) {
  const auto t = ParseTimestamp("2010-01-10 00:00:15");
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(*t, 1263081615LL * 1000);
}

TEST(TimeTest, ParseWithMilliseconds) {
  const auto t = ParseTimestamp("2010-01-10 00:00:15.250");
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(*t, 1263081615LL * 1000 + 250);
}

TEST(TimeTest, ParseRejectsMalformed) {
  EXPECT_FALSE(ParseTimestamp("").has_value());
  EXPECT_FALSE(ParseTimestamp("2010-01-10").has_value());
  EXPECT_FALSE(ParseTimestamp("2010/01/10 00:00:15").has_value());
  EXPECT_FALSE(ParseTimestamp("2010-13-10 00:00:15").has_value());
  EXPECT_FALSE(ParseTimestamp("2010-00-10 00:00:15").has_value());
  EXPECT_FALSE(ParseTimestamp("2010-01-32 00:00:15").has_value());
  EXPECT_FALSE(ParseTimestamp("2010-01-10 24:00:15").has_value());
  EXPECT_FALSE(ParseTimestamp("2010-01-10 00:60:15").has_value());
  EXPECT_FALSE(ParseTimestamp("2010-01-10 00:00:61").has_value());
  EXPECT_FALSE(ParseTimestamp("2010-01-10 00:00:15.").has_value());
  EXPECT_FALSE(ParseTimestamp("2010-01-10 00:00:15.2x0").has_value());
  EXPECT_FALSE(ParseTimestamp("abcd-01-10 00:00:15").has_value());
}

TEST(TimeTest, ParseRejectsInvalidCalendarDays) {
  EXPECT_FALSE(ParseTimestamp("2009-02-29 00:00:00").has_value());
  EXPECT_TRUE(ParseTimestamp("2008-02-29 00:00:00").has_value());
  EXPECT_FALSE(ParseTimestamp("2009-04-31 00:00:00").has_value());
}

TEST(TimeTest, LeapYears) {
  EXPECT_TRUE(IsLeapYear(2000));
  EXPECT_TRUE(IsLeapYear(2008));
  EXPECT_FALSE(IsLeapYear(1900));
  EXPECT_FALSE(IsLeapYear(2009));
  EXPECT_TRUE(IsLeapYear(2400));
}

TEST(TimeTest, DaysInMonth) {
  EXPECT_EQ(DaysInMonth(2009, 2), 28);
  EXPECT_EQ(DaysInMonth(2008, 2), 29);
  EXPECT_EQ(DaysInMonth(2009, 9), 30);
  EXPECT_EQ(DaysInMonth(2009, 12), 31);
  EXPECT_EQ(DaysInMonth(2009, 0), 0);
  EXPECT_EQ(DaysInMonth(2009, 13), 0);
}

// Round-trip format->parse across a broad sweep of instants.
class TimeRoundTrip : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(TimeRoundTrip, FormatParseIdentity) {
  const TimeMs t = GetParam() * kMsPerSecond;
  const auto parsed = ParseTimestamp(FormatTimestamp(t));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, t);
}

INSTANTIATE_TEST_SUITE_P(
    SweepsThirtyYears, TimeRoundTrip,
    ::testing::Range<std::int64_t>(0, 30LL * 365 * 86400,
                                   37LL * 86400 + 12345));

// ParseTimestampFast must accept/reject exactly what ParseTimestamp
// does and return the same value, whatever the memo held before.
void ExpectFastMatchesSlow(std::string_view text, TimestampMemo& memo) {
  const auto slow = ParseTimestamp(text);
  const auto fast = ParseTimestampFast(text, memo);
  ASSERT_EQ(fast.has_value(), slow.has_value()) << "input: " << text;
  if (slow.has_value()) {
    EXPECT_EQ(*fast, *slow) << "input: " << text;
  }
}

TEST(TimestampFastTest, ExhaustiveDaySweepWithWarmMemo) {
  // Every day of a leap and a non-leap year, in order (the memo stays
  // warm within a day, exactly the archive access pattern).
  TimestampMemo memo;
  for (const int year : {2008, 2009}) {
    for (int month = 1; month <= 12; ++month) {
      for (int day = 1; day <= DaysInMonth(year, month); ++day) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d 11:22:33", year,
                      month, day);
        ExpectFastMatchesSlow(buf, memo);
        std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d 23:59:59.999",
                      year, month, day);
        ExpectFastMatchesSlow(buf, memo);
      }
    }
  }
}

TEST(TimestampFastTest, MonthAndDayBounds) {
  TimestampMemo memo;
  const char* cases[] = {
      "2008-02-29 00:00:00",  // leap day: valid
      "2009-02-29 00:00:00",  // not a leap year
      "2100-02-29 00:00:00",  // century non-leap
      "2000-02-29 00:00:00",  // 400-year leap: valid
      "2009-00-10 00:00:00", "2009-13-01 00:00:00",
      "2009-01-00 00:00:00", "2009-01-32 00:00:00",
      "2009-04-31 00:00:00", "2009-12-31 23:59:59",
      "2009-06-15 24:00:00", "2009-06-15 23:60:00",
      "2009-06-15 23:59:60",
  };
  for (const char* text : cases) ExpectFastMatchesSlow(text, memo);
}

TEST(TimestampFastTest, SyntaxAndMillisForms) {
  TimestampMemo memo;
  const char* cases[] = {
      "2009-06-15 12:00:00.000", "2009-06-15 12:00:00.999",
      "2009-06-15 12:00:00.5",    // wrong length
      "2009-06-15 12:00:00,500",  // wrong separator
      "2009-06-15 12:00:00.a00", "2009/06/15 12:00:00",
      "2009-06-15T12:00:00",     "2009-06-15 12.00.00",
      "2009-06-1 12:00:00",      "garbage",
      "",                        "2009-06-15 12:00:0x",
      "x009-06-15 12:00:00",
  };
  for (const char* text : cases) ExpectFastMatchesSlow(text, memo);
}

TEST(TimestampFastTest, MemoCannotLeakAcrossDates) {
  TimestampMemo memo;
  // Seed the memo with a valid date, then present inputs that share a
  // 10-char prefix shape but differ somewhere in the date: every one
  // must be re-validated from scratch.
  ExpectFastMatchesSlow("2008-02-28 10:00:00", memo);
  ExpectFastMatchesSlow("2008-02-29 10:00:00", memo);  // differs in day
  ExpectFastMatchesSlow("2008-02-30 10:00:00", memo);  // invalid day
  ExpectFastMatchesSlow("2008-02-29 10:00:01", memo);  // memo hit again
  ExpectFastMatchesSlow("2009-02-28 10:00:00", memo);  // differs in year
  // A memo hit must still reject a bad time-of-day tail.
  ExpectFastMatchesSlow("2009-02-28 25:00:00", memo);
  ExpectFastMatchesSlow("2009-02-28 10:00:00.bad", memo);
}

TEST(TimestampFastTest, RoundTripSweepMatchesSlow) {
  TimestampMemo memo;
  for (std::int64_t s = 0; s < 30LL * 365 * 86400;
       s += 37LL * 86400 + 12345) {
    const TimeMs t = s * kMsPerSecond;
    const std::string text = FormatTimestamp(t);
    const auto fast = ParseTimestampFast(text, memo);
    ASSERT_TRUE(fast.has_value());
    EXPECT_EQ(*fast, t);
  }
}

TEST(TimeTest, DaysFromCivilInverse) {
  for (std::int64_t d = -100000; d <= 100000; d += 733) {
    int y = 0;
    int m = 0;
    int day = 0;
    CivilFromDays(d, y, m, day);
    EXPECT_EQ(DaysFromCivil(y, m, day), d);
  }
}

}  // namespace
}  // namespace sld
