#include "common/time.h"

#include <gtest/gtest.h>

namespace sld {
namespace {

TEST(TimeTest, EpochIsZero) {
  EXPECT_EQ(ToTimeMs(CivilTime{1970, 1, 1, 0, 0, 0, 0}), 0);
}

TEST(TimeTest, KnownTimestamp) {
  // 2010-01-10 00:00:15 UTC = 1263081615 seconds since epoch.
  const CivilTime ct{2010, 1, 10, 0, 0, 15, 0};
  EXPECT_EQ(ToTimeMs(ct), 1263081615LL * 1000);
}

TEST(TimeTest, CivilRoundTripAroundEpoch) {
  for (TimeMs t = -3 * kMsPerDay; t <= 3 * kMsPerDay; t += 7919 * 13) {
    EXPECT_EQ(ToTimeMs(ToCivil(t)), t);
  }
}

TEST(TimeTest, FormatMatchesSyslogStyle) {
  const TimeMs t = ToTimeMs(CivilTime{2009, 9, 1, 7, 5, 3, 0});
  EXPECT_EQ(FormatTimestamp(t), "2009-09-01 07:05:03");
}

TEST(TimeTest, FormatWithMilliseconds) {
  const TimeMs t = ToTimeMs(CivilTime{2009, 12, 31, 23, 59, 59, 7});
  EXPECT_EQ(FormatTimestampMs(t), "2009-12-31 23:59:59.007");
}

TEST(TimeTest, ParseValid) {
  const auto t = ParseTimestamp("2010-01-10 00:00:15");
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(*t, 1263081615LL * 1000);
}

TEST(TimeTest, ParseWithMilliseconds) {
  const auto t = ParseTimestamp("2010-01-10 00:00:15.250");
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(*t, 1263081615LL * 1000 + 250);
}

TEST(TimeTest, ParseRejectsMalformed) {
  EXPECT_FALSE(ParseTimestamp("").has_value());
  EXPECT_FALSE(ParseTimestamp("2010-01-10").has_value());
  EXPECT_FALSE(ParseTimestamp("2010/01/10 00:00:15").has_value());
  EXPECT_FALSE(ParseTimestamp("2010-13-10 00:00:15").has_value());
  EXPECT_FALSE(ParseTimestamp("2010-00-10 00:00:15").has_value());
  EXPECT_FALSE(ParseTimestamp("2010-01-32 00:00:15").has_value());
  EXPECT_FALSE(ParseTimestamp("2010-01-10 24:00:15").has_value());
  EXPECT_FALSE(ParseTimestamp("2010-01-10 00:60:15").has_value());
  EXPECT_FALSE(ParseTimestamp("2010-01-10 00:00:61").has_value());
  EXPECT_FALSE(ParseTimestamp("2010-01-10 00:00:15.").has_value());
  EXPECT_FALSE(ParseTimestamp("2010-01-10 00:00:15.2x0").has_value());
  EXPECT_FALSE(ParseTimestamp("abcd-01-10 00:00:15").has_value());
}

TEST(TimeTest, ParseRejectsInvalidCalendarDays) {
  EXPECT_FALSE(ParseTimestamp("2009-02-29 00:00:00").has_value());
  EXPECT_TRUE(ParseTimestamp("2008-02-29 00:00:00").has_value());
  EXPECT_FALSE(ParseTimestamp("2009-04-31 00:00:00").has_value());
}

TEST(TimeTest, LeapYears) {
  EXPECT_TRUE(IsLeapYear(2000));
  EXPECT_TRUE(IsLeapYear(2008));
  EXPECT_FALSE(IsLeapYear(1900));
  EXPECT_FALSE(IsLeapYear(2009));
  EXPECT_TRUE(IsLeapYear(2400));
}

TEST(TimeTest, DaysInMonth) {
  EXPECT_EQ(DaysInMonth(2009, 2), 28);
  EXPECT_EQ(DaysInMonth(2008, 2), 29);
  EXPECT_EQ(DaysInMonth(2009, 9), 30);
  EXPECT_EQ(DaysInMonth(2009, 12), 31);
  EXPECT_EQ(DaysInMonth(2009, 0), 0);
  EXPECT_EQ(DaysInMonth(2009, 13), 0);
}

// Round-trip format->parse across a broad sweep of instants.
class TimeRoundTrip : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(TimeRoundTrip, FormatParseIdentity) {
  const TimeMs t = GetParam() * kMsPerSecond;
  const auto parsed = ParseTimestamp(FormatTimestamp(t));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, t);
}

INSTANTIATE_TEST_SUITE_P(
    SweepsThirtyYears, TimeRoundTrip,
    ::testing::Range<std::int64_t>(0, 30LL * 365 * 86400,
                                   37LL * 86400 + 12345));

TEST(TimeTest, DaysFromCivilInverse) {
  for (std::int64_t d = -100000; d <= 100000; d += 733) {
    int y = 0;
    int m = 0;
    int day = 0;
    CivilFromDays(d, y, m, day);
    EXPECT_EQ(DaysFromCivil(y, m, day), d);
  }
}

}  // namespace
}  // namespace sld
