// Unit tests for the pipeline subsystem: GroupTracker lifecycle (idle
// close, edge-to-closed-message skip, flush) and ShardedPipeline edge
// cases the equivalence test in core/pipeline_threads_test.cc does not
// reach (unknown routers, empty stream, more shards than routers).
#include "pipeline/pipeline.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "core/augment.h"
#include "core/learn.h"
#include "net/config_parser.h"
#include "pipeline/tracker.h"
#include "sim/generator.h"

namespace sld::pipeline {
namespace {

// Shared fixture: a learned pipeline over a small dataset A network.
struct Ctx {
  Ctx() {
    sim::DatasetSpec spec = sim::DatasetASpec();
    spec.topo.num_routers = 8;
    history = sim::GenerateDataset(spec, 0, 5, 501);
    live = sim::GenerateDataset(spec, 5, 1, 502);
    std::vector<net::ParsedConfig> parsed;
    for (const std::string& cfg : history.configs) {
      parsed.push_back(net::ParseConfig(cfg));
    }
    dict = core::LocationDict::Build(parsed);
    core::OfflineLearner learner;
    kb = learner.Learn(history.messages, dict);
  }
  sim::Dataset history;
  sim::Dataset live;
  core::LocationDict dict;
  core::KnowledgeBase kb;
};

Ctx& Shared() {
  static Ctx ctx;
  return ctx;
}

// Augments the first n live records with controlled timestamps spaced
// `step_ms` apart, starting at t=0.
std::vector<core::Augmented> Messages(Ctx& ctx, std::size_t n,
                                      TimeMs step_ms) {
  core::Augmenter augmenter(&ctx.kb.templates, &ctx.dict);
  std::vector<core::Augmented> out;
  for (std::size_t i = 0; i < n; ++i) {
    core::Augmented msg = augmenter.Augment(ctx.live.messages[i], i);
    msg.time = static_cast<TimeMs>(i) * step_ms;
    out.push_back(std::move(msg));
  }
  return out;
}

TEST(GroupTrackerTest, MergesAndClosesIdleGroups) {
  Ctx& ctx = Shared();
  const auto msgs = Messages(ctx, 3, 1000);
  GroupTracker tracker(&ctx.kb, &ctx.dict,
                       /*idle_close_ms=*/60 * kMsPerSecond,
                       GroupTracker::kUnboundedMs);
  for (const auto& m : msgs) {
    tracker.Observe(m.time);
    tracker.Add(m);
  }
  tracker.ApplyEdges({{0, 1}});
  EXPECT_TRUE(tracker.SameGroup(0, 1));
  EXPECT_FALSE(tracker.SameGroup(0, 2));
  EXPECT_EQ(tracker.open_group_count(), 2u);
  EXPECT_EQ(tracker.open_message_count(), 3u);

  // Nothing is idle yet: a sweep well inside the horizon closes nothing.
  EXPECT_TRUE(tracker.Observe(40 * kMsPerSecond).empty());
  // Far past the horizon, everything closes, ordered by start time.
  const auto events = tracker.Observe(1000 * kMsPerSecond);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].messages.size(), 2u);
  EXPECT_EQ(events[1].messages.size(), 1u);
  EXPECT_EQ(tracker.open_group_count(), 0u);
  EXPECT_EQ(tracker.open_message_count(), 0u);
  EXPECT_EQ(tracker.processed_count(), 3u);
  EXPECT_TRUE(tracker.Flush().empty());
}

TEST(GroupTrackerTest, UnboundedHorizonClosesOnlyOnFlush) {
  Ctx& ctx = Shared();
  const auto msgs = Messages(ctx, 4, 60 * kMsPerSecond);
  GroupTracker tracker(&ctx.kb, &ctx.dict, GroupTracker::kUnboundedMs,
                       GroupTracker::kUnboundedMs);
  for (const auto& m : msgs) {
    EXPECT_TRUE(tracker.Observe(m.time).empty());
    tracker.Add(m);
  }
  tracker.ApplyEdges({{0, 2}, {1, 3}});
  const auto events = tracker.Flush();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].messages.size(), 2u);
  EXPECT_EQ(events[1].messages.size(), 2u);
}

TEST(GroupTrackerTest, EdgesToClosedMessagesAreSkipped) {
  Ctx& ctx = Shared();
  const auto msgs = Messages(ctx, 3, 1000);
  GroupTracker tracker(&ctx.kb, &ctx.dict, /*idle_close_ms=*/5000,
                       GroupTracker::kUnboundedMs);
  tracker.Observe(msgs[0].time);
  tracker.Add(msgs[0]);
  // Idle out message 0.
  ASSERT_EQ(tracker.Observe(1000 * kMsPerSecond).size(), 1u);

  tracker.Add(msgs[1]);
  tracker.Add(msgs[2]);
  // An edge back to the closed message must not resurrect it; the edge
  // between the open pair still lands.
  tracker.ApplyEdges({{0, 1}, {1, 2}});
  EXPECT_FALSE(tracker.SameGroup(0, 1));
  EXPECT_TRUE(tracker.SameGroup(1, 2));
  const auto events = tracker.Flush();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].messages.size(), 2u);
}

TEST(GroupTrackerTest, MaxGroupAgeForceClosesLongRunners) {
  Ctx& ctx = Shared();
  const auto msgs = Messages(ctx, 2, 45 * kMsPerSecond);
  // Horizon never triggers (the group stays active), but max age does.
  GroupTracker tracker(&ctx.kb, &ctx.dict,
                       /*idle_close_ms=*/GroupTracker::kUnboundedMs,
                       /*max_group_age_ms=*/60 * kMsPerSecond);
  tracker.Observe(msgs[0].time);
  tracker.Add(msgs[0]);
  tracker.Observe(msgs[1].time);
  tracker.Add(msgs[1]);
  tracker.ApplyEdges({{0, 1}});
  tracker.Touch(1, msgs[1].time);
  const auto events = tracker.Observe(100 * kMsPerSecond);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].messages.size(), 2u);
}

TEST(GroupTrackerTest, CompactionPreservesOpenGroups) {
  Ctx& ctx = Shared();
  // Enough traffic to trip the arena compaction threshold (>4096 slots
  // with >3/4 of them closed) while a recent group stays open.  Sweeps
  // fire only on a >=30s observation gap, so space the messages past it.
  const std::size_t n =
      std::min<std::size_t>(ctx.live.messages.size(), 6000);
  ASSERT_GT(n, 4200u);  // otherwise compaction never trips
  auto msgs = Messages(ctx, n, 31 * kMsPerSecond);
  msgs[n - 1].time = msgs[n - 2].time + 1000;  // final pair stays coeval
  GroupTracker tracker(&ctx.kb, &ctx.dict, /*idle_close_ms=*/5000,
                       GroupTracker::kUnboundedMs);
  std::size_t closed_messages = 0;
  for (const auto& m : msgs) {
    for (const auto& ev : tracker.Observe(m.time)) {
      closed_messages += ev.messages.size();
    }
    tracker.Add(m);
  }
  EXPECT_GT(closed_messages, 0u);
  // The most recent pair is still open; merge and flush them together.
  tracker.ApplyEdges({{n - 2, n - 1}});
  EXPECT_TRUE(tracker.SameGroup(n - 2, n - 1));
  const auto events = tracker.Flush();
  std::size_t flushed = 0;
  for (const auto& ev : events) flushed += ev.messages.size();
  // No message lost or duplicated across sweeps and compactions.
  EXPECT_EQ(closed_messages + flushed, n);
  ASSERT_FALSE(events.empty());
  const auto merged = std::find_if(
      events.begin(), events.end(), [n](const core::DigestEvent& ev) {
        return std::find(ev.messages.begin(), ev.messages.end(), n - 2) !=
               ev.messages.end();
      });
  ASSERT_NE(merged, events.end());
  EXPECT_NE(std::find(merged->messages.begin(), merged->messages.end(),
                      n - 1),
            merged->messages.end());
}

TEST(ShardedPipelineTest, EmptyStreamFinishesCleanly) {
  Ctx& ctx = Shared();
  PipelineOptions opts;
  opts.shards = 4;
  ShardedPipeline p(&ctx.kb, &ctx.dict, opts);
  const core::DigestResult result = p.Finish();
  EXPECT_EQ(result.message_count, 0u);
  EXPECT_TRUE(result.events.empty());
}

TEST(ShardedPipelineTest, FinishIsIdempotentAndDestructorSafe) {
  Ctx& ctx = Shared();
  {
    // Destructor after pushes but without Finish must not hang.
    ShardedPipeline p(&ctx.kb, &ctx.dict, {});
    for (std::size_t i = 0; i < 100; ++i) p.Push(ctx.live.messages[i]);
  }
  ShardedPipeline p(&ctx.kb, &ctx.dict, {});
  for (std::size_t i = 0; i < 100; ++i) p.Push(ctx.live.messages[i]);
  const core::DigestResult first = p.Finish();
  const core::DigestResult second = p.Finish();
  EXPECT_EQ(first.message_count, 100u);
  EXPECT_EQ(second.message_count, 100u);
  EXPECT_TRUE(second.events.empty());  // already handed out
}

TEST(ShardedPipelineTest, UnknownRoutersGetStableShards) {
  Ctx& ctx = Shared();
  // Rewrite every record to a router name absent from all configs; the
  // resolver must intern them consistently and the pipeline must not
  // drop or crash on unknown-router messages.
  std::vector<syslog::SyslogRecord> mystery;
  for (std::size_t i = 0; i < 500; ++i) {
    syslog::SyslogRecord rec = ctx.live.messages[i];
    rec.router = "ghost-" + std::to_string(i % 3);
    mystery.push_back(std::move(rec));
  }
  PipelineOptions opts;
  opts.shards = 4;
  ShardedPipeline p(&ctx.kb, &ctx.dict, opts);
  for (const auto& rec : mystery) p.Push(rec);
  const core::DigestResult result = p.Finish();
  EXPECT_EQ(result.message_count, mystery.size());
  std::size_t grouped = 0;
  for (const auto& ev : result.events) grouped += ev.messages.size();
  EXPECT_EQ(grouped, mystery.size());
}

TEST(ShardedPipelineTest, MoreShardsThanRoutersStillExact) {
  Ctx& ctx = Shared();
  core::Digester batch(&ctx.kb, &ctx.dict);
  const core::DigestResult expected = batch.Digest(ctx.live.messages);

  PipelineOptions opts;
  opts.shards = 16;  // only 8 routers: half the shards stay idle
  opts.batch_size = 32;
  ShardedPipeline p(&ctx.kb, &ctx.dict, opts);
  for (const auto& rec : ctx.live.messages) p.Push(rec);
  const core::DigestResult got = p.Finish();

  const auto canon = [](const std::vector<core::DigestEvent>& events) {
    std::set<std::vector<std::size_t>> out;
    for (const core::DigestEvent& ev : events) {
      std::vector<std::size_t> m = ev.messages;
      std::sort(m.begin(), m.end());
      out.insert(std::move(m));
    }
    return out;
  };
  EXPECT_EQ(canon(got.events), canon(expected.events));
}

}  // namespace
}  // namespace sld::pipeline
