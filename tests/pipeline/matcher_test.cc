// The per-shard match memo cache and the concurrent matcher around it:
// hit/miss behavior, epoch invalidation after catch-all insertions, and
// the lock-free hit path under thread contention (run under TSan in CI).
#include "pipeline/matcher.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "common/strings.h"

namespace sld::pipeline {
namespace {

std::vector<std::string> Tokens(std::string_view text) {
  std::vector<std::string> out;
  for (const auto tok : SplitWhitespace(text)) out.emplace_back(tok);
  return out;
}

core::TemplateSet SmallSet() {
  core::TemplateSet set;
  set.Add("LINK-3-UPDOWN", Tokens("Interface * changed state to down"));
  set.Add("BGP-5-ADJCHANGE", Tokens("neighbor * Up"));
  set.Add("BGP-5-ADJCHANGE", Tokens("neighbor * *"));
  return set;
}

TEST(MessageKeyTest, SeparatesCodeFromDetail) {
  EXPECT_NE(MessageKey("ab", "c"), MessageKey("a", "bc"));
  EXPECT_NE(MessageKey("a", ""), MessageKey("", "a"));
  EXPECT_NE(MessageKey("A", "x y"), MessageKey("A", "x z"));
  // Deterministic: same pair, same key.
  EXPECT_EQ(MessageKey("A", "x y"), MessageKey("A", "x y"));
  // Never the empty-slot sentinel.
  EXPECT_NE(MessageKey("", ""), 0u);
}

TEST(ShardMatchCacheTest, InsertLookupAndStats) {
  ShardMatchCache cache(4);
  const std::uint64_t k = MessageKey("C", "a b");
  EXPECT_FALSE(cache.Lookup(k).has_value());
  cache.Insert(k, 7);
  const auto hit = cache.Lookup(k);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, 7u);
  // Overwrite of an existing key keeps the size stable.
  cache.Insert(k, 9);
  EXPECT_EQ(cache.Lookup(k).value(), 9u);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.lookups(), 3u);
  EXPECT_EQ(cache.hits(), 2u);
}

TEST(ShardMatchCacheTest, StopsInsertingWhenHalfFull) {
  ShardMatchCache cache(2);  // 4 slots, 2 usable
  cache.Insert(MessageKey("A", "1"), 1);
  cache.Insert(MessageKey("A", "2"), 2);
  EXPECT_EQ(cache.size(), 2u);
  cache.Insert(MessageKey("A", "3"), 3);
  EXPECT_EQ(cache.size(), 2u);  // refused: the hot set is kept
  EXPECT_FALSE(cache.Lookup(MessageKey("A", "3")).has_value());
  EXPECT_EQ(cache.Lookup(MessageKey("A", "1")).value(), 1u);
  EXPECT_EQ(cache.Lookup(MessageKey("A", "2")).value(), 2u);
}

TEST(ShardMatchCacheTest, SyncEpochClearsStaleEntries) {
  ShardMatchCache cache;
  cache.Insert(MessageKey("A", "x"), 1);
  cache.SyncEpoch(0);  // same epoch: nothing happens
  EXPECT_EQ(cache.size(), 1u);
  cache.SyncEpoch(5);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.epoch(), 5u);
  EXPECT_FALSE(cache.Lookup(MessageKey("A", "x")).has_value());
}

TEST(ConcurrentTemplateMatcherTest, CachedResultsMatchUncached) {
  core::TemplateSet cached_set = SmallSet();
  core::TemplateSet plain_set = SmallSet();
  ConcurrentTemplateMatcher matcher(&cached_set);
  ShardMatchCache cache;
  std::vector<std::string_view> scratch;
  const std::vector<std::pair<std::string, std::string>> msgs = {
      {"LINK-3-UPDOWN", "Interface Serial1/0 changed state to down"},
      {"BGP-5-ADJCHANGE", "neighbor 10.0.0.1 Up"},
      {"BGP-5-ADJCHANGE", "neighbor 10.0.0.2 Down"},
      {"NEW-1-CODE", "some detail text"},
      {"LINK-3-UPDOWN", "Interface Serial1/0 changed state to down"},
      {"NEW-1-CODE", "other words here"},
  };
  for (int round = 0; round < 3; ++round) {
    for (const auto& [code, detail] : msgs) {
      const auto got =
          matcher.MatchOrFallback(code, detail, &cache, &scratch);
      const auto want = plain_set.MatchOrFallback(code, detail);
      EXPECT_EQ(cached_set.Get(got).Canonical(),
                plain_set.Get(want).Canonical())
          << code << " " << detail;
    }
  }
  // Steady state: with no more catch-all insertions pending, a full round
  // is all memo hits.
  const auto hits_before = cache.hits();
  for (const auto& [code, detail] : msgs) {
    matcher.MatchOrFallback(code, detail, &cache, &scratch);
  }
  EXPECT_EQ(cache.hits() - hits_before, msgs.size());
}

TEST(ConcurrentTemplateMatcherTest, CatchAllAddInvalidatesOtherShardCache) {
  core::TemplateSet set = SmallSet();
  ConcurrentTemplateMatcher matcher(&set);
  ShardMatchCache shard_a;
  ShardMatchCache shard_b;
  std::vector<std::string_view> scratch;

  const auto id = matcher.MatchOrFallback(
      "BGP-5-ADJCHANGE", "neighbor 10.0.0.1 Up", &shard_a, &scratch);
  EXPECT_EQ(shard_a.size(), 1u);
  const std::uint64_t epoch_before = matcher.epoch();

  // Another shard forces a catch-all insertion: the epoch moves on.
  matcher.MatchOrFallback("NEW-1-CODE", "a b c", &shard_b, &scratch);
  EXPECT_GT(matcher.epoch(), epoch_before);
  // Shard B adopted the new epoch before inserting, so its own entry
  // survived its own invalidation.
  EXPECT_EQ(shard_b.epoch(), matcher.epoch());
  EXPECT_EQ(shard_b.size(), 1u);

  // Shard A still holds the stale-epoch entry until its next probe syncs
  // it up; the re-match gives the same answer and re-fills the cache.
  EXPECT_EQ(shard_a.epoch(), epoch_before);
  const auto again = matcher.MatchOrFallback(
      "BGP-5-ADJCHANGE", "neighbor 10.0.0.1 Up", &shard_a, &scratch);
  EXPECT_EQ(again, id);
  EXPECT_EQ(shard_a.epoch(), matcher.epoch());
  EXPECT_EQ(shard_a.size(), 1u);  // cleared, then one fresh entry
}

// The TSan seam: concurrent lock-free hits while other threads force
// catch-all insertions through the writer lock.  Correctness check is by
// canonical template text, which is deterministic even though catch-all
// ids depend on thread interleaving.
TEST(ConcurrentTemplateMatcherTest, ConcurrentHitsAndFallbacksAreClean) {
  core::TemplateSet set = SmallSet();
  ConcurrentTemplateMatcher matcher(&set);
  constexpr int kThreads = 4;
  constexpr int kRounds = 2000;
  std::vector<std::thread> threads;
  std::vector<std::string> errors(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ShardMatchCache cache;
      std::vector<std::string_view> scratch;
      const std::string own_code = "GHOST-" + std::to_string(t) + "-X";
      for (int i = 0; i < kRounds; ++i) {
        struct Probe {
          std::string_view code;
          std::string_view detail;
          std::string_view canonical;
        };
        const std::string own_detail =
            "event " + std::to_string(i % 7) + " seen";
        const std::string own_canonical = own_code + " * * *";
        const Probe probes[] = {
            {"LINK-3-UPDOWN", "Interface Serial1/0 changed state to down",
             "LINK-3-UPDOWN Interface * changed state to down"},
            {"BGP-5-ADJCHANGE", "neighbor 10.0.0.1 Up",
             "BGP-5-ADJCHANGE neighbor * Up"},
            // Unique per thread: exercises the writer-lock fallback and
            // epoch bumps concurrent with other threads' cache hits.
            {own_code, own_detail, own_canonical},
        };
        for (const Probe& p : probes) {
          const auto id =
              matcher.MatchOrFallback(p.code, p.detail, &cache, &scratch);
          std::string got;
          {
            std::shared_lock lock(matcher.mutex());
            got = set.Get(id).Canonical();
          }
          if (got != p.canonical && errors[t].empty()) {
            errors[t] = got + " != " + std::string(p.canonical);
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  for (const std::string& err : errors) EXPECT_EQ(err, "");
  // Three learned + one catch-all per thread.
  std::shared_lock lock(matcher.mutex());
  EXPECT_EQ(set.size(), 3u + kThreads);
}

}  // namespace
}  // namespace sld::pipeline
