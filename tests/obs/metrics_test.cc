#include "obs/registry.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

namespace sld::obs {
namespace {

TEST(MetricsTest, CounterGaugeBasics) {
  Registry reg;
  Counter* c = reg.AddCounter("events_total", "help text");
  Gauge* g = reg.AddGauge("depth", "queue depth");
  c->Inc();
  c->Inc(41);
  g->Set(7);
  g->Add(-2);
  const MetricsSnapshot snap = reg.Collect();
  EXPECT_EQ(snap.Value("events_total"), 42);
  EXPECT_EQ(snap.Value("depth"), 5);
  EXPECT_EQ(snap.Value("absent_series"), 0);
}

TEST(MetricsTest, HistogramBucketsAndOverflow) {
  Registry reg;
  Histogram* h = reg.AddHistogram("latency", "help", {1.0, 10.0, 100.0});
  h->Observe(0.5);    // bucket 0
  h->Observe(1.0);    // bucket 0 (le is inclusive)
  h->Observe(5.0);    // bucket 1
  h->Observe(1000);   // overflow
  const MetricsSnapshot snap = reg.Collect();
  ASSERT_EQ(snap.series.size(), 1u);
  const SeriesSnapshot& s = snap.series[0];
  EXPECT_EQ(s.kind, MetricKind::kHistogram);
  ASSERT_EQ(s.buckets.size(), 4u);
  EXPECT_EQ(s.buckets[0], 2u);
  EXPECT_EQ(s.buckets[1], 1u);
  EXPECT_EQ(s.buckets[2], 0u);
  EXPECT_EQ(s.buckets[3], 1u);
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.sum, 1006.5);
}

TEST(MetricsTest, HistogramQuantileInterpolatesWithinBucket) {
  Registry reg;
  Histogram* h = reg.AddHistogram("latency", "help", {1.0, 2.0, 4.0});
  // 10 observations uniformly landing in (1, 2]: the quantile walks the
  // cumulative counts and interpolates linearly inside that bucket.
  for (int i = 0; i < 10; ++i) h->Observe(1.5);
  const MetricsSnapshot snap = reg.Collect();
  const SeriesSnapshot& s = snap.series[0];
  EXPECT_DOUBLE_EQ(s.Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.Quantile(0.5), 1.5);
  EXPECT_DOUBLE_EQ(s.Quantile(1.0), 2.0);
  // Ordering holds for any q pair.
  EXPECT_LE(s.Quantile(0.50), s.Quantile(0.99));
}

TEST(MetricsTest, HistogramQuantileAcrossBuckets) {
  Registry reg;
  Histogram* h = reg.AddHistogram("latency", "help", {1.0, 2.0, 4.0});
  // 50 in bucket 0, 30 in bucket 1, 20 in bucket 2.
  for (int i = 0; i < 50; ++i) h->Observe(0.5);
  for (int i = 0; i < 30; ++i) h->Observe(1.5);
  for (int i = 0; i < 20; ++i) h->Observe(3.0);
  const MetricsSnapshot snap = reg.Collect();
  const SeriesSnapshot& s = snap.series[0];
  EXPECT_DOUBLE_EQ(s.Quantile(0.5), 1.0);   // rank 50 lands on bucket 0's edge
  EXPECT_DOUBLE_EQ(s.Quantile(0.8), 2.0);   // rank 80 exhausts bucket 1
  EXPECT_NEAR(s.Quantile(0.9), 3.0, 1e-9);  // halfway through bucket 2
}

TEST(MetricsTest, HistogramQuantileClampsOverflowAndEmpty) {
  Registry reg;
  Histogram* h = reg.AddHistogram("latency", "help", {1.0, 10.0});
  {
    // Empty histogram: no data, quantile is 0.
    const MetricsSnapshot snap = reg.Collect();
    EXPECT_DOUBLE_EQ(snap.series[0].Quantile(0.99), 0.0);
  }
  h->Observe(1000.0);  // +Inf bucket only
  {
    // The overflow bucket has no upper edge; clamp to the last finite
    // bound rather than inventing a number.
    const MetricsSnapshot snap = reg.Collect();
    EXPECT_DOUBLE_EQ(snap.series[0].Quantile(0.5), 10.0);
    EXPECT_DOUBLE_EQ(snap.series[0].Quantile(0.99), 10.0);
  }
}

TEST(MetricsTest, RenderJsonCarriesHistogramPercentiles) {
  Registry reg;
  Histogram* h = reg.AddHistogram("latency", "help", {1.0, 2.0});
  for (int i = 0; i < 4; ++i) h->Observe(0.5);
  const std::string json = reg.Collect().RenderJson();
  EXPECT_NE(json.find("\"p50\":"), std::string::npos);
  EXPECT_NE(json.find("\"p99\":"), std::string::npos);
}

// The core per-shard contract: every shard registers its OWN cell for
// one logical series and hammers it from its own thread; Collect()
// aggregates them into a single series.  Run under TSan in CI.
TEST(MetricsTest, PerShardCellsAggregateAcrossThreads) {
  Registry reg;
  constexpr int kShards = 4;
  constexpr std::uint64_t kPerShard = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kShards; ++t) {
    threads.emplace_back([&reg, t] {
      // Registration from the shard thread itself, as the pipeline does.
      Counter* msgs = reg.AddCounter("shard_messages_total", "msgs");
      Counter* labeled = reg.AddCounter(
          "shard_messages_by_shard_total", "msgs",
          {{"shard", std::to_string(t)}});
      Histogram* lat =
          reg.AddHistogram("shard_seconds", "latency", {0.001, 0.1});
      Gauge* depth = reg.AddGauge("shard_depth", "depth");
      for (std::uint64_t i = 0; i < kPerShard; ++i) {
        msgs->Inc();
        labeled->Inc();
        lat->Observe(i % 2 == 0 ? 0.0005 : 0.01);
        depth->Set(static_cast<std::int64_t>(i % 3));
      }
      depth->Set(1);
    });
  }
  // Snapshots race with the updates on purpose: Collect() must stay
  // well-defined (torn in time is fine, torn values are not).
  for (int i = 0; i < 50; ++i) {
    const MetricsSnapshot racing = reg.Collect();
    EXPECT_LE(racing.Value("shard_messages_total"),
              static_cast<std::int64_t>(kShards * kPerShard));
  }
  for (auto& th : threads) th.join();

  const MetricsSnapshot snap = reg.Collect();
  EXPECT_EQ(snap.Value("shard_messages_total"),
            static_cast<std::int64_t>(kShards * kPerShard));
  // Labeled cells stay distinct series.
  int labeled_series = 0;
  for (const SeriesSnapshot& s : snap.series) {
    if (s.name == "shard_messages_by_shard_total") {
      ++labeled_series;
      EXPECT_EQ(s.ivalue, static_cast<std::int64_t>(kPerShard));
    }
  }
  EXPECT_EQ(labeled_series, kShards);
  // Unlabeled gauges sum across shards.
  EXPECT_EQ(snap.Value("shard_depth"), kShards);
  // Histogram cells merge bucket-wise.
  for (const SeriesSnapshot& s : snap.series) {
    if (s.name != "shard_seconds") continue;
    ASSERT_EQ(s.buckets.size(), 3u);
    EXPECT_EQ(s.count, kShards * kPerShard);
    EXPECT_EQ(s.buckets[0], kShards * kPerShard / 2);
    EXPECT_EQ(s.buckets[1], kShards * kPerShard / 2);
    EXPECT_EQ(s.buckets[2], 0u);
  }
}

TEST(MetricsTest, RenderJsonAndPrometheus) {
  Registry reg;
  reg.AddCounter("a_total", "a help", {{"shard", "0"}})->Inc(3);
  reg.AddCounter("a_total", "a help", {{"shard", "1"}})->Inc(4);
  reg.AddGauge("b_depth", "b help")->Set(-2);
  Histogram* h = reg.AddHistogram("c_seconds", "c help", {0.5});
  h->Observe(0.25);
  h->Observe(2.0);
  const MetricsSnapshot snap = reg.Collect();

  const std::string json = snap.RenderJson();
  EXPECT_NE(json.find("\"name\":\"a_total\""), std::string::npos);
  EXPECT_NE(json.find("\"shard\":\"1\""), std::string::npos);
  EXPECT_NE(json.find("\"value\":-2"), std::string::npos);
  EXPECT_NE(json.find("\"le\":\"+Inf\""), std::string::npos);

  const std::string prom = snap.RenderPrometheus();
  EXPECT_NE(prom.find("# TYPE a_total counter"), std::string::npos);
  EXPECT_NE(prom.find("a_total{shard=\"0\"} 3"), std::string::npos);
  EXPECT_NE(prom.find("a_total{shard=\"1\"} 4"), std::string::npos);
  EXPECT_NE(prom.find("b_depth -2"), std::string::npos);
  // Prometheus buckets are cumulative; +Inf equals _count.
  EXPECT_NE(prom.find("c_seconds_bucket{le=\"0.5\"} 1"), std::string::npos);
  EXPECT_NE(prom.find("c_seconds_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(prom.find("c_seconds_count 2"), std::string::npos);
  // HELP/TYPE emitted once per family even with two cells.
  EXPECT_EQ(prom.find("# TYPE a_total counter"),
            prom.rfind("# TYPE a_total counter"));
}

// Label values are not under our control (tenant names arrive from the
// command line), so the Prometheus renderer must escape backslash,
// double quote, and newline inside quoted values — a raw `"` would end
// the value early and a raw newline would split the sample line.  The
// seed renderer emitted values verbatim; this pins the fix.
TEST(MetricsTest, PrometheusEscapesLabelValues) {
  Registry reg;
  reg.AddCounter("weird_total", "counts \\ weird\nthings",
                 {{"path", "C:\\logs\n\"live\""}})
      ->Inc();
  const std::string prom = reg.Collect().RenderPrometheus();
  EXPECT_NE(prom.find("weird_total{path=\"C:\\\\logs\\n\\\"live\\\"\"} 1"),
            std::string::npos)
      << prom;
  // HELP text escapes backslash and newline too (quotes are fine there).
  EXPECT_NE(prom.find("# HELP weird_total counts \\\\ weird\\nthings"),
            std::string::npos)
      << prom;
  // No raw newline survives mid-value: every line starts with '#' or the
  // series name.
  std::size_t start = 0;
  while (start < prom.size()) {
    std::size_t end = prom.find('\n', start);
    if (end == std::string::npos) end = prom.size();
    const std::string line = prom.substr(start, end - start);
    EXPECT_TRUE(line.empty() || line[0] == '#' ||
                line.compare(0, 5, "weird") == 0)
        << line;
    start = end + 1;
  }
}

TEST(MetricsTest, ScopedViewLabelsEverySeries) {
  Registry root;
  const auto alpha = root.ScopedView({{"tenant", "alpha"}});
  const auto beta = root.ScopedView({{"tenant", "beta"}});
  alpha->AddCounter("events_total", "events")->Inc(3);
  beta->AddCounter("events_total", "events")->Inc(4);
  alpha->AddGauge("depth", "depth")->Set(7);
  beta->AddHistogram("lat_seconds", "latency", {1.0})->Observe(0.5);

  const MetricsSnapshot snap = root.Collect();
  ASSERT_EQ(snap.series.size(), 4u);
  for (const SeriesSnapshot& s : snap.series) {
    ASSERT_FALSE(s.labels.empty()) << s.name;
    EXPECT_EQ(s.labels[0].first, "tenant") << s.name;
  }
  // Same metric name under different tenants stays distinct series...
  int events_series = 0;
  std::int64_t events_sum = 0;
  for (const SeriesSnapshot& s : snap.series) {
    if (s.name != "events_total") continue;
    ++events_series;
    events_sum += s.ivalue;
  }
  EXPECT_EQ(events_series, 2);
  // ...and Value() still sums across tenants.
  EXPECT_EQ(events_sum, 7);
  EXPECT_EQ(snap.Value("events_total"), 7);
  // Collect() through a view sees the whole root.
  EXPECT_EQ(alpha->Collect().series.size(), snap.series.size());
}

// Cells registered through a view aggregate with each other exactly like
// root cells: two "shard" cells of one tenant sum into one series, and
// the scope label renders before the cell's own labels.
TEST(MetricsTest, ScopedViewAggregatesAndOrdersLabels) {
  Registry root;
  const auto view = root.ScopedView({{"tenant", "alpha"}});
  view->AddCounter("msgs_total", "m", {{"shard", "0"}})->Inc(5);
  view->AddCounter("msgs_total", "m", {{"shard", "0"}})->Inc(6);
  const MetricsSnapshot snap = root.Collect();
  ASSERT_EQ(snap.series.size(), 1u);
  EXPECT_EQ(snap.series[0].ivalue, 11);
  ASSERT_EQ(snap.series[0].labels.size(), 2u);
  EXPECT_EQ(snap.series[0].labels[0].first, "tenant");
  EXPECT_EQ(snap.series[0].labels[1].first, "shard");
  const std::string prom = snap.RenderPrometheus();
  EXPECT_NE(prom.find("msgs_total{tenant=\"alpha\",shard=\"0\"} 11"),
            std::string::npos)
      << prom;
}

// Views of views accumulate labels outermost-first.
TEST(MetricsTest, ScopedViewsCompose) {
  Registry root;
  const auto region = root.ScopedView({{"region", "east"}});
  const auto tenant = region->ScopedView({{"tenant", "alpha"}});
  tenant->AddCounter("events_total", "events")->Inc();
  const MetricsSnapshot snap = root.Collect();
  ASSERT_EQ(snap.series.size(), 1u);
  ASSERT_EQ(snap.series[0].labels.size(), 2u);
  EXPECT_EQ(snap.series[0].labels[0],
            (std::pair<std::string, std::string>{"region", "east"}));
  EXPECT_EQ(snap.series[0].labels[1],
            (std::pair<std::string, std::string>{"tenant", "alpha"}));
}

}  // namespace
}  // namespace sld::obs
