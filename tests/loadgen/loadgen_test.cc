// Load-generator determinism: fault decisions are a pure function of
// (seed, batch, index), so aggregate counts are invariant to how many
// streams share the cursor; the ledger closes exactly; staged payloads
// are decodable RFC 3164 with a monotone virtual clock.
#include "loadgen/loadgen.h"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <sys/uio.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "sim/workload.h"
#include "syslog/udp.h"
#include "syslog/wire.h"

namespace sld::loadgen {
namespace {

struct RenderTotals {
  StreamStats stats;
  std::uint64_t staged = 0;  // wire slots across all rounds
  std::size_t rounds = 0;
  std::multiset<std::string> payloads;
};

// Drives `streams` round-robin against one shared cursor until the run
// is exhausted — the single-process stand-in for N sender threads.
RenderTotals RenderAll(const StreamOptions& options, int streams,
                       std::uint64_t total, bool keep_payloads = false) {
  std::atomic<std::uint64_t> cursor{0};
  std::vector<Stream> pool;
  pool.reserve(static_cast<std::size_t>(streams));
  for (int i = 0; i < streams; ++i) pool.emplace_back(options, &cursor, total);

  RenderTotals out;
  bool progress = true;
  while (progress) {
    progress = false;
    for (Stream& s : pool) {
      if (s.RenderRound() == 0) continue;
      progress = true;
      ++out.rounds;
      out.staged += s.wire_slots().size();
      if (keep_payloads) {
        for (const WireSlot& slot : s.wire_slots()) {
          out.payloads.insert(std::string(s.SlotPayload(slot)));
        }
      }
    }
  }
  for (Stream& s : pool) out.stats += s.stats();
  return out;
}

StreamOptions FaultyOptions() {
  StreamOptions options;
  options.seed = 42;
  options.faults.duplicate = 0.02;
  options.faults.drop = 0.01;
  options.faults.reorder = 0.05;
  return options;
}

TEST(LoadgenTest, FaultCountsExactAndStreamCountInvariant) {
  constexpr std::uint64_t kTotal = 100000;
  const RenderTotals one = RenderAll(FaultyOptions(), 1, kTotal);

  // Pinned values: a pure function of (seed=42, batch=64, total=100000)
  // and the knob set — any drift means the word layout or the threshold
  // mapping changed.
  EXPECT_EQ(one.stats.generated, kTotal);
  EXPECT_EQ(one.stats.duplicates, 2029u);
  EXPECT_EQ(one.stats.injected_drops, 1025u);
  EXPECT_EQ(one.stats.reorders, 4797u);

  // Ledger: everything generated is either staged for the wire or
  // withheld as an injected drop.
  EXPECT_EQ(one.stats.sent(), one.stats.generated + one.stats.duplicates);
  EXPECT_EQ(one.stats.sent(), one.staged + one.stats.injected_drops);

  // The same counts at any stream (thread) count.
  for (const int streams : {3, 8}) {
    const RenderTotals many = RenderAll(FaultyOptions(), streams, kTotal);
    EXPECT_EQ(many.stats.generated, one.stats.generated) << streams;
    EXPECT_EQ(many.stats.duplicates, one.stats.duplicates) << streams;
    EXPECT_EQ(many.stats.injected_drops, one.stats.injected_drops)
        << streams;
    EXPECT_EQ(many.stats.reorders, one.stats.reorders) << streams;
    EXPECT_EQ(many.staged, one.staged) << streams;
  }
}

TEST(LoadgenTest, PayloadsDecodeWithMonotoneVirtualClock) {
  StreamOptions options;
  options.seed = 7;
  options.epoch = sim::DatasetEpoch();
  options.msgs_per_vsec = 100;
  std::atomic<std::uint64_t> cursor{0};
  Stream stream(options, &cursor, 2048);

  TimeMs last = options.epoch;
  std::size_t decoded = 0;
  while (stream.RenderRound() > 0) {
    for (const WireSlot& slot : stream.wire_slots()) {
      const auto rec = syslog::DecodeRfc3164(stream.SlotPayload(slot), 2009);
      ASSERT_TRUE(rec.has_value()) << stream.SlotPayload(slot);
      EXPECT_EQ(rec->router.substr(0, 6), "lg-rtr");
      EXPECT_FALSE(rec->code.empty());
      // No faults: slots are in index order, so time never goes back.
      EXPECT_GE(rec->time, last);
      last = rec->time;
      ++decoded;
    }
  }
  EXPECT_EQ(decoded, 2048u);
  // Index 2047 at 100 msgs/vsec is 20.47 virtual seconds in; RFC 3164
  // timestamps carry whole seconds, so the decode truncates to 20.
  EXPECT_EQ(last, options.epoch + (2047 / 100) * 1000);
}

TEST(LoadgenTest, DuplicateStagesTwoIdenticalCopies) {
  StreamOptions options;
  options.seed = 3;
  options.faults.duplicate = 1.0;
  std::atomic<std::uint64_t> cursor{0};
  Stream stream(options, &cursor, 512);
  while (stream.RenderRound() > 0) {
    const auto& slots = stream.wire_slots();
    ASSERT_EQ(slots.size() % 2, 0u);
    for (std::size_t i = 0; i < slots.size(); i += 2) {
      EXPECT_EQ(stream.SlotPayload(slots[i]), stream.SlotPayload(slots[i + 1]));
    }
  }
  EXPECT_EQ(stream.stats().duplicates, stream.stats().generated);
  EXPECT_EQ(stream.stats().sent(), 2 * stream.stats().generated);
}

TEST(LoadgenTest, DropWithholdsEveryCopy) {
  StreamOptions options;
  options.seed = 3;
  options.faults.duplicate = 1.0;
  options.faults.drop = 1.0;
  const RenderTotals all = RenderAll(options, 1, 512);
  EXPECT_EQ(all.staged, 0u);
  // The duplicate copy is withheld together with the original, so the
  // ledger still closes: sent = 2 * generated = injected_drops.
  EXPECT_EQ(all.stats.injected_drops, 2 * all.stats.generated);
  EXPECT_EQ(all.stats.sent(), all.stats.injected_drops);
}

TEST(LoadgenTest, ReorderPermutesButPreservesPayloads) {
  StreamOptions options;
  options.seed = 11;
  const RenderTotals plain = RenderAll(options, 1, 1024, true);
  options.faults.reorder = 1.0;
  const RenderTotals swapped = RenderAll(options, 1, 1024, true);

  // Every message after a round's first swaps with its predecessor.
  EXPECT_EQ(swapped.stats.reorders,
            swapped.stats.generated - swapped.rounds);
  EXPECT_GT(swapped.stats.reorders, 0u);
  // Reordering permutes the staged sequence; the payload multiset is
  // untouched.
  EXPECT_EQ(swapped.payloads, plain.payloads);
  EXPECT_EQ(swapped.staged, plain.staged);
}

TEST(LoadgenTest, FillUniform64IsDeterministicPerSeed) {
  Rng a(99);
  Rng b(99);
  std::vector<std::uint64_t> wa(256);
  std::vector<std::uint64_t> wb(256);
  a.FillUniform64(wa);
  b.FillUniform64(wb);
  EXPECT_EQ(wa, wb);

  // A second fill from the same stream yields fresh words, and a
  // different seed yields a different pool.
  std::vector<std::uint64_t> wc(256);
  a.FillUniform64(wc);
  EXPECT_NE(wa, wc);
  Rng c(100);
  std::vector<std::uint64_t> wd(256);
  c.FillUniform64(wd);
  EXPECT_NE(wa, wd);

  // The counter expansion must not repeat within a pool.
  std::vector<std::uint64_t> sorted = wa;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::unique(sorted.begin(), sorted.end()), sorted.end());
}

TEST(LoadgenTest, RunLedgerClosesOverLoopback) {
  auto receiver = syslog::UdpReceiver::Bind(0);
  ASSERT_TRUE(receiver.has_value());

  RunOptions options;
  options.port = receiver->port();
  options.total = 5000;
  options.threads = 2;
  options.stream = FaultyOptions();
  const RunResult result = sld::loadgen::Run(options);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.stats.generated, options.total);
  EXPECT_EQ(result.stats.sent(),
            result.stats.generated + result.stats.duplicates);
  EXPECT_EQ(result.stats.sent(),
            result.stats.wire + result.stats.injected_drops);
  EXPECT_GT(result.elapsed_seconds, 0.0);
}

TEST(LoadgenTest, RunRejectsUnparseableHost) {
  RunOptions options;
  options.host = "not-an-ip";
  options.port = 1;
  options.total = 1;
  const RunResult result = sld::loadgen::Run(options);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("unparseable host"), std::string::npos);
}

}  // namespace
}  // namespace sld::loadgen
