#include "core/augment.h"

#include <gtest/gtest.h>

#include "net/config_parser.h"

namespace sld::core {
namespace {

class AugmentTest : public ::testing::Test {
 protected:
  AugmentTest() {
    dict_ = LocationDict::Build({net::ParseConfig(
        "hostname r1\n"
        "interface Loopback0\n"
        " ip address 192.168.0.1 255.255.255.255\n"
        "interface Serial0/0\n"
        " no ip address\n"
        "interface Serial0/0.10:0\n"
        " ip address 10.0.0.1 255.255.255.252\n")});
    templates_.Add("LINK-3-UPDOWN",
                   {"Interface", "*", "changed", "state", "to", "down"});
  }

  LocationDict dict_;
  TemplateSet templates_;
};

TEST_F(AugmentTest, KnownRouterGetsLocationsAndTemplate) {
  Augmenter aug(&templates_, &dict_);
  syslog::SyslogRecord rec{1000, "r1", "LINK-3-UPDOWN",
                           "Interface Serial0/0, changed state to down"};
  const Augmented a = aug.Augment(rec, 5);
  EXPECT_EQ(a.time, 1000);
  EXPECT_EQ(a.raw_index, 5u);
  EXPECT_TRUE(a.router_known);
  EXPECT_EQ(a.router_key, 0u);
  EXPECT_EQ(a.tmpl, 0u);
  ASSERT_EQ(a.locs.size(), 2u);
  EXPECT_EQ(dict_.Get(a.locs[0]).level, LocLevel::kRouter);
  EXPECT_EQ(dict_.Get(a.locs[1]).name, "Serial0/0");
  EXPECT_EQ(a.primary, a.locs[1]);
  EXPECT_TRUE(a.HasDetailLocation());
}

TEST_F(AugmentTest, PrimaryIsMostSpecificLocation) {
  Augmenter aug(&templates_, &dict_);
  syslog::SyslogRecord rec{1000, "r1", "X-1-Y",
                           "port Serial0/0 interface Serial0/0.10:0"};
  const Augmented a = aug.Augment(rec, 0);
  ASSERT_EQ(a.locs.size(), 3u);
  EXPECT_EQ(dict_.Get(a.primary).name, "Serial0/0.10:0");
  EXPECT_EQ(dict_.Get(a.primary).level, LocLevel::kLogicalIf);
}

TEST_F(AugmentTest, UnknownRouterGetsStableSyntheticKey) {
  Augmenter aug(&templates_, &dict_);
  syslog::SyslogRecord rec{0, "ghost", "X-1-Y", "detail"};
  const Augmented a = aug.Augment(rec, 0);
  const Augmented b = aug.Augment(rec, 1);
  EXPECT_FALSE(a.router_known);
  EXPECT_TRUE(a.locs.empty());
  EXPECT_EQ(a.primary, kNoId);
  EXPECT_EQ(a.router_key, b.router_key);
  EXPECT_GE(a.router_key, dict_.router_count());
  syslog::SyslogRecord other{0, "ghost2", "X-1-Y", "detail"};
  EXPECT_NE(aug.Augment(other, 2).router_key, a.router_key);
}

TEST_F(AugmentTest, UnmatchedMessageGetsFallbackTemplate) {
  Augmenter aug(&templates_, &dict_);
  syslog::SyslogRecord rec{0, "r1", "NEW-0-THING", "a b c"};
  const Augmented a = aug.Augment(rec, 0);
  EXPECT_EQ(templates_.Get(a.tmpl).Canonical(), "NEW-0-THING * * *");
}

// Regression: a record whose router key claims router_known but whose
// name the extractor cannot place (e.g. the router was renamed between
// the config snapshot that minted the key and the one behind the
// extractor) yields zero locations.  The primary-location pick used to
// read locs.front() unconditionally — UB on the empty vector.
TEST_F(AugmentTest, KnownKeyWithNoExtractableLocationsIsSafe) {
  LocationExtractor extractor(&dict_);
  syslog::SyslogRecord rec{0, "renamed-router", "SYS-5-RESTART",
                           "System restarted"};
  const Augmented a =
      AugmentWithRouting(rec, 0, /*router_key=*/0, /*router_known=*/true,
                         extractor, dict_);
  EXPECT_TRUE(a.router_known);
  EXPECT_TRUE(a.locs.empty());
  EXPECT_EQ(a.primary, kNoId);
  EXPECT_FALSE(a.HasDetailLocation());
}

TEST_F(AugmentTest, AugmentAllPreservesOrderAndIndices) {
  Augmenter aug(&templates_, &dict_);
  std::vector<syslog::SyslogRecord> recs;
  for (int i = 0; i < 5; ++i) {
    recs.push_back({i * 1000, "r1", "LINK-3-UPDOWN",
                    "Interface Serial0/0, changed state to down"});
  }
  const auto all = aug.AugmentAll(recs);
  ASSERT_EQ(all.size(), 5u);
  for (std::size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i].raw_index, i);
    EXPECT_EQ(all[i].time, static_cast<TimeMs>(i) * 1000);
  }
}

}  // namespace
}  // namespace sld::core
