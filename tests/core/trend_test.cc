#include "core/trend.h"

#include <gtest/gtest.h>

namespace sld::core {
namespace {

Augmented At(int day, TemplateId tmpl) {
  Augmented a;
  a.time = static_cast<TimeMs>(day) * kMsPerDay + kMsPerHour;
  a.tmpl = tmpl;
  a.router_key = 0;
  return a;
}

TEST(TrendTest, TemplateDailyCountsBucketsByDay) {
  TemplateSet templates;
  const auto t = templates.Add("A-1-B", {"x", "*"});
  std::vector<Augmented> stream;
  for (int day = 0; day < 5; ++day) {
    for (int n = 0; n <= day; ++n) stream.push_back(At(day, t));
  }
  const auto series = TemplateDailyCounts(stream, templates, 0, 5);
  ASSERT_EQ(series.size(), 1u);
  EXPECT_EQ(series[0].name, "A-1-B x *");
  ASSERT_EQ(series[0].counts.size(), 5u);
  for (int day = 0; day < 5; ++day) {
    EXPECT_DOUBLE_EQ(series[0].counts[day], day + 1.0);
  }
}

TEST(TrendTest, MessagesOutsideRangeIgnored) {
  TemplateSet templates;
  const auto t = templates.Add("A-1-B", {"x"});
  std::vector<Augmented> stream = {At(-1, t), At(0, t), At(7, t)};
  stream[0].time = -kMsPerHour;
  const auto series = TemplateDailyCounts(stream, templates, 0, 5);
  ASSERT_EQ(series.size(), 1u);
  EXPECT_DOUBLE_EQ(series[0].counts[0], 1.0);
}

DailySeries Steps(std::vector<double> counts) {
  DailySeries s;
  s.name = "test";
  s.counts = std::move(counts);
  return s;
}

TEST(LevelShiftTest, DetectsActivation) {
  // Quiet for 14 days, then ~10/day: a clear upward shift at day 14.
  std::vector<double> counts(28, 0.0);
  for (int day = 14; day < 28; ++day) counts[day] = 10;
  LevelShiftParams params;
  params.window_days = 7;
  const auto shifts = DetectLevelShifts(
      std::vector<DailySeries>{Steps(counts)}, params);
  ASSERT_EQ(shifts.size(), 1u);
  EXPECT_EQ(shifts[0].day, 14);
  EXPECT_DOUBLE_EQ(shifts[0].before, 0.0);
  EXPECT_DOUBLE_EQ(shifts[0].after, 10.0);
}

TEST(LevelShiftTest, DetectsDrop) {
  std::vector<double> counts(28, 20.0);
  for (int day = 21; day < 28; ++day) counts[day] = 2;
  const auto shifts =
      DetectLevelShifts(std::vector<DailySeries>{Steps(counts)});
  ASSERT_EQ(shifts.size(), 1u);
  EXPECT_EQ(shifts[0].day, 21);
  EXPECT_GT(shifts[0].before, shifts[0].after);
}

TEST(LevelShiftTest, StableSeriesReportNothing) {
  std::vector<double> counts(28, 15.0);
  counts[10] = 18;  // one noisy day is not a level shift
  EXPECT_TRUE(
      DetectLevelShifts(std::vector<DailySeries>{Steps(counts)}).empty());
}

TEST(LevelShiftTest, QuietSeriesIgnored) {
  // Means below min_mean never fire (0 vs 0.3/day noise).
  std::vector<double> counts(28, 0.0);
  counts[20] = 1;
  counts[24] = 1;
  EXPECT_TRUE(
      DetectLevelShifts(std::vector<DailySeries>{Steps(counts)}).empty());
}

TEST(LevelShiftTest, StrongestShiftFirst) {
  std::vector<double> weak(28, 10.0);
  for (int day = 14; day < 28; ++day) weak[day] = 25;
  std::vector<double> strong(28, 1.0);
  for (int day = 14; day < 28; ++day) strong[day] = 50;
  DailySeries a = Steps(weak);
  a.name = "weak";
  DailySeries b = Steps(strong);
  b.name = "strong";
  const auto shifts =
      DetectLevelShifts(std::vector<DailySeries>{a, b});
  ASSERT_EQ(shifts.size(), 2u);
  EXPECT_EQ(shifts[0].series, "strong");
  EXPECT_EQ(shifts[1].series, "weak");
}

TEST(LevelShiftTest, ShortSeriesAreSafe) {
  std::vector<double> counts(5, 100.0);  // shorter than 2 windows
  EXPECT_TRUE(
      DetectLevelShifts(std::vector<DailySeries>{Steps(counts)}).empty());
}

}  // namespace
}  // namespace sld::core
