#include "core/location/location.h"

#include <gtest/gtest.h>

#include "net/config_writer.h"
#include "net/topology.h"

namespace sld::core {
namespace {

net::Topology MakeTopo(net::Vendor vendor) {
  net::TopologyParams p;
  p.vendor = vendor;
  p.num_routers = 6;
  p.slots_per_router = 3;
  p.ports_per_slot = 3;
  p.subifs_per_phys = 2;
  p.seed = 3;
  return net::GenerateTopology(p);
}

LocationDict MakeDict(const net::Topology& topo) {
  std::vector<net::ParsedConfig> parsed;
  for (const std::string& cfg : net::WriteAllConfigs(topo)) {
    parsed.push_back(net::ParseConfig(cfg));
  }
  return LocationDict::Build(parsed);
}

class LocationDictTest : public ::testing::TestWithParam<net::Vendor> {
 protected:
  LocationDictTest() : topo_(MakeTopo(GetParam())), dict_(MakeDict(topo_)) {}
  net::Topology topo_;
  LocationDict dict_;
};

TEST_P(LocationDictTest, AllRoutersRegistered) {
  EXPECT_EQ(dict_.router_count(), topo_.routers.size());
  for (const net::Router& r : topo_.routers) {
    const auto rid = dict_.RouterByName(r.name);
    ASSERT_TRUE(rid.has_value()) << r.name;
    const Location& loc = dict_.Get(dict_.RouterLocation(*rid));
    EXPECT_EQ(loc.level, LocLevel::kRouter);
    EXPECT_EQ(loc.name, r.name);
  }
  EXPECT_FALSE(dict_.RouterByName("missing").has_value());
}

TEST_P(LocationDictTest, InterfaceNamesResolveWithSlotHierarchy) {
  for (const net::Router& r : topo_.routers) {
    const auto rid = dict_.RouterByName(r.name);
    ASSERT_TRUE(rid.has_value());
    for (const net::PhysIfId pid : r.phys_ifs) {
      const net::PhysIf& phys = topo_.phys_ifs[pid];
      for (const net::LogicalIfId lid : phys.logical_ifs) {
        const net::LogicalIf& logical = topo_.logical_ifs[lid];
        const auto loc = dict_.NameOnRouter(*rid, logical.name);
        ASSERT_TRUE(loc.has_value()) << logical.name;
        // The logical interface must land in the physical slot.
        EXPECT_EQ(dict_.Get(*loc).slot, phys.slot + (GetParam() ==
                                                     net::Vendor::kV2));
      }
    }
  }
}

TEST_P(LocationDictTest, AddressesResolveToOwningInterface) {
  for (const net::LogicalIf& logical : topo_.logical_ifs) {
    const auto loc = dict_.ByIp(logical.ip);
    ASSERT_TRUE(loc.has_value()) << logical.ip;
    EXPECT_EQ(dict_.Get(*loc).name, logical.name);
  }
  EXPECT_FALSE(dict_.ByIp("203.0.113.7").has_value());  // scanner address
}

TEST_P(LocationDictTest, LoopbacksResolveToRouterLevel) {
  for (const net::Router& r : topo_.routers) {
    const auto loc = dict_.ByIp(r.loopback_ip);
    ASSERT_TRUE(loc.has_value());
    EXPECT_EQ(dict_.Get(*loc).level, LocLevel::kRouter);
    EXPECT_EQ(dict_.Get(*loc).name, r.name);
  }
}

TEST_P(LocationDictTest, LinksLearnedFromDescriptions) {
  EXPECT_EQ(dict_.links().size(), topo_.links.size());
  for (const net::Link& link : topo_.links) {
    const auto rid = dict_.RouterByName(topo_.routers[link.router_a].name);
    const auto loc =
        dict_.NameOnRouter(*rid, topo_.phys_ifs[link.phys_a].name);
    ASSERT_TRUE(loc.has_value());
    std::uint32_t link_idx = dict_.Get(*loc).link;
    if (GetParam() == net::Vendor::kV2) {
      // V2 untagged interfaces share the port name; the logical entry wins
      // the name map but inherits the port's link.
      ASSERT_NE(link_idx, kNoId);
    }
    ASSERT_NE(link_idx, kNoId);
    const DictLink& dl = dict_.links()[link_idx];
    const std::set<std::string> got = {
        dict_.RouterName(dl.router_a), dict_.RouterName(dl.router_b)};
    const std::set<std::string> want = {topo_.routers[link.router_a].name,
                                        topo_.routers[link.router_b].name};
    EXPECT_EQ(got, want);
  }
}

TEST_P(LocationDictTest, SessionsLearnedFromNeighbors) {
  for (const net::Router& r : topo_.routers) {
    const auto rid = dict_.RouterByName(r.name);
    for (const net::SessionId sid : r.sessions) {
      const net::BgpSession& s = topo_.sessions[sid];
      const std::string& neighbor =
          s.router_a == r.id ? s.neighbor_ip_of_a : s.neighbor_ip_of_b;
      const auto loc = dict_.SessionOnRouter(*rid, neighbor);
      ASSERT_TRUE(loc.has_value()) << neighbor;
      EXPECT_EQ(dict_.Get(*loc).level, LocLevel::kSession);
    }
  }
}

TEST_P(LocationDictTest, PathsResolveGlobally) {
  EXPECT_EQ(dict_.paths().size(), topo_.paths.size());
  for (const net::Path& path : topo_.paths) {
    const auto loc = dict_.PathByName(path.name);
    ASSERT_TRUE(loc.has_value()) << path.name;
    EXPECT_EQ(dict_.Get(*loc).level, LocLevel::kPath);
    const DictPath& dp = dict_.paths()[dict_.Get(*loc).path];
    ASSERT_EQ(dp.hops.size(), path.hops.size());
  }
}

INSTANTIATE_TEST_SUITE_P(BothVendors, LocationDictTest,
                         ::testing::Values(net::Vendor::kV1,
                                           net::Vendor::kV2));

// ---- spatial relations on a hand-written pair of configs ---------------

class SpatialTest : public ::testing::Test {
 protected:
  SpatialTest() {
    const char* r1 =
        "hostname r1\n"
        "interface Loopback0\n"
        " ip address 192.168.0.1 255.255.255.255\n"
        "controller T1 2/0\n"
        "interface Serial2/0\n"
        " description to r2 Serial1/0\n"
        " no ip address\n"
        "interface Serial2/0.10:0\n"
        " ip address 10.0.0.1 255.255.255.252\n"
        "interface Serial2/1\n"
        " ppp multilink group 1\n"
        " no ip address\n"
        "interface Serial2/2\n"
        " ppp multilink group 1\n"
        " no ip address\n"
        "interface GigabitEthernet3/0/0\n"
        " no ip address\n"
        "interface GigabitEthernet3/0/0.10\n"
        " ip address 10.0.1.1 255.255.255.252\n"
        "interface Multilink1\n"
        " ppp multilink group 1\n"
        "router bgp 7018\n"
        " neighbor 192.168.0.2 remote-as 7018\n"
        "mpls traffic-eng tunnel path-a\n"
        " hop r1\n"
        " hop r2\n";
    const char* r2 =
        "hostname r2\n"
        "interface Loopback0\n"
        " ip address 192.168.0.2 255.255.255.255\n"
        "interface Serial1/0\n"
        " description to r1 Serial2/0\n"
        " no ip address\n"
        "interface Serial1/0.20:0\n"
        " ip address 10.0.0.2 255.255.255.252\n"
        "router bgp 7018\n"
        " neighbor 192.168.0.1 remote-as 7018\n";
    dict_ = LocationDict::Build(
        {net::ParseConfig(r1), net::ParseConfig(r2)});
    r1_ = *dict_.RouterByName("r1");
    r2_ = *dict_.RouterByName("r2");
  }

  LocationId Loc(DictRouterId r, std::string_view name) {
    const auto loc = dict_.NameOnRouter(r, name);
    EXPECT_TRUE(loc.has_value()) << name;
    return *loc;
  }

  LocationDict dict_{LocationDict::Build({})};
  DictRouterId r1_ = 0;
  DictRouterId r2_ = 0;
};

TEST_F(SpatialTest, RouterLevelMatchesEverythingOnRouter) {
  const LocationId router = dict_.RouterLocation(r1_);
  EXPECT_TRUE(dict_.SpatiallyMatched(router, Loc(r1_, "Serial2/0")));
  EXPECT_TRUE(dict_.SpatiallyMatched(router, Loc(r1_, "Serial2/0.10:0")));
  EXPECT_TRUE(
      dict_.SpatiallyMatched(Loc(r1_, "Serial2/0"), router));
}

TEST_F(SpatialTest, SameSlotMatches) {
  // The paper's example: a message on slot 2 and one on interface 2/0/...
  // are spatially matched.
  EXPECT_TRUE(dict_.SpatiallyMatched(Loc(r1_, "Serial2/0"),
                                     Loc(r1_, "Serial2/0.10:0")));
  EXPECT_TRUE(dict_.SpatiallyMatched(Loc(r1_, "Serial2/0"),
                                     Loc(r1_, "Serial2/1")));
  EXPECT_TRUE(dict_.SpatiallyMatched(Loc(r1_, "T1 2/0"),
                                     Loc(r1_, "Serial2/0.10:0")));
}

TEST_F(SpatialTest, DifferentSlotDoesNotMatch) {
  EXPECT_FALSE(dict_.SpatiallyMatched(Loc(r1_, "Serial2/0"),
                                      Loc(r1_, "GigabitEthernet3/0/0")));
  EXPECT_FALSE(dict_.SpatiallyMatched(Loc(r1_, "Serial2/0.10:0"),
                                      Loc(r1_, "GigabitEthernet3/0/0.10")));
}

TEST_F(SpatialTest, DifferentRoutersNeverSpatiallyMatch) {
  EXPECT_FALSE(dict_.SpatiallyMatched(Loc(r1_, "Serial2/0"),
                                      Loc(r2_, "Serial1/0")));
  EXPECT_FALSE(dict_.SpatiallyMatched(dict_.RouterLocation(r1_),
                                      dict_.RouterLocation(r2_)));
}

TEST_F(SpatialTest, BundleMatchesItsMembersSlots) {
  const LocationId bundle = Loc(r1_, "Multilink1");
  EXPECT_EQ(dict_.Get(bundle).level, LocLevel::kBundle);
  EXPECT_TRUE(dict_.SpatiallyMatched(bundle, Loc(r1_, "Serial2/1")));
  EXPECT_TRUE(dict_.SpatiallyMatched(bundle, Loc(r1_, "Serial2/0")));
  EXPECT_FALSE(
      dict_.SpatiallyMatched(bundle, Loc(r1_, "GigabitEthernet3/0/0")));
}

TEST_F(SpatialTest, LinkEndsAreConnected) {
  ASSERT_EQ(dict_.links().size(), 1u);
  EXPECT_TRUE(
      dict_.Connected(Loc(r1_, "Serial2/0"), Loc(r2_, "Serial1/0")));
  // Logical interfaces inherit the port's link.
  EXPECT_TRUE(dict_.Connected(Loc(r1_, "Serial2/0.10:0"),
                              Loc(r2_, "Serial1/0.20:0")));
  EXPECT_FALSE(dict_.Connected(Loc(r1_, "GigabitEthernet3/0/0"),
                               Loc(r2_, "Serial1/0")));
}

TEST_F(SpatialTest, PathMatchesItsHopRouters) {
  const auto path = dict_.PathByName("path-a");
  ASSERT_TRUE(path.has_value());
  EXPECT_TRUE(dict_.SpatiallyMatched(*path, dict_.RouterLocation(r2_)));
  EXPECT_TRUE(dict_.Connected(*path, Loc(r2_, "Serial1/0")));
  EXPECT_TRUE(dict_.SpatiallyMatched(*path, *path));
}

TEST_F(SpatialTest, PeerLoopbackReferenceConnects) {
  // r1's BGP message names r2's loopback: the resolved location is on r2,
  // so it connects with r2's own locations.
  const auto peer_loc = dict_.ByIp("192.168.0.2");
  ASSERT_TRUE(peer_loc.has_value());
  EXPECT_TRUE(dict_.Connected(*peer_loc, dict_.RouterLocation(r2_)));
  EXPECT_FALSE(dict_.Connected(*peer_loc, dict_.RouterLocation(r1_)));
}

// A dictionary built from configs of BOTH vendor dialects at once: the
// paper's vendor-independence claim at the location layer.
TEST(MixedVendorTest, BothDialectsCoexist) {
  const char* v1 =
      "hostname mixed-a\n"
      "interface Loopback0\n"
      " ip address 192.168.50.1 255.255.255.255\n"
      "interface Serial1/0\n"
      " description to mixed-b 1/1/1\n"
      " no ip address\n"
      "interface Serial1/0.10:0\n"
      " ip address 10.50.0.1 255.255.255.252\n";
  const char* v2 =
      "configure\n"
      "    system\n"
      "        name \"mixed-b\"\n"
      "    exit\n"
      "    port 1/1/1\n"
      "        description \"to mixed-a Serial1/0\"\n"
      "    exit\n"
      "    router\n"
      "        interface \"system\"\n"
      "            address 192.168.50.2/32\n"
      "        exit\n"
      "        interface \"1/1/1\"\n"
      "            address 10.50.0.2/30\n"
      "            port 1/1/1\n"
      "        exit\n"
      "    exit\n"
      "exit\n";
  const LocationDict dict =
      LocationDict::Build({net::ParseConfig(v1), net::ParseConfig(v2)});
  ASSERT_EQ(dict.router_count(), 2u);
  // The cross-vendor link resolved from the two description lines.
  ASSERT_EQ(dict.links().size(), 1u);
  const auto a = dict.RouterByName("mixed-a");
  const auto b = dict.RouterByName("mixed-b");
  ASSERT_TRUE(a && b);
  const auto ifa = dict.NameOnRouter(*a, "Serial1/0.10:0");
  const auto ifb = dict.NameOnRouter(*b, "1/1/1");
  ASSERT_TRUE(ifa && ifb);
  EXPECT_TRUE(dict.Connected(*ifa, *ifb));
  // Addresses from both dialects resolve.
  EXPECT_TRUE(dict.ByIp("10.50.0.1").has_value());
  EXPECT_TRUE(dict.ByIp("10.50.0.2").has_value());
}

}  // namespace
}  // namespace sld::core
