#include "core/templates/drain.h"

#include <gtest/gtest.h>

#include <set>

namespace sld::core {
namespace {

std::set<std::string> Canonicals(const TemplateSet& set) {
  std::set<std::string> out;
  for (const Template& tmpl : set.All()) out.insert(tmpl.Canonical());
  return out;
}

TEST(DrainTest, MasksVariablePositions) {
  DrainLearner drain;
  for (int i = 0; i < 50; ++i) {
    drain.Add("LINK-3-UPDOWN", "Interface Serial" + std::to_string(i) +
                                   "/0, changed state to down");
  }
  const auto got = Canonicals(drain.Templates());
  EXPECT_EQ(got, std::set<std::string>{
                     "LINK-3-UPDOWN Interface * changed state to down"});
}

TEST(DrainTest, SeparatesDissimilarMessages) {
  DrainLearner drain;
  for (int i = 0; i < 20; ++i) {
    drain.Add("SYS-5-X", "user login ok session " + std::to_string(i));
    drain.Add("SYS-5-X", "disk space low on volume v" + std::to_string(i));
  }
  const auto got = Canonicals(drain.Templates());
  EXPECT_EQ(got.size(), 2u);
  EXPECT_TRUE(got.count("SYS-5-X user login ok session *"));
  EXPECT_TRUE(got.count("SYS-5-X disk space low on volume *"));
}

TEST(DrainTest, DigitTokensRouteToWildcardBranch) {
  // First token varies numerically: all messages must still meet in one
  // leaf (and one cluster), despite routing on leading tokens.
  DrainLearner drain;
  for (int i = 0; i < 30; ++i) {
    drain.Add("Q-1-Z", std::to_string(i) + " packets dropped");
  }
  EXPECT_EQ(drain.cluster_count(), 1u);
  const auto got = Canonicals(drain.Templates());
  EXPECT_EQ(got, std::set<std::string>{"Q-1-Z * packets dropped"});
}

TEST(DrainTest, DifferentLengthsNeverMerge) {
  DrainLearner drain;
  drain.Add("C-1-X", "alpha beta");
  drain.Add("C-1-X", "alpha beta gamma");
  EXPECT_EQ(drain.cluster_count(), 2u);
}

TEST(DrainTest, SimilarityThresholdControlsJoin) {
  DrainParams strict;
  strict.similarity = 0.9;
  DrainLearner drain(strict);
  // 3 of 5 tokens shared = 0.6 similarity: below 0.9, stays separate.
  drain.Add("C-1-X", "one two three four five");
  drain.Add("C-1-X", "one two three FOUR FIVE");
  EXPECT_EQ(drain.cluster_count(), 2u);
  DrainLearner loose;  // default 0.5
  loose.Add("C-1-X", "one two three four five");
  loose.Add("C-1-X", "one two three FOUR FIVE");
  EXPECT_EQ(loose.cluster_count(), 1u);
}

TEST(DrainTest, BaselineWeaknessLocationWordsBecomeSubTypes) {
  // The documented contrast with the paper's learner: only two interface
  // names appear, each in half the messages — Drain with a strict
  // threshold keeps them as distinct templates (it has no concept of
  // location words), while the paper's learner masks them.
  DrainParams strict;
  strict.similarity = 0.9;
  DrainLearner drain(strict);
  for (int i = 0; i < 20; ++i) {
    drain.Add("LINK-3-UPDOWN",
              std::string("Interface ") +
                  (i % 2 == 0 ? "Serial1/0" : "Serial2/0") +
                  ", changed state to down");
  }
  EXPECT_EQ(drain.cluster_count(), 2u);
}

TEST(DrainTest, MessageCountTracked) {
  DrainLearner drain;
  for (int i = 0; i < 7; ++i) drain.Add("A-1-B", "x");
  EXPECT_EQ(drain.message_count(), 7u);
}

}  // namespace
}  // namespace sld::core
