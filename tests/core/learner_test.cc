#include "core/templates/learner.h"

#include <gtest/gtest.h>

#include <set>

namespace sld::core {
namespace {

std::set<std::string> Canonicals(const TemplateSet& set) {
  std::set<std::string> out;
  for (const Template& tmpl : set.All()) out.insert(tmpl.Canonical());
  return out;
}

// The paper's Table 3 / Table 4 example: twenty BGP-5-ADJCHANGE messages
// with five structural sub-types must yield exactly the five masked
// templates of Table 4.
TEST(LearnerTest, RecoversPaperTableFourSubTypes) {
  TemplateLearner learner;
  const char* kNeighbors[] = {
      "192.168.32.42",  "192.168.100.194", "192.168.15.78",
      "192.168.108.38", "192.168.0.26",    "192.168.7.6",
      "192.168.0.238",  "192.168.2.114",   "192.168.183.250",
      "192.168.114.178", "192.168.131.218", "192.168.55.138",
      "192.168.1.13",   "192.168.12.241",  "192.168.155.66",
      "192.168.254.29", "192.168.35.230",  "192.168.171.166",
      "192.168.2.237",  "192.168.0.154"};
  const char* kSuffixes[] = {
      "Up", "Up", "Up", "Up",
      "Down Interface flap", "Down Interface flap", "Down Interface flap",
      "Down Interface flap",
      "Down BGP Notification sent", "Down BGP Notification sent",
      "Down BGP Notification sent", "Down BGP Notification sent",
      "Down BGP Notification received", "Down BGP Notification received",
      "Down BGP Notification received", "Down BGP Notification received",
      "Down Peer closed the session", "Down Peer closed the session",
      "Down Peer closed the session", "Down Peer closed the session"};
  for (int i = 0; i < 20; ++i) {
    std::string detail = "neighbor ";
    detail += kNeighbors[i];
    detail += " vpn vrf 1000:";
    detail += std::to_string(1000 + i);  // many distinct VRFs
    detail += ' ';
    detail += kSuffixes[i];
    learner.Add("BGP-5-ADJCHANGE", detail);
  }
  const TemplateSet set = learner.Learn();
  const std::set<std::string> expected = {
      "BGP-5-ADJCHANGE neighbor * vpn vrf * Up",
      "BGP-5-ADJCHANGE neighbor * vpn vrf * Down Interface flap",
      "BGP-5-ADJCHANGE neighbor * vpn vrf * Down BGP Notification sent",
      "BGP-5-ADJCHANGE neighbor * vpn vrf * Down BGP Notification received",
      "BGP-5-ADJCHANGE neighbor * vpn vrf * Down Peer closed the session"};
  EXPECT_EQ(Canonicals(set), expected);
}

TEST(LearnerTest, MasksPositionsWithManyValues) {
  TemplateLearner learner;
  for (int i = 0; i < 50; ++i) {
    learner.Add("C-1-X", "value is " + std::to_string(i) + " units");
  }
  const TemplateSet set = learner.Learn();
  ASSERT_EQ(set.size(), 1u);
  EXPECT_EQ(set.All()[0].Canonical(), "C-1-X value is * units");
}

TEST(LearnerTest, SplitsPositionsWithFewValues) {
  // Two states with many messages each: two sub-type templates (this is
  // also the mechanism behind the paper's "GigabitEthernet" caveat).
  TemplateLearner learner;
  for (int i = 0; i < 30; ++i) {
    learner.Add("C-1-X", std::string("state changed to ") +
                             (i % 2 == 0 ? "down" : "up"));
  }
  const TemplateSet set = learner.Learn();
  const std::set<std::string> expected = {"C-1-X state changed to down",
                                          "C-1-X state changed to up"};
  EXPECT_EQ(Canonicals(set), expected);
}

TEST(LearnerTest, LocationWordsAlwaysMaskEvenWhenFewDistinct) {
  // Only two interfaces ever appear, but interface names are location
  // words and must not become sub-types (§3.1's exclusion).
  TemplateLearner learner;
  for (int i = 0; i < 20; ++i) {
    learner.Add("LINK-3-UPDOWN",
                std::string("Interface ") +
                    (i % 2 == 0 ? "Serial1/0" : "Serial2/0") +
                    ", changed state to down");
  }
  const TemplateSet set = learner.Learn();
  ASSERT_EQ(set.size(), 1u);
  EXPECT_EQ(set.All()[0].Canonical(),
            "LINK-3-UPDOWN Interface * changed state to down");
}

TEST(LearnerTest, ConstantLocationStillMasks) {
  // A single NTP server address is constant across all messages; as a
  // location word it still masks.
  TemplateLearner learner;
  for (int i = 0; i < 10; ++i) {
    learner.Add("NTP-6-PEERSYNC", "NTP sync to peer 172.30.255.1");
  }
  const TemplateSet set = learner.Learn();
  ASSERT_EQ(set.size(), 1u);
  EXPECT_EQ(set.All()[0].Canonical(), "NTP-6-PEERSYNC NTP sync to peer *");
}

TEST(LearnerTest, DifferentLengthsNeverShareTemplate) {
  TemplateLearner learner;
  learner.Add("C-1-X", "alpha beta");
  learner.Add("C-1-X", "alpha beta gamma");
  const TemplateSet set = learner.Learn();
  EXPECT_EQ(set.size(), 2u);
}

TEST(LearnerTest, MaskedParentPositionRecoversInChild) {
  // Regression for the tree construction: a position that is variable in
  // the mixed parent (here: the 3rd word across both shapes) must still
  // surface as a constant inside the sub-type where it IS constant.
  TemplateLearner learner;
  for (int i = 0; i < 25; ++i) {
    learner.Add("BGP-5-ADJCHANGE",
                "neighbor 10.0.0." + std::to_string(i) +
                    " Down BGP Notification sent");
    learner.Add("BGP-5-ADJCHANGE",
                "neighbor 10.0.1." + std::to_string(i) +
                    " Down BGP Notification received");
  }
  const TemplateSet set = learner.Learn();
  const std::set<std::string> expected = {
      "BGP-5-ADJCHANGE neighbor * Down BGP Notification sent",
      "BGP-5-ADJCHANGE neighbor * Down BGP Notification received"};
  EXPECT_EQ(Canonicals(set), expected);
}

TEST(LearnerTest, MaxBranchBoundsSubTypes) {
  // 30 distinct values > k=10 at the only varying position: masked, one
  // template; with k=40 the same data yields 30 sub-types.
  for (const int k : {10, 40}) {
    TemplateLearnerParams params;
    params.max_branch = k;
    TemplateLearner learner(params);
    // Enough repetitions that the sample-size cap (sqrt of node size)
    // does not bind and the k parameter alone decides.
    for (int i = 0; i < 30; ++i) {
      for (int rep = 0; rep < 40; ++rep) {
        learner.Add("C-1-X", "state code" + std::to_string(i) + " seen");
      }
    }
    const TemplateSet set = learner.Learn();
    if (k == 10) {
      EXPECT_EQ(set.size(), 1u);
    } else {
      EXPECT_EQ(set.size(), 30u);
    }
  }
}

TEST(LearnerTest, EmptyLearnerYieldsEmptySet) {
  TemplateLearner learner;
  EXPECT_EQ(learner.Learn().size(), 0u);
  EXPECT_EQ(learner.message_count(), 0u);
}

TEST(LearnerTest, SingleMessageBecomesItsOwnTemplate) {
  TemplateLearner learner;
  learner.Add("C-1-X", "one of a kind");
  const TemplateSet set = learner.Learn();
  ASSERT_EQ(set.size(), 1u);
  EXPECT_EQ(set.All()[0].Canonical(), "C-1-X one of a kind");
}

TEST(LearnerTest, MixedCodesLearnedIndependently) {
  TemplateLearner learner;
  for (int i = 0; i < 20; ++i) {
    learner.Add("A-1-X", "alpha " + std::to_string(i));
    learner.Add("B-1-Y", "beta " + std::to_string(i));
  }
  const TemplateSet set = learner.Learn();
  const std::set<std::string> expected = {"A-1-X alpha *", "B-1-Y beta *"};
  EXPECT_EQ(Canonicals(set), expected);
  EXPECT_EQ(learner.message_count(), 40u);
}

}  // namespace
}  // namespace sld::core
