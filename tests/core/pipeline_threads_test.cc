// The deployment topology as threads: a UDP receiver thread decodes and
// orders datagrams through a Collector into a BoundedQueue; a digester
// thread drains the queue into a StreamingDigester.  End-to-end over real
// loopback sockets.
#include <gtest/gtest.h>

#include <thread>

#include "common/bounded_queue.h"
#include "core/learn.h"
#include "core/stream.h"
#include "net/config_parser.h"
#include "sim/generator.h"
#include "syslog/collector.h"
#include "syslog/udp.h"

namespace sld::core {
namespace {

TEST(ThreadedPipelineTest, UdpToQueueToStreamingDigester) {
  // Learn a small knowledge base.
  sim::DatasetSpec spec = sim::DatasetASpec();
  spec.topo.num_routers = 8;
  const sim::Dataset history = sim::GenerateDataset(spec, 0, 5, 401);
  const sim::Dataset live = sim::GenerateDataset(spec, 5, 1, 402);
  std::vector<net::ParsedConfig> parsed;
  for (const std::string& cfg : history.configs) {
    parsed.push_back(net::ParseConfig(cfg));
  }
  const LocationDict dict = LocationDict::Build(parsed);
  OfflineLearner learner;
  KnowledgeBase kb = learner.Learn(history.messages, dict);

  auto receiver = syslog::UdpReceiver::Bind(0);
  ASSERT_TRUE(receiver.has_value());
  auto sender = syslog::UdpSender::Open("127.0.0.1", receiver->port());
  ASSERT_TRUE(sender.has_value());

  // Keep the test quick: the first slice of the live day.
  const std::size_t n = std::min<std::size_t>(live.messages.size(), 3000);

  BoundedQueue<syslog::SyslogRecord> queue(256);

  // Receiver thread: datagram -> collector -> queue.
  std::thread receive_thread([&] {
    syslog::Collector collector(5000, 2009, /*suppress_duplicates=*/true);
    std::size_t got = 0;
    while (got < n) {
      const auto datagram = receiver->Receive(5000);
      if (!datagram) break;  // sender died or finished early
      ++got;
      collector.IngestDatagram(*datagram);
      for (auto& rec : collector.Drain()) queue.Push(std::move(rec));
    }
    for (auto& rec : collector.Flush()) queue.Push(std::move(rec));
    queue.Close();
  });

  // Digester thread: queue -> streaming digester.
  std::size_t events = 0;
  std::size_t digested = 0;
  std::thread digest_thread([&] {
    StreamingDigester digester(&kb, &dict);
    while (auto rec = queue.Pop()) {
      ++digested;
      events += digester.Push(*rec).size();
    }
    events += digester.Flush().size();
  });

  // Main thread plays the routers (paced so loopback keeps up).
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_TRUE(sender->Send(syslog::EncodeRfc3164(live.messages[i])));
    if (i % 64 == 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }

  receive_thread.join();
  digest_thread.join();

  // UDP on loopback is reliable in practice, but tolerate a few drops.
  EXPECT_GE(digested, n * 95 / 100);
  EXPECT_GT(events, 0u);
  EXPECT_LT(events, digested);  // grouping actually compressed
}

}  // namespace
}  // namespace sld::core
