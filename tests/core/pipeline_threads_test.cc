// The deployment topology as threads: a UDP receiver thread decodes and
// orders datagrams through a Collector into a BoundedQueue; a digester
// thread drains the queue into a StreamingDigester.  End-to-end over real
// loopback sockets.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/bounded_queue.h"
#include "core/learn.h"
#include "core/stream.h"
#include "net/config_parser.h"
#include "obs/registry.h"
#include "pipeline/pipeline.h"
#include "sim/generator.h"
#include "syslog/collector.h"
#include "syslog/udp.h"

namespace sld::core {
namespace {

// Canonical form of a partition: sorted list of sorted message-index sets.
std::set<std::vector<std::size_t>> Partition(
    const std::vector<DigestEvent>& events) {
  std::set<std::vector<std::size_t>> out;
  for (const DigestEvent& ev : events) {
    std::vector<std::size_t> messages = ev.messages;
    std::sort(messages.begin(), messages.end());
    out.insert(std::move(messages));
  }
  return out;
}

// Group -> score, keyed by the canonical member set.
std::map<std::vector<std::size_t>, double> Scores(
    const std::vector<DigestEvent>& events) {
  std::map<std::vector<std::size_t>, double> out;
  for (const DigestEvent& ev : events) {
    std::vector<std::size_t> messages = ev.messages;
    std::sort(messages.begin(), messages.end());
    out[std::move(messages)] = ev.score;
  }
  return out;
}

// The tentpole invariant: the sharded pipeline's event partition and
// scores are identical to the single-threaded batch digester no matter
// how many shards the per-router work is spread over.
TEST(ThreadedPipelineTest, ShardedMatchesSingleThreadedDigest) {
  sim::DatasetSpec spec = sim::DatasetASpec();
  spec.topo.num_routers = 10;
  const sim::Dataset history = sim::GenerateDataset(spec, 0, 7, 301);
  const sim::Dataset live = sim::GenerateDataset(spec, 7, 1, 302);
  std::vector<net::ParsedConfig> parsed;
  for (const std::string& cfg : history.configs) {
    parsed.push_back(net::ParseConfig(cfg));
  }
  const LocationDict dict = LocationDict::Build(parsed);
  OfflineLearner learner;
  KnowledgeBase kb = learner.Learn(history.messages, dict);

  Digester batch(&kb, &dict);
  const DigestResult expected = batch.Digest(live.messages);
  ASSERT_GT(expected.events.size(), 0u);

  for (const std::size_t shards : {1u, 4u, 16u}) {
    // The match memo cache must be invisible in the results: run the
    // 4-shard configuration both ways, the rest with the default (on).
    for (const bool use_cache : (shards == 4u ? std::vector<bool>{true, false}
                                              : std::vector<bool>{true})) {
      pipeline::PipelineOptions opts;
      opts.shards = shards;
      opts.use_match_cache = use_cache;
      // Exercise the queue seams: many small batches instead of a few big
      // ones.
      opts.batch_size = 64;
      pipeline::ShardedPipeline p(&kb, &dict, opts);
      for (const auto& rec : live.messages) p.Push(rec);
      const DigestResult got = p.Finish();

      SCOPED_TRACE(testing::Message() << shards << " shard(s), cache "
                                      << (use_cache ? "on" : "off"));
      EXPECT_EQ(got.message_count, live.messages.size());
      EXPECT_EQ(Partition(got.events), Partition(expected.events));
      const auto want_scores = Scores(expected.events);
      const auto got_scores = Scores(got.events);
      ASSERT_EQ(got_scores.size(), want_scores.size());
      for (const auto& [members, score] : want_scores) {
        const auto it = got_scores.find(members);
        ASSERT_NE(it, got_scores.end());
        EXPECT_DOUBLE_EQ(it->second, score);
      }
    }
  }
}

// Streaming form: a finite idle horizon, events delivered through the
// sink as they close, same partition as the single-threaded
// StreamingDigester with the same horizon.
TEST(ThreadedPipelineTest, ShardedStreamingMatchesStreamingDigester) {
  sim::DatasetSpec spec = sim::DatasetASpec();
  spec.topo.num_routers = 8;
  const sim::Dataset history = sim::GenerateDataset(spec, 0, 5, 311);
  const sim::Dataset live = sim::GenerateDataset(spec, 5, 1, 312);
  std::vector<net::ParsedConfig> parsed;
  for (const std::string& cfg : history.configs) {
    parsed.push_back(net::ParseConfig(cfg));
  }
  const LocationDict dict = LocationDict::Build(parsed);
  OfflineLearner learner;
  KnowledgeBase kb = learner.Learn(history.messages, dict);

  const TimeMs idle_close = 600 * kMsPerSecond;
  StreamingDigester stream(&kb, &dict, DigestOptions{}, idle_close);
  std::vector<DigestEvent> expected;
  for (const auto& rec : live.messages) {
    for (auto& ev : stream.Push(rec)) expected.push_back(std::move(ev));
  }
  for (auto& ev : stream.Flush()) expected.push_back(std::move(ev));
  ASSERT_GT(expected.size(), 0u);

  obs::Registry metrics;
  pipeline::PipelineOptions opts;
  opts.shards = 4;
  opts.idle_close_ms = idle_close;
  // Match the StreamingDigester default so force-closes line up too.
  opts.max_group_age_ms = 24 * kMsPerHour;
  // Bind metrics so the instrumented shard/merge paths run under TSan.
  opts.metrics = &metrics;
  pipeline::ShardedPipeline p(&kb, &dict, opts);
  std::vector<DigestEvent> got;
  p.SetEventSink([&got](DigestEvent ev) { got.push_back(std::move(ev)); });
  for (const auto& rec : live.messages) p.Push(rec);
  const DigestResult result = p.Finish();

  EXPECT_TRUE(result.events.empty());  // the sink consumed them
  EXPECT_EQ(result.message_count, live.messages.size());
  EXPECT_EQ(Partition(got), Partition(expected));

  // Every record was counted exactly once on each side of the queues.
  const obs::MetricsSnapshot snap = metrics.Collect();
  const auto n_msgs = static_cast<std::int64_t>(live.messages.size());
  EXPECT_EQ(snap.Value("pipeline_shard_messages_total"), n_msgs);
  EXPECT_EQ(snap.Value("pipeline_merge_messages_total"), n_msgs);
  EXPECT_EQ(snap.Value("tracker_groups_closed_total"),
            static_cast<std::int64_t>(got.size()));
}

TEST(ThreadedPipelineTest, UdpToQueueToStreamingDigester) {
  // Learn a small knowledge base.
  sim::DatasetSpec spec = sim::DatasetASpec();
  spec.topo.num_routers = 8;
  const sim::Dataset history = sim::GenerateDataset(spec, 0, 5, 401);
  const sim::Dataset live = sim::GenerateDataset(spec, 5, 1, 402);
  std::vector<net::ParsedConfig> parsed;
  for (const std::string& cfg : history.configs) {
    parsed.push_back(net::ParseConfig(cfg));
  }
  const LocationDict dict = LocationDict::Build(parsed);
  OfflineLearner learner;
  KnowledgeBase kb = learner.Learn(history.messages, dict);

  auto receiver = syslog::UdpReceiver::Bind(0);
  ASSERT_TRUE(receiver.has_value());
  auto sender = syslog::UdpSender::Open("127.0.0.1", receiver->port());
  ASSERT_TRUE(sender.has_value());

  // Keep the test quick: the first slice of the live day, pre-encoded
  // and de-duplicated on the wire encoding so every frame is unique and
  // the collector's accepted count can serve as a loss-free ack.
  std::vector<std::string> frames;
  {
    std::set<std::string> seen;
    for (const auto& rec : live.messages) {
      std::string frame = syslog::EncodeRfc3164(rec);
      if (seen.insert(frame).second) frames.push_back(std::move(frame));
      if (frames.size() == 3000) break;
    }
  }
  const std::size_t n = frames.size();
  ASSERT_GT(n, 0u);

  BoundedQueue<syslog::SyslogRecord> queue(256);

  // Loopback UDP still drops datagrams when the receiver is slow (the
  // normal state of affairs under TSan), so the transfer is made
  // lossless by construction instead of tolerating loss:
  //   - the receiver publishes the collector's unique-accept count, and
  //     the sender throttles to a fixed window above it so the socket
  //     buffer can never be overrun by a fast sender alone;
  //   - when the ack count stalls, the sender retransmits from the
  //     start; the collector's duplicate window absorbs extra copies;
  //   - the collector holds records until Flush (no mid-stream release),
  //     so a retransmitted record can never arrive "late" behind the
  //     release watermark and be dropped for good;
  //   - everything is bounded by a wall-clock deadline.
  constexpr std::size_t kWindow = 64;
  constexpr TimeMs kHoldAllMs = 24 * kMsPerHour;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::minutes(2);
  std::atomic<std::size_t> acked{0};

  // Receiver thread: datagram -> collector -> queue.  One reused buffer
  // serves every receive (the zero-alloc overload).
  std::thread receive_thread([&] {
    syslog::Collector collector(kHoldAllMs, 2009,
                                /*suppress_duplicates=*/true);
    std::string datagram;
    while (collector.accepted_count() < n &&
           std::chrono::steady_clock::now() < deadline) {
      datagram.clear();
      if (!receiver->Receive(&datagram, 250)) continue;  // retransmitted
      collector.IngestDatagram(datagram);
      acked.store(collector.accepted_count(), std::memory_order_relaxed);
      for (auto& rec : collector.Drain()) queue.Push(std::move(rec));
    }
    for (auto& rec : collector.Flush()) queue.Push(std::move(rec));
    queue.Close();
  });

  // Digester thread: queue -> streaming digester.
  std::size_t events = 0;
  std::size_t digested = 0;
  std::thread digest_thread([&] {
    StreamingDigester digester(&kb, &dict);
    while (auto rec = queue.Pop()) {
      ++digested;
      events += digester.Push(*rec).size();
    }
    events += digester.Flush().size();
  });

  // Main thread plays the routers under window flow control.
  std::size_t next = 0;
  std::size_t last_acked = 0;
  auto last_progress = std::chrono::steady_clock::now();
  while (acked.load(std::memory_order_relaxed) < n &&
         std::chrono::steady_clock::now() < deadline) {
    const std::size_t a = acked.load(std::memory_order_relaxed);
    if (a > last_acked) {
      last_acked = a;
      last_progress = std::chrono::steady_clock::now();
    }
    if (next < n && next < a + kWindow) {
      ASSERT_TRUE(sender->Send(frames[next]));
      ++next;
      continue;
    }
    // Window exhausted (or a full pass sent): wait for acks, and after
    // a stall assume the unacked remainder was dropped and resend the
    // sequence.  Duplicate suppression keeps replays harmless.
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    if (std::chrono::steady_clock::now() - last_progress >
        std::chrono::milliseconds(250)) {
      next = 0;
      last_progress = std::chrono::steady_clock::now();
    }
  }

  receive_thread.join();
  digest_thread.join();

  // Lossless by construction: every unique frame reaches the digester
  // exactly once, in non-decreasing time order.
  EXPECT_EQ(acked.load(), n);
  EXPECT_EQ(digested, n);
  EXPECT_GT(events, 0u);
  EXPECT_LT(events, digested);  // grouping actually compressed
}

}  // namespace
}  // namespace sld::core
