#include "core/location/extractor.h"

#include <gtest/gtest.h>

#include "net/config_parser.h"

namespace sld::core {
namespace {

class ExtractorTest : public ::testing::Test {
 protected:
  ExtractorTest() {
    const char* r1 =
        "hostname r1\n"
        "interface Loopback0\n"
        " ip address 192.168.0.1 255.255.255.255\n"
        "controller T1 0/3\n"
        "interface Serial0/3\n"
        " description to r2 Serial0/1\n"
        " no ip address\n"
        "interface Serial0/3.10:0\n"
        " ip address 10.0.0.1 255.255.255.252\n"
        "router bgp 7018\n"
        " neighbor 192.168.0.2 remote-as 7018\n"
        " address-family ipv4 vrf 1000:1001\n"
        "  neighbor 192.168.100.77 remote-as 65001\n"
        " exit-address-family\n"
        "mpls traffic-eng tunnel mpls-path-9\n"
        " hop r1\n"
        " hop r2\n";
    const char* r2 =
        "hostname r2\n"
        "interface Loopback0\n"
        " ip address 192.168.0.2 255.255.255.255\n"
        "interface Serial0/1\n"
        " description to r1 Serial0/3\n"
        " no ip address\n"
        "interface Serial0/1.10:0\n"
        " ip address 10.0.0.2 255.255.255.252\n";
    dict_ = LocationDict::Build({net::ParseConfig(r1),
                                 net::ParseConfig(r2)});
  }

  std::vector<std::string> Names(std::string_view router,
                                 std::string_view detail) {
    LocationExtractor extractor(&dict_);
    std::vector<std::string> out;
    for (const LocationId id : extractor.Extract(router, detail)) {
      out.push_back(dict_.Get(id).name);
    }
    return out;
  }

  LocationDict dict_;
};

TEST_F(ExtractorTest, RouterLocationAlwaysFirst) {
  const auto names = Names("r1", "no locations here at all");
  ASSERT_EQ(names.size(), 1u);
  EXPECT_EQ(names[0], "r1");
}

TEST_F(ExtractorTest, UnknownRouterYieldsNothing) {
  EXPECT_TRUE(Names("rogue", "Interface Serial0/3, down").empty());
}

TEST_F(ExtractorTest, InterfaceNameWithTrailingComma) {
  const auto names =
      Names("r1", "Interface Serial0/3.10:0, changed state to down");
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[1], "Serial0/3.10:0");
}

TEST_F(ExtractorTest, ControllerTwoTokenForm) {
  const auto names = Names("r1", "Controller T1 0/3, changed state to down");
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[1], "T1 0/3");
}

TEST_F(ExtractorTest, ConfiguredAddressResolves) {
  const auto names = Names("r1", "packet from 10.0.0.2 dropped");
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[1], "Serial0/1.10:0");  // the interface on r2 owning it
}

TEST_F(ExtractorTest, ScannerAddressValidatedAway) {
  // The §4.1.2 requirement: an address in no config must yield nothing.
  const auto names =
      Names("r1", "Invalid MD5 digest from 203.0.113.9(33812) to "
                  "192.168.0.1(179)");
  // 203.0.113.9 is ignored; 192.168.0.1 is r1's own loopback, which
  // deduplicates against the originating-router location.
  ASSERT_EQ(names.size(), 1u);
  EXPECT_EQ(names[0], "r1");
}

TEST_F(ExtractorTest, BgpNeighborResolvesSessionAndPeer) {
  const auto names = Names("r1", "neighbor 192.168.0.2 Down Peer closed");
  // Session endpoint on r1 plus r2's router location (loopback owner).
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[1], "bgp 192.168.0.2");
  EXPECT_EQ(names[2], "r2");
}

TEST_F(ExtractorTest, VpnNeighborResolvesSessionOnly) {
  const auto names =
      Names("r1", "neighbor 192.168.100.77 vpn vrf 1000:1001 Up");
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[1], "bgp 192.168.100.77 vrf 1000:1001");
}

TEST_F(ExtractorTest, PathNameResolves) {
  const auto names = Names("r2", "LSP mpls-path-9 changed state to down");
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[1], "mpls-path-9");
}

TEST_F(ExtractorTest, DuplicateMentionsDeduplicated) {
  const auto names =
      Names("r1", "Serial0/3 and Serial0/3 again Serial0/3.10:0");
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[1], "Serial0/3");
  EXPECT_EQ(names[2], "Serial0/3.10:0");
}

TEST_F(ExtractorTest, OtherRoutersInterfaceNameDoesNotResolveLocally) {
  // "Serial0/1" exists on r2, not r1 — a message on r1 naming it must not
  // produce a bogus r1 location (name maps are per router).
  const auto names = Names("r1", "saw Serial0/1 somewhere");
  ASSERT_EQ(names.size(), 1u);
}

TEST_F(ExtractorTest, TrailingControllerTokenIsSafe) {
  // "T1" as the final token (no position following) must not crash or
  // resolve to anything.
  const auto names = Names("r1", "something about T1");
  ASSERT_EQ(names.size(), 1u);
}

TEST(PrefixExtractionTest, FarEndOfPointToPointResolvesViaSubnet) {
  // Only r1's config is available; the far end 10.0.0.2 is not configured
  // anywhere, but it falls inside r1's /30, so it resolves to r1's
  // interface instead of being discarded.
  LocationDict dict = LocationDict::Build({net::ParseConfig(
      "hostname r1\n"
      "interface Loopback0\n"
      " ip address 192.168.0.1 255.255.255.255\n"
      "interface Serial0/3\n"
      " no ip address\n"
      "interface Serial0/3.10:0\n"
      " ip address 10.0.0.1 255.255.255.252\n")});
  LocationExtractor extractor(&dict);
  const auto locs = extractor.Extract("r1", "neighbor 10.0.0.2 unreachable");
  ASSERT_EQ(locs.size(), 2u);
  EXPECT_EQ(dict.Get(locs[1]).name, "Serial0/3.10:0");
  // A truly foreign address still resolves to nothing.
  const auto foreign = extractor.Extract("r1", "probe from 11.0.0.2");
  EXPECT_EQ(foreign.size(), 1u);
}

}  // namespace
}  // namespace sld::core
