#include "core/priority/present.h"

#include <gtest/gtest.h>

namespace sld::core {
namespace {

TemplateId Add(TemplateSet& set, std::string code,
               std::initializer_list<const char*> tokens) {
  std::vector<std::string> toks;
  for (const char* t : tokens) toks.emplace_back(t);
  return set.Add(std::move(code), std::move(toks));
}

TEST(LabelTest, LinkFlapWhenBothDirections) {
  TemplateSet set;
  const auto down = Add(set, "LINK-3-UPDOWN",
                        {"Interface", "*", "changed", "state", "to", "down"});
  const auto up = Add(set, "LINK-3-UPDOWN",
                      {"Interface", "*", "changed", "state", "to", "up"});
  EXPECT_EQ(LabelFor({down, up}, set), "link flap");
  EXPECT_EQ(LabelFor({down}, set), "link down");
  EXPECT_EQ(LabelFor({up}, set), "link up");
}

TEST(LabelTest, V2LinkCodesRecognized) {
  TemplateSet set;
  const auto down = Add(set, "SNMP-WARNING-linkDown",
                        {"Interface", "*", "is", "not", "operational"});
  const auto up = Add(set, "SNMP-WARNING-linkup",
                      {"Interface", "*", "is", "operational"});
  EXPECT_EQ(LabelFor({down, up}, set), "link flap");
}

TEST(LabelTest, MultipleFamiliesJoined) {
  TemplateSet set;
  const auto link = Add(set, "LINK-3-UPDOWN",
                        {"Interface", "*", "changed", "state", "to", "down"});
  const auto proto =
      Add(set, "LINEPROTO-5-UPDOWN",
          {"Line", "protocol", "on", "Interface", "*", "changed", "state",
           "to", "down"});
  const std::string label = LabelFor({link, proto}, set);
  EXPECT_NE(label.find("link down"), std::string::npos);
  EXPECT_NE(label.find("line protocol down"), std::string::npos);
}

TEST(LabelTest, NonFlappableFamilies) {
  TemplateSet set;
  const auto cpu =
      Add(set, "SYS-1-CPURISINGTHRESHOLD", {"Threshold:", "*"});
  EXPECT_EQ(LabelFor({cpu}, set), "CPU threshold");
  const auto auth = Add(set, "TCP-6-BADAUTH", {"Invalid", "MD5", "*"});
  EXPECT_EQ(LabelFor({auth}, set), "TCP bad authentication");
  const auto cfg = Add(set, "SYS-5-CONFIG_I", {"Configured", "*"});
  EXPECT_EQ(LabelFor({cfg}, set), "configuration change");
}

TEST(LabelTest, PimNeighborLoss) {
  TemplateSet set;
  const auto loss = Add(set, "PIM-MAJOR-pimNeighborLoss",
                        {"PIM", "neighbor", "*", "on", "interface", "*",
                         "lost"});
  EXPECT_EQ(LabelFor({loss}, set), "PIM neighbor down");
}

TEST(LabelTest, UnknownFamilyFallsBackToFacility) {
  TemplateSet set;
  const auto odd = Add(set, "FANCY-2-THING", {"something", "*"});
  EXPECT_EQ(LabelFor({odd}, set), "fancy events");
  EXPECT_EQ(LabelFor({}, set), "unclassified");
}

TEST(LabelTest, BgpAdjacencyChange) {
  TemplateSet set;
  const auto down = Add(set, "BGP-5-ADJCHANGE",
                        {"neighbor", "*", "vpn", "vrf", "*", "Down",
                         "Interface", "flap"});
  const auto up = Add(set, "BGP-5-ADJCHANGE",
                      {"neighbor", "*", "vpn", "vrf", "*", "Up"});
  EXPECT_EQ(LabelFor({down, up}, set), "BGP adjacency flap");
  EXPECT_EQ(LabelFor({down}, set), "BGP adjacency down");
}

TEST(LabelTest, CustomRulesTakePrecedence) {
  TemplateSet set;
  const auto down = Add(set, "LINK-3-UPDOWN",
                        {"Interface", "*", "changed", "state", "to", "down"});
  const std::vector<LabelRule> custom = {
      {"LINK-3", "circuit", true},
      {"FANCY", "special widget", false},
  };
  EXPECT_EQ(LabelFor({down}, set, &custom), "circuit down");
  const auto odd = Add(set, "FANCY-2-THING", {"something", "*"});
  EXPECT_EQ(LabelFor({odd}, set, &custom), "special widget");
  // Without custom rules, the built-ins still apply.
  EXPECT_EQ(LabelFor({down}, set), "link down");
}

TEST(LocationTextTest, UnknownRoutersPlaceholder) {
  LocationDict dict;
  EXPECT_EQ(LocationTextFor({}, dict), "(unknown routers)");
}

}  // namespace
}  // namespace sld::core
