#include "core/templates/token_class.h"

#include <gtest/gtest.h>

namespace sld::core {
namespace {

struct StripCase {
  const char* in;
  const char* out;
};

class StripPunctTest : public ::testing::TestWithParam<StripCase> {};

TEST_P(StripPunctTest, Strips) {
  EXPECT_EQ(StripPunct(GetParam().in), GetParam().out) << GetParam().in;
}

INSTANTIATE_TEST_SUITE_P(
    Table, StripPunctTest,
    ::testing::Values(
        StripCase{"Serial1/0.10:0,", "Serial1/0.10:0"},
        StripCase{"10.1.2.3(179)", "10.1.2.3"},
        StripCase{"(Pid/Util):", "Pid/Util"},
        StripCase{"[Source:", "Source"},
        StripCase{"updated.", "updated"},
        StripCase{"flap.", "flap"},
        StripCase{"word", "word"},
        StripCase{"\"quoted\"", "quoted"},
        StripCase{"0/0:1", "0/0:1"},       // channel suffix retained
        StripCase{"1000:1001", "1000:1001"},
        StripCase{"].", ""},
        StripCase{"", ""}));

struct LocCase {
  const char* token;
  bool location;
};

class LocationTokenTest : public ::testing::TestWithParam<LocCase> {};

TEST_P(LocationTokenTest, Classifies) {
  EXPECT_EQ(LooksLikeLocationToken(GetParam().token), GetParam().location)
      << GetParam().token;
}

INSTANTIATE_TEST_SUITE_P(
    Table, LocationTokenTest,
    ::testing::Values(
        LocCase{"10.1.2.3", true},           // address
        LocCase{"1/1/1", true},              // bare position
        LocCase{"2/0.10:0", true},           // channelized position
        LocCase{"Serial1/0.10:0", true},     // interface name
        LocCase{"GigabitEthernet0/1/0", true},
        LocCase{"Multilink3", false},        // no separator after digits
        LocCase{"lag-1", true},              // '-' separator
        LocCase{"MD5", false},               // ordinary word with digit
        LocCase{"vty0", false},
        LocCase{"T1", false},                // single-letter prefix
        LocCase{"down", false},
        LocCase{"Interface", false},
        LocCase{"95%/1%", false},            // '%' is not a position char
        LocCase{"1000:1001", true},          // VRF / RD id
        LocCase{"", false}));

}  // namespace
}  // namespace sld::core
