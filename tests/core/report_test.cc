#include "core/priority/report.h"

#include <gtest/gtest.h>

#include "common/strings.h"
#include "net/config_parser.h"

namespace sld::core {
namespace {

DigestResult SampleResult() {
  DigestResult result;
  result.message_count = 100;
  result.active_rule_count = 3;
  DigestEvent a;
  a.messages = {0, 1, 2};
  a.start = ParseTimestamp("2009-09-01 10:00:00").value();
  a.end = ParseTimestamp("2009-09-01 10:05:00").value();
  a.score = 50.0;
  a.label = "link flap";
  a.location_text = "r1 Serial0/0";
  a.router_keys = {0};
  DigestEvent b;
  b.messages = {3};
  b.start = ParseTimestamp("2009-09-01 11:00:00").value();
  b.end = b.start;
  b.score = 10.0;
  b.label = "configuration change, with \"quotes\"";
  b.location_text = "r2";
  b.router_keys = {1};
  result.events = {a, b};
  return result;
}

LocationDict TwoRouterDict() {
  return LocationDict::Build(
      {net::ParseConfig("hostname r1\n"),
       net::ParseConfig("hostname r2\n")});
}

TEST(ReportTest, ContainsHeadlineAndSections) {
  const LocationDict dict = TwoRouterDict();
  const std::string report = RenderReport(SampleResult(), dict);
  EXPECT_NE(report.find("2 events from 100 messages"), std::string::npos)
      << report;
  EXPECT_NE(report.find("events by type:"), std::string::npos);
  EXPECT_NE(report.find("link flap"), std::string::npos);
  EXPECT_NE(report.find("top 2 events by priority:"), std::string::npos);
  EXPECT_NE(report.find("routers with most events:"), std::string::npos);
  EXPECT_NE(report.find("r1"), std::string::npos);
}

TEST(ReportTest, TopEventsLimit) {
  const LocationDict dict = TwoRouterDict();
  ReportOptions options;
  options.top_events = 1;
  const std::string report = RenderReport(SampleResult(), dict, options);
  EXPECT_NE(report.find("top 1 events"), std::string::npos);
  // Only one ranked digest line (score bracket marker) is listed.
  std::size_t markers = 0;
  for (std::size_t at = report.find(". ["); at != std::string::npos;
       at = report.find(". [", at + 1)) {
    ++markers;
  }
  EXPECT_EQ(markers, 1u);
}

TEST(CsvTest, HeaderAndRows) {
  const std::string csv = ToCsv(SampleResult());
  const auto lines = SplitChar(csv, '\n');
  ASSERT_GE(lines.size(), 3u);
  EXPECT_EQ(lines[0], "start,end,score,messages,routers,label,locations");
  EXPECT_TRUE(lines[1].starts_with("2009-09-01 10:00:00,"));
  EXPECT_NE(lines[1].find(",3,1,link flap,"), std::string_view::npos);
}

TEST(CsvTest, QuotesFieldsWithCommasAndQuotes) {
  const std::string csv = ToCsv(SampleResult());
  // RFC 4180: embedded quotes doubled, field wrapped in quotes.
  EXPECT_NE(csv.find("\"configuration change, with \"\"quotes\"\"\""),
            std::string::npos)
      << csv;
}

TEST(TimelineTest, FirstOccurrencePerCodeInTimeOrder) {
  std::vector<syslog::SyslogRecord> stream;
  const char* codes[] = {"B-1-X", "A-1-X", "B-1-X", "C-1-X"};
  for (int i = 0; i < 4; ++i) {
    syslog::SyslogRecord rec;
    rec.time = ParseTimestamp("2009-09-01 10:00:00").value() + i * 60000;
    rec.router = "r1";
    rec.code = codes[i];
    rec.detail = "detail " + std::to_string(i);
    stream.push_back(std::move(rec));
  }
  DigestEvent ev;
  ev.messages = {3, 2, 1, 0};  // unordered index field
  const std::string timeline = RenderTimeline(ev, stream);
  // Three distinct codes, in time order; the repeat of B-1-X is skipped.
  const auto lines = SplitChar(timeline, '\n');
  ASSERT_EQ(lines.size(), 4u);  // 3 rows + trailing empty
  EXPECT_NE(lines[0].find("B-1-X"), std::string_view::npos);
  EXPECT_NE(lines[0].find("detail 0"), std::string_view::npos);
  EXPECT_NE(lines[1].find("A-1-X"), std::string_view::npos);
  EXPECT_NE(lines[2].find("C-1-X"), std::string_view::npos);
}

TEST(TimelineTest, TruncatesAtMaxLines) {
  std::vector<syslog::SyslogRecord> stream;
  DigestEvent ev;
  for (int i = 0; i < 10; ++i) {
    syslog::SyslogRecord rec;
    rec.time = i * 1000;
    rec.router = "r1";
    rec.code = "C-" + std::to_string(i) + "-X";
    rec.detail = "d";
    stream.push_back(std::move(rec));
    ev.messages.push_back(static_cast<std::size_t>(i));
  }
  const std::string timeline = RenderTimeline(ev, stream, 3);
  EXPECT_NE(timeline.find("..."), std::string::npos);
  EXPECT_EQ(SplitChar(timeline, '\n').size(), 5u);  // 3 rows + "..." + ""
}

TEST(CsvTest, EmptyResult) {
  DigestResult result;
  const std::string csv = ToCsv(result);
  EXPECT_EQ(SplitChar(csv, '\n').size(), 2u);  // header + trailing empty
}

}  // namespace
}  // namespace sld::core
