#include "core/temporal/temporal.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>

namespace sld::core {
namespace {

Augmented Msg(TimeMs t, TemplateId tmpl = 1, std::uint32_t router = 0) {
  Augmented a;
  a.time = t;
  a.tmpl = tmpl;
  a.router_key = router;
  a.router_known = true;
  return a;
}

TemporalParams Params(double alpha = 0.05, double beta = 5.0) {
  TemporalParams p;
  p.alpha = alpha;
  p.beta = beta;
  return p;
}

TEST(TemporalGrouperTest, PeriodicMessagesShareOneGroup) {
  TemporalPriors priors{{1, 30000.0}};  // 30 s expected period
  TemporalGrouper g(Params(), &priors);
  std::set<std::size_t> groups;
  for (int i = 0; i < 50; ++i) {
    groups.insert(g.Feed(Msg(i * 30000)));
  }
  EXPECT_EQ(groups.size(), 1u);
}

TEST(TemporalGrouperTest, LongGapSplitsGroups) {
  TemporalPriors priors{{1, 30000.0}};
  TemporalGrouper g(Params(), &priors);
  const auto g1 = g.Feed(Msg(0));
  EXPECT_EQ(g.Feed(Msg(30000)), g1);
  // 30 minutes >> beta * shat: new group.
  const auto g2 = g.Feed(Msg(30000 + 30 * kMsPerMinute));
  EXPECT_NE(g2, g1);
  // The new burst continues in the new group.
  EXPECT_EQ(g.Feed(Msg(60000 + 30 * kMsPerMinute)), g2);
}

TEST(TemporalGrouperTest, SminAlwaysGroups) {
  // Gap below S_min groups even when the prediction says otherwise.
  TemporalPriors priors{{1, 10.0}};  // prediction: 10 ms
  TemporalParams p = Params(0.05, 1.0);
  TemporalGrouper g(p, &priors);
  const auto g1 = g.Feed(Msg(0));
  EXPECT_EQ(g.Feed(Msg(900)), g1);  // 900 ms <= S_min (1 s)
}

TEST(TemporalGrouperTest, SmaxNeverGroups) {
  // Gap above S_max splits even with an enormous prediction.
  TemporalPriors priors{{1, 1e12}};
  TemporalGrouper g(Params(), &priors);
  const auto g1 = g.Feed(Msg(0));
  EXPECT_NE(g.Feed(Msg(3 * kMsPerHour + 1000)), g1);
}

TEST(TemporalGrouperTest, DistinctTemplatesAndRoutersAreIndependent) {
  TemporalGrouper g(Params(), nullptr);
  const auto a = g.Feed(Msg(0, 1, 0));
  const auto b = g.Feed(Msg(0, 2, 0));
  const auto c = g.Feed(Msg(0, 1, 1));
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(b, c);
  // Same key continues its own group regardless of interleaving.
  EXPECT_EQ(g.Feed(Msg(1000, 1, 0)), a);
  EXPECT_EQ(g.Feed(Msg(1000, 2, 0)), b);
}

TEST(TemporalGrouperTest, EwmaAdaptsToChangedPeriod) {
  // After a period change from 10 s to 60 s, alpha=0.5 adapts within a
  // few samples and keeps grouping.
  TemporalPriors priors{{1, 10000.0}};
  TemporalGrouper g(Params(0.5, 5.0), &priors);
  TimeMs t = 0;
  std::size_t group = g.Feed(Msg(t));
  for (int i = 0; i < 10; ++i) {
    t += 10000;
    EXPECT_EQ(g.Feed(Msg(t)), group);
  }
  for (int i = 0; i < 10; ++i) {
    t += 45000;  // 45 s <= 5 * shat(10 s) initially, then shat adapts up
    EXPECT_EQ(g.Feed(Msg(t)), group);
  }
}

TEST(TemporalGrouperTest, UnknownTemplateUsesDefaultPrior) {
  TemporalPriors priors;  // empty
  TemporalGrouper g(Params(), &priors);
  const auto g1 = g.Feed(Msg(0));
  // 60 s default prior, beta 5 -> gaps up to 300 s group.
  EXPECT_EQ(g.Feed(Msg(250000)), g1);
  EXPECT_NE(g.Feed(Msg(250000 + 40 * kMsPerMinute)), g1);
}

TEST(MineTemporalPriorsTest, MedianOfGaps) {
  std::vector<Augmented> history;
  for (int i = 0; i < 11; ++i) history.push_back(Msg(i * 20000));
  const TemporalPriors priors = MineTemporalPriors(history);
  ASSERT_TRUE(priors.count(1));
  EXPECT_DOUBLE_EQ(priors.at(1), 20000.0);
}

TEST(MineTemporalPriorsTest, GapsAboveSmaxExcluded) {
  std::vector<Augmented> history;
  history.push_back(Msg(0));
  history.push_back(Msg(10 * kMsPerHour));  // ignored gap
  history.push_back(Msg(10 * kMsPerHour + 5000));
  const TemporalPriors priors = MineTemporalPriors(history);
  ASSERT_TRUE(priors.count(1));
  EXPECT_DOUBLE_EQ(priors.at(1), 5000.0);
}

TEST(MineTemporalPriorsTest, PerTemplate) {
  std::vector<Augmented> history;
  for (int i = 0; i < 10; ++i) {
    history.push_back(Msg(i * 60000, 1));
    history.push_back(Msg(i * 60000 + 100, 2));
  }
  std::sort(history.begin(), history.end(),
            [](const Augmented& a, const Augmented& b) {
              return a.time < b.time;
            });
  const TemporalPriors priors = MineTemporalPriors(history);
  EXPECT_DOUBLE_EQ(priors.at(1), 60000.0);
  EXPECT_DOUBLE_EQ(priors.at(2), 60000.0);
}

// Compression is monotone non-increasing in beta: a larger tolerance can
// only merge more (property the paper's Fig. 11 relies on).
class BetaMonotonicity : public ::testing::TestWithParam<double> {};

std::vector<Augmented> JitteredTrains() {
  std::vector<Augmented> history;
  std::mt19937_64 rng(9);
  TimeMs t = 0;
  for (int burst = 0; burst < 40; ++burst) {
    t += 2 * kMsPerHour + static_cast<TimeMs>(rng() % kMsPerHour);
    TimeMs at = t;
    for (int i = 0; i < 20; ++i) {
      at += 20000 + static_cast<TimeMs>(rng() % 20000);
      history.push_back(Msg(at, 1 + burst % 3,
                            static_cast<std::uint32_t>(burst % 5)));
    }
  }
  std::sort(history.begin(), history.end(),
            [](const Augmented& a, const Augmented& b) {
              return a.time < b.time;
            });
  return history;
}

TEST_P(BetaMonotonicity, LargerBetaNeverIncreasesGroups) {
  const auto history = JitteredTrains();
  const TemporalPriors priors = MineTemporalPriors(history);
  const double beta = GetParam();
  const std::size_t at =
      CountTemporalGroups(history, Params(0.05, beta), priors);
  const std::size_t next =
      CountTemporalGroups(history, Params(0.05, beta + 1.0), priors);
  EXPECT_GE(at, next);
}

INSTANTIATE_TEST_SUITE_P(Betas, BetaMonotonicity,
                         ::testing::Values(1.0, 2.0, 3.0, 4.0, 5.0, 6.0));

TEST(SelectTemporalParamsTest, PicksCompressionMinimum) {
  const auto history = JitteredTrains();
  const TemporalPriors priors = MineTemporalPriors(history);
  const double alphas[] = {0.05, 0.5};
  const double betas[] = {1.0, 5.0};
  const TemporalParams best =
      SelectTemporalParams(history, priors, alphas, betas);
  // beta=5 must beat beta=1 on jittered trains.
  EXPECT_EQ(best.beta, 5.0);
  const std::size_t best_groups =
      CountTemporalGroups(history, best, priors);
  for (const double a : alphas) {
    for (const double b : betas) {
      EXPECT_LE(best_groups,
                CountTemporalGroups(history, Params(a, b), priors));
    }
  }
}

}  // namespace
}  // namespace sld::core
