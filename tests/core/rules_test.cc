#include "core/rules/rules.h"

#include <gtest/gtest.h>

namespace sld::core {
namespace {

Augmented Msg(TimeMs t, TemplateId tmpl, std::uint32_t router = 0) {
  Augmented a;
  a.time = t;
  a.tmpl = tmpl;
  a.router_key = router;
  a.router_known = true;
  return a;
}

RuleMinerParams Params(TimeMs w = 60000, double sp = 0.01,
                       double conf = 0.8) {
  RuleMinerParams p;
  p.window_ms = w;
  p.min_support = sp;
  p.min_confidence = conf;
  return p;
}

TEST(MineCooccurrenceTest, OneTransactionPerMessage) {
  const std::vector<Augmented> stream = {Msg(0, 1), Msg(1000, 2),
                                         Msg(2000, 1)};
  const MiningStats stats = MineCooccurrence(stream, 60000);
  EXPECT_EQ(stats.transaction_count, 3u);
  EXPECT_EQ(stats.message_count, 3u);
  EXPECT_EQ(stats.item_messages.at(1), 2u);
  EXPECT_EQ(stats.item_messages.at(2), 1u);
}

TEST(MineCooccurrenceTest, WindowBoundsCooccurrence) {
  // 2 occurs 70 s after 1: outside W=60 s, no pair.
  const std::vector<Augmented> apart = {Msg(0, 1), Msg(70000, 2)};
  EXPECT_TRUE(MineCooccurrence(apart, 60000).pair_tx.empty());
  const std::vector<Augmented> close = {Msg(0, 1), Msg(50000, 2)};
  const MiningStats stats = MineCooccurrence(close, 60000);
  EXPECT_EQ(stats.pair_tx.at(MiningStats::PairKey(1, 2)), 1u);
}

TEST(MineCooccurrenceTest, TransactionsArePerRouter) {
  // Same instant on different routers: never one transaction.
  const std::vector<Augmented> stream = {Msg(0, 1, 0), Msg(10, 2, 1)};
  EXPECT_TRUE(MineCooccurrence(stream, 60000).pair_tx.empty());
}

TEST(MineCooccurrenceTest, SupportAndConfidenceMath) {
  // Build: 10 windows with A alone, 10 windows with A followed by B.
  std::vector<Augmented> stream;
  TimeMs t = 0;
  for (int i = 0; i < 10; ++i) {
    stream.push_back(Msg(t, 1));
    t += kMsPerHour;
  }
  for (int i = 0; i < 10; ++i) {
    stream.push_back(Msg(t, 1));
    stream.push_back(Msg(t + 1000, 2));
    t += kMsPerHour;
  }
  const MiningStats stats = MineCooccurrence(stream, 60000);
  // Transactions: 30 (one per message, forward window).  A appears in its
  // own 20 windows; B appears in its own 10 plus the 10 pair windows of A.
  EXPECT_EQ(stats.transaction_count, 30u);
  EXPECT_EQ(stats.item_tx.at(1), 20u);
  EXPECT_EQ(stats.item_tx.at(2), 20u);
  EXPECT_EQ(stats.pair_tx.at(MiningStats::PairKey(1, 2)), 10u);
  EXPECT_DOUBLE_EQ(stats.Confidence(1, 2), 0.5);  // 10/20
  EXPECT_DOUBLE_EQ(stats.Confidence(2, 1), 0.5);  // 10/20
  EXPECT_DOUBLE_EQ(stats.Support(1), 20.0 / 30.0);
  EXPECT_DOUBLE_EQ(stats.PairSupport(1, 2), 10.0 / 30.0);
}

TEST(ExtractRulesTest, ConfidenceUsesBestDirection) {
  // A is ALWAYS followed by B, but B also occurs alone: conf(A=>B) = 1.0
  // while conf(B=>A) = 0.5.  The max direction qualifies the rule.
  std::vector<Augmented> stream;
  TimeMs t = 0;
  for (int i = 0; i < 10; ++i) {
    stream.push_back(Msg(t, 1));
    stream.push_back(Msg(t + 1000, 2));
    t += kMsPerHour;
    stream.push_back(Msg(t, 2));  // standalone B
    t += kMsPerHour;
  }
  const MiningStats stats = MineCooccurrence(stream, 60000);
  EXPECT_DOUBLE_EQ(stats.Confidence(1, 2), 1.0);
  EXPECT_DOUBLE_EQ(stats.Confidence(2, 1), 10.0 / 30.0);
  const auto rules = ExtractRules(stats, Params());
  ASSERT_EQ(rules.size(), 1u);
  EXPECT_EQ(rules[0].a, 1u);
  EXPECT_EQ(rules[0].b, 2u);
  EXPECT_DOUBLE_EQ(rules[0].confidence, 1.0);
}

TEST(ExtractRulesTest, SupportThresholdFiltersRareItems) {
  std::vector<Augmented> stream;
  TimeMs t = 0;
  // Bulk traffic of template 9 so that (1, 2)'s support share is tiny.
  for (int i = 0; i < 998; ++i) {
    stream.push_back(Msg(t, 9));
    t += kMsPerHour;
  }
  stream.push_back(Msg(t, 1));
  stream.push_back(Msg(t + 1000, 2));
  const MiningStats stats = MineCooccurrence(stream, 60000);
  EXPECT_TRUE(ExtractRules(stats, Params(60000, 0.01, 0.5)).empty());
  EXPECT_EQ(ExtractRules(stats, Params(60000, 0.0001, 0.5)).size(), 1u);
}

TEST(ExtractRulesTest, ConfidenceThresholdFilters) {
  std::vector<Augmented> stream;
  TimeMs t = 0;
  for (int i = 0; i < 10; ++i) {
    // A and B co-occur half the time, in both directions diluted.
    stream.push_back(Msg(t, 1));
    if (i % 2 == 0) stream.push_back(Msg(t + 1000, 2));
    t += kMsPerHour;
    stream.push_back(Msg(t, 2));
    t += kMsPerHour;
  }
  const MiningStats stats = MineCooccurrence(stream, 60000);
  EXPECT_TRUE(ExtractRules(stats, Params(60000, 0.01, 0.8)).empty());
  EXPECT_FALSE(ExtractRules(stats, Params(60000, 0.01, 0.3)).empty());
}

std::vector<Augmented> CorrelatedWeek(int pairs) {
  std::vector<Augmented> stream;
  TimeMs t = 0;
  for (int i = 0; i < pairs; ++i) {
    stream.push_back(Msg(t, 1));
    stream.push_back(Msg(t + 5000, 2));
    t += kMsPerHour;
  }
  return stream;
}

std::vector<Augmented> UncorrelatedWeek(int singles) {
  std::vector<Augmented> stream;
  TimeMs t = 0;
  for (int i = 0; i < singles; ++i) {
    stream.push_back(Msg(t, 1));
    t += kMsPerHour;
    stream.push_back(Msg(t, 2));
    t += kMsPerHour;
  }
  return stream;
}

TEST(RuleBaseTest, AddsQualifyingRules) {
  RuleBase base;
  const auto result = base.Update(
      MineCooccurrence(CorrelatedWeek(20), 60000), Params());
  EXPECT_EQ(result.added, 1u);
  EXPECT_EQ(result.deleted, 0u);
  EXPECT_TRUE(base.Has(1, 2));
  EXPECT_TRUE(base.Has(2, 1));  // symmetric lookup
  EXPECT_FALSE(base.Has(1, 3));
}

TEST(RuleBaseTest, ReAddingIsNotCountedAsNew) {
  RuleBase base;
  base.Update(MineCooccurrence(CorrelatedWeek(20), 60000), Params());
  const auto again =
      base.Update(MineCooccurrence(CorrelatedWeek(20), 60000), Params());
  EXPECT_EQ(again.added, 0u);
  EXPECT_EQ(base.size(), 1u);
}

TEST(RuleBaseTest, ConservativeDeletionRequiresCounterEvidence) {
  RuleBase base;
  base.Update(MineCooccurrence(CorrelatedWeek(20), 60000), Params());
  // A week where the items never appear: rule survives (no evidence).
  std::vector<Augmented> other_week;
  for (int i = 0; i < 50; ++i) {
    other_week.push_back(Msg(i * kMsPerHour, 7));
  }
  const auto quiet =
      base.Update(MineCooccurrence(other_week, 60000), Params());
  EXPECT_EQ(quiet.deleted, 0u);
  EXPECT_TRUE(base.Has(1, 2));
  // A week where the items are common but uncorrelated: rule deleted.
  const auto contradicted = base.Update(
      MineCooccurrence(UncorrelatedWeek(25), 60000), Params());
  EXPECT_EQ(contradicted.deleted, 1u);
  EXPECT_FALSE(base.Has(1, 2));
}

TEST(RuleBaseTest, NaiveDeletionDropsOnLowSupport) {
  RuleBase conservative;
  RuleBase naive;
  const MiningStats week1 = MineCooccurrence(CorrelatedWeek(20), 60000);
  conservative.Update(week1, Params());
  naive.Update(week1, Params());
  // A week dominated by another template: items 1,2 fall below SP_min.
  std::vector<Augmented> busy;
  for (int i = 0; i < 2000; ++i) busy.push_back(Msg(i * 60000, 9));
  busy.push_back(Msg(2000 * 60000, 1));
  busy.push_back(Msg(2000 * 60000 + 5000, 2));
  const MiningStats week2 = MineCooccurrence(busy, 60000);
  conservative.Update(week2, Params(60000, 0.01, 0.8));
  naive.Update(week2, Params(60000, 0.01, 0.8), /*naive_deletion=*/true);
  EXPECT_TRUE(conservative.Has(1, 2));   // kept: confidence still holds
  EXPECT_FALSE(naive.Has(1, 2));         // dropped on support alone
}

TEST(RuleBaseTest, SerializeRoundTrip) {
  TemplateSet templates;
  const auto a = templates.Add("A-1-X", {"alpha", "*"});
  const auto b = templates.Add("B-1-Y", {"beta", "*"});
  RuleBase base;
  MiningStats stats;
  stats.transaction_count = 100;
  stats.item_tx[a] = 50;
  stats.item_tx[b] = 45;
  stats.pair_tx[MiningStats::PairKey(a, b)] = 44;
  base.Update(stats, Params(60000, 0.01, 0.8));
  ASSERT_TRUE(base.Has(a, b));
  const RuleBase restored =
      RuleBase::Deserialize(base.Serialize(templates), templates);
  EXPECT_EQ(restored.size(), 1u);
  EXPECT_TRUE(restored.Has(a, b));
  const auto rules = restored.All();
  EXPECT_NEAR(rules[0].confidence, 44.0 / 45.0, 1e-6);
}

TEST(RuleBaseTest, ExpertRulesSurviveContradiction) {
  RuleBase base;
  base.AddExpertRule(1, 2);
  EXPECT_TRUE(base.Has(1, 2));
  // A week of common-but-uncorrelated items deletes mined rules, but the
  // expert-pinned rule is exempt (Fig. 1's expert adjustment).
  const auto update = base.Update(
      MineCooccurrence(UncorrelatedWeek(25), 60000), Params());
  EXPECT_EQ(update.deleted, 0u);
  EXPECT_TRUE(base.Has(1, 2));
}

TEST(RuleBaseTest, PinningUpgradesMinedRule) {
  RuleBase base;
  base.Update(MineCooccurrence(CorrelatedWeek(20), 60000), Params());
  ASSERT_TRUE(base.Has(1, 2));
  base.AddExpertRule(1, 2);
  EXPECT_EQ(base.size(), 1u);
  base.Update(MineCooccurrence(UncorrelatedWeek(25), 60000), Params());
  EXPECT_TRUE(base.Has(1, 2));  // pin held through counter-evidence
  // Re-mining the rule must not clear the pin.
  base.Update(MineCooccurrence(CorrelatedWeek(20), 60000), Params());
  base.Update(MineCooccurrence(UncorrelatedWeek(25), 60000), Params());
  EXPECT_TRUE(base.Has(1, 2));
}

TEST(RuleBaseTest, ExpertRemovalDeletesMinedRule) {
  RuleBase base;
  base.Update(MineCooccurrence(CorrelatedWeek(20), 60000), Params());
  ASSERT_TRUE(base.Has(1, 2));
  EXPECT_TRUE(base.RemoveRule(2, 1));  // symmetric
  EXPECT_FALSE(base.Has(1, 2));
  EXPECT_FALSE(base.RemoveRule(1, 2));  // already gone
}

TEST(RuleBaseTest, ExpertFlagSurvivesSerialization) {
  TemplateSet templates;
  const auto a = templates.Add("A-1-X", {"alpha"});
  const auto b = templates.Add("B-1-Y", {"beta"});
  RuleBase base;
  base.AddExpertRule(a, b);
  const RuleBase restored =
      RuleBase::Deserialize(base.Serialize(templates), templates);
  const auto rules = restored.All();
  ASSERT_EQ(rules.size(), 1u);
  EXPECT_TRUE(rules[0].expert);
}

TEST(MiningStatsTest, EmptyStatsAreSafe) {
  MiningStats stats;
  EXPECT_DOUBLE_EQ(stats.Support(1), 0.0);
  EXPECT_DOUBLE_EQ(stats.Confidence(1, 2), 0.0);
  EXPECT_DOUBLE_EQ(stats.PairSupport(1, 2), 0.0);
  EXPECT_TRUE(ExtractRules(stats, Params()).empty());
}

TEST(MiningStatsTest, PairKeyIsSymmetric) {
  EXPECT_EQ(MiningStats::PairKey(3, 7), MiningStats::PairKey(7, 3));
  EXPECT_NE(MiningStats::PairKey(3, 7), MiningStats::PairKey(3, 8));
}

}  // namespace
}  // namespace sld::core
