#include "core/query.h"

#include <gtest/gtest.h>

#include "net/config_parser.h"

namespace sld::core {
namespace {

class QueryTest : public ::testing::Test {
 protected:
  QueryTest() {
    dict_ = LocationDict::Build({net::ParseConfig("hostname r1\n"),
                                 net::ParseConfig("hostname r2\n")});
    DigestEvent big;
    big.messages = {2, 0, 1};  // deliberately unordered
    big.start = 1000;
    big.end = 5000;
    big.score = 100;
    big.label = "link flap";
    big.router_keys = {0, 1};
    DigestEvent small;
    small.messages = {3};
    small.start = 9000;
    small.end = 9000;
    small.score = 5;
    small.label = "configuration change";
    small.router_keys = {1};
    result_.events = {big, small};
    result_.message_count = 4;

    for (int i = 0; i < 4; ++i) {
      syslog::SyslogRecord rec;
      rec.time = 1000 + 1000 * ((i * 2) % 5);  // distinct times
      rec.router = i < 3 ? "r1" : "r2";
      rec.code = "A-1-B";
      rec.detail = "msg " + std::to_string(i);
      stream_.push_back(std::move(rec));
    }
  }

  LocationDict dict_;
  DigestResult result_;
  std::vector<syslog::SyslogRecord> stream_;
};

TEST_F(QueryTest, EmptyFilterMatchesAll) {
  EXPECT_EQ(FilterEvents(result_, dict_, {}).size(), 2u);
}

TEST_F(QueryTest, TimeOverlap) {
  EventFilter f;
  f.from = 6000;
  const auto late = FilterEvents(result_, dict_, f);
  ASSERT_EQ(late.size(), 1u);
  EXPECT_EQ(late[0]->label, "configuration change");
  EventFilter g;
  g.to = 4000;
  const auto early = FilterEvents(result_, dict_, g);
  ASSERT_EQ(early.size(), 1u);
  EXPECT_EQ(early[0]->label, "link flap");
  EventFilter h;
  h.from = 2000;
  h.to = 3000;  // inside the big event's span
  EXPECT_EQ(FilterEvents(result_, dict_, h).size(), 1u);
}

TEST_F(QueryTest, LabelSubstring) {
  EventFilter f;
  f.label_contains = "flap";
  ASSERT_EQ(FilterEvents(result_, dict_, f).size(), 1u);
  f.label_contains = "nothing";
  EXPECT_TRUE(FilterEvents(result_, dict_, f).empty());
}

TEST_F(QueryTest, RouterInvolvement) {
  EventFilter f;
  f.router = "r1";
  EXPECT_EQ(FilterEvents(result_, dict_, f).size(), 1u);
  f.router = "r2";
  EXPECT_EQ(FilterEvents(result_, dict_, f).size(), 2u);
  f.router = "ghost";
  EXPECT_TRUE(FilterEvents(result_, dict_, f).empty());
}

TEST_F(QueryTest, ScoreAndSizeThresholds) {
  EventFilter f;
  f.min_score = 50;
  EXPECT_EQ(FilterEvents(result_, dict_, f).size(), 1u);
  EventFilter g;
  g.min_messages = 2;
  EXPECT_EQ(FilterEvents(result_, dict_, g).size(), 1u);
}

TEST_F(QueryTest, ConjunctionOfFilters) {
  EventFilter f;
  f.router = "r2";
  f.label_contains = "link";
  const auto got = FilterEvents(result_, dict_, f);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0]->label, "link flap");
}

TEST_F(QueryTest, EventRecordsSortedByTime) {
  const auto records = EventRecords(result_.events[0], stream_);
  ASSERT_EQ(records.size(), 3u);
  for (std::size_t i = 1; i < records.size(); ++i) {
    EXPECT_LE(records[i - 1]->time, records[i]->time);
  }
}

TEST_F(QueryTest, EventRecordsIgnoreOutOfRangeIndices) {
  DigestEvent ev;
  ev.messages = {1, 99};
  const auto records = EventRecords(ev, stream_);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0]->detail, "msg 1");
}

}  // namespace
}  // namespace sld::core
