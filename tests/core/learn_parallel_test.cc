// Serial/parallel equivalence of the offline learner: the KnowledgeBase
// produced with a thread pool must be bit-identical to the serial one at
// any thread count — templates, temporal priors, tuned α/β, association
// rules, and signature frequencies all included.  Mirrors the sharded-
// pipeline equivalence suite (pipeline_threads_test) for the offline side.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <tuple>
#include <vector>

#include "core/learn.h"
#include "net/config_parser.h"
#include "obs/registry.h"
#include "sim/generator.h"

namespace sld::core {
namespace {

// Small α/β grids so the sweep phase runs (it is the heaviest parallel
// phase) without dominating test time.
OfflineLearnerParams SweepParams() {
  OfflineLearnerParams params;
  params.sweep_temporal = true;
  params.alpha_grid = {0.05, 0.1, 0.2};
  params.beta_grid = {3, 5};
  return params;
}

// Canonical, order-independent view of a rule base.
std::vector<std::tuple<TemplateId, TemplateId, double, double, bool>>
CanonicalRules(const RuleBase& rules) {
  std::vector<std::tuple<TemplateId, TemplateId, double, double, bool>> out;
  for (const Rule& r : rules.All()) {
    out.emplace_back(r.a, r.b, r.support, r.confidence, r.expert);
  }
  std::sort(out.begin(), out.end());
  return out;
}

void ExpectIdentical(const KnowledgeBase& serial,
                     const KnowledgeBase& parallel, int threads) {
  SCOPED_TRACE("threads=" + std::to_string(threads));
  // The headline invariant: the serialized knowledge bases are equal bit
  // for bit.
  EXPECT_EQ(serial.Serialize(), parallel.Serialize());
  // And piecewise, so a divergence names the phase that caused it.
  EXPECT_EQ(serial.templates.size(), parallel.templates.size());
  EXPECT_EQ(serial.temporal_priors, parallel.temporal_priors);
  EXPECT_EQ(serial.temporal_params.alpha, parallel.temporal_params.alpha);
  EXPECT_EQ(serial.temporal_params.beta, parallel.temporal_params.beta);
  EXPECT_EQ(CanonicalRules(serial.rules), CanonicalRules(parallel.rules));
  EXPECT_EQ(serial.signature_freq, parallel.signature_freq);
  EXPECT_EQ(serial.history_message_count, parallel.history_message_count);
}

TEST(LearnParallelTest, GeneratorStreamIdenticalAcrossThreadCounts) {
  sim::DatasetSpec spec = sim::DatasetASpec();
  spec.topo.num_routers = 10;
  const sim::Dataset history = sim::GenerateDataset(spec, 0, 16, 401);
  std::vector<net::ParsedConfig> parsed;
  for (const std::string& cfg : history.configs) {
    parsed.push_back(net::ParseConfig(cfg));
  }
  const LocationDict dict = LocationDict::Build(parsed);

  OfflineLearnerParams params = SweepParams();
  RuleEvolution serial_evo;
  const KnowledgeBase serial =
      OfflineLearner(params).Learn(history.messages, dict, &serial_evo);
  ASSERT_GT(serial.templates.size(), 0u);
  ASSERT_GT(serial.rules.size(), 0u);
  // 16 learn days at a 7-day update period: multiple mined periods plus
  // a trailing partial one, so the period-order merge is exercised.
  ASSERT_GE(serial_evo.total.size(), 2u);

  for (const int threads : {4, 16}) {
    params.threads = threads;
    RuleEvolution evo;
    LearnTimings timings;
    const KnowledgeBase parallel =
        OfflineLearner(params).Learn(history.messages, dict, &evo, &timings);
    ExpectIdentical(serial, parallel, threads);
    EXPECT_EQ(serial_evo.total, evo.total);
    EXPECT_EQ(serial_evo.added, evo.added);
    EXPECT_EQ(serial_evo.deleted, evo.deleted);
    EXPECT_GT(timings.total_s, 0.0);
    EXPECT_GT(timings.templates_s, 0.0);
    EXPECT_GT(timings.params_s, 0.0);  // sweep was on
    EXPECT_EQ(timings.rule_period_s.size(), evo.total.size());
  }
}

// Hand-built pathological history: empty update periods (a gap longer
// than the period), a trailing sliver (a final period under a tenth of
// the previous one), and routers the config dictionary has never heard
// of.  The period bookkeeping and the serial fallback-minting fixup must
// still be order-identical under a pool.
TEST(LearnParallelTest, EdgeCaseHistoryIdenticalAcrossThreadCounts) {
  std::vector<syslog::SyslogRecord> history;
  const auto add = [&](TimeMs t, std::string router, std::string code,
                       std::string detail) {
    syslog::SyslogRecord rec;
    rec.time = t;
    rec.router = std::move(router);
    rec.code = std::move(code);
    rec.detail = std::move(detail);
    history.push_back(std::move(rec));
  };

  // Period 0 (days 0-7): a dense burst across known and unknown routers.
  for (int i = 0; i < 200; ++i) {
    const TimeMs t = static_cast<TimeMs>(i) * kMsPerSecond * 30;
    add(t, i % 3 == 0 ? "ghost-router" : "r" + std::to_string(i % 4),
        "LINK-3-UPDOWN",
        "Interface Serial" + std::to_string(i % 7) + "/0, changed state to " +
            (i % 2 ? "up" : "down"));
    if (i % 5 == 0) {
      add(t + 500, "r" + std::to_string(i % 4), "OSPF-5-ADJCHG",
          "Process 1, Nbr 10.0.0." + std::to_string(i % 9) +
              " on Serial0/0 from FULL to DOWN");
    }
  }
  // Periods 1-2 are empty: a 3-week silence.  Period 3 resumes.
  const TimeMs resume = 22 * kMsPerDay;
  for (int i = 0; i < 100; ++i) {
    add(resume + static_cast<TimeMs>(i) * kMsPerSecond * 60,
        "r" + std::to_string(i % 4), "ENVMON-2-FAN",
        "Fan " + std::to_string(i % 3) + " failure detected");
  }
  // Trailing sliver: 3 messages in the next period (< 100/10).
  const TimeMs tail = 29 * kMsPerDay;
  for (int i = 0; i < 3; ++i) {
    add(tail + static_cast<TimeMs>(i) * kMsPerSecond, "unknown-tail",
        "SYS-5-CONFIG_I", "Configured from console by admin");
  }

  // A dictionary built from configs that know r0..r3 but none of the
  // ghost routers in the stream.
  sim::DatasetSpec spec = sim::DatasetASpec();
  spec.topo.num_routers = 4;
  const sim::Dataset ds = sim::GenerateDataset(spec, 0, 1, 402);
  std::vector<net::ParsedConfig> parsed;
  for (const std::string& cfg : ds.configs) {
    parsed.push_back(net::ParseConfig(cfg));
  }
  const LocationDict dict = LocationDict::Build(parsed);

  OfflineLearnerParams params = SweepParams();
  params.rules.min_support = 0.001;
  RuleEvolution serial_evo;
  const KnowledgeBase serial =
      OfflineLearner(params).Learn(history, dict, &serial_evo);
  ASSERT_GT(serial.templates.size(), 0u);

  for (const int threads : {4, 16}) {
    params.threads = threads;
    RuleEvolution evo;
    const KnowledgeBase parallel =
        OfflineLearner(params).Learn(history, dict, &evo);
    ExpectIdentical(serial, parallel, threads);
    EXPECT_EQ(serial_evo.total, evo.total);
  }
}

TEST(LearnParallelTest, EmptyHistoryAtAnyThreadCount) {
  const LocationDict dict;
  for (const int threads : {1, 4}) {
    OfflineLearnerParams params;
    params.threads = threads;
    LearnTimings timings;
    const KnowledgeBase kb = OfflineLearner(params).Learn(
        std::span<const syslog::SyslogRecord>{}, dict, nullptr, &timings);
    EXPECT_EQ(kb.templates.size(), 0u);
    EXPECT_EQ(kb.rules.size(), 0u);
    EXPECT_EQ(kb.history_message_count, 0u);
    EXPECT_TRUE(timings.rule_period_s.empty());
  }
}

TEST(LearnParallelTest, PublishesPhaseGaugesWhenBound) {
  sim::DatasetSpec spec = sim::DatasetASpec();
  spec.topo.num_routers = 4;
  const sim::Dataset history = sim::GenerateDataset(spec, 0, 2, 403);
  std::vector<net::ParsedConfig> parsed;
  for (const std::string& cfg : history.configs) {
    parsed.push_back(net::ParseConfig(cfg));
  }
  const LocationDict dict = LocationDict::Build(parsed);

  OfflineLearnerParams params;
  params.threads = 2;
  OfflineLearner learner(params);
  obs::Registry registry;
  learner.BindMetrics(&registry);
  const KnowledgeBase kb = learner.Learn(history.messages, dict);
  ASSERT_GT(kb.templates.size(), 0u);

  const std::string json = registry.Collect().RenderJson();
  for (const char* phase :
       {"templates", "augment", "priors", "rules", "freq", "total"}) {
    EXPECT_NE(json.find("\"name\":\"learn_phase_duration_us\",\"type\":"
                        "\"gauge\",\"labels\":{\"phase\":\"" +
                        std::string(phase) + "\"}"),
              std::string::npos)
        << "missing phase gauge: " << phase;
  }
  EXPECT_NE(json.find("\"learn_templates\""), std::string::npos);
  EXPECT_NE(json.find("\"learn_rules\""), std::string::npos);
  EXPECT_NE(json.find("\"learn_threads\""), std::string::npos);
  EXPECT_NE(json.find("\"learn_history_messages\""), std::string::npos);
  EXPECT_NE(json.find("\"learn_rule_period_duration_us\""),
            std::string::npos);
}

}  // namespace
}  // namespace sld::core
