#include "core/digest.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/strings.h"
#include "net/config_parser.h"

namespace sld::core {
namespace {

// Fixture reproducing the paper's running example (Table 2): router r1's
// interface Serial1/0.10:0 is connected to r2's Serial1/0.20:0; the link
// flaps four times, producing 16 messages across both routers that must
// digest into exactly ONE event.
class ToyExampleTest : public ::testing::Test {
 protected:
  ToyExampleTest() {
    const char* r1 =
        "hostname r1\n"
        "interface Loopback0\n"
        " ip address 192.168.0.1 255.255.255.255\n"
        "interface Serial1/0\n"
        " description to r2 Serial1/0\n"
        " no ip address\n"
        "interface Serial1/0.10:0\n"
        " ip address 10.0.0.1 255.255.255.252\n";
    const char* r2 =
        "hostname r2\n"
        "interface Loopback0\n"
        " ip address 192.168.0.2 255.255.255.255\n"
        "interface Serial1/0\n"
        " description to r1 Serial1/0\n"
        " no ip address\n"
        "interface Serial1/0.20:0\n"
        " ip address 10.0.0.2 255.255.255.252\n";
    dict_ = LocationDict::Build({net::ParseConfig(r1),
                                 net::ParseConfig(r2)});

    // Templates t1-t4 of the paper's §3.1.
    t_link_down_ = kb_.templates.Add(
        "LINK-3-UPDOWN", Tokens("Interface * changed state to down"));
    t_link_up_ = kb_.templates.Add(
        "LINK-3-UPDOWN", Tokens("Interface * changed state to up"));
    t_proto_down_ = kb_.templates.Add(
        "LINEPROTO-5-UPDOWN",
        Tokens("Line protocol on Interface * changed state to down"));
    t_proto_up_ = kb_.templates.Add(
        "LINEPROTO-5-UPDOWN",
        Tokens("Line protocol on Interface * changed state to up"));

    // Learned rules: {t1,t2}, {t3,t4} (§3.1) plus the down/up association
    // that repeated flapping produces.
    MiningStats stats;
    stats.transaction_count = 100;
    for (const TemplateId t :
         {t_link_down_, t_link_up_, t_proto_down_, t_proto_up_}) {
      stats.item_tx[t] = 50;
    }
    const auto pair = [&](TemplateId a, TemplateId b) {
      stats.pair_tx[MiningStats::PairKey(a, b)] = 45;
    };
    pair(t_link_down_, t_proto_down_);
    pair(t_link_up_, t_proto_up_);
    pair(t_link_down_, t_link_up_);
    RuleMinerParams params;
    params.min_support = 0.01;
    params.min_confidence = 0.8;
    kb_.rules.Update(stats, params);
    kb_.rule_params.window_ms = 60 * kMsPerSecond;
  }

  static std::vector<std::string> Tokens(std::string_view text) {
    std::vector<std::string> out;
    for (const auto tok : SplitWhitespace(text)) out.emplace_back(tok);
    return out;
  }

  // Builds the 16 messages of Table 2 (10 s flap period, 1 s down time).
  std::vector<syslog::SyslogRecord> TableTwoMessages() const {
    std::vector<syslog::SyslogRecord> msgs;
    const TimeMs base = ParseTimestamp("2010-01-10 00:00:00").value();
    for (int flap = 0; flap < 4; ++flap) {
      const TimeMs t = base + flap * 10 * kMsPerSecond;
      const bool up = flap % 2 == 1;
      const char* state = up ? "up" : "down";
      msgs.push_back({t, "r1", "LINK-3-UPDOWN",
                      std::string("Interface Serial1/0.10:0, changed state "
                                  "to ") + state});
      msgs.push_back({t, "r2", "LINK-3-UPDOWN",
                      std::string("Interface Serial1/0.20:0, changed state "
                                  "to ") + state});
      msgs.push_back({t + 1000, "r1", "LINEPROTO-5-UPDOWN",
                      std::string("Line protocol on Interface "
                                  "Serial1/0.10:0, changed state to ") +
                          state});
      msgs.push_back({t + 1000, "r2", "LINEPROTO-5-UPDOWN",
                      std::string("Line protocol on Interface "
                                  "Serial1/0.20:0, changed state to ") +
                          state});
    }
    return msgs;
  }

  LocationDict dict_;
  KnowledgeBase kb_;
  TemplateId t_link_down_ = 0;
  TemplateId t_link_up_ = 0;
  TemplateId t_proto_down_ = 0;
  TemplateId t_proto_up_ = 0;
};

TEST_F(ToyExampleTest, SixteenMessagesBecomeOneEvent) {
  Digester digester(&kb_, &dict_);
  const DigestResult result = digester.Digest(TableTwoMessages());
  ASSERT_EQ(result.events.size(), 1u);
  const DigestEvent& ev = result.events[0];
  EXPECT_EQ(ev.messages.size(), 16u);
  EXPECT_EQ(FormatTimestamp(ev.start), "2010-01-10 00:00:00");
  EXPECT_EQ(FormatTimestamp(ev.end), "2010-01-10 00:00:31");
  EXPECT_EQ(ev.label, "link flap, line protocol flap");
  EXPECT_NE(ev.location_text.find("r1 Serial1/0.10:0"), std::string::npos)
      << ev.location_text;
  EXPECT_NE(ev.location_text.find("r2 Serial1/0.20:0"), std::string::npos);
  EXPECT_EQ(ev.router_keys.size(), 2u);
  EXPECT_EQ(ev.templates.size(), 4u);
}

TEST_F(ToyExampleTest, FormatMatchesPaperPresentation) {
  Digester digester(&kb_, &dict_);
  const DigestResult result = digester.Digest(TableTwoMessages());
  ASSERT_EQ(result.events.size(), 1u);
  EXPECT_EQ(result.events[0].Format(),
            "2010-01-10 00:00:00|2010-01-10 00:00:31|"
            "r1 Serial1/0.10:0; r2 Serial1/0.20:0|"
            "link flap, line protocol flap|16 messages");
}

TEST_F(ToyExampleTest, WithoutCrossRouterTwoEvents) {
  Digester digester(&kb_, &dict_);
  DigestOptions opts;
  opts.use_cross_router = false;
  const DigestResult result = digester.Digest(TableTwoMessages(), opts);
  EXPECT_EQ(result.events.size(), 2u);  // one per router
}

TEST_F(ToyExampleTest, WithoutRulesMoreEvents) {
  Digester digester(&kb_, &dict_);
  DigestOptions opts;
  opts.use_rules = false;
  opts.use_cross_router = false;
  const DigestResult result = digester.Digest(TableTwoMessages(), opts);
  // Temporal only: per (template, router) = 4 x 2 = 8 groups.
  EXPECT_EQ(result.events.size(), 8u);
}

TEST_F(ToyExampleTest, StagesOnlyEverMerge) {
  Digester digester(&kb_, &dict_);
  const auto msgs = TableTwoMessages();
  DigestOptions t_only{false, false, 1000};
  DigestOptions tr{true, false, 1000};
  DigestOptions trc{true, true, 1000};
  const std::size_t t_count = digester.Digest(msgs, t_only).events.size();
  const std::size_t tr_count = digester.Digest(msgs, tr).events.size();
  const std::size_t trc_count = digester.Digest(msgs, trc).events.size();
  EXPECT_GE(t_count, tr_count);
  EXPECT_GE(tr_count, trc_count);
}

TEST_F(ToyExampleTest, ActiveRulesCounted) {
  Digester digester(&kb_, &dict_);
  const DigestResult result = digester.Digest(TableTwoMessages());
  EXPECT_GE(result.active_rule_count, 2u);
  EXPECT_LE(result.active_rule_count, kb_.rules.size());
}

TEST_F(ToyExampleTest, UnrelatedRouterNotMerged) {
  auto msgs = TableTwoMessages();
  // A third, unconfigured router logs the same template at the same time:
  // no dictionary relationship, so it must stay a separate event.
  msgs.push_back({msgs.back().time, "r9", "LINK-3-UPDOWN",
                  "Interface Serial9/9, changed state to up"});
  std::sort(msgs.begin(), msgs.end(),
            [](const auto& a, const auto& b) { return a.time < b.time; });
  Digester digester(&kb_, &dict_);
  const DigestResult result = digester.Digest(msgs);
  EXPECT_EQ(result.events.size(), 2u);
}

TEST_F(ToyExampleTest, ScorePositiveAndOrdered) {
  Digester digester(&kb_, &dict_);
  const DigestResult result = digester.Digest(TableTwoMessages());
  for (const DigestEvent& ev : result.events) {
    EXPECT_GT(ev.score, 0.0);
  }
  for (std::size_t i = 1; i < result.events.size(); ++i) {
    EXPECT_GE(result.events[i - 1].score, result.events[i].score);
  }
}

TEST_F(ToyExampleTest, EmptyStreamYieldsNoEvents) {
  Digester digester(&kb_, &dict_);
  const DigestResult result = digester.Digest({});
  EXPECT_TRUE(result.events.empty());
  EXPECT_EQ(result.message_count, 0u);
  EXPECT_DOUBLE_EQ(result.CompressionRatio(), 0.0);
}

TEST_F(ToyExampleTest, RareSignatureOutranksFrequentOne) {
  // Two identical events except historical frequency: the rarer signature
  // must score higher (§4.2.4 "we care more about rare events").
  kb_.signature_freq.clear();
  Digester digester(&kb_, &dict_);
  auto msgs = TableTwoMessages();
  const DigestResult fresh = digester.Digest(msgs);
  ASSERT_EQ(fresh.events.size(), 1u);
  const double rare_score = fresh.events[0].score;

  // Make every signature historically common.
  for (const Template& tmpl : kb_.templates.All()) {
    for (std::uint32_t router = 0; router < 2; ++router) {
      kb_.signature_freq[KnowledgeBase::FreqKey(tmpl.id, router)] = 100000;
    }
  }
  const DigestResult seasoned = digester.Digest(msgs);
  ASSERT_EQ(seasoned.events.size(), 1u);
  EXPECT_GT(rare_score, seasoned.events[0].score);
}

}  // namespace
}  // namespace sld::core
