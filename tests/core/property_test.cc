// Property / fuzz tests: random inputs must never break invariants.
#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "core/learn.h"
#include "net/config_parser.h"
#include "sim/generator.h"
#include "syslog/archive.h"
#include "syslog/collector.h"
#include "syslog/wire.h"

namespace sld {
namespace {

std::string RandomToken(Rng& rng) {
  static const char* kAlphabet =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJ0123456789./:()-[],%*";
  const std::size_t len = 1 + rng.Index(12);
  std::string out;
  for (std::size_t i = 0; i < len; ++i) {
    out += kAlphabet[rng.Index(58)];
  }
  return out;
}

syslog::SyslogRecord RandomRecord(Rng& rng, TimeMs t) {
  syslog::SyslogRecord rec;
  rec.time = t;
  rec.router = "r" + std::to_string(rng.Index(5));
  rec.code = "F" + std::to_string(rng.Index(9)) + "-" +
             std::to_string(rng.Index(8)) + "-M" +
             std::to_string(rng.Index(9));
  const std::size_t words = 1 + rng.Index(10);
  for (std::size_t i = 0; i < words; ++i) {
    if (i > 0) rec.detail += ' ';
    rec.detail += RandomToken(rng);
  }
  return rec;
}

TEST(PropertyTest, RecordFormatParseRoundTripsRandomContent) {
  Rng rng(1);
  for (int i = 0; i < 2000; ++i) {
    const syslog::SyslogRecord rec =
        RandomRecord(rng, rng.UniformInt(0, 4102444800000LL));
    const auto parsed = syslog::ParseRecordLine(FormatRecord(rec));
    ASSERT_TRUE(parsed.has_value()) << FormatRecord(rec);
    // Detail may normalize internal whitespace-free forms exactly.
    EXPECT_EQ(parsed->time / 1000, rec.time / 1000);
    EXPECT_EQ(parsed->router, rec.router);
    EXPECT_EQ(parsed->code, rec.code);
    EXPECT_EQ(parsed->detail, rec.detail);
  }
}

TEST(PropertyTest, WireDecodeNeverCrashesOnMutatedDatagrams) {
  Rng rng(2);
  std::size_t decoded = 0;
  for (int i = 0; i < 2000; ++i) {
    syslog::SyslogRecord rec = RandomRecord(
        rng, ToTimeMs(CivilTime{2009, 1 + static_cast<int>(rng.Index(12)),
                                1 + static_cast<int>(rng.Index(28)),
                                static_cast<int>(rng.Index(24)),
                                static_cast<int>(rng.Index(60)),
                                static_cast<int>(rng.Index(60)), 0}));
    std::string wire = syslog::EncodeRfc3164(rec);
    // Mutate a few random bytes.
    const std::size_t mutations = rng.Index(4);
    for (std::size_t m = 0; m < mutations; ++m) {
      wire[rng.Index(wire.size())] =
          static_cast<char>(rng.UniformInt(32, 126));
    }
    const auto out = syslog::DecodeRfc3164(wire, 2009);
    decoded += out.has_value();
    if (mutations == 0) {
      ASSERT_TRUE(out.has_value());
      EXPECT_EQ(out->detail, rec.detail);
    }
  }
  EXPECT_GT(decoded, 500u);  // most mutations are survivable or rejected
}

TEST(PropertyTest, CollectorOutputAlwaysSortedRandomArrivalOrder) {
  Rng rng(3);
  for (int round = 0; round < 20; ++round) {
    syslog::Collector collector(5000);
    std::vector<TimeMs> times;
    TimeMs t = 0;
    for (int i = 0; i < 200; ++i) {
      t += rng.UniformInt(0, 3000);
      times.push_back(t);
    }
    // Deliver with bounded shuffling (swap nearby elements).
    std::vector<TimeMs> delivery = times;
    for (std::size_t i = 0; i + 1 < delivery.size(); ++i) {
      if (rng.Bernoulli(0.5)) std::swap(delivery[i], delivery[i + 1]);
    }
    std::vector<TimeMs> released;
    for (const TimeMs at : delivery) {
      syslog::SyslogRecord rec;
      rec.time = at;
      rec.router = "r";
      rec.code = "A-1-B";
      collector.IngestRecord(rec);
      for (const auto& out : collector.Drain()) {
        released.push_back(out.time);
      }
    }
    for (const auto& out : collector.Flush()) released.push_back(out.time);
    for (std::size_t i = 1; i < released.size(); ++i) {
      ASSERT_LE(released[i - 1], released[i]);
    }
    ASSERT_EQ(released.size() + collector.late_count(), times.size());
  }
}

TEST(PropertyTest, DigesterTotalOnRandomGarbageStream) {
  // A digester with an empty knowledge base and dictionary must still
  // partition any stream completely and without crashing.
  Rng rng(4);
  core::LocationDict dict = core::LocationDict::Build({});
  core::KnowledgeBase kb;
  std::vector<syslog::SyslogRecord> stream;
  TimeMs t = 0;
  for (int i = 0; i < 3000; ++i) {
    t += rng.UniformInt(0, 10000);
    stream.push_back(RandomRecord(rng, t));
  }
  core::Digester digester(&kb, &dict);
  const core::DigestResult result = digester.Digest(stream);
  std::size_t total = 0;
  for (const auto& ev : result.events) total += ev.messages.size();
  EXPECT_EQ(total, stream.size());
  EXPECT_GT(result.events.size(), 0u);
}

TEST(PropertyTest, ExtractorOnlyReturnsDictionaryLocations) {
  // Random text against a real dictionary: every returned location id is
  // valid and the first is always the originating router.
  sim::DatasetSpec spec = sim::DatasetASpec();
  spec.topo.num_routers = 6;
  const sim::Dataset ds = sim::GenerateDataset(spec, 0, 1, 55);
  std::vector<net::ParsedConfig> parsed;
  for (const std::string& cfg : ds.configs) {
    parsed.push_back(net::ParseConfig(cfg));
  }
  const core::LocationDict dict = core::LocationDict::Build(parsed);
  core::LocationExtractor extractor(&dict);
  Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    const std::string router = ds.topo.routers[rng.Index(6)].name;
    std::string detail;
    for (std::size_t w = 0; w < 1 + rng.Index(8); ++w) {
      if (!detail.empty()) detail += ' ';
      detail += RandomToken(rng);
    }
    const auto locs = extractor.Extract(router, detail);
    ASSERT_FALSE(locs.empty());
    for (const auto loc : locs) {
      ASSERT_LT(loc, dict.size());
    }
    EXPECT_EQ(dict.Get(locs[0]).name, router);
    // Deduplicated.
    std::set<core::LocationId> unique(locs.begin(), locs.end());
    EXPECT_EQ(unique.size(), locs.size());
  }
}

TEST(PropertyTest, KnowledgeBaseRoundTripOnLearnedState) {
  sim::DatasetSpec spec = sim::DatasetBSpec();
  spec.topo.num_routers = 8;
  const sim::Dataset ds = sim::GenerateDataset(spec, 0, 3, 66);
  std::vector<net::ParsedConfig> parsed;
  for (const std::string& cfg : ds.configs) {
    parsed.push_back(net::ParseConfig(cfg));
  }
  const core::LocationDict dict = core::LocationDict::Build(parsed);
  core::OfflineLearner learner;
  const core::KnowledgeBase kb = learner.Learn(ds.messages, dict);
  const std::string once = kb.Serialize();
  const std::string twice =
      core::KnowledgeBase::Deserialize(once).Serialize();
  EXPECT_EQ(once, twice);
}

TEST(PropertyTest, ArchiveRoundTripsGeneratedDatasets) {
  sim::DatasetSpec spec = sim::DatasetASpec();
  spec.topo.num_routers = 6;
  const sim::Dataset ds = sim::GenerateDataset(spec, 0, 1, 77);
  std::stringstream buffer;
  syslog::WriteArchive(buffer, ds.messages);
  std::size_t malformed = 0;
  const auto restored = syslog::ReadArchive(buffer, &malformed);
  EXPECT_EQ(malformed, 0u);
  ASSERT_EQ(restored.size(), ds.messages.size());
  for (std::size_t i = 0; i < restored.size(); ++i) {
    // Archive granularity is one second.
    EXPECT_EQ(restored[i].time / 1000, ds.messages[i].time / 1000);
    EXPECT_EQ(restored[i].detail, ds.messages[i].detail);
  }
}

TEST(PropertyTest, ConfigParserSurvivesMutatedConfigs) {
  sim::DatasetSpec spec = sim::DatasetASpec();
  spec.topo.num_routers = 4;
  const sim::Dataset ds = sim::GenerateDataset(spec, 0, 1, 88);
  Rng rng(9);
  std::size_t parsed_ok = 0;
  for (int round = 0; round < 300; ++round) {
    std::string cfg = ds.configs[rng.Index(ds.configs.size())];
    const std::size_t mutations = 1 + rng.Index(8);
    for (std::size_t m = 0; m < mutations; ++m) {
      switch (rng.Index(3)) {
        case 0:  // flip a byte
          cfg[rng.Index(cfg.size())] =
              static_cast<char>(rng.UniformInt(32, 126));
          break;
        case 1:  // delete a chunk
          cfg.erase(rng.Index(cfg.size()),
                    rng.Index(20) + 1);
          break;
        default:  // duplicate a chunk
          cfg.insert(rng.Index(cfg.size()),
                     cfg.substr(rng.Index(cfg.size() / 2), rng.Index(30)));
          break;
      }
    }
    try {
      const net::ParsedConfig out = net::ParseConfig(cfg);
      parsed_ok += !out.hostname.empty();
    } catch (const std::runtime_error&) {
      // Acceptable: dialect or hostname destroyed.
    }
  }
  EXPECT_GT(parsed_ok, 200u);  // most mutations keep the config parseable
}

}  // namespace
}  // namespace sld
