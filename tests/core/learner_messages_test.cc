// Cross-module property: for EVERY simulator message constructor, a
// learner trained on enough randomized instances must recover exactly the
// constructor's ground-truth template — the contract that makes §5.2.1's
// accuracy measurement meaningful.
#include <gtest/gtest.h>

#include <functional>
#include <set>

#include "common/rng.h"
#include "core/templates/learner.h"
#include "sim/messages.h"

namespace sld::core {
namespace {

using sim::BgpDownReason;
using sim::Msg;

struct Case {
  const char* name;
  std::function<Msg(Rng&)> make;
};

std::string Ip(Rng& rng) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%d.%d.%d.%d",
                static_cast<int>(rng.UniformInt(1, 223)),
                static_cast<int>(rng.UniformInt(0, 255)),
                static_cast<int>(rng.UniformInt(0, 255)),
                static_cast<int>(rng.UniformInt(1, 254)));
  return buf;
}

std::string IfName(Rng& rng) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "Serial%d/%d.%d:0",
                static_cast<int>(rng.UniformInt(0, 12)),
                static_cast<int>(rng.UniformInt(0, 7)),
                static_cast<int>(rng.UniformInt(1, 99)));
  return buf;
}

std::string Port(Rng& rng) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%d/1/%d",
                static_cast<int>(rng.UniformInt(1, 9)),
                static_cast<int>(rng.UniformInt(1, 48)));
  return buf;
}

std::string Vrf(Rng& rng) {
  return "1000:" + std::to_string(rng.UniformInt(1000, 1999));
}

std::string PathName(Rng& rng) {
  return "mpls-path-" + std::to_string(rng.UniformInt(1, 500));
}

std::string User(Rng& rng) {
  // Many distinct users so the user field masks.
  return "user" + std::to_string(rng.UniformInt(1, 500));
}

BgpDownReason Reason(Rng& rng) {
  return static_cast<BgpDownReason>(rng.UniformInt(0, 3));
}

const std::vector<Case>& Cases() {
  static const std::vector<Case> kCases = {
      {"V1LinkUpDown", [](Rng& r) {
         return sim::V1LinkUpDown(IfName(r), r.Bernoulli(0.5)); }},
      {"V1LineProtoUpDown", [](Rng& r) {
         return sim::V1LineProtoUpDown(IfName(r), r.Bernoulli(0.5)); }},
      {"V1ControllerUpDown", [](Rng& r) {
         char buf[16];
         std::snprintf(buf, sizeof(buf), "T1 %d/%d",
                       static_cast<int>(r.UniformInt(0, 12)),
                       static_cast<int>(r.UniformInt(0, 7)));
         return sim::V1ControllerUpDown(buf, r.Bernoulli(0.5)); }},
      {"V1BgpVpnAdj", [](Rng& r) {
         return sim::V1BgpVpnAdj(Ip(r), Vrf(r), r.Bernoulli(0.5),
                                 Reason(r)); }},
      {"V1BgpAdj", [](Rng& r) {
         return sim::V1BgpAdj(Ip(r), r.Bernoulli(0.5), Reason(r)); }},
      {"V1OspfAdj", [](Rng& r) {
         return sim::V1OspfAdj(Ip(r), IfName(r), r.Bernoulli(0.5)); }},
      {"V1PimNbrChange", [](Rng& r) {
         return sim::V1PimNbrChange(Ip(r), IfName(r), r.Bernoulli(0.5)); }},
      {"V1CpuRising", [](Rng& r) {
         return sim::V1CpuRising(
             static_cast<int>(r.UniformInt(80, 99)),
             static_cast<int>(r.UniformInt(0, 3)),
             static_cast<int>(r.UniformInt(2, 400)),
             static_cast<int>(r.UniformInt(40, 80)),
             static_cast<int>(r.UniformInt(2, 400)),
             static_cast<int>(r.UniformInt(3, 20)),
             static_cast<int>(r.UniformInt(2, 400)),
             static_cast<int>(r.UniformInt(1, 5))); }},
      {"V1CpuFalling", [](Rng& r) {
         return sim::V1CpuFalling(static_cast<int>(r.UniformInt(15, 40)),
                                  static_cast<int>(r.UniformInt(0, 3))); }},
      {"V1TcpBadAuth", [](Rng& r) {
         return sim::V1TcpBadAuth(
             Ip(r), static_cast<int>(r.UniformInt(1024, 65535)), Ip(r)); }},
      {"V1LoginFailed", [](Rng& r) {
         return sim::V1LoginFailed(User(r), Ip(r)); }},
      {"V1SnmpAuthFail", [](Rng& r) {
         return sim::V1SnmpAuthFail(Ip(r)); }},
      {"V1ConfigI", [](Rng& r) {
         return sim::V1ConfigI(User(r), Ip(r)); }},
      {"V1MplsTeLsp", [](Rng& r) {
         return sim::V1MplsTeLsp(PathName(r), r.Bernoulli(0.5)); }},
      {"V1NtpSync", [](Rng& r) { return sim::V1NtpSync(Ip(r)); }},
      {"V1DuplexMismatch", [](Rng& r) {
         return sim::V1DuplexMismatch(IfName(r)); }},
      {"V1FanFail", [](Rng&) { return sim::V1FanFail(); }},
      {"V1OirCard", [](Rng& r) {
         char buf[8];
         std::snprintf(buf, sizeof(buf), "%d/0",
                       static_cast<int>(r.UniformInt(0, 12)));
         return sim::V1OirCard(buf, r.Bernoulli(0.5)); }},
      {"V2LinkState", [](Rng& r) {
         return sim::V2LinkState(Port(r), r.Bernoulli(0.5)); }},
      {"V2PortState", [](Rng& r) {
         return sim::V2PortState(Port(r), r.Bernoulli(0.5)); }},
      {"V2SapPortChange", [](Rng& r) {
         return sim::V2SapPortChange(Port(r)); }},
      {"V2BgpSessionState", [](Rng& r) {
         return sim::V2BgpSessionState(Ip(r), r.Bernoulli(0.5)); }},
      {"V2PimNeighborLoss", [](Rng& r) {
         return sim::V2PimNeighborLoss(Ip(r), Port(r)); }},
      {"V2PimNeighborUp", [](Rng& r) {
         return sim::V2PimNeighborUp(Ip(r), Port(r)); }},
      {"V2LspState", [](Rng& r) {
         return sim::V2LspState(PathName(r), r.Bernoulli(0.5)); }},
      {"V2LagState", [](Rng& r) {
         return sim::V2LagState("lag-" + std::to_string(r.UniformInt(1, 99)),
                                r.Bernoulli(0.5)); }},
      {"V2CpuUsage", [](Rng& r) {
         return sim::V2CpuUsage(r.Bernoulli(0.5),
                                static_cast<int>(r.UniformInt(10, 99))); }},
      {"V2SshLoginFailed", [](Rng& r) {
         return sim::V2SshLoginFailed(User(r), Ip(r)); }},
      {"V2FtpLoginFailed", [](Rng& r) {
         return sim::V2FtpLoginFailed(User(r), Ip(r)); }},
      {"V2ServiceState", [](Rng& r) {
         return sim::V2ServiceState(
             static_cast<int>(r.UniformInt(1000, 1999)),
             r.Bernoulli(0.5)); }},
      {"V2TimeSync", [](Rng& r) { return sim::V2TimeSync(Ip(r)); }},
      {"V2SnmpAuthFail", [](Rng& r) {
         return sim::V2SnmpAuthFail(Ip(r)); }},
      {"V2ConfigChange", [](Rng& r) {
         return sim::V2ConfigChange(User(r), Ip(r)); }},
      {"V2EnvTemp", [](Rng& r) {
         return sim::V2EnvTemp(static_cast<int>(r.UniformInt(40, 99))); }},
      {"V2FanFail", [](Rng&) { return sim::V2FanFail(); }},
      {"V2OirCard", [](Rng& r) {
         char buf[8];
         std::snprintf(buf, sizeof(buf), "%d/0",
                       static_cast<int>(r.UniformInt(0, 12)));
         return sim::V2OirCard(buf, r.Bernoulli(0.5)); }},
      // Fixed variant: spreading 400 samples over 100 rare codes would
      // hit the (intended) scarce-data under-masking instead of the
      // constructor contract being tested here.
      {"RareNoiseV1", [](Rng& r) {
         return sim::RareNoise(true, 7, r.UniformInt(1, 500000)); }},
      {"RareNoiseV2", [](Rng& r) {
         return sim::RareNoise(false, 23, r.UniformInt(1, 500000)); }},
  };
  return kCases;
}

class ConstructorRecovery : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ConstructorRecovery, LearnerRecoversGroundTruthTemplate) {
  const Case& c = Cases()[GetParam()];
  Rng rng(GetParam() + 1);
  TemplateLearner learner;
  std::set<std::string> gt;
  for (int i = 0; i < 400; ++i) {
    const Msg msg = c.make(rng);
    learner.Add(msg.code, msg.detail);
    gt.insert(msg.gt_template);
  }
  const TemplateSet set = learner.Learn();
  std::set<std::string> learned;
  for (const Template& tmpl : set.All()) learned.insert(tmpl.Canonical());
  EXPECT_EQ(learned, gt) << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllConstructors, ConstructorRecovery,
    ::testing::Range<std::size_t>(0, Cases().size()),
    [](const ::testing::TestParamInfo<std::size_t>& info) {
      return Cases()[info.param].name;
    });

}  // namespace
}  // namespace sld::core
