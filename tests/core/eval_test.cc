#include "core/eval.h"

#include <gtest/gtest.h>

namespace sld::core {
namespace {

// A hand-built dataset: 6 messages, two ground-truth events (0-2 and
// 3-4), message 5 is background noise.
sim::Dataset TinyDataset() {
  sim::Dataset ds;
  for (int i = 0; i < 6; ++i) {
    syslog::SyslogRecord rec;
    rec.time = i * 1000;
    rec.router = "r1";
    rec.code = "A-1-B";
    rec.detail = "x";
    ds.messages.push_back(std::move(rec));
  }
  sim::GtEvent a;
  a.id = 0;
  a.kind = "one";
  a.message_indices = {0, 1, 2};
  sim::GtEvent b;
  b.id = 1;
  b.kind = "two";
  b.message_indices = {3, 4};
  ds.ground_truth = {a, b};
  return ds;
}

DigestResult WithEvents(std::vector<std::vector<std::size_t>> groups) {
  DigestResult result;
  result.message_count = 6;
  for (auto& g : groups) {
    DigestEvent ev;
    ev.messages = std::move(g);
    result.events.push_back(std::move(ev));
  }
  return result;
}

TEST(EvalTest, PerfectGrouping) {
  const sim::Dataset ds = TinyDataset();
  const GroupingQuality q =
      EvaluateGrouping(ds, WithEvents({{0, 1, 2}, {3, 4}, {5}}));
  EXPECT_EQ(q.gt_events, 2u);
  EXPECT_DOUBLE_EQ(q.mean_fragmentation, 1.0);
  EXPECT_DOUBLE_EQ(q.mean_purity, 1.0);
  EXPECT_DOUBLE_EQ(q.mean_completeness, 1.0);
  EXPECT_DOUBLE_EQ(q.fully_assembled_fraction, 1.0);
}

TEST(EvalTest, FragmentationCounted) {
  const sim::Dataset ds = TinyDataset();
  // Event one split across three digest events.
  const GroupingQuality q =
      EvaluateGrouping(ds, WithEvents({{0}, {1}, {2}, {3, 4}, {5}}));
  EXPECT_DOUBLE_EQ(q.mean_fragmentation, (3.0 + 1.0) / 2.0);
  EXPECT_DOUBLE_EQ(q.fully_assembled_fraction, 0.5);
  // completeness@1 of the split event is 1/3.
  EXPECT_DOUBLE_EQ(q.mean_completeness, (1.0 / 3.0 + 1.0) / 2.0);
  EXPECT_DOUBLE_EQ(q.mean_purity, 1.0);  // nothing foreign merged
}

TEST(EvalTest, PurityPenalizesForeignMerges) {
  const sim::Dataset ds = TinyDataset();
  // Both conditions merged into one digest event.
  const GroupingQuality q =
      EvaluateGrouping(ds, WithEvents({{0, 1, 2, 3, 4}, {5}}));
  EXPECT_DOUBLE_EQ(q.mean_fragmentation, 1.0);
  // For event one: 3 of 5 labeled messages are its own; for two: 2 of 5.
  EXPECT_DOUBLE_EQ(q.mean_purity, (3.0 / 5.0 + 2.0 / 5.0) / 2.0);
}

TEST(EvalTest, NoiseDoesNotHurtPurity) {
  const sim::Dataset ds = TinyDataset();
  // The noise message rides along with event two: purity unaffected
  // (noise carries no label), fragmentation unaffected.
  const GroupingQuality q =
      EvaluateGrouping(ds, WithEvents({{0, 1, 2}, {3, 4, 5}}));
  EXPECT_DOUBLE_EQ(q.mean_purity, 1.0);
  EXPECT_DOUBLE_EQ(q.mean_fragmentation, 1.0);
}

TEST(EvalTest, EmptyGroundTruthIsSafe) {
  sim::Dataset ds;
  const GroupingQuality q = EvaluateGrouping(ds, DigestResult{});
  EXPECT_EQ(q.gt_events, 0u);
}

}  // namespace
}  // namespace sld::core
