// Stability sweep: the end-to-end pipeline's headline properties must
// hold across random seeds and both datasets, not just the seeds the
// other tests happen to use.
#include <gtest/gtest.h>

#include <set>

#include "core/learn.h"
#include "net/config_parser.h"
#include "sim/generator.h"

namespace sld::core {
namespace {

struct Sweep {
  net::Vendor vendor;
  std::uint64_t seed;
};

class SeedSweepTest : public ::testing::TestWithParam<Sweep> {};

TEST_P(SeedSweepTest, PipelinePropertiesHold) {
  sim::DatasetSpec spec = GetParam().vendor == net::Vendor::kV1
                              ? sim::DatasetASpec()
                              : sim::DatasetBSpec();
  spec.topo.num_routers = 10;
  spec.topo.seed = GetParam().seed;
  const sim::Dataset history =
      sim::GenerateDataset(spec, 0, 7, GetParam().seed * 31 + 1);
  const sim::Dataset live =
      sim::GenerateDataset(spec, 7, 1, GetParam().seed * 31 + 2);

  std::vector<net::ParsedConfig> parsed;
  for (const std::string& cfg : history.configs) {
    parsed.push_back(net::ParseConfig(cfg));
  }
  const LocationDict dict = LocationDict::Build(parsed);
  OfflineLearner learner;
  KnowledgeBase kb = learner.Learn(history.messages, dict);

  // Rules were learned...
  EXPECT_GT(kb.rules.size(), 5u);
  // ...templates recover the well-sampled ground truth...
  std::set<std::string> learned;
  for (const Template& tmpl : kb.templates.All()) {
    learned.insert(tmpl.Canonical());
  }
  std::size_t recovered = 0;
  std::size_t total = 0;
  for (const auto& [gt, count] : history.gt_templates) {
    if (count < 10) continue;
    ++total;
    recovered += learned.count(gt);
  }
  ASSERT_GT(total, 0u);
  EXPECT_GE(static_cast<double>(recovered) / static_cast<double>(total),
            0.85);

  // ...and the digest compresses by well over an order of magnitude while
  // partitioning every message exactly once.
  Digester digester(&kb, &dict);
  const DigestResult result = digester.Digest(live.messages);
  EXPECT_LT(result.CompressionRatio(), 0.06);
  std::size_t covered = 0;
  for (const DigestEvent& ev : result.events) covered += ev.messages.size();
  EXPECT_EQ(covered, live.messages.size());
  EXPECT_GT(result.active_rule_count, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, SeedSweepTest,
    ::testing::Values(Sweep{net::Vendor::kV1, 3}, Sweep{net::Vendor::kV1, 17},
                      Sweep{net::Vendor::kV1, 59}, Sweep{net::Vendor::kV2, 5},
                      Sweep{net::Vendor::kV2, 23},
                      Sweep{net::Vendor::kV2, 71}),
    [](const ::testing::TestParamInfo<Sweep>& info) {
      return std::string(info.param.vendor == net::Vendor::kV1 ? "A" : "B") +
             "_seed" + std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace sld::core
