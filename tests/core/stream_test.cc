#include "core/stream.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "core/learn.h"
#include "net/config_parser.h"
#include "sim/generator.h"

namespace sld::core {
namespace {

// Shared fixture: a learned pipeline over a small dataset A network.
struct Ctx {
  Ctx() {
    sim::DatasetSpec spec = sim::DatasetASpec();
    spec.topo.num_routers = 10;
    history = sim::GenerateDataset(spec, 0, 7, 301);
    live = sim::GenerateDataset(spec, 7, 1, 302);
    std::vector<net::ParsedConfig> parsed;
    for (const std::string& cfg : history.configs) {
      parsed.push_back(net::ParseConfig(cfg));
    }
    dict = LocationDict::Build(parsed);
    OfflineLearner learner;
    kb = learner.Learn(history.messages, dict);
  }
  sim::Dataset history;
  sim::Dataset live;
  LocationDict dict;
  KnowledgeBase kb;
};

Ctx& Shared() {
  static Ctx ctx;
  return ctx;
}

// Canonical form of a partition: sorted list of sorted message-index sets.
std::set<std::vector<std::size_t>> Partition(
    std::vector<DigestEvent> events) {
  std::set<std::vector<std::size_t>> out;
  for (DigestEvent& ev : events) {
    std::sort(ev.messages.begin(), ev.messages.end());
    out.insert(ev.messages);
  }
  return out;
}

TEST(StreamTest, MatchesBatchPartitionWithUnboundedHorizon) {
  Ctx& ctx = Shared();
  Digester batch(&ctx.kb, &ctx.dict);
  const DigestResult expected = batch.Digest(ctx.live.messages);

  StreamingDigester stream(&ctx.kb, &ctx.dict, DigestOptions{},
                           /*idle_close_ms=*/INT64_MAX / 4,
                           /*max_group_age_ms=*/INT64_MAX / 4);
  std::vector<DigestEvent> events;
  for (const auto& rec : ctx.live.messages) {
    for (auto& ev : stream.Push(rec)) events.push_back(std::move(ev));
  }
  for (auto& ev : stream.Flush()) events.push_back(std::move(ev));

  EXPECT_EQ(Partition(std::move(events)),
            Partition(std::move(const_cast<DigestResult&>(expected).events)));
}

TEST(StreamTest, DefaultHorizonMatchesBatchOnThisWorkload) {
  // S_max + W is enough look-back for these scenarios, so the default
  // horizon also reproduces the batch partition.
  Ctx& ctx = Shared();
  Digester batch(&ctx.kb, &ctx.dict);
  const DigestResult expected = batch.Digest(ctx.live.messages);

  StreamingDigester stream(&ctx.kb, &ctx.dict, DigestOptions{},
                           /*idle_close_ms=*/0,
                           /*max_group_age_ms=*/INT64_MAX / 4);
  std::size_t streamed_events = 0;
  std::size_t streamed_msgs = 0;
  for (const auto& rec : ctx.live.messages) {
    for (const auto& ev : stream.Push(rec)) {
      ++streamed_events;
      streamed_msgs += ev.messages.size();
    }
  }
  for (const auto& ev : stream.Flush()) {
    ++streamed_events;
    streamed_msgs += ev.messages.size();
  }
  EXPECT_EQ(streamed_events, expected.events.size());
  EXPECT_EQ(streamed_msgs, ctx.live.messages.size());
}

TEST(StreamTest, EventsCloseAfterIdleHorizon) {
  Ctx& ctx = Shared();
  StreamingDigester stream(&ctx.kb, &ctx.dict, DigestOptions{},
                           /*idle_close_ms=*/5 * kMsPerMinute);
  syslog::SyslogRecord rec = ctx.live.messages.front();
  EXPECT_TRUE(stream.Push(rec).empty());
  // Ten minutes of silence, then an unrelated message: the first group
  // must close.
  syslog::SyslogRecord later = rec;
  later.time += 10 * kMsPerMinute;
  later.code = "OTHER-5-THING";
  later.detail = "something else entirely";
  const auto closed = stream.Push(later);
  ASSERT_EQ(closed.size(), 1u);
  EXPECT_EQ(closed[0].messages.size(), 1u);
  EXPECT_EQ(stream.open_group_count(), 1u);
}

TEST(StreamTest, MemoryStaysBoundedOverLongStreams) {
  Ctx& ctx = Shared();
  StreamingDigester stream(&ctx.kb, &ctx.dict, DigestOptions{},
                           /*idle_close_ms=*/10 * kMsPerMinute,
                           /*max_group_age_ms=*/kMsPerHour);
  // One message per minute for a simulated week — a never-ending periodic
  // train.  The max-age bound chops it into hourly events, keeping open
  // state far below the input size.
  syslog::SyslogRecord rec = ctx.live.messages.front();
  std::size_t emitted = 0;
  for (int i = 0; i < 7 * 24 * 60; ++i) {
    rec.time += kMsPerMinute;
    rec.detail = "Interface Serial0/0, changed state to down";
    emitted += stream.Push(rec).size();
  }

  EXPECT_LT(stream.open_message_count(), 200u);
  EXPECT_GT(emitted, 100u);
  EXPECT_LT(stream.open_group_count(), 100u);
  EXPECT_EQ(stream.processed_count(), 7u * 24 * 60);
}

TEST(StreamTest, FlushIsIdempotent) {
  Ctx& ctx = Shared();
  StreamingDigester stream(&ctx.kb, &ctx.dict);
  stream.Push(ctx.live.messages.front());
  EXPECT_EQ(stream.Flush().size(), 1u);
  EXPECT_TRUE(stream.Flush().empty());
  EXPECT_EQ(stream.open_group_count(), 0u);
}

TEST(StreamTest, ActiveRulesTracked) {
  Ctx& ctx = Shared();
  StreamingDigester stream(&ctx.kb, &ctx.dict);
  for (const auto& rec : ctx.live.messages) stream.Push(rec);
  stream.Flush();
  EXPECT_GT(stream.active_rule_count(), 0u);
  EXPECT_LE(stream.active_rule_count(), ctx.kb.rules.size());
}

TEST(StreamTest, ClosedEventsAreTimeOrderedWithinSweep) {
  Ctx& ctx = Shared();
  StreamingDigester stream(&ctx.kb, &ctx.dict, DigestOptions{},
                           /*idle_close_ms=*/kMsPerMinute);
  std::vector<DigestEvent> events;
  for (const auto& rec : ctx.live.messages) {
    auto closed = stream.Push(rec);
    for (std::size_t i = 1; i < closed.size(); ++i) {
      EXPECT_LE(closed[i - 1].start, closed[i].start);
    }
    for (auto& ev : closed) events.push_back(std::move(ev));
  }
  for (auto& ev : stream.Flush()) events.push_back(std::move(ev));
  // Everything pushed was eventually emitted exactly once.
  std::size_t total = 0;
  for (const auto& ev : events) total += ev.messages.size();
  EXPECT_EQ(total, ctx.live.messages.size());
}

}  // namespace
}  // namespace sld::core
