// End-to-end: simulator -> configs -> offline learning -> online digest.
// These are the system-level invariants the evaluation section rests on.
#include <gtest/gtest.h>

#include <set>

#include "core/learn.h"
#include "net/config_parser.h"
#include "sim/generator.h"

namespace sld::core {
namespace {

struct Pipeline {
  explicit Pipeline(const sim::DatasetSpec& spec, int learn_days = 14,
                    int online_days = 2) {
    history = sim::GenerateDataset(spec, 0, learn_days, 101);
    live = sim::GenerateDataset(spec, learn_days, online_days, 202);
    std::vector<net::ParsedConfig> parsed;
    for (const std::string& cfg : history.configs) {
      parsed.push_back(net::ParseConfig(cfg));
    }
    dict = LocationDict::Build(parsed);
    OfflineLearner learner;
    kb = learner.Learn(history.messages, dict);
  }

  sim::Dataset history;
  sim::Dataset live;
  LocationDict dict;
  KnowledgeBase kb;
};

sim::DatasetSpec Small(net::Vendor vendor) {
  sim::DatasetSpec spec = vendor == net::Vendor::kV1 ? sim::DatasetASpec()
                                                     : sim::DatasetBSpec();
  spec.topo.num_routers = 12;
  return spec;
}

class PipelineTest : public ::testing::TestWithParam<net::Vendor> {
 protected:
  PipelineTest() : p_(Small(GetParam())) {}
  Pipeline p_;
};

TEST_P(PipelineTest, TemplateAccuracyAtLeastNinetyPercent) {
  std::set<std::string> learned;
  for (const Template& tmpl : p_.kb.templates.All()) {
    learned.insert(tmpl.Canonical());
  }
  // Scored over templates with enough history to learn from (>= 10
  // occurrences), matching the paper's "given enough historical data"
  // assumption in §4.1.1.
  std::size_t recovered = 0;
  std::size_t total = 0;
  for (const auto& [gt, count] : p_.history.gt_templates) {
    if (count < 10) continue;
    ++total;
    recovered += learned.count(gt);
  }
  ASSERT_GT(total, 0u);
  const double accuracy =
      static_cast<double>(recovered) / static_cast<double>(total);
  EXPECT_GE(accuracy, 0.9) << recovered << "/" << total;
}

TEST_P(PipelineTest, StagesCompoundCompression) {
  Digester digester(&p_.kb, &p_.dict);
  const DigestOptions t_only{false, false, 1000};
  const DigestOptions tr{true, false, 1000};
  const DigestOptions trc{true, true, 1000};
  const std::size_t t = digester.Digest(p_.live.messages, t_only)
                            .events.size();
  const std::size_t t_r = digester.Digest(p_.live.messages, tr)
                              .events.size();
  const std::size_t t_r_c = digester.Digest(p_.live.messages, trc)
                                .events.size();
  EXPECT_GT(t, t_r);
  EXPECT_GE(t_r, t_r_c);
  // The full pipeline must compress by well over an order of magnitude.
  EXPECT_LT(static_cast<double>(t_r_c) /
                static_cast<double>(p_.live.messages.size()),
            0.05);
}

TEST_P(PipelineTest, EveryMessageLandsInExactlyOneEvent) {
  Digester digester(&p_.kb, &p_.dict);
  const DigestResult result = digester.Digest(p_.live.messages);
  std::vector<bool> seen(p_.live.messages.size(), false);
  for (const DigestEvent& ev : result.events) {
    for (const std::size_t idx : ev.messages) {
      ASSERT_LT(idx, seen.size());
      EXPECT_FALSE(seen[idx]);
      seen[idx] = true;
    }
  }
  for (const bool s : seen) EXPECT_TRUE(s);
}

TEST_P(PipelineTest, EventTimeRangesCoverTheirMessages) {
  Digester digester(&p_.kb, &p_.dict);
  const DigestResult result = digester.Digest(p_.live.messages);
  for (const DigestEvent& ev : result.events) {
    EXPECT_LE(ev.start, ev.end);
    for (const std::size_t idx : ev.messages) {
      EXPECT_GE(p_.live.messages[idx].time, ev.start);
      EXPECT_LE(p_.live.messages[idx].time, ev.end);
    }
    EXPECT_FALSE(ev.label.empty());
    EXPECT_FALSE(ev.location_text.empty());
    EXPECT_GT(ev.score, 0.0);
  }
}

TEST_P(PipelineTest, DigestIsDeterministic) {
  Digester d1(&p_.kb, &p_.dict);
  const DigestResult a = d1.Digest(p_.live.messages);
  const DigestResult b = d1.Digest(p_.live.messages);
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].messages, b.events[i].messages);
    EXPECT_EQ(a.events[i].label, b.events[i].label);
  }
}

TEST_P(PipelineTest, GroundTruthEventsRarelyFragment) {
  Digester digester(&p_.kb, &p_.dict);
  const DigestResult result = digester.Digest(p_.live.messages);
  std::vector<int> event_of(p_.live.messages.size(), -1);
  for (std::size_t e = 0; e < result.events.size(); ++e) {
    for (const std::size_t m : result.events[e].messages) {
      event_of[m] = static_cast<int>(e);
    }
  }
  std::size_t total_groups = 0;
  std::size_t total_events = 0;
  for (const sim::GtEvent& gt : p_.live.ground_truth) {
    std::set<int> groups;
    for (const std::size_t m : gt.message_indices) {
      groups.insert(event_of[m]);
    }
    total_groups += groups.size();
    ++total_events;
  }
  // On average a ground-truth network condition maps to at most ~3 digest
  // events (down phase / up phase can split; wholesale shattering fails).
  EXPECT_LT(static_cast<double>(total_groups) /
                static_cast<double>(total_events),
            3.0);
}

TEST_P(PipelineTest, KnowledgeBaseSurvivesSerialization) {
  const std::string blob = p_.kb.Serialize();
  KnowledgeBase restored = KnowledgeBase::Deserialize(blob);
  Digester original(&p_.kb, &p_.dict);
  Digester reloaded(&restored, &p_.dict);
  const DigestResult a = original.Digest(p_.live.messages);
  const DigestResult b = reloaded.Digest(p_.live.messages);
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].messages, b.events[i].messages);
  }
}

TEST_P(PipelineTest, ActiveRulesBoundedByRuleBase) {
  Digester digester(&p_.kb, &p_.dict);
  const DigestResult result = digester.Digest(p_.live.messages);
  EXPECT_GT(p_.kb.rules.size(), 0u);
  EXPECT_LE(result.active_rule_count, p_.kb.rules.size());
  EXPECT_GT(result.active_rule_count, 0u);
}

INSTANTIATE_TEST_SUITE_P(BothDatasets, PipelineTest,
                         ::testing::Values(net::Vendor::kV1,
                                           net::Vendor::kV2));

TEST(RuleEvolutionTest, WeeklyUpdatesStabilize) {
  sim::DatasetSpec spec = Small(net::Vendor::kV1);
  const sim::Dataset history = sim::GenerateDataset(spec, 0, 56, 7);
  std::vector<net::ParsedConfig> parsed;
  for (const std::string& cfg : history.configs) {
    parsed.push_back(net::ParseConfig(cfg));
  }
  const LocationDict dict = LocationDict::Build(parsed);
  OfflineLearner learner;
  RuleEvolution evolution;
  (void)learner.Learn(history.messages, dict, &evolution);
  // 8 weekly updates (long-running scenarios may spill into a 9th).
  ASSERT_GE(evolution.total.size(), 8u);
  ASSERT_LE(evolution.total.size(), 9u);
  // Later weeks churn less than the start (stabilization): compare the
  // mean churn of the first three updates (dominated by initial learning)
  // with the mean of the last three.
  const auto churn = [&](std::size_t i) {
    return evolution.added[i] + evolution.deleted[i];
  };
  const std::size_t n = evolution.total.size();
  const double early = static_cast<double>(churn(0) + churn(1) + churn(2));
  const double late =
      static_cast<double>(churn(n - 3) + churn(n - 2) + churn(n - 1));
  EXPECT_LE(late, early);
  EXPECT_GT(evolution.total.back(), 0u);
}

TEST(OfflineLearnerTest, TemporalSweepPicksFromGrid) {
  sim::DatasetSpec spec = Small(net::Vendor::kV1);
  const sim::Dataset history = sim::GenerateDataset(spec, 0, 3, 7);
  std::vector<net::ParsedConfig> parsed;
  for (const std::string& cfg : history.configs) {
    parsed.push_back(net::ParseConfig(cfg));
  }
  const LocationDict dict = LocationDict::Build(parsed);
  OfflineLearnerParams params;
  params.sweep_temporal = true;
  params.alpha_grid = {0.05, 0.2};
  params.beta_grid = {2, 5};
  OfflineLearner learner(params);
  const KnowledgeBase kb = learner.Learn(history.messages, dict);
  EXPECT_TRUE(kb.temporal_params.alpha == 0.05 ||
              kb.temporal_params.alpha == 0.2);
  EXPECT_TRUE(kb.temporal_params.beta == 2 || kb.temporal_params.beta == 5);
  EXPECT_FALSE(kb.temporal_priors.empty());
}

TEST(OfflineLearnerTest, SignatureFrequenciesSumToHistory) {
  sim::DatasetSpec spec = Small(net::Vendor::kV2);
  const sim::Dataset history = sim::GenerateDataset(spec, 0, 2, 7);
  std::vector<net::ParsedConfig> parsed;
  for (const std::string& cfg : history.configs) {
    parsed.push_back(net::ParseConfig(cfg));
  }
  const LocationDict dict = LocationDict::Build(parsed);
  OfflineLearner learner;
  const KnowledgeBase kb = learner.Learn(history.messages, dict);
  std::uint64_t total = 0;
  for (const auto& [key, count] : kb.signature_freq) {
    (void)key;
    total += count;
  }
  EXPECT_EQ(total, history.messages.size());
  EXPECT_EQ(kb.history_message_count, history.messages.size());
}

}  // namespace
}  // namespace sld::core
