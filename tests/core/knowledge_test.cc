#include "core/knowledge.h"

#include <gtest/gtest.h>

namespace sld::core {
namespace {

KnowledgeBase Sample() {
  KnowledgeBase kb;
  const auto a = kb.templates.Add(
      "LINK-3-UPDOWN", {"Interface", "*", "changed", "state", "to", "down"});
  const auto b = kb.templates.Add(
      "LINEPROTO-5-UPDOWN",
      {"Line", "protocol", "on", "Interface", "*", "changed", "state", "to",
       "down"});
  kb.temporal_priors[a] = 12345.5;
  kb.temporal_priors[b] = 60000.0;
  kb.temporal_params.alpha = 0.075;
  kb.temporal_params.beta = 5;
  kb.temporal_params.smin = 1000;
  kb.temporal_params.smax = 3 * kMsPerHour;
  kb.rule_params.window_ms = 120000;
  kb.rule_params.min_support = 0.0005;
  kb.rule_params.min_confidence = 0.8;
  MiningStats stats;
  stats.transaction_count = 1000;
  stats.item_tx[a] = 100;
  stats.item_tx[b] = 90;
  stats.pair_tx[MiningStats::PairKey(a, b)] = 85;
  kb.rules.Update(stats, kb.rule_params);
  kb.label_rules.push_back({"LINK-3", "circuit", true});
  kb.label_rules.push_back({"FANCY", "special widget", false});
  kb.signature_freq[KnowledgeBase::FreqKey(a, 0)] = 42;
  kb.signature_freq[KnowledgeBase::FreqKey(b, 3)] = 7;
  kb.history_message_count = 123456;
  return kb;
}

TEST(KnowledgeTest, SerializeRoundTrip) {
  const KnowledgeBase kb = Sample();
  const KnowledgeBase restored = KnowledgeBase::Deserialize(kb.Serialize());

  EXPECT_EQ(restored.templates.size(), kb.templates.size());
  for (const Template& tmpl : kb.templates.All()) {
    EXPECT_EQ(restored.templates.Get(tmpl.id).Canonical(),
              tmpl.Canonical());
  }
  EXPECT_DOUBLE_EQ(restored.temporal_params.alpha, 0.075);
  EXPECT_DOUBLE_EQ(restored.temporal_params.beta, 5);
  EXPECT_EQ(restored.temporal_params.smin, 1000);
  EXPECT_EQ(restored.temporal_params.smax, 3 * kMsPerHour);
  EXPECT_EQ(restored.rule_params.window_ms, 120000);
  EXPECT_DOUBLE_EQ(restored.rule_params.min_support, 0.0005);
  EXPECT_DOUBLE_EQ(restored.rule_params.min_confidence, 0.8);
  EXPECT_EQ(restored.history_message_count, 123456u);

  ASSERT_EQ(restored.temporal_priors.size(), 2u);
  EXPECT_DOUBLE_EQ(restored.temporal_priors.at(0), 12345.5);

  EXPECT_EQ(restored.rules.size(), 1u);
  EXPECT_TRUE(restored.rules.Has(0, 1));

  ASSERT_EQ(restored.label_rules.size(), 2u);
  EXPECT_EQ(restored.label_rules[0].code_marker, "LINK-3");
  EXPECT_EQ(restored.label_rules[0].noun, "circuit");
  EXPECT_TRUE(restored.label_rules[0].flappable);
  EXPECT_FALSE(restored.label_rules[1].flappable);

  EXPECT_EQ(restored.FrequencyOf(0, 0), 42u);
  EXPECT_EQ(restored.FrequencyOf(1, 3), 7u);
  EXPECT_EQ(restored.FrequencyOf(1, 9), 0u);
}

TEST(KnowledgeTest, SecondRoundTripIsIdentical) {
  const KnowledgeBase kb = Sample();
  const std::string once = kb.Serialize();
  const std::string twice = KnowledgeBase::Deserialize(once).Serialize();
  EXPECT_EQ(once, twice);
}

TEST(KnowledgeTest, DeserializeEmptyIsEmpty) {
  const KnowledgeBase kb = KnowledgeBase::Deserialize("");
  EXPECT_EQ(kb.templates.size(), 0u);
  EXPECT_EQ(kb.rules.size(), 0u);
  EXPECT_TRUE(kb.signature_freq.empty());
}

TEST(KnowledgeTest, DeserializeIgnoresGarbageLines) {
  const KnowledgeBase kb = KnowledgeBase::Deserialize(
      "garbage\nP not enough\nI x y\nF 1\n\nT broken-no-tab\n");
  EXPECT_EQ(kb.templates.size(), 0u);
}

TEST(KnowledgeTest, FreqKeyPacksBothHalves) {
  EXPECT_NE(KnowledgeBase::FreqKey(1, 2), KnowledgeBase::FreqKey(2, 1));
  EXPECT_EQ(KnowledgeBase::FreqKey(1, 2) >> 32, 1u);
  EXPECT_EQ(KnowledgeBase::FreqKey(1, 2) & 0xffffffffu, 2u);
}

}  // namespace
}  // namespace sld::core
