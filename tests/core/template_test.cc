#include "core/templates/template.h"

#include <gtest/gtest.h>

#include "common/strings.h"

namespace sld::core {
namespace {

std::vector<std::string> Tokens(std::string_view text) {
  std::vector<std::string> out;
  for (const auto tok : SplitWhitespace(text)) out.emplace_back(tok);
  return out;
}

TEST(TemplateTest, CanonicalJoinsCodeAndTokens) {
  Template tmpl;
  tmpl.code = "LINK-3-UPDOWN";
  tmpl.tokens = Tokens("Interface * changed state to down");
  tmpl.RecomputeFixedCount();
  EXPECT_EQ(tmpl.Canonical(),
            "LINK-3-UPDOWN Interface * changed state to down");
  EXPECT_EQ(tmpl.FixedCount(), 5u);
}

TEST(TemplateTest, FixedCountIsCachedBySet) {
  TemplateSet set;
  const auto id = set.Add("C", Tokens("a * c *"));
  EXPECT_EQ(set.Get(id).FixedCount(), 2u);
}

TEST(TemplateTest, MatchesRespectsMaskAndLength) {
  Template tmpl;
  tmpl.code = "X";
  tmpl.tokens = Tokens("a * c");
  EXPECT_TRUE(tmpl.Matches(SplitWhitespace("a anything c")));
  EXPECT_FALSE(tmpl.Matches(SplitWhitespace("a anything d")));
  EXPECT_FALSE(tmpl.Matches(SplitWhitespace("a c")));
  EXPECT_FALSE(tmpl.Matches(SplitWhitespace("a x c d")));
}

TEST(TemplateSetTest, AddDeduplicatesByCanonical) {
  TemplateSet set;
  const auto a = set.Add("C", Tokens("x * z"));
  const auto b = set.Add("C", Tokens("x * z"));
  EXPECT_EQ(a, b);
  EXPECT_EQ(set.size(), 1u);
}

TEST(TemplateSetTest, MatchPicksMostSpecific) {
  TemplateSet set;
  const auto generic = set.Add("BGP-5-ADJCHANGE", Tokens("neighbor * *"));
  const auto specific = set.Add("BGP-5-ADJCHANGE", Tokens("neighbor * Up"));
  const auto up = set.Match("BGP-5-ADJCHANGE", "neighbor 10.0.0.1 Up");
  ASSERT_TRUE(up.has_value());
  EXPECT_EQ(*up, specific);
  const auto other = set.Match("BGP-5-ADJCHANGE", "neighbor 10.0.0.1 Down");
  ASSERT_TRUE(other.has_value());
  EXPECT_EQ(*other, generic);
}

TEST(TemplateSetTest, MatchRequiresSameCodeAndLength) {
  TemplateSet set;
  set.Add("A", Tokens("x y"));
  EXPECT_FALSE(set.Match("B", "x y").has_value());
  EXPECT_FALSE(set.Match("A", "x y z").has_value());
  EXPECT_TRUE(set.Match("A", "x y").has_value());
}

TEST(TemplateSetTest, FallbackCreatesCatchAll) {
  TemplateSet set;
  const auto id = set.MatchOrFallback("NEW-1-CODE", "some detail text");
  EXPECT_EQ(set.Get(id).Canonical(), "NEW-1-CODE * * *");
  // Second unseen message of the same shape reuses the same fallback.
  const auto again = set.MatchOrFallback("NEW-1-CODE", "other words here");
  EXPECT_EQ(id, again);
  EXPECT_EQ(set.size(), 1u);
}

TEST(TemplateSetTest, FallbackDoesNotShadowLearnedTemplates) {
  TemplateSet set;
  const auto learned = set.Add("C", Tokens("fixed * words"));
  const auto matched = set.MatchOrFallback("C", "fixed anything words");
  EXPECT_EQ(matched, learned);
}

TEST(TemplateSetTest, SerializeRoundTrip) {
  TemplateSet set;
  set.Add("LINK-3-UPDOWN", Tokens("Interface * changed state to down"));
  set.Add("BGP-5-ADJCHANGE", Tokens("neighbor * vpn vrf * Up"));
  set.Add("SYS-1-CPURISINGTHRESHOLD", Tokens("Threshold: * *"));
  const TemplateSet restored = TemplateSet::Deserialize(set.Serialize());
  ASSERT_EQ(restored.size(), set.size());
  for (const Template& tmpl : set.All()) {
    // Ids are assigned in order, so they must agree too.
    EXPECT_EQ(restored.Get(tmpl.id).Canonical(), tmpl.Canonical());
  }
}

TEST(TemplateSetTest, EmptyDetailMessagesSupported) {
  TemplateSet set;
  const auto id = set.Add("SYS-5-RESTART", {});
  EXPECT_EQ(set.Get(id).Canonical(), "SYS-5-RESTART");
  EXPECT_EQ(set.Match("SYS-5-RESTART", "").value(), id);
  EXPECT_FALSE(set.Match("SYS-5-RESTART", "unexpected words").has_value());
}

TEST(TemplateSetTest, EmptySetMatchesNothing) {
  TemplateSet set;
  EXPECT_FALSE(set.Match("X", "anything").has_value());
  EXPECT_EQ(TemplateSet::Deserialize("").size(), 0u);
}

TEST(TemplateSetTest, PreSplitMatchAgreesWithStringMatch) {
  TemplateSet set;
  set.Add("BGP-5-ADJCHANGE", Tokens("neighbor * *"));
  set.Add("BGP-5-ADJCHANGE", Tokens("neighbor * Up"));
  set.Add("LINK-3-UPDOWN", Tokens("Interface * changed state to down"));
  const std::vector<std::pair<std::string_view, std::string_view>> probes = {
      {"BGP-5-ADJCHANGE", "neighbor 10.0.0.1 Up"},
      {"BGP-5-ADJCHANGE", "neighbor 10.0.0.1 Down"},
      {"BGP-5-ADJCHANGE", "neighbor extra words here now"},
      {"LINK-3-UPDOWN", "Interface Serial1/0 changed state to down"},
      {"NOPE-1-X", "anything at all"},
      {"LINK-3-UPDOWN", ""},
  };
  std::vector<std::string_view> scratch;
  for (const auto& [code, detail] : probes) {
    SplitWhitespace(detail, &scratch);
    EXPECT_EQ(set.Match(code, scratch), set.Match(code, detail))
        << code << " " << detail;
  }
}

TEST(TemplateSetTest, ScratchMatchOrFallbackReusesOneSplit) {
  TemplateSet set;
  const auto learned = set.Add("C", Tokens("fixed * words"));
  std::vector<std::string_view> scratch;
  EXPECT_EQ(set.MatchOrFallback("C", "fixed anything words", &scratch),
            learned);
  EXPECT_EQ(scratch.size(), 3u);  // the split is left for the caller
  const auto fallback = set.MatchOrFallback("NEW-1-X", "a b c d", &scratch);
  EXPECT_EQ(set.Get(fallback).Canonical(), "NEW-1-X * * * *");
  // Same shape again: the fallback is found by match, not re-added.
  EXPECT_EQ(set.MatchOrFallback("NEW-1-X", "w x y z", &scratch), fallback);
  EXPECT_EQ(set.size(), 2u);
}

TEST(TemplateSetTest, EpochBumpsOnlyOnStructuralInsertions) {
  TemplateSet set;
  const auto e0 = set.epoch();
  set.Add("C", Tokens("x * z"));
  const auto e1 = set.epoch();
  EXPECT_GT(e1, e0);
  // Duplicate canonical form: no insertion, no epoch change.
  set.Add("C", Tokens("x * z"));
  EXPECT_EQ(set.epoch(), e1);
  // A matched message adds nothing.
  set.MatchOrFallback("C", "x anything z");
  EXPECT_EQ(set.epoch(), e1);
  // A catch-all insertion bumps it.
  set.MatchOrFallback("NEW-1-X", "a b");
  EXPECT_GT(set.epoch(), e1);
}

}  // namespace
}  // namespace sld::core
