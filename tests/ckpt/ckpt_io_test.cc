// Unit tests for the checkpoint I/O layer: the byte codec, the
// crash-consistent snapshot file protocol, and the durable event log's
// torn-tail recovery (src/ckpt/).
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "ckpt/codec.h"
#include "ckpt/event_codec.h"
#include "ckpt/eventlog.h"
#include "ckpt/snapshot.h"
#include "core/digest.h"

namespace sld::ckpt {
namespace {

class TempDir {
 public:
  TempDir() {
    path_ = std::filesystem::temp_directory_path() /
            ("sld_ckpt_test_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter_++));
    std::filesystem::create_directories(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  std::string file(const std::string& name) const {
    return (path_ / name).string();
  }

 private:
  static inline int counter_ = 0;
  std::filesystem::path path_;
};

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteAll(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(CodecTest, RoundTripsEveryType) {
  Writer w;
  w.U8(7);
  w.U32(0xDEADBEEFu);
  w.U64(0x0123456789ABCDEFull);
  w.I64(-42);
  w.F64(3.25);
  w.Str("hello\0world");  // embedded NUL via literal truncation is fine
  w.Str("");
  Reader r(w.data());
  EXPECT_EQ(r.U8(), 7u);
  EXPECT_EQ(r.U32(), 0xDEADBEEFu);
  EXPECT_EQ(r.U64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.I64(), -42);
  EXPECT_EQ(r.F64(), 3.25);
  EXPECT_EQ(r.Str(), "hello");
  EXPECT_EQ(r.Str(), "");
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.AtEnd());
}

TEST(CodecTest, ShortReadLatchesNotOk) {
  Writer w;
  w.U32(5);
  Reader r(w.data());
  (void)r.U64();  // asks for more than is there
  EXPECT_FALSE(r.ok());
  // Subsequent reads stay zero and never touch memory.
  EXPECT_EQ(r.U32(), 0u);
  EXPECT_EQ(r.Str(), "");
}

// Count() is the guard between corrupt bytes and giant allocations: an
// element count that could not possibly fit in the remaining bytes must
// read as zero with ok() false, not as a multi-gigabyte resize.
TEST(CodecTest, CountRejectsImpossibleElementCounts) {
  Writer w;
  w.U64(static_cast<std::uint64_t>(1) << 60);
  Reader r(w.data());
  EXPECT_EQ(r.Count(8), 0u);
  EXPECT_FALSE(r.ok());

  Writer ok;
  ok.U64(3);
  ok.U32(1);
  ok.U32(2);
  ok.U32(3);
  Reader r2(ok.data());
  EXPECT_EQ(r2.Count(4), 3u);
  EXPECT_TRUE(r2.ok());
}

TEST(CodecTest, Crc32MatchesKnownVector) {
  // The canonical IEEE CRC-32 check value.
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_NE(Crc32("123456780"), Crc32("123456789"));
}

TEST(SnapshotTest, RoundTrip) {
  TempDir dir;
  const std::string path = dir.file("snap");
  std::string error;
  ASSERT_TRUE(WriteSnapshotFile(path, "the body", &error)) << error;
  std::string body;
  EXPECT_EQ(ReadSnapshotFile(path, &body, &error), SnapshotStatus::kOk);
  EXPECT_EQ(body, "the body");
  // Overwrite is atomic-replace: the new body wins entirely.
  ASSERT_TRUE(WriteSnapshotFile(path, "v2", &error)) << error;
  EXPECT_EQ(ReadSnapshotFile(path, &body, &error), SnapshotStatus::kOk);
  EXPECT_EQ(body, "v2");
}

TEST(SnapshotTest, AbsentIsAFreshStartNotAnError) {
  TempDir dir;
  std::string body = "untouched";
  std::string error;
  EXPECT_EQ(ReadSnapshotFile(dir.file("nope"), &body, &error),
            SnapshotStatus::kAbsent);
  EXPECT_EQ(body, "untouched");
}

TEST(SnapshotTest, RefusesCorruptionAndTruncation) {
  TempDir dir;
  const std::string path = dir.file("snap");
  std::string error;
  ASSERT_TRUE(WriteSnapshotFile(path, "some snapshot body", &error));
  const std::string good = ReadAll(path);

  std::string body;
  // Flip one body byte: CRC must catch it.
  std::string bad = good;
  bad[bad.size() - 3] ^= 0x40;
  WriteAll(path, bad);
  EXPECT_EQ(ReadSnapshotFile(path, &body, &error), SnapshotStatus::kCorrupt);

  // Truncate mid-body (a torn write that dodged the rename protocol).
  WriteAll(path, good.substr(0, good.size() - 4));
  EXPECT_EQ(ReadSnapshotFile(path, &body, &error), SnapshotStatus::kCorrupt);

  // Truncate mid-header.
  WriteAll(path, good.substr(0, 10));
  EXPECT_EQ(ReadSnapshotFile(path, &body, &error), SnapshotStatus::kCorrupt);

  // Wrong magic.
  bad = good;
  bad[0] = 'X';
  WriteAll(path, bad);
  EXPECT_EQ(ReadSnapshotFile(path, &body, &error), SnapshotStatus::kCorrupt);
}

TEST(SnapshotTest, RefusesNewerFormatVersion) {
  TempDir dir;
  const std::string path = dir.file("snap");
  std::string error;
  ASSERT_TRUE(WriteSnapshotFile(path, "body", &error));
  std::string bytes = ReadAll(path);
  // The u32 version lives right after the 8-byte magic (little endian).
  bytes[8] = static_cast<char>(kSnapshotVersion + 1);
  WriteAll(path, bytes);
  std::string body;
  EXPECT_EQ(ReadSnapshotFile(path, &body, &error),
            SnapshotStatus::kVersionMismatch);
}

TEST(EventLogTest, AppendAndReopenRecoversNextSeq) {
  TempDir dir;
  const std::string path = dir.file("events.log");
  std::string error;
  EventLog::OpenStats stats;
  auto log = EventLog::Open(path, &stats, &error);
  ASSERT_NE(log, nullptr) << error;
  EXPECT_EQ(log->next_seq(), 0u);
  for (std::uint64_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(log->Append(i, "payload-" + std::to_string(i), nullptr,
                            &error))
        << error;
  }
  log.reset();

  log = EventLog::Open(path, &stats, &error);
  ASSERT_NE(log, nullptr) << error;
  EXPECT_EQ(stats.records, 5u);
  EXPECT_FALSE(stats.truncated_tail);
  EXPECT_EQ(log->next_seq(), 5u);

  std::vector<std::string> seen;
  ASSERT_TRUE(EventLog::ForEach(
      path,
      [&seen](std::uint64_t seq, std::string_view payload) {
        seen.push_back(std::to_string(seq) + ":" + std::string(payload));
      },
      &error))
      << error;
  ASSERT_EQ(seen.size(), 5u);
  EXPECT_EQ(seen[0], "0:payload-0");
  EXPECT_EQ(seen[4], "4:payload-4");
}

TEST(EventLogTest, TornTailIsTruncatedAway) {
  TempDir dir;
  const std::string path = dir.file("events.log");
  std::string error;
  EventLog::OpenStats stats;
  {
    auto log = EventLog::Open(path, &stats, &error);
    ASSERT_NE(log, nullptr);
    ASSERT_TRUE(log->Append(0, "first", nullptr, &error));
    ASSERT_TRUE(log->Append(1, "second-record", nullptr, &error));
  }
  // Simulate a crash mid-append: cut the last record in half.
  const std::string bytes = ReadAll(path);
  WriteAll(path, bytes.substr(0, bytes.size() - 6));

  auto log = EventLog::Open(path, &stats, &error);
  ASSERT_NE(log, nullptr) << error;
  EXPECT_EQ(stats.records, 1u);
  EXPECT_TRUE(stats.truncated_tail);
  EXPECT_EQ(log->next_seq(), 1u);
  // The log is appendable again at the recovered position.
  ASSERT_TRUE(log->Append(1, "second-take-two", nullptr, &error)) << error;
  log.reset();
  std::vector<std::string> seen;
  ASSERT_TRUE(EventLog::ForEach(
      path,
      [&seen](std::uint64_t, std::string_view payload) {
        seen.emplace_back(payload);
      },
      &error));
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[1], "second-take-two");
}

TEST(EventLogTest, MidLogCorruptionIsAHardError) {
  TempDir dir;
  const std::string path = dir.file("events.log");
  std::string error;
  EventLog::OpenStats stats;
  std::size_t first_len = 0;
  {
    auto log = EventLog::Open(path, &stats, &error);
    ASSERT_NE(log, nullptr);
    ASSERT_TRUE(log->Append(0, "first", nullptr, &error));
    first_len = std::filesystem::file_size(path);
    ASSERT_TRUE(log->Append(1, "second", nullptr, &error));
  }
  // Flip a byte INSIDE the first record while a complete second record
  // follows: bitrot, not a crash artifact — refuse to open.
  std::string bytes = ReadAll(path);
  bytes[first_len - 2] ^= 0x20;
  WriteAll(path, bytes);
  EXPECT_EQ(EventLog::Open(path, &stats, &error), nullptr);
  EXPECT_FALSE(error.empty());
  error.clear();
  EXPECT_FALSE(EventLog::ForEach(
      path, [](std::uint64_t, std::string_view) {}, &error));
}

TEST(EventLogTest, AppendRejectsOutOfOrderSeq) {
  TempDir dir;
  std::string error;
  EventLog::OpenStats stats;
  auto log = EventLog::Open(dir.file("events.log"), &stats, &error);
  ASSERT_NE(log, nullptr);
  ASSERT_TRUE(log->Append(0, "a", nullptr, &error));
  EXPECT_FALSE(log->Append(2, "gap", nullptr, &error));
  EXPECT_FALSE(log->Append(0, "rewind", nullptr, &error));
  EXPECT_TRUE(log->Append(1, "b", nullptr, &error));
}

TEST(EventCodecTest, DigestEventRoundTrips) {
  core::DigestEvent ev;
  ev.messages = {3, 5, 8};
  ev.start = 1000;
  ev.end = 9000;
  ev.score = 12.5;
  ev.label = "LINK-3-UPDOWN";
  ev.location_text = "Serial0/0";
  ev.templates = {2, 7};
  ev.router_keys = {0, 4};
  Writer w;
  WriteEvent(ev, &w);
  Reader r(w.data());
  core::DigestEvent back;
  ASSERT_TRUE(ReadEvent(&r, &back));
  EXPECT_TRUE(r.AtEnd());
  EXPECT_EQ(back.messages, ev.messages);
  EXPECT_EQ(back.start, ev.start);
  EXPECT_EQ(back.end, ev.end);
  EXPECT_EQ(back.score, ev.score);
  EXPECT_EQ(back.label, ev.label);
  EXPECT_EQ(back.location_text, ev.location_text);
  EXPECT_EQ(back.templates, ev.templates);
  EXPECT_EQ(back.router_keys, ev.router_keys);
  EXPECT_EQ(back.Format(), ev.Format());
}

}  // namespace
}  // namespace sld::ckpt
