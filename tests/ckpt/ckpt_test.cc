// Crash-consistency suite for the engine checkpoint/restart subsystem
// (DESIGN.md §14).
//
// The contract under test: abandon a durable engine mid-stream (the
// in-process stand-in for SIGKILL — every logged event was fsynced, the
// snapshot lags the log), open a fresh engine on the same checkpoint
// dir, resend the WHOLE stream from the beginning, and the durable
// event log ends up byte-identical to an uninterrupted run — at any
// combination of crash-side and restore-side shard counts, because
// snapshots are canonical over the stage graph, not over the sharding.
#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "ckpt/event_codec.h"
#include "ckpt/eventlog.h"
#include "ckpt/snapshot.h"
#include "core/learn.h"
#include "engine/engine.h"
#include "net/config_parser.h"
#include "sim/generator.h"

namespace sld::engine {
namespace {

struct World {
  World() {
    sim::DatasetSpec spec = sim::DatasetASpec();
    spec.topo.num_routers = 6;
    history = sim::GenerateDataset(spec, 0, 3, 901);
    live = sim::GenerateDataset(spec, 3, 1, 902);
    std::vector<net::ParsedConfig> parsed;
    for (const std::string& cfg : history.configs) {
      parsed.push_back(net::ParseConfig(cfg));
    }
    dict = core::LocationDict::Build(parsed);
    core::OfflineLearner learner;
    kb = learner.Learn(history.messages, dict);
  }

  sim::Dataset history;
  sim::Dataset live;
  core::LocationDict dict;
  core::KnowledgeBase kb;
};

World& SharedWorld() {
  static World world;
  return world;
}

core::KnowledgeBase CloneKb(const core::KnowledgeBase& kb) {
  return core::KnowledgeBase::Deserialize(kb.Serialize());
}

class TempDir {
 public:
  TempDir() {
    path_ = std::filesystem::temp_directory_path() /
            ("sld_ckpt_engine_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter_++));
    std::filesystem::create_directories(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  std::string str() const { return path_.string(); }

 private:
  static inline int counter_ = 0;
  std::filesystem::path path_;
};

EngineOptions DurableOptions(std::size_t shards) {
  EngineOptions opts;
  opts.shards = shards;
  // Crash-consistent resend needs the duplicate window (--dedup).
  opts.suppress_duplicates = true;
  opts.hold_ms = 1000;
  // A short idle horizon keeps events closing throughout the stream so
  // the crash window actually contains logged events (the learned
  // default horizon closes most of this dataset only at Finish).
  opts.idle_close_ms = 60 * 1000;
  return opts;
}

// Copies `src`'s snapshot + event log into `dst` — the crash image.  An
// in-process engine cannot simply be abandoned to simulate SIGKILL: its
// destructor joins the pipeline, which closes every open group and logs
// the final flush.  The on-disk state *before* destruction is exactly
// what a kill would leave, so we photograph it first.
void CopyCrashImage(const std::string& src, const std::string& dst) {
  namespace fs = std::filesystem;
  fs::create_directories(dst);
  if (fs::exists(src + "/snapshot")) {
    fs::copy_file(src + "/snapshot", dst + "/snapshot",
                  fs::copy_options::overwrite_existing);
  }
  if (fs::exists(src + "/events.log")) {
    fs::copy_file(src + "/events.log", dst + "/events.log",
                  fs::copy_options::overwrite_existing);
  }
}

// The durable log rendered the way `sldigest events` prints it.
std::vector<std::string> DumpLog(const std::string& dir) {
  std::vector<std::string> lines;
  std::string error;
  const bool ok = ckpt::EventLog::ForEach(
      dir + "/events.log",
      [&lines](std::uint64_t seq, std::string_view payload) {
        ckpt::Reader r(payload);
        core::DigestEvent ev;
        ASSERT_TRUE(ckpt::ReadEvent(&r, &ev));
        lines.push_back(std::to_string(seq) + "|" + ev.Format());
      },
      &error);
  EXPECT_TRUE(ok) << error;
  return lines;
}

// Uninterrupted reference: feed every live record, Finish, dump the log.
std::vector<std::string> RunGolden(World& w, std::size_t shards,
                                   const std::string& dir) {
  core::KnowledgeBase kb = CloneKb(w.kb);
  Engine eng(&kb, &w.dict, DurableOptions(shards));
  std::string error;
  EXPECT_TRUE(eng.OpenDurable(dir, &error)) << error;
  for (const auto& rec : w.live.messages) {
    eng.IngestRecord(rec);
    eng.Pump();
  }
  eng.Finish();
  return DumpLog(dir);
}

// Crash leg: checkpoint at `ckpt_at` records, keep going to `crash_at`,
// photograph the checkpoint dir into `image_dir` (snapshot stale, log
// current — exactly what a SIGKILL leaves behind), then let the engine
// be destroyed.
void RunUntilCrash(World& w, std::size_t shards, const std::string& dir,
                   const std::string& image_dir, std::size_t ckpt_at,
                   std::size_t crash_at) {
  core::KnowledgeBase kb = CloneKb(w.kb);
  Engine eng(&kb, &w.dict, DurableOptions(shards));
  std::string error;
  ASSERT_TRUE(eng.OpenDurable(dir, &error)) << error;
  for (std::size_t i = 0; i < crash_at && i < w.live.messages.size(); ++i) {
    eng.IngestRecord(w.live.messages[i]);
    eng.Pump();
    if (i + 1 == ckpt_at) {
      ASSERT_TRUE(eng.Checkpoint(&error)) << error;
    }
  }
  // Let the merge thread drain in-flight closes (shards > 1); a torn or
  // shorter log would still be a valid crash image, just a less
  // interesting one.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  CopyCrashImage(dir, image_dir);
}

// Restart leg: restore from the crashed dir and resend the whole stream.
std::vector<std::string> RunRestart(World& w, std::size_t shards,
                                    const std::string& dir) {
  core::KnowledgeBase kb = CloneKb(w.kb);
  Engine eng(&kb, &w.dict, DurableOptions(shards));
  std::string error;
  EXPECT_TRUE(eng.OpenDurable(dir, &error)) << error;
  EXPECT_GT(eng.replay_cursor(), 0u);
  for (const auto& rec : w.live.messages) {
    eng.IngestRecord(rec);
    eng.Pump();
  }
  eng.Finish();
  EXPECT_GT(eng.replay_suppressed(), 0u);
  return DumpLog(dir);
}

class CkptEquivalence
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {
};

TEST_P(CkptEquivalence, KillAndRestartMatchesUninterruptedRun) {
  const auto [crash_shards, restore_shards] = GetParam();
  World& w = SharedWorld();
  TempDir golden_dir;
  TempDir crash_dir;
  TempDir image_dir;
  const auto golden = RunGolden(w, /*shards=*/1, golden_dir.str());
  ASSERT_FALSE(golden.empty());

  // Checkpoint and kill inside the stream's dense early region, where
  // events are closing between the two points (so the log is genuinely
  // ahead of the snapshot when the crash hits).
  const std::size_t n = w.live.messages.size();
  RunUntilCrash(w, crash_shards, crash_dir.str(), image_dir.str(),
                /*ckpt_at=*/n / 10, /*crash_at=*/n / 5);
  const auto restored = RunRestart(w, restore_shards, image_dir.str());
  EXPECT_EQ(restored, golden);
}

INSTANTIATE_TEST_SUITE_P(
    Shards, CkptEquivalence,
    ::testing::Values(std::make_tuple(std::size_t{1}, std::size_t{1}),
                      std::make_tuple(std::size_t{4}, std::size_t{4}),
                      std::make_tuple(std::size_t{16}, std::size_t{16}),
                      // Snapshots are canonical: restore at a different
                      // shard count than the crash side ran.
                      std::make_tuple(std::size_t{4}, std::size_t{1}),
                      std::make_tuple(std::size_t{1}, std::size_t{16})));

// A checkpoint taken after a clean Finish restores to a drained engine:
// nothing open, the replay cursor at the full event count, and a
// no-traffic restart adds nothing to the log.  (A full resend after a
// clean shutdown is a NEW epoch — Finish flushed the collector — which
// is why the crash-recovery contract is resend-after-kill, not
// resend-after-finish.)
TEST(CkptEngineTest, CleanShutdownRestoresDrained) {
  World& w = SharedWorld();
  TempDir dir;
  std::uint64_t total = 0;
  {
    core::KnowledgeBase kb = CloneKb(w.kb);
    Engine eng(&kb, &w.dict, DurableOptions(1));
    std::string error;
    ASSERT_TRUE(eng.OpenDurable(dir.str(), &error)) << error;
    for (const auto& rec : w.live.messages) {
      eng.IngestRecord(rec);
      eng.Pump();
    }
    eng.Finish();
    ASSERT_TRUE(eng.Checkpoint(&error)) << error;
    total = eng.event_count();
    ASSERT_GT(total, 0u);
  }
  const auto before = DumpLog(dir.str());
  ASSERT_EQ(before.size(), total);
  core::KnowledgeBase kb = CloneKb(w.kb);
  Engine eng(&kb, &w.dict, DurableOptions(1));
  std::string error;
  ASSERT_TRUE(eng.OpenDurable(dir.str(), &error)) << error;
  EXPECT_EQ(eng.replay_cursor(), total);
  EXPECT_EQ(eng.event_count(), total);
  EXPECT_EQ(eng.open_group_count(), 0u);
  eng.Finish();
  EXPECT_EQ(eng.event_count(), total);
  EXPECT_EQ(DumpLog(dir.str()), before);
}

TEST(CkptEngineTest, CorruptSnapshotRefusesToOpen) {
  World& w = SharedWorld();
  TempDir live;
  TempDir dir;
  RunUntilCrash(w, 1, live.str(), dir.str(), 50, 100);
  // Flip a byte in the snapshot body.
  const std::string path = dir.str() + "/snapshot";
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign((std::istreambuf_iterator<char>(in)),
                 std::istreambuf_iterator<char>());
  }
  ASSERT_GT(bytes.size(), 30u);
  bytes[bytes.size() - 5] ^= 0x10;
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  core::KnowledgeBase kb = CloneKb(w.kb);
  Engine eng(&kb, &w.dict, DurableOptions(1));
  std::string error;
  EXPECT_FALSE(eng.OpenDurable(dir.str(), &error));
  EXPECT_NE(error.find("refusing to restore"), std::string::npos) << error;
  EXPECT_FALSE(eng.durable());
}

TEST(CkptEngineTest, SnapshotForAnotherTenantRefusesToOpen) {
  World& w = SharedWorld();
  TempDir dir;
  {
    core::KnowledgeBase kb = CloneKb(w.kb);
    EngineOptions opts = DurableOptions(1);
    opts.tenant = "alpha";
    Engine eng(&kb, &w.dict, opts);
    std::string error;
    ASSERT_TRUE(eng.OpenDurable(dir.str(), &error)) << error;
    for (std::size_t i = 0; i < 100; ++i) {
      eng.IngestRecord(w.live.messages[i]);
      eng.Pump();
    }
    ASSERT_TRUE(eng.Checkpoint(&error)) << error;
  }
  core::KnowledgeBase kb = CloneKb(w.kb);
  EngineOptions opts = DurableOptions(1);
  opts.tenant = "beta";
  Engine eng(&kb, &w.dict, opts);
  std::string error;
  EXPECT_FALSE(eng.OpenDurable(dir.str(), &error));
  EXPECT_NE(error.find("tenant"), std::string::npos) << error;
}

TEST(CkptEngineTest, MissingConfigDirFailsEngineLoad) {
  std::string error;
  const auto eng = Engine::Load("/nonexistent/configs/dir",
                                "/nonexistent/kb.txt", EngineOptions{},
                                &error);
  EXPECT_EQ(eng, nullptr);
  EXPECT_FALSE(error.empty());
}

// LoadConfigDir itself: an unreadable dir reports an error instead of
// masquerading as an empty-but-valid config directory.
TEST(CkptEngineTest, LoadConfigDirReportsMissingDirectory) {
  std::string error;
  const auto parsed = LoadConfigDir("/nonexistent/configs/dir", &error);
  EXPECT_TRUE(parsed.empty());
  EXPECT_NE(error.find("cannot read config dir"), std::string::npos)
      << error;
  // An existing-but-empty dir is NOT an error: zero configs is valid.
  TempDir empty;
  error.clear();
  const auto none = LoadConfigDir(empty.str(), &error);
  EXPECT_TRUE(none.empty());
  EXPECT_TRUE(error.empty()) << error;
}

}  // namespace
}  // namespace sld::engine
