// Regression for the serve-loop EINTR bug: a signal interrupting
// poll() used to count toward the idle horizon, so a server pestered
// with signals (profilers, timers, SIGCHLD from a supervisor) finished
// all engines and exited long before idle_exit_s of real quiet had
// passed.  Here we storm the serving thread with SIGUSR1 while it is
// nominally one quiet second away from exiting; it must survive the
// storm and still be alive to accept a second datagram afterwards.
#include "engine/host.h"

#include <gtest/gtest.h>
#include <pthread.h>
#include <signal.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>

#include "core/knowledge.h"
#include "core/location/location.h"
#include "syslog/udp.h"

namespace sld::engine {
namespace {

void NoopHandler(int) {}

TEST(HostSignalTest, ServeSurvivesSignalStorm) {
  // Install a no-op SIGUSR1 handler WITHOUT SA_RESTART so poll() really
  // returns EINTR instead of being transparently restarted.
  struct sigaction sa = {};
  sa.sa_handler = NoopHandler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;
  struct sigaction old = {};
  ASSERT_EQ(sigaction(SIGUSR1, &sa, &old), 0);

  core::KnowledgeBase kb;
  const core::LocationDict dict = core::LocationDict::Build({});
  EngineHost host;
  host.AddEngine(std::make_unique<Engine>(&kb, &dict, EngineOptions{}));
  std::string error;
  ASSERT_TRUE(host.BindAll(&error)) << error;
  const std::uint16_t port = host.port_of(0);

  std::size_t served = 0;
  std::atomic<pthread_t> serve_tid{};
  std::atomic<bool> tid_ready{false};
  std::thread server([&host, &served, &serve_tid, &tid_ready] {
    serve_tid.store(pthread_self());
    tid_ready.store(true);
    EngineHost::ServeOptions opts;
    opts.max_datagrams = 2;
    opts.idle_exit_s = 2;
    served = host.Serve(opts);
  });
  // Wait for the serving thread to publish its id.
  while (!tid_ready.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  auto sender = syslog::UdpSender::Open("127.0.0.1", port);
  ASSERT_TRUE(sender.has_value());
  ASSERT_TRUE(sender->Send("<187>Jan 10 00:00:15 r1 %A-1-B: one"));

  // Storm: each signal interrupts poll() well inside its 1 s timeout.
  // With the old accounting every interruption looked like a quiet
  // second, so ~2 signals would have ended the loop mid-storm.
  for (int i = 0; i < 200; ++i) {
    pthread_kill(serve_tid.load(), SIGUSR1);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  // Still serving?  Then this datagram reaches the limit and ends the
  // loop promptly; a loop killed by the storm would have served == 1.
  ASSERT_TRUE(sender->Send("<187>Jan 10 00:00:16 r1 %A-1-B: two"));
  server.join();
  EXPECT_EQ(served, 2u);

  sigaction(SIGUSR1, &old, nullptr);
}

}  // namespace
}  // namespace sld::engine
