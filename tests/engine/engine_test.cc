// Multi-tenant equivalence suite for the engine layer.
//
// The contract under test: N tenants multiplexed through one EngineHost
// (shared thread pool, shared registry, interleaved ingest) produce
// per-tenant event streams BIT-IDENTICAL to N standalone single-tenant
// engines, at any shard count — plus tenant isolation (one tenant's
// garbage never moves another's counters) and per-tenant metrics
// reconciliation on the shared registry.
#include "engine/engine.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/learn.h"
#include "engine/host.h"
#include "net/config_parser.h"
#include "obs/registry.h"
#include "sim/generator.h"

namespace sld::engine {
namespace {

// One tenant's world: its own topology seed, learned KB, and live day.
struct Tenant {
  explicit Tenant(std::uint64_t seed) {
    sim::DatasetSpec spec = sim::DatasetASpec();
    spec.topo.num_routers = 6;
    history = sim::GenerateDataset(spec, 0, 4, seed);
    live = sim::GenerateDataset(spec, 4, 1, seed + 1);
    std::vector<net::ParsedConfig> parsed;
    for (const std::string& cfg : history.configs) {
      parsed.push_back(net::ParseConfig(cfg));
    }
    dict = core::LocationDict::Build(parsed);
    core::OfflineLearner learner;
    kb = learner.Learn(history.messages, dict);
  }

  sim::Dataset history;
  sim::Dataset live;
  core::LocationDict dict;
  core::KnowledgeBase kb;
};

// Tenant fixtures are expensive (offline learning); share across tests.
Tenant& SharedTenant(std::size_t i) {
  static Tenant tenants[4] = {Tenant(601), Tenant(611), Tenant(621),
                              Tenant(631)};
  return tenants[i % 4];
}

// KnowledgeBase is move-only; engines may grow catch-all templates, so
// every run gets a private clone via the same serialize round-trip the
// CLI's learn -> digest handoff uses.
core::KnowledgeBase CloneKb(const core::KnowledgeBase& kb) {
  return core::KnowledgeBase::Deserialize(kb.Serialize());
}

// Reference run: one standalone engine, pumped after every record — the
// dedicated single-tenant process shape.  Returns formatted events in
// close order.
std::vector<std::string> RunStandalone(Tenant& t, std::size_t shards) {
  core::KnowledgeBase kb = CloneKb(t.kb);
  EngineOptions opts;
  opts.shards = shards;
  Engine eng(&kb, &t.dict, opts);
  std::vector<std::string> events;
  eng.SetEventSink([&events](const core::DigestEvent& ev) {
    events.push_back(ev.Format());
  });
  for (const auto& rec : t.live.messages) {
    eng.IngestRecord(rec);
    eng.Pump();
  }
  eng.Finish();
  return events;
}

// Per-tenant totals of one series name from a shared-registry snapshot.
std::map<std::string, std::int64_t> TenantTotals(
    const obs::MetricsSnapshot& snap, const std::string& name) {
  std::map<std::string, std::int64_t> out;
  for (const auto& s : snap.series) {
    if (s.name != name) continue;
    std::string tenant;
    for (const auto& [k, v] : s.labels) {
      if (k == "tenant") tenant = v;
    }
    out[tenant] += s.ivalue;
  }
  return out;
}

class MultiTenantTest
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

// N tenants in one host, ingest interleaved round-robin, pumped in
// parallel on the shared pool: every tenant's event stream must equal
// its standalone run byte for byte, and the shared registry must carry
// a reconciling per-tenant accounting.
TEST_P(MultiTenantTest, BitIdenticalToStandalone) {
  const auto [tenant_count, shards] = GetParam();
  obs::Registry root;
  HostOptions host_opts;
  host_opts.pool_threads = 3;
  host_opts.metrics = &root;
  EngineHost host(host_opts);

  std::vector<std::unique_ptr<core::KnowledgeBase>> kbs;
  std::vector<std::vector<std::string>> events(tenant_count);
  for (std::size_t i = 0; i < tenant_count; ++i) {
    Tenant& t = SharedTenant(i);
    kbs.push_back(std::make_unique<core::KnowledgeBase>(CloneKb(t.kb)));
    EngineOptions opts;
    opts.tenant = "t" + std::to_string(i);
    opts.shards = shards;
    opts.metrics = &root;
    Engine* eng = host.AddEngine(
        std::make_unique<Engine>(kbs.back().get(), &t.dict, opts));
    eng->SetEventSink([&events, i](const core::DigestEvent& ev) {
      events[i].push_back(ev.Format());
    });
  }

  // Interleave: one record per tenant per round, pumping all tenants on
  // the pool every few rounds (drain batching must not matter).
  std::vector<std::size_t> next(tenant_count, 0);
  bool remaining = true;
  std::size_t round = 0;
  while (remaining) {
    remaining = false;
    for (std::size_t i = 0; i < tenant_count; ++i) {
      const auto& msgs = SharedTenant(i).live.messages;
      if (next[i] < msgs.size()) {
        host.engine(i)->IngestRecord(msgs[next[i]++]);
        remaining = true;
      }
    }
    if (++round % 7 == 0) host.PumpAll();
  }
  host.FinishAll();

  for (std::size_t i = 0; i < tenant_count; ++i) {
    const std::vector<std::string> expected =
        RunStandalone(SharedTenant(i), shards);
    EXPECT_GT(expected.size(), 0u) << "tenant " << i;
    EXPECT_EQ(events[i], expected) << "tenant " << i << " at " << shards
                                   << " shards";
  }

  // Shared-registry accounting: every tenant's collector series exists
  // under its own label and reconciles (flushed, so buffered == 0 and
  // accepted == released), and the totals equal the true per-tenant
  // collector counts.
  const obs::MetricsSnapshot snap = root.Collect();
  const auto accepted = TenantTotals(snap, "collector_accepted_total");
  const auto released = TenantTotals(snap, "collector_released_total");
  const auto buffered = TenantTotals(snap, "collector_reorder_buffer_depth");
  ASSERT_EQ(accepted.size(), tenant_count);
  for (std::size_t i = 0; i < tenant_count; ++i) {
    const std::string name = "t" + std::to_string(i);
    ASSERT_TRUE(accepted.count(name)) << name;
    EXPECT_EQ(accepted.at(name),
              static_cast<std::int64_t>(
                  host.engine(i)->collector().accepted_count()));
    EXPECT_EQ(accepted.at(name),
              released.at(name) + (buffered.count(name) ? buffered.at(name)
                                                        : 0))
        << name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    TenantsByShards, MultiTenantTest,
    ::testing::Values(std::pair<std::size_t, std::size_t>{1, 1},
                      std::pair<std::size_t, std::size_t>{2, 1},
                      std::pair<std::size_t, std::size_t>{4, 1},
                      std::pair<std::size_t, std::size_t>{2, 4},
                      std::pair<std::size_t, std::size_t>{4, 4}));

// A tenant flooding its own port with garbage must not perturb a healthy
// neighbor: the victim's events stay bit-identical to a standalone run
// and its malformed counter stays zero while the flooder's counts the
// whole flood.
TEST(EngineHostTest, MalformedFloodStaysIsolated) {
  obs::Registry root;
  HostOptions host_opts;
  host_opts.pool_threads = 2;
  host_opts.metrics = &root;
  EngineHost host(host_opts);

  Tenant& flooded = SharedTenant(0);
  Tenant& healthy = SharedTenant(1);
  core::KnowledgeBase kb_flooded = CloneKb(flooded.kb);
  core::KnowledgeBase kb_healthy = CloneKb(healthy.kb);
  EngineOptions opts;
  opts.metrics = &root;
  opts.tenant = "flooded";
  Engine* noisy = host.AddEngine(
      std::make_unique<Engine>(&kb_flooded, &flooded.dict, opts));
  opts.tenant = "healthy";
  Engine* victim = host.AddEngine(
      std::make_unique<Engine>(&kb_healthy, &healthy.dict, opts));
  std::vector<std::string> victim_events;
  victim->SetEventSink([&victim_events](const core::DigestEvent& ev) {
    victim_events.push_back(ev.Format());
  });
  noisy->SetEventSink([](const core::DigestEvent&) {});

  constexpr std::size_t kFlood = 500;
  std::size_t fed = 0;
  for (const auto& rec : healthy.live.messages) {
    if (fed < kFlood) {
      noisy->IngestDatagram("!!! not a syslog datagram !!!");
      noisy->IngestDatagram("");
      fed += 2;
    }
    victim->IngestRecord(rec);
    host.PumpAll();
  }
  while (fed < kFlood) {
    noisy->IngestDatagram("<garbage");
    ++fed;
  }
  host.FinishAll();

  EXPECT_EQ(victim_events, RunStandalone(healthy, 1));
  EXPECT_EQ(victim->collector().malformed_count(), 0u);
  EXPECT_GE(noisy->collector().malformed_count(), kFlood);

  const auto malformed =
      TenantTotals(root.Collect(), "collector_malformed_total");
  EXPECT_EQ(malformed.count("healthy") ? malformed.at("healthy") : 0, 0);
  EXPECT_GE(malformed.at("flooded"), static_cast<std::int64_t>(kFlood));
}

// Starvation smoke: a 1-thread pool serving 4 tenants (more work than
// workers) must still drain everything — FinishAll leaves no tenant
// without its full event stream.
TEST(EngineHostTest, SingleThreadPoolServesFourTenants) {
  HostOptions host_opts;
  host_opts.pool_threads = 1;
  EngineHost host(host_opts);
  std::vector<std::unique_ptr<core::KnowledgeBase>> kbs;
  std::vector<std::vector<std::string>> events(4);
  for (std::size_t i = 0; i < 4; ++i) {
    Tenant& t = SharedTenant(i);
    kbs.push_back(std::make_unique<core::KnowledgeBase>(CloneKb(t.kb)));
    EngineOptions opts;
    opts.tenant = "t" + std::to_string(i);
    Engine* eng = host.AddEngine(
        std::make_unique<Engine>(kbs.back().get(), &t.dict, opts));
    eng->SetEventSink([&events, i](const core::DigestEvent& ev) {
      events[i].push_back(ev.Format());
    });
  }
  for (std::size_t i = 0; i < 4; ++i) {
    for (const auto& rec : SharedTenant(i).live.messages) {
      host.engine(i)->IngestRecord(rec);
    }
  }
  host.PumpAll();
  host.FinishAll();
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i], RunStandalone(SharedTenant(i), 1)) << i;
  }
}

TEST(TenantSpecTest, ParsesNameConfigsKbPort) {
  TenantSpec spec;
  std::string error;
  ASSERT_TRUE(ParseTenantSpec("alpha:/cfg/a:/kb/a.txt:6001", &spec, &error));
  EXPECT_EQ(spec.name, "alpha");
  EXPECT_EQ(spec.configs_dir, "/cfg/a");
  EXPECT_EQ(spec.kb_path, "/kb/a.txt");
  EXPECT_EQ(spec.port, 6001);

  ASSERT_TRUE(ParseTenantSpec("beta:cfg:kb.txt", &spec, &error));
  EXPECT_EQ(spec.name, "beta");
  EXPECT_EQ(spec.port, 0);  // ephemeral
}

TEST(TenantSpecTest, RejectsMalformedSpecs) {
  TenantSpec spec;
  std::string error;
  EXPECT_FALSE(ParseTenantSpec("just-a-name", &spec, &error));
  EXPECT_NE(error.find("NAME:CONFIGS:KB"), std::string::npos);
  EXPECT_FALSE(ParseTenantSpec(":cfg:kb", &spec, &error));
  EXPECT_FALSE(ParseTenantSpec("a:cfg:kb:port", &spec, &error));
  EXPECT_FALSE(ParseTenantSpec("a:cfg:kb:99999", &spec, &error));
  EXPECT_FALSE(ParseTenantSpec("a:b:c:1:2", &spec, &error));
}

TEST(EngineHostTest, RejectsDuplicateAndMissingNames) {
  // Loading never starts when the name discipline fails, so bogus paths
  // are never touched.
  EngineHost host;
  TenantSpec a{"same", "/nope", "/nope.txt", 0, {}};
  TenantSpec b{"same", "/nope2", "/nope2.txt", 0, {}};
  std::string error;
  EXPECT_FALSE(host.LoadTenants({a, b}, &error));
  EXPECT_NE(error.find("duplicate"), std::string::npos);

  TenantSpec unnamed{"", "/nope", "/nope.txt", 0, {}};
  EXPECT_FALSE(host.LoadTenants({unnamed, a}, &error));
  EXPECT_NE(error.find("name"), std::string::npos);
  EXPECT_EQ(host.tenant_count(), 0u);
}

}  // namespace
}  // namespace sld::engine
