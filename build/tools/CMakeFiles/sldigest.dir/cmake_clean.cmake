file(REMOVE_RECURSE
  "CMakeFiles/sldigest.dir/sldigest.cc.o"
  "CMakeFiles/sldigest.dir/sldigest.cc.o.d"
  "sldigest"
  "sldigest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sldigest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
