# Empty dependencies file for sldigest.
# This may be replaced when dependencies are built.
