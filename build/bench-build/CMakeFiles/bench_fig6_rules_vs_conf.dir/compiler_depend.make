# Empty compiler generated dependencies file for bench_fig6_rules_vs_conf.
# This may be replaced when dependencies are built.
