file(REMOVE_RECURSE
  "../bench/bench_fig6_rules_vs_conf"
  "../bench/bench_fig6_rules_vs_conf.pdb"
  "CMakeFiles/bench_fig6_rules_vs_conf.dir/bench_fig6_rules_vs_conf.cc.o"
  "CMakeFiles/bench_fig6_rules_vs_conf.dir/bench_fig6_rules_vs_conf.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_rules_vs_conf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
