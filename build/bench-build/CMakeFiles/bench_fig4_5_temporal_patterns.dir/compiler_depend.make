# Empty compiler generated dependencies file for bench_fig4_5_temporal_patterns.
# This may be replaced when dependencies are built.
