file(REMOVE_RECURSE
  "../bench/bench_fig4_5_temporal_patterns"
  "../bench/bench_fig4_5_temporal_patterns.pdb"
  "CMakeFiles/bench_fig4_5_temporal_patterns.dir/bench_fig4_5_temporal_patterns.cc.o"
  "CMakeFiles/bench_fig4_5_temporal_patterns.dir/bench_fig4_5_temporal_patterns.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_5_temporal_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
