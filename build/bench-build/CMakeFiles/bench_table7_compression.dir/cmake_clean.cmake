file(REMOVE_RECURSE
  "../bench/bench_table7_compression"
  "../bench/bench_table7_compression.pdb"
  "CMakeFiles/bench_table7_compression.dir/bench_table7_compression.cc.o"
  "CMakeFiles/bench_table7_compression.dir/bench_table7_compression.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
