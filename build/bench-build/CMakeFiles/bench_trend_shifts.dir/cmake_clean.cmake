file(REMOVE_RECURSE
  "../bench/bench_trend_shifts"
  "../bench/bench_trend_shifts.pdb"
  "CMakeFiles/bench_trend_shifts.dir/bench_trend_shifts.cc.o"
  "CMakeFiles/bench_trend_shifts.dir/bench_trend_shifts.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_trend_shifts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
