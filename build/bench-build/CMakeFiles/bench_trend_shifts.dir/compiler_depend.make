# Empty compiler generated dependencies file for bench_trend_shifts.
# This may be replaced when dependencies are built.
