file(REMOVE_RECURSE
  "../bench/bench_table5_support"
  "../bench/bench_table5_support.pdb"
  "CMakeFiles/bench_table5_support.dir/bench_table5_support.cc.o"
  "CMakeFiles/bench_table5_support.dir/bench_table5_support.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
