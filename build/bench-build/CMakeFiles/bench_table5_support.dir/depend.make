# Empty dependencies file for bench_table5_support.
# This may be replaced when dependencies are built.
