file(REMOVE_RECURSE
  "../bench/bench_fig10_alpha"
  "../bench/bench_fig10_alpha.pdb"
  "CMakeFiles/bench_fig10_alpha.dir/bench_fig10_alpha.cc.o"
  "CMakeFiles/bench_fig10_alpha.dir/bench_fig10_alpha.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_alpha.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
