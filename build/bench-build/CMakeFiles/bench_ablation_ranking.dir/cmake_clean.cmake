file(REMOVE_RECURSE
  "../bench/bench_ablation_ranking"
  "../bench/bench_ablation_ranking.pdb"
  "CMakeFiles/bench_ablation_ranking.dir/bench_ablation_ranking.cc.o"
  "CMakeFiles/bench_ablation_ranking.dir/bench_ablation_ranking.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_ranking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
