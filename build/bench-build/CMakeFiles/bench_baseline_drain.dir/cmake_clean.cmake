file(REMOVE_RECURSE
  "../bench/bench_baseline_drain"
  "../bench/bench_baseline_drain.pdb"
  "CMakeFiles/bench_baseline_drain.dir/bench_baseline_drain.cc.o"
  "CMakeFiles/bench_baseline_drain.dir/bench_baseline_drain.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_baseline_drain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
