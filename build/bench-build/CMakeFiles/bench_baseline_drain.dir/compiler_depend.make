# Empty compiler generated dependencies file for bench_baseline_drain.
# This may be replaced when dependencies are built.
