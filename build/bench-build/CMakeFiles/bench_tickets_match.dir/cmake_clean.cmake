file(REMOVE_RECURSE
  "../bench/bench_tickets_match"
  "../bench/bench_tickets_match.pdb"
  "CMakeFiles/bench_tickets_match.dir/bench_tickets_match.cc.o"
  "CMakeFiles/bench_tickets_match.dir/bench_tickets_match.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tickets_match.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
