# Empty compiler generated dependencies file for bench_tickets_match.
# This may be replaced when dependencies are built.
