# Empty dependencies file for bench_ablation_stale_dict.
# This may be replaced when dependencies are built.
