file(REMOVE_RECURSE
  "../bench/bench_ablation_stale_dict"
  "../bench/bench_ablation_stale_dict.pdb"
  "CMakeFiles/bench_ablation_stale_dict.dir/bench_ablation_stale_dict.cc.o"
  "CMakeFiles/bench_ablation_stale_dict.dir/bench_ablation_stale_dict.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_stale_dict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
