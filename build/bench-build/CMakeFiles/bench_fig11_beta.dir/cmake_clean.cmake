file(REMOVE_RECURSE
  "../bench/bench_fig11_beta"
  "../bench/bench_fig11_beta.pdb"
  "CMakeFiles/bench_fig11_beta.dir/bench_fig11_beta.cc.o"
  "CMakeFiles/bench_fig11_beta.dir/bench_fig11_beta.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_beta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
