file(REMOVE_RECURSE
  "../bench/bench_ablation_fixed_gap"
  "../bench/bench_ablation_fixed_gap.pdb"
  "CMakeFiles/bench_ablation_fixed_gap.dir/bench_ablation_fixed_gap.cc.o"
  "CMakeFiles/bench_ablation_fixed_gap.dir/bench_ablation_fixed_gap.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_fixed_gap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
