# Empty dependencies file for bench_ablation_fixed_gap.
# This may be replaced when dependencies are built.
