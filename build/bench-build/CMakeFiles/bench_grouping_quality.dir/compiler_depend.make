# Empty compiler generated dependencies file for bench_grouping_quality.
# This may be replaced when dependencies are built.
