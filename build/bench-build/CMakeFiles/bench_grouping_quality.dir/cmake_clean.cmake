file(REMOVE_RECURSE
  "../bench/bench_grouping_quality"
  "../bench/bench_grouping_quality.pdb"
  "CMakeFiles/bench_grouping_quality.dir/bench_grouping_quality.cc.o"
  "CMakeFiles/bench_grouping_quality.dir/bench_grouping_quality.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_grouping_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
