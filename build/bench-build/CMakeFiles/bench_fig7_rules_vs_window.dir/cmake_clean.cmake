file(REMOVE_RECURSE
  "../bench/bench_fig7_rules_vs_window"
  "../bench/bench_fig7_rules_vs_window.pdb"
  "CMakeFiles/bench_fig7_rules_vs_window.dir/bench_fig7_rules_vs_window.cc.o"
  "CMakeFiles/bench_fig7_rules_vs_window.dir/bench_fig7_rules_vs_window.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_rules_vs_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
