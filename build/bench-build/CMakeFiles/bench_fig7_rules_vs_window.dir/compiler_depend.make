# Empty compiler generated dependencies file for bench_fig7_rules_vs_window.
# This may be replaced when dependencies are built.
