file(REMOVE_RECURSE
  "../bench/bench_fig12_daily"
  "../bench/bench_fig12_daily.pdb"
  "CMakeFiles/bench_fig12_daily.dir/bench_fig12_daily.cc.o"
  "CMakeFiles/bench_fig12_daily.dir/bench_fig12_daily.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_daily.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
