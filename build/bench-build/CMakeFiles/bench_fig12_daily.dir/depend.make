# Empty dependencies file for bench_fig12_daily.
# This may be replaced when dependencies are built.
