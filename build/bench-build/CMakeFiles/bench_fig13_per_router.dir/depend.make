# Empty dependencies file for bench_fig13_per_router.
# This may be replaced when dependencies are built.
