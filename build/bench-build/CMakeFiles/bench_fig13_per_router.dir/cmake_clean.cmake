file(REMOVE_RECURSE
  "../bench/bench_fig13_per_router"
  "../bench/bench_fig13_per_router.pdb"
  "CMakeFiles/bench_fig13_per_router.dir/bench_fig13_per_router.cc.o"
  "CMakeFiles/bench_fig13_per_router.dir/bench_fig13_per_router.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_per_router.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
