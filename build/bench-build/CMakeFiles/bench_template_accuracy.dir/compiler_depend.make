# Empty compiler generated dependencies file for bench_template_accuracy.
# This may be replaced when dependencies are built.
