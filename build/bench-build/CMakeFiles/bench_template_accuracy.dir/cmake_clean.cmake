file(REMOVE_RECURSE
  "../bench/bench_template_accuracy"
  "../bench/bench_template_accuracy.pdb"
  "CMakeFiles/bench_template_accuracy.dir/bench_template_accuracy.cc.o"
  "CMakeFiles/bench_template_accuracy.dir/bench_template_accuracy.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_template_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
