# Empty compiler generated dependencies file for bench_ablation_global_tx.
# This may be replaced when dependencies are built.
