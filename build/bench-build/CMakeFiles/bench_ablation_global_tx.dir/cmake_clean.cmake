file(REMOVE_RECURSE
  "../bench/bench_ablation_global_tx"
  "../bench/bench_ablation_global_tx.pdb"
  "CMakeFiles/bench_ablation_global_tx.dir/bench_ablation_global_tx.cc.o"
  "CMakeFiles/bench_ablation_global_tx.dir/bench_ablation_global_tx.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_global_tx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
