file(REMOVE_RECURSE
  "CMakeFiles/sld_net.dir/addr.cc.o"
  "CMakeFiles/sld_net.dir/addr.cc.o.d"
  "CMakeFiles/sld_net.dir/config_parser.cc.o"
  "CMakeFiles/sld_net.dir/config_parser.cc.o.d"
  "CMakeFiles/sld_net.dir/config_writer.cc.o"
  "CMakeFiles/sld_net.dir/config_writer.cc.o.d"
  "CMakeFiles/sld_net.dir/topology.cc.o"
  "CMakeFiles/sld_net.dir/topology.cc.o.d"
  "libsld_net.a"
  "libsld_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sld_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
