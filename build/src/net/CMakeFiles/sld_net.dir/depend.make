# Empty dependencies file for sld_net.
# This may be replaced when dependencies are built.
