file(REMOVE_RECURSE
  "libsld_net.a"
)
