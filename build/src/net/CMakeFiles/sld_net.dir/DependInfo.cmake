
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/addr.cc" "src/net/CMakeFiles/sld_net.dir/addr.cc.o" "gcc" "src/net/CMakeFiles/sld_net.dir/addr.cc.o.d"
  "/root/repo/src/net/config_parser.cc" "src/net/CMakeFiles/sld_net.dir/config_parser.cc.o" "gcc" "src/net/CMakeFiles/sld_net.dir/config_parser.cc.o.d"
  "/root/repo/src/net/config_writer.cc" "src/net/CMakeFiles/sld_net.dir/config_writer.cc.o" "gcc" "src/net/CMakeFiles/sld_net.dir/config_writer.cc.o.d"
  "/root/repo/src/net/topology.cc" "src/net/CMakeFiles/sld_net.dir/topology.cc.o" "gcc" "src/net/CMakeFiles/sld_net.dir/topology.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sld_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
