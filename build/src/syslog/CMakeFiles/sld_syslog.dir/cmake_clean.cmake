file(REMOVE_RECURSE
  "CMakeFiles/sld_syslog.dir/archive.cc.o"
  "CMakeFiles/sld_syslog.dir/archive.cc.o.d"
  "CMakeFiles/sld_syslog.dir/collector.cc.o"
  "CMakeFiles/sld_syslog.dir/collector.cc.o.d"
  "CMakeFiles/sld_syslog.dir/record.cc.o"
  "CMakeFiles/sld_syslog.dir/record.cc.o.d"
  "CMakeFiles/sld_syslog.dir/udp.cc.o"
  "CMakeFiles/sld_syslog.dir/udp.cc.o.d"
  "CMakeFiles/sld_syslog.dir/wire.cc.o"
  "CMakeFiles/sld_syslog.dir/wire.cc.o.d"
  "libsld_syslog.a"
  "libsld_syslog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sld_syslog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
