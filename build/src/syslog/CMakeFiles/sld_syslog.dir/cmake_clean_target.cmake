file(REMOVE_RECURSE
  "libsld_syslog.a"
)
