# Empty compiler generated dependencies file for sld_syslog.
# This may be replaced when dependencies are built.
