
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/syslog/archive.cc" "src/syslog/CMakeFiles/sld_syslog.dir/archive.cc.o" "gcc" "src/syslog/CMakeFiles/sld_syslog.dir/archive.cc.o.d"
  "/root/repo/src/syslog/collector.cc" "src/syslog/CMakeFiles/sld_syslog.dir/collector.cc.o" "gcc" "src/syslog/CMakeFiles/sld_syslog.dir/collector.cc.o.d"
  "/root/repo/src/syslog/record.cc" "src/syslog/CMakeFiles/sld_syslog.dir/record.cc.o" "gcc" "src/syslog/CMakeFiles/sld_syslog.dir/record.cc.o.d"
  "/root/repo/src/syslog/udp.cc" "src/syslog/CMakeFiles/sld_syslog.dir/udp.cc.o" "gcc" "src/syslog/CMakeFiles/sld_syslog.dir/udp.cc.o.d"
  "/root/repo/src/syslog/wire.cc" "src/syslog/CMakeFiles/sld_syslog.dir/wire.cc.o" "gcc" "src/syslog/CMakeFiles/sld_syslog.dir/wire.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sld_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
