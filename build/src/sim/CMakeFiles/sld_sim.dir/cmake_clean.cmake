file(REMOVE_RECURSE
  "CMakeFiles/sld_sim.dir/generator.cc.o"
  "CMakeFiles/sld_sim.dir/generator.cc.o.d"
  "CMakeFiles/sld_sim.dir/messages.cc.o"
  "CMakeFiles/sld_sim.dir/messages.cc.o.d"
  "CMakeFiles/sld_sim.dir/workload.cc.o"
  "CMakeFiles/sld_sim.dir/workload.cc.o.d"
  "libsld_sim.a"
  "libsld_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sld_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
