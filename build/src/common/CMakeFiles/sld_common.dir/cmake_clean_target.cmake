file(REMOVE_RECURSE
  "libsld_common.a"
)
