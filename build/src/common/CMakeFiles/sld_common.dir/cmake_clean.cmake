file(REMOVE_RECURSE
  "CMakeFiles/sld_common.dir/strings.cc.o"
  "CMakeFiles/sld_common.dir/strings.cc.o.d"
  "CMakeFiles/sld_common.dir/time.cc.o"
  "CMakeFiles/sld_common.dir/time.cc.o.d"
  "libsld_common.a"
  "libsld_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sld_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
