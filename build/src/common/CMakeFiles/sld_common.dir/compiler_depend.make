# Empty compiler generated dependencies file for sld_common.
# This may be replaced when dependencies are built.
