
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/augment.cc" "src/core/CMakeFiles/sld_core.dir/augment.cc.o" "gcc" "src/core/CMakeFiles/sld_core.dir/augment.cc.o.d"
  "/root/repo/src/core/digest.cc" "src/core/CMakeFiles/sld_core.dir/digest.cc.o" "gcc" "src/core/CMakeFiles/sld_core.dir/digest.cc.o.d"
  "/root/repo/src/core/eval.cc" "src/core/CMakeFiles/sld_core.dir/eval.cc.o" "gcc" "src/core/CMakeFiles/sld_core.dir/eval.cc.o.d"
  "/root/repo/src/core/knowledge.cc" "src/core/CMakeFiles/sld_core.dir/knowledge.cc.o" "gcc" "src/core/CMakeFiles/sld_core.dir/knowledge.cc.o.d"
  "/root/repo/src/core/learn.cc" "src/core/CMakeFiles/sld_core.dir/learn.cc.o" "gcc" "src/core/CMakeFiles/sld_core.dir/learn.cc.o.d"
  "/root/repo/src/core/location/extractor.cc" "src/core/CMakeFiles/sld_core.dir/location/extractor.cc.o" "gcc" "src/core/CMakeFiles/sld_core.dir/location/extractor.cc.o.d"
  "/root/repo/src/core/location/location.cc" "src/core/CMakeFiles/sld_core.dir/location/location.cc.o" "gcc" "src/core/CMakeFiles/sld_core.dir/location/location.cc.o.d"
  "/root/repo/src/core/priority/present.cc" "src/core/CMakeFiles/sld_core.dir/priority/present.cc.o" "gcc" "src/core/CMakeFiles/sld_core.dir/priority/present.cc.o.d"
  "/root/repo/src/core/priority/report.cc" "src/core/CMakeFiles/sld_core.dir/priority/report.cc.o" "gcc" "src/core/CMakeFiles/sld_core.dir/priority/report.cc.o.d"
  "/root/repo/src/core/query.cc" "src/core/CMakeFiles/sld_core.dir/query.cc.o" "gcc" "src/core/CMakeFiles/sld_core.dir/query.cc.o.d"
  "/root/repo/src/core/rules/rules.cc" "src/core/CMakeFiles/sld_core.dir/rules/rules.cc.o" "gcc" "src/core/CMakeFiles/sld_core.dir/rules/rules.cc.o.d"
  "/root/repo/src/core/stream.cc" "src/core/CMakeFiles/sld_core.dir/stream.cc.o" "gcc" "src/core/CMakeFiles/sld_core.dir/stream.cc.o.d"
  "/root/repo/src/core/templates/drain.cc" "src/core/CMakeFiles/sld_core.dir/templates/drain.cc.o" "gcc" "src/core/CMakeFiles/sld_core.dir/templates/drain.cc.o.d"
  "/root/repo/src/core/templates/learner.cc" "src/core/CMakeFiles/sld_core.dir/templates/learner.cc.o" "gcc" "src/core/CMakeFiles/sld_core.dir/templates/learner.cc.o.d"
  "/root/repo/src/core/templates/template.cc" "src/core/CMakeFiles/sld_core.dir/templates/template.cc.o" "gcc" "src/core/CMakeFiles/sld_core.dir/templates/template.cc.o.d"
  "/root/repo/src/core/templates/token_class.cc" "src/core/CMakeFiles/sld_core.dir/templates/token_class.cc.o" "gcc" "src/core/CMakeFiles/sld_core.dir/templates/token_class.cc.o.d"
  "/root/repo/src/core/temporal/temporal.cc" "src/core/CMakeFiles/sld_core.dir/temporal/temporal.cc.o" "gcc" "src/core/CMakeFiles/sld_core.dir/temporal/temporal.cc.o.d"
  "/root/repo/src/core/trend.cc" "src/core/CMakeFiles/sld_core.dir/trend.cc.o" "gcc" "src/core/CMakeFiles/sld_core.dir/trend.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sld_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/sld_net.dir/DependInfo.cmake"
  "/root/repo/build/src/syslog/CMakeFiles/sld_syslog.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
