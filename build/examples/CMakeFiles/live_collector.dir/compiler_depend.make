# Empty compiler generated dependencies file for live_collector.
# This may be replaced when dependencies are built.
