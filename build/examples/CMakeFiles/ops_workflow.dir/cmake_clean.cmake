file(REMOVE_RECURSE
  "CMakeFiles/ops_workflow.dir/ops_workflow.cpp.o"
  "CMakeFiles/ops_workflow.dir/ops_workflow.cpp.o.d"
  "ops_workflow"
  "ops_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ops_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
