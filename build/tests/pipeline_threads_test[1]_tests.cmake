add_test([=[ThreadedPipelineTest.UdpToQueueToStreamingDigester]=]  /root/repo/build/tests/pipeline_threads_test [==[--gtest_filter=ThreadedPipelineTest.UdpToQueueToStreamingDigester]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[ThreadedPipelineTest.UdpToQueueToStreamingDigester]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  pipeline_threads_test_TESTS ThreadedPipelineTest.UdpToQueueToStreamingDigester)
