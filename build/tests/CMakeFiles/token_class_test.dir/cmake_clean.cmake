file(REMOVE_RECURSE
  "CMakeFiles/token_class_test.dir/core/token_class_test.cc.o"
  "CMakeFiles/token_class_test.dir/core/token_class_test.cc.o.d"
  "token_class_test"
  "token_class_test.pdb"
  "token_class_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/token_class_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
