# Empty dependencies file for pipeline_threads_test.
# This may be replaced when dependencies are built.
