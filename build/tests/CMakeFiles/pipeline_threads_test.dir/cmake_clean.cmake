file(REMOVE_RECURSE
  "CMakeFiles/pipeline_threads_test.dir/core/pipeline_threads_test.cc.o"
  "CMakeFiles/pipeline_threads_test.dir/core/pipeline_threads_test.cc.o.d"
  "pipeline_threads_test"
  "pipeline_threads_test.pdb"
  "pipeline_threads_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_threads_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
