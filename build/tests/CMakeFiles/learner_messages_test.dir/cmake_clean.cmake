file(REMOVE_RECURSE
  "CMakeFiles/learner_messages_test.dir/core/learner_messages_test.cc.o"
  "CMakeFiles/learner_messages_test.dir/core/learner_messages_test.cc.o.d"
  "learner_messages_test"
  "learner_messages_test.pdb"
  "learner_messages_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/learner_messages_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
