// Figure 6 — Number of learned rules vs Conf_min for three SP_min values
// (dataset A, W fixed at 60 seconds).
#include "common.h"
#include "core/rules/rules.h"

using namespace sld;

int main() {
  bench::Header("Figure 6", "rules vs Conf_min and SP_min (dataset A, W=60s)",
                "rule count decreases in Conf_min; higher SP_min yields "
                "fewer rules at every Conf_min");
  const sim::DatasetSpec spec = sim::DatasetASpec();
  bench::Pipeline p = bench::BuildPipeline(spec, 28, 0);
  const auto augmented = bench::Augment(p.kb, p.dict, p.history);
  const core::MiningStats stats =
      core::MineCooccurrence(augmented, 60 * kMsPerSecond);

  std::printf("%-10s", "Conf_min");
  for (const double sp : {0.001, 0.0005, 0.0001}) {
    std::printf("  SP=%-8g", sp);
  }
  std::printf("\n");
  for (double conf = 0.5; conf <= 0.901; conf += 0.05) {
    std::printf("%-10.2f", conf);
    for (const double sp : {0.001, 0.0005, 0.0001}) {
      core::RuleMinerParams params;
      params.window_ms = 60 * kMsPerSecond;
      params.min_support = sp;
      params.min_confidence = conf;
      std::printf("  %-11zu", core::ExtractRules(stats, params).size());
    }
    std::printf("\n");
  }
  return 0;
}
