// Archive ingest throughput (§5.1 scale: "millions of messages per
// day"): records/sec from archive bytes to parsed SyslogRecords, legacy
// istream reader vs the block-based parallel reader, with bit-identical
// record verification on every rep.  Written to BENCH_ingest.json.
//
// The baseline ("legacy") is the pre-refactor serial ReadArchive
// reproduced verbatim below: std::getline into a line string, a
// double-Trim ParseRecordLine, three fresh string allocations per
// record.  The measured path is syslog::ParseArchive at each sweep
// point; its records and malformed count must equal the legacy reader's
// exactly or the bench exits non-zero.  A steady-state allocation audit
// asserts the parse adds ~0 allocations beyond the records' own string
// fields (counting operator new hook in bench_common).
//
//   bench_ingest                      # defaults: 14 days, 3 reps
//   bench_ingest --days 2 --reps 3 --sweep 1,4   # CI smoke
//   bench_ingest --json=FILE          # output path (default
//                                     # BENCH_ingest.json)
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common.h"
#include "common/strings.h"
#include "obs/registry.h"
#include "syslog/ingest.h"

using namespace sld;

namespace {

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// The pre-refactor line parser, frozen verbatim as part of the baseline
// (same role the legacy matcher/learner play in bench_match/bench_learn).
std::optional<syslog::SyslogRecord> LegacyParseRecordLine(
    std::string_view line) {
  line = Trim(line);
  if (line.size() < 21) return std::nullopt;
  const auto time = ParseTimestamp(line.substr(0, 19));
  if (!time) return std::nullopt;
  std::string_view rest = Trim(line.substr(19));
  const std::size_t router_end = rest.find(' ');
  if (router_end == std::string_view::npos) return std::nullopt;
  syslog::SyslogRecord rec;
  rec.time = *time;
  rec.router = std::string(rest.substr(0, router_end));
  rest = Trim(rest.substr(router_end));
  const std::size_t code_end = rest.find(' ');
  if (code_end == std::string_view::npos) {
    rec.code = std::string(rest);
  } else {
    rec.code = std::string(rest.substr(0, code_end));
    rec.detail = std::string(Trim(rest.substr(code_end)));
  }
  if (rec.code.empty()) return std::nullopt;
  return rec;
}

// The pre-refactor serial reader, frozen verbatim.
std::vector<syslog::SyslogRecord> LegacyReadArchive(
    std::istream& in, std::size_t* malformed) {
  std::vector<syslog::SyslogRecord> records;
  std::size_t bad = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    if (auto rec = LegacyParseRecordLine(line)) {
      records.push_back(std::move(*rec));
    } else {
      ++bad;
    }
  }
  if (malformed != nullptr) *malformed = bad;
  return records;
}

double Median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

std::string JsonArray(const std::vector<double>& v) {
  std::string out = "[";
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i != 0) out += ", ";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", v[i]);
    out += buf;
  }
  out += "]";
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  int days = 14;
  int reps = 3;
  std::vector<int> sweep = {1, 2, 4, 8};
  std::string json = "BENCH_ingest.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--days") == 0 && i + 1 < argc) {
      days = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--sweep") == 0 && i + 1 < argc) {
      sweep.clear();
      for (const char* tok = std::strtok(argv[++i], ","); tok != nullptr;
           tok = std::strtok(nullptr, ",")) {
        sweep.push_back(std::atoi(tok));
      }
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json = argv[i] + 7;
    }
  }
  if (days < 1) days = 1;
  if (reps < 1) reps = 1;
  if (sweep.empty()) sweep = {1, 4};
  // The sweep needs a threads=1 point: it anchors the speedup-vs-legacy
  // and thread-scaling ratios the CI gate reads.
  if (std::find(sweep.begin(), sweep.end(), 1) == sweep.end()) {
    sweep.insert(sweep.begin(), 1);
  }

  bench::Header("ingest", "block-parallel archive ingest",
                "millions of syslog messages per day parse in seconds; "
                "records are bit-identical to the serial reader at any "
                "thread count");

  // Archive text with deterministic impurities: comments, garbage lines
  // (counted malformed) and CRLF endings, so the equality check covers
  // the skip/malformed paths too.
  const sim::Dataset ds =
      sim::GenerateDataset(sim::DatasetASpec(), 0, days,
                           bench::kOfflineSeed);
  std::string text;
  text.reserve(ds.messages.size() * 96 + (1u << 16));
  for (std::size_t i = 0; i < ds.messages.size(); ++i) {
    if (i % 512 == 0) text += "# synthetic comment line\n";
    if (i % 1024 == 0) text += "not a syslog record line\n";
    syslog::AppendRecord(ds.messages[i], text);
    text += i % 2048 == 0 ? "\r\n" : "\n";
  }
  const double n = static_cast<double>(ds.messages.size());
  const double mb = static_cast<double>(text.size()) / (1024.0 * 1024.0);
  std::printf("archive: %zu records, %.1f MiB (%d days)\n",
              ds.messages.size(), mb, days);

  // Legacy baseline.  The istringstream is built outside the timer, so
  // the measured window covers exactly what the old ReadArchiveFile did
  // after the open: getline + parse.
  std::vector<double> legacy_reps;
  std::vector<syslog::SyslogRecord> expected;
  std::size_t expected_malformed = 0;
  for (int r = 0; r < reps; ++r) {
    std::istringstream in(text);
    const auto start = std::chrono::steady_clock::now();
    expected = LegacyReadArchive(in, &expected_malformed);
    legacy_reps.push_back(n / Seconds(start));
  }
  const double legacy_rate = Median(legacy_reps);
  std::printf("legacy istream reader:  %12.0f msgs/sec  (%zu records, "
              "%zu malformed)\n",
              legacy_rate, expected.size(), expected_malformed);

  syslog::IngestOptions base_opts;
  // Enough blocks for the widest sweep point to balance, even on the
  // small CI smoke corpus.
  base_opts.block_bytes =
      std::max<std::size_t>(64u << 10, text.size() / 64);

  // Steady-state allocation audit at one thread, single block (so the
  // gather is a pure vector move): the parse may allocate only what the
  // records' own string fields cost, measured by copying those fields.
  bool identical = true;
  double extra_allocs_per_msg = 0.0;
  {
    syslog::IngestOptions opts = base_opts;
    opts.threads = 1;
    opts.block_bytes = text.size() + 1;
    const auto warm = syslog::ParseArchive(text, opts);  // warm caches
    if (warm != expected) identical = false;
    std::vector<std::string> copies;
    copies.reserve(warm.size() * 3);
    std::uint64_t before = bench::AllocationCount();
    for (const syslog::SyslogRecord& rec : warm) {
      copies.push_back(rec.router);
      copies.push_back(rec.code);
      copies.push_back(rec.detail);
    }
    const std::uint64_t field_allocs = bench::AllocationCount() - before;
    copies.clear();
    before = bench::AllocationCount();
    const auto audit = syslog::ParseArchive(text, opts);
    const std::uint64_t parse_allocs = bench::AllocationCount() - before;
    if (audit != expected) identical = false;
    extra_allocs_per_msg =
        parse_allocs > field_allocs
            ? static_cast<double>(parse_allocs - field_allocs) / n
            : 0.0;
    std::printf("steady-state allocations: %.4f/msg beyond the record "
                "fields (%llu parse vs %llu field)\n",
                extra_allocs_per_msg,
                static_cast<unsigned long long>(parse_allocs),
                static_cast<unsigned long long>(field_allocs));
  }

  struct SweepPoint {
    int threads = 1;
    double rate = 0;
    std::vector<double> reps;
    syslog::IngestStats stats;
  };
  std::vector<SweepPoint> points;
  obs::Registry metrics;
  for (const int threads : sweep) {
    SweepPoint point;
    point.threads = threads;
    syslog::IngestOptions opts = base_opts;
    opts.threads = threads;
    for (int r = 0; r < reps; ++r) {
      // Cells sum at Collect time, so bind only the very last rep of the
      // last sweep point (the bench_learn convention).
      opts.metrics = (threads == sweep.back() && r == reps - 1)
                         ? &metrics
                         : nullptr;
      const auto start = std::chrono::steady_clock::now();
      const auto records =
          syslog::ParseArchive(text, opts, &point.stats);
      point.reps.push_back(n / Seconds(start));
      if (records != expected ||
          point.stats.malformed != expected_malformed) {
        identical = false;
        std::fprintf(stderr,
                     "FAIL: records at %d threads differ from the serial "
                     "reader\n",
                     threads);
      }
    }
    point.rate = Median(point.reps);
    points.push_back(std::move(point));
    const SweepPoint& p = points.back();
    std::printf("block reader x%-2d:       %12.0f msgs/sec  (%5.2fx legacy, "
                "%5.2fx vs x1)  [parse %.3fs gather %.3fs, %zu blocks]\n",
                threads, p.rate, p.rate / legacy_rate,
                p.rate / points.front().rate, p.stats.parse_s,
                p.stats.assemble_s, p.stats.blocks);
  }

  std::ofstream out(json);
  out << "{\n  \"benchmark\": \"ingest\",\n  \"dataset\": \"A\",\n"
      << "  \"cpus\": " << std::thread::hardware_concurrency() << ",\n"
      << "  \"days\": " << days << ",\n"
      << "  \"bytes\": " << text.size() << ",\n"
      << "  \"records\": " << expected.size() << ",\n"
      << "  \"malformed\": " << expected_malformed << ",\n"
      << "  \"reps\": " << reps << ",\n"
      << "  \"identical\": " << (identical ? "true" : "false") << ",\n"
      << "  \"extra_allocs_per_msg\": " << extra_allocs_per_msg << ",\n"
      << "  \"legacy_msgs_per_sec\": " << legacy_rate << ",\n"
      << "  \"legacy_reps\": " << JsonArray(legacy_reps) << ",\n"
      << "  \"sweep\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const SweepPoint& p = points[i];
    const double mbps = mb * p.rate / n;
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "    {\"threads\": %d, \"msgs_per_sec\": %.6g, "
                  "\"mb_per_sec\": %.6g, \"speedup\": %.6g, "
                  "\"scaling\": %.6g, \"reps\": %s}",
                  p.threads, p.rate, mbps, p.rate / legacy_rate,
                  p.rate / points.front().rate, JsonArray(p.reps).c_str());
    out << buf << (i + 1 < points.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"metrics\": " << metrics.Collect().RenderJson() << "}\n";
  std::printf("wrote %s\n", json.c_str());
  const bool alloc_ok = extra_allocs_per_msg <= 0.01;
  if (!alloc_ok) {
    std::fprintf(stderr,
                 "FAIL: steady-state parse allocates %.4f/msg beyond the "
                 "record fields\n",
                 extra_allocs_per_msg);
  }
  return identical && alloc_ok ? 0 : 1;
}
