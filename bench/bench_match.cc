// Signature-matching hot path (§4.1): msgs/sec through the matcher alone,
// single-threaded and sharded, plus memo-cache hit rate and heap
// allocations per message in steady state.  Written to BENCH_match.json.
//
// The baseline ("legacy") is the pre-optimization matcher reproduced
// verbatim: a "<code>\x1f<len>" index key string built per message, a
// fresh token vector per probe, FixedCount() recomputed per candidate and
// the detail tokenized twice on the fallback path.  The optimized path is
// the real ConcurrentTemplateMatcher the pipeline shards run.
//
//   bench_match                       # defaults: 14 learn days, ~3 passes
//   bench_match --learn-days 2 --passes 1   # CI smoke
//   bench_match --json=FILE           # output path (default
//                                     # BENCH_match.json)
#include <chrono>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common.h"
#include "obs/registry.h"
#include "pipeline/matcher.h"

using namespace sld;

namespace {

// ---------------------------------------------------------------------------
// The pre-PR matcher, frozen here as the speedup baseline.

struct LegacyTemplate {
  core::TemplateId id = 0;
  std::string code;
  std::vector<std::string> tokens;

  bool Matches(const std::vector<std::string_view>& detail_tokens) const {
    if (detail_tokens.size() != tokens.size()) return false;
    for (std::size_t i = 0; i < tokens.size(); ++i) {
      if (tokens[i] != core::kMask && tokens[i] != detail_tokens[i]) {
        return false;
      }
    }
    return true;
  }

  std::size_t FixedCount() const noexcept {
    std::size_t n = 0;
    for (const std::string& tok : tokens) {
      if (tok != core::kMask) ++n;
    }
    return n;
  }

  std::string Canonical() const {
    std::string out = code;
    for (const std::string& tok : tokens) {
      out += ' ';
      out += tok;
    }
    return out;
  }
};

class LegacyTemplateSet {
 public:
  core::TemplateId Add(std::string code, std::vector<std::string> tokens) {
    LegacyTemplate probe;
    probe.code = code;
    probe.tokens = tokens;
    const std::string canonical = probe.Canonical();
    const auto it = by_canonical_.find(canonical);
    if (it != by_canonical_.end()) return it->second;
    LegacyTemplate tmpl;
    tmpl.id = static_cast<core::TemplateId>(templates_.size());
    tmpl.code = std::move(code);
    tmpl.tokens = std::move(tokens);
    index_[IndexKey(tmpl.code, tmpl.tokens.size())].push_back(tmpl.id);
    by_canonical_.emplace(tmpl.Canonical(), tmpl.id);
    templates_.push_back(std::move(tmpl));
    return templates_.back().id;
  }

  std::optional<core::TemplateId> Match(std::string_view code,
                                        std::string_view detail) const {
    const auto tokens = SplitWhitespace(detail);
    const auto it = index_.find(IndexKey(code, tokens.size()));
    if (it == index_.end()) return std::nullopt;
    const LegacyTemplate* best = nullptr;
    for (const core::TemplateId id : it->second) {
      const LegacyTemplate& tmpl = templates_[id];
      if (!tmpl.Matches(tokens)) continue;
      if (best == nullptr || tmpl.FixedCount() > best->FixedCount()) {
        best = &tmpl;
      }
    }
    if (best == nullptr) return std::nullopt;
    return best->id;
  }

  core::TemplateId MatchOrFallback(std::string_view code,
                                   std::string_view detail) {
    if (const auto id = Match(code, detail)) return *id;
    const std::vector<std::string_view> tokens = SplitWhitespace(detail);
    std::vector<std::string> masked(tokens.size(),
                                    std::string(core::kMask));
    return Add(std::string(code), std::move(masked));
  }

 private:
  static std::string IndexKey(std::string_view code, std::size_t len) {
    std::string key(code);
    key += '\x1f';
    key += std::to_string(len);
    return key;
  }

  std::vector<LegacyTemplate> templates_;
  std::unordered_map<std::string, std::vector<core::TemplateId>> index_;
  std::unordered_map<std::string, core::TemplateId> by_canonical_;
};

// ---------------------------------------------------------------------------

struct Corpus {
  std::vector<const syslog::SyslogRecord*> msgs;
};

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// Rebuilds a fresh TemplateSet from learned templates (TemplateSet is
// move-only, and each measurement wants its own catch-all state).
core::TemplateSet Rebuild(const core::TemplateSet& learned) {
  core::TemplateSet out;
  for (const core::Template& tmpl : learned.All()) {
    out.Add(tmpl.code, tmpl.tokens);
  }
  return out;
}

LegacyTemplateSet RebuildLegacy(const core::TemplateSet& learned) {
  LegacyTemplateSet out;
  for (const core::Template& tmpl : learned.All()) {
    out.Add(tmpl.code, tmpl.tokens);
  }
  return out;
}

double MeasureLegacy(const core::TemplateSet& learned, const Corpus& corpus,
                     int passes) {
  LegacyTemplateSet set = RebuildLegacy(learned);
  std::uint64_t sink = 0;
  for (const auto* rec : corpus.msgs) {  // warmup: create catch-alls
    sink += set.MatchOrFallback(rec->code, rec->detail);
  }
  const auto start = std::chrono::steady_clock::now();
  for (int p = 0; p < passes; ++p) {
    for (const auto* rec : corpus.msgs) {
      sink += set.MatchOrFallback(rec->code, rec->detail);
    }
  }
  const double secs = Seconds(start);
  std::printf("  (checksum %llu)\n", static_cast<unsigned long long>(sink));
  return static_cast<double>(corpus.msgs.size()) * passes / secs;
}

struct HotResult {
  double msgs_per_sec = 0;
  double hit_rate = 0;
  double allocs_per_message = 0;
  std::uint64_t messages = 0;
  std::uint64_t cache_lookups = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t allocs = 0;
};

HotResult MeasureHot(const core::TemplateSet& learned, const Corpus& corpus,
                     int passes, bool use_cache) {
  core::TemplateSet set = Rebuild(learned);
  pipeline::ConcurrentTemplateMatcher matcher(&set);
  pipeline::ShardMatchCache cache;
  pipeline::ShardMatchCache* cache_ptr = use_cache ? &cache : nullptr;
  std::vector<std::string_view> scratch;
  std::uint64_t sink = 0;
  // Two warmup passes: the first creates every catch-all (each insertion
  // bumps the epoch and clears the memo, so entries cached before the last
  // bump are lost); the second refills the memo under the final epoch so
  // the measured passes see the true steady state.
  for (int w = 0; w < 2; ++w) {
    for (const auto* rec : corpus.msgs) {
      sink += matcher.MatchOrFallback(rec->code, rec->detail, cache_ptr,
                                      &scratch);
    }
  }
  const std::uint64_t lookups0 = cache.lookups();
  const std::uint64_t hits0 = cache.hits();
  const std::uint64_t allocs0 = bench::AllocationCount();
  const auto start = std::chrono::steady_clock::now();
  for (int p = 0; p < passes; ++p) {
    for (const auto* rec : corpus.msgs) {
      sink += matcher.MatchOrFallback(rec->code, rec->detail, cache_ptr,
                                      &scratch);
    }
  }
  const double secs = Seconds(start);
  const std::uint64_t allocs = bench::AllocationCount() - allocs0;
  const double n = static_cast<double>(corpus.msgs.size()) * passes;
  HotResult r;
  r.msgs_per_sec = n / secs;
  r.allocs_per_message = static_cast<double>(allocs) / n;
  r.messages = static_cast<std::uint64_t>(n);
  r.cache_lookups = cache.lookups() - lookups0;
  r.cache_hits = cache.hits() - hits0;
  r.allocs = allocs;
  if (use_cache && cache.lookups() > lookups0) {
    r.hit_rate = static_cast<double>(r.cache_hits) /
                 static_cast<double>(r.cache_lookups);
  }
  std::printf("  (checksum %llu)\n", static_cast<unsigned long long>(sink));
  return r;
}

// Sharded: T threads share one matcher (as pipeline shards do), each with
// its own cache and scratch, over a round-robin slice of the corpus.
double MeasureSharded(const core::TemplateSet& learned, const Corpus& corpus,
                      int passes, std::size_t shards) {
  core::TemplateSet set = Rebuild(learned);
  pipeline::ConcurrentTemplateMatcher matcher(&set);
  // Warm on the main thread: one full pass creates every catch-all, then
  // each shard's cache is filled with its own stride slice, so the timed
  // section is pure steady state (no writer-lock fallbacks, warm memos).
  std::vector<pipeline::ShardMatchCache> caches(shards);
  {
    std::vector<std::string_view> scratch;
    for (const auto* rec : corpus.msgs) {
      matcher.MatchOrFallback(rec->code, rec->detail, &caches[0], &scratch);
    }
    for (std::size_t t = 0; t < shards; ++t) {
      for (std::size_t i = t; i < corpus.msgs.size(); i += shards) {
        matcher.MatchOrFallback(corpus.msgs[i]->code,
                                corpus.msgs[i]->detail, &caches[t],
                                &scratch);
      }
    }
  }
  std::vector<std::thread> threads;
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t t = 0; t < shards; ++t) {
    threads.emplace_back([&, t] {
      pipeline::ShardMatchCache& cache = caches[t];
      std::vector<std::string_view> scratch;
      std::uint64_t sink = 0;
      for (int p = 0; p < passes; ++p) {
        for (std::size_t i = t; i < corpus.msgs.size(); i += shards) {
          sink += matcher.MatchOrFallback(corpus.msgs[i]->code,
                                          corpus.msgs[i]->detail, &cache,
                                          &scratch);
        }
      }
      volatile std::uint64_t keep = sink;
      (void)keep;
    });
  }
  for (auto& th : threads) th.join();
  const double secs = Seconds(start);
  return static_cast<double>(corpus.msgs.size()) * passes / secs;
}

}  // namespace

int main(int argc, char** argv) {
  int learn_days = 14;
  int passes = 3;
  std::string json = "BENCH_match.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--learn-days") == 0 && i + 1 < argc) {
      learn_days = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--passes") == 0 && i + 1 < argc) {
      passes = std::atoi(argv[++i]);
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json = argv[i] + 7;
    }
  }
  if (learn_days < 1) learn_days = 1;
  if (passes < 1) passes = 1;

  bench::Header("match", "signature-matching hot path",
                "online matching keeps up with millions of msgs/day; "
                "steady state should be allocation-free");

  bench::Pipeline p =
      bench::BuildPipeline(sim::DatasetASpec(), learn_days, 1);
  Corpus corpus;
  corpus.msgs.reserve(p.live.messages.size());
  for (const auto& rec : p.live.messages) corpus.msgs.push_back(&rec);
  std::printf("corpus: %zu messages, %zu learned templates\n",
              corpus.msgs.size(), p.kb.templates.size());

  const double legacy = MeasureLegacy(p.kb.templates, corpus, passes);
  std::printf("legacy matcher:        %12.0f msgs/sec\n", legacy);
  const HotResult nocache =
      MeasureHot(p.kb.templates, corpus, passes, /*use_cache=*/false);
  std::printf("optimized, no memo:    %12.0f msgs/sec  (%.3f allocs/msg)\n",
              nocache.msgs_per_sec, nocache.allocs_per_message);
  const HotResult cached =
      MeasureHot(p.kb.templates, corpus, passes, /*use_cache=*/true);
  std::printf(
      "optimized + memo:      %12.0f msgs/sec  (%.3f allocs/msg, "
      "%.4f hit rate)\n",
      cached.msgs_per_sec, cached.allocs_per_message, cached.hit_rate);
  std::printf("speedup vs legacy:     %12.2fx\n",
              cached.msgs_per_sec / legacy);

  std::vector<std::pair<std::size_t, double>> sweep;
  for (const std::size_t shards : {1u, 2u, 4u}) {
    sweep.emplace_back(
        shards, MeasureSharded(p.kb.templates, corpus, passes, shards));
    std::printf("sharded x%zu:            %12.0f msgs/sec\n", shards,
                sweep.back().second);
  }

  std::ofstream out(json);
  out << "{\n  \"benchmark\": \"match\",\n  \"dataset\": \"A\",\n"
      << "  \"cpus\": " << std::thread::hardware_concurrency() << ",\n"
      << "  \"corpus_messages\": " << corpus.msgs.size() << ",\n"
      << "  \"passes\": " << passes << ",\n"
      << "  \"legacy_msgs_per_sec\": " << legacy << ",\n"
      << "  \"nocache_msgs_per_sec\": " << nocache.msgs_per_sec << ",\n"
      << "  \"cached_msgs_per_sec\": " << cached.msgs_per_sec << ",\n"
      << "  \"speedup_vs_legacy\": " << cached.msgs_per_sec / legacy
      << ",\n"
      << "  \"cache_hit_rate\": " << cached.hit_rate << ",\n"
      << "  \"allocs_per_message\": " << cached.allocs_per_message << ",\n"
      << "  \"sharded\": [\n";
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    out << "    {\"threads\": " << sweep[i].first
        << ", \"msgs_per_sec\": " << sweep[i].second << "}"
        << (i + 1 < sweep.size() ? "," : "") << "\n";
  }
  // Counters from the timed memoized run, in the DESIGN.md §9 snapshot
  // schema so the same tooling reads bench and CLI output.
  obs::Registry metrics;
  metrics
      .AddCounter("bench_match_messages_total",
                   "messages matched in the timed memoized run")
      ->Inc(cached.messages);
  metrics
      .AddCounter("pipeline_match_cache_lookups_total",
                   "memo-cache lookups in the timed run")
      ->Inc(cached.cache_lookups);
  metrics
      .AddCounter("pipeline_match_cache_hits_total",
                   "memo-cache hits in the timed run")
      ->Inc(cached.cache_hits);
  metrics
      .AddCounter("bench_match_heap_allocations_total",
                   "heap allocations in the timed run (must stay 0)")
      ->Inc(cached.allocs);
  out << "  ],\n  \"metrics\": " << metrics.Collect().RenderJson() << "}\n";
  std::printf("wrote %s\n", json.c_str());
  return 0;
}
