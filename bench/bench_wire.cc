// Wire-front ingest cost (DESIGN.md §15): loopback datagrams/sec for the
// batched backends against the seed's one-poll-one-recvfrom-one-string
// path, plus a steady-state allocation audit and a cross-backend parity
// check.  Written to BENCH_wire.json.
//
// Method: prefill-drain cycles.  A burst of pre-encoded RFC 3164 frames
// is blasted into the listener's kernel receive buffer while the
// receiver is idle, then the drain alone is timed — that isolates the
// receiver-side cost (syscall count, copies, allocations) from sender
// pacing, which is what the wire front changes.  Kernel drops during
// the blast are fine: only datagrams actually delivered are counted,
// and each rep keeps cycling until it has drained a fixed quota.  The
// legacy comparator reproduces the seed receive loop in-process (one
// poll + one recv + one fresh std::string per datagram), so the
// speedup is a same-process relative measure that holds on any host.
//
//   bench_wire                         # defaults: 5 reps, 16384/rep
//   bench_wire --reps 3 --target 6000  # CI smoke
//   bench_wire --json=FILE             # default BENCH_wire.json
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common.h"
#include "syslog/udp.h"
#include "syslog/wire.h"
#include "wirefront/wirefront.h"

using namespace sld;

namespace {

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

double Median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

std::string JsonArray(const std::vector<double>& v) {
  std::string out = "[";
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i != 0) out += ", ";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", v[i]);
    out += buf;
  }
  out += "]";
  return out;
}

// The seed's receive shape: one poll wakeup, one recv, one fresh
// std::string per datagram (udp.cc at the growth seed).
std::optional<std::string> LegacyReceive(syslog::UdpReceiver& receiver,
                                         int timeout_ms) {
  std::string datagram;
  if (!receiver.Receive(&datagram, timeout_ms)) return std::nullopt;
  return datagram;
}

struct RepResult {
  std::size_t delivered = 0;
  double drain_seconds = 0;
  std::uint64_t allocs = 0;
};

// One rep over the wire front: prefill `burst` frames, drain with
// PollOnce, repeat until `target` datagrams have been drained.
RepResult FrontRep(wirefront::WireFront& front, syslog::UdpSender& sender,
                   const std::vector<std::string>& frames, std::size_t burst,
                   std::size_t target) {
  RepResult rep;
  std::size_t consumed_bytes = 0;
  const wirefront::WireFront::Sink sink =
      [&consumed_bytes](std::size_t, std::string_view datagram) {
        consumed_bytes += datagram.size();
      };
  std::size_t next = 0;
  const std::uint64_t allocs_before = bench::AllocationCount();
  while (rep.delivered < target) {
    for (std::size_t i = 0; i < burst; ++i) {
      sender.Send(frames[next++ % frames.size()]);
    }
    const auto start = std::chrono::steady_clock::now();
    std::ptrdiff_t got;
    while ((got = front.PollOnce(0, 0, sink)) > 0) {
      rep.delivered += static_cast<std::size_t>(got);
    }
    rep.drain_seconds += Seconds(start);
  }
  rep.allocs = bench::AllocationCount() - allocs_before;
  (void)consumed_bytes;
  return rep;
}

// Same cycle over the seed path.
RepResult LegacyRep(syslog::UdpReceiver& receiver, syslog::UdpSender& sender,
                    const std::vector<std::string>& frames, std::size_t burst,
                    std::size_t target) {
  RepResult rep;
  std::size_t consumed_bytes = 0;
  std::size_t next = 0;
  while (rep.delivered < target) {
    for (std::size_t i = 0; i < burst; ++i) {
      sender.Send(frames[next++ % frames.size()]);
    }
    const auto start = std::chrono::steady_clock::now();
    while (auto datagram = LegacyReceive(receiver, 0)) {
      consumed_bytes += datagram->size();
      ++rep.delivered;
    }
    rep.drain_seconds += Seconds(start);
  }
  (void)consumed_bytes;
  return rep;
}

// Byte-parity: every frame through `deliver_one` with retransmit-until-
// delivered, so all backends see the identical in-order stream; returns
// the delivered payload sequence.
template <typename DeliverOne>
std::vector<std::string> ParityStream(const std::vector<std::string>& frames,
                                      DeliverOne&& deliver_one) {
  std::vector<std::string> got;
  got.reserve(frames.size());
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::minutes(2);
  for (const std::string& frame : frames) {
    const std::size_t before = got.size();
    while (got.size() == before &&
           std::chrono::steady_clock::now() < deadline) {
      deliver_one(frame, got);
    }
    if (got.size() == before) break;  // deadline: caller sees a mismatch
  }
  return got;
}

}  // namespace

int main(int argc, char** argv) {
  int reps = 5;
  std::size_t burst = 256;
  std::size_t target = 16384;
  std::size_t parity_frames = 2048;
  int listeners = 1;
  std::string json = "BENCH_wire.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--burst") == 0 && i + 1 < argc) {
      burst = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--target") == 0 && i + 1 < argc) {
      target = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--listeners") == 0 && i + 1 < argc) {
      listeners = std::atoi(argv[++i]);
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json = argv[i] + 7;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return 2;
    }
  }
  if (reps < 1) reps = 1;
  if (burst < 16) burst = 16;
  if (target < burst) target = burst;
  if (listeners < 1) listeners = 1;

  bench::Header("wire", "UDP wire front: batched drain vs per-datagram poll",
                "batched recvmmsg (and io_uring where supported) drains "
                "loopback bursts >= 2x faster than the seed loop, with 0 "
                "allocs/datagram");

  // Realistic frames: one day of dataset A, pre-encoded.
  sim::DatasetSpec spec = sim::DatasetASpec();
  spec.topo.num_routers = 20;
  const sim::Dataset day =
      sim::GenerateDataset(spec, 0, 1, bench::kOnlineSeed);
  std::vector<std::string> frames;
  for (const syslog::SyslogRecord& rec : day.messages) {
    frames.push_back(syslog::EncodeRfc3164(rec));
    if (frames.size() == 4096) break;
  }
  if (frames.size() < 64) {
    std::fprintf(stderr, "FAIL: generator produced only %zu frames\n",
                 frames.size());
    return 1;
  }

  struct BackendResult {
    std::string name;
    std::vector<double> reps;
    double allocs_per_datagram = 0;
  };
  std::vector<BackendResult> results;
  std::vector<double> legacy_reps;

  // Legacy comparator: the seed's one-datagram-per-poll loop.
  {
    auto receiver = syslog::UdpReceiver::Bind(0);
    if (!receiver) {
      std::fprintf(stderr, "FAIL: legacy bind\n");
      return 1;
    }
    auto sender = syslog::UdpSender::Open("127.0.0.1", receiver->port());
    LegacyRep(*receiver, *sender, frames, burst, burst);  // warm-up
    for (int r = 0; r < reps; ++r) {
      const RepResult rep = LegacyRep(*receiver, *sender, frames, burst,
                                      target);
      legacy_reps.push_back(static_cast<double>(rep.delivered) /
                            rep.drain_seconds);
    }
    std::printf("%-10s %12.0f datagrams/sec (drain only)\n", "legacy",
                Median(legacy_reps));
  }

  // Wire-front backends: poll always, uring where this host supports it.
  std::vector<wirefront::Backend> backends{wirefront::Backend::kPoll};
  if (wirefront::UringSupported()) {
    backends.push_back(wirefront::Backend::kUring);
  }
  for (const wirefront::Backend backend : backends) {
    wirefront::WireOptions options;
    options.backend = backend;
    options.listeners = listeners;
    options.rcvbuf_bytes = 8 * 1024 * 1024;
    std::string error;
    auto front =
        wirefront::WireFront::Open(options, {wirefront::TenantPort{}}, &error);
    if (front == nullptr) {
      std::fprintf(stderr, "FAIL: wirefront open (%s): %s\n",
                   wirefront::BackendName(backend), error.c_str());
      return 1;
    }
    auto sender = syslog::UdpSender::Open("127.0.0.1", front->port_of(0));
    BackendResult result;
    result.name = wirefront::BackendName(backend);
    FrontRep(*front, *sender, frames, burst, burst);  // warm-up
    std::uint64_t audit_allocs = 0;
    std::size_t audit_delivered = 0;
    for (int r = 0; r < reps; ++r) {
      const RepResult rep = FrontRep(*front, *sender, frames, burst, target);
      result.reps.push_back(static_cast<double>(rep.delivered) /
                            rep.drain_seconds);
      audit_allocs += rep.allocs;
      audit_delivered += rep.delivered;
    }
    result.allocs_per_datagram = static_cast<double>(audit_allocs) /
                                 static_cast<double>(audit_delivered);
    std::printf("%-10s %12.0f datagrams/sec  %.2fx legacy  %.4f "
                "allocs/datagram\n",
                result.name.c_str(), Median(result.reps),
                Median(result.reps) / Median(legacy_reps),
                result.allocs_per_datagram);
    results.push_back(std::move(result));
  }

  // Parity: every backend must deliver the identical byte stream from
  // the identical in-order send sequence.
  bool identical = true;
  {
    std::vector<std::string> parity(frames.begin(),
                                    frames.begin() +
                                        std::min(parity_frames,
                                                 frames.size()));
    // Frames must be unique for retransmit-until-delivered to be
    // idempotent on the comparison (a duplicate arrival is detectable).
    std::set<std::string> unique(parity.begin(), parity.end());
    parity.assign(unique.begin(), unique.end());

    std::vector<std::string> want;
    {
      auto receiver = syslog::UdpReceiver::Bind(0);
      auto sender = syslog::UdpSender::Open("127.0.0.1", receiver->port());
      want = ParityStream(parity, [&](const std::string& frame,
                                      std::vector<std::string>& got) {
        sender->Send(frame);
        if (auto datagram = LegacyReceive(*receiver, 100)) {
          if (got.empty() || got.back() != *datagram) {
            got.push_back(std::move(*datagram));
          }
        }
      });
    }
    for (const wirefront::Backend backend : backends) {
      wirefront::WireOptions options;
      options.backend = backend;
      std::string error;
      auto front = wirefront::WireFront::Open(
          options, {wirefront::TenantPort{}}, &error);
      auto sender = syslog::UdpSender::Open("127.0.0.1", front->port_of(0));
      const std::vector<std::string> got = ParityStream(
          parity, [&](const std::string& frame,
                      std::vector<std::string>& acc) {
            sender->Send(frame);
            const wirefront::WireFront::Sink sink =
                [&acc](std::size_t, std::string_view datagram) {
                  if (acc.empty() || acc.back() != datagram) {
                    acc.emplace_back(datagram);
                  }
                };
            front->PollOnce(100, 0, sink);
          });
      if (got != want) {
        identical = false;
        std::fprintf(stderr,
                     "FAIL: backend %s delivered a different byte stream "
                     "(%zu vs %zu frames)\n",
                     wirefront::BackendName(backend), got.size(),
                     want.size());
      }
    }
    std::printf("parity over %zu unique frames: %s\n", parity.size(),
                identical ? "identical" : "DIVERGED");
  }

  std::ofstream out(json);
  out << "{\n"
      << "  \"benchmark\": \"wire\",\n"
      << "  \"cpus\": " << std::thread::hardware_concurrency() << ",\n"
      << "  \"burst\": " << burst << ",\n"
      << "  \"target\": " << target << ",\n"
      << "  \"listeners\": " << listeners << ",\n"
      << "  \"reps\": " << reps << ",\n"
      << "  \"identical\": " << (identical ? "true" : "false") << ",\n"
      << "  \"legacy_dgrams_per_sec\": " << Median(legacy_reps) << ",\n"
      << "  \"legacy_reps\": " << JsonArray(legacy_reps) << ",\n"
      << "  \"backends\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const BackendResult& r = results[i];
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g",
                  Median(r.reps) / Median(legacy_reps));
    out << "    {\"backend\": \"" << r.name << "\", \"dgrams_per_sec\": "
        << Median(r.reps) << ",\n     \"speedup_vs_legacy\": " << buf
        << ", \"allocs_per_datagram\": " << r.allocs_per_datagram
        << ",\n     \"reps\": " << JsonArray(r.reps) << "}"
        << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::printf("wrote %s\n", json.c_str());
  return identical ? 0 : 1;
}
