// §5.2.1 — Message template identification accuracy.
//
// The paper validates learned templates against hand-coded vendor
// knowledge and reports 94% agreement.  We have exact ground truth from
// the generator, so we report both directions: how many true templates
// were recovered, and how many learned templates are spurious sub-types
// (the paper's "GigabitEthernet" caveat realized, e.g. temperature-sensor
// ids that take too few distinct values to mask).
#include <set>

#include "common.h"

using namespace sld;

namespace {

void Run(const sim::DatasetSpec& spec) {
  const sim::Dataset history =
      sim::GenerateDataset(spec, 0, 84, bench::kOfflineSeed);
  core::TemplateLearner learner;
  for (const auto& rec : history.messages) {
    learner.Add(rec.code, rec.detail);
  }
  const core::TemplateSet set = learner.Learn();

  std::set<std::string> learned;
  for (const core::Template& tmpl : set.All()) {
    learned.insert(tmpl.Canonical());
  }
  std::size_t recovered = 0;
  std::size_t recovered_common = 0;
  std::size_t common = 0;
  std::size_t weighted_hit = 0;
  std::size_t weighted_total = 0;
  for (const auto& [gt, count] : history.gt_templates) {
    const bool hit = learned.count(gt) != 0;
    recovered += hit;
    if (count >= 10) {
      ++common;
      recovered_common += hit;
    }
    weighted_total += count;
    if (hit) weighted_hit += count;
  }
  std::size_t spurious = 0;
  for (const std::string& l : learned) {
    if (history.gt_templates.count(l) == 0) ++spurious;
  }
  std::printf(
      "dataset %s: %zu messages, %zu true templates, %zu learned\n",
      spec.name.c_str(), history.messages.size(),
      history.gt_templates.size(), learned.size());
  std::printf(
      "  recovered (all types):       %zu/%zu = %.1f%% (paper: 94%%)\n",
      recovered, history.gt_templates.size(),
      100.0 * static_cast<double>(recovered) /
          static_cast<double>(history.gt_templates.size()));
  std::printf(
      "  recovered (>=10 messages):   %zu/%zu = %.1f%%\n", recovered_common,
      common,
      100.0 * static_cast<double>(recovered_common) /
          static_cast<double>(common));
  std::printf(
      "  message-weighted recovery:   %.2f%%; spurious learned: %zu\n",
      100.0 * static_cast<double>(weighted_hit) /
          static_cast<double>(weighted_total),
      spurious);
  for (const auto& [gt, count] : history.gt_templates) {
    if (learned.count(gt) == 0 && count >= 10) {
      std::printf("  missed common type (%zu msgs): %s\n", count,
                  gt.c_str());
    }
  }
}

}  // namespace

int main() {
  bench::Header("S5.2.1", "template identification vs ground truth",
                "~94% of templates match; mismatches are under-diverse "
                "variable fields");
  Run(sim::DatasetASpec());
  Run(sim::DatasetBSpec());
  return 0;
}
