// Ablation: digesting with a stale / incomplete location dictionary.
//
// The paper's offline learning "will be periodically run to incorporate
// the latest changes to router hardware and software configurations."
// This bench quantifies why: we digest the same online stream with
// dictionaries built from decreasing fractions of the router configs.
// Messages from unknown routers can still group temporally (and by rules
// among themselves), but location-dependent grouping and cross-router
// assembly degrade.
#include <algorithm>

#include "common.h"
#include "core/eval.h"

using namespace sld;

int main(int argc, char** argv) {
  const bench::AblationArgs args =
      bench::ParseAblationArgs(argc, argv, /*learn_days=*/28,
                               /*live_days=*/7);
  bench::Header("ablation", "digest quality vs dictionary completeness",
                "compression and event assembly degrade as the location "
                "dictionary goes stale (missing routers)");
  const sim::DatasetSpec spec = sim::DatasetASpec();
  bench::Pipeline p =
      bench::BuildPipeline(spec, args.learn_days, args.live_days);

  std::ofstream js;
  if (!args.json.empty()) {
    js = bench::OpenAblationJson(args.json, "stale_dict", args);
    js << "  \"dataset\": \"" << spec.name << "\",\n  \"rows\": [\n";
  }
  std::printf("%-12s %-10s %-12s %-14s %s\n", "configs %", "events",
              "ratio", "fragmentation", "fully assembled");
  bool first = true;
  for (const int percent : {100, 75, 50, 25, 0}) {
    // Dictionary from the first `percent` of router configs.
    std::vector<net::ParsedConfig> parsed;
    const std::size_t keep =
        p.history.configs.size() * static_cast<std::size_t>(percent) / 100;
    for (std::size_t i = 0; i < keep; ++i) {
      parsed.push_back(net::ParseConfig(p.history.configs[i]));
    }
    const core::LocationDict dict = core::LocationDict::Build(parsed);
    // The knowledge base must be learned against the same dictionary
    // (router keys shift with it).
    core::OfflineLearnerParams params;
    params.rules = bench::PaperRuleParams(spec);
    core::OfflineLearner learner(params);
    core::KnowledgeBase kb = learner.Learn(p.history.messages, dict);
    core::Digester digester(&kb, &dict);
    const core::DigestResult result = digester.Digest(p.live.messages);
    const core::GroupingQuality q = core::EvaluateGrouping(p.live, result);
    std::printf("%-12d %-10zu %-12.3e %-14.2f %.1f%%\n", percent,
                result.events.size(), result.CompressionRatio(),
                q.mean_fragmentation, 100.0 * q.fully_assembled_fraction);
    if (!args.json.empty()) {
      js << (first ? "" : ",\n") << "    {\"configs_pct\": " << percent
         << ", \"events\": " << result.events.size()
         << ", \"compression_ratio\": " << result.CompressionRatio()
         << ", \"mean_fragmentation\": " << q.mean_fragmentation
         << ", \"fully_assembled_pct\": "
         << 100.0 * q.fully_assembled_fraction << "}";
      first = false;
    }
  }
  if (!args.json.empty()) {
    js << "\n  ]\n}\n";
    std::printf("wrote %s\n", args.json.c_str());
  }
  return 0;
}
