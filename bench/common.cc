#include "common.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <new>

// Counting global operator new/delete: every bench binary links this TU
// (they all call into bench_common), so the replaceable allocation
// functions below override the library ones and count every heap
// allocation in the process.  Deletes forward straight to free — the
// counter tracks allocation pressure, not live bytes.
namespace {
std::atomic<std::uint64_t> g_allocations{0};

void* CountedAlloc(std::size_t size) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}
}  // namespace

void* operator new(std::size_t size) {
  if (void* p = CountedAlloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  if (void* p = CountedAlloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return CountedAlloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return CountedAlloc(size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace sld::bench {

std::uint64_t AllocationCount() noexcept {
  return g_allocations.load(std::memory_order_relaxed);
}

int LearnThreadsFromEnv() {
  const char* env = std::getenv("SLD_LEARN_THREADS");
  if (env == nullptr || *env == '\0') return 1;
  return std::atoi(env);
}

int IngestThreadsFromEnv() {
  const char* env = std::getenv("SLD_INGEST_THREADS");
  if (env == nullptr || *env == '\0') return 1;
  return std::atoi(env);
}

core::RuleMinerParams PaperRuleParams(const sim::DatasetSpec& spec) {
  core::RuleMinerParams params;
  params.window_ms = (spec.name == "A" ? 120 : 40) * kMsPerSecond;
  params.min_support = 0.0005;
  params.min_confidence = 0.8;
  return params;
}

core::LocationDict BuildDict(const sim::Dataset& ds) {
  std::vector<net::ParsedConfig> parsed;
  parsed.reserve(ds.configs.size());
  for (const std::string& cfg : ds.configs) {
    parsed.push_back(net::ParseConfig(cfg));
  }
  return core::LocationDict::Build(parsed);
}

Pipeline BuildPipeline(const sim::DatasetSpec& spec, int learn_days,
                       int online_days, core::RuleEvolution* evolution,
                       const core::OfflineLearnerParams* params) {
  Pipeline p;
  p.history = sim::GenerateDataset(spec, 0, learn_days, kOfflineSeed);
  if (online_days > 0) {
    p.live =
        sim::GenerateDataset(spec, learn_days, online_days, kOnlineSeed);
  }
  p.dict = BuildDict(p.history);
  core::OfflineLearnerParams learn_params;
  if (params != nullptr) {
    learn_params = *params;
  } else {
    learn_params.rules = PaperRuleParams(spec);
    learn_params.threads = LearnThreadsFromEnv();
  }
  core::OfflineLearner learner(learn_params);
  p.kb = learner.Learn(p.history.messages, p.dict, evolution);
  return p;
}

std::vector<core::Augmented> Augment(core::KnowledgeBase& kb,
                                     const core::LocationDict& dict,
                                     const sim::Dataset& ds) {
  core::Augmenter augmenter(&kb.templates, &dict);
  return augmenter.AugmentAll(ds.messages);
}

AblationArgs ParseAblationArgs(int argc, char** argv, int learn_days,
                               int live_days) {
  AblationArgs args;
  args.learn_days = learn_days;
  args.live_days = live_days;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--learn-days") == 0 && i + 1 < argc) {
      args.learn_days = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--live-days") == 0 && i + 1 < argc) {
      args.live_days = std::atoi(argv[++i]);
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      args.json = argv[i] + 7;
    } else {
      std::fprintf(stderr,
                   "unknown argument: %s\nusage: %s [--learn-days N] "
                   "[--live-days N] [--json=FILE]\n",
                   argv[i], argv[0]);
      std::exit(2);
    }
  }
  if (args.learn_days < 1) args.learn_days = 1;
  if (args.live_days < 0) args.live_days = 0;
  return args;
}

std::ofstream OpenAblationJson(const std::string& path, const char* name,
                               const AblationArgs& args) {
  std::ofstream out(path);
  out.precision(std::numeric_limits<double>::max_digits10);
  out << "{\n  \"benchmark\": \"ablation\",\n  \"name\": \"" << name
      << "\",\n  \"learn_days\": " << args.learn_days
      << ",\n  \"live_days\": " << args.live_days << ",\n";
  return out;
}

void Header(const char* id, const char* title, const char* paper_shape) {
  std::printf("\n================================================================\n");
  std::printf("%s: %s\n", id, title);
  std::printf("paper shape: %s\n", paper_shape);
  std::printf("================================================================\n");
}

}  // namespace sld::bench
