// Figure 11 — Temporal-grouping compression ratio vs the tolerance β
// (α fixed at the per-dataset optimum).  Ratio improves as β grows, with
// diminishing returns; the paper settles on β = 5.
#include "common.h"
#include "core/temporal/temporal.h"

using namespace sld;

namespace {

void Run(const sim::DatasetSpec& spec, double alpha) {
  bench::Pipeline p = bench::BuildPipeline(spec, 14, 0);
  const auto augmented = bench::Augment(p.kb, p.dict, p.history);
  const core::TemporalPriors priors = core::MineTemporalPriors(augmented);
  std::printf("dataset %s (alpha=%g):\n  %-6s %s\n", spec.name.c_str(),
              alpha, "beta", "compression ratio (T only)");
  for (double beta = 2.0; beta <= 7.0; beta += 1.0) {
    core::TemporalParams params;
    params.alpha = alpha;
    params.beta = beta;
    const std::size_t groups =
        core::CountTemporalGroups(augmented, params, priors);
    std::printf("  %-6g %.4e  (%zu groups)\n", beta,
                static_cast<double>(groups) /
                    static_cast<double>(augmented.size()),
                groups);
  }
}

}  // namespace

int main() {
  bench::Header("Figure 11", "compression ratio vs beta",
                "ratio decreases in beta with diminishing improvement; "
                "beta=5 chosen");
  Run(sim::DatasetASpec(), 0.05);
  Run(sim::DatasetBSpec(), 0.075);
  return 0;
}
