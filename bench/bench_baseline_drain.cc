// Baseline comparison (§5.2.1 extended): the paper's frequent-word tree
// learner vs a Drain-style online miner on the same labeled history.
//
// Reported per learner: ground-truth templates recovered, spurious
// templates produced, and wall time.  Drain lacks the location-word
// exclusion and sample-size cap, so interface names with few distinct
// values and scarce message types leak into its templates.
#include <chrono>
#include <set>

#include "common.h"
#include "core/templates/drain.h"
#include "core/templates/learner.h"

using namespace sld;

namespace {

struct Outcome {
  std::size_t recovered = 0;
  std::size_t spurious = 0;
  std::size_t learned = 0;
  double millis = 0;
};

Outcome Score(const core::TemplateSet& set, const sim::Dataset& ds,
              double millis) {
  std::set<std::string> learned;
  for (const core::Template& tmpl : set.All()) {
    learned.insert(tmpl.Canonical());
  }
  Outcome out;
  out.learned = learned.size();
  out.millis = millis;
  for (const auto& [gt, count] : ds.gt_templates) {
    (void)count;
    out.recovered += learned.count(gt);
  }
  for (const std::string& l : learned) {
    out.spurious += ds.gt_templates.count(l) == 0;
  }
  return out;
}

void Run(const sim::DatasetSpec& spec) {
  const sim::Dataset ds =
      sim::GenerateDataset(spec, 0, 28, bench::kOfflineSeed);

  const auto t0 = std::chrono::steady_clock::now();
  core::TemplateLearner paper;
  for (const auto& rec : ds.messages) paper.Add(rec.code, rec.detail);
  const core::TemplateSet paper_set = paper.Learn();
  const auto t1 = std::chrono::steady_clock::now();
  core::DrainLearner drain;
  for (const auto& rec : ds.messages) drain.Add(rec.code, rec.detail);
  const core::TemplateSet drain_set = drain.Templates();
  const auto t2 = std::chrono::steady_clock::now();

  const auto ms = [](auto a, auto b) {
    return std::chrono::duration<double, std::milli>(b - a).count();
  };
  const Outcome paper_out = Score(paper_set, ds, ms(t0, t1));
  const Outcome drain_out = Score(drain_set, ds, ms(t1, t2));

  std::printf("dataset %s (%zu messages, %zu true templates):\n",
              spec.name.c_str(), ds.messages.size(),
              ds.gt_templates.size());
  std::printf("  %-14s %-10s %-10s %-9s %s\n", "learner", "recovered",
              "spurious", "learned", "time");
  const auto row = [&](const char* name, const Outcome& o) {
    std::printf("  %-14s %zu/%-8zu %-10zu %-9zu %.0f ms\n", name,
                o.recovered, ds.gt_templates.size(), o.spurious, o.learned,
                o.millis);
  };
  row("paper-tree", paper_out);
  row("drain", drain_out);
}

}  // namespace

int main() {
  bench::Header("baseline", "template mining: paper's learner vs Drain",
                "both recover most templates; Drain produces more spurious "
                "templates (no location exclusion / sample-size cap)");
  Run(sim::DatasetASpec());
  Run(sim::DatasetBSpec());
  return 0;
}
