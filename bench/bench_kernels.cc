// Byte-kernel microbench: GB/s per kernel per SIMD dispatch level
// (common/simd.h), with in-process scalar agreement verified on the full
// corpus every run and a steady-state allocation audit.  Written to
// BENCH_kernels.json and gated in CI by tools/bench_gate.py (kind
// "kernels"): agreement and the zero-alloc audit always; avx2-vs-scalar
// speedup floors only when the running host reports AVX2.
//
//   bench_kernels                     # defaults: ~8 MiB corpus, 5 reps
//   bench_kernels --mb 2 --reps 3     # CI smoke
//   bench_kernels --json=FILE         # output path (default
//                                     # BENCH_kernels.json)
#include <algorithm>
#include <array>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "common.h"
#include "common/hash.h"
#include "common/simd.h"

using namespace sld;

namespace {

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

double Median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

std::string JsonArray(const std::vector<double>& v) {
  std::string out = "[";
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i != 0) out += ", ";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", v[i]);
    out += buf;
  }
  out += "]";
  return out;
}

// Deterministic syslog-shaped corpus: newline-terminated lines of short
// space/tab-separated tokens (the byte distribution the kernels actually
// see), plus focused inputs for the fixed-width kernels.
struct Corpus {
  std::string lines;                       // find_newline input
  std::vector<std::string> details;        // split/hash input
  std::size_t detail_bytes = 0;
  std::vector<std::string> digit_fields;   // validate_digits input
  std::size_t digit_bytes = 0;
  std::vector<std::array<char, 16>> dates; // equal_date10 pairs (i, i+1)
  std::vector<std::array<char, 8>> clocks; // parse_clock8 input
};

Corpus BuildCorpus(std::size_t target_bytes) {
  Corpus c;
  std::mt19937_64 rng(bench::kOfflineSeed);
  static constexpr char kToken[] =
      "abcdefghijklmnopqrstuvwxyzABCDEF0123456789./:-";
  c.lines.reserve(target_bytes + 160);
  std::string detail;
  while (c.lines.size() < target_bytes) {
    detail.clear();
    const int tokens = 4 + static_cast<int>(rng() % 10);
    for (int t = 0; t < tokens; ++t) {
      if (t != 0) detail += (rng() % 16 == 0) ? '\t' : ' ';
      const int len = 2 + static_cast<int>(rng() % 11);
      for (int i = 0; i < len; ++i) {
        detail += kToken[rng() % (sizeof(kToken) - 1)];
      }
    }
    c.lines += detail;
    c.lines += '\n';
    c.detail_bytes += detail.size();
    c.details.push_back(detail);
  }
  // Digit fields: mostly pure digits (lengths 1..19), every 8th with one
  // corrupt byte so the early-exit path is timed too.
  for (int i = 0; i < 4096; ++i) {
    std::string field;
    const int len = 1 + static_cast<int>(rng() % 19);
    for (int j = 0; j < len; ++j) {
      field += static_cast<char>('0' + rng() % 10);
    }
    if (i % 8 == 0) field[rng() % field.size()] = 'x';
    c.digit_bytes += field.size();
    c.digit_fields.push_back(std::move(field));
  }
  // Date pairs: compare (i, i+1); runs of equal dates with a mismatch
  // roughly every 16 entries (the archive-scan hit pattern).
  std::array<char, 16> date{};
  std::memcpy(date.data(), "2010-01-10\0\0\0\0\0\0", 16);
  for (int i = 0; i < 4096; ++i) {
    if (rng() % 16 == 0) date[8] = static_cast<char>('0' + rng() % 10);
    c.dates.push_back(date);
  }
  // Clocks: valid shapes with a malformed byte every 32nd entry.
  for (int i = 0; i < 4096; ++i) {
    char buf[9];
    std::snprintf(buf, sizeof(buf), "%02d:%02d:%02d",
                  static_cast<int>(rng() % 24), static_cast<int>(rng() % 60),
                  static_cast<int>(rng() % 60));
    std::array<char, 8> clock;
    std::memcpy(clock.data(), buf, 8);
    if (i % 32 == 0) clock[rng() % 8] = 'x';
    c.clocks.push_back(clock);
  }
  return c;
}

// One timed pass per kernel.  Each returns a checksum (defeats dead-code
// elimination) and sets `bytes` to the volume processed.
std::uint64_t RunFindNewline(const simd::KernelTable& t, const Corpus& c,
                             std::size_t& bytes) {
  const char* data = c.lines.data();
  const std::size_t n = c.lines.size();
  std::uint64_t sum = 0;
  std::size_t pos = 0;
  while (pos < n) {
    const std::size_t nl = t.find_byte(data, n, pos, '\n');
    sum += nl;
    pos = nl + 1;
  }
  bytes = n;
  return sum;
}

std::uint64_t RunSplitWhitespace(const simd::KernelTable& t, const Corpus& c,
                                 std::vector<std::string_view>& scratch,
                                 std::size_t& bytes) {
  std::uint64_t sum = 0;
  for (const std::string& d : c.details) {
    t.split_whitespace(d, &scratch);
    sum += scratch.size();
    if (!scratch.empty()) sum += scratch.back().size();
  }
  bytes = c.detail_bytes;
  return sum;
}

std::uint64_t RunHashBytes(const simd::KernelTable& t, const Corpus& c,
                           std::size_t& bytes) {
  std::uint64_t sum = 0;
  for (const std::string& d : c.details) {
    sum ^= t.hash_bytes(d.data(), d.size(), kFnv1aOffset);
  }
  bytes = c.detail_bytes;
  return sum;
}

std::uint64_t RunValidateDigits(const simd::KernelTable& t, const Corpus& c,
                                std::size_t& bytes) {
  std::uint64_t sum = 0;
  for (const std::string& f : c.digit_fields) {
    sum += t.validate_digits(f.data(), f.size()) ? 1 : 0;
  }
  bytes = c.digit_bytes;
  return sum;
}

std::uint64_t RunEqualDate10(const simd::KernelTable& t, const Corpus& c,
                             std::size_t& bytes) {
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i + 1 < c.dates.size(); ++i) {
    sum += t.equal_date10(c.dates[i].data(), c.dates[i + 1].data()) ? 1 : 0;
  }
  bytes = (c.dates.size() - 1) * 10;
  return sum;
}

std::uint64_t RunParseClock8(const simd::KernelTable& t, const Corpus& c,
                             std::size_t& bytes) {
  std::uint64_t sum = 0;
  for (const std::array<char, 8>& clock : c.clocks) {
    sum += static_cast<std::uint64_t>(
        static_cast<std::int64_t>(t.parse_clock8(clock.data())));
  }
  bytes = c.clocks.size() * 8;
  return sum;
}

struct LevelResult {
  simd::Level level;
  double gb_per_sec = 0;
  std::vector<double> reps;
};

struct KernelResult {
  const char* name;
  std::vector<LevelResult> levels;
};

std::vector<simd::Level> HostLevels() {
  std::vector<simd::Level> levels = {simd::Level::kScalar};
  if (simd::Supported(simd::Level::kSse2)) {
    levels.push_back(simd::Level::kSse2);
  }
  if (simd::Supported(simd::Level::kAvx2)) {
    levels.push_back(simd::Level::kAvx2);
  }
  return levels;
}

}  // namespace

int main(int argc, char** argv) {
  int reps = 5;
  std::size_t mb = 8;
  std::string json = "BENCH_kernels.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--mb") == 0 && i + 1 < argc) {
      mb = static_cast<std::size_t>(std::atol(argv[++i]));
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json = argv[i] + 7;
    }
  }
  if (reps < 1) reps = 1;
  if (mb < 1) mb = 1;

  bench::Header("kernels", "SIMD byte-kernel throughput",
                "per-kernel GB/s at each dispatch level; every level "
                "byte-identical to the scalar oracle");

  const Corpus corpus = BuildCorpus(mb << 20);
  std::printf("corpus: %zu lines bytes, %zu details, %zu digit fields\n",
              corpus.lines.size(), corpus.details.size(),
              corpus.digit_fields.size());

  const std::vector<simd::Level> levels = HostLevels();
  const simd::Level best = levels.back();

  // Agreement: every kernel at every level must reproduce the scalar
  // oracle's results on the full corpus (checksums compare everything the
  // runners observe: positions, token counts/spans, hashes, verdicts).
  bool identical = true;
  std::vector<std::string_view> scratch;
  {
    const simd::KernelTable& oracle = simd::TableFor(simd::Level::kScalar);
    std::size_t bytes = 0;
    const std::uint64_t want_nl = RunFindNewline(oracle, corpus, bytes);
    const std::uint64_t want_split =
        RunSplitWhitespace(oracle, corpus, scratch, bytes);
    const std::uint64_t want_hash = RunHashBytes(oracle, corpus, bytes);
    const std::uint64_t want_digits =
        RunValidateDigits(oracle, corpus, bytes);
    const std::uint64_t want_dates = RunEqualDate10(oracle, corpus, bytes);
    const std::uint64_t want_clocks = RunParseClock8(oracle, corpus, bytes);
    for (const simd::Level level : levels) {
      const simd::KernelTable& t = simd::TableFor(level);
      const bool ok =
          RunFindNewline(t, corpus, bytes) == want_nl &&
          RunSplitWhitespace(t, corpus, scratch, bytes) == want_split &&
          RunHashBytes(t, corpus, bytes) == want_hash &&
          RunValidateDigits(t, corpus, bytes) == want_digits &&
          RunEqualDate10(t, corpus, bytes) == want_dates &&
          RunParseClock8(t, corpus, bytes) == want_clocks;
      if (!ok) {
        identical = false;
        std::fprintf(stderr, "FAIL: %s kernels disagree with scalar\n",
                     simd::LevelName(level));
      }
    }
  }

  // Steady-state allocation audit: with the scratch vector warmed, a full
  // pass over every kernel at the best level must allocate nothing.
  std::uint64_t steady_allocs = 0;
  {
    const simd::KernelTable& t = simd::TableFor(best);
    std::size_t bytes = 0;
    RunSplitWhitespace(t, corpus, scratch, bytes);  // warm scratch
    const std::uint64_t before = bench::AllocationCount();
    RunFindNewline(t, corpus, bytes);
    RunSplitWhitespace(t, corpus, scratch, bytes);
    RunHashBytes(t, corpus, bytes);
    RunValidateDigits(t, corpus, bytes);
    RunEqualDate10(t, corpus, bytes);
    RunParseClock8(t, corpus, bytes);
    steady_allocs = bench::AllocationCount() - before;
    std::printf("steady-state allocations over all kernels: %llu\n",
                static_cast<unsigned long long>(steady_allocs));
  }

  using Runner = std::uint64_t (*)(const simd::KernelTable&, const Corpus&,
                                   std::vector<std::string_view>&,
                                   std::size_t&);
  struct Spec {
    const char* name;
    Runner run;
  };
  // Uniform runner signature (the scratch is unused by most kernels).
  static const Spec kSpecs[] = {
      {"find_newline",
       [](const simd::KernelTable& t, const Corpus& c,
          std::vector<std::string_view>&, std::size_t& b) {
         return RunFindNewline(t, c, b);
       }},
      {"split_whitespace",
       [](const simd::KernelTable& t, const Corpus& c,
          std::vector<std::string_view>& s, std::size_t& b) {
         return RunSplitWhitespace(t, c, s, b);
       }},
      {"hash_bytes",
       [](const simd::KernelTable& t, const Corpus& c,
          std::vector<std::string_view>&, std::size_t& b) {
         return RunHashBytes(t, c, b);
       }},
      {"validate_digits",
       [](const simd::KernelTable& t, const Corpus& c,
          std::vector<std::string_view>&, std::size_t& b) {
         return RunValidateDigits(t, c, b);
       }},
      {"equal_date10",
       [](const simd::KernelTable& t, const Corpus& c,
          std::vector<std::string_view>&, std::size_t& b) {
         return RunEqualDate10(t, c, b);
       }},
      {"parse_clock8",
       [](const simd::KernelTable& t, const Corpus& c,
          std::vector<std::string_view>&, std::size_t& b) {
         return RunParseClock8(t, c, b);
       }},
  };

  std::uint64_t sink = 0;
  std::vector<KernelResult> results;
  for (const Spec& spec : kSpecs) {
    KernelResult result;
    result.name = spec.name;
    for (const simd::Level level : levels) {
      const simd::KernelTable& t = simd::TableFor(level);
      LevelResult lr;
      lr.level = level;
      std::size_t bytes = 0;
      sink ^= spec.run(t, corpus, scratch, bytes);  // warm
      // Inner repeats so the short fixed-width corpora measure above
      // timer granularity.
      const int inner =
          std::max<int>(1, static_cast<int>((mb << 20) / (bytes + 1)));
      for (int r = 0; r < reps; ++r) {
        const auto start = std::chrono::steady_clock::now();
        for (int k = 0; k < inner; ++k) {
          sink ^= spec.run(t, corpus, scratch, bytes);
        }
        const double s = Seconds(start);
        lr.reps.push_back(static_cast<double>(bytes) * inner / s / 1e9);
      }
      lr.gb_per_sec = Median(lr.reps);
      result.levels.push_back(std::move(lr));
    }
    const LevelResult& scalar = result.levels.front();
    std::printf("%-17s", spec.name);
    for (const LevelResult& lr : result.levels) {
      std::printf("  %s %6.2f GB/s (%4.2fx)", simd::LevelName(lr.level),
                  lr.gb_per_sec, lr.gb_per_sec / scalar.gb_per_sec);
    }
    std::printf("\n");
    results.push_back(std::move(result));
  }

  std::ofstream out(json);
  out << "{\n  \"benchmark\": \"kernels\",\n"
      << "  \"cpus\": " << std::thread::hardware_concurrency() << ",\n"
      << "  \"best_level\": \"" << simd::LevelName(best) << "\",\n"
      << "  \"reps\": " << reps << ",\n"
      << "  \"corpus_mb\": " << mb << ",\n"
      << "  \"identical\": " << (identical ? "true" : "false") << ",\n"
      << "  \"steady_allocs\": " << steady_allocs << ",\n"
      << "  \"checksum\": " << (sink & 0xFFFF) << ",\n"
      << "  \"kernels\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const KernelResult& result = results[i];
    out << "    {\"name\": \"" << result.name << "\", \"levels\": [";
    for (std::size_t j = 0; j < result.levels.size(); ++j) {
      const LevelResult& lr = result.levels[j];
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    "%s{\"level\": \"%s\", \"gb_per_sec\": %.6g, "
                    "\"reps\": %s}",
                    j == 0 ? "" : ", ", simd::LevelName(lr.level),
                    lr.gb_per_sec, JsonArray(lr.reps).c_str());
      out << buf;
    }
    out << "]}" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::printf("wrote %s\n", json.c_str());

  const bool alloc_ok = steady_allocs == 0;
  if (!alloc_ok) {
    std::fprintf(stderr,
                 "FAIL: steady-state kernel pass allocated %llu times\n",
                 static_cast<unsigned long long>(steady_allocs));
  }
  return identical && alloc_ok ? 0 : 1;
}
