// Ablation: per-router vs network-global transaction windows in rule
// mining.
//
// The paper's text ("if two messages frequently occur close enough in
// time and at related locations") leaves the transaction scope open; we
// mine per router.  This bench mines the same history with GLOBAL windows
// (all routers interleaved) and counts the extra rules — co-occurrences
// between unrelated routers' chatter that the per-router scope excludes.
#include <algorithm>
#include <set>

#include "common.h"
#include "core/rules/rules.h"

using namespace sld;

namespace {

core::MiningStats MineGlobal(std::span<const core::Augmented> stream,
                             TimeMs window_ms) {
  // Same construction as MineCooccurrence but ignoring router boundaries:
  // realized by rewriting every router key to a single value.
  std::vector<core::Augmented> merged(stream.begin(), stream.end());
  for (core::Augmented& msg : merged) msg.router_key = 0;
  return core::MineCooccurrence(merged, window_ms);
}

void Run(const sim::DatasetSpec& spec, int learn_days, std::ostream* js) {
  bench::Pipeline p = bench::BuildPipeline(spec, learn_days, 0);
  const auto augmented = bench::Augment(p.kb, p.dict, p.history);
  const core::RuleMinerParams params = bench::PaperRuleParams(spec);

  const auto per_router = core::ExtractRules(
      core::MineCooccurrence(augmented, params.window_ms), params);
  const auto global = core::ExtractRules(
      MineGlobal(augmented, params.window_ms), params);

  std::set<std::uint64_t> per_router_keys;
  for (const core::Rule& r : per_router) {
    per_router_keys.insert(core::MiningStats::PairKey(r.a, r.b));
  }
  std::size_t extra = 0;
  std::size_t lost = global.size();
  for (const core::Rule& r : global) {
    if (per_router_keys.count(core::MiningStats::PairKey(r.a, r.b))) {
      --lost;
    } else {
      ++extra;
    }
  }
  lost = per_router.size() - (global.size() - extra);
  std::printf(
      "dataset %s: per-router rules=%zu, global rules=%zu "
      "(%zu spurious cross-router additions, %zu real rules lost to "
      "interleaving dilution)\n",
      spec.name.c_str(), per_router.size(), global.size(), extra, lost);
  if (js != nullptr) {
    *js << "    {\"dataset\": \"" << spec.name
        << "\", \"per_router_rules\": " << per_router.size()
        << ", \"global_rules\": " << global.size()
        << ", \"spurious\": " << extra << ", \"lost\": " << lost << "}";
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bench::AblationArgs args =
      bench::ParseAblationArgs(argc, argv, /*learn_days=*/28,
                               /*live_days=*/0);
  bench::Header("ablation", "rule mining scope: per-router vs global windows",
                "global windows admit spurious rules between unrelated "
                "routers and dilute real ones");
  std::ofstream js;
  if (!args.json.empty()) {
    js = bench::OpenAblationJson(args.json, "global_tx", args);
    js << "  \"datasets\": [\n";
  }
  std::ostream* out = args.json.empty() ? nullptr : &js;
  Run(sim::DatasetASpec(), args.learn_days, out);
  if (out != nullptr) *out << ",\n";
  Run(sim::DatasetBSpec(), args.learn_days, out);
  if (out != nullptr) {
    *out << "\n  ]\n}\n";
    std::printf("wrote %s\n", args.json.c_str());
  }
  return 0;
}
