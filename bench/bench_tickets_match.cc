// §5.3 — Validation against operations trouble tickets (dataset B).
//
// Tickets are ranked by how often they were investigated/updated; the top
// 30 are matched against digests: a match requires (i) the digest's time
// range to cover the ticket creation time and (ii) location consistency at
// the state level.  The paper reports every top-30 ticket matching a
// digest ranked in the top 5%.
#include <algorithm>
#include <map>
#include <set>

#include "common.h"

using namespace sld;

int main() {
  bench::Header("S5.3", "trouble ticket cross-validation (dataset B)",
                "all top tickets match digests; matched digests rank high "
                "(paper: top 5%)");
  const sim::DatasetSpec spec = sim::DatasetBSpec();
  bench::Pipeline p = bench::BuildPipeline(spec, 28, 14);
  core::Digester digester(&p.kb, &p.dict);
  const core::DigestResult result = digester.Digest(p.live.messages);

  // Router name -> state, from the generated topology.
  std::map<std::string, std::string> state_of;
  for (const net::Router& r : p.live.topo.routers) {
    state_of[r.name] = r.state;
  }
  // Event rank (already sorted by score) -> involved states.
  std::vector<std::set<std::string>> event_states(result.events.size());
  for (std::size_t e = 0; e < result.events.size(); ++e) {
    for (const std::uint32_t key : result.events[e].router_keys) {
      if (key < p.dict.router_count()) {
        event_states[e].insert(state_of[p.dict.RouterName(key)]);
      }
    }
  }

  // Top 30 tickets by update count.
  std::vector<sim::TroubleTicket> tickets = p.live.tickets;
  std::sort(tickets.begin(), tickets.end(),
            [](const sim::TroubleTicket& a, const sim::TroubleTicket& b) {
              return a.update_count > b.update_count;
            });
  if (tickets.size() > 30) tickets.resize(30);

  std::printf("%zu tickets under evaluation, %zu digest events\n",
              tickets.size(), result.events.size());
  std::size_t matched = 0;
  double worst_pct = 0.0;
  std::vector<double> percentiles;
  for (const sim::TroubleTicket& ticket : tickets) {
    std::size_t best_rank = result.events.size();
    for (std::size_t e = 0; e < result.events.size(); ++e) {
      const core::DigestEvent& ev = result.events[e];
      if (ev.start > ticket.created || ev.end < ticket.created) continue;
      if (event_states[e].count(ticket.state) == 0) continue;
      best_rank = e;
      break;  // events are rank-ordered; first hit is the best rank
    }
    if (best_rank < result.events.size()) {
      ++matched;
      const double pct = 100.0 * static_cast<double>(best_rank + 1) /
                         static_cast<double>(result.events.size());
      percentiles.push_back(pct);
      worst_pct = std::max(worst_pct, pct);
    }
  }
  std::printf("matched: %zu/%zu tickets\n", matched, tickets.size());
  if (!percentiles.empty()) {
    std::sort(percentiles.begin(), percentiles.end());
    std::printf(
        "matched digest rank percentile: median=%.1f%% p90=%.1f%% "
        "worst=%.1f%% (paper: all within top 5%%)\n",
        percentiles[percentiles.size() / 2],
        percentiles[percentiles.size() * 9 / 10], worst_pct);
  }
  return 0;
}
