// §5.3 — "it generally takes less than one hour to digest one day's
// syslog".  Google-benchmark timings for the online digest of one day and
// for the offline learning pass, in messages/second, plus a sharded
// pipeline thread sweep written to BENCH_throughput.json.
//
//   bench_throughput                 # full benchmark suite + sweep 1/2/4/8
//   bench_throughput --threads 4     # one sharded measurement, no suite
//   bench_throughput --json=FILE     # sweep output path (default
//                                    # BENCH_throughput.json)
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common.h"
#include "core/stream.h"
#include "obs/registry.h"
#include "pipeline/pipeline.h"
#include "syslog/wire.h"

using namespace sld;

namespace {

struct Fixture {
  Fixture() : p(bench::BuildPipeline(sim::DatasetASpec(), 14, 1)) {}
  bench::Pipeline p;
};

Fixture& Shared() {
  static Fixture fixture;
  return fixture;
}

// One full live day through the sharded pipeline; returns seconds.
double RunSharded(Fixture& f, std::size_t threads,
                  obs::Registry* metrics = nullptr) {
  pipeline::PipelineOptions opts;
  opts.shards = threads;
  opts.metrics = metrics;
  pipeline::ShardedPipeline p(&f.p.kb, &f.p.dict, opts);
  const auto start = std::chrono::steady_clock::now();
  for (const auto& rec : f.p.live.messages) p.Push(rec);
  const core::DigestResult result = p.Finish();
  const auto stop = std::chrono::steady_clock::now();
  benchmark::DoNotOptimize(result.events.size());
  return std::chrono::duration<double>(stop - start).count();
}

// Best-of-three wall-clock messages/second at a given shard count.
double MeasureSharded(Fixture& f, std::size_t threads) {
  double best = 1e30;
  for (int rep = 0; rep < 3; ++rep) {
    best = std::min(best, RunSharded(f, threads));
  }
  return static_cast<double>(f.p.live.messages.size()) / best;
}

void BM_DigestOneDay(benchmark::State& state) {
  Fixture& f = Shared();
  core::Digester digester(&f.p.kb, &f.p.dict);
  for (auto _ : state) {
    const core::DigestResult result = digester.Digest(f.p.live.messages);
    benchmark::DoNotOptimize(result.events.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(f.p.live.messages.size()));
}
BENCHMARK(BM_DigestOneDay)->Unit(benchmark::kMillisecond);

void BM_OfflineTemplateLearning(benchmark::State& state) {
  Fixture& f = Shared();
  for (auto _ : state) {
    core::TemplateLearner learner;
    for (const auto& rec : f.p.history.messages) {
      learner.Add(rec.code, rec.detail);
    }
    benchmark::DoNotOptimize(learner.Learn().size());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(f.p.history.messages.size()));
}
BENCHMARK(BM_OfflineTemplateLearning)->Unit(benchmark::kMillisecond);

void BM_RuleMiningOneWeek(benchmark::State& state) {
  Fixture& f = Shared();
  const auto augmented = bench::Augment(f.p.kb, f.p.dict, f.p.history);
  for (auto _ : state) {
    const core::MiningStats stats =
        core::MineCooccurrence(augmented, 120 * kMsPerSecond);
    benchmark::DoNotOptimize(stats.transaction_count);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(augmented.size()));
}
BENCHMARK(BM_RuleMiningOneWeek)->Unit(benchmark::kMillisecond);

void BM_StreamingDigest(benchmark::State& state) {
  Fixture& f = Shared();
  for (auto _ : state) {
    core::StreamingDigester digester(&f.p.kb, &f.p.dict);
    std::size_t events = 0;
    for (const auto& rec : f.p.live.messages) {
      events += digester.Push(rec).size();
    }
    events += digester.Flush().size();
    benchmark::DoNotOptimize(events);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(f.p.live.messages.size()));
}
BENCHMARK(BM_StreamingDigest)->Unit(benchmark::kMillisecond);

void BM_ShardedPipeline(benchmark::State& state) {
  Fixture& f = Shared();
  const auto threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunSharded(f, threads));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(f.p.live.messages.size()));
}
BENCHMARK(BM_ShardedPipeline)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_WireRoundTrip(benchmark::State& state) {
  Fixture& f = Shared();
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& rec = f.p.live.messages[i++ % f.p.live.messages.size()];
    const auto decoded =
        syslog::DecodeRfc3164(syslog::EncodeRfc3164(rec), 2009);
    benchmark::DoNotOptimize(decoded.has_value());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_WireRoundTrip);

void WriteSweepJson(const std::string& path, std::size_t messages,
                    const std::vector<std::pair<std::size_t, double>>& sweep,
                    const obs::MetricsSnapshot& metrics) {
  std::ofstream out(path);
  // cpus matters for reading the sweep: speedup is bounded by the cores
  // actually available, not the thread count requested.
  out << "{\n  \"benchmark\": \"throughput\",\n  \"dataset\": \"A\",\n"
      << "  \"cpus\": " << std::thread::hardware_concurrency() << ",\n"
      << "  \"messages\": " << messages << ",\n  \"sweep\": [\n";
  const double base = sweep.front().second;
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    out << "    {\"threads\": " << sweep[i].first
        << ", \"msgs_per_sec\": " << sweep[i].second
        << ", \"speedup\": " << sweep[i].second / base << "}"
        << (i + 1 < sweep.size() ? "," : "") << "\n";
  }
  // Pipeline-internals snapshot (DESIGN.md §9) from an instrumented run
  // at the highest shard count: queue depths, cache hit ratio, merge
  // backlog — context for interpreting a sweep regression.
  out << "  ],\n  \"metrics\": " << metrics.RenderJson() << "}\n";
}

}  // namespace

int main(int argc, char** argv) {
  long threads = 0;
  std::string json = "BENCH_throughput.json";
  std::vector<char*> bench_args{argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = std::atol(argv[++i]);
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json = argv[i] + 7;
    } else {
      bench_args.push_back(argv[i]);
    }
  }

  Fixture& f = Shared();
  if (threads > 0) {
    // Single measurement mode: no google-benchmark suite, just the
    // sharded pipeline at the requested thread count.
    const double rate = MeasureSharded(f, static_cast<std::size_t>(threads));
    std::printf("sharded_pipeline threads=%ld msgs_per_sec=%.0f\n", threads,
                rate);
    obs::Registry metrics;
    RunSharded(f, static_cast<std::size_t>(threads), &metrics);
    WriteSweepJson(json, f.p.live.messages.size(),
                   {{static_cast<std::size_t>(threads), rate}},
                   metrics.Collect());
    return 0;
  }

  int bench_argc = static_cast<int>(bench_args.size());
  benchmark::Initialize(&bench_argc, bench_args.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, bench_args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  std::vector<std::pair<std::size_t, double>> sweep;
  for (const std::size_t n : {1u, 2u, 4u, 8u}) {
    sweep.emplace_back(n, MeasureSharded(f, n));
    std::printf("sharded_pipeline threads=%zu msgs_per_sec=%.0f\n", n,
                sweep.back().second);
  }
  obs::Registry metrics;
  RunSharded(f, sweep.back().first, &metrics);
  WriteSweepJson(json, f.p.live.messages.size(), sweep, metrics.Collect());
  std::printf("wrote %s\n", json.c_str());
  return 0;
}
