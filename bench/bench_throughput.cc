// §5.3 — "it generally takes less than one hour to digest one day's
// syslog".  Google-benchmark timings for the online digest of one day and
// for the offline learning pass, in messages/second, plus a sharded
// pipeline thread sweep written to BENCH_throughput.json.
//
//   bench_throughput                 # full benchmark suite + sweep 1/2/4/8
//   bench_throughput --threads 4     # one sharded measurement, no suite
//   bench_throughput --json=FILE     # sweep output path (default
//                                    # BENCH_throughput.json)
//   bench_throughput --sweep-only --sweep 1,2 --reps 5 --learn-days 2
//                                    # CI smoke: skip the google-benchmark
//                                    # suite, emit per-rep rates for the
//                                    # bench_gate noise model
//   bench_throughput --learn-threads 4   # parallel fixture learning
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common.h"
#include "core/stream.h"
#include "engine/engine.h"
#include "obs/registry.h"
#include "pipeline/pipeline.h"
#include "syslog/wire.h"

using namespace sld;

namespace {

// Fixture knobs, set in main() before the first Shared() call.
int g_learn_days = 14;
int g_learn_threads = 1;

struct Fixture {
  Fixture() {
    core::OfflineLearnerParams params;
    params.rules = bench::PaperRuleParams(sim::DatasetASpec());
    params.threads = g_learn_threads;
    p = bench::BuildPipeline(sim::DatasetASpec(), g_learn_days, 1, nullptr,
                             &params);
  }
  bench::Pipeline p;
};

Fixture& Shared() {
  static Fixture fixture;
  return fixture;
}

// One full live day through the sharded pipeline; returns seconds.
double RunSharded(Fixture& f, std::size_t threads,
                  obs::Registry* metrics = nullptr) {
  pipeline::PipelineOptions opts;
  opts.shards = threads;
  opts.metrics = metrics;
  pipeline::ShardedPipeline p(&f.p.kb, &f.p.dict, opts);
  const auto start = std::chrono::steady_clock::now();
  for (const auto& rec : f.p.live.messages) p.Push(rec);
  const core::DigestResult result = p.Finish();
  const auto stop = std::chrono::steady_clock::now();
  benchmark::DoNotOptimize(result.events.size());
  return std::chrono::duration<double>(stop - start).count();
}

// Per-rep wall-clock messages/second at a given shard count; the summary
// rate is the best rep (scheduler noise only ever slows a run down), the
// full list feeds the bench_gate median-of-N noise model.
std::vector<double> MeasureShardedReps(Fixture& f, std::size_t threads,
                                       int reps) {
  std::vector<double> rates;
  rates.reserve(static_cast<std::size_t>(reps));
  for (int rep = 0; rep < reps; ++rep) {
    rates.push_back(static_cast<double>(f.p.live.messages.size()) /
                    RunSharded(f, threads));
  }
  return rates;
}

double BestOf(const std::vector<double>& rates) {
  double best = 0;
  for (const double r : rates) best = std::max(best, r);
  return best;
}

// The same live day through engine::Engine's batch path; returns seconds.
// The engine is the layer the CLI drives since the multi-tenant refactor,
// so this run vs RunSharded is exactly "refactored driver vs direct
// pipeline" — the abstraction must cost nothing.
double RunEngine(Fixture& f, std::size_t threads) {
  engine::EngineOptions opts;
  opts.shards = threads;
  engine::Engine eng(&f.p.kb, &f.p.dict, opts);
  const auto start = std::chrono::steady_clock::now();
  const core::DigestResult result = eng.Digest(f.p.live.messages);
  const auto stop = std::chrono::steady_clock::now();
  benchmark::DoNotOptimize(result.events.size());
  return std::chrono::duration<double>(stop - start).count();
}

struct EngineCompare {
  std::size_t threads = 1;
  std::vector<double> reps;         // Engine::Digest msgs/sec
  std::vector<double> driver_reps;  // direct ShardedPipeline msgs/sec
};

// Interleaves engine and direct-pipeline reps so slow drift (thermal,
// noisy neighbours) hits both sides equally; bench_gate compares the
// two rep lists against each other, not against a stored baseline.
EngineCompare MeasureEngineCompare(Fixture& f, std::size_t threads,
                                   int reps) {
  EngineCompare cmp;
  cmp.threads = threads;
  const auto messages = static_cast<double>(f.p.live.messages.size());
  for (int rep = 0; rep < reps; ++rep) {
    cmp.driver_reps.push_back(messages / RunSharded(f, threads));
    cmp.reps.push_back(messages / RunEngine(f, threads));
  }
  return cmp;
}

void BM_DigestOneDay(benchmark::State& state) {
  Fixture& f = Shared();
  core::Digester digester(&f.p.kb, &f.p.dict);
  for (auto _ : state) {
    const core::DigestResult result = digester.Digest(f.p.live.messages);
    benchmark::DoNotOptimize(result.events.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(f.p.live.messages.size()));
}
BENCHMARK(BM_DigestOneDay)->Unit(benchmark::kMillisecond);

void BM_OfflineTemplateLearning(benchmark::State& state) {
  Fixture& f = Shared();
  for (auto _ : state) {
    core::TemplateLearner learner;
    for (const auto& rec : f.p.history.messages) {
      learner.Add(rec.code, rec.detail);
    }
    benchmark::DoNotOptimize(learner.Learn().size());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(f.p.history.messages.size()));
}
BENCHMARK(BM_OfflineTemplateLearning)->Unit(benchmark::kMillisecond);

void BM_RuleMiningOneWeek(benchmark::State& state) {
  Fixture& f = Shared();
  const auto augmented = bench::Augment(f.p.kb, f.p.dict, f.p.history);
  for (auto _ : state) {
    const core::MiningStats stats =
        core::MineCooccurrence(augmented, 120 * kMsPerSecond);
    benchmark::DoNotOptimize(stats.transaction_count);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(augmented.size()));
}
BENCHMARK(BM_RuleMiningOneWeek)->Unit(benchmark::kMillisecond);

void BM_StreamingDigest(benchmark::State& state) {
  Fixture& f = Shared();
  for (auto _ : state) {
    core::StreamingDigester digester(&f.p.kb, &f.p.dict);
    std::size_t events = 0;
    for (const auto& rec : f.p.live.messages) {
      events += digester.Push(rec).size();
    }
    events += digester.Flush().size();
    benchmark::DoNotOptimize(events);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(f.p.live.messages.size()));
}
BENCHMARK(BM_StreamingDigest)->Unit(benchmark::kMillisecond);

void BM_ShardedPipeline(benchmark::State& state) {
  Fixture& f = Shared();
  const auto threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunSharded(f, threads));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(f.p.live.messages.size()));
}
BENCHMARK(BM_ShardedPipeline)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_WireRoundTrip(benchmark::State& state) {
  Fixture& f = Shared();
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& rec = f.p.live.messages[i++ % f.p.live.messages.size()];
    const auto decoded =
        syslog::DecodeRfc3164(syslog::EncodeRfc3164(rec), 2009);
    benchmark::DoNotOptimize(decoded.has_value());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_WireRoundTrip);

struct SweepPoint {
  std::size_t threads = 1;
  std::vector<double> reps;  // per-rep msgs/sec, in run order
};

void WriteSweepJson(const std::string& path, std::size_t messages,
                    int learn_days, const std::vector<SweepPoint>& sweep,
                    const EngineCompare* engine,
                    const obs::MetricsSnapshot& metrics) {
  std::ofstream out(path);
  // cpus matters for reading the sweep: speedup is bounded by the cores
  // actually available, not the thread count requested.
  out << "{\n  \"benchmark\": \"throughput\",\n  \"dataset\": \"A\",\n"
      << "  \"cpus\": " << std::thread::hardware_concurrency() << ",\n"
      << "  \"messages\": " << messages << ",\n"
      << "  \"learn_days\": " << learn_days << ",\n  \"sweep\": [\n";
  const double base = BestOf(sweep.front().reps);
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const double rate = BestOf(sweep[i].reps);
    out << "    {\"threads\": " << sweep[i].threads
        << ", \"msgs_per_sec\": " << rate
        << ", \"speedup\": " << rate / base << ", \"reps\": [";
    for (std::size_t r = 0; r < sweep[i].reps.size(); ++r) {
      out << (r != 0 ? ", " : "") << sweep[i].reps[r];
    }
    out << "]}" << (i + 1 < sweep.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  // Engine-vs-driver rep pairs: the gate asserts the Engine path stays
  // within noise of driving the ShardedPipeline directly.  A same-run
  // relative measure, so it holds even on 1-CPU runners.
  if (engine != nullptr) {
    out << "  \"engine\": {\"threads\": " << engine->threads
        << ", \"reps\": [";
    for (std::size_t r = 0; r < engine->reps.size(); ++r) {
      out << (r != 0 ? ", " : "") << engine->reps[r];
    }
    out << "], \"driver_reps\": [";
    for (std::size_t r = 0; r < engine->driver_reps.size(); ++r) {
      out << (r != 0 ? ", " : "") << engine->driver_reps[r];
    }
    out << "]},\n";
  }
  // Pipeline-internals snapshot (DESIGN.md §9) from an instrumented run
  // at the highest shard count: queue depths, cache hit ratio, merge
  // backlog — context for interpreting a sweep regression.
  out << "  \"metrics\": " << metrics.RenderJson() << "}\n";
}

}  // namespace

int main(int argc, char** argv) {
  long threads = 0;
  int reps = 3;
  bool sweep_only = false;
  std::vector<std::size_t> sweep_threads = {1, 2, 4, 8};
  std::string json = "BENCH_throughput.json";
  std::vector<char*> bench_args{argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = std::atol(argv[++i]);
    } else if (std::strcmp(argv[i], "--learn-days") == 0 && i + 1 < argc) {
      g_learn_days = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--learn-threads") == 0 && i + 1 < argc) {
      g_learn_threads = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--sweep") == 0 && i + 1 < argc) {
      sweep_threads.clear();
      for (const char* tok = std::strtok(argv[++i], ","); tok != nullptr;
           tok = std::strtok(nullptr, ",")) {
        const long v = std::atol(tok);
        if (v > 0) sweep_threads.push_back(static_cast<std::size_t>(v));
      }
    } else if (std::strcmp(argv[i], "--sweep-only") == 0) {
      sweep_only = true;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json = argv[i] + 7;
    } else {
      bench_args.push_back(argv[i]);
    }
  }
  if (g_learn_days < 1) g_learn_days = 1;
  if (reps < 1) reps = 1;
  if (sweep_threads.empty()) sweep_threads = {1, 2, 4, 8};

  Fixture& f = Shared();
  if (threads > 0) {
    // Single measurement mode: no google-benchmark suite, just the
    // sharded pipeline at the requested thread count.
    const std::vector<double> rates =
        MeasureShardedReps(f, static_cast<std::size_t>(threads), reps);
    std::printf("sharded_pipeline threads=%ld msgs_per_sec=%.0f\n", threads,
                BestOf(rates));
    obs::Registry metrics;
    RunSharded(f, static_cast<std::size_t>(threads), &metrics);
    WriteSweepJson(json, f.p.live.messages.size(), g_learn_days,
                   {{static_cast<std::size_t>(threads), rates}}, nullptr,
                   metrics.Collect());
    return 0;
  }

  if (!sweep_only) {
    int bench_argc = static_cast<int>(bench_args.size());
    benchmark::Initialize(&bench_argc, bench_args.data());
    if (benchmark::ReportUnrecognizedArguments(bench_argc,
                                               bench_args.data())) {
      return 1;
    }
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
  }

  std::vector<SweepPoint> sweep;
  for (const std::size_t n : sweep_threads) {
    sweep.push_back({n, MeasureShardedReps(f, n, reps)});
    std::printf("sharded_pipeline threads=%zu msgs_per_sec=%.0f\n", n,
                BestOf(sweep.back().reps));
  }
  const EngineCompare engine =
      MeasureEngineCompare(f, sweep.back().threads, reps);
  std::printf("engine threads=%zu msgs_per_sec=%.0f (driver %.0f)\n",
              engine.threads, BestOf(engine.reps),
              BestOf(engine.driver_reps));
  obs::Registry metrics;
  RunSharded(f, sweep.back().threads, &metrics);
  WriteSweepJson(json, f.p.live.messages.size(), g_learn_days, sweep, &engine,
                 metrics.Collect());
  std::printf("wrote %s\n", json.c_str());
  return 0;
}
