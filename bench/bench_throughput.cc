// §5.3 — "it generally takes less than one hour to digest one day's
// syslog".  Google-benchmark timings for the online digest of one day and
// for the offline learning pass, in messages/second.
#include <benchmark/benchmark.h>

#include "common.h"
#include "core/stream.h"
#include "syslog/wire.h"

using namespace sld;

namespace {

struct Fixture {
  Fixture() : p(bench::BuildPipeline(sim::DatasetASpec(), 14, 1)) {}
  bench::Pipeline p;
};

Fixture& Shared() {
  static Fixture fixture;
  return fixture;
}

void BM_DigestOneDay(benchmark::State& state) {
  Fixture& f = Shared();
  core::Digester digester(&f.p.kb, &f.p.dict);
  for (auto _ : state) {
    const core::DigestResult result = digester.Digest(f.p.live.messages);
    benchmark::DoNotOptimize(result.events.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(f.p.live.messages.size()));
}
BENCHMARK(BM_DigestOneDay)->Unit(benchmark::kMillisecond);

void BM_OfflineTemplateLearning(benchmark::State& state) {
  Fixture& f = Shared();
  for (auto _ : state) {
    core::TemplateLearner learner;
    for (const auto& rec : f.p.history.messages) {
      learner.Add(rec.code, rec.detail);
    }
    benchmark::DoNotOptimize(learner.Learn().size());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(f.p.history.messages.size()));
}
BENCHMARK(BM_OfflineTemplateLearning)->Unit(benchmark::kMillisecond);

void BM_RuleMiningOneWeek(benchmark::State& state) {
  Fixture& f = Shared();
  const auto augmented = bench::Augment(f.p.kb, f.p.dict, f.p.history);
  for (auto _ : state) {
    const core::MiningStats stats =
        core::MineCooccurrence(augmented, 120 * kMsPerSecond);
    benchmark::DoNotOptimize(stats.transaction_count);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(augmented.size()));
}
BENCHMARK(BM_RuleMiningOneWeek)->Unit(benchmark::kMillisecond);

void BM_StreamingDigest(benchmark::State& state) {
  Fixture& f = Shared();
  for (auto _ : state) {
    core::StreamingDigester digester(&f.p.kb, &f.p.dict);
    std::size_t events = 0;
    for (const auto& rec : f.p.live.messages) {
      events += digester.Push(rec).size();
    }
    events += digester.Flush().size();
    benchmark::DoNotOptimize(events);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(f.p.live.messages.size()));
}
BENCHMARK(BM_StreamingDigest)->Unit(benchmark::kMillisecond);

void BM_WireRoundTrip(benchmark::State& state) {
  Fixture& f = Shared();
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& rec = f.p.live.messages[i++ % f.p.live.messages.size()];
    const auto decoded =
        syslog::DecodeRfc3164(syslog::EncodeRfc3164(rec), 2009);
    benchmark::DoNotOptimize(decoded.has_value());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_WireRoundTrip);

}  // namespace

BENCHMARK_MAIN();
