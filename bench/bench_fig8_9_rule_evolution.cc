// Figures 8 & 9 — Weekly evolution of the rule base over 12 weeks
// (total / added / deleted per weekly update), for datasets A and B.
//
// Also runs the DESIGN.md ablation: naive deletion (drop a rule whenever
// its items fall below SP_min that week) churns rules that conservative
// deletion correctly retains.
#include "common.h"
#include "core/rules/rules.h"

using namespace sld;

namespace {

void Run(const sim::DatasetSpec& spec) {
  core::RuleEvolution evolution;
  bench::Pipeline p = bench::BuildPipeline(spec, 84, 0, &evolution);
  std::printf("dataset %s (%zu messages over 12 weeks):\n",
              spec.name.c_str(), p.history.messages.size());
  std::printf("  %-6s %-8s %-8s %-8s\n", "week", "total", "added",
              "deleted");
  for (std::size_t w = 0; w < evolution.total.size(); ++w) {
    std::printf("  %-6zu %-8zu %-8zu %-8zu\n", w + 1, evolution.total[w],
                evolution.added[w], evolution.deleted[w]);
  }

  // Ablation: replay the same weekly stats with naive deletion.
  const auto augmented = bench::Augment(p.kb, p.dict, p.history);
  const core::RuleMinerParams params = bench::PaperRuleParams(spec);
  core::RuleBase naive;
  std::size_t naive_churn = 0;
  std::size_t conservative_churn = 0;
  const TimeMs period = 7 * kMsPerDay;
  const TimeMs t0 = augmented.front().time;
  std::size_t begin = 0;
  core::RuleBase conservative;
  while (begin < augmented.size()) {
    const TimeMs period_end =
        t0 + ((augmented[begin].time - t0) / period + 1) * period;
    std::size_t end = begin;
    while (end < augmented.size() && augmented[end].time < period_end) {
      ++end;
    }
    const core::MiningStats stats = core::MineCooccurrence(
        std::span<const core::Augmented>(augmented).subspan(begin,
                                                            end - begin),
        params.window_ms);
    const auto nr = naive.Update(stats, params, /*naive_deletion=*/true);
    const auto cr = conservative.Update(stats, params);
    naive_churn += nr.deleted;
    conservative_churn += cr.deleted;
    begin = end;
  }
  std::printf(
      "  ablation: total deletions over 12 weeks — conservative=%zu, "
      "naive=%zu (naive also ends with %zu rules vs %zu)\n",
      conservative_churn, naive_churn, naive.size(), conservative.size());
}

}  // namespace

int main() {
  bench::Header("Figures 8-9", "rule base evolution over 12 weekly updates",
                "rule count grows early, stabilizes after ~6-8 weeks; "
                "added/deleted go to ~0");
  Run(sim::DatasetASpec());
  Run(sim::DatasetBSpec());
  return 0;
}
