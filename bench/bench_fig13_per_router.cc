// Figure 13 — Per-router raw message counts vs per-router event counts
// (dataset A).  The paper observes that the event distribution across
// routers is less skewed than the raw message distribution, and that the
// chattiest router enjoys the best compression.
#include <algorithm>
#include <cmath>
#include <map>

#include "common.h"

using namespace sld;

namespace {

// Gini coefficient as the skew metric (0 = uniform, 1 = concentrated).
double Gini(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  const std::size_t n = values.size();
  double cum = 0;
  double weighted = 0;
  for (std::size_t i = 0; i < n; ++i) {
    cum += values[i];
    weighted += values[i] * static_cast<double>(i + 1);
  }
  if (cum == 0) return 0;
  return (2.0 * weighted) / (static_cast<double>(n) * cum) -
         (static_cast<double>(n) + 1.0) / static_cast<double>(n);
}

}  // namespace

int main() {
  bench::Header("Figure 13", "per-router messages vs events (dataset A)",
                "event counts are less skewed across routers than message "
                "counts; the busiest router has the best compression");
  const sim::DatasetSpec spec = sim::DatasetASpec();
  bench::Pipeline p = bench::BuildPipeline(spec, 28, 14);
  core::Digester digester(&p.kb, &p.dict);
  const core::DigestResult result = digester.Digest(p.live.messages);

  std::map<std::string, std::size_t> msgs_of;
  for (const auto& rec : p.live.messages) ++msgs_of[rec.router];
  // An event counts once for every router it involves.
  std::map<std::string, std::size_t> events_of;
  for (const core::DigestEvent& ev : result.events) {
    for (const std::uint32_t key : ev.router_keys) {
      if (key < p.dict.router_count()) {
        ++events_of[p.dict.RouterName(key)];
      }
    }
  }

  std::vector<std::pair<std::size_t, std::string>> order;
  for (const auto& [router, count] : msgs_of) {
    order.emplace_back(count, router);
  }
  std::sort(order.rbegin(), order.rend());
  std::printf("%-16s %-10s %-8s %s\n", "router", "messages", "events",
              "ratio");
  std::vector<double> msg_counts;
  std::vector<double> event_counts;
  for (const auto& [count, router] : order) {
    const std::size_t events = events_of[router];
    std::printf("%-16s %-10zu %-8zu %.3e\n", router.c_str(), count, events,
                static_cast<double>(events) / static_cast<double>(count));
    msg_counts.push_back(static_cast<double>(count));
    event_counts.push_back(static_cast<double>(events));
  }
  std::printf(
      "skew (Gini): messages=%.3f events=%.3f (events should be lower)\n",
      Gini(msg_counts), Gini(event_counts));
  const double top_ratio = event_counts.front() / msg_counts.front();
  double best = 1.0;
  for (std::size_t i = 0; i < msg_counts.size(); ++i) {
    best = std::min(best, event_counts[i] / msg_counts[i]);
  }
  std::printf(
      "busiest router ratio=%.3e, best ratio overall=%.3e (expected "
      "equal or close)\n",
      top_ratio, best);
  return 0;
}
