// Figure 7 — Number of learned rules vs the transaction window W
// (Conf_min = 0.8, SP_min = 5e-4, datasets A and B).
//
// The paper observes diminishing growth past W = 120 s for dataset A and
// W = 40 s for dataset B, because new windows only add rules between
// messages with longer implicit timing relationships (e.g. the 10-30 s
// controller/link cascade in A; the 30-40 s ssh/ftp probes in B).
#include "common.h"
#include "core/rules/rules.h"

using namespace sld;

namespace {

void Run(const sim::DatasetSpec& spec) {
  bench::Pipeline p = bench::BuildPipeline(spec, 28, 0);
  const auto augmented = bench::Augment(p.kb, p.dict, p.history);
  std::printf("dataset %s:\n  %-10s %s\n", spec.name.c_str(), "W (s)",
              "#rules");
  for (const int w : {5, 10, 20, 30, 40, 60, 90, 120, 180, 240, 300}) {
    const core::MiningStats stats =
        core::MineCooccurrence(augmented, w * kMsPerSecond);
    core::RuleMinerParams params;
    params.window_ms = w * kMsPerSecond;
    params.min_support = 0.0005;
    params.min_confidence = 0.8;
    std::printf("  %-10d %zu\n", w,
                core::ExtractRules(stats, params).size());
  }
}

}  // namespace

int main() {
  bench::Header("Figure 7", "rules vs window size W (Conf=0.8, SP=5e-4)",
                "rule count grows with W with diminishing increase beyond "
                "~120s (A) / ~40s (B)");
  Run(sim::DatasetASpec());
  Run(sim::DatasetBSpec());
  return 0;
}
