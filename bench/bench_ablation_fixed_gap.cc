// Ablation: adaptive EWMA temporal grouping vs a single fixed gap cutoff.
//
// The naive alternative to §4.1.3 is "same group iff the gap is below T"
// for one global T.  Compression alone rewards enormous T (merge anything
// within hours), so we also report the mean time-span of the produced
// groups: a useful event is compact.  The EWMA with per-template priors
// reaches near-best compression at a fraction of the group span, because
// it adapts the horizon to each signature's own period.
#include <unordered_map>

#include "common.h"
#include "core/temporal/temporal.h"

using namespace sld;

namespace {

struct Outcome {
  std::size_t groups = 0;
  double mean_span_minutes = 0;
};

// Shared span accounting: feed (key-or-group id per message, time).
class SpanTracker {
 public:
  void Observe(std::size_t group, TimeMs t) {
    auto [it, inserted] = spans_.try_emplace(group, std::pair{t, t});
    it->second.first = std::min(it->second.first, t);
    it->second.second = std::max(it->second.second, t);
  }
  Outcome Finish() const {
    Outcome out;
    out.groups = spans_.size();
    double total = 0;
    for (const auto& [group, span] : spans_) {
      (void)group;
      total += static_cast<double>(span.second - span.first);
    }
    out.mean_span_minutes =
        spans_.empty() ? 0 : total / static_cast<double>(spans_.size()) /
                                 kMsPerMinute;
    return out;
  }

 private:
  std::unordered_map<std::size_t, std::pair<TimeMs, TimeMs>> spans_;
};

Outcome FixedGap(std::span<const core::Augmented> stream, TimeMs gap_ms) {
  std::unordered_map<std::uint64_t, std::pair<TimeMs, std::size_t>> last;
  SpanTracker tracker;
  std::size_t next_group = 0;
  for (const core::Augmented& msg : stream) {
    const std::uint64_t key =
        (static_cast<std::uint64_t>(msg.tmpl) << 32) | msg.router_key;
    auto [it, inserted] =
        last.try_emplace(key, std::pair{msg.time, next_group});
    if (inserted) {
      ++next_group;
    } else if (msg.time - it->second.first > gap_ms) {
      it->second.second = next_group++;
    }
    it->second.first = msg.time;
    tracker.Observe(it->second.second, msg.time);
  }
  return tracker.Finish();
}

Outcome Ewma(std::span<const core::Augmented> stream,
             const core::TemporalParams& params,
             const core::TemporalPriors& priors) {
  core::TemporalGrouper grouper(params, &priors);
  SpanTracker tracker;
  for (const core::Augmented& msg : stream) {
    tracker.Observe(grouper.Feed(msg), msg.time);
  }
  return tracker.Finish();
}

// Runs one dataset; appends a JSON object for it to `js` when non-null.
void Run(const sim::DatasetSpec& spec, int learn_days, std::ostream* js) {
  bench::Pipeline p = bench::BuildPipeline(spec, learn_days, 0);
  const auto augmented = bench::Augment(p.kb, p.dict, p.history);
  const core::TemporalPriors priors = core::MineTemporalPriors(augmented);

  std::printf("dataset %s (%zu messages):\n", spec.name.c_str(),
              augmented.size());
  std::printf("  %-22s %-10s %-12s %s\n", "grouping", "groups", "ratio",
              "mean group span");
  if (js != nullptr) {
    *js << "    {\"dataset\": \"" << spec.name
        << "\", \"messages\": " << augmented.size() << ", \"rows\": [\n";
  }
  bool first = true;
  const auto row = [&](const char* name, const Outcome& o) {
    std::printf("  %-22s %-10zu %-12.3e %.1f min\n", name, o.groups,
                static_cast<double>(o.groups) /
                    static_cast<double>(augmented.size()),
                o.mean_span_minutes);
    if (js != nullptr) {
      *js << (first ? "" : ",\n") << "      {\"grouping\": \"" << name
          << "\", \"groups\": " << o.groups
          << ", \"mean_span_min\": " << o.mean_span_minutes << "}";
      first = false;
    }
  };
  for (const int gap_s : {30, 120, 600, 1800, 10800}) {
    char name[32];
    std::snprintf(name, sizeof(name), "fixed gap %ds", gap_s);
    row(name, FixedGap(augmented, gap_s * kMsPerSecond));
  }
  core::TemporalParams params;  // paper defaults
  params.alpha = spec.name == "A" ? 0.05 : 0.075;
  row("EWMA (paper)", Ewma(augmented, params, priors));
  if (js != nullptr) *js << "\n    ]}";
}

}  // namespace

int main(int argc, char** argv) {
  const bench::AblationArgs args =
      bench::ParseAblationArgs(argc, argv, /*learn_days=*/14,
                               /*live_days=*/0);
  bench::Header("ablation", "EWMA temporal grouping vs fixed gap cutoffs",
                "only an S_max-scale cutoff matches the EWMA's compression, "
                "and it pays with far longer (over-merged) groups");
  std::ofstream js;
  if (!args.json.empty()) {
    js = bench::OpenAblationJson(args.json, "fixed_gap", args);
    js << "  \"datasets\": [\n";
  }
  std::ostream* out = args.json.empty() ? nullptr : &js;
  Run(sim::DatasetASpec(), args.learn_days, out);
  if (out != nullptr) *out << ",\n";
  Run(sim::DatasetBSpec(), args.learn_days, out);
  if (out != nullptr) {
    *out << "\n  ]\n}\n";
    std::printf("wrote %s\n", args.json.c_str());
  }
  return 0;
}
