// Figures 4 & 5 — Qualitative temporal patterns the temporal miner feeds
// on: an unstable controller flapping many times within a short interval
// (Fig. 4) and a periodic TCP bad-authentication train (Fig. 5).
//
// We render each series as an hour-bucket ASCII strip over six hours, like
// the figures, plus the interarrival statistics the EWMA model sees.
#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "common.h"

using namespace sld;

namespace {

void PrintSeries(const char* title, const std::vector<TimeMs>& times) {
  if (times.empty()) {
    std::printf("%s: no occurrences generated\n", title);
    return;
  }
  const TimeMs start = times.front();
  std::printf("%s (%zu occurrences over %.1f hours):\n", title,
              times.size(),
              static_cast<double>(times.back() - start) / kMsPerHour);
  // 72 five-minute buckets = six hours.
  std::vector<int> buckets(72, 0);
  for (const TimeMs t : times) {
    const std::size_t b =
        static_cast<std::size_t>((t - start) / (5 * kMsPerMinute));
    if (b < buckets.size()) ++buckets[b];
  }
  std::printf("  ");
  for (const int b : buckets) {
    std::printf("%c", b == 0 ? '.' : (b < 3 ? '+' : '#'));
  }
  std::printf("\n  (5-minute buckets; '.'=0, '+'=1-2, '#'=3+)\n");
  std::vector<double> gaps;
  for (std::size_t i = 1; i < times.size(); ++i) {
    gaps.push_back(static_cast<double>(times[i] - times[i - 1]) / 1000.0);
  }
  if (!gaps.empty()) {
    std::sort(gaps.begin(), gaps.end());
    std::printf("  interarrival seconds: min=%.1f median=%.1f max=%.1f\n",
                gaps.front(), gaps[gaps.size() / 2], gaps.back());
  }
}

std::vector<TimeMs> Occurrences(const sim::Dataset& ds,
                                const std::string& kind,
                                const std::string& code_marker) {
  for (const sim::GtEvent& ev : ds.ground_truth) {
    if (ev.kind != kind) continue;
    std::vector<TimeMs> times;
    for (const std::size_t idx : ev.message_indices) {
      if (ds.messages[idx].code.find(code_marker) != std::string::npos) {
        times.push_back(ds.messages[idx].time);
      }
    }
    if (times.size() >= 20) return times;
  }
  return {};
}

}  // namespace

int main() {
  bench::Header("Figures 4-5", "temporal pattern examples",
                "Fig.4: controller up/down clustered in a short interval; "
                "Fig.5: periodic TCP bad-auth occurrences");
  const sim::Dataset ds =
      sim::GenerateDataset(sim::DatasetASpec(), 0, 7, bench::kOfflineSeed);
  PrintSeries("Fig.4 controller up/down",
              Occurrences(ds, "controller-flap", "CONTROLLER"));
  PrintSeries("Fig.5 TCP bad authentication",
              Occurrences(ds, "bad-auth-scan", "BADAUTH"));
  return 0;
}
