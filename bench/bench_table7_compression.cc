// Table 7 — Compression ratio of the three grouping methodologies over the
// two-week online period: T (temporal), T+R (+rule-based), T+R+C
// (+cross-router), for datasets A and B.
#include "common.h"

using namespace sld;

namespace {

void Run(const sim::DatasetSpec& spec) {
  bench::Pipeline p = bench::BuildPipeline(spec, 28, 14);
  core::Digester digester(&p.kb, &p.dict);
  struct Mode {
    const char* name;
    core::DigestOptions options;
  };
  const Mode modes[] = {
      {"T", {false, false, kMsPerSecond}},
      {"T+R", {true, false, kMsPerSecond}},
      {"T+R+C", {true, true, kMsPerSecond}},
  };
  std::printf("dataset %s (%zu online messages over 14 days):\n",
              spec.name.c_str(), p.live.messages.size());
  std::printf("  %-8s %-10s %-12s %s\n", "mode", "events", "ratio",
              "active rules");
  for (const Mode& mode : modes) {
    const core::DigestResult result =
        digester.Digest(p.live.messages, mode.options);
    std::printf("  %-8s %-10zu %-12.3e %zu\n", mode.name,
                result.events.size(), result.CompressionRatio(),
                result.active_rule_count);
  }
}

}  // namespace

int main() {
  bench::Header("Table 7", "compression ratio of T / T+R / T+R+C",
                "each added grouping method improves the ratio; overall "
                "events are orders of magnitude fewer than raw messages "
                "(paper: 3.27e-3 for A, 0.91e-3 for B)");
  Run(sim::DatasetASpec());
  Run(sim::DatasetBSpec());
  return 0;
}
