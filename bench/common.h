// Shared harness for the per-table / per-figure benchmark binaries.
//
// Every bench regenerates its data deterministically (fixed seeds), builds
// the location dictionary from config text, learns a knowledge base
// offline, and reports the paper's metric next to the paper's reported
// shape.  Absolute values are NOT expected to match the paper (its
// substrate was two production networks); orderings, trends and orders of
// magnitude are.
#pragma once

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/learn.h"
#include "net/config_parser.h"
#include "sim/generator.h"

namespace sld::bench {

// Seeds: offline/online streams are disjoint deterministic draws.
inline constexpr std::uint64_t kOfflineSeed = 1001;
inline constexpr std::uint64_t kOnlineSeed = 2002;

struct Pipeline {
  sim::Dataset history;
  sim::Dataset live;
  core::LocationDict dict;
  core::KnowledgeBase kb;
};

// The per-dataset rule-mining window the paper settles on (§5.2.2):
// W = 120 s for dataset A, 40 s for dataset B.
core::RuleMinerParams PaperRuleParams(const sim::DatasetSpec& spec);

// Learner threads for fixture building: $SLD_LEARN_THREADS (default 1,
// 0 = one per core).  An env knob rather than a flag so every bench
// harness gains it without per-binary plumbing; the learned KB is
// identical at any value, only fixture build time changes.
int LearnThreadsFromEnv();

// Archive-ingest threads for fixture building: $SLD_INGEST_THREADS
// (default 1, 0 = one per core).  Same convention as above; the parsed
// records are identical at any value.
int IngestThreadsFromEnv();

// Generates `learn_days` of history starting at day 0 and `online_days`
// starting right after, learns the knowledge base, and returns everything.
// `online_days` may be 0 when a bench only needs the offline side.
Pipeline BuildPipeline(const sim::DatasetSpec& spec, int learn_days,
                       int online_days,
                       core::RuleEvolution* evolution = nullptr,
                       const core::OfflineLearnerParams* params = nullptr);

// Location dictionary from a dataset's rendered configs.
core::LocationDict BuildDict(const sim::Dataset& ds);

// Augments a dataset's messages against a knowledge base (fallback
// templates may be added to `kb`).
std::vector<core::Augmented> Augment(core::KnowledgeBase& kb,
                                     const core::LocationDict& dict,
                                     const sim::Dataset& ds);

// Section header for bench output.
void Header(const char* id, const char* title, const char* paper_shape);

// Shared CLI surface for the ablation benches.  Every ablation binary is
// deterministic (fixed seeds, no timing), so CI pins its numbers: the
// bench runs with shrunken day counts and --json, and tools/bench_gate.py
// deep-compares the emitted JSON against a committed baseline.
//
//   bench_ablation_* [--learn-days N] [--live-days N] [--json=FILE]
//
// Unknown arguments are fatal (exit 2) so a typo'd flag cannot silently
// produce a baseline with default day counts.
struct AblationArgs {
  int learn_days = 0;
  int live_days = 0;
  std::string json;  // empty = stdout table only
};
AblationArgs ParseAblationArgs(int argc, char** argv, int learn_days,
                               int live_days);

// Opens `path` for the ablation JSON and writes the shared preamble:
//   {"benchmark": "ablation", "name": NAME, "learn_days": N,
//    "live_days": N,
// The caller appends its result fields and the closing brace.  Streamed
// doubles round-trip (max_digits10) so the gate's float tolerance only
// has to absorb cross-libm jitter, not formatting loss.
std::ofstream OpenAblationJson(const std::string& path, const char* name,
                               const AblationArgs& args);

// Process-wide heap-allocation counter.  Bench binaries link a counting
// global operator new (defined in common.cc), so a hot loop can assert a
// zero-allocation steady state by differencing this before and after.
// Counts every new from every thread; sample around single-threaded
// sections for per-message numbers.
std::uint64_t AllocationCount() noexcept;

}  // namespace sld::bench
