// Figure 10 — Temporal-grouping compression ratio vs the EWMA weight α
// (β = 2).  The paper finds a shallow optimum at small α (0.05 for A,
// 0.075 for B) with degradation for larger α.
#include "common.h"
#include "core/temporal/temporal.h"

using namespace sld;

namespace {

void Run(const sim::DatasetSpec& spec) {
  bench::Pipeline p = bench::BuildPipeline(spec, 14, 0);
  const auto augmented = bench::Augment(p.kb, p.dict, p.history);
  const core::TemporalPriors priors = core::MineTemporalPriors(augmented);
  std::printf("dataset %s (%zu messages):\n  %-8s %s\n", spec.name.c_str(),
              augmented.size(), "alpha", "compression ratio (T only)");
  for (const double alpha : {0.0, 0.025, 0.05, 0.075, 0.1, 0.15, 0.2, 0.3,
                             0.4, 0.5, 0.6}) {
    core::TemporalParams params;
    params.alpha = alpha;
    params.beta = 2.0;
    const std::size_t groups =
        core::CountTemporalGroups(augmented, params, priors);
    std::printf("  %-8g %.4e  (%zu groups)\n", alpha,
                static_cast<double>(groups) /
                    static_cast<double>(augmented.size()),
                groups);
  }
}

}  // namespace

int main() {
  bench::Header("Figure 10", "compression ratio vs alpha (beta=2)",
                "ratio is lowest at small alpha (~0.05) and rises with "
                "larger alpha");
  Run(sim::DatasetASpec());
  Run(sim::DatasetBSpec());
  return 0;
}
