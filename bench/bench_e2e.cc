// End-to-end soak (DESIGN.md §16): the slgen load generator blasting a
// live Engine over loopback UDP, with ingest-to-emit latency percentiles
// read off the engine's e2e_latency_seconds histogram.  Written to
// BENCH_e2e.json.
//
// Three measurements:
//
//   1. Sender throughput.  The slgen path (N threads, sendmmsg batches
//      from a reused payload slab, one flow per thread into a REUSEPORT
//      listener group) against the seed's sender: `sldigest replay`,
//      whose loop is one send() per datagram paced by usleep(--pace-us,
//      default 50) because an unpaced single socket just overflows the
//      receiver (UDP has no flow control).  slgen replaces open-loop
//      sleep pacing with a token bucket + batched sends, which is where
//      the >= 5x floor comes from.  An unpaced copy+send loop is also
//      measured: slgen must at least match it (>= 0.9x, a same-process
//      floor that holds even on single-core hosts where the thread
//      fan-out cannot help).
//
//   2. Allocation audit.  After warm-up, render + transmit rounds must
//      not allocate: the slab, slot table, scratch record/message and
//      sendmmsg arrays all keep their capacity (allocs_per_msg ~ 0).
//
//   3. Ledger + latency soak.  slgen with the fault knobs on sends into
//      an Engine draining a UdpReceiver; at the end the books must
//      close exactly:
//        sent = generated + duplicates = wire + injected_drops
//        wire = received + kernel_drops
//        received = accepted + late + malformed + dedup_duplicates
//      and the e2e_latency_seconds histogram yields p50/p99.
//
//   bench_e2e                          # defaults: 3 reps, 100k msgs
//   bench_e2e --reps 2 --total 40000   # CI smoke
//   bench_e2e --json=FILE              # default BENCH_e2e.json
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common.h"
#include "engine/engine.h"
#include "loadgen/loadgen.h"
#include "obs/registry.h"
#include "sim/workload.h"
#include "syslog/udp.h"

using namespace sld;

namespace {

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

double Median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

std::string JsonArray(const std::vector<double>& v) {
  std::string out = "[";
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i != 0) out += ", ";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", v[i]);
    out += buf;
  }
  out += "]";
  return out;
}

// The seed's transmit shape (sldigest replay): one send() per datagram,
// single-threaded, paced by usleep(pace_us) — pace_us 0 gives the
// unpaced copy+send variant.  Rendering goes through the same
// loadgen::Stream as the batched path so the comparison isolates the
// transmit discipline.
double LegacyRep(std::uint16_t port, std::uint64_t total, long pace_us,
                 const loadgen::StreamOptions& stream_options) {
  std::atomic<std::uint64_t> cursor{0};
  loadgen::Stream stream(stream_options, &cursor, total);
  auto sender = syslog::UdpSender::Open("127.0.0.1", port);
  const auto start = std::chrono::steady_clock::now();
  std::uint64_t sent = 0;
  while (stream.RenderRound() > 0) {
    for (const loadgen::WireSlot& slot : stream.wire_slots()) {
      const std::string datagram(stream.SlotPayload(slot));
      sender->Send(datagram);
      ++sent;
      if (pace_us > 0) ::usleep(static_cast<useconds_t>(pace_us));
    }
  }
  return static_cast<double>(sent) / Seconds(start);
}

double SlgenRep(std::uint16_t port, std::uint64_t total, int threads,
                const loadgen::StreamOptions& stream_options) {
  loadgen::RunOptions options;
  options.port = port;
  options.total = total;
  options.threads = threads;
  options.stream = stream_options;
  const loadgen::RunResult result = loadgen::Run(options);
  if (!result.ok || result.elapsed_seconds <= 0) return 0.0;
  return static_cast<double>(result.stats.wire) / result.elapsed_seconds;
}

const obs::SeriesSnapshot* FindSeries(const obs::MetricsSnapshot& snapshot,
                                      const char* name) {
  for (const obs::SeriesSnapshot& s : snapshot.series) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  int reps = 3;
  int threads = 4;
  std::uint64_t total = 100000;
  std::uint64_t soak_total = 0;  // 0 = same as total
  double soak_rate = 60000.0;
  std::string json = "BENCH_e2e.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--total") == 0 && i + 1 < argc) {
      total = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--soak-total") == 0 && i + 1 < argc) {
      soak_total = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--soak-rate") == 0 && i + 1 < argc) {
      soak_rate = std::atof(argv[++i]);
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json = argv[i] + 7;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return 2;
    }
  }
  if (reps < 1) reps = 1;
  if (threads < 1) threads = 1;
  if (total < 4096) total = 4096;
  if (soak_total == 0) soak_total = total;

  bench::Header("e2e", "load generator + engine soak over loopback UDP",
                "batched multi-thread sender >= 5x the seed's one-sendto "
                "loop at 0 allocs/msg; ledger closes exactly; ingest-to-"
                "emit latency has finite p50/p99");

  loadgen::StreamOptions stream_options;
  stream_options.seed = bench::kOnlineSeed;
  stream_options.epoch = sim::DatasetEpoch();

  // --- 1. Sender throughput: slgen vs the seed replay sender. ---
  // The destination is a REUSEPORT listener group (the `serve
  // --listeners K` shape — the kernel hashes each sender flow to its
  // own socket), bound but never drained: loopback UDP sends succeed
  // (the kernel drops on delivery once a buffer fills), so the
  // measurement is pure sender-side cost either way.
  std::vector<double> legacy_reps;
  std::vector<double> unpaced_reps;
  std::vector<double> slgen_reps;
  {
    syslog::UdpReceiver::BindOptions sink_options;
    sink_options.reuse_port = true;
    std::vector<syslog::UdpReceiver> sinks;
    auto first = syslog::UdpReceiver::Bind(0, sink_options);
    if (!first) {
      std::fprintf(stderr, "FAIL: sink bind\n");
      return 1;
    }
    const std::uint16_t port = first->port();
    sinks.push_back(std::move(*first));
    for (int i = 1; i < threads; ++i) {
      if (auto next = syslog::UdpReceiver::Bind(port, sink_options)) {
        sinks.push_back(std::move(*next));
      }
    }
    LegacyRep(port, total / 8, 0, stream_options);  // warm-up
    // The paced comparator is sleep-bound (~1e6/pace_us msgs/s), so a
    // small slice of the workload gives the same rate without stalling
    // the bench.
    const long pace_us = 50;
    const std::uint64_t paced_total = std::max<std::uint64_t>(
        512, total / 16);
    for (int r = 0; r < reps; ++r) {
      legacy_reps.push_back(
          LegacyRep(port, paced_total, pace_us, stream_options));
      unpaced_reps.push_back(LegacyRep(port, total, 0, stream_options));
      slgen_reps.push_back(SlgenRep(port, total, threads, stream_options));
    }
  }
  const double speedup = Median(slgen_reps) / Median(legacy_reps);
  const double speedup_unpaced = Median(slgen_reps) / Median(unpaced_reps);
  std::printf("%-14s %12.0f msgs/sec (1 thread, 1 sendto/msg + usleep)\n",
              "seed replay", Median(legacy_reps));
  std::printf("%-14s %12.0f msgs/sec (1 thread, 1 sendto/msg)\n",
              "seed unpaced", Median(unpaced_reps));
  std::printf("%-14s %12.0f msgs/sec (%d threads, sendmmsg)  %.2fx replay, "
              "%.2fx unpaced\n",
              "slgen", Median(slgen_reps), threads, speedup,
              speedup_unpaced);

  // --- 2. Allocation audit: render + transmit after warm-up. ---
  double allocs_per_msg = 0.0;
  {
    auto sink = syslog::UdpReceiver::Bind(0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(sink->port());
    inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
    if (fd < 0 || ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                            sizeof(addr)) != 0) {
      std::fprintf(stderr, "FAIL: audit socket\n");
      return 1;
    }
    // A fault-heavy stream so every branch (duplicate, drop, reorder)
    // runs inside the audited window.
    loadgen::StreamOptions audit = stream_options;
    audit.faults = {0.05, 0.05, 0.10};
    std::atomic<std::uint64_t> cursor{0};
    loadgen::Stream stream(audit, &cursor, total);
    const std::uint64_t warm = 64;
    for (std::uint64_t i = 0; i < warm; ++i) {
      if (stream.RenderRound() == 0) break;
      stream.Transmit(fd);
    }
    const std::uint64_t before_msgs = stream.stats().generated;
    const std::uint64_t before = bench::AllocationCount();
    while (stream.RenderRound() > 0) {
      stream.Transmit(fd);
    }
    const std::uint64_t allocs = bench::AllocationCount() - before;
    const std::uint64_t msgs = stream.stats().generated - before_msgs;
    ::close(fd);
    allocs_per_msg =
        msgs > 0 ? static_cast<double>(allocs) / static_cast<double>(msgs)
                 : -1.0;
    std::printf("steady-state render+transmit: %.4f allocs/msg over %llu "
                "msgs\n",
                allocs_per_msg, static_cast<unsigned long long>(msgs));
  }

  // --- 3. Ledger + latency soak against a live Engine. ---
  // A short learn pass gives the engine a real knowledge base; the
  // loadgen routers are unknown to the dictionary, which is the honest
  // production shape for a generic load test (catch-all templates).
  sim::DatasetSpec spec = sim::DatasetASpec();
  spec.topo.num_routers = 10;
  bench::Pipeline fixture = bench::BuildPipeline(spec, 1, 0);

  obs::Registry registry;
  engine::EngineOptions engine_options;
  engine_options.shards = 1;
  engine_options.hold_ms = 5000;
  // No dedup: the virtual clock packs msgs_per_vsec messages into each
  // stream second, so benign byte-identical same-second messages are
  // common — the soak ledger counts every datagram the kernel delivered
  // (sent = accepted + kernel_drops + malformed + injected_drops).
  engine_options.suppress_duplicates = false;
  engine_options.metrics = &registry;
  engine::Engine engine(&fixture.kb, &fixture.dict, engine_options);
  engine.SetEventSink([](const core::DigestEvent&) {});

  syslog::UdpReceiver::BindOptions bind_options;
  bind_options.rcvbuf_bytes = 8 * 1024 * 1024;
  auto receiver = syslog::UdpReceiver::Bind(0, bind_options);
  if (!receiver) {
    std::fprintf(stderr, "FAIL: soak receiver bind\n");
    return 1;
  }

  std::atomic<bool> sender_done{false};
  std::uint64_t ingest_calls = 0;
  std::thread drain([&] {
    std::string datagram;
    std::uint64_t since_pump = 0;
    for (;;) {
      datagram.clear();
      if (receiver->Receive(&datagram, 20)) {
        engine.IngestDatagram(datagram);
        ++ingest_calls;
        if (++since_pump >= 2048) {
          engine.Pump();
          since_pump = 0;
        }
      } else {
        engine.Pump();
        since_pump = 0;
        // Drained after the sender finished: the soak is over.
        if (sender_done.load(std::memory_order_acquire)) break;
      }
    }
  });

  loadgen::RunOptions soak;
  soak.port = receiver->port();
  soak.total = soak_total;
  soak.threads = threads;
  soak.rate = soak_rate;
  soak.stream = stream_options;
  soak.stream.faults = {0.02, 0.01, 0.05};
  const loadgen::RunResult run = loadgen::Run(soak);
  sender_done.store(true, std::memory_order_release);
  drain.join();
  engine.Finish();
  if (!run.ok) {
    std::fprintf(stderr, "FAIL: soak sender: %s\n", run.error.c_str());
    return 1;
  }

  const obs::MetricsSnapshot snapshot = registry.Collect();
  const std::uint64_t accepted =
      static_cast<std::uint64_t>(snapshot.Value("collector_accepted_total"));
  const std::uint64_t late =
      static_cast<std::uint64_t>(snapshot.Value("collector_late_total"));
  const std::uint64_t malformed =
      static_cast<std::uint64_t>(snapshot.Value("collector_malformed_total"));
  const std::uint64_t dedup_dups =
      static_cast<std::uint64_t>(snapshot.Value("collector_duplicate_total"));
  const std::uint64_t received = receiver->received_count();
  const loadgen::StreamStats& s = run.stats;
  const std::uint64_t kernel_drops = s.wire >= received ? s.wire - received
                                                        : 0;

  bool ledger_ok = true;
  const auto require = [&ledger_ok](bool ok, const char* what) {
    if (!ok) {
      std::fprintf(stderr, "FAIL: ledger: %s\n", what);
      ledger_ok = false;
    }
  };
  require(s.sent() == s.generated + s.duplicates,
          "sent != generated + duplicates");
  require(s.sent() == s.wire + s.injected_drops,
          "sent != wire + injected_drops");
  require(s.wire >= received, "received more datagrams than were sent");
  require(received == ingest_calls,
          "receiver datagrams != engine ingest calls");
  require(received == accepted + late + malformed + dedup_dups,
          "received != accepted + late + malformed + duplicates");
  require(s.sent() == accepted + late + malformed + dedup_dups +
                          kernel_drops + s.injected_drops,
          "sent != accepted + late + malformed + duplicates + "
          "kernel_drops + injected_drops");

  double p50 = 0.0;
  double p99 = 0.0;
  std::uint64_t latency_samples = engine.e2e_latency_samples();
  if (const obs::SeriesSnapshot* latency =
          FindSeries(snapshot, "e2e_latency_seconds")) {
    p50 = latency->Quantile(0.50);
    p99 = latency->Quantile(0.99);
  }
  require(latency_samples > 0, "no ingest-to-emit latency samples");
  require(!(latency_samples > 0 && (p50 < 0 || p99 < p50)),
          "latency percentiles out of order");

  std::printf(
      "soak: sent=%llu wire=%llu received=%llu kernel_drops=%llu "
      "accepted=%llu late=%llu malformed=%llu dedup_dups=%llu "
      "events=%zu -- %s\n",
      static_cast<unsigned long long>(s.sent()),
      static_cast<unsigned long long>(s.wire),
      static_cast<unsigned long long>(received),
      static_cast<unsigned long long>(kernel_drops),
      static_cast<unsigned long long>(accepted),
      static_cast<unsigned long long>(late),
      static_cast<unsigned long long>(malformed),
      static_cast<unsigned long long>(dedup_dups), engine.event_count(),
      ledger_ok ? "ledger closed" : "LEDGER OPEN");
  std::printf("latency: %llu samples, p50 %.4fs, p99 %.4fs\n",
              static_cast<unsigned long long>(latency_samples), p50, p99);

  std::ofstream out(json);
  out << "{\n"
      << "  \"benchmark\": \"e2e\",\n"
      << "  \"cpus\": " << std::thread::hardware_concurrency() << ",\n"
      << "  \"threads\": " << threads << ",\n"
      << "  \"total\": " << total << ",\n"
      << "  \"soak_total\": " << soak_total << ",\n"
      << "  \"soak_rate\": " << soak_rate << ",\n"
      << "  \"reps\": " << reps << ",\n"
      << "  \"legacy_msgs_per_s\": " << Median(legacy_reps) << ",\n"
      << "  \"legacy_reps\": " << JsonArray(legacy_reps) << ",\n"
      << "  \"unpaced_msgs_per_s\": " << Median(unpaced_reps) << ",\n"
      << "  \"unpaced_reps\": " << JsonArray(unpaced_reps) << ",\n"
      << "  \"slgen_msgs_per_s\": " << Median(slgen_reps) << ",\n"
      << "  \"slgen_reps\": " << JsonArray(slgen_reps) << ",\n"
      << "  \"speedup_vs_legacy\": " << speedup << ",\n"
      << "  \"speedup_vs_unpaced\": " << speedup_unpaced << ",\n"
      << "  \"allocs_per_msg\": " << allocs_per_msg << ",\n"
      << "  \"ledger_ok\": " << (ledger_ok ? "true" : "false") << ",\n"
      << "  \"ledger\": {\"sent\": " << s.sent()
      << ", \"generated\": " << s.generated
      << ", \"duplicates\": " << s.duplicates
      << ",\n             \"injected_drops\": " << s.injected_drops
      << ", \"reorders\": " << s.reorders << ", \"wire\": " << s.wire
      << ",\n             \"received\": " << received
      << ", \"kernel_drops\": " << kernel_drops
      << ", \"accepted\": " << accepted << ",\n             \"late\": "
      << late << ", \"malformed\": " << malformed
      << ", \"dedup_duplicates\": " << dedup_dups
      << ", \"events\": " << engine.event_count() << "},\n"
      << "  \"latency\": {\"samples\": " << latency_samples
      << ", \"p50_s\": " << p50 << ", \"p99_s\": " << p99 << "}\n"
      << "}\n";
  std::printf("wrote %s\n", json.c_str());
  return ledger_ok ? 0 : 1;
}
