// Figure 12 — Per-day counts over the two online weeks (dataset A):
// raw messages, digest events, and active rules.  The paper's observation:
// event counts are far more stable day-to-day than message counts, and
// 100-200 rules are active per day.
#include <cmath>

#include "common.h"

using namespace sld;

int main() {
  bench::Header("Figure 12", "per-day messages / events / active rules (A)",
                "events per day are stable while message counts vary; "
                "~3 orders of magnitude between the two curves");
  const sim::DatasetSpec spec = sim::DatasetASpec();
  bench::Pipeline p = bench::BuildPipeline(spec, 28, 14);
  core::Digester digester(&p.kb, &p.dict);

  std::printf("%-6s %-10s %-8s %-12s %s\n", "day", "messages", "events",
              "active rules", "ratio");
  double mean_events = 0;
  double mean_sq = 0;
  double mean_msgs = 0;
  double mean_msgs_sq = 0;
  int days = 0;
  std::size_t begin = 0;
  for (int day = 0; day < p.live.num_days; ++day) {
    std::size_t end = begin;
    while (end < p.live.messages.size() &&
           p.live.DayOf(p.live.messages[end].time) <= day) {
      ++end;
    }
    const std::span<const syslog::SyslogRecord> slice(
        p.live.messages.data() + begin, end - begin);
    const core::DigestResult result = digester.Digest(slice);
    std::printf("%-6d %-10zu %-8zu %-12zu %.3e\n", day + 1, slice.size(),
                result.events.size(), result.active_rule_count,
                result.CompressionRatio());
    mean_events += static_cast<double>(result.events.size());
    mean_sq += static_cast<double>(result.events.size()) *
               static_cast<double>(result.events.size());
    mean_msgs += static_cast<double>(slice.size());
    mean_msgs_sq += static_cast<double>(slice.size()) *
                    static_cast<double>(slice.size());
    ++days;
    begin = end;
  }
  mean_events /= days;
  mean_msgs /= days;
  const double cv_events =
      std::sqrt(mean_sq / days - mean_events * mean_events) / mean_events;
  const double cv_msgs =
      std::sqrt(mean_msgs_sq / days - mean_msgs * mean_msgs) / mean_msgs;
  std::printf(
      "day-to-day coefficient of variation: messages=%.2f events=%.2f "
      "(events should be no more volatile than messages)\n",
      cv_msgs, cv_events);
  return 0;
}
