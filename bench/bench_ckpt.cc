// Checkpoint/restore recovery cost (DESIGN.md §14): how long a durable
// engine takes to snapshot its full live state and how long a cold
// restart takes to come back, swept over open-group counts.  Recovery
// time is the operational metric the checkpoint subsystem exists for —
// a crash loses at most one checkpoint interval of work, and the
// restart pays exactly the restore time measured here before it can
// accept datagrams again.  Written to BENCH_ckpt.json.
//
// Every sweep point also proves the snapshot is *faithful*, not just
// fast: the original engine and a restored-from-disk twin are fed the
// same continuation of the live stream and must close the same groups
// into byte-identical events in the same order ("identical" in the
// JSON; the gate refuses false).  A steady-state allocation audit
// covers the other side of the durability hot path: AppendRfc3164 into
// a reused buffer (the replay/generator encode loop) must not allocate.
//
// Open groups are keyed by root location, so their count is bounded by
// how many distinct spots the workload has touched — not by message
// volume.  To sweep into the tens of thousands the bench widens the
// topology (--routers) and multiplies the live-side scenario rates
// (--rate-scale), while learning on ordinary rates over the same
// network; that models the operational worst case (a large network
// melting down everywhere at once) without distorting the learned
// knowledge base.
//
//   bench_ckpt                            # defaults: sweep 1000,10000
//   bench_ckpt --reps 3 --sweep 1000 --routers 120 --rate-scale 30 \
//              --live-days 2              # CI smoke
//   bench_ckpt --json=FILE                # default BENCH_ckpt.json
#include <stdlib.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common.h"
#include "engine/engine.h"
#include "syslog/wire.h"

using namespace sld;

namespace {

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

double Median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

std::string JsonArray(const std::vector<double>& v) {
  std::string out = "[";
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i != 0) out += ", ";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", v[i]);
    out += buf;
  }
  out += "]";
  return out;
}

// The serve configuration a durable tenant runs with, except that group
// closing is disabled (no idle horizon, effectively infinite age cap) so
// open groups accumulate to the sweep target instead of draining.
engine::EngineOptions DurableOptions() {
  engine::EngineOptions opts;
  opts.shards = 1;
  opts.suppress_duplicates = true;
  opts.hold_ms = 1000;
  opts.idle_close_ms = 0;
  opts.max_group_age_ms = TimeMs{400} * 24 * kMsPerHour;
  return opts;
}

struct SweepPoint {
  std::size_t target = 0;       // requested open-group count
  std::size_t open_groups = 0;  // actual count at checkpoint time
  std::size_t msgs_fed = 0;
  std::uintmax_t snapshot_bytes = 0;
  std::vector<double> save_reps;     // seconds per Checkpoint()
  std::vector<double> restore_reps;  // seconds per OpenDurable() restore
};

std::vector<double> RateReps(const std::vector<double>& seconds,
                             std::size_t groups) {
  std::vector<double> rates;
  rates.reserve(seconds.size());
  for (const double s : seconds) {
    rates.push_back(static_cast<double>(groups) / s);
  }
  return rates;
}

// Multiplies every scenario rate (and the uncorrelated noise) by `s`.
void ScaleRates(sim::ScenarioRates& r, double s) {
  for (sim::Rate* rate :
       {&r.link_flap, &r.controller_flap, &r.bundle_flap, &r.bgp_vpn_flap,
        &r.ibgp_flap, &r.cpu_spike, &r.bad_auth_scan, &r.login_scan,
        &r.config_change, &r.env_alarm, &r.card_oir,
        &r.maintenance_window, &r.rp_switchover, &r.sap_churn,
        &r.service_churn, &r.pim_dual_failure, &r.duplex_mismatch}) {
    rate->per_day *= s;
  }
  r.random_noise_per_day *= s;
}

}  // namespace

int main(int argc, char** argv) {
  int reps = 5;
  int live_days = 4;
  int routers = 400;
  double rate_scale = 100.0;
  std::vector<std::size_t> sweep = {1000, 10000};
  std::string json = "BENCH_ckpt.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--live-days") == 0 && i + 1 < argc) {
      live_days = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--routers") == 0 && i + 1 < argc) {
      routers = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--rate-scale") == 0 && i + 1 < argc) {
      rate_scale = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--sweep") == 0 && i + 1 < argc) {
      sweep.clear();
      for (const char* tok = std::strtok(argv[++i], ","); tok != nullptr;
           tok = std::strtok(nullptr, ",")) {
        sweep.push_back(static_cast<std::size_t>(std::atoll(tok)));
      }
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json = argv[i] + 7;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return 2;
    }
  }
  if (reps < 1) reps = 1;
  if (live_days < 1) live_days = 1;
  if (routers < 2) routers = 2;
  if (rate_scale < 1.0) rate_scale = 1.0;
  if (sweep.empty()) sweep = {1000};
  std::sort(sweep.begin(), sweep.end());

  bench::Header("ckpt", "checkpoint save / crash-restart restore",
                "recovery time scales linearly in open groups; a restored "
                "engine continues bit-identically to one that never died");

  // Learn at ordinary rates, serve a rate-scaled live period; both sides
  // render the same topology (same topo params + seed), so the location
  // dictionary built from the history configs covers the live stream.
  const int learn_days = 3;
  sim::DatasetSpec spec = sim::DatasetASpec();
  spec.topo.num_routers = routers;
  sim::DatasetSpec live_spec = spec;
  ScaleRates(live_spec.rates, rate_scale);

  bench::Pipeline p;
  p.history = sim::GenerateDataset(spec, 0, learn_days, bench::kOfflineSeed);
  p.live = sim::GenerateDataset(live_spec, learn_days, live_days,
                                bench::kOnlineSeed);
  p.dict = bench::BuildDict(p.history);
  core::OfflineLearnerParams learn_params;
  learn_params.rules = bench::PaperRuleParams(spec);
  learn_params.threads = bench::LearnThreadsFromEnv();
  core::OfflineLearner learner(learn_params);
  p.kb = learner.Learn(p.history.messages, p.dict);

  const std::vector<syslog::SyslogRecord>& live = p.live.messages;
  std::printf("live stream: %zu records (%d days, %d routers, rates "
              "x%.0f)\n",
              live.size(), live_days, routers, rate_scale);

  // Scratch checkpoint directories under TMPDIR.
  std::string tmpl =
      (std::filesystem::temp_directory_path() / "bench_ckpt.XXXXXX")
          .string();
  if (mkdtemp(tmpl.data()) == nullptr) {
    std::fprintf(stderr, "FAIL: cannot create scratch dir %s\n",
                 tmpl.c_str());
    return 1;
  }
  const std::filesystem::path scratch(tmpl);

  // Steady-state encode audit: AppendRfc3164 into a reused buffer must
  // stop allocating once the buffer has grown to the longest datagram.
  double encode_allocs_per_msg = 0.0;
  {
    std::string buf;
    for (std::size_t i = 0; i < std::min<std::size_t>(live.size(), 4096);
         ++i) {
      buf.clear();
      syslog::AppendRfc3164(live[i], &buf);  // warm the buffer capacity
    }
    const std::uint64_t before = bench::AllocationCount();
    for (const syslog::SyslogRecord& rec : live) {
      buf.clear();
      syslog::AppendRfc3164(rec, &buf);
    }
    const std::uint64_t allocs = bench::AllocationCount() - before;
    encode_allocs_per_msg =
        static_cast<double>(allocs) / static_cast<double>(live.size());
    std::printf("AppendRfc3164 steady state: %.4f allocs/msg over %zu "
                "encodes\n",
                encode_allocs_per_msg, live.size());
  }

  bool identical = true;
  std::vector<SweepPoint> points;
  for (const std::size_t target : sweep) {
    SweepPoint point;
    point.target = target;
    const std::filesystem::path dir = scratch / ("live_" +
                                                 std::to_string(target));
    const std::filesystem::path image =
        scratch / ("image_" + std::to_string(target));
    std::filesystem::remove_all(dir);
    std::filesystem::remove_all(image);
    std::filesystem::create_directories(image);

    engine::Engine a(&p.kb, &p.dict, DurableOptions());
    std::string error;
    if (!a.OpenDurable(dir.string(), &error)) {
      std::fprintf(stderr, "FAIL: OpenDurable: %s\n", error.c_str());
      return 1;
    }
    // Feed until the live stage holds `target` open groups.  Closing is
    // disabled, so the count only grows; the stream must be long enough
    // (--live-days) to reach the target before it runs dry.
    std::size_t fed = 0;
    while (a.open_group_count() < target && fed < live.size()) {
      a.IngestRecord(live[fed++]);
      if (fed % 512 == 0) a.Pump();
    }
    a.Pump();
    if (a.open_group_count() < target) {
      std::fprintf(stderr,
                   "FAIL: stream dry at %zu open groups (target %zu); "
                   "raise --live-days\n",
                   a.open_group_count(), target);
      return 1;
    }
    point.open_groups = a.open_group_count();
    point.msgs_fed = fed;

    // One untimed save warms the serializer and the page cache so the
    // timed reps measure the steady state the serve loop's periodic
    // tick actually pays.
    for (int r = -1; r < reps; ++r) {
      const auto start = std::chrono::steady_clock::now();
      if (!a.Checkpoint(&error)) {
        std::fprintf(stderr, "FAIL: Checkpoint: %s\n", error.c_str());
        return 1;
      }
      if (r >= 0) point.save_reps.push_back(Seconds(start));
    }
    point.snapshot_bytes = std::filesystem::file_size(dir / "snapshot");

    // Photograph the checkpoint the way a crash leaves it, then time
    // cold restarts against the image.
    std::filesystem::copy_file(dir / "snapshot", image / "snapshot");
    if (std::filesystem::exists(dir / "events.log")) {
      std::filesystem::copy_file(dir / "events.log", image / "events.log");
    }
    for (int r = -1; r < reps; ++r) {
      engine::Engine b(&p.kb, &p.dict, DurableOptions());
      const auto start = std::chrono::steady_clock::now();
      if (!b.OpenDurable(image.string(), &error)) {
        std::fprintf(stderr, "FAIL: restore: %s\n", error.c_str());
        return 1;
      }
      if (r >= 0) point.restore_reps.push_back(Seconds(start));
      if (b.open_group_count() != point.open_groups) {
        identical = false;
        std::fprintf(stderr,
                     "FAIL: restore came back with %zu open groups, "
                     "checkpoint had %zu\n",
                     b.open_group_count(), point.open_groups);
      }
    }

    // Fidelity: feed the SAME continuation of the live stream to the
    // original engine and to a restored twin; both must close the same
    // groups into byte-identical events in the same order.
    const std::size_t tail_end =
        std::min(live.size(), fed + std::size_t{4000});
    engine::Engine b(&p.kb, &p.dict, DurableOptions());
    if (!b.OpenDurable(image.string(), &error)) {
      std::fprintf(stderr, "FAIL: restore: %s\n", error.c_str());
      return 1;
    }
    for (std::size_t i = fed; i < tail_end; ++i) {
      a.IngestRecord(live[i]);
      b.IngestRecord(live[i]);
    }
    a.Pump();
    b.Pump();
    const std::vector<core::DigestEvent> fa = a.Finish();
    const std::vector<core::DigestEvent> fb = b.Finish();
    if (fa.size() != fb.size()) {
      identical = false;
      std::fprintf(stderr,
                   "FAIL: continuation closed %zu events live vs %zu "
                   "restored\n",
                   fa.size(), fb.size());
    } else {
      for (std::size_t i = 0; i < fa.size(); ++i) {
        if (fa[i].Format() != fb[i].Format()) {
          identical = false;
          std::fprintf(stderr,
                       "FAIL: continuation event %zu differs after "
                       "restore\n",
                       i);
          break;
        }
      }
    }

    const double save_mid = Median(point.save_reps);
    const double restore_mid = Median(point.restore_reps);
    std::printf("%6zu open groups (%zu msgs):  save %8.2f ms  restore "
                "%8.2f ms  snapshot %8.1f KiB  (%zu events on close, "
                "%s)\n",
                point.open_groups, point.msgs_fed, save_mid * 1e3,
                restore_mid * 1e3,
                static_cast<double>(point.snapshot_bytes) / 1024.0,
                fa.size(), identical ? "identical" : "DIVERGED");
    points.push_back(std::move(point));
  }

  std::ofstream out(json);
  out << "{\n  \"benchmark\": \"ckpt\",\n  \"dataset\": \"A\",\n"
      << "  \"shards\": 1,\n"
      << "  \"routers\": " << routers << ",\n"
      << "  \"rate_scale\": " << rate_scale << ",\n"
      << "  \"live_days\": " << live_days << ",\n"
      << "  \"reps\": " << reps << ",\n"
      << "  \"identical\": " << (identical ? "true" : "false") << ",\n"
      << "  \"encode_allocs_per_msg\": " << encode_allocs_per_msg << ",\n"
      << "  \"sweep\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const SweepPoint& pt = points[i];
    const std::vector<double> save_rates =
        RateReps(pt.save_reps, pt.open_groups);
    const std::vector<double> restore_rates =
        RateReps(pt.restore_reps, pt.open_groups);
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"open_groups\": %zu, \"msgs_fed\": %zu, "
        "\"snapshot_bytes\": %llu,\n"
        "     \"save_s\": %.6g, \"restore_s\": %.6g,\n"
        "     \"save_groups_per_sec\": %.6g, "
        "\"restore_groups_per_sec\": %.6g,\n",
        pt.open_groups, pt.msgs_fed,
        static_cast<unsigned long long>(pt.snapshot_bytes),
        Median(pt.save_reps), Median(pt.restore_reps), Median(save_rates),
        Median(restore_rates));
    out << buf << "     \"save_rate_reps\": " << JsonArray(save_rates)
        << ",\n     \"restore_rate_reps\": " << JsonArray(restore_rates)
        << "}" << (i + 1 < points.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::printf("wrote %s\n", json.c_str());

  std::filesystem::remove_all(scratch);
  const bool alloc_ok = encode_allocs_per_msg <= 0.01;
  if (!alloc_ok) {
    std::fprintf(stderr,
                 "FAIL: AppendRfc3164 allocates %.4f/msg with a reused "
                 "buffer\n",
                 encode_allocs_per_msg);
  }
  return identical && alloc_ok ? 0 : 1;
}
