// Ablation of §2's claim: vendor-assigned syslog severity "cannot be
// directly used to rank-order the importance of events".
//
// We rank the two-week dataset-B digest two ways — by the paper's score
// and by best (lowest) vendor severity — and compare how well each
// ranking surfaces the operations-ticketed incidents (§5.3's match
// criteria).  The paper's score should place tickets far higher.
#include <algorithm>
#include <map>
#include <set>

#include "common.h"
#include "syslog/record.h"

using namespace sld;

namespace {

struct Ranked {
  const core::DigestEvent* event;
  double key;  // ascending sort
};

double TicketPercentile(const std::vector<Ranked>& order,
                        const bench::Pipeline& p,
                        const std::map<std::string, std::string>& state_of) {
  // Top-30 tickets by update count.
  std::vector<sim::TroubleTicket> tickets = p.live.tickets;
  std::sort(tickets.begin(), tickets.end(),
            [](const sim::TroubleTicket& a, const sim::TroubleTicket& b) {
              return a.update_count > b.update_count;
            });
  if (tickets.size() > 30) tickets.resize(30);

  std::vector<std::set<std::string>> states(order.size());
  for (std::size_t e = 0; e < order.size(); ++e) {
    for (const std::uint32_t key : order[e].event->router_keys) {
      if (key < p.dict.router_count()) {
        states[e].insert(state_of.at(p.dict.RouterName(key)));
      }
    }
  }
  double worst = 0.0;
  double sum = 0.0;
  std::size_t matched = 0;
  for (const sim::TroubleTicket& ticket : tickets) {
    for (std::size_t e = 0; e < order.size(); ++e) {
      const core::DigestEvent& ev = *order[e].event;
      if (ev.start > ticket.created || ev.end < ticket.created) continue;
      if (states[e].count(ticket.state) == 0) continue;
      const double pct = 100.0 * static_cast<double>(e + 1) /
                         static_cast<double>(order.size());
      worst = std::max(worst, pct);
      sum += pct;
      ++matched;
      break;
    }
  }
  (void)sum;
  return matched == 0 ? 100.0 : worst;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::AblationArgs args =
      bench::ParseAblationArgs(argc, argv, /*learn_days=*/28,
                               /*live_days=*/14);
  bench::Header("ablation", "event ranking: paper score vs vendor severity",
                "ranking by vendor severity buries ticketed incidents; the "
                "paper's l_m/log(f_m) score keeps them near the top");
  const sim::DatasetSpec spec = sim::DatasetBSpec();
  bench::Pipeline p =
      bench::BuildPipeline(spec, args.learn_days, args.live_days);
  core::Digester digester(&p.kb, &p.dict);
  const core::DigestResult result = digester.Digest(p.live.messages);

  std::map<std::string, std::string> state_of;
  for (const net::Router& r : p.live.topo.routers) {
    state_of[r.name] = r.state;
  }

  // Ranking 1: the paper's score (result is already ordered by it).
  std::vector<Ranked> by_score;
  for (const auto& ev : result.events) {
    by_score.push_back({&ev, -ev.score});
  }

  // Ranking 2: best (lowest) vendor severity of any message in the event,
  // ties broken by message count (bigger first).
  std::vector<Ranked> by_severity;
  for (const auto& ev : result.events) {
    int best = 7;
    for (const std::size_t m : ev.messages) {
      best = std::min(best,
                      syslog::VendorSeverity(p.live.messages[m].code));
    }
    by_severity.push_back(
        {&ev, best * 1e9 - static_cast<double>(ev.messages.size())});
  }
  std::sort(by_severity.begin(), by_severity.end(),
            [](const Ranked& a, const Ranked& b) { return a.key < b.key; });

  const double score_worst = TicketPercentile(by_score, p, state_of);
  const double severity_worst = TicketPercentile(by_severity, p, state_of);
  std::printf(
      "worst rank percentile of a top-30 ticketed incident:\n"
      "  paper score ranking:      top %.1f%%\n"
      "  vendor severity ranking:  top %.1f%%\n",
      score_worst, severity_worst);
  std::printf(severity_worst > score_worst
                  ? "vendor severity demotes real incidents, as §2 argues\n"
                  : "NOTE: severity ranking unexpectedly competitive here\n");
  if (!args.json.empty()) {
    std::ofstream js =
        bench::OpenAblationJson(args.json, "ranking", args);
    js << "  \"dataset\": \"" << spec.name
       << "\",\n  \"events\": " << result.events.size()
       << ",\n  \"score_worst_pct\": " << score_worst
       << ",\n  \"severity_worst_pct\": " << severity_worst << "\n}\n";
    std::printf("wrote %s\n", args.json.c_str());
  }
  return 0;
}
