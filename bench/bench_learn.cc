// Offline learning throughput (§4.1): msgs/sec through the full
// template/augment/temporal/rule learning pass, serial baseline vs the
// thread-pool learner, with bit-identical knowledge-base verification at
// every thread count.  Written to BENCH_learn.json.
//
// The baseline ("legacy") is the pre-parallelization OfflineLearner
// reproduced verbatim on the public APIs: a straight serial loop per
// phase, exactly as learn.cc read before the thread-pool refactor.  The
// measured path is the real OfflineLearner at each sweep point; its
// serialized KnowledgeBase must equal the legacy one bit for bit or the
// bench exits non-zero.
//
//   bench_learn                         # defaults: 14 learn days, 3 reps
//   bench_learn --learn-days 2 --reps 3 --sweep 1,4   # CI smoke
//   bench_learn --json=FILE             # output path (default
//                                       # BENCH_learn.json)
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common.h"
#include "obs/registry.h"

using namespace sld;

namespace {

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// The pre-parallelization learner, frozen here as the speedup baseline
// (same role the legacy matcher plays in bench_match).
core::KnowledgeBase LegacyLearn(
    std::span<const syslog::SyslogRecord> history,
    const core::LocationDict& dict, const core::OfflineLearnerParams& p) {
  core::KnowledgeBase kb;
  kb.rule_params = p.rules;
  kb.temporal_params = p.temporal;
  kb.history_message_count = history.size();

  core::TemplateLearner template_learner(p.templates);
  for (const syslog::SyslogRecord& rec : history) {
    template_learner.Add(rec.code, rec.detail);
  }
  kb.templates = template_learner.Learn();

  core::Augmenter augmenter(&kb.templates, &dict);
  const std::vector<core::Augmented> augmented =
      augmenter.AugmentAll(history);

  kb.temporal_priors = core::MineTemporalPriors(augmented, p.temporal.smax);
  if (p.sweep_temporal) {
    core::TemporalParams tuned = core::SelectTemporalParams(
        augmented, kb.temporal_priors, p.alpha_grid, p.beta_grid);
    tuned.smin = p.temporal.smin;
    tuned.smax = p.temporal.smax;
    kb.temporal_params = tuned;
  }

  if (!augmented.empty()) {
    const TimeMs period =
        static_cast<TimeMs>(p.update_period_days) * kMsPerDay;
    const TimeMs t0 = augmented.front().time;
    std::size_t begin = 0;
    std::size_t prev_size = 0;
    while (begin < augmented.size()) {
      const TimeMs period_end =
          t0 + ((augmented[begin].time - t0) / period + 1) * period;
      std::size_t end = begin;
      while (end < augmented.size() && augmented[end].time < period_end) {
        ++end;
      }
      const bool sliver = end == augmented.size() && prev_size > 0 &&
                          (end - begin) < prev_size / 10;
      if (!sliver) {
        const core::MiningStats stats = core::MineCooccurrence(
            std::span<const core::Augmented>(augmented)
                .subspan(begin, end - begin),
            p.rules.window_ms);
        kb.rules.Update(stats, p.rules);
      }
      prev_size = end - begin;
      begin = end;
    }
  }

  for (const core::Augmented& msg : augmented) {
    ++kb.signature_freq[core::KnowledgeBase::FreqKey(msg.tmpl,
                                                     msg.router_key)];
  }
  return kb;
}

double Median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

std::string JsonArray(const std::vector<double>& v) {
  std::string out = "[";
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i != 0) out += ", ";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", v[i]);
    out += buf;
  }
  out += "]";
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  int learn_days = 14;
  int reps = 3;
  std::vector<int> sweep = {1, 2, 4, 8};
  std::string json = "BENCH_learn.json";
  bool sweep_temporal = true;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--learn-days") == 0 && i + 1 < argc) {
      learn_days = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--sweep") == 0 && i + 1 < argc) {
      sweep.clear();
      for (const char* tok = std::strtok(argv[++i], ","); tok != nullptr;
           tok = std::strtok(nullptr, ",")) {
        sweep.push_back(std::atoi(tok));
      }
    } else if (std::strcmp(argv[i], "--no-temporal-sweep") == 0) {
      sweep_temporal = false;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json = argv[i] + 7;
    }
  }
  if (learn_days < 1) learn_days = 1;
  if (reps < 1) reps = 1;
  if (sweep.empty()) sweep = {1, 4};

  bench::Header("learn", "parallel offline learning",
                "months of history learn in minutes; the knowledge base "
                "is bit-identical at any thread count");

  const sim::Dataset history =
      sim::GenerateDataset(sim::DatasetASpec(), 0, learn_days,
                           bench::kOfflineSeed);
  const core::LocationDict dict = bench::BuildDict(history);
  core::OfflineLearnerParams params;
  params.rules = bench::PaperRuleParams(sim::DatasetASpec());
  // The α/β grid sweep is part of the paper's offline procedure
  // (Figs. 10-11) and the heaviest phase; keep it on by default so the
  // bench exercises all four parallel phases.
  params.sweep_temporal = sweep_temporal;
  const double n = static_cast<double>(history.messages.size());
  std::printf("history: %zu messages (%d days), temporal sweep %s\n",
              history.messages.size(), learn_days,
              sweep_temporal ? "on" : "off");

  // Serial baseline: the pre-refactor learner, reproduced above.
  std::vector<double> legacy_reps;
  core::KnowledgeBase legacy_kb;
  for (int r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    legacy_kb = LegacyLearn(history.messages, dict, params);
    legacy_reps.push_back(n / Seconds(start));
  }
  const double legacy_rate = Median(legacy_reps);
  const std::string expected = legacy_kb.Serialize();
  std::printf("legacy serial learner: %12.0f msgs/sec  (%zu templates, "
              "%zu rules)\n",
              legacy_rate, legacy_kb.templates.size(),
              legacy_kb.rules.size());

  struct SweepPoint {
    int threads = 1;
    double rate = 0;
    std::vector<double> reps;
    core::LearnTimings timings;
  };
  std::vector<SweepPoint> points;
  bool identical = true;
  obs::Registry metrics;
  for (const int threads : sweep) {
    SweepPoint point;
    point.threads = threads;
    core::OfflineLearnerParams p = params;
    p.threads = threads;
    core::OfflineLearner learner(p);
    for (int r = 0; r < reps; ++r) {
      // Registry cells sum at Collect time, so bind only the very last
      // rep of the last sweep point — the snapshot then holds one clean
      // set of phase gauges.
      if (threads == sweep.back() && r == reps - 1) {
        learner.BindMetrics(&metrics);
      }
      const auto start = std::chrono::steady_clock::now();
      const core::KnowledgeBase kb =
          learner.Learn(history.messages, dict, nullptr, &point.timings);
      point.reps.push_back(n / Seconds(start));
      if (kb.Serialize() != expected) {
        identical = false;
        std::fprintf(stderr,
                     "FAIL: KB at %d threads differs from serial learner\n",
                     threads);
      }
    }
    point.rate = Median(point.reps);
    points.push_back(std::move(point));
    std::printf(
        "pool learner x%-2d:      %12.0f msgs/sec  (%5.2fx)  "
        "[tmpl %.2fs aug %.2fs priors %.2fs grid %.2fs rules %.2fs]\n",
        threads, points.back().rate, points.back().rate / legacy_rate,
        points.back().timings.templates_s, points.back().timings.augment_s,
        points.back().timings.priors_s, points.back().timings.params_s,
        points.back().timings.rules_s);
  }

  std::ofstream out(json);
  out << "{\n  \"benchmark\": \"learn\",\n  \"dataset\": \"A\",\n"
      << "  \"cpus\": " << std::thread::hardware_concurrency() << ",\n"
      << "  \"messages\": " << history.messages.size() << ",\n"
      << "  \"learn_days\": " << learn_days << ",\n"
      << "  \"temporal_sweep\": " << (sweep_temporal ? "true" : "false")
      << ",\n"
      << "  \"reps\": " << reps << ",\n"
      << "  \"identical\": " << (identical ? "true" : "false") << ",\n"
      << "  \"serial_msgs_per_sec\": " << legacy_rate << ",\n"
      << "  \"serial_reps\": " << JsonArray(legacy_reps) << ",\n"
      << "  \"sweep\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const SweepPoint& p = points[i];
    const core::LearnTimings& t = p.timings;
    char buf[384];
    std::snprintf(buf, sizeof(buf),
                  "    {\"threads\": %d, \"msgs_per_sec\": %.6g, "
                  "\"speedup\": %.6g, \"reps\": %s,\n"
                  "     \"phases\": {\"templates_s\": %.6g, \"augment_s\": "
                  "%.6g, \"priors_s\": %.6g, \"params_s\": %.6g, "
                  "\"rules_s\": %.6g, \"freq_s\": %.6g, \"total_s\": "
                  "%.6g}}",
                  p.threads, p.rate, p.rate / legacy_rate,
                  JsonArray(p.reps).c_str(), t.templates_s, t.augment_s,
                  t.priors_s, t.params_s, t.rules_s, t.freq_s, t.total_s);
    out << buf << (i + 1 < points.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"metrics\": " << metrics.Collect().RenderJson() << "}\n";
  std::printf("wrote %s\n", json.c_str());
  return identical ? 0 : 1;
}
