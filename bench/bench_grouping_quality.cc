// Beyond the paper: quantitative grouping quality against ground truth.
//
// The paper validated grouping by expert review; the simulator's labels
// let us measure it.  Reported per dataset and per grouping mode:
// fragmentation (digest events per true network condition), purity
// (unrelated labeled messages pulled into a condition's events), and
// completeness@1 (share of the condition held by its main digest event).
#include "common.h"
#include "core/eval.h"

using namespace sld;

namespace {

void Run(const sim::DatasetSpec& spec) {
  bench::Pipeline p = bench::BuildPipeline(spec, 28, 7);
  core::Digester digester(&p.kb, &p.dict);
  struct Mode {
    const char* name;
    core::DigestOptions options;
  };
  const Mode modes[] = {
      {"T", {false, false, kMsPerSecond}},
      {"T+R", {true, false, kMsPerSecond}},
      {"T+R+C", {true, true, kMsPerSecond}},
  };
  std::printf("dataset %s (%zu true events in 7 online days):\n",
              spec.name.c_str(), p.live.ground_truth.size());
  std::printf("  %-8s %-14s %-9s %-15s %s\n", "mode", "fragmentation",
              "purity", "completeness@1", "fully assembled");
  for (const Mode& mode : modes) {
    const core::DigestResult result =
        digester.Digest(p.live.messages, mode.options);
    const core::GroupingQuality q =
        core::EvaluateGrouping(p.live, result);
    std::printf("  %-8s %-14.2f %-9.3f %-15.3f %.1f%%\n", mode.name,
                q.mean_fragmentation, q.mean_purity, q.mean_completeness,
                100.0 * q.fully_assembled_fraction);
  }
}

}  // namespace

int main() {
  bench::Header("extra", "grouping quality vs ground truth",
                "each grouping stage cuts fragmentation while purity "
                "stays near 1.0 (merging related, not unrelated, messages)");
  Run(sim::DatasetASpec());
  Run(sim::DatasetBSpec());
  return 0;
}
