// Table 5 — Sensitivity of the minimal support SP_min.
//
// For SP_min in {1e-3, 5e-4, 1e-4}: the fraction of message types (i.e.
// templates) whose support clears the threshold ("Top %") and the fraction
// of raw messages those types cover ("Coverage").
#include <algorithm>

#include "common.h"
#include "core/rules/rules.h"

using namespace sld;

namespace {

void Run(const sim::DatasetSpec& spec) {
  bench::Pipeline p = bench::BuildPipeline(spec, 28, 0);
  const auto augmented = bench::Augment(p.kb, p.dict, p.history);
  const core::MiningStats stats =
      core::MineCooccurrence(augmented, bench::PaperRuleParams(spec).window_ms);

  std::printf("dataset %s (%zu messages, %zu templates, %zu transactions)\n",
              spec.name.c_str(), stats.message_count, stats.item_tx.size(),
              stats.transaction_count);
  std::printf("  %-10s %-10s %-10s\n", "SP_min", "Top %", "Coverage");
  for (const double sp_min : {0.001, 0.0005, 0.0001}) {
    std::size_t kept_types = 0;
    std::size_t kept_messages = 0;
    for (const auto& [tmpl, tx_count] : stats.item_tx) {
      (void)tx_count;
      if (stats.Support(tmpl) >= sp_min) {
        ++kept_types;
        kept_messages += stats.item_messages.at(tmpl);
      }
    }
    std::printf("  %-10g %-10.1f %-10.2f\n", sp_min,
                100.0 * static_cast<double>(kept_types) /
                    static_cast<double>(stats.item_tx.size()),
                100.0 * static_cast<double>(kept_messages) /
                    static_cast<double>(stats.message_count));
  }
}

}  // namespace

int main() {
  bench::Header("Table 5", "SP_min sensitivity",
                "a small top-% of types (13-55%) covers ~90-99.99% of "
                "messages; both columns grow as SP_min shrinks");
  Run(sim::DatasetASpec());
  Run(sim::DatasetBSpec());
  return 0;
}
