// Application bench (§1/§7): MERCURY-style level-shift detection on
// SyslogDigest's learned series.
//
// Dataset A's workload stages several behaviour changes: the CDP duplex
// nuisance appears on day 14, bundle flaps on day 21, environment alarms
// on day 35.  Tracking daily counts per learned *template* should surface
// those activation days.
#include "common.h"
#include "core/trend.h"

using namespace sld;

int main() {
  bench::Header("extra", "level-shift detection over learned templates (A)",
                "staged behaviour changes (days 14 / 21 / 35) surface as "
                "the strongest level shifts");
  const sim::DatasetSpec spec = sim::DatasetASpec();
  const int days = 56;
  bench::Pipeline p = bench::BuildPipeline(spec, days, 0);
  const auto augmented = bench::Augment(p.kb, p.dict, p.history);

  const auto series = core::TemplateDailyCounts(
      augmented, p.kb.templates, p.history.epoch, days);
  core::LevelShiftParams params;
  params.window_days = 7;
  params.min_ratio = 3.0;
  params.min_mean = 2.0;
  const auto shifts = core::DetectLevelShifts(series, params);

  std::printf("%zu template series, %zu level shifts detected:\n",
              series.size(), shifts.size());
  for (std::size_t i = 0; i < shifts.size() && i < 12; ++i) {
    std::printf("  day %2d: %5.1f -> %6.1f msgs/day  %s\n",
                shifts[i].day, shifts[i].before, shifts[i].after,
                shifts[i].series.substr(0, 70).c_str());
  }
  std::printf(
      "expected activations: duplex mismatch ~day 14, bundle flaps "
      "~day 21, environment alarms ~day 35\n");
  return 0;
}
