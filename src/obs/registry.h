// Metrics registry + snapshot exporter (JSON and Prometheus text).
//
// Usage shape:
//   - Setup (cold): each component registers the cells it will touch —
//     `reg->AddCounter("collector_accepted_total", "...")`.  Registration
//     takes the registry mutex and may allocate; it happens once, before
//     traffic.
//   - Hot path: components bump the returned Counter*/Gauge*/Histogram*
//     directly — one relaxed atomic op, no lock, no allocation.
//   - Snapshot (cold): `reg->Collect()` walks the cells under the mutex
//     and AGGREGATES cells that share (name, labels): counters and gauges
//     sum, histograms merge bucket-wise.  That aggregation rule is what
//     lets every shard own a private cell for the same logical series, so
//     the hot path is uncontended by construction.
//
// Cell addresses are stable for the registry's lifetime (deque storage);
// the registry must outlive every component holding cells.
//
// Multi-tenant form: `ScopedView(labels)` returns a lightweight Registry
// facade whose registrations forward to the root with `labels` prepended
// to every cell — the engine layer scopes each tenant's components with
// {"tenant", NAME} so one process-wide registry holds every tenant's
// series, each unambiguously labeled, and `Collect()` on the root (or on
// any view) snapshots them all.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace sld::obs {

// Ordered label set; kept small ({"shard","3"} and the like).
using Labels = std::vector<std::pair<std::string, std::string>>;

enum class MetricKind { kCounter, kGauge, kHistogram };

// One aggregated series in a snapshot.
struct SeriesSnapshot {
  std::string name;
  std::string help;
  MetricKind kind = MetricKind::kCounter;
  Labels labels;
  // Counter/gauge value (counters as exact integers in `ivalue`).
  std::int64_t ivalue = 0;
  // Histogram payload (kind == kHistogram).
  std::vector<double> bounds;          // upper bounds; +Inf implied last
  std::vector<std::uint64_t> buckets;  // non-cumulative, bounds.size()+1
  std::uint64_t count = 0;
  double sum = 0.0;

  // Estimated quantile (q in [0,1]) of a histogram series: cumulative
  // walk over the buckets with linear interpolation inside the landing
  // bucket (Prometheus's histogram_quantile rule).  The +Inf bucket
  // clamps to the last finite bound — the data gives no upper edge to
  // interpolate against.  Returns 0 when count == 0 or the series is not
  // a histogram.
  double Quantile(double q) const;
};

struct MetricsSnapshot {
  std::vector<SeriesSnapshot> series;

  // One JSON object, one series per line of the "series" array (stable,
  // grep/awk-friendly — the CI reconciliation test depends on that).
  std::string RenderJson() const;
  // Prometheus text exposition format (# HELP / # TYPE / samples).
  std::string RenderPrometheus() const;

  // Aggregated value of a counter/gauge series by name (sums over label
  // sets); 0 when absent.  Convenience for tests and reconciliation.
  std::int64_t Value(const std::string& name) const;
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  // Each call creates a NEW cell; same (name, labels) cells are summed at
  // Collect time.  `help` from the first registration of a name wins.
  Counter* AddCounter(std::string name, std::string help,
                      Labels labels = {});
  Gauge* AddGauge(std::string name, std::string help, Labels labels = {});
  // Every histogram cell of one series must share `upper_bounds`.
  Histogram* AddHistogram(std::string name, std::string help,
                          std::vector<double> upper_bounds,
                          Labels labels = {});

  MetricsSnapshot Collect() const;

  // A scoped facade over this registry: every registration made through
  // the view lands in the root with `base` prepended to the cell's
  // labels, and Collect() forwards to the root.  The view owns no cells
  // and must not outlive the root; views of views compose (labels
  // accumulate outermost-first).
  std::unique_ptr<Registry> ScopedView(Labels base);

 private:
  Registry(Registry* root, Labels base)
      : root_(root), base_(std::move(base)) {}
  template <typename T>
  struct Cell {
    std::string name;
    std::string help;
    Labels labels;
    T metric;
    template <typename... Args>
    Cell(std::string n, std::string h, Labels l, Args&&... args)
        : name(std::move(n)),
          help(std::move(h)),
          labels(std::move(l)),
          metric(std::forward<Args>(args)...) {}
  };

  // Null for a root registry; a scoped view forwards everything here.
  Registry* root_ = nullptr;
  Labels base_;

  mutable std::mutex mutex_;
  std::deque<Cell<Counter>> counters_;
  std::deque<Cell<Gauge>> gauges_;
  std::deque<Cell<Histogram>> histograms_;
};

// Writes `snapshot` as JSON to `path` and as Prometheus text to
// `path` + ".prom".  Returns false if either file cannot be written.
bool WriteSnapshotFiles(const MetricsSnapshot& snapshot,
                        const std::string& path);

}  // namespace sld::obs
