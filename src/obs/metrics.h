// Metric primitives for the observability layer (see registry.h).
//
// Everything here is built for the pipeline's hot paths: an update is one
// relaxed atomic RMW on a cell the caller obtained once at setup time —
// no locks, no lookups, no heap allocation.  Contention is avoided
// structurally rather than cleverly: each shard/thread registers its own
// cell for a series and the registry sums same-name cells at snapshot
// time, so the cells a worker touches are written by that worker alone
// (the snapshot reader tolerates relaxed reads — counters are monotonic
// and a torn-in-time view is fine for monitoring).
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace sld::obs {

// Monotonic event counter.
class Counter {
 public:
  void Inc(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

// Instantaneous level (queue depth, open groups, release lag).  Cells of
// the same series aggregate by sum — per-shard queue depths add up to the
// total backlog.
class Gauge {
 public:
  void Set(std::int64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
  }
  void Add(std::int64_t d) noexcept {
    value_.fetch_add(d, std::memory_order_relaxed);
  }
  std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

// Fixed-bucket histogram: cumulative-style buckets are derived at
// snapshot time; Observe touches exactly one bucket cell plus sum/count.
// Bucket bounds are fixed at registration (shared by every cell of the
// series) so cross-shard cells merge bucket-wise.
class Histogram {
 public:
  static constexpr std::size_t kMaxBuckets = 32;

  explicit Histogram(const std::vector<double>& upper_bounds) {
    bound_count_ = upper_bounds.size() < kMaxBuckets ? upper_bounds.size()
                                                     : kMaxBuckets;
    for (std::size_t i = 0; i < bound_count_; ++i) {
      bounds_[i] = upper_bounds[i];
    }
  }

  void Observe(double v) noexcept {
    std::size_t i = 0;
    while (i < bound_count_ && v > bounds_[i]) ++i;
    buckets_[i].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  std::size_t bound_count() const noexcept { return bound_count_; }
  double bound(std::size_t i) const noexcept { return bounds_[i]; }
  // Non-cumulative count of observations in bucket i (i == bound_count()
  // is the overflow / +Inf bucket).
  std::uint64_t bucket(std::size_t i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }

 private:
  std::array<double, kMaxBuckets> bounds_{};
  std::size_t bound_count_ = 0;
  std::array<std::atomic<std::uint64_t>, kMaxBuckets + 1> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

// Canonical latency buckets (seconds): 10 µs .. ~100 s, log-spaced.
inline std::vector<double> LatencyBucketsSeconds() {
  return {1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2,
          1e-1, 3e-1, 1.0,  3.0,  10.0, 30.0, 100.0};
}

// Canonical size buckets (items): 1 .. ~100k, log-spaced.
inline std::vector<double> SizeBuckets() {
  return {1,    2,    4,     8,     16,    32,    64,     128,    256,
          512,  1024, 4096, 16384, 65536, 262144};
}

}  // namespace sld::obs
