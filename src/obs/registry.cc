#include "obs/registry.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <map>

namespace sld::obs {
namespace {

// Aggregation key: name + rendered labels (labels are registered in a
// fixed order by each component, so byte equality is the right identity).
std::string KeyOf(const std::string& name, const Labels& labels) {
  std::string key = name;
  for (const auto& [k, v] : labels) {
    key += '\x1f';
    key += k;
    key += '\x1e';
    key += v;
  }
  return key;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

// Prometheus text-format escaping for label values: backslash, double
// quote, and newline must be escaped inside the quoted value.  Label
// values are not always under our control — tenant names arrive from the
// command line — so rendering them verbatim would corrupt the exposition
// (a `"` ends the value early; a newline splits the sample line).
std::string PromEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

// HELP text allows `\\` and `\n` escapes (no quotes involved).
std::string PromEscapeHelp(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string PromLabels(const Labels& labels, const char* extra_key = nullptr,
                       const std::string& extra_val = "") {
  if (labels.empty() && extra_key == nullptr) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k;
    out += "=\"";
    out += PromEscape(v);
    out += '"';
  }
  if (extra_key != nullptr) {
    if (!first) out += ',';
    out += extra_key;
    out += "=\"";
    out += PromEscape(extra_val);
    out += '"';
  }
  out += '}';
  return out;
}

const char* KindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "untyped";
}

}  // namespace

namespace {

// Scope labels render (and aggregate) before the cell's own: a tenant
// qualifies a shard, not the other way around.
Labels Prepend(const Labels& base, Labels labels) {
  if (base.empty()) return labels;
  Labels full = base;
  full.insert(full.end(), std::make_move_iterator(labels.begin()),
              std::make_move_iterator(labels.end()));
  return full;
}

}  // namespace

Counter* Registry::AddCounter(std::string name, std::string help,
                              Labels labels) {
  if (root_ != nullptr) {
    return root_->AddCounter(std::move(name), std::move(help),
                             Prepend(base_, std::move(labels)));
  }
  std::lock_guard lock(mutex_);
  counters_.emplace_back(std::move(name), std::move(help), std::move(labels));
  return &counters_.back().metric;
}

Gauge* Registry::AddGauge(std::string name, std::string help, Labels labels) {
  if (root_ != nullptr) {
    return root_->AddGauge(std::move(name), std::move(help),
                           Prepend(base_, std::move(labels)));
  }
  std::lock_guard lock(mutex_);
  gauges_.emplace_back(std::move(name), std::move(help), std::move(labels));
  return &gauges_.back().metric;
}

Histogram* Registry::AddHistogram(std::string name, std::string help,
                                  std::vector<double> upper_bounds,
                                  Labels labels) {
  if (root_ != nullptr) {
    return root_->AddHistogram(std::move(name), std::move(help),
                               std::move(upper_bounds),
                               Prepend(base_, std::move(labels)));
  }
  std::lock_guard lock(mutex_);
  histograms_.emplace_back(std::move(name), std::move(help),
                           std::move(labels), upper_bounds);
  return &histograms_.back().metric;
}

std::unique_ptr<Registry> Registry::ScopedView(Labels base) {
  Registry* root = root_ != nullptr ? root_ : this;
  // Compose through intermediate views: the new view binds directly to
  // the root with the accumulated label prefix.
  return std::unique_ptr<Registry>(
      new Registry(root, Prepend(base_, std::move(base))));
}

MetricsSnapshot Registry::Collect() const {
  if (root_ != nullptr) return root_->Collect();
  std::lock_guard lock(mutex_);
  // std::map keys give a stable, name-sorted snapshot order.
  std::map<std::string, SeriesSnapshot> agg;
  for (const auto& cell : counters_) {
    SeriesSnapshot& s = agg[KeyOf(cell.name, cell.labels)];
    if (s.name.empty()) {
      s.name = cell.name;
      s.help = cell.help;
      s.kind = MetricKind::kCounter;
      s.labels = cell.labels;
    }
    s.ivalue += static_cast<std::int64_t>(cell.metric.value());
  }
  for (const auto& cell : gauges_) {
    SeriesSnapshot& s = agg[KeyOf(cell.name, cell.labels)];
    if (s.name.empty()) {
      s.name = cell.name;
      s.help = cell.help;
      s.kind = MetricKind::kGauge;
      s.labels = cell.labels;
    }
    s.ivalue += cell.metric.value();
  }
  for (const auto& cell : histograms_) {
    SeriesSnapshot& s = agg[KeyOf(cell.name, cell.labels)];
    if (s.name.empty()) {
      s.name = cell.name;
      s.help = cell.help;
      s.kind = MetricKind::kHistogram;
      s.labels = cell.labels;
      s.bounds.assign(cell.metric.bound_count(), 0.0);
      for (std::size_t i = 0; i < s.bounds.size(); ++i) {
        s.bounds[i] = cell.metric.bound(i);
      }
      s.buckets.assign(s.bounds.size() + 1, 0);
    }
    for (std::size_t i = 0; i < s.buckets.size(); ++i) {
      s.buckets[i] += cell.metric.bucket(i);
    }
    s.count += cell.metric.count();
    s.sum += cell.metric.sum();
  }
  MetricsSnapshot snapshot;
  snapshot.series.reserve(agg.size());
  for (auto& [key, s] : agg) snapshot.series.push_back(std::move(s));
  return snapshot;
}

double SeriesSnapshot::Quantile(double q) const {
  if (kind != MetricKind::kHistogram || count == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double rank = q * static_cast<double>(count);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    const std::uint64_t before = cumulative;
    cumulative += buckets[i];
    if (static_cast<double>(cumulative) < rank) continue;
    if (i >= bounds.size()) {
      // Landed in +Inf: no upper edge to interpolate against.
      return bounds.empty() ? 0.0 : bounds.back();
    }
    const double hi = bounds[i];
    const double lo = i == 0 ? 0.0 : bounds[i - 1];
    if (buckets[i] == 0) return hi;
    const double frac =
        (rank - static_cast<double>(before)) / static_cast<double>(buckets[i]);
    return lo + (hi - lo) * (frac < 0.0 ? 0.0 : frac);
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

std::string MetricsSnapshot::RenderJson() const {
  std::string out = "{\n  \"series\": [\n";
  for (std::size_t i = 0; i < series.size(); ++i) {
    const SeriesSnapshot& s = series[i];
    out += "    {\"name\":\"" + JsonEscape(s.name) + "\",\"type\":\"";
    out += KindName(s.kind);
    out += "\",\"labels\":{";
    for (std::size_t j = 0; j < s.labels.size(); ++j) {
      if (j) out += ',';
      out += '"' + JsonEscape(s.labels[j].first) + "\":\"" +
             JsonEscape(s.labels[j].second) + '"';
    }
    out += '}';
    if (s.kind == MetricKind::kHistogram) {
      out += ",\"count\":" + std::to_string(s.count);
      out += ",\"sum\":" + FormatDouble(s.sum);
      out += ",\"p50\":" + FormatDouble(s.Quantile(0.50));
      out += ",\"p99\":" + FormatDouble(s.Quantile(0.99));
      out += ",\"buckets\":[";
      for (std::size_t j = 0; j < s.buckets.size(); ++j) {
        if (j) out += ',';
        out += "{\"le\":";
        out += j < s.bounds.size() ? FormatDouble(s.bounds[j])
                                   : std::string("\"+Inf\"");
        out += ",\"n\":" + std::to_string(s.buckets[j]) + '}';
      }
      out += ']';
    } else {
      out += ",\"value\":" + std::to_string(s.ivalue);
    }
    out += '}';
    if (i + 1 < series.size()) out += ',';
    out += '\n';
  }
  out += "  ]\n}\n";
  return out;
}

std::string MetricsSnapshot::RenderPrometheus() const {
  std::string out;
  std::string last_name;
  for (const SeriesSnapshot& s : series) {
    if (s.name != last_name) {
      out += "# HELP " + s.name + ' ' + PromEscapeHelp(s.help) + '\n';
      out += "# TYPE " + s.name + ' ' + KindName(s.kind) + '\n';
      last_name = s.name;
    }
    if (s.kind == MetricKind::kHistogram) {
      std::uint64_t cumulative = 0;
      for (std::size_t j = 0; j < s.buckets.size(); ++j) {
        cumulative += s.buckets[j];
        const std::string le =
            j < s.bounds.size() ? FormatDouble(s.bounds[j]) : "+Inf";
        out += s.name + "_bucket" + PromLabels(s.labels, "le", le) + ' ' +
               std::to_string(cumulative) + '\n';
      }
      out += s.name + "_sum" + PromLabels(s.labels) + ' ' +
             FormatDouble(s.sum) + '\n';
      out += s.name + "_count" + PromLabels(s.labels) + ' ' +
             std::to_string(s.count) + '\n';
    } else {
      out += s.name + PromLabels(s.labels) + ' ' + std::to_string(s.ivalue) +
             '\n';
    }
  }
  return out;
}

std::int64_t MetricsSnapshot::Value(const std::string& name) const {
  std::int64_t total = 0;
  for (const SeriesSnapshot& s : series) {
    if (s.name == name) total += s.ivalue;
  }
  return total;
}

bool WriteSnapshotFiles(const MetricsSnapshot& snapshot,
                        const std::string& path) {
  std::ofstream json(path, std::ios::trunc);
  json << snapshot.RenderJson();
  std::ofstream prom(path + ".prom", std::ios::trunc);
  prom << snapshot.RenderPrometheus();
  return static_cast<bool>(json) && static_cast<bool>(prom);
}

}  // namespace sld::obs
