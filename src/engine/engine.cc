#include "engine/engine.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

namespace sld::engine {

std::vector<net::ParsedConfig> LoadConfigDir(const std::string& dir) {
  std::vector<net::ParsedConfig> parsed;
  std::vector<std::filesystem::path> paths;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (entry.path().extension() == ".cfg") paths.push_back(entry.path());
  }
  std::sort(paths.begin(), paths.end());
  for (const auto& path : paths) {
    std::ifstream in(path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    try {
      parsed.push_back(net::ParseConfig(buffer.str()));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "skipping %s: %s\n", path.c_str(), e.what());
    }
  }
  return parsed;
}

Engine::Engine(core::KnowledgeBase* kb, const core::LocationDict* dict,
               EngineOptions options)
    : options_(std::move(options)),
      kb_(kb),
      dict_(dict),
      collector_(options_.hold_ms, options_.year,
                 options_.suppress_duplicates) {
  if (options_.shards == 0) options_.shards = 1;
  if (options_.metrics != nullptr) {
    if (options_.tenant.empty()) {
      reg_ = options_.metrics;
    } else {
      scope_ = options_.metrics->ScopedView({{"tenant", options_.tenant}});
      reg_ = scope_.get();
    }
    collector_.BindMetrics(reg_);
  }
}

Engine::~Engine() {
  // Join pipeline threads even on an abandoned engine.
  if (pipeline_ != nullptr && !finished_) pipeline_->Finish();
}

std::unique_ptr<Engine> Engine::Load(const std::string& configs_dir,
                                     const std::string& kb_path,
                                     EngineOptions options,
                                     std::string* error) {
  std::ifstream kb_in(kb_path);
  std::stringstream kb_text;
  kb_text << kb_in.rdbuf();
  if (kb_text.str().empty()) {
    if (error != nullptr) *error = "cannot read " + kb_path;
    return nullptr;
  }
  auto dict = std::make_unique<core::LocationDict>(
      core::LocationDict::Build(LoadConfigDir(configs_dir)));
  auto kb = std::make_unique<core::KnowledgeBase>(
      core::KnowledgeBase::Deserialize(kb_text.str()));
  auto engine =
      std::make_unique<Engine>(kb.get(), dict.get(), std::move(options));
  engine->owned_kb_ = std::move(kb);
  engine->owned_dict_ = std::move(dict);
  return engine;
}

void Engine::SetEventSink(EventSink sink) { sink_ = std::move(sink); }

void Engine::EnsureStream() {
  if (streaming_ != nullptr || pipeline_ != nullptr) return;
  if (options_.shards > 1) {
    pipeline::PipelineOptions opts;
    opts.digest = options_.digest;
    opts.shards = options_.shards;
    opts.idle_close_ms = options_.idle_close_ms > 0
                             ? options_.idle_close_ms
                             : kb_->temporal_params.smax +
                                   kb_->rule_params.window_ms;
    opts.max_group_age_ms = options_.max_group_age_ms;
    opts.metrics = reg_;
    pipeline_ = std::make_unique<pipeline::ShardedPipeline>(kb_, dict_, opts);
    if (sink_) {
      // The pipeline invokes this on its merge thread; per-tenant event
      // order is the deterministic close order either way.
      pipeline_->SetEventSink([this](core::DigestEvent ev) {
        events_.fetch_add(1, std::memory_order_relaxed);
        sink_(ev);
      });
    }
  } else {
    streaming_ = std::make_unique<core::StreamingDigester>(
        kb_, dict_, options_.digest, options_.idle_close_ms,
        options_.max_group_age_ms);
    if (reg_ != nullptr) streaming_->BindMetrics(reg_);
  }
}

void Engine::Emit(std::vector<core::DigestEvent> events) {
  events_.fetch_add(events.size(), std::memory_order_relaxed);
  for (core::DigestEvent& ev : events) {
    if (sink_) {
      sink_(ev);
    } else {
      collected_.push_back(std::move(ev));
    }
  }
}

void Engine::Feed(const syslog::SyslogRecord& rec) {
  EnsureStream();
  if (pipeline_ != nullptr) {
    pipeline_->Push(rec);
  } else {
    Emit(streaming_->Push(rec));
  }
}

bool Engine::IngestDatagram(std::string_view datagram) {
  return collector_.IngestDatagram(datagram);
}

bool Engine::IngestRecord(const syslog::SyslogRecord& rec) {
  return collector_.IngestRecord(rec);
}

std::size_t Engine::Pump() {
  for (auto& rec : collector_.Drain()) Feed(rec);
  return events_.load(std::memory_order_relaxed);
}

std::vector<core::DigestEvent> Engine::Finish() {
  if (finished_) return {};
  finished_ = true;
  for (auto& rec : collector_.Flush()) Feed(rec);
  std::vector<core::DigestEvent> remaining;
  if (pipeline_ != nullptr) {
    core::DigestResult result = pipeline_->Finish();
    // With a sink every event was already delivered on the merge thread;
    // without one the pipeline collected them (score order).
    if (!sink_) {
      events_.fetch_add(result.events.size(), std::memory_order_relaxed);
      remaining = std::move(result.events);
    }
  } else if (streaming_ != nullptr) {
    Emit(streaming_->Flush());
    remaining = std::move(collected_);
    collected_.clear();
  }
  return remaining;
}

core::DigestResult Engine::Digest(
    std::span<const syslog::SyslogRecord> records) {
  if (options_.shards > 1) {
    pipeline::PipelineOptions opts;
    opts.digest = options_.digest;
    opts.shards = options_.shards;
    opts.metrics = reg_;
    pipeline::ShardedPipeline p(kb_, dict_, opts);
    for (const auto& rec : records) p.Push(rec);
    return p.Finish();
  }
  core::Digester digester(kb_, dict_);
  if (reg_ != nullptr) digester.BindMetrics(reg_);
  return digester.Digest(records, options_.digest);
}

}  // namespace sld::engine
