#include "engine/engine.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "ckpt/codec.h"
#include "ckpt/event_codec.h"
#include "ckpt/snapshot.h"
#include "obs/registry.h"

namespace sld::engine {

std::vector<net::ParsedConfig> LoadConfigDir(const std::string& dir,
                                             std::string* error) {
  std::vector<net::ParsedConfig> parsed;
  std::vector<std::filesystem::path> paths;
  std::error_code ec;
  // The error_code overload reports "cannot open the directory" through
  // `ec` instead of throwing; ignoring it used to make a missing or
  // unreadable --configs dir look like a dir with zero configs.
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (entry.path().extension() == ".cfg") paths.push_back(entry.path());
  }
  if (ec) {
    if (error != nullptr) {
      *error = "cannot read config dir " + dir + ": " + ec.message();
    }
    return parsed;
  }
  std::sort(paths.begin(), paths.end());
  for (const auto& path : paths) {
    std::ifstream in(path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    try {
      parsed.push_back(net::ParseConfig(buffer.str()));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "skipping %s: %s\n", path.c_str(), e.what());
    }
  }
  return parsed;
}

Engine::Engine(core::KnowledgeBase* kb, const core::LocationDict* dict,
               EngineOptions options)
    : options_(std::move(options)),
      kb_(kb),
      dict_(dict),
      collector_(options_.hold_ms, options_.year,
                 options_.suppress_duplicates) {
  if (options_.shards == 0) options_.shards = 1;
  if (options_.metrics != nullptr) {
    if (options_.tenant.empty()) {
      reg_ = options_.metrics;
    } else {
      scope_ = options_.metrics->ScopedView({{"tenant", options_.tenant}});
      reg_ = scope_.get();
    }
    collector_.BindMetrics(reg_);
    e2e_latency_ = reg_->AddHistogram(
        "e2e_latency_seconds",
        "wall-clock latency from record ingest to event emission",
        obs::LatencyBucketsSeconds());
  }
}

Engine::~Engine() {
  // Join pipeline threads even on an abandoned engine.
  if (pipeline_ != nullptr && !finished_) pipeline_->Finish();
}

std::unique_ptr<Engine> Engine::Load(const std::string& configs_dir,
                                     const std::string& kb_path,
                                     EngineOptions options,
                                     std::string* error) {
  std::ifstream kb_in(kb_path);
  std::stringstream kb_text;
  kb_text << kb_in.rdbuf();
  if (kb_text.str().empty()) {
    if (error != nullptr) *error = "cannot read " + kb_path;
    return nullptr;
  }
  std::string cfg_error;
  auto configs = LoadConfigDir(configs_dir, &cfg_error);
  if (!cfg_error.empty()) {
    if (error != nullptr) *error = cfg_error;
    return nullptr;
  }
  auto dict = std::make_unique<core::LocationDict>(
      core::LocationDict::Build(configs));
  auto kb = std::make_unique<core::KnowledgeBase>(
      core::KnowledgeBase::Deserialize(kb_text.str()));
  auto engine =
      std::make_unique<Engine>(kb.get(), dict.get(), std::move(options));
  engine->owned_kb_ = std::move(kb);
  engine->owned_dict_ = std::move(dict);
  return engine;
}

void Engine::SetEventSink(EventSink sink) { sink_ = std::move(sink); }

void Engine::EnsureStream() {
  if (streaming_ != nullptr || pipeline_ != nullptr) return;
  if (options_.shards > 1) {
    pipeline::PipelineOptions opts;
    opts.digest = options_.digest;
    opts.shards = options_.shards;
    opts.idle_close_ms = options_.idle_close_ms > 0
                             ? options_.idle_close_ms
                             : kb_->temporal_params.smax +
                                   kb_->rule_params.window_ms;
    opts.max_group_age_ms = options_.max_group_age_ms;
    opts.metrics = reg_;
    pipeline_ = std::make_unique<pipeline::ShardedPipeline>(kb_, dict_, opts);
    if (sink_ || durable()) {
      // The pipeline invokes this on its merge thread; per-tenant event
      // order is the deterministic close order either way.  A durable
      // engine installs the sink even without a consumer so every event
      // reaches the log as it closes.
      pipeline_->SetEventSink(
          [this](core::DigestEvent ev) { DeliverEvent(std::move(ev)); });
    }
  } else {
    streaming_ = std::make_unique<core::StreamingDigester>(
        kb_, dict_, options_.digest, options_.idle_close_ms,
        options_.max_group_age_ms);
    if (reg_ != nullptr) streaming_->BindMetrics(reg_);
  }
}

void Engine::Emit(std::vector<core::DigestEvent> events) {
  for (core::DigestEvent& ev : events) DeliverEvent(std::move(ev));
}

void Engine::DeliverEvent(core::DigestEvent ev) {
  const auto seq = static_cast<std::uint64_t>(
      events_.fetch_add(1, std::memory_order_relaxed));
  if (seq < replay_cursor_) {
    // Regenerated during post-restore resend and already durably logged
    // before the crash: the log owns it, never emit it twice.
    ++replay_suppressed_;
    if (ckpt_cells_.suppressed != nullptr) ckpt_cells_.suppressed->Inc();
    return;
  }
  ObserveEventLatency(ev);
  if (event_log_ != nullptr) {
    ckpt::Writer payload;
    ckpt::WriteEvent(ev, &payload);
    double fsync_s = 0.0;
    std::string err;
    if (!event_log_->Append(seq, payload.data(), &fsync_s, &err)) {
      std::fprintf(stderr, "tenant %s: event log append failed: %s\n",
                   options_.tenant.c_str(), err.c_str());
    } else if (ckpt_cells_.fsync_seconds != nullptr) {
      ckpt_cells_.fsync_seconds->Observe(fsync_s);
    }
  }
  if (sink_) {
    sink_(ev);
  } else {
    collected_.push_back(std::move(ev));
  }
}

void Engine::Feed(const syslog::SyslogRecord& rec) {
  EnsureStream();
  if (pipeline_ != nullptr) {
    pipeline_->Push(rec);
  } else {
    Emit(streaming_->Push(rec));
  }
}

bool Engine::IngestDatagram(std::string_view datagram) {
  TimeMs accepted_time = 0;
  const bool ok = collector_.IngestDatagram(datagram, &accepted_time);
  if (ok) NoteIngestTag(accepted_time);
  return ok;
}

bool Engine::IngestRecord(const syslog::SyslogRecord& rec) {
  TimeMs accepted_time = 0;
  const bool ok = collector_.IngestRecord(rec, &accepted_time);
  if (ok) NoteIngestTag(accepted_time);
  return ok;
}

// At most one tag per distinct stream second is kept (records within a
// second share the newest earlier tag), and the deque is capped so a
// long stream with a stalled consumer stays bounded.
namespace {
constexpr std::size_t kMaxLatencyTags = 4096;
}  // namespace

void Engine::NoteIngestTag(TimeMs t) {
  if (e2e_latency_ == nullptr) return;
  const auto now = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(tag_mutex_);
  if (!latency_tags_.empty() && t <= latency_tags_.back().t) return;
  if (latency_tags_.size() >= kMaxLatencyTags) return;
  latency_tags_.push_back({t, now});
}

void Engine::ObserveEventLatency(const core::DigestEvent& ev) {
  if (e2e_latency_ == nullptr) return;
  const auto now = std::chrono::steady_clock::now();
  std::chrono::steady_clock::time_point at;
  {
    std::lock_guard<std::mutex> lock(tag_mutex_);
    if (latency_tags_.empty() || latency_tags_.front().t > ev.end) {
      // No tag at or before the event's close time (e.g. the stream was
      // restored from a checkpoint, so its records were never tagged).
      return;
    }
    // Newest tag with t <= ev.end: the last ingest instant that could
    // have contributed to this event.  Older tags are retired — events
    // close in non-decreasing order per tenant, so they cannot be the
    // answer for a later event either.
    while (latency_tags_.size() > 1 && latency_tags_[1].t <= ev.end) {
      latency_tags_.pop_front();
    }
    at = latency_tags_.front().at;
  }
  const double seconds = std::chrono::duration<double>(now - at).count();
  e2e_latency_->Observe(seconds >= 0 ? seconds : 0.0);
  latency_samples_.fetch_add(1, std::memory_order_relaxed);
}

std::size_t Engine::Pump() {
  for (auto& rec : collector_.Drain()) Feed(rec);
  return events_.load(std::memory_order_relaxed);
}

std::vector<core::DigestEvent> Engine::Finish() {
  if (finished_) return {};
  finished_ = true;
  for (auto& rec : collector_.Flush()) Feed(rec);
  std::vector<core::DigestEvent> remaining;
  if (pipeline_ != nullptr) {
    core::DigestResult result = pipeline_->Finish();
    if (sink_ || durable()) {
      // Every event was already delivered through DeliverEvent on the
      // merge thread; a sink-less durable engine accumulated them.
      remaining = std::move(collected_);
      collected_.clear();
    } else {
      // Without a sink the pipeline collected them (score order).
      events_.fetch_add(result.events.size(), std::memory_order_relaxed);
      remaining = std::move(result.events);
    }
  } else if (streaming_ != nullptr) {
    Emit(streaming_->Flush());
    remaining = std::move(collected_);
    collected_.clear();
  }
  return remaining;
}

bool Engine::OpenDurable(const std::string& dir, std::string* error) {
  if (durable()) {
    if (error != nullptr) *error = "checkpoint dir already attached";
    return false;
  }
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    if (error != nullptr) {
      *error = "cannot create checkpoint dir " + dir + ": " + ec.message();
    }
    return false;
  }
  if (reg_ != nullptr && ckpt_cells_.saves == nullptr) {
    ckpt_cells_.saves =
        reg_->AddCounter("ckpt_saves_total", "successful checkpoints");
    ckpt_cells_.save_failures =
        reg_->AddCounter("ckpt_save_failures_total", "failed checkpoints");
    ckpt_cells_.restores = reg_->AddCounter(
        "ckpt_restores_total", "snapshots restored at open");
    ckpt_cells_.fresh_starts = reg_->AddCounter(
        "ckpt_fresh_starts_total", "opens that found no snapshot");
    ckpt_cells_.suppressed = reg_->AddCounter(
        "ckpt_replay_suppressed_total",
        "events regenerated after restore and suppressed by the replay "
        "cursor");
    ckpt_cells_.snapshot_bytes =
        reg_->AddGauge("ckpt_snapshot_bytes", "body size of the last snapshot");
    ckpt_cells_.age_s =
        reg_->AddGauge("ckpt_age_seconds", "seconds since the last checkpoint");
    ckpt_cells_.save_seconds =
        reg_->AddHistogram("ckpt_save_seconds", "checkpoint write latency",
                           obs::LatencyBucketsSeconds());
    ckpt_cells_.fsync_seconds = reg_->AddHistogram(
        "ckpt_eventlog_fsync_seconds", "event-log append fsync latency",
        obs::LatencyBucketsSeconds());
  }
  // Attach the dir before restoring so EnsureStream (called while the
  // snapshot is being applied) wires the durable event path.
  ckpt_dir_ = dir;
  std::string body;
  std::string snap_error;
  const ckpt::SnapshotStatus status =
      ckpt::ReadSnapshotFile(dir + "/snapshot", &body, &snap_error);
  switch (status) {
    case ckpt::SnapshotStatus::kOk:
      if (!RestoreFromBody(body, error)) {
        ckpt_dir_.clear();
        return false;
      }
      if (ckpt_cells_.restores != nullptr) ckpt_cells_.restores->Inc();
      break;
    case ckpt::SnapshotStatus::kAbsent:
      if (ckpt_cells_.fresh_starts != nullptr) ckpt_cells_.fresh_starts->Inc();
      break;
    case ckpt::SnapshotStatus::kCorrupt:
    case ckpt::SnapshotStatus::kVersionMismatch:
      // Refusing beats silently starting over: a fresh start would
      // re-emit events the log already owns.
      if (error != nullptr) *error = "refusing to restore: " + snap_error;
      ckpt_dir_.clear();
      return false;
  }
  ckpt::EventLog::OpenStats stats;
  std::string log_error;
  auto log = ckpt::EventLog::Open(dir + "/events.log", &stats, &log_error);
  if (log == nullptr) {
    if (error != nullptr) *error = log_error;
    ckpt_dir_.clear();
    return false;
  }
  if (log->next_seq() < events_.load(std::memory_order_relaxed)) {
    // The log must always be at least as far along as any snapshot
    // (appends fsync before delivery; the snapshot counts deliveries).
    if (error != nullptr) {
      *error = "event log " + dir + "/events.log is behind the snapshot";
    }
    ckpt_dir_.clear();
    return false;
  }
  replay_cursor_ = log->next_seq();
  event_log_ = std::move(log);
  return true;
}

bool Engine::RestoreFromBody(std::string_view body, std::string* error) {
  ckpt::Reader r(body);
  const std::string tenant = r.Str();
  if (!r.ok() || tenant != options_.tenant) {
    if (error != nullptr) {
      *error = "snapshot is for tenant '" + tenant + "', not '" +
               options_.tenant + "'";
    }
    return false;
  }
  const std::uint64_t emitted = r.U64();
  if (!collector_.LoadState(&r)) {
    if (error != nullptr) *error = "corrupt collector state in snapshot";
    return false;
  }
  if (r.U8() != 0) {
    // Templates first (runtime catch-alls grow the set), so the stage
    // built by EnsureStream matches the snapshot's template ids.
    const std::string templates = r.Str();
    if (!r.ok()) {
      if (error != nullptr) *error = "corrupt template state in snapshot";
      return false;
    }
    kb_->templates = core::TemplateSet::Deserialize(templates);
    EnsureStream();
    const bool ok = pipeline_ != nullptr ? pipeline_->LoadState(&r)
                                         : streaming_->LoadState(&r);
    if (!ok) {
      if (error != nullptr) *error = "corrupt stage state in snapshot";
      return false;
    }
  }
  if (!r.AtEnd()) {
    if (error != nullptr) *error = "trailing bytes in snapshot body";
    return false;
  }
  events_.store(emitted, std::memory_order_relaxed);
  return true;
}

bool Engine::Checkpoint(std::string* error) {
  if (!durable()) {
    if (error != nullptr) *error = "no checkpoint dir attached";
    return false;
  }
  const auto start = std::chrono::steady_clock::now();
  if (pipeline_ != nullptr) pipeline_->Quiesce();
  ckpt::Writer body;
  body.Str(options_.tenant);
  body.U64(events_.load(std::memory_order_relaxed));
  collector_.SaveState(&body);
  const bool has_stage = streaming_ != nullptr || pipeline_ != nullptr;
  body.U8(has_stage ? 1 : 0);
  if (has_stage) {
    body.Str(kb_->templates.Serialize());
    if (pipeline_ != nullptr) {
      pipeline_->SaveState(&body);
    } else {
      streaming_->SaveState(&body);
    }
  }
  if (!ckpt::WriteSnapshotFile(ckpt_dir_ + "/snapshot", body.data(), error)) {
    if (ckpt_cells_.save_failures != nullptr) ckpt_cells_.save_failures->Inc();
    return false;
  }
  last_ckpt_ = std::chrono::steady_clock::now();
  if (ckpt_cells_.saves != nullptr) {
    ckpt_cells_.saves->Inc();
    ckpt_cells_.snapshot_bytes->Set(
        static_cast<std::int64_t>(body.data().size()));
    ckpt_cells_.age_s->Set(0);
    ckpt_cells_.save_seconds->Observe(
        std::chrono::duration<double>(last_ckpt_ - start).count());
  }
  return true;
}

double Engine::SecondsSinceCheckpoint() noexcept {
  if (last_ckpt_ == std::chrono::steady_clock::time_point{}) return 0.0;
  const double s = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - last_ckpt_)
                       .count();
  if (ckpt_cells_.age_s != nullptr) {
    ckpt_cells_.age_s->Set(static_cast<std::int64_t>(s));
  }
  return s;
}

std::size_t Engine::open_group_count() const noexcept {
  if (pipeline_ != nullptr) return pipeline_->open_group_count();
  if (streaming_ != nullptr) return streaming_->open_group_count();
  return 0;
}

core::DigestResult Engine::Digest(
    std::span<const syslog::SyslogRecord> records) {
  if (options_.shards > 1) {
    pipeline::PipelineOptions opts;
    opts.digest = options_.digest;
    opts.shards = options_.shards;
    opts.metrics = reg_;
    pipeline::ShardedPipeline p(kb_, dict_, opts);
    for (const auto& rec : records) p.Push(rec);
    return p.Finish();
  }
  core::Digester digester(kb_, dict_);
  if (reg_ != nullptr) digester.BindMetrics(reg_);
  return digester.Digest(records, options_.digest);
}

}  // namespace sld::engine
