#include "engine/host.h"

#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

namespace sld::engine {

bool ParseTenantSpec(const std::string& text, TenantSpec* spec,
                     std::string* error) {
  // NAME:CONFIGS:KB[:PORT] — paths containing ':' are not supported by
  // this syntax.
  std::vector<std::string> parts;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == ':') {
      parts.push_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  if (parts.size() < 3 || parts.size() > 4) {
    if (error != nullptr) {
      *error = "tenant spec '" + text + "' is not NAME:CONFIGS:KB[:PORT]";
    }
    return false;
  }
  if (parts[0].empty() || parts[1].empty() || parts[2].empty()) {
    if (error != nullptr) {
      *error = "tenant spec '" + text + "' has an empty field";
    }
    return false;
  }
  spec->name = parts[0];
  spec->configs_dir = parts[1];
  spec->kb_path = parts[2];
  spec->port = 0;
  if (parts.size() == 4 && !parts[3].empty()) {
    for (const char c : parts[3]) {
      if (!std::isdigit(static_cast<unsigned char>(c))) {
        if (error != nullptr) {
          *error = "tenant spec '" + text + "': port '" + parts[3] +
                   "' is not a number";
        }
        return false;
      }
    }
    const long port = std::strtol(parts[3].c_str(), nullptr, 10);
    if (port < 0 || port > 65535) {
      if (error != nullptr) {
        *error = "tenant spec '" + text + "': port out of range";
      }
      return false;
    }
    spec->port = static_cast<std::uint16_t>(port);
  }
  return true;
}

EngineHost::EngineHost(HostOptions options)
    : options_(options), pool_(options.pool_threads) {}

EngineHost::~EngineHost() = default;

bool EngineHost::LoadTenants(std::vector<TenantSpec> specs,
                             std::string* error) {
  // Name discipline up front: every tenant label must be unambiguous.
  // A single unnamed tenant is allowed (the legacy one-network modes).
  for (std::size_t i = 0; i < specs.size(); ++i) {
    if (specs[i].name.empty() && specs.size() > 1) {
      if (error != nullptr) *error = "multi-tenant specs need a name";
      return false;
    }
    for (std::size_t j = i + 1; j < specs.size(); ++j) {
      if (specs[i].name == specs[j].name) {
        if (error != nullptr) {
          *error = "duplicate tenant name '" + specs[i].name + "'";
        }
        return false;
      }
    }
  }
  // Each tenant's config parse + KB deserialize is independent CPU-bound
  // work: fan it out on the shared pool.
  std::vector<std::unique_ptr<Engine>> loaded(specs.size());
  std::vector<std::string> errors(specs.size());
  ParallelFor(&pool_, specs.size(), [&](std::size_t i, std::size_t) {
    EngineOptions opts = specs[i].options;
    opts.tenant = specs[i].name;
    opts.metrics = options_.metrics;
    loaded[i] = Engine::Load(specs[i].configs_dir, specs[i].kb_path,
                             std::move(opts), &errors[i]);
  });
  for (std::size_t i = 0; i < specs.size(); ++i) {
    if (loaded[i] == nullptr) {
      if (error != nullptr) *error = errors[i];
      return false;
    }
  }
  for (std::size_t i = 0; i < specs.size(); ++i) {
    engines_.push_back(std::move(loaded[i]));
    ports_.push_back(specs[i].port);
  }
  return true;
}

Engine* EngineHost::AddEngine(std::unique_ptr<Engine> engine,
                              std::uint16_t port) {
  engines_.push_back(std::move(engine));
  ports_.push_back(port);
  return engines_.back().get();
}

Engine* EngineHost::Find(const std::string& tenant) noexcept {
  for (auto& engine : engines_) {
    if (engine->tenant() == tenant) return engine.get();
  }
  return nullptr;
}

void EngineHost::PumpAll() {
  // Each index is one engine; an engine's pump is strictly serial, and
  // the ParallelFor barrier is the only cross-thread synchronization the
  // engines need (ingest happens between pumps, never during).
  ParallelFor(&pool_, engines_.size(),
              [&](std::size_t i, std::size_t) { engines_[i]->Pump(); },
              /*chunk=*/1);
}

void EngineHost::FinishAll(
    std::vector<std::vector<core::DigestEvent>>* leftovers) {
  std::vector<std::vector<core::DigestEvent>> remaining(engines_.size());
  ParallelFor(&pool_, engines_.size(), [&](std::size_t i, std::size_t) {
    remaining[i] = engines_[i]->Finish();
  },
              /*chunk=*/1);
  if (leftovers != nullptr) *leftovers = std::move(remaining);
}

bool EngineHost::BindAll(const wirefront::WireOptions& wire,
                         std::string* error) {
  front_.reset();
  std::vector<wirefront::TenantPort> tenants(engines_.size());
  for (std::size_t i = 0; i < engines_.size(); ++i) {
    tenants[i].port = ports_[i];
    // Per-listener cells land in the tenant's scoped view, so every
    // wire_* series carries the {tenant} label alongside {listener}.
    tenants[i].metrics = engines_[i]->metrics();
  }
  front_ = wirefront::WireFront::Open(wire, tenants, error);
  if (front_ == nullptr) return false;
  for (std::size_t i = 0; i < engines_.size(); ++i) {
    ports_[i] = front_->port_of(i);
  }
  return true;
}

std::uint16_t EngineHost::port_of(std::size_t i) const noexcept {
  return i < ports_.size() ? ports_[i] : 0;
}

void EngineHost::CheckpointAll() {
  ParallelFor(&pool_, engines_.size(), [&](std::size_t i, std::size_t) {
    if (!engines_[i]->durable()) return;
    std::string error;
    if (!engines_[i]->Checkpoint(&error)) {
      std::fprintf(stderr, "checkpoint failed for tenant '%s': %s\n",
                   engines_[i]->tenant().c_str(), error.c_str());
    }
  },
              /*chunk=*/1);
}

std::size_t EngineHost::Serve(const ServeOptions& options) {
  if (front_ == nullptr) return 0;
  const bool limited = options.max_datagrams > 0;
  const auto limit = static_cast<std::size_t>(options.max_datagrams);
  // The sink runs inside PollOnce with the datagram still in front-owned
  // storage: IngestDatagram copies what it keeps, so nothing here
  // allocates per datagram.
  const wirefront::WireFront::Sink sink =
      [this](std::size_t tenant, std::string_view datagram) {
        engines_[tenant]->IngestDatagram(datagram);
      };
  std::size_t seen = 0;
  long quiet_polls = 0;
  auto last_ckpt = std::chrono::steady_clock::now();
  while (!limited || seen < limit) {
    // One wakeup ingests the whole ready backlog (capped so a limited
    // serve stops exactly at max_datagrams), then the engines pump.
    const std::ptrdiff_t got =
        front_->PollOnce(1000, limited ? limit - seen : 0, sink);
    if (got == wirefront::WireFront::kInterrupted) {
      // A signal interrupting the wait is not a quiet second: counting
      // it toward idle_exit_s made a pestered server exit (and
      // FinishAll mid-stream) long before the idle horizon passed.
      continue;
    }
    if (got == wirefront::WireFront::kError) {
      std::fprintf(stderr, "wire front poll failed: %s\n",
                   std::strerror(errno));
      break;
    }
    if (options.on_tick) options.on_tick();
    if (options.checkpoint_interval_s > 0) {
      const auto now = std::chrono::steady_clock::now();
      if (now - last_ckpt >=
          std::chrono::seconds(options.checkpoint_interval_s)) {
        // Between poll rounds nothing is mid-pump, so every engine is
        // quiescent enough to snapshot consistently.
        CheckpointAll();
        last_ckpt = now;
      }
      for (auto& engine : engines_) {
        if (engine->durable()) engine->SecondsSinceCheckpoint();
      }
    }
    if (got > 0) {
      seen += static_cast<std::size_t>(got);
      quiet_polls = 0;
      PumpAll();
      continue;
    }
    ++quiet_polls;
    if (options.idle_exit_s > 0 && seen > 0 &&
        quiet_polls >= options.idle_exit_s) {
      break;
    }
  }
  FinishAll();
  // Final checkpoint so a clean shutdown restarts with nothing open.
  if (options.checkpoint_interval_s > 0) CheckpointAll();
  return seen;
}

}  // namespace sld::engine
