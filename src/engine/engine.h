// Engine: one tenant's complete serving stack behind a single object.
//
// The paper's SyslogDigest is described as a per-network deployment, but a
// production process serves many independent networks at once.  An Engine
// owns everything that is *per-network* state — the KnowledgeBase, the
// LocationDict, the Collector front (reorder/dedup/loss accounting), the
// digest stage (StreamingDigester at shards<=1, ShardedPipeline above),
// and the event sink — while everything *shared* (the thread pool, the
// one obs Registry, the UDP sockets) lives in EngineHost.
//
// The CLI's digest/stream/serve commands are thin drivers over this
// class; the per-tenant event stream is bit-identical to a dedicated
// single-tenant process at any shard count because the engine reuses the
// exact collector -> stage wiring those processes ran (the equivalence
// suite in tests/engine/engine_test.cc holds them against each other).
//
// Metrics: when `EngineOptions.metrics` is set and the tenant name is
// non-empty, the engine registers every cell through a
// Registry::ScopedView carrying {"tenant", name}, so one shared registry
// snapshots all tenants with every series labeled.  An empty tenant name
// registers unlabeled (the legacy single-network CLI modes).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "ckpt/eventlog.h"
#include "core/digest.h"
#include "core/stream.h"
#include "net/config_parser.h"
#include "pipeline/pipeline.h"
#include "syslog/collector.h"

namespace sld::engine {

struct EngineOptions {
  // Label value for every obs series this engine registers; empty means
  // no tenant label (single-tenant legacy modes keep their series names).
  std::string tenant;
  core::DigestOptions digest;
  // 1 = in-place StreamingDigester; N>1 = ShardedPipeline with N shard
  // workers.  The event partition is identical either way.
  std::size_t shards = 1;
  // Collector front knobs (see syslog::Collector).
  TimeMs hold_ms = 5 * kMsPerSecond;
  int year = 2009;
  bool suppress_duplicates = false;
  // Group lifecycle (see core::StreamingDigester).
  TimeMs idle_close_ms = 0;
  TimeMs max_group_age_ms = 24 * kMsPerHour;
  // Root registry (may be null).  The engine scopes it by tenant; must
  // outlive the engine.
  obs::Registry* metrics = nullptr;
};

// Loads every *.cfg under `dir` in sorted path order, skipping files
// that fail to parse with a stderr note (the CLI's historical shape).
// A missing or unreadable directory fills `error` and returns empty —
// callers must distinguish that from a directory with no configs.
std::vector<net::ParsedConfig> LoadConfigDir(const std::string& dir,
                                             std::string* error = nullptr);

class Engine {
 public:
  using EventSink = std::function<void(const core::DigestEvent&)>;

  // Borrowing form: `kb` and `dict` must outlive the engine; `kb` may
  // gain catch-all templates.
  Engine(core::KnowledgeBase* kb, const core::LocationDict* dict,
         EngineOptions options);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // Owning form: builds the LocationDict from `configs_dir` and
  // deserializes the KnowledgeBase from `kb_path`.  Returns null and
  // fills `error` when the KB cannot be read.
  static std::unique_ptr<Engine> Load(const std::string& configs_dir,
                                      const std::string& kb_path,
                                      EngineOptions options,
                                      std::string* error);

  // Install before the first record; events are delivered as they close
  // (on the merge thread when shards > 1).  Without a sink, closed
  // events accumulate and Finish() returns them.
  void SetEventSink(EventSink sink);

  // Live path: records route through the collector (reorder window,
  // duplicate suppression, loss accounting) exactly like a dedicated
  // single-tenant process.  Returns false when the record was rejected
  // (malformed or late).
  bool IngestDatagram(std::string_view datagram);
  bool IngestRecord(const syslog::SyslogRecord& rec);

  // Observations recorded into the e2e_latency_seconds histogram so far
  // (0 when metrics are off — the histogram only exists with a registry).
  std::uint64_t e2e_latency_samples() const noexcept {
    return latency_samples_.load(std::memory_order_relaxed);
  }

  // Releases every collector record whose hold has expired into the
  // digest stage; closed events reach the sink.  Returns the events
  // emitted so far (cumulative).
  std::size_t Pump();

  // End of stream: flushes the collector, closes every open group, and
  // joins pipeline threads.  Events that closed here go to the sink, or
  // are returned (in close order at shards<=1, score order above) when
  // no sink is installed.  Idempotent.
  std::vector<core::DigestEvent> Finish();

  // Durability (DESIGN.md §14).  Attaches `dir` as the checkpoint
  // directory: restores from `dir/snapshot` when one exists (a missing
  // snapshot is a fresh start; a torn/corrupt/newer-version one refuses
  // with `error`), then opens the durable event log `dir/events.log` and
  // positions the replay cursor so events that were logged before the
  // crash are suppressed instead of re-emitted when the sender resends.
  // Call before the first record.  Crash-consistent resend equivalence
  // additionally needs suppress_duplicates (`--dedup`) on.
  bool OpenDurable(const std::string& dir, std::string* error);

  // Writes a crash-consistent snapshot of the collector + digest stage
  // (quiescing the pipeline when shards > 1) to `dir/snapshot` via
  // write-to-temp + fsync + atomic rename.  Requires OpenDurable.
  bool Checkpoint(std::string* error);

  bool durable() const noexcept { return !ckpt_dir_.empty(); }
  std::uint64_t replay_cursor() const noexcept { return replay_cursor_; }
  // Events suppressed by the replay cursor since restore.
  std::uint64_t replay_suppressed() const noexcept {
    return replay_suppressed_;
  }
  // Seconds since the last successful Checkpoint (0 before the first);
  // also refreshes the checkpoint-age gauge, so the host's periodic tick
  // keeps the series current between checkpoints.
  double SecondsSinceCheckpoint() noexcept;

  // Open groups in the live digest stage (exact when quiescent — the
  // serve loop between pumps, or after Finish).
  std::size_t open_group_count() const noexcept;

  // Batch path: digests a closed, time-sorted stream without a collector
  // front (the `sldigest digest` shape).  Independent of the live path.
  core::DigestResult Digest(std::span<const syslog::SyslogRecord> records);

  const std::string& tenant() const noexcept { return options_.tenant; }
  std::size_t shard_count() const noexcept { return options_.shards; }
  // Cumulative events delivered through the live path (exact once
  // Finish() returns; a lower bound mid-stream when shards > 1, where
  // the merge thread emits concurrently).
  std::size_t event_count() const noexcept {
    return events_.load(std::memory_order_relaxed);
  }
  syslog::Collector& collector() noexcept { return collector_; }
  const syslog::Collector& collector() const noexcept { return collector_; }
  core::KnowledgeBase& kb() noexcept { return *kb_; }
  const core::LocationDict& dict() const noexcept { return *dict_; }
  // The tenant-scoped registry view (the root itself when the tenant
  // name is empty; null when metrics are off).
  obs::Registry* metrics() noexcept { return reg_; }

 private:
  void EnsureStream();
  void Feed(const syslog::SyslogRecord& rec);
  void Emit(std::vector<core::DigestEvent> events);
  // Every closed event funnels through here (merge thread when shards>1):
  // assigns the dense event sequence number, suppresses already-logged
  // events after a restore, appends + fsyncs to the durable log, then
  // hands the event to the sink (or the collected_ buffer).
  void DeliverEvent(core::DigestEvent ev);
  bool RestoreFromBody(std::string_view body, std::string* error);
  // Files an ingest-to-emit latency tag for stream time `t` (wall clock
  // "now"), and looks one up for a closing event.  See the latency-tag
  // comment at the members below.
  void NoteIngestTag(TimeMs t);
  void ObserveEventLatency(const core::DigestEvent& ev);

  EngineOptions options_;

  // Owning-form storage (null in the borrowing form).
  std::unique_ptr<core::KnowledgeBase> owned_kb_;
  std::unique_ptr<core::LocationDict> owned_dict_;
  core::KnowledgeBase* kb_;
  const core::LocationDict* dict_;

  // Tenant-scoped registry view; reg_ points at it, at the root, or is
  // null.
  std::unique_ptr<obs::Registry> scope_;
  obs::Registry* reg_ = nullptr;

  syslog::Collector collector_;

  // Live digest stage, built lazily on the first released record so a
  // batch-only engine never spawns pipeline threads.
  std::unique_ptr<core::StreamingDigester> streaming_;
  std::unique_ptr<pipeline::ShardedPipeline> pipeline_;

  EventSink sink_;
  std::vector<core::DigestEvent> collected_;  // sink-less mode
  std::atomic<std::size_t> events_{0};
  bool finished_ = false;

  // Ingest-to-emit latency tags (live only when metrics are on).  Each
  // accepted record whose stream timestamp advances past the newest tag
  // files {stream time, wall clock at ingest}; the deque is therefore
  // strictly increasing in `t`.  When an event closes, the newest tag
  // with t <= ev.end tells us when the last record that could have
  // contributed to the event entered the process, and "now - then" is
  // the end-to-end pipeline latency (collector hold + digest + delivery).
  // Bounded so a stalled consumer cannot grow it: once full, new stream
  // seconds overwrite nothing — they are simply not tagged, which only
  // loses resolution, never correctness.  Guarded by tag_mutex_ because
  // ingest runs on listener threads while DeliverEvent runs on the merge
  // thread at shards > 1.
  struct LatencyTag {
    TimeMs t;
    std::chrono::steady_clock::time_point at;
  };
  std::mutex tag_mutex_;
  std::deque<LatencyTag> latency_tags_;
  obs::Histogram* e2e_latency_ = nullptr;
  std::atomic<std::uint64_t> latency_samples_{0};

  // Durability state (empty/null when OpenDurable was never called).
  std::string ckpt_dir_;
  std::unique_ptr<ckpt::EventLog> event_log_;
  std::uint64_t replay_cursor_ = 0;
  std::uint64_t replay_suppressed_ = 0;
  std::chrono::steady_clock::time_point last_ckpt_{};
  struct CkptCells {
    obs::Counter* saves = nullptr;
    obs::Counter* save_failures = nullptr;
    obs::Counter* restores = nullptr;        // successful restores
    obs::Counter* fresh_starts = nullptr;    // absent snapshot on open
    obs::Counter* suppressed = nullptr;      // replay-cursor suppressions
    obs::Gauge* snapshot_bytes = nullptr;
    obs::Gauge* age_s = nullptr;             // seconds since last save
    obs::Histogram* save_seconds = nullptr;
    obs::Histogram* fsync_seconds = nullptr;  // event-log appends
  } ckpt_cells_;
};

}  // namespace sld::engine
