// EngineHost: multiplexes N per-tenant Engines over shared resources.
//
// Shared between tenants:
//   - one sld::ThreadPool, used to load tenants concurrently and to pump
//     every tenant's collector in parallel (each engine's own work stays
//     strictly serial — the pool's fork/join barrier is the only
//     synchronization the engines need, so per-tenant output is
//     bit-identical to a dedicated process);
//   - one obs::Registry, every engine registering through a
//     {"tenant", NAME} scoped view so all series stay distinguishable;
//   - the wire front: one UDP port per tenant fanned out over
//     `--listeners` SO_REUSEPORT sockets, drained in batches (recvmmsg
//     or io_uring multishot, see src/wirefront/) and routed to the
//     owning engine.  All of a tenant's listeners feed one collector,
//     whose single release watermark merges them.
//
// Everything else — knowledge base, collector, pipeline, group state,
// event sink — is private to each Engine.  A tenant flooding its own
// port with garbage only moves its own malformed counters; the
// isolation tests in tests/engine/engine_test.cc pin that.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "engine/engine.h"
#include "wirefront/wirefront.h"

namespace sld::engine {

// One tenant's bootstrap description (the `--tenant NAME:CONFIGS:KB:PORT`
// CLI syntax).
struct TenantSpec {
  std::string name;
  std::string configs_dir;
  std::string kb_path;
  std::uint16_t port = 0;  // serve ingest port; 0 picks ephemeral
  EngineOptions options;   // tenant/metrics are overwritten by the host
};

// Parses "NAME:CONFIGS:KB[:PORT]".  Returns false and fills `error` on a
// malformed spec (missing fields, empty name, non-numeric port).
bool ParseTenantSpec(const std::string& text, TenantSpec* spec,
                     std::string* error);

struct HostOptions {
  // Shared pool width (0 = one thread per core).  The pool is also what
  // bounds multi-tenant CPU use: N tenants never run more than
  // `pool_threads` collector pumps at once.
  int pool_threads = 0;
  // Root registry shared by every tenant (may be null).
  obs::Registry* metrics = nullptr;
};

class EngineHost {
 public:
  explicit EngineHost(HostOptions options = {});
  ~EngineHost();

  EngineHost(const EngineHost&) = delete;
  EngineHost& operator=(const EngineHost&) = delete;

  // Loads every tenant concurrently on the shared pool (config parse +
  // KB deserialize per tenant).  Engines appear in spec order.  Tenant
  // names must be unique and non-empty; on any failure fills `error`
  // with the first (in spec order) and returns false.
  bool LoadTenants(std::vector<TenantSpec> specs, std::string* error);

  // Adopts an already-built engine (tests and embedders).  The engine's
  // declared tenant name is used for Find().
  Engine* AddEngine(std::unique_ptr<Engine> engine, std::uint16_t port = 0);

  std::size_t tenant_count() const noexcept { return engines_.size(); }
  Engine* engine(std::size_t i) noexcept { return engines_[i].get(); }
  Engine* Find(const std::string& tenant) noexcept;

  ThreadPool& pool() noexcept { return pool_; }
  obs::Registry* metrics() noexcept { return options_.metrics; }

  // Pumps every engine once, in parallel on the shared pool.  Returns
  // after the barrier, so callers may touch collectors again.
  void PumpAll();

  // Finishes every engine in parallel (collector flush + group close +
  // pipeline join).  Engines with a sink have delivered everything by
  // return; sink-less remainders land in `leftovers[i]`.
  void FinishAll(std::vector<std::vector<core::DigestEvent>>* leftovers =
                     nullptr);

  // Opens the wire front: `wire.listeners` SO_REUSEPORT sockets per
  // tenant at each spec's port (0 = ephemeral; read back with port_of),
  // with per-listener metrics scoped to each tenant's registry view.
  // The backend honors `wire.backend` / SLD_WIRE.  Returns false and
  // fills `error` on the first port that cannot be bound.
  bool BindAll(const wirefront::WireOptions& wire, std::string* error);
  bool BindAll(std::string* error) {
    return BindAll(wirefront::WireOptions{}, error);
  }
  std::uint16_t port_of(std::size_t i) const noexcept;

  // The open wire front (null before BindAll); drop/throughput counters
  // for tests and status lines.
  wirefront::WireFront* front() noexcept { return front_.get(); }

  struct ServeOptions {
    // Stop after this many datagrams across all tenants (0 = no limit).
    long max_datagrams = 0;
    // After traffic has been seen, a quiet stretch of this many seconds
    // ends the loop (0 = run forever).
    long idle_exit_s = 0;
    // Checkpoint every durable engine this often (0 = never).  A final
    // checkpoint is also taken when the loop ends.
    long checkpoint_interval_s = 0;
    // Called once per poll wakeup (periodic metrics snapshots).
    std::function<void()> on_tick;
  };

  // Checkpoints every durable engine in parallel on the shared pool
  // (engines without a checkpoint dir are skipped).  Failures are
  // reported on stderr; serving continues.
  void CheckpointAll();

  // The serve loop: one wire-front PollOnce per wakeup ingests the whole
  // ready backlog (batched, zero-alloc), then all engines pump.
  // Requires BindAll() first.  Finishes every engine on exit.  Returns
  // the total datagram count.
  std::size_t Serve(const ServeOptions& options);

 private:
  HostOptions options_;
  ThreadPool pool_;
  std::vector<std::unique_ptr<Engine>> engines_;
  std::vector<std::uint16_t> ports_;  // requested; resolved by BindAll
  std::unique_ptr<wirefront::WireFront> front_;
};

}  // namespace sld::engine
