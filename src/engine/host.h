// EngineHost: multiplexes N per-tenant Engines over shared resources.
//
// Shared between tenants:
//   - one sld::ThreadPool, used to load tenants concurrently and to pump
//     every tenant's collector in parallel (each engine's own work stays
//     strictly serial — the pool's fork/join barrier is the only
//     synchronization the engines need, so per-tenant output is
//     bit-identical to a dedicated process);
//   - one obs::Registry, every engine registering through a
//     {"tenant", NAME} scoped view so all series stay distinguishable;
//   - the UDP front: one socket per tenant, datagrams routed to the
//     owning engine by ingest port, all sockets polled together.
//
// Everything else — knowledge base, collector, pipeline, group state,
// event sink — is private to each Engine.  A tenant flooding its own
// port with garbage only moves its own malformed counters; the
// isolation tests in tests/engine/engine_test.cc pin that.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "engine/engine.h"
#include "syslog/udp.h"

namespace sld::engine {

// One tenant's bootstrap description (the `--tenant NAME:CONFIGS:KB:PORT`
// CLI syntax).
struct TenantSpec {
  std::string name;
  std::string configs_dir;
  std::string kb_path;
  std::uint16_t port = 0;  // serve ingest port; 0 picks ephemeral
  EngineOptions options;   // tenant/metrics are overwritten by the host
};

// Parses "NAME:CONFIGS:KB[:PORT]".  Returns false and fills `error` on a
// malformed spec (missing fields, empty name, non-numeric port).
bool ParseTenantSpec(const std::string& text, TenantSpec* spec,
                     std::string* error);

struct HostOptions {
  // Shared pool width (0 = one thread per core).  The pool is also what
  // bounds multi-tenant CPU use: N tenants never run more than
  // `pool_threads` collector pumps at once.
  int pool_threads = 0;
  // Root registry shared by every tenant (may be null).
  obs::Registry* metrics = nullptr;
};

class EngineHost {
 public:
  explicit EngineHost(HostOptions options = {});
  ~EngineHost();

  EngineHost(const EngineHost&) = delete;
  EngineHost& operator=(const EngineHost&) = delete;

  // Loads every tenant concurrently on the shared pool (config parse +
  // KB deserialize per tenant).  Engines appear in spec order.  Tenant
  // names must be unique and non-empty; on any failure fills `error`
  // with the first (in spec order) and returns false.
  bool LoadTenants(std::vector<TenantSpec> specs, std::string* error);

  // Adopts an already-built engine (tests and embedders).  The engine's
  // declared tenant name is used for Find().
  Engine* AddEngine(std::unique_ptr<Engine> engine, std::uint16_t port = 0);

  std::size_t tenant_count() const noexcept { return engines_.size(); }
  Engine* engine(std::size_t i) noexcept { return engines_[i].get(); }
  Engine* Find(const std::string& tenant) noexcept;

  ThreadPool& pool() noexcept { return pool_; }
  obs::Registry* metrics() noexcept { return options_.metrics; }

  // Pumps every engine once, in parallel on the shared pool.  Returns
  // after the barrier, so callers may touch collectors again.
  void PumpAll();

  // Finishes every engine in parallel (collector flush + group close +
  // pipeline join).  Engines with a sink have delivered everything by
  // return; sink-less remainders land in `leftovers[i]`.
  void FinishAll(std::vector<std::vector<core::DigestEvent>>* leftovers =
                     nullptr);

  // Binds one UDP socket per tenant at each spec's port (0 = ephemeral;
  // read back with port_of).  Returns false and fills `error` on the
  // first port that cannot be bound.
  bool BindAll(std::string* error);
  std::uint16_t port_of(std::size_t i) const noexcept;

  struct ServeOptions {
    // Stop after this many datagrams across all tenants (0 = no limit).
    long max_datagrams = 0;
    // After traffic has been seen, a quiet stretch of this many seconds
    // ends the loop (0 = run forever).
    long idle_exit_s = 0;
    // Checkpoint every durable engine this often (0 = never).  A final
    // checkpoint is also taken when the loop ends.
    long checkpoint_interval_s = 0;
    // Called once per poll wakeup (periodic metrics snapshots).
    std::function<void()> on_tick;
  };

  // Checkpoints every durable engine in parallel on the shared pool
  // (engines without a checkpoint dir are skipped).  Failures are
  // reported on stderr; serving continues.
  void CheckpointAll();

  // The serve loop: polls every tenant socket, routes datagrams to the
  // owning engine's collector by port, and pumps all engines between
  // ingest rounds.  Requires BindAll() first.  Finishes every engine on
  // exit.  Returns the total datagram count.
  std::size_t Serve(const ServeOptions& options);

 private:
  HostOptions options_;
  ThreadPool pool_;
  std::vector<std::unique_ptr<Engine>> engines_;
  std::vector<std::uint16_t> ports_;  // requested; 0 until BindAll
  std::vector<syslog::UdpReceiver> receivers_;
};

}  // namespace sld::engine
