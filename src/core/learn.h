// Offline domain-knowledge learning (§3.1, §4.1): the component that turns
// months of historical syslog plus router configs into the knowledge base
// the online digester runs on.
//
// Pipeline: template learning -> Syslog+ augmentation -> temporal priors
// (and optional α/β grid search) -> periodic association-rule mining with
// the adaptive add/conservative-delete update -> signature frequency
// table.
#pragma once

#include <span>
#include <vector>

#include "core/digest.h"
#include "core/knowledge.h"
#include "core/templates/learner.h"

namespace sld::core {

struct OfflineLearnerParams {
  TemplateLearnerParams templates;
  RuleMinerParams rules;
  TemporalParams temporal;  // defaults; α/β replaced when sweeping
  // When true, grid-search α and β for the best temporal compression on
  // the history (Figs. 10-11).  Off by default: the sweep costs one full
  // pass per grid point.
  bool sweep_temporal = false;
  std::vector<double> alpha_grid = {0.025, 0.05, 0.075, 0.1, 0.2, 0.4};
  std::vector<double> beta_grid = {2, 3, 4, 5, 6, 7};
  // Rule-base update period (the paper updates weekly).
  int update_period_days = 7;
};

// Per-update-period rule base sizes, for the Figs. 8-9 evolution curves.
struct RuleEvolution {
  std::vector<std::size_t> total;
  std::vector<std::size_t> added;
  std::vector<std::size_t> deleted;
};

class OfflineLearner {
 public:
  explicit OfflineLearner(OfflineLearnerParams params = {})
      : params_(params) {}

  // Learns a knowledge base from a time-sorted historical stream.
  // `evolution`, when non-null, receives the weekly rule-base trajectory.
  KnowledgeBase Learn(std::span<const syslog::SyslogRecord> history,
                      const LocationDict& dict,
                      RuleEvolution* evolution = nullptr) const;

  const OfflineLearnerParams& params() const noexcept { return params_; }

 private:
  OfflineLearnerParams params_;
};

}  // namespace sld::core
