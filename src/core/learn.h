// Offline domain-knowledge learning (§3.1, §4.1): the component that turns
// months of historical syslog plus router configs into the knowledge base
// the online digester runs on.
//
// Pipeline: template learning -> Syslog+ augmentation -> temporal priors
// (and optional α/β grid search) -> periodic association-rule mining with
// the adaptive add/conservative-delete update -> signature frequency
// table.
//
// With `params.threads > 1` the expensive phases fan out over a
// ThreadPool: template learning shards by (code, token-count), Syslog+
// augmentation shards by index chunk, per-period co-occurrence mining
// runs concurrently (rule-base updates still apply strictly in period
// order — the adaptive add/conservative-delete policy is order
// dependent), and the α/β grid sweeps points in parallel.  Every fan-out
// gathers results in a fixed order, so the learned KnowledgeBase is
// bit-identical to the serial learner at any thread count (the
// learn_parallel tests enforce this the same way the pipeline
// equivalence tests do).
#pragma once

#include <span>
#include <vector>

#include "core/digest.h"
#include "core/knowledge.h"
#include "core/templates/learner.h"

namespace sld::obs {
class Registry;
}  // namespace sld::obs

namespace sld::core {

struct OfflineLearnerParams {
  TemplateLearnerParams templates;
  RuleMinerParams rules;
  TemporalParams temporal;  // defaults; α/β replaced when sweeping
  // When true, grid-search α and β for the best temporal compression on
  // the history (Figs. 10-11).  Off by default: the sweep costs one full
  // pass per grid point.
  bool sweep_temporal = false;
  std::vector<double> alpha_grid = {0.025, 0.05, 0.075, 0.1, 0.2, 0.4};
  std::vector<double> beta_grid = {2, 3, 4, 5, 6, 7};
  // Rule-base update period (the paper updates weekly).
  int update_period_days = 7;
  // Worker threads for the parallel phases.  1 = fully serial (no pool
  // is created); 0 = one thread per hardware core.  Any value produces
  // the same KnowledgeBase.
  int threads = 1;
};

// Per-update-period rule base sizes, for the Figs. 8-9 evolution curves.
struct RuleEvolution {
  std::vector<std::size_t> total;
  std::vector<std::size_t> added;
  std::vector<std::size_t> deleted;
};

// Wall-clock phase breakdown of one Learn() call, for bench_learn and
// the obs gauges.  Per-period mining durations are task-local (periods
// overlap in wall time when mined concurrently).
struct LearnTimings {
  double templates_s = 0.0;  // TemplateLearner Add feed + Learn
  double augment_s = 0.0;    // Syslog+ augmentation
  double priors_s = 0.0;     // temporal prior mining
  double params_s = 0.0;     // α/β grid sweep (0 when not sweeping)
  double rules_s = 0.0;      // period mining + ordered rule-base updates
  double freq_s = 0.0;       // signature frequency table
  double total_s = 0.0;
  // One entry per mined (non-sliver) period, in period order.
  std::vector<double> rule_period_s;
};

class OfflineLearner {
 public:
  explicit OfflineLearner(OfflineLearnerParams params = {})
      : params_(params) {}

  // Learns a knowledge base from a time-sorted historical stream.
  // `evolution`, when non-null, receives the weekly rule-base trajectory;
  // `timings`, when non-null, receives the phase breakdown.
  KnowledgeBase Learn(std::span<const syslog::SyslogRecord> history,
                      const LocationDict& dict,
                      RuleEvolution* evolution = nullptr,
                      LearnTimings* timings = nullptr) const;

  // Publishes phase timings and learn counters as gauges on `registry`
  // after each Learn() call (cold path; see DESIGN.md §10).
  void BindMetrics(obs::Registry* registry) { metrics_ = registry; }

  const OfflineLearnerParams& params() const noexcept { return params_; }

 private:
  OfflineLearnerParams params_;
  obs::Registry* metrics_ = nullptr;
};

}  // namespace sld::core
