#include "core/knowledge.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/strings.h"

namespace sld::core {

std::string KnowledgeBase::Serialize() const {
  std::string out = "KB v1\n";
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "P %.10g %.10g %lld %lld %lld %.10g %.10g %llu\n",
                temporal_params.alpha, temporal_params.beta,
                static_cast<long long>(temporal_params.smin),
                static_cast<long long>(temporal_params.smax),
                static_cast<long long>(rule_params.window_ms),
                rule_params.min_support, rule_params.min_confidence,
                static_cast<unsigned long long>(history_message_count));
  out += buf;
  out += templates.Serialize();
  for (const Template& tmpl : templates.All()) {
    const auto it = temporal_priors.find(tmpl.id);
    if (it == temporal_priors.end()) continue;
    std::snprintf(buf, sizeof(buf), "I %u %.10g\n", tmpl.id, it->second);
    out += buf;
  }
  out += rules.Serialize(templates);
  for (const LabelRule& rule : label_rules) {
    out += "L\t";
    out += rule.code_marker;
    out += '\t';
    out += rule.noun;
    out += '\t';
    out += rule.flappable ? "flap" : "plain";
    out += '\n';
  }
  // Frequencies sorted for deterministic output.
  std::vector<std::uint64_t> keys;
  keys.reserve(signature_freq.size());
  for (const auto& [key, count] : signature_freq) {
    (void)count;
    keys.push_back(key);
  }
  std::sort(keys.begin(), keys.end());
  for (const std::uint64_t key : keys) {
    std::snprintf(buf, sizeof(buf), "F %llu %u\n",
                  static_cast<unsigned long long>(key),
                  signature_freq.at(key));
    out += buf;
  }
  return out;
}

KnowledgeBase KnowledgeBase::Deserialize(std::string_view text) {
  KnowledgeBase kb;
  kb.templates = TemplateSet::Deserialize(text);
  kb.rules = RuleBase::Deserialize(text, kb.templates);
  for (const std::string_view line : SplitChar(text, '\n')) {
    if (line.starts_with("P ")) {
      const auto f = SplitWhitespace(line.substr(2));
      if (f.size() >= 8) {
        kb.temporal_params.alpha =
            std::strtod(std::string(f[0]).c_str(), nullptr);
        kb.temporal_params.beta =
            std::strtod(std::string(f[1]).c_str(), nullptr);
        kb.temporal_params.smin = ParseInt(f[2]).value_or(1000);
        kb.temporal_params.smax =
            ParseInt(f[3]).value_or(3 * kMsPerHour);
        kb.rule_params.window_ms = ParseInt(f[4]).value_or(60000);
        kb.rule_params.min_support =
            std::strtod(std::string(f[5]).c_str(), nullptr);
        kb.rule_params.min_confidence =
            std::strtod(std::string(f[6]).c_str(), nullptr);
        kb.history_message_count =
            static_cast<std::uint64_t>(ParseInt(f[7]).value_or(0));
      }
    } else if (line.starts_with("I ")) {
      const auto f = SplitWhitespace(line.substr(2));
      if (f.size() >= 2) {
        const auto id = ParseInt(f[0]);
        if (id) {
          kb.temporal_priors[static_cast<TemplateId>(*id)] =
              std::strtod(std::string(f[1]).c_str(), nullptr);
        }
      }
    } else if (line.starts_with("L\t")) {
      const auto fields = SplitChar(line, '\t');
      if (fields.size() >= 4) {
        LabelRule rule;
        rule.code_marker = std::string(fields[1]);
        rule.noun = std::string(fields[2]);
        rule.flappable = fields[3] == "flap";
        kb.label_rules.push_back(std::move(rule));
      }
    } else if (line.starts_with("F ")) {
      const auto f = SplitWhitespace(line.substr(2));
      if (f.size() >= 2) {
        const auto key = ParseInt(f[0]);
        const auto count = ParseInt(f[1]);
        if (key && count) {
          kb.signature_freq[static_cast<std::uint64_t>(*key)] =
              static_cast<std::uint32_t>(*count);
        }
      }
    }
  }
  return kb;
}

}  // namespace sld::core
