// Temporal pattern mining and temporal grouping (§4.1.3, §4.2.1).
//
// Messages with the same template at the same location often recur
// periodically (timers, unstable hardware).  The interarrival time is
// tracked with an exponentially weighted moving average
//     Ŝ_t = α · S_{t-1} + (1 − α) · Ŝ_{t-1}
// and a new message joins the current group iff its real interarrival S_t
// is no more than β times the prediction, clamped by S_min (always group)
// and S_max (never group) — the clamps the paper introduces because the
// EWMA alone does not converge.
//
// The offline miner learns (a) per-template interarrival priors used to
// seed Ŝ for fresh groups and (b) the α/β that optimize the compression
// ratio on historical data (the sweeps of Figs. 10-11).
#pragma once

#include <span>
#include <unordered_map>
#include <vector>

#include "common/thread_pool.h"
#include "core/augment.h"

namespace sld::core {

struct TemporalParams {
  double alpha = 0.05;
  double beta = 5.0;
  TimeMs smin = 1 * kMsPerSecond;  // finest syslog granularity
  TimeMs smax = 3 * kMsPerHour;    // domain-knowledge upper bound
};

// Per-template interarrival prior (seeds Ŝ when a group starts).
using TemporalPriors = std::unordered_map<TemplateId, double>;

inline constexpr double kDefaultPriorMs = 60.0 * 1000.0;

// Streaming temporal grouper.  Feed messages in time order; each call
// returns the group id the message belongs to.  Group ids are globally
// unique within one grouper instance.
class TemporalGrouper {
 public:
  TemporalGrouper(TemporalParams params, const TemporalPriors* priors)
      : params_(params), priors_(priors) {}

  // Returns the temporal group id assigned to this message.
  std::size_t Feed(const Augmented& msg);

  std::size_t group_count() const noexcept { return next_group_; }

  // Checkpointing (DESIGN.md §14): one live (template, router) chain.
  // Exported group ids identify chains within one export; on import
  // each chain gets a freshly allocated id, so snapshots are portable
  // across instances (and shard counts) — only chain identity matters.
  struct ChainState {
    std::uint64_t key_a = 0;
    std::uint32_t key_b = 0;
    TimeMs last_time = 0;
    double shat = 0.0;
    std::size_t group = 0;
  };
  void ExportChains(std::vector<ChainState>* out) const {
    out->reserve(out->size() + states_.size());
    for (const auto& [key, st] : states_) {
      out->push_back({key.a, key.b, st.last_time, st.shat, st.group});
    }
  }
  // Restores one chain under a new group id and returns that id.
  std::size_t ImportChain(const ChainState& chain) {
    KeyState st;
    st.last_time = chain.last_time;
    st.shat = chain.shat;
    st.group = next_group_++;
    states_[Key{chain.key_a, chain.key_b}] = st;
    return st.group;
  }

 private:
  struct KeyState {
    TimeMs last_time = 0;
    double shat = 0.0;
    bool has_interval = false;
    std::size_t group = 0;
  };

  double PriorFor(TemplateId tmpl) const;

  TemporalParams params_;
  const TemporalPriors* priors_;
  // Key: (template, primary location, router) packed into a string-free
  // 96-bit key.
  struct Key {
    std::uint64_t a;
    std::uint32_t b;
    friend bool operator==(const Key&, const Key&) = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      return std::hash<std::uint64_t>{}(k.a * 1000003u + k.b);
    }
  };
  std::unordered_map<Key, KeyState, KeyHash> states_;
  std::size_t next_group_ = 0;
};

// Computes per-template interarrival priors from a historical augmented
// stream (median interarrival among gaps below smax).
TemporalPriors MineTemporalPriors(std::span<const Augmented> history,
                                  TimeMs smax = 3 * kMsPerHour);

// Number of temporal groups produced on `history` with the given
// parameters; compression ratio = groups / messages.
std::size_t CountTemporalGroups(std::span<const Augmented> history,
                                const TemporalParams& params,
                                const TemporalPriors& priors);

// Grid-search for the (alpha, beta) minimizing the temporal compression
// ratio on `history` (the paper's Figs. 10-11 procedure).  Each grid
// point is one independent full pass, so a non-null pool sweeps points
// concurrently; the winner is picked by a serial scan in grid order
// (first minimum wins), identical to the serial sweep.
TemporalParams SelectTemporalParams(std::span<const Augmented> history,
                                    const TemporalPriors& priors,
                                    std::span<const double> alpha_grid,
                                    std::span<const double> beta_grid,
                                    ThreadPool* pool = nullptr);

// Ablation baseline: grouping with a FIXED gap threshold (same group iff
// the interarrival is <= `gap_ms`) instead of the adaptive EWMA.  Used by
// bench_ablation_fixed_gap to show why the paper predicts per-template
// periods rather than picking one global cutoff.
std::size_t CountFixedGapGroups(std::span<const Augmented> history,
                                TimeMs gap_ms);

}  // namespace sld::core
