#include "core/temporal/temporal.h"

#include <algorithm>

namespace sld::core {

double TemporalGrouper::PriorFor(TemplateId tmpl) const {
  if (priors_ != nullptr) {
    const auto it = priors_->find(tmpl);
    if (it != priors_->end()) return it->second;
  }
  return kDefaultPriorMs;
}

std::size_t TemporalGrouper::Feed(const Augmented& msg) {
  // Keyed on (template, router): "temporal grouping targets messages with
  // the same template on the same router" (§3.2).
  const Key key{(static_cast<std::uint64_t>(msg.tmpl) << 32) |
                    msg.router_key,
                0};
  auto [it, inserted] = states_.emplace(key, KeyState{});
  KeyState& st = it->second;
  if (inserted) {
    st.last_time = msg.time;
    st.shat = PriorFor(msg.tmpl);
    st.group = next_group_++;
    return st.group;
  }
  const TimeMs s = msg.time - st.last_time;
  st.last_time = msg.time;
  const bool same_group =
      s <= params_.smin ||
      (s <= params_.smax &&
       static_cast<double>(s) <= params_.beta * st.shat);
  // EWMA update (the paper's Ŝ_t = α·S_{t-1} + (1-α)·Ŝ_{t-1}).
  st.shat = params_.alpha * static_cast<double>(s) +
            (1.0 - params_.alpha) * st.shat;
  if (!same_group) {
    st.group = next_group_++;
    st.shat = PriorFor(msg.tmpl);  // fresh burst: reseed the prediction
  }
  return st.group;
}

TemporalPriors MineTemporalPriors(std::span<const Augmented> history,
                                  TimeMs smax) {
  struct PerKey {
    TimeMs last = 0;
    bool seen = false;
  };
  std::unordered_map<std::uint64_t, PerKey> keys;
  std::unordered_map<TemplateId, std::vector<double>> gaps;
  for (const Augmented& msg : history) {
    const std::uint64_t key = (static_cast<std::uint64_t>(msg.tmpl) << 32) |
                              msg.router_key;
    PerKey& pk = keys[key];
    if (pk.seen) {
      const TimeMs gap = msg.time - pk.last;
      if (gap > 0 && gap <= smax) {
        gaps[msg.tmpl].push_back(static_cast<double>(gap));
      }
    }
    pk.last = msg.time;
    pk.seen = true;
  }
  TemporalPriors priors;
  for (auto& [tmpl, values] : gaps) {
    const std::size_t mid = values.size() / 2;
    std::nth_element(values.begin(), values.begin() + mid, values.end());
    priors[tmpl] = values[mid];
  }
  return priors;
}

std::size_t CountTemporalGroups(std::span<const Augmented> history,
                                const TemporalParams& params,
                                const TemporalPriors& priors) {
  TemporalGrouper grouper(params, &priors);
  for (const Augmented& msg : history) grouper.Feed(msg);
  return grouper.group_count();
}

std::size_t CountFixedGapGroups(std::span<const Augmented> history,
                                TimeMs gap_ms) {
  std::unordered_map<std::uint64_t, TimeMs> last;
  std::size_t groups = 0;
  for (const Augmented& msg : history) {
    const std::uint64_t key = (static_cast<std::uint64_t>(msg.tmpl) << 32) |
                              msg.router_key;
    const auto [it, inserted] = last.try_emplace(key, msg.time);
    if (inserted || msg.time - it->second > gap_ms) ++groups;
    it->second = msg.time;
  }
  return groups;
}

TemporalParams SelectTemporalParams(std::span<const Augmented> history,
                                    const TemporalPriors& priors,
                                    std::span<const double> alpha_grid,
                                    std::span<const double> beta_grid,
                                    ThreadPool* pool) {
  // Flatten the grid in the serial sweep order (alpha outer, beta inner)
  // so the strict-less argmin below keeps the serial tie-break: the
  // earliest grid point with the minimal group count wins.
  std::vector<TemporalParams> grid;
  grid.reserve(alpha_grid.size() * beta_grid.size());
  for (const double alpha : alpha_grid) {
    for (const double beta : beta_grid) {
      TemporalParams params;
      params.alpha = alpha;
      params.beta = beta;
      grid.push_back(params);
    }
  }
  std::vector<std::size_t> groups(grid.size());
  ParallelFor(
      pool, grid.size(),
      [&](std::size_t i, std::size_t) {
        groups[i] = CountTemporalGroups(history, grid[i], priors);
      },
      /*chunk=*/1);
  TemporalParams best;
  std::size_t best_groups = SIZE_MAX;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    if (groups[i] < best_groups) {
      best_groups = groups[i];
      best = grid[i];
    }
  }
  return best;
}

}  // namespace sld::core
