// Event querying and raw-message retrieval.
//
// A digest line carries "an index field that allows us to retrieve these
// raw syslog messages if necessary" (§3.2); DigestEvent::messages is that
// index.  This module adds the operator-side queries on top: filter the
// event list by time / label / router / size, and pull an event's raw
// records back out of the stream in timestamp order.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/digest.h"

namespace sld::core {

// All set fields must match (conjunction).
struct EventFilter {
  // Events overlapping [from, to] (either bound optional).
  std::optional<TimeMs> from;
  std::optional<TimeMs> to;
  // Case-sensitive substring of the event label.
  std::string label_contains;
  // Router (by name) that must be involved in the event.
  std::string router;
  double min_score = 0.0;
  std::size_t min_messages = 0;
};

// Events of `result` matching `filter`, in result (priority) order.
std::vector<const DigestEvent*> FilterEvents(const DigestResult& result,
                                             const LocationDict& dict,
                                             const EventFilter& filter);

// The raw records of one event, ordered by timestamp.  `stream` must be
// the record span the digest was produced from.
std::vector<const syslog::SyslogRecord*> EventRecords(
    const DigestEvent& event, std::span<const syslog::SyslogRecord> stream);

}  // namespace sld::core
