// Grouping-quality evaluation against labeled ground truth.
//
// The paper validated digests manually ("by people who have rich network
// experience"); with the simulator's ground truth we can quantify what
// they eyeballed.  For a digest of a labeled stream:
//
//  * fragmentation — how many digest events the average true network
//    condition was split across (1.0 = perfect assembly);
//  * purity — of the messages sharing a digest event with a given true
//    event's messages, the fraction that actually belong to it
//    (1.0 = no unrelated messages were pulled in);
//  * completeness@1 — fraction of a true event's messages captured by the
//    single digest event that holds most of them.
//
// These support both the integration tests and bench_grouping_quality.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/digest.h"
#include "sim/dataset.h"

namespace sld::core {

struct GroupingQuality {
  std::size_t gt_events = 0;       // labeled conditions evaluated
  double mean_fragmentation = 0.0; // digest events per true event
  double mean_purity = 0.0;        // see above, averaged over true events
  double mean_completeness = 0.0;  // best-event coverage, averaged
  // Fraction of true events assembled into exactly one digest event.
  double fully_assembled_fraction = 0.0;
};

// Scores `result` (a digest of `dataset.messages`) against the dataset's
// ground truth.  Background-noise messages (no ground-truth label) do not
// count against purity.
GroupingQuality EvaluateGrouping(const sim::Dataset& dataset,
                                 const DigestResult& result);

}  // namespace sld::core
