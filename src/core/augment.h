// Syslog+ construction (§3.1): raw records augmented with template id and
// extracted, dictionary-validated locations.
//
// Both the offline miners and the online digester run on this augmented
// stream, exactly as the paper's Fig. 1 routes "Syslog+ data" into rule
// mining, temporal mining and the three grouping stages.
#pragma once

#include <span>
#include <vector>

#include "common/interner.h"
#include "common/thread_pool.h"
#include "core/location/extractor.h"
#include "core/templates/template.h"
#include "syslog/record.h"

namespace sld::core {

struct Augmented {
  TimeMs time = 0;
  std::size_t raw_index = 0;     // position in the input stream
  TemplateId tmpl = kNoTemplate;
  // Router key: the dictionary router id, or (for routers absent from all
  // configs) an interned id offset past the dictionary range, so grouping
  // keys stay well-defined for every message.
  std::uint32_t router_key = kNoId;
  bool router_known = false;
  // Extracted locations; element 0 is the originating router's location
  // when the router is known.  Later elements come from the detail text.
  std::vector<LocationId> locs;
  // The most specific detail-text location, or the router-level location
  // when the text names none (used for temporal keys and scoring).
  // kNoId when the router is unknown.
  LocationId primary = kNoId;

  bool HasDetailLocation() const noexcept { return locs.size() > 1; }
};

// Resolves a record's originating router to a grouping key.  Known routers
// map to their dictionary id; routers absent from every config get an
// interned id offset past the dictionary range (first-sight order), so
// grouping keys stay well-defined for every message.  Stateful (the
// interner) and deliberately cheap: the sharded pipeline runs it on the
// sequential ingest thread to pick a shard before the expensive
// augmentation work fans out.
class RouterResolver {
 public:
  explicit RouterResolver(const LocationDict* dict) : dict_(dict) {}

  // Returns (router_key, router_known).  Every router name is interned at
  // first sight with its resolved key, so the steady-state path is a
  // single transparent string_view hash — no dictionary probe, no second
  // hash for unknown routers, no allocation.
  std::pair<std::uint32_t, bool> Resolve(std::string_view router) {
    if (const auto seen = names_.Lookup(router)) return keys_[*seen];
    // Interned ids are dense in first-sight order, so this slot lands at
    // keys_[names_.Intern(router)].
    names_.Intern(router);
    std::pair<std::uint32_t, bool> key;
    if (const auto rid = dict_->RouterByName(router)) {
      key = {*rid, true};
    } else {
      // Unknown routers get ids offset past the dictionary range, dense
      // in first-sight order among unknowns (same assignment as before
      // the memo existed, so grouping keys stay stable).
      key = {static_cast<std::uint32_t>(dict_->router_count() +
                                        unknown_count_++),
             false};
    }
    keys_.push_back(key);
    return key;
  }

  // Checkpointing (DESIGN.md §14): the interned names in first-sight
  // order.  Restoring means re-Resolve()ing each name in that order,
  // which recomputes the identical dense keys — the snapshot never has
  // to store them.
  std::size_t interned_count() const noexcept { return names_.size(); }
  std::string_view interned_name(std::uint32_t id) const {
    return names_.Get(id);
  }

 private:
  const LocationDict* dict_;
  StringInterner names_;
  std::vector<std::pair<std::uint32_t, bool>> keys_;  // by interned id
  std::size_t unknown_count_ = 0;
};

// Fills every Augmented field except the template id, given an already
// resolved router key.  Pure w.r.t. shared state (the extractor and dict
// are read-only), so pipeline shards may call it concurrently.
Augmented AugmentWithRouting(const syslog::SyslogRecord& rec,
                             std::size_t raw_index, std::uint32_t router_key,
                             bool router_known,
                             const LocationExtractor& extractor,
                             const LocationDict& dict);

// Augments records with template ids (creating catch-all fallbacks for
// unmatched messages) and locations.
class Augmenter {
 public:
  Augmenter(TemplateSet* templates, const LocationDict* dict)
      : templates_(templates), extractor_(dict), dict_(dict),
        resolver_(dict) {}

  Augmented Augment(const syslog::SyslogRecord& rec, std::size_t raw_index);

  // Augments a whole (time-sorted) history.  With a pool, router keys
  // are still resolved serially (their first-sight interning order is
  // part of the output), then extraction + matching fan out over index
  // chunks, and catch-all fallbacks are minted in a serial index-order
  // pass — the result is identical to the serial loop at any thread
  // count.
  std::vector<Augmented> AugmentAll(
      std::span<const syslog::SyslogRecord> records,
      ThreadPool* pool = nullptr);

  const LocationDict& dict() const noexcept { return *dict_; }

  // The resolver whose intern order the checkpoint persists.
  RouterResolver& resolver() noexcept { return resolver_; }
  const RouterResolver& resolver() const noexcept { return resolver_; }

 private:
  TemplateSet* templates_;
  LocationExtractor extractor_;
  const LocationDict* dict_;
  RouterResolver resolver_;
};

}  // namespace sld::core
