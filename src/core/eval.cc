#include "core/eval.h"

#include <algorithm>
#include <map>

namespace sld::core {

GroupingQuality EvaluateGrouping(const sim::Dataset& dataset,
                                 const DigestResult& result) {
  GroupingQuality quality;
  if (dataset.ground_truth.empty()) return quality;

  // Message -> digest event, and message -> ground-truth event.
  std::vector<int> digest_of(dataset.messages.size(), -1);
  for (std::size_t e = 0; e < result.events.size(); ++e) {
    for (const std::size_t m : result.events[e].messages) {
      if (m < digest_of.size()) digest_of[m] = static_cast<int>(e);
    }
  }
  std::vector<int> truth_of(dataset.messages.size(), -1);
  for (const sim::GtEvent& gt : dataset.ground_truth) {
    for (const std::size_t m : gt.message_indices) {
      truth_of[m] = gt.id;
    }
  }

  double frag_sum = 0;
  double purity_sum = 0;
  double completeness_sum = 0;
  std::size_t assembled = 0;
  for (const sim::GtEvent& gt : dataset.ground_truth) {
    // Digest events touched by this condition, with per-event counts.
    std::map<int, std::size_t> hits;
    for (const std::size_t m : gt.message_indices) {
      ++hits[digest_of[m]];
    }
    frag_sum += static_cast<double>(hits.size());
    if (hits.size() == 1) ++assembled;

    // completeness@1: share held by the best digest event.
    std::size_t best = 0;
    for (const auto& [event, count] : hits) {
      (void)event;
      best = std::max(best, count);
    }
    completeness_sum += static_cast<double>(best) /
                        static_cast<double>(gt.message_indices.size());

    // purity: among labeled messages in the touched digest events, the
    // fraction belonging to this condition.
    std::size_t labeled = 0;
    std::size_t own = 0;
    for (const auto& [event, count] : hits) {
      (void)count;
      if (event < 0) continue;
      for (const std::size_t m : result.events[event].messages) {
        if (truth_of[m] < 0) continue;  // background noise: not counted
        ++labeled;
        if (truth_of[m] == gt.id) ++own;
      }
    }
    purity_sum += labeled == 0 ? 1.0
                               : static_cast<double>(own) /
                                     static_cast<double>(labeled);
  }

  const double n = static_cast<double>(dataset.ground_truth.size());
  quality.gt_events = dataset.ground_truth.size();
  quality.mean_fragmentation = frag_sum / n;
  quality.mean_purity = purity_sum / n;
  quality.mean_completeness = completeness_sum / n;
  quality.fully_assembled_fraction = static_cast<double>(assembled) / n;
  return quality;
}

}  // namespace sld::core
