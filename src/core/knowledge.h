// The domain knowledge base of Fig. 1: everything the offline learning
// component hands to the online system.
//
// Contents: learned message templates, per-template temporal priors and
// tuned (α, β), the association rule base with its mining parameters, and
// historical signature frequencies per router (the f_m of the §4.2.4
// scoring formula).  The location dictionary is NOT serialized — it is
// rebuilt from router configs, which are the authoritative source.
#pragma once

#include <string>
#include <string_view>
#include <unordered_map>

#include "core/priority/present.h"
#include "core/rules/rules.h"
#include "core/temporal/temporal.h"

namespace sld::core {

class KnowledgeBase {
 public:
  TemplateSet templates;
  TemporalPriors temporal_priors;
  TemporalParams temporal_params;
  RuleBase rules;
  RuleMinerParams rule_params;
  // Expert event-naming rules (§4.2.4); consulted before the built-in
  // phrasebook when labeling events.
  std::vector<LabelRule> label_rules;
  // (template id << 32 | router key) -> historical message count.
  std::unordered_map<std::uint64_t, std::uint32_t> signature_freq;
  std::uint64_t history_message_count = 0;

  static std::uint64_t FreqKey(TemplateId tmpl,
                               std::uint32_t router_key) noexcept {
    return (static_cast<std::uint64_t>(tmpl) << 32) | router_key;
  }

  // Historical occurrence count of a signature on a router (0 if unseen).
  std::uint32_t FrequencyOf(TemplateId tmpl,
                            std::uint32_t router_key) const {
    const auto it = signature_freq.find(FreqKey(tmpl, router_key));
    return it == signature_freq.end() ? 0 : it->second;
  }

  // Text round-trip.  Requires the same configs (and hence router keys)
  // when the knowledge base is reloaded.
  std::string Serialize() const;
  static KnowledgeBase Deserialize(std::string_view text);
};

}  // namespace sld::core
