#include "core/stream.h"

#include <algorithm>

namespace sld::core {
namespace {

// Sweep for idle groups at most this often (stream-clock time).
constexpr TimeMs kSweepInterval = 30 * kMsPerSecond;

}  // namespace

StreamingDigester::StreamingDigester(KnowledgeBase* kb,
                                     const LocationDict* dict,
                                     DigestOptions options,
                                     TimeMs idle_close_ms,
                                     TimeMs max_group_age_ms)
    : kb_(kb),
      dict_(dict),
      options_(options),
      idle_close_ms_(idle_close_ms > 0
                         ? idle_close_ms
                         : kb->temporal_params.smax +
                               kb->rule_params.window_ms),
      max_group_age_ms_(max_group_age_ms),
      augmenter_(&kb->templates, dict),
      temporal_(kb->temporal_params, &kb->temporal_priors) {}

void StreamingDigester::MergeRoots(std::size_t a, std::size_t b) {
  const std::size_t ra = uf_.Find(a);
  const std::size_t rb = uf_.Find(b);
  if (ra == rb) return;
  const GroupMeta ma = groups_[ra];
  const GroupMeta mb = groups_[rb];
  groups_.erase(ra);
  groups_.erase(rb);
  const std::size_t merged = uf_.Union(ra, rb);
  groups_[merged] = {std::min(ma.first_time, mb.first_time),
                     std::max(ma.last_time, mb.last_time)};
}

std::vector<DigestEvent> StreamingDigester::Push(
    const syslog::SyslogRecord& rec) {
  std::vector<DigestEvent> closed_events;
  if (rec.time >= clock_ + kSweepInterval) {
    closed_events = CloseIdle(rec.time);
  }
  clock_ = std::max(clock_, rec.time);

  const std::size_t index = arena_.size();
  arena_.push_back(augmenter_.Augment(rec, processed_++));
  closed_.push_back(false);
  uf_.Add();
  ++open_messages_;
  const Augmented& msg = arena_.back();
  groups_[uf_.Find(index)] = {msg.time, msg.time};

  // Pass 1 (incremental): same temporal chain -> same group.
  const std::size_t temporal_group = temporal_.Feed(msg);
  const auto [tail_it, fresh] = temporal_tail_.emplace(temporal_group, index);
  if (!fresh) {
    // Guard: with a short idle horizon the chain's tail may already have
    // been closed and discarded; then this message simply starts anew.
    if (tail_it->second < closed_.size() && !closed_[tail_it->second]) {
      MergeRoots(tail_it->second, index);
    }
    tail_it->second = index;
  }

  // Pass 2 (incremental): rule-based within the same router's window.
  if (options_.use_rules) {
    std::deque<std::size_t>& window = router_window_[msg.router_key];
    while (!window.empty() &&
           msg.time - arena_[window.front()].time >
               kb_->rule_params.window_ms) {
      window.pop_front();
    }
    for (const std::size_t j : window) {
      const Augmented& other = arena_[j];
      if (other.tmpl == msg.tmpl) continue;
      if (!kb_->rules.Has(msg.tmpl, other.tmpl)) continue;
      bool matched = false;
      for (const LocationId la : msg.locs) {
        for (const LocationId lb : other.locs) {
          if (dict_->SpatiallyMatched(la, lb)) {
            matched = true;
            break;
          }
        }
        if (matched) break;
      }
      if (msg.locs.empty() && other.locs.empty()) matched = true;
      if (!matched) continue;
      active_rules_.insert(MiningStats::PairKey(msg.tmpl, other.tmpl));
      MergeRoots(index, j);
    }
    window.push_back(index);
  }

  // Pass 3 (incremental): same template on connected locations across
  // routers, almost simultaneously.
  if (options_.use_cross_router) {
    while (!cross_window_.empty() &&
           msg.time - arena_[cross_window_.front()].time >
               options_.cross_router_window) {
      cross_window_.pop_front();
    }
    for (const std::size_t j : cross_window_) {
      const Augmented& other = arena_[j];
      if (other.tmpl != msg.tmpl) continue;
      if (other.router_key == msg.router_key) continue;
      if (uf_.Connected(index, j)) continue;
      bool connected = false;
      for (const LocationId la : msg.locs) {
        for (const LocationId lb : other.locs) {
          if (dict_->Connected(la, lb)) {
            connected = true;
            break;
          }
        }
        if (connected) break;
      }
      if (connected) MergeRoots(index, j);
    }
    cross_window_.push_back(index);
  }

  // Refresh the (possibly merged) group's activity clock.
  groups_[uf_.Find(index)].last_time = msg.time;

  if (arena_.size() > 4096 && arena_.size() > 4 * open_messages_) {
    CompactArena();
  }
  return closed_events;
}

std::vector<DigestEvent> StreamingDigester::CloseIdle(TimeMs now) {
  std::vector<std::size_t> closing;
  for (const auto& [root, meta] : groups_) {
    if (now - meta.last_time > idle_close_ms_ ||
        now - meta.first_time > max_group_age_ms_) {
      closing.push_back(root);
    }
  }
  if (closing.empty()) return {};

  // One arena scan collects the messages of every closing group.
  std::unordered_map<std::size_t, std::vector<const Augmented*>> members;
  for (const std::size_t root : closing) members[root];
  for (std::size_t i = 0; i < arena_.size(); ++i) {
    if (closed_[i]) continue;
    const auto it = members.find(uf_.Find(i));
    if (it == members.end()) continue;
    it->second.push_back(&arena_[i]);
    closed_[i] = true;
    --open_messages_;
  }
  std::vector<DigestEvent> events;
  events.reserve(closing.size());
  for (const std::size_t root : closing) {
    if (!members[root].empty()) {
      events.push_back(BuildEvent(members[root], *kb_, *dict_));
    }
    groups_.erase(root);
  }
  std::sort(events.begin(), events.end(),
            [](const DigestEvent& a, const DigestEvent& b) {
              return a.start < b.start;
            });
  return events;
}

std::vector<DigestEvent> StreamingDigester::Flush() {
  clock_ = INT64_MAX - idle_close_ms_ - 1;
  std::vector<DigestEvent> events = CloseIdle(INT64_MAX - 1);
  std::sort(events.begin(), events.end(),
            [](const DigestEvent& a, const DigestEvent& b) {
              return a.start < b.start;
            });
  CompactArena();
  return events;
}

void StreamingDigester::CompactArena() {
  // Remap open messages into a fresh arena, preserving group structure.
  std::vector<Augmented> new_arena;
  new_arena.reserve(open_messages_);
  std::vector<std::size_t> remap(arena_.size(), SIZE_MAX);
  for (std::size_t i = 0; i < arena_.size(); ++i) {
    if (closed_[i]) continue;
    remap[i] = new_arena.size();
    new_arena.push_back(std::move(arena_[i]));
  }
  UnionFind new_uf(new_arena.size());
  // Reconstruct unions: connect every open message to its root's first
  // open representative.
  std::unordered_map<std::size_t, std::size_t> first_of_root;
  std::unordered_map<std::size_t, GroupMeta> new_groups;
  for (std::size_t i = 0; i < arena_.size(); ++i) {
    if (remap[i] == SIZE_MAX) continue;
    const std::size_t root = uf_.Find(i);
    const auto [it, inserted] = first_of_root.emplace(root, remap[i]);
    if (!inserted) new_uf.Union(it->second, remap[i]);
  }
  for (const auto& [root, meta] : groups_) {
    const auto it = first_of_root.find(root);
    if (it != first_of_root.end()) {
      new_groups[new_uf.Find(it->second)] = meta;
    }
  }
  // Remap the window structures; entries for closed messages drop out.
  const auto remap_deque = [&remap](std::deque<std::size_t>& dq) {
    std::deque<std::size_t> out;
    for (const std::size_t i : dq) {
      if (remap[i] != SIZE_MAX) out.push_back(remap[i]);
    }
    dq = std::move(out);
  };
  for (auto& [router, window] : router_window_) {
    (void)router;
    remap_deque(window);
  }
  remap_deque(cross_window_);
  std::unordered_map<std::size_t, std::size_t> new_tails;
  for (const auto& [gid, tail] : temporal_tail_) {
    if (remap[tail] != SIZE_MAX) new_tails.emplace(gid, remap[tail]);
  }

  arena_ = std::move(new_arena);
  closed_.assign(arena_.size(), false);
  uf_ = std::move(new_uf);
  groups_ = std::move(new_groups);
  temporal_tail_ = std::move(new_tails);
}

}  // namespace sld::core
