#include "core/stream.h"

#include "obs/registry.h"
#include "pipeline/state_io.h"

namespace sld::core {

StreamingDigester::StreamingDigester(KnowledgeBase* kb,
                                     const LocationDict* dict,
                                     DigestOptions options,
                                     TimeMs idle_close_ms,
                                     TimeMs max_group_age_ms)
    : options_(options),
      augmenter_(&kb->templates, dict),
      temporal_(kb->temporal_params, &kb->temporal_priors),
      rules_(&kb->rules, kb->rule_params.window_ms, dict),
      cross_(dict, options.cross_router_window),
      tracker_(kb, dict,
               idle_close_ms > 0 ? idle_close_ms
                                 : kb->temporal_params.smax +
                                       kb->rule_params.window_ms,
               max_group_age_ms) {}

void StreamingDigester::BindMetrics(obs::Registry* reg) {
  messages_cell_ = reg->AddCounter("digester_messages_total",
                                   "records fed to the streaming digester");
  events_cell_ = reg->AddCounter("digester_events_total",
                                 "events emitted by the streaming digester");
  tracker_.BindMetrics(reg);
}

std::vector<DigestEvent> StreamingDigester::Push(
    const syslog::SyslogRecord& rec) {
  std::vector<DigestEvent> closed_events = tracker_.Observe(rec.time);
  if (messages_cell_ != nullptr) {
    messages_cell_->Inc();
    events_cell_->Inc(closed_events.size());
  }

  const Augmented msg =
      augmenter_.Augment(rec, tracker_.processed_count());
  tracker_.Add(msg);

  // Per-router stages (shardable in the pipeline deployment), then the
  // sequenced cross-router stage, all merging through the one tracker.
  edges_.clear();
  fired_rules_.clear();
  temporal_.Feed(msg, &edges_);
  if (options_.use_rules) rules_.Feed(msg, &edges_, &fired_rules_);
  tracker_.ApplyEdges(edges_);
  tracker_.NoteRules(fired_rules_);
  if (options_.use_cross_router) {
    edges_.clear();
    cross_.Feed(
        msg,
        [this](std::size_t a, std::size_t b) {
          return tracker_.SameGroup(a, b);
        },
        &edges_);
    tracker_.ApplyEdges(edges_);
  }
  tracker_.Touch(msg.raw_index, msg.time);
  return closed_events;
}

std::vector<DigestEvent> StreamingDigester::Flush() {
  std::vector<DigestEvent> events = tracker_.Flush();
  if (events_cell_ != nullptr) events_cell_->Inc(events.size());
  return events;
}

void StreamingDigester::SaveState(ckpt::Writer* w) {
  w->U64(tracker_.processed_count());
  pipeline::SaveResolverState(augmenter_.resolver(), w);
  std::vector<pipeline::TemporalStage::ChainSnapshot> chains;
  temporal_.ExportState(&chains);
  pipeline::SaveTemporalChains(std::move(chains), w);
  std::vector<pipeline::RuleStage::WindowSnapshot> windows;
  rules_.ExportState(&windows);
  pipeline::SaveRuleWindows(std::move(windows), w);
  std::vector<pipeline::CrossRouterStage::EntrySnapshot> cross_entries;
  cross_.ExportState(&cross_entries);
  pipeline::SaveCrossEntries(cross_entries, w);
  tracker_.SaveState(w);
}

bool StreamingDigester::LoadState(ckpt::Reader* r) {
  r->U64();  // pushed-record count; the tracker restores processed_.
  bool ok = pipeline::LoadResolverState(&augmenter_.resolver(), r);
  ok = ok && pipeline::LoadTemporalChains(
                 r, [this](const pipeline::TemporalStage::ChainSnapshot& c) {
                   temporal_.ImportChain(c);
                 });
  ok = ok && pipeline::LoadRuleWindows(
                 r, [this](const pipeline::RuleStage::WindowSnapshot& win) {
                   rules_.ImportWindow(win);
                 });
  ok = ok &&
       pipeline::LoadCrossEntries(
           r, [this](const pipeline::CrossRouterStage::EntrySnapshot& e) {
             cross_.ImportEntry(e);
           });
  ok = ok && tracker_.LoadState(r);
  return ok;
}

}  // namespace sld::core
