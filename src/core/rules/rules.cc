#include "core/rules/rules.h"

#include <algorithm>
#include <map>

#include "common/strings.h"

namespace sld::core {

double MiningStats::Support(TemplateId t) const {
  if (transaction_count == 0) return 0.0;
  const auto it = item_tx.find(t);
  if (it == item_tx.end()) return 0.0;
  return static_cast<double>(it->second) /
         static_cast<double>(transaction_count);
}

double MiningStats::PairSupport(TemplateId a, TemplateId b) const {
  if (transaction_count == 0) return 0.0;
  const auto it = pair_tx.find(PairKey(a, b));
  if (it == pair_tx.end()) return 0.0;
  return static_cast<double>(it->second) /
         static_cast<double>(transaction_count);
}

double MiningStats::Confidence(TemplateId from, TemplateId to) const {
  const auto item = item_tx.find(from);
  if (item == item_tx.end() || item->second == 0) return 0.0;
  const auto pair = pair_tx.find(PairKey(from, to));
  if (pair == pair_tx.end()) return 0.0;
  return static_cast<double>(pair->second) /
         static_cast<double>(item->second);
}

MiningStats MineCooccurrence(std::span<const Augmented> stream,
                             TimeMs window_ms) {
  MiningStats stats;
  stats.message_count = stream.size();

  // Split the (time-sorted) stream into per-router index sequences.
  std::unordered_map<std::uint32_t, std::vector<std::size_t>> per_router;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    per_router[stream[i].router_key].push_back(i);
    ++stats.item_messages[stream[i].tmpl];
  }

  // Guards against quadratic blowup inside a pathological burst: a
  // transaction considers at most this many distinct templates.
  constexpr std::size_t kMaxDistinct = 64;

  std::vector<TemplateId> distinct;
  for (const auto& [router, indices] : per_router) {
    (void)router;
    std::size_t tail = 0;
    for (std::size_t head = 0; head < indices.size(); ++head) {
      const TimeMs t0 = stream[indices[head]].time;
      if (tail < head) tail = head;
      while (tail + 1 < indices.size() &&
             stream[indices[tail + 1]].time - t0 <= window_ms) {
        ++tail;
      }
      // One transaction: distinct templates in [head, tail].
      distinct.clear();
      for (std::size_t j = head; j <= tail; ++j) {
        const TemplateId t = stream[indices[j]].tmpl;
        if (std::find(distinct.begin(), distinct.end(), t) ==
            distinct.end()) {
          distinct.push_back(t);
          if (distinct.size() >= kMaxDistinct) break;
        }
      }
      ++stats.transaction_count;
      for (std::size_t x = 0; x < distinct.size(); ++x) {
        ++stats.item_tx[distinct[x]];
        for (std::size_t y = x + 1; y < distinct.size(); ++y) {
          ++stats.pair_tx[MiningStats::PairKey(distinct[x], distinct[y])];
        }
      }
    }
  }
  return stats;
}

std::vector<Rule> ExtractRules(const MiningStats& stats,
                               const RuleMinerParams& params) {
  std::vector<Rule> rules;
  for (const auto& [key, count] : stats.pair_tx) {
    const TemplateId a = static_cast<TemplateId>(key >> 32);
    const TemplateId b = static_cast<TemplateId>(key & 0xffffffffu);
    if (stats.Support(a) < params.min_support ||
        stats.Support(b) < params.min_support) {
      continue;
    }
    const double conf =
        std::max(stats.Confidence(a, b), stats.Confidence(b, a));
    if (conf < params.min_confidence) continue;
    Rule rule;
    rule.a = a;
    rule.b = b;
    rule.support = static_cast<double>(count) /
                   static_cast<double>(stats.transaction_count);
    rule.confidence = conf;
    rules.push_back(rule);
  }
  std::sort(rules.begin(), rules.end(), [](const Rule& x, const Rule& y) {
    return std::tie(x.a, x.b) < std::tie(y.a, y.b);
  });
  return rules;
}

RuleBase::UpdateResult RuleBase::Update(const MiningStats& stats,
                                        const RuleMinerParams& params,
                                        bool naive_deletion) {
  UpdateResult result;

  // Deletion first (on the existing set, judged by this period's data).
  std::vector<std::uint64_t> doomed;
  for (auto& [key, rule] : rules_) {
    if (rule.expert) continue;  // expert-pinned rules are never evicted
    const std::size_t cnt_a =
        stats.item_tx.count(rule.a) ? stats.item_tx.at(rule.a) : 0;
    const std::size_t cnt_b =
        stats.item_tx.count(rule.b) ? stats.item_tx.at(rule.b) : 0;
    if (naive_deletion) {
      if (stats.Support(rule.a) < params.min_support ||
          stats.Support(rule.b) < params.min_support) {
        doomed.push_back(key);
        continue;
      }
    }
    if (std::max(cnt_a, cnt_b) < kMinEvidence) continue;  // no evidence
    const double conf =
        std::max(stats.Confidence(rule.a, rule.b),
                 stats.Confidence(rule.b, rule.a));
    // Conservative deletion (§4.1.4): a rule hovering just under the
    // admission threshold is not evidence against the association, so the
    // deletion threshold carries a margin; only a clear confidence drop
    // evicts the rule.
    if (conf < params.min_confidence * kDeletionMargin) {
      doomed.push_back(key);
    }
  }
  for (const std::uint64_t key : doomed) rules_.erase(key);
  result.deleted = doomed.size();

  // Addition.
  for (const Rule& rule : ExtractRules(stats, params)) {
    const std::uint64_t key = MiningStats::PairKey(rule.a, rule.b);
    const auto [it, inserted] = rules_.emplace(key, rule);
    if (inserted) {
      ++result.added;
    } else {
      const bool expert = it->second.expert;
      it->second = rule;  // refresh stats of an existing rule
      it->second.expert = expert;
    }
  }
  return result;
}

void RuleBase::AddExpertRule(TemplateId a, TemplateId b) {
  Rule rule;
  rule.a = std::min(a, b);
  rule.b = std::max(a, b);
  rule.confidence = 1.0;  // asserted, not measured
  rule.expert = true;
  const auto [it, inserted] =
      rules_.emplace(MiningStats::PairKey(a, b), rule);
  if (!inserted) it->second.expert = true;
}

bool RuleBase::RemoveRule(TemplateId a, TemplateId b) {
  return rules_.erase(MiningStats::PairKey(a, b)) > 0;
}

std::vector<Rule> RuleBase::All() const {
  std::vector<Rule> out;
  out.reserve(rules_.size());
  for (const auto& [key, rule] : rules_) {
    (void)key;
    out.push_back(rule);
  }
  std::sort(out.begin(), out.end(), [](const Rule& x, const Rule& y) {
    return std::tie(x.a, x.b) < std::tie(y.a, y.b);
  });
  return out;
}

std::string RuleBase::Serialize(const TemplateSet& templates) const {
  std::string out;
  for (const Rule& rule : All()) {
    out += "R\t";
    out += templates.Get(rule.a).Canonical();
    out += '\t';
    out += templates.Get(rule.b).Canonical();
    out += '\t';
    out += std::to_string(rule.support);
    out += '\t';
    out += std::to_string(rule.confidence);
    out += '\t';
    out += rule.expert ? "expert" : "mined";
    out += '\n';
  }
  return out;
}

RuleBase RuleBase::Deserialize(std::string_view text,
                               const TemplateSet& templates) {
  // Canonical form -> id map.
  std::unordered_map<std::string, TemplateId> by_canonical;
  for (const Template& tmpl : templates.All()) {
    by_canonical.emplace(tmpl.Canonical(), tmpl.id);
  }
  RuleBase base;
  for (const std::string_view line : SplitChar(text, '\n')) {
    if (!line.starts_with("R\t")) continue;
    const auto fields = SplitChar(line, '\t');
    if (fields.size() < 5) continue;
    const auto a = by_canonical.find(std::string(fields[1]));
    const auto b = by_canonical.find(std::string(fields[2]));
    if (a == by_canonical.end() || b == by_canonical.end()) continue;
    Rule rule;
    rule.a = std::min(a->second, b->second);
    rule.b = std::max(a->second, b->second);
    rule.support = std::strtod(std::string(fields[3]).c_str(), nullptr);
    rule.confidence = std::strtod(std::string(fields[4]).c_str(), nullptr);
    rule.expert = fields.size() >= 6 && fields[5] == "expert";
    base.rules_.emplace(MiningStats::PairKey(rule.a, rule.b), rule);
  }
  return base;
}

}  // namespace sld::core
