// Association rule mining over Syslog+ streams (§4.1.4) and the adaptive
// rule base (weekly add / conservative delete).
//
// Transactions are built with a sliding window W over each router's
// time-sorted message stream (one transaction per message: the set of
// templates seen within W of it).  Only pairwise rules are mined — the
// paper's choice for tractability and reviewability — with thresholds
// SP_min on item support and Conf_min on confidence.  Grouping later
// ignores rule direction and relies on transitivity (§4.2.2).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/augment.h"

namespace sld::core {

struct RuleMinerParams {
  TimeMs window_ms = 60 * kMsPerSecond;  // W
  double min_support = 0.0005;           // SP_min
  double min_confidence = 0.8;           // Conf_min
};

// A mined pairwise rule; `a < b` canonically, confidence is the larger of
// the two directions (direction is ignored when grouping).
struct Rule {
  TemplateId a = kNoTemplate;
  TemplateId b = kNoTemplate;
  double support = 0.0;     // supp({a, b})
  double confidence = 0.0;  // max(conf(a->b), conf(b->a))
  // Expert-pinned rules (Fig. 1's "Domain Expert Rule Adjustment"):
  // entered or vetted by an operator, never touched by periodic updates.
  bool expert = false;
};

// Raw co-occurrence statistics for one mining run (e.g. one week of data).
struct MiningStats {
  std::size_t transaction_count = 0;
  std::size_t message_count = 0;
  // Transactions containing the template at least once.
  std::unordered_map<TemplateId, std::size_t> item_tx;
  // Raw message count per template (for Table 5's coverage column).
  std::unordered_map<TemplateId, std::size_t> item_messages;
  // Transactions containing both templates of the (a<b) pair.
  std::unordered_map<std::uint64_t, std::size_t> pair_tx;

  static std::uint64_t PairKey(TemplateId a, TemplateId b) noexcept {
    if (a > b) std::swap(a, b);
    return (static_cast<std::uint64_t>(a) << 32) | b;
  }

  double Support(TemplateId t) const;
  double PairSupport(TemplateId a, TemplateId b) const;
  double Confidence(TemplateId from, TemplateId to) const;
};

// Builds transaction statistics from a time-sorted augmented stream.
// Transactions are per-router (messages on different routers never share a
// transaction).
MiningStats MineCooccurrence(std::span<const Augmented> stream,
                             TimeMs window_ms);

// Extracts the rules satisfying (support, confidence) thresholds.
std::vector<Rule> ExtractRules(const MiningStats& stats,
                               const RuleMinerParams& params);

// The adaptive rule knowledge base.
class RuleBase {
 public:
  // Applies one periodic (weekly) update: new qualifying rules are added;
  // an existing rule is deleted only when this period's data contains
  // enough observations of either item and the confidence fell below the
  // threshold (the paper's conservative deletion).  With
  // `naive_deletion`, a rule is also deleted when its items simply fail
  // the support threshold this period — the ablation of DESIGN.md §5.
  struct UpdateResult {
    std::size_t added = 0;
    std::size_t deleted = 0;
  };
  UpdateResult Update(const MiningStats& stats, const RuleMinerParams& params,
                      bool naive_deletion = false);

  bool Has(TemplateId a, TemplateId b) const {
    return rules_.count(MiningStats::PairKey(a, b)) != 0;
  }
  std::size_t size() const noexcept { return rules_.size(); }
  std::vector<Rule> All() const;

  // -- domain expert adjustment (Fig. 1) ----------------------------------
  // Pins a rule the expert asserts; it participates in grouping and is
  // exempt from periodic deletion.  Pinning an existing mined rule
  // upgrades it in place.
  void AddExpertRule(TemplateId a, TemplateId b);
  // Removes a rule the expert rejects ("puzzling or even bizarre" mined
  // associations, §3.1).  Returns false when absent.
  bool RemoveRule(TemplateId a, TemplateId b);

  // Serialization by template canonical names (stable across processes).
  std::string Serialize(const TemplateSet& templates) const;
  static RuleBase Deserialize(std::string_view text,
                              const TemplateSet& templates);

 private:
  // Minimum observations of an item this period before a rule involving
  // it may be deleted.
  static constexpr std::size_t kMinEvidence = 5;
  // Deletion hysteresis: evict only when confidence falls clearly below
  // the admission threshold (conservative deletion, §4.1.4).
  static constexpr double kDeletionMargin = 0.75;

  std::unordered_map<std::uint64_t, Rule> rules_;
};

}  // namespace sld::core
