// The online SyslogDigest system (§3.2, §4.2): signature matching,
// location parsing, three grouping passes, prioritization, presentation.
//
// All merges flow through one union-find, so the final partition is
// independent of the order the three grouping methods run in — the paper's
// §4.2.3 observation, which tests/grouping verifies.
#pragma once

#include <span>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/knowledge.h"
#include "core/priority/present.h"

namespace sld::obs {
class Registry;
}  // namespace sld::obs

namespace sld::core {

// Which grouping passes to run (Table 7 compares T, T+R, T+R+C).
struct DigestOptions {
  bool use_rules = true;
  bool use_cross_router = true;
  // Cross-router grouping: same template on connected locations at "almost
  // the same time" (§4.2.3's 1 second).
  TimeMs cross_router_window = 1 * kMsPerSecond;
};

// One high-level network event.
struct DigestEvent {
  std::vector<std::size_t> messages;  // indices into the input stream
  TimeMs start = 0;
  TimeMs end = 0;
  double score = 0.0;
  std::string label;
  std::string location_text;
  std::vector<TemplateId> templates;       // distinct, sorted
  std::vector<std::uint32_t> router_keys;  // distinct, sorted

  // The digest line: "start|end|locations|label|N messages".
  std::string Format() const;
};

struct DigestResult {
  std::vector<DigestEvent> events;  // sorted by score, descending
  std::size_t message_count = 0;
  std::size_t active_rule_count = 0;  // distinct rules that fired

  double CompressionRatio() const {
    return message_count == 0
               ? 0.0
               : static_cast<double>(events.size()) /
                     static_cast<double>(message_count);
  }
};

// Assembles a presented event (time range, score, label, locations) from
// the augmented messages of one group.  Shared by the batch Digester and
// the StreamingDigester.
DigestEvent BuildEvent(const std::vector<const Augmented*>& messages,
                       const KnowledgeBase& kb, const LocationDict& dict);

// The §4.2.4 per-message score contribution: l_m / log(f_m + 2).
double MessageScore(const Augmented& msg, const KnowledgeBase& kb,
                    const LocationDict& dict);

class Digester {
 public:
  // `kb` must outlive the digester and may gain catch-all templates for
  // unseen messages; `dict` is the config-derived location dictionary.
  Digester(KnowledgeBase* kb, const LocationDict* dict)
      : kb_(kb), dict_(dict) {}

  // Digests a time-sorted syslog stream into prioritized events.
  DigestResult Digest(std::span<const syslog::SyslogRecord> stream,
                      const DigestOptions& options = {});

  // Routes driver + tracker metrics of subsequent Digest() calls into
  // `reg` (digester_* and tracker_* series); `reg` must outlive the
  // digester.
  void BindMetrics(obs::Registry* reg) { metrics_ = reg; }

 private:
  KnowledgeBase* kb_;
  const LocationDict* dict_;
  obs::Registry* metrics_ = nullptr;
};

}  // namespace sld::core
