#include "core/learn.h"

#include <chrono>
#include <memory>
#include <string>

#include "common/thread_pool.h"
#include "obs/registry.h"

namespace sld::core {

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// One rule-mining update period: the half-open index range [begin, end)
// plus whether it is mined at all (a trailing sliver is skipped).
struct PeriodSpan {
  std::size_t begin = 0;
  std::size_t end = 0;
  bool mine = true;
};

// Reproduces the serial period walk: fixed-width periods anchored at the
// first message, empty periods skipped by construction, and a trailing
// sliver (long-running scenarios spilling past the last full period)
// excluded — it is not a representative sample, and judging the rule
// base against it would cause spurious deletions.
std::vector<PeriodSpan> SplitPeriods(std::span<const Augmented> augmented,
                                     TimeMs period) {
  std::vector<PeriodSpan> periods;
  const TimeMs t0 = augmented.front().time;
  std::size_t begin = 0;
  std::size_t prev_size = 0;
  while (begin < augmented.size()) {
    const TimeMs period_end =
        t0 + ((augmented[begin].time - t0) / period + 1) * period;
    std::size_t end = begin;
    while (end < augmented.size() && augmented[end].time < period_end) {
      ++end;
    }
    const bool sliver = end == augmented.size() && prev_size > 0 &&
                        (end - begin) < prev_size / 10;
    periods.push_back(PeriodSpan{begin, end, !sliver});
    prev_size = end - begin;
    begin = end;
  }
  return periods;
}

}  // namespace

KnowledgeBase OfflineLearner::Learn(
    std::span<const syslog::SyslogRecord> history, const LocationDict& dict,
    RuleEvolution* evolution, LearnTimings* timings) const {
  const Clock::time_point learn_start = Clock::now();
  LearnTimings local;
  LearnTimings& t = timings != nullptr ? *timings : local;
  t = LearnTimings{};

  // One pool for every phase; threads <= 1 keeps everything inline on
  // the caller (no pool, no worker threads).
  std::unique_ptr<ThreadPool> pool;
  if (params_.threads != 1) {
    pool = std::make_unique<ThreadPool>(params_.threads);
  }

  KnowledgeBase kb;
  kb.rule_params = params_.rules;
  kb.temporal_params = params_.temporal;
  kb.history_message_count = history.size();

  // 1. Message templates (§4.1.1).  The feed is serial (the learner
  // interns tokens in first-sight order); the sub-type trees fan out per
  // (code, token-count) shard inside Learn.
  Clock::time_point phase_start = Clock::now();
  TemplateLearner template_learner(params_.templates);
  for (const syslog::SyslogRecord& rec : history) {
    template_learner.Add(rec.code, rec.detail);
  }
  kb.templates = template_learner.Learn(pool.get());
  t.templates_s = SecondsSince(phase_start);

  // 2. Syslog+ augmentation (template + location per message).
  phase_start = Clock::now();
  Augmenter augmenter(&kb.templates, &dict);
  const std::vector<Augmented> augmented =
      augmenter.AugmentAll(history, pool.get());
  t.augment_s = SecondsSince(phase_start);

  // 3. Temporal patterns (§4.1.3): per-template priors, optional α/β tune.
  phase_start = Clock::now();
  kb.temporal_priors = MineTemporalPriors(augmented, params_.temporal.smax);
  t.priors_s = SecondsSince(phase_start);
  if (params_.sweep_temporal) {
    phase_start = Clock::now();
    TemporalParams tuned = SelectTemporalParams(
        augmented, kb.temporal_priors, params_.alpha_grid,
        params_.beta_grid, pool.get());
    tuned.smin = params_.temporal.smin;
    tuned.smax = params_.temporal.smax;
    kb.temporal_params = tuned;
    t.params_s = SecondsSince(phase_start);
  }

  // 4. Association rules (§4.1.4), mined per update period.  Mining one
  // period is a pure function of its subspan, so the periods fan out;
  // RuleBase::Update then applies the mined stats strictly in period
  // order — the adaptive add / conservative-delete policy depends on the
  // rule base's state at each step.
  phase_start = Clock::now();
  if (!augmented.empty()) {
    const TimeMs period =
        static_cast<TimeMs>(params_.update_period_days) * kMsPerDay;
    const std::vector<PeriodSpan> periods = SplitPeriods(augmented, period);
    std::vector<MiningStats> mined(periods.size());
    std::vector<double> period_s(periods.size(), 0.0);
    ParallelFor(
        pool.get(), periods.size(),
        [&](std::size_t i, std::size_t) {
          if (!periods[i].mine) return;
          const Clock::time_point mine_start = Clock::now();
          mined[i] = MineCooccurrence(
              std::span<const Augmented>(augmented)
                  .subspan(periods[i].begin,
                           periods[i].end - periods[i].begin),
              params_.rules.window_ms);
          period_s[i] = SecondsSince(mine_start);
        },
        /*chunk=*/1);
    for (std::size_t i = 0; i < periods.size(); ++i) {
      if (!periods[i].mine) continue;
      const RuleBase::UpdateResult update =
          kb.rules.Update(mined[i], params_.rules);
      if (evolution != nullptr) {
        evolution->total.push_back(kb.rules.size());
        evolution->added.push_back(update.added);
        evolution->deleted.push_back(update.deleted);
      }
      t.rule_period_s.push_back(period_s[i]);
    }
  }
  t.rules_s = SecondsSince(phase_start);

  // 5. Historical signature frequencies (the f_m of §4.2.4).
  phase_start = Clock::now();
  for (const Augmented& msg : augmented) {
    ++kb.signature_freq[KnowledgeBase::FreqKey(msg.tmpl, msg.router_key)];
  }
  t.freq_s = SecondsSince(phase_start);

  t.total_s = SecondsSince(learn_start);
  if (metrics_ != nullptr) {
    const auto us = [](double seconds) {
      return static_cast<std::int64_t>(seconds * 1e6);
    };
    const auto phase_gauge = [this](const char* phase) {
      return metrics_->AddGauge("learn_phase_duration_us",
                                "wall-clock duration of one offline "
                                "learning phase (microseconds)",
                                {{"phase", phase}});
    };
    phase_gauge("templates")->Set(us(t.templates_s));
    phase_gauge("augment")->Set(us(t.augment_s));
    phase_gauge("priors")->Set(us(t.priors_s));
    phase_gauge("params")->Set(us(t.params_s));
    phase_gauge("rules")->Set(us(t.rules_s));
    phase_gauge("freq")->Set(us(t.freq_s));
    phase_gauge("total")->Set(us(t.total_s));
    for (std::size_t i = 0; i < t.rule_period_s.size(); ++i) {
      metrics_
          ->AddGauge("learn_rule_period_duration_us",
                     "co-occurrence mining duration of one update period "
                     "(microseconds, task-local)",
                     {{"period", std::to_string(i)}})
          ->Set(us(t.rule_period_s[i]));
    }
    metrics_
        ->AddGauge("learn_threads", "worker threads used by the learner")
        ->Set(pool != nullptr ? static_cast<std::int64_t>(pool->thread_count())
                              : 1);
    metrics_
        ->AddGauge("learn_history_messages",
                   "historical messages the knowledge base was learned from")
        ->Set(static_cast<std::int64_t>(history.size()));
    metrics_
        ->AddGauge("learn_templates", "templates in the learned set")
        ->Set(static_cast<std::int64_t>(kb.templates.size()));
    metrics_->AddGauge("learn_rules", "rules in the learned base")
        ->Set(static_cast<std::int64_t>(kb.rules.size()));
  }
  return kb;
}

}  // namespace sld::core
