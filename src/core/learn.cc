#include "core/learn.h"

namespace sld::core {

KnowledgeBase OfflineLearner::Learn(
    std::span<const syslog::SyslogRecord> history, const LocationDict& dict,
    RuleEvolution* evolution) const {
  KnowledgeBase kb;
  kb.rule_params = params_.rules;
  kb.temporal_params = params_.temporal;
  kb.history_message_count = history.size();

  // 1. Message templates (§4.1.1).
  TemplateLearner template_learner(params_.templates);
  for (const syslog::SyslogRecord& rec : history) {
    template_learner.Add(rec.code, rec.detail);
  }
  kb.templates = template_learner.Learn();

  // 2. Syslog+ augmentation (template + location per message).
  Augmenter augmenter(&kb.templates, &dict);
  const std::vector<Augmented> augmented = augmenter.AugmentAll(history);

  // 3. Temporal patterns (§4.1.3): per-template priors, optional α/β tune.
  kb.temporal_priors = MineTemporalPriors(augmented, params_.temporal.smax);
  if (params_.sweep_temporal) {
    TemporalParams tuned = SelectTemporalParams(
        augmented, kb.temporal_priors, params_.alpha_grid,
        params_.beta_grid);
    tuned.smin = params_.temporal.smin;
    tuned.smax = params_.temporal.smax;
    kb.temporal_params = tuned;
  }

  // 4. Association rules (§4.1.4), mined per update period with the
  // adaptive add / conservative-delete policy.
  if (!augmented.empty()) {
    const TimeMs period =
        static_cast<TimeMs>(params_.update_period_days) * kMsPerDay;
    const TimeMs t0 = augmented.front().time;
    std::size_t begin = 0;
    std::size_t prev_size = 0;
    while (begin < augmented.size()) {
      const TimeMs period_end =
          t0 + ((augmented[begin].time - t0) / period + 1) * period;
      std::size_t end = begin;
      while (end < augmented.size() && augmented[end].time < period_end) {
        ++end;
      }
      // A trailing sliver (long-running scenarios spilling past the last
      // full period) is not a representative sample; judging the rule
      // base against it would cause spurious deletions.
      const bool sliver =
          end == augmented.size() && prev_size > 0 &&
          (end - begin) < prev_size / 10;
      if (!sliver) {
        const MiningStats stats = MineCooccurrence(
            std::span<const Augmented>(augmented).subspan(begin,
                                                          end - begin),
            params_.rules.window_ms);
        const RuleBase::UpdateResult update =
            kb.rules.Update(stats, params_.rules);
        if (evolution != nullptr) {
          evolution->total.push_back(kb.rules.size());
          evolution->added.push_back(update.added);
          evolution->deleted.push_back(update.deleted);
        }
      }
      prev_size = end - begin;
      begin = end;
    }
  }

  // 5. Historical signature frequencies (the f_m of §4.2.4).
  for (const Augmented& msg : augmented) {
    ++kb.signature_freq[KnowledgeBase::FreqKey(msg.tmpl, msg.router_key)];
  }
  return kb;
}

}  // namespace sld::core
