#include "core/digest.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/union_find.h"

namespace sld::core {

std::string DigestEvent::Format() const {
  std::string out = FormatTimestamp(start);
  out += '|';
  out += FormatTimestamp(end);
  out += '|';
  out += location_text;
  out += '|';
  out += label;
  out += '|';
  out += std::to_string(messages.size());
  out += " messages";
  return out;
}

double MessageScore(const Augmented& msg, const KnowledgeBase& kb,
                    const LocationDict& dict) {
  // l_m: weight of the message's most significant location level; f_m:
  // historical frequency of the signature on this router (§4.2.4).  The
  // +2 smoothing keeps log(f_m) positive for rare and unseen signatures.
  double level_weight = LevelWeight(LocLevel::kRouter);
  if (msg.HasDetailLocation()) {
    int best = 99;
    for (std::size_t i = 1; i < msg.locs.size(); ++i) {
      best = std::min(best, static_cast<int>(dict.Get(msg.locs[i]).level));
    }
    level_weight = LevelWeight(static_cast<LocLevel>(best));
  }
  const double freq =
      static_cast<double>(kb.FrequencyOf(msg.tmpl, msg.router_key));
  return level_weight / std::log(freq + 2.0);
}

DigestEvent BuildEvent(const std::vector<const Augmented*>& messages,
                       const KnowledgeBase& kb, const LocationDict& dict) {
  DigestEvent ev;
  for (const Augmented* msg : messages) {
    ev.messages.push_back(msg->raw_index);
    ev.start = ev.messages.size() == 1 ? msg->time
                                       : std::min(ev.start, msg->time);
    ev.end = std::max(ev.end, msg->time);
    ev.score += MessageScore(*msg, kb, dict);
    ev.templates.push_back(msg->tmpl);
    ev.router_keys.push_back(msg->router_key);
  }
  std::sort(ev.templates.begin(), ev.templates.end());
  ev.templates.erase(std::unique(ev.templates.begin(), ev.templates.end()),
                     ev.templates.end());
  std::sort(ev.router_keys.begin(), ev.router_keys.end());
  ev.router_keys.erase(
      std::unique(ev.router_keys.begin(), ev.router_keys.end()),
      ev.router_keys.end());
  ev.label = LabelFor(ev.templates, kb.templates,
                      kb.label_rules.empty() ? nullptr : &kb.label_rules);
  ev.location_text = LocationTextFor(messages, dict);
  return ev;
}

DigestResult Digester::Digest(std::span<const syslog::SyslogRecord> stream,
                              const DigestOptions& options) {
  DigestResult result;
  result.message_count = stream.size();
  if (stream.empty()) return result;

  Augmenter augmenter(&kb_->templates, dict_);
  const std::vector<Augmented> msgs = augmenter.AugmentAll(stream);

  UnionFind groups(msgs.size());

  // Pass 1: temporal grouping (same template, same location, periodic).
  {
    TemporalGrouper grouper(kb_->temporal_params, &kb_->temporal_priors);
    std::unordered_map<std::size_t, std::size_t> last_of_group;
    for (std::size_t i = 0; i < msgs.size(); ++i) {
      const std::size_t group = grouper.Feed(msgs[i]);
      const auto [it, inserted] = last_of_group.emplace(group, i);
      if (!inserted) {
        groups.Union(it->second, i);
        it->second = i;
      }
    }
  }

  std::unordered_set<std::uint64_t> active_rules;

  // Pass 2: rule-based grouping (different templates, same router,
  // spatially matched, within the mining window W).
  if (options.use_rules) {
    std::unordered_map<std::uint32_t, std::vector<std::size_t>> per_router;
    for (std::size_t i = 0; i < msgs.size(); ++i) {
      per_router[msgs[i].router_key].push_back(i);
    }
    for (const auto& [router, indices] : per_router) {
      (void)router;
      std::size_t tail = 0;
      for (std::size_t head = 0; head < indices.size(); ++head) {
        const Augmented& mi = msgs[indices[head]];
        while (mi.time - msgs[indices[tail]].time >
               kb_->rule_params.window_ms) {
          ++tail;
        }
        for (std::size_t j = tail; j < head; ++j) {
          const Augmented& mj = msgs[indices[j]];
          if (mi.tmpl == mj.tmpl) continue;
          if (!kb_->rules.Has(mi.tmpl, mj.tmpl)) continue;
          // Spatial match between any location pair of the two messages.
          bool matched = false;
          for (const LocationId la : mi.locs) {
            for (const LocationId lb : mj.locs) {
              if (dict_->SpatiallyMatched(la, lb)) {
                matched = true;
                break;
              }
            }
            if (matched) break;
          }
          // Messages whose router is absent from the configs have no
          // locations; same router key is the best spatial evidence.
          if (mi.locs.empty() && mj.locs.empty()) matched = true;
          if (!matched) continue;
          active_rules.insert(MiningStats::PairKey(mi.tmpl, mj.tmpl));
          groups.Union(indices[head], indices[j]);
        }
      }
    }
  }

  // Pass 3: cross-router grouping (same template, connected locations,
  // almost simultaneous).
  if (options.use_cross_router) {
    std::size_t tail = 0;
    for (std::size_t i = 0; i < msgs.size(); ++i) {
      while (msgs[i].time - msgs[tail].time > options.cross_router_window) {
        ++tail;
      }
      for (std::size_t j = tail; j < i; ++j) {
        if (msgs[i].tmpl != msgs[j].tmpl) continue;
        if (msgs[i].router_key == msgs[j].router_key) continue;
        if (groups.Connected(i, j)) continue;
        bool connected = false;
        for (const LocationId la : msgs[i].locs) {
          for (const LocationId lb : msgs[j].locs) {
            if (dict_->Connected(la, lb)) {
              connected = true;
              break;
            }
          }
          if (connected) break;
        }
        if (connected) groups.Union(i, j);
      }
    }
  }
  result.active_rule_count = active_rules.size();

  // Build events from the union-find partition.
  std::unordered_map<std::size_t, std::vector<const Augmented*>> by_root;
  std::vector<std::size_t> root_order;
  for (std::size_t i = 0; i < msgs.size(); ++i) {
    const std::size_t root = groups.Find(i);
    auto [it, inserted] = by_root.try_emplace(root);
    if (inserted) root_order.push_back(root);
    it->second.push_back(&msgs[i]);
  }
  result.events.reserve(by_root.size());
  for (const std::size_t root : root_order) {
    result.events.push_back(BuildEvent(by_root[root], *kb_, *dict_));
  }

  std::sort(result.events.begin(), result.events.end(),
            [](const DigestEvent& a, const DigestEvent& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.start < b.start;
            });
  return result;
}

}  // namespace sld::core
