#include "core/digest.h"

#include <algorithm>
#include <cmath>

#include "obs/registry.h"
#include "pipeline/stages.h"
#include "pipeline/tracker.h"

namespace sld::core {

std::string DigestEvent::Format() const {
  std::string out = FormatTimestamp(start);
  out += '|';
  out += FormatTimestamp(end);
  out += '|';
  out += location_text;
  out += '|';
  out += label;
  out += '|';
  out += std::to_string(messages.size());
  out += " messages";
  return out;
}

double MessageScore(const Augmented& msg, const KnowledgeBase& kb,
                    const LocationDict& dict) {
  // l_m: weight of the message's most significant location level; f_m:
  // historical frequency of the signature on this router (§4.2.4).  The
  // +2 smoothing keeps log(f_m) positive for rare and unseen signatures.
  double level_weight = LevelWeight(LocLevel::kRouter);
  if (msg.HasDetailLocation()) {
    int best = 99;
    for (std::size_t i = 1; i < msg.locs.size(); ++i) {
      best = std::min(best, static_cast<int>(dict.Get(msg.locs[i]).level));
    }
    level_weight = LevelWeight(static_cast<LocLevel>(best));
  }
  const double freq =
      static_cast<double>(kb.FrequencyOf(msg.tmpl, msg.router_key));
  return level_weight / std::log(freq + 2.0);
}

DigestEvent BuildEvent(const std::vector<const Augmented*>& messages,
                       const KnowledgeBase& kb, const LocationDict& dict) {
  DigestEvent ev;
  for (const Augmented* msg : messages) {
    ev.messages.push_back(msg->raw_index);
    ev.start = ev.messages.size() == 1 ? msg->time
                                       : std::min(ev.start, msg->time);
    ev.end = std::max(ev.end, msg->time);
    ev.score += MessageScore(*msg, kb, dict);
    ev.templates.push_back(msg->tmpl);
    ev.router_keys.push_back(msg->router_key);
  }
  std::sort(ev.templates.begin(), ev.templates.end());
  ev.templates.erase(std::unique(ev.templates.begin(), ev.templates.end()),
                     ev.templates.end());
  std::sort(ev.router_keys.begin(), ev.router_keys.end());
  ev.router_keys.erase(
      std::unique(ev.router_keys.begin(), ev.router_keys.end()),
      ev.router_keys.end());
  ev.label = LabelFor(ev.templates, kb.templates,
                      kb.label_rules.empty() ? nullptr : &kb.label_rules);
  ev.location_text = LocationTextFor(messages, dict);
  return ev;
}

DigestResult Digester::Digest(std::span<const syslog::SyslogRecord> stream,
                              const DigestOptions& options) {
  DigestResult result;
  result.message_count = stream.size();
  if (stream.empty()) return result;

  // Thin driver over the pipeline stage graph with an unbounded idle
  // horizon: no group closes before the final flush, so the partition is
  // the closed-stream partition.  The same stages power the incremental
  // StreamingDigester and the multi-threaded pipeline::ShardedPipeline.
  Augmenter augmenter(&kb_->templates, dict_);
  pipeline::TemporalStage temporal(kb_->temporal_params,
                                   &kb_->temporal_priors);
  pipeline::RuleStage rules(&kb_->rules, kb_->rule_params.window_ms, dict_);
  pipeline::CrossRouterStage cross(dict_, options.cross_router_window);
  pipeline::GroupTracker tracker(kb_, dict_,
                                 pipeline::GroupTracker::kUnboundedMs,
                                 pipeline::GroupTracker::kUnboundedMs);
  if (metrics_ != nullptr) {
    tracker.BindMetrics(metrics_);
    metrics_
        ->AddCounter("digester_messages_total",
                     "records fed to the batch digester")
        ->Inc(stream.size());
  }

  std::vector<pipeline::MergeEdge> edges;
  std::vector<std::uint64_t> fired_rules;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    const Augmented msg = augmenter.Augment(stream[i], i);
    tracker.Add(msg);
    edges.clear();
    fired_rules.clear();
    temporal.Feed(msg, &edges);
    if (options.use_rules) rules.Feed(msg, &edges, &fired_rules);
    tracker.ApplyEdges(edges);
    tracker.NoteRules(fired_rules);
    if (options.use_cross_router) {
      edges.clear();
      cross.Feed(
          msg,
          [&tracker](std::size_t a, std::size_t b) {
            return tracker.SameGroup(a, b);
          },
          &edges);
      tracker.ApplyEdges(edges);
    }
    tracker.Touch(msg.raw_index, msg.time);
  }

  result.events = tracker.Flush();
  result.active_rule_count = tracker.active_rule_count();
  if (metrics_ != nullptr) {
    metrics_
        ->AddCounter("digester_events_total",
                     "events emitted by the batch digester")
        ->Inc(result.events.size());
  }
  std::sort(result.events.begin(), result.events.end(),
            [](const DigestEvent& a, const DigestEvent& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.start < b.start;
            });
  return result;
}

}  // namespace sld::core
