#include "core/templates/drain.h"

#include "common/strings.h"

namespace sld::core {

bool DrainLearner::HasDigit(std::string_view token) noexcept {
  for (const char c : token) {
    if (c >= '0' && c <= '9') return true;
  }
  return false;
}

std::string DrainLearner::LeafKey(
    std::string_view code,
    const std::vector<std::string_view>& tokens) const {
  std::string key(code);
  key += '\x1f';
  key += std::to_string(tokens.size());
  for (int d = 0; d < params_.tree_depth &&
                  d < static_cast<int>(tokens.size());
       ++d) {
    key += '\x1f';
    const std::string_view tok = tokens[static_cast<std::size_t>(d)];
    // Digit-bearing tokens route to the wildcard branch (Drain's rule for
    // keeping parameters out of the tree).
    if (HasDigit(tok)) {
      key += "<*>";
    } else {
      key += tok;
    }
  }
  return key;
}

void DrainLearner::Add(std::string_view code, std::string_view detail) {
  ++messages_;
  std::vector<std::string_view>& tokens = TlsTokenScratch();
  SplitWhitespace(detail, &tokens);
  std::vector<Cluster>& leaf = leaves_[LeafKey(code, tokens)];

  // Most similar cluster: fraction of positions with equal tokens (an
  // existing "*" matches anything).
  Cluster* best = nullptr;
  double best_sim = -1.0;
  for (Cluster& cluster : leaf) {
    std::size_t equal = 0;
    for (std::size_t i = 0; i < tokens.size(); ++i) {
      if (cluster.tokens[i] == kMask || cluster.tokens[i] == tokens[i]) {
        ++equal;
      }
    }
    const double sim = tokens.empty()
                           ? 1.0
                           : static_cast<double>(equal) /
                                 static_cast<double>(tokens.size());
    if (sim > best_sim) {
      best_sim = sim;
      best = &cluster;
    }
  }

  const bool join =
      best != nullptr &&
      (best_sim >= params_.similarity ||
       static_cast<int>(leaf.size()) >= params_.max_children);
  if (join) {
    for (std::size_t i = 0; i < tokens.size(); ++i) {
      if (best->tokens[i] != kMask && best->tokens[i] != tokens[i]) {
        best->tokens[i] = std::string(kMask);
      }
    }
    ++best->count;
    return;
  }
  Cluster cluster;
  cluster.code = std::string(code);
  cluster.tokens.reserve(tokens.size());
  for (const std::string_view tok : tokens) {
    cluster.tokens.emplace_back(tok);
  }
  cluster.count = 1;
  leaf.push_back(std::move(cluster));
  ++clusters_;
}

TemplateSet DrainLearner::Templates() const {
  TemplateSet set;
  for (const auto& [key, leaf] : leaves_) {
    (void)key;
    for (const Cluster& cluster : leaf) {
      set.Add(cluster.code, cluster.tokens);
    }
  }
  return set;
}

}  // namespace sld::core
