#include "core/templates/token_class.h"

#include "common/strings.h"

namespace sld::core {
namespace {

bool IsAlpha(char c) noexcept {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
}

bool IsDigit(char c) noexcept { return c >= '0' && c <= '9'; }

bool IsPositionChar(char c) noexcept {
  return IsDigit(c) || c == '/' || c == '.' || c == ':' || c == '-';
}

}  // namespace

std::string_view StripPunct(std::string_view token) noexcept {
  // Cut a parenthesized suffix: "10.1.2.3(179)" -> "10.1.2.3".
  const std::size_t paren = token.find('(');
  if (paren != std::string_view::npos && paren > 0) {
    token = token.substr(0, paren);
  }
  while (!token.empty() && (token.front() == '(' || token.front() == '[' ||
                            token.front() == '"')) {
    token.remove_prefix(1);
  }
  while (!token.empty()) {
    const char c = token.back();
    if (c == ')' || c == ']' || c == ',' || c == ';' || c == '"') {
      token.remove_suffix(1);
    } else if ((c == '.' || c == ':') && token.size() >= 2 &&
               !IsDigit(token[token.size() - 2])) {
      // Sentence punctuation ("updated.") but not channel suffixes
      // ("0/0:1").  A '.'/':' preceded by a digit stays.
      token.remove_suffix(1);
    } else if ((c == '.' || c == ':') && token.size() == 1) {
      token.remove_suffix(1);
    } else {
      break;
    }
  }
  return token;
}

namespace {

// "1000:1001"-style VRF / route-distinguisher ids: digits on both sides of
// a single colon.  These identify a routing instance — a location in the
// logical hierarchy — and are excluded from signatures like other
// location words.
bool LooksLikeVrfId(std::string_view s) noexcept {
  const std::size_t colon = s.find(':');
  if (colon == std::string_view::npos || colon == 0 ||
      colon + 1 >= s.size()) {
    return false;
  }
  return sld::IsAllDigits(s.substr(0, colon)) &&
         sld::IsAllDigits(s.substr(colon + 1));
}

}  // namespace

bool LooksLikeLocationToken(std::string_view s) noexcept {
  if (s.empty()) return false;
  if (LooksLikeIpv4(s)) return true;
  if (LooksLikeIfPosition(s)) return true;
  if (LooksLikeVrfId(s)) return true;
  // Interface-style name: >= 2 letters, then a position with >= 1 digit
  // and >= 1 separator ("Serial1/0.10:0", "lag-1" — but not "MD5"/"vty0",
  // which are ordinary words that happen to end in digits).
  std::size_t i = 0;
  while (i < s.size() && IsAlpha(s[i])) ++i;
  if (i < 2 || i == s.size()) return false;
  bool any_digit = false;
  bool any_separator = false;
  for (std::size_t j = i; j < s.size(); ++j) {
    if (!IsPositionChar(s[j])) return false;
    any_digit = any_digit || IsDigit(s[j]);
    any_separator = any_separator || !IsDigit(s[j]);
  }
  return any_digit && any_separator;
}

}  // namespace sld::core
