#include "core/templates/template.h"

#include "common/strings.h"

namespace sld::core {

std::string Template::Canonical() const {
  std::string out = code;
  for (const std::string& tok : tokens) {
    out += ' ';
    out += tok;
  }
  return out;
}

bool Template::Matches(
    const std::vector<std::string_view>& detail_tokens) const {
  if (detail_tokens.size() != tokens.size()) return false;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    if (tokens[i] != kMask && tokens[i] != detail_tokens[i]) return false;
  }
  return true;
}

std::size_t Template::FixedCount() const noexcept {
  std::size_t n = 0;
  for (const std::string& tok : tokens) {
    if (tok != kMask) ++n;
  }
  return n;
}

std::string TemplateSet::IndexKey(std::string_view code, std::size_t len) {
  std::string key(code);
  key += '\x1f';
  key += std::to_string(len);
  return key;
}

TemplateId TemplateSet::Add(std::string code,
                            std::vector<std::string> tokens) {
  Template probe;
  probe.code = code;
  probe.tokens = tokens;
  const std::string canonical = probe.Canonical();
  const auto it = by_canonical_.find(canonical);
  if (it != by_canonical_.end()) return it->second;
  return AddUnchecked(std::move(code), std::move(tokens));
}

TemplateId TemplateSet::AddUnchecked(std::string code,
                                     std::vector<std::string> tokens) {
  Template tmpl;
  tmpl.id = static_cast<TemplateId>(templates_.size());
  tmpl.code = std::move(code);
  tmpl.tokens = std::move(tokens);
  index_[IndexKey(tmpl.code, tmpl.tokens.size())].push_back(tmpl.id);
  by_canonical_.emplace(tmpl.Canonical(), tmpl.id);
  templates_.push_back(std::move(tmpl));
  return templates_.back().id;
}

std::optional<TemplateId> TemplateSet::Match(std::string_view code,
                                             std::string_view detail) const {
  const auto tokens = SplitWhitespace(detail);
  const auto it = index_.find(IndexKey(code, tokens.size()));
  if (it == index_.end()) return std::nullopt;
  const Template* best = nullptr;
  for (const TemplateId id : it->second) {
    const Template& tmpl = templates_[id];
    if (!tmpl.Matches(tokens)) continue;
    if (best == nullptr || tmpl.FixedCount() > best->FixedCount()) {
      best = &tmpl;
    }
  }
  if (best == nullptr) return std::nullopt;
  return best->id;
}

TemplateId TemplateSet::MatchOrFallback(std::string_view code,
                                        std::string_view detail) {
  if (const auto id = Match(code, detail)) return *id;
  const std::vector<std::string_view> tokens = SplitWhitespace(detail);
  std::vector<std::string> masked(tokens.size(), std::string(kMask));
  return Add(std::string(code), std::move(masked));
}

std::string TemplateSet::Serialize() const {
  std::string out;
  for (const Template& tmpl : templates_) {
    out += "T ";
    out += tmpl.code;
    out += '\t';
    bool first = true;
    for (const std::string& tok : tmpl.tokens) {
      if (!first) out += ' ';
      out += tok;
      first = false;
    }
    out += '\n';
  }
  return out;
}

TemplateSet TemplateSet::Deserialize(std::string_view text) {
  TemplateSet set;
  for (const std::string_view line : SplitChar(text, '\n')) {
    if (!line.starts_with("T ")) continue;
    const std::size_t tab = line.find('\t');
    if (tab == std::string_view::npos) continue;
    std::string code(line.substr(2, tab - 2));
    std::vector<std::string> tokens;
    for (const std::string_view tok :
         SplitWhitespace(line.substr(tab + 1))) {
      tokens.emplace_back(tok);
    }
    set.Add(std::move(code), std::move(tokens));
  }
  return set;
}

}  // namespace sld::core
