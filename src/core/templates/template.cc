#include "core/templates/template.h"

#include "common/strings.h"

namespace sld::core {

namespace {

// The canonical comparable form of a (code, tokens) pair; shared by
// Template::Canonical and TemplateSet::Add so the probe-side key is built
// exactly once per insertion.
std::string CanonicalOf(std::string_view code,
                        std::span<const std::string> tokens) {
  std::string out(code);
  for (const std::string& tok : tokens) {
    out += ' ';
    out += tok;
  }
  return out;
}

}  // namespace

std::string Template::Canonical() const { return CanonicalOf(code, tokens); }

bool Template::Matches(
    std::span<const std::string_view> detail_tokens) const {
  if (detail_tokens.size() != tokens.size()) return false;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    if (tokens[i] != kMask && tokens[i] != detail_tokens[i]) return false;
  }
  return true;
}

void Template::RecomputeFixedCount() noexcept {
  fixed_count = 0;
  for (const std::string& tok : tokens) {
    if (tok != kMask) ++fixed_count;
  }
}

TemplateId TemplateSet::Add(std::string code,
                            std::vector<std::string> tokens) {
  std::string canonical = CanonicalOf(code, tokens);
  const auto it = by_canonical_.find(canonical);
  if (it != by_canonical_.end()) return it->second;
  return AddUnchecked(std::move(code), std::move(tokens),
                      std::move(canonical));
}

TemplateId TemplateSet::AddUnchecked(std::string code,
                                     std::vector<std::string> tokens,
                                     std::string canonical) {
  Template tmpl;
  tmpl.id = static_cast<TemplateId>(templates_.size());
  tmpl.code = std::move(code);
  tmpl.tokens = std::move(tokens);
  tmpl.RecomputeFixedCount();
  index_[IndexKey(codes_.Intern(tmpl.code), tmpl.tokens.size())].push_back(
      tmpl.id);
  by_canonical_.emplace(std::move(canonical), tmpl.id);
  templates_.push_back(std::move(tmpl));
  ++epoch_;
  return templates_.back().id;
}

std::optional<TemplateId> TemplateSet::Match(std::string_view code,
                                             std::string_view detail) const {
  std::vector<std::string_view>& tokens = TlsTokenScratch();
  SplitWhitespace(detail, &tokens);
  return Match(code, tokens);
}

std::optional<TemplateId> TemplateSet::Match(
    std::string_view code,
    std::span<const std::string_view> detail_tokens) const {
  const auto code_id = codes_.Lookup(code);
  if (!code_id) return std::nullopt;
  const auto it = index_.find(IndexKey(*code_id, detail_tokens.size()));
  if (it == index_.end()) return std::nullopt;
  const Template* best = nullptr;
  for (const TemplateId id : it->second) {
    const Template& tmpl = templates_[id];
    if (!tmpl.Matches(detail_tokens)) continue;
    if (best == nullptr || tmpl.fixed_count > best->fixed_count) {
      best = &tmpl;
    }
  }
  if (best == nullptr) return std::nullopt;
  return best->id;
}

TemplateId TemplateSet::MatchOrFallback(std::string_view code,
                                        std::string_view detail) {
  std::vector<std::string_view> scratch;
  return MatchOrFallback(code, detail, &scratch);
}

TemplateId TemplateSet::MatchOrFallback(
    std::string_view code, std::string_view detail,
    std::vector<std::string_view>* scratch) {
  SplitWhitespace(detail, scratch);
  if (const auto id = Match(code, *scratch)) return *id;
  std::vector<std::string> masked(scratch->size(), std::string(kMask));
  return Add(std::string(code), std::move(masked));
}

std::string TemplateSet::Serialize() const {
  std::string out;
  for (const Template& tmpl : templates_) {
    out += "T ";
    out += tmpl.code;
    out += '\t';
    bool first = true;
    for (const std::string& tok : tmpl.tokens) {
      if (!first) out += ' ';
      out += tok;
      first = false;
    }
    out += '\n';
  }
  return out;
}

TemplateSet TemplateSet::Deserialize(std::string_view text) {
  TemplateSet set;
  for (const std::string_view line : SplitChar(text, '\n')) {
    if (!line.starts_with("T ")) continue;
    const std::size_t tab = line.find('\t');
    if (tab == std::string_view::npos) continue;
    std::string code(line.substr(2, tab - 2));
    std::vector<std::string> tokens;
    for (const std::string_view tok :
         SplitWhitespace(line.substr(tab + 1))) {
      tokens.emplace_back(tok);
    }
    set.Add(std::move(code), std::move(tokens));
  }
  return set;
}

}  // namespace sld::core
