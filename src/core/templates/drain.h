// A Drain-style baseline template miner (He et al., ICWS 2017).
//
// Drain is the de-facto modern baseline for log template mining (Drain3,
// logpai).  It is *online*: a fixed-depth prefix tree routes each message
// — level 1 by token count, the next `tree_depth` levels by leading
// tokens (tokens containing digits route to a wildcard branch) — to a
// list of clusters; the message joins the most similar cluster (token-
// equality ratio >= `similarity`) and positions that disagree become "*",
// or founds a new cluster.
//
// We implement it for the §5.2.1 comparison (`bench_baseline_drain`):
// unlike the paper's learner it has no notion of location words, no
// sample-size masking cap, and no sub-type tree semantics — exactly the
// trade-offs the comparison surfaces.
#pragma once

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/templates/template.h"

namespace sld::core {

struct DrainParams {
  int tree_depth = 2;        // leading tokens used for routing
  double similarity = 0.5;   // join threshold (fraction of equal tokens)
  int max_children = 100;    // clusters per leaf before forced join
};

class DrainLearner {
 public:
  explicit DrainLearner(DrainParams params = {}) : params_(params) {}

  // Feeds one message (online).
  void Add(std::string_view code, std::string_view detail);

  // Extracts the current clusters as a TemplateSet (code + masked detail),
  // comparable with TemplateLearner's output and the simulator's ground
  // truth.
  TemplateSet Templates() const;

  std::size_t cluster_count() const noexcept { return clusters_; }
  std::size_t message_count() const noexcept { return messages_; }

 private:
  struct Cluster {
    std::string code;
    std::vector<std::string> tokens;  // "*" where positions disagreed
    std::size_t count = 0;
  };

  static bool HasDigit(std::string_view token) noexcept;
  std::string LeafKey(std::string_view code,
                      const std::vector<std::string_view>& tokens) const;

  DrainParams params_;
  std::unordered_map<std::string, std::vector<Cluster>> leaves_;
  std::size_t clusters_ = 0;
  std::size_t messages_ = 0;
};

}  // namespace sld::core
