// Token classification shared by the template learner and the location
// extractor.
//
// Syslog detail text attaches punctuation to tokens ("Serial1/0.10:0,",
// "(10.1.2.3)"); stripping it is the first step of both recognizing a
// location word (which the learner must exclude from signatures, §3.1)
// and looking a location up in the dictionary.
#pragma once

#include <string_view>

namespace sld::core {

// Removes surrounding punctuation: leading "([" and trailing ")],.;:"
// (a trailing ':' is stripped only when it is not part of a channel
// position like "0/0:1").  Also cuts a "(...)" suffix, so
// "10.1.2.3(179)" -> "10.1.2.3".
std::string_view StripPunct(std::string_view token) noexcept;

// True when the (stripped) token denotes a specific location:
//  - a dotted-quad IPv4 address,
//  - a bare position like "1/1/1" or "2/0.10:0",
//  - an interface-style name: >= 2 leading letters followed by a position
//    ("Serial1/0.10:0", "GigabitEthernet0/1/0", "Multilink3", "lag-1").
// Such tokens are excluded from message signatures by construction.
bool LooksLikeLocationToken(std::string_view stripped) noexcept;

}  // namespace sld::core
