#include "core/templates/learner.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/strings.h"
#include "core/templates/token_class.h"

namespace sld::core {

void TemplateLearner::Add(std::string_view code, std::string_view detail) {
  std::vector<std::string_view>& tokens = TlsTokenScratch();
  SplitWhitespace(detail, &tokens);
  std::vector<TokenId> ids;
  ids.reserve(tokens.size());
  for (const std::string_view tok : tokens) {
    ids.push_back(interner_.Intern(tok));
  }
  types_[std::string(code)].messages.push_back(std::move(ids));
  ++message_count_;
}

bool TemplateLearner::IsLocationToken(TokenId id) const {
  if (location_cache_.size() <= id) {
    location_cache_.resize(interner_.size(), -1);
  }
  signed char& slot = location_cache_[id];
  if (slot < 0) {
    slot = LooksLikeLocationToken(StripPunct(interner_.Get(id))) ? 1 : 0;
  }
  return slot == 1;
}

void TemplateLearner::FillLocationCache() const {
  location_cache_.resize(interner_.size(), -1);
  for (TokenId id = 0; id < interner_.size(); ++id) {
    signed char& slot = location_cache_[id];
    if (slot < 0) {
      slot = LooksLikeLocationToken(StripPunct(interner_.Get(id))) ? 1 : 0;
    }
  }
}

TemplateSet TemplateLearner::Learn(ThreadPool* pool) const {
  // Shard list in the deterministic merge order: codes sorted, then token
  // count ascending (templates never straddle lengths, so the sub-type
  // trees are independent per shard).
  std::map<std::string_view, const TypeData*> ordered;
  for (const auto& [code, data] : types_) ordered.emplace(code, &data);
  struct Shard {
    std::string_view code;
    std::vector<const std::vector<TokenId>*> msgs;
  };
  std::vector<Shard> shards;
  for (const auto& [code, data] : ordered) {
    std::map<std::size_t, std::vector<const std::vector<TokenId>*>> by_len;
    for (const std::vector<TokenId>& msg : data->messages) {
      by_len[msg.size()].push_back(&msg);
    }
    for (auto& [len, msgs] : by_len) {
      (void)len;
      shards.push_back(Shard{code, std::move(msgs)});
    }
  }

  // The shards only read the interner and the location cache, so fill
  // the cache up front; after this the whole learner is const-shared.
  FillLocationCache();

  // Learn every shard into its own emission list (chunk 1: shard costs
  // are very uneven — one chatty code can dominate an entire shard).
  std::vector<ShardEmits> emitted(shards.size());
  ParallelFor(
      pool, shards.size(),
      [&](std::size_t i, std::size_t) {
        LearnGroup(shards[i].msgs, emitted[i]);
      },
      /*chunk=*/1);

  // Merge in shard order: ids come out exactly as the serial learner
  // assigned them.
  TemplateSet out;
  for (std::size_t i = 0; i < shards.size(); ++i) {
    for (std::vector<std::string>& tokens : emitted[i]) {
      out.Add(std::string(shards[i].code), std::move(tokens));
    }
  }
  return out;
}

void TemplateLearner::LearnGroup(
    const std::vector<const std::vector<TokenId>*>& msgs,
    ShardEmits& out) const {
  if (msgs.empty()) return;
  std::vector<TokenId> shape(msgs.front()->size(), kOpen);
  Split(msgs, shape, out);
}

void TemplateLearner::Split(
    const std::vector<const std::vector<TokenId>*>& msgs,
    std::vector<TokenId>& shape, ShardEmits& out) const {
  const std::size_t len = shape.size();
  // Effective branch cap: the paper's k, tightened by sample size — "there
  // would be many more messages associated with each sub type" (§4.1.1),
  // so a node of n messages may not split into more than ~sqrt(n)
  // children; with scarce data a varied position masks instead.
  const std::size_t cap = std::min(
      static_cast<std::size_t>(params_.max_branch),
      static_cast<std::size_t>(
          std::ceil(std::sqrt(static_cast<double>(msgs.size())))));

  // Examine every undecided position: count distinct values (capped) and
  // how many of them are location words.  Masking is NOT committed here:
  // a position that looks variable in a heterogeneous parent may become
  // constant inside a child, so variable positions stay open and are only
  // masked when a leaf is emitted.
  std::size_t split_pos = len;  // best splittable position
  std::size_t split_card = cap + 1;
  for (std::size_t p = 0; p < len; ++p) {
    if (shape[p] != kOpen) continue;
    std::vector<TokenId> distinct;
    bool overflow = false;
    for (const auto* msg : msgs) {
      const TokenId id = (*msg)[p];
      if (std::find(distinct.begin(), distinct.end(), id) ==
          distinct.end()) {
        distinct.push_back(id);
        if (distinct.size() > cap) {
          overflow = true;
          break;
        }
      }
    }
    std::size_t location_values = 0;
    for (const TokenId id : distinct) {
      if (IsLocationToken(id)) ++location_values;
    }
    // Location words are excluded from signatures (§3.1): the position is
    // neither fixed as a constant nor split on, so it masks at the leaf.
    const bool location_pos =
        !distinct.empty() &&
        static_cast<double>(location_values) >=
            params_.location_fraction * static_cast<double>(distinct.size());
    if (location_pos || overflow) continue;
    if (distinct.size() == 1) {
      shape[p] = distinct.front();  // constant word
    } else if (distinct.size() < split_card) {
      split_card = distinct.size();
      split_pos = p;
    }
  }

  if (split_pos == len) {
    // No splittable position left: emit this leaf as a template; every
    // still-open position is a variable and masks to "*".
    std::vector<std::string> tokens;
    tokens.reserve(len);
    for (const TokenId id : shape) {
      tokens.emplace_back(id == kMasked || id == kOpen
                              ? std::string(kMask)
                              : std::string(interner_.Get(id)));
    }
    out.push_back(std::move(tokens));
    return;
  }

  // Split: one child per distinct value at the chosen position (the
  // "most frequent word combination first" of the paper's BFS, realized
  // as the most concentrated position).
  std::map<TokenId, std::vector<const std::vector<TokenId>*>> children;
  for (const auto* msg : msgs) children[(*msg)[split_pos]].push_back(msg);
  // Undo constant fixing for positions that must be re-examined per child
  // is unnecessary: constants stay constant in subsets; open positions
  // stay open and are re-evaluated recursively.
  for (auto& [value, child_msgs] : children) {
    std::vector<TokenId> child_shape = shape;
    child_shape[split_pos] = value;
    Split(child_msgs, child_shape, out);
  }
}

}  // namespace sld::core
