// Message templates: the learned "type + sub type" signatures of §4.1.1.
//
// A template is an error code plus the detail text's token sequence with
// variable tokens masked as "*".  Its canonical string form
// ("BGP-5-ADJCHANGE neighbor * vpn vrf * Down Interface flap") is the unit
// the rest of the system reasons about: temporal patterns, association
// rules and event labels are all keyed on template ids.
//
// Matching is the first thing every online message hits, so the lookup
// path is built to be allocation-free in steady state: the candidate index
// is keyed by a (interned-code, token-count) integer pair rather than a
// per-message key string, token counts of fixed positions are cached at
// Add time, and callers can pass pre-split tokens through a reusable
// scratch vector instead of tokenizing per probe.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/interner.h"

namespace sld::core {

using TemplateId = std::uint32_t;
inline constexpr TemplateId kNoTemplate = 0xffffffffu;

// The masked-token marker.
inline constexpr std::string_view kMask = "*";

struct Template {
  TemplateId id = kNoTemplate;
  std::string code;                 // message type / error code
  std::vector<std::string> tokens;  // detail tokens; kMask for variables
  // Cached number of non-masked positions (the match tie-break toward the
  // most specific template).  TemplateSet maintains it; call
  // RecomputeFixedCount() after mutating `tokens` by hand.
  std::size_t fixed_count = 0;

  // "code tok tok * tok" — the canonical comparable form.
  std::string Canonical() const;

  // True when `detail_tokens` (whitespace-split detail text) matches this
  // template: same length, equal at every non-masked position.
  bool Matches(std::span<const std::string_view> detail_tokens) const;

  // Number of non-masked positions (cached; see `fixed_count`).
  std::size_t FixedCount() const noexcept { return fixed_count; }
  void RecomputeFixedCount() noexcept;
};

// An immutable collection of learned templates with an online matcher.
class TemplateSet {
 public:
  TemplateSet() = default;

  // Adds a template (id assigned); returns its id.  Duplicate canonical
  // forms return the existing id.
  TemplateId Add(std::string code, std::vector<std::string> tokens);

  // Matches a raw message to the most specific learned template, or
  // nullopt when no learned template fits.
  std::optional<TemplateId> Match(std::string_view code,
                                  std::string_view detail) const;

  // Pre-split form: `detail_tokens` is the whitespace split of the detail
  // text.  Allocation-free — one string_view hash for the code, one
  // integer hash for the (code, token-count) bucket.
  std::optional<TemplateId> Match(
      std::string_view code,
      std::span<const std::string_view> detail_tokens) const;

  // Matches like Match(), but unmatched messages are assigned a catch-all
  // template "<code> <len> tokens, all masked" that is created on demand.
  // This keeps the online pipeline total: every message gets a template id,
  // as the paper's online Signature Matching stage requires.
  TemplateId MatchOrFallback(std::string_view code, std::string_view detail);

  // Scratch form: tokenizes `detail` once into the caller-owned `scratch`
  // (cleared first) and reuses the split for both the match and the masked
  // fallback, so steady-state callers neither tokenize twice nor allocate
  // a token vector per message.
  TemplateId MatchOrFallback(std::string_view code, std::string_view detail,
                             std::vector<std::string_view>* scratch);

  // Bumped on every structural insertion (a new canonical form).  Memo
  // caches layered above the set version their entries against it so a
  // catch-all Add invalidates them.
  std::uint64_t epoch() const noexcept { return epoch_; }

  const Template& Get(TemplateId id) const { return templates_.at(id); }
  std::size_t size() const noexcept { return templates_.size(); }
  const std::vector<Template>& All() const noexcept { return templates_; }

  // Serialization: one template per line ("T <code>\t<tok> <tok> ...").
  std::string Serialize() const;
  static TemplateSet Deserialize(std::string_view text);

 private:
  TemplateId AddUnchecked(std::string code, std::vector<std::string> tokens,
                          std::string canonical);

  // (interned code id, token count) -> one integer bucket key.
  static std::uint64_t IndexKey(StringInterner::Id code_id,
                                std::size_t len) noexcept {
    return (static_cast<std::uint64_t>(code_id) << 32) |
           (len & 0xffffffffull);
  }

  std::vector<Template> templates_;
  // Error codes interned to dense ids: the per-message index probe is a
  // transparent string_view lookup (no key string is ever built).
  StringInterner codes_;
  // (code, token-count) -> candidate template ids, for O(candidates) match.
  std::unordered_map<std::uint64_t, std::vector<TemplateId>> index_;
  std::unordered_map<std::string, TemplateId> by_canonical_;
  std::uint64_t epoch_ = 0;
};

}  // namespace sld::core
