// Message templates: the learned "type + sub type" signatures of §4.1.1.
//
// A template is an error code plus the detail text's token sequence with
// variable tokens masked as "*".  Its canonical string form
// ("BGP-5-ADJCHANGE neighbor * vpn vrf * Down Interface flap") is the unit
// the rest of the system reasons about: temporal patterns, association
// rules and event labels are all keyed on template ids.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace sld::core {

using TemplateId = std::uint32_t;
inline constexpr TemplateId kNoTemplate = 0xffffffffu;

// The masked-token marker.
inline constexpr std::string_view kMask = "*";

struct Template {
  TemplateId id = kNoTemplate;
  std::string code;                 // message type / error code
  std::vector<std::string> tokens;  // detail tokens; kMask for variables

  // "code tok tok * tok" — the canonical comparable form.
  std::string Canonical() const;

  // True when `detail_tokens` (whitespace-split detail text) matches this
  // template: same length, equal at every non-masked position.
  bool Matches(const std::vector<std::string_view>& detail_tokens) const;

  // Number of non-masked positions (used to break ties toward the most
  // specific template).
  std::size_t FixedCount() const noexcept;
};

// An immutable collection of learned templates with an online matcher.
class TemplateSet {
 public:
  TemplateSet() = default;

  // Adds a template (id assigned); returns its id.  Duplicate canonical
  // forms return the existing id.
  TemplateId Add(std::string code, std::vector<std::string> tokens);

  // Matches a raw message to the most specific learned template, or
  // nullopt when no learned template fits.
  std::optional<TemplateId> Match(std::string_view code,
                                  std::string_view detail) const;

  // Matches like Match(), but unmatched messages are assigned a catch-all
  // template "<code> <len> tokens, all masked" that is created on demand.
  // This keeps the online pipeline total: every message gets a template id,
  // as the paper's online Signature Matching stage requires.
  TemplateId MatchOrFallback(std::string_view code, std::string_view detail);

  const Template& Get(TemplateId id) const { return templates_.at(id); }
  std::size_t size() const noexcept { return templates_.size(); }
  const std::vector<Template>& All() const noexcept { return templates_; }

  // Serialization: one template per line ("T <code>\t<tok> <tok> ...").
  std::string Serialize() const;
  static TemplateSet Deserialize(std::string_view text);

 private:
  TemplateId AddUnchecked(std::string code, std::vector<std::string> tokens);

  std::vector<Template> templates_;
  // (code, token-count) -> candidate template ids, for O(candidates) match.
  std::unordered_map<std::string, std::vector<TemplateId>> index_;
  std::unordered_map<std::string, TemplateId> by_canonical_;

  static std::string IndexKey(std::string_view code, std::size_t len);
};

}  // namespace sld::core
