// Offline template learning (§4.1.1, Fig. 2).
//
// For each message type (error code), messages are decomposed into
// whitespace-separated words and organized into a sub-type tree:
//  - words denoting specific locations are excluded from signatures,
//  - a word position taking more than `max_branch` (the paper's k = 10)
//    distinct values is considered variable and masked,
//  - a position with a small set of distinct values splits the node into
//    one child per value (the "most frequent word combination" step, with
//    the paper's pruning rule folded in: a split that would create more
//    than k children is masked instead),
//  - every root-to-leaf path becomes one template.
//
// The paper's stated caveat applies here too: a variable position with too
// few observed values (e.g. a protocol enabled on one interface type only)
// is learned as a constant or a small set of sub-types.  §5.2.1 measures
// exactly how often that happens against ground truth.
#pragma once

#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/interner.h"
#include "common/thread_pool.h"
#include "core/templates/template.h"

namespace sld::core {

struct TemplateLearnerParams {
  // k: maximum children of a node; positions with more distinct values are
  // masked.  The paper uses 10.
  int max_branch = 10;
  // A position is forcibly masked when at least this fraction of its
  // distinct values are location-like words.
  double location_fraction = 0.5;
};

class TemplateLearner {
 public:
  explicit TemplateLearner(TemplateLearnerParams params = {})
      : params_(params) {}

  // Feeds one historical message.
  void Add(std::string_view code, std::string_view detail);

  // Number of messages fed so far.
  std::size_t message_count() const noexcept { return message_count_; }

  // Builds the template set from everything fed so far.  The sub-type
  // trees are independent per (code, token-count) shard, so a non-null
  // pool learns shards concurrently; the shards are merged in the fixed
  // (code ascending, token count ascending) order either way, so the
  // resulting TemplateSet — ids included — is identical at any thread
  // count.
  TemplateSet Learn(ThreadPool* pool = nullptr) const;

 private:
  using TokenId = StringInterner::Id;

  struct TypeData {
    // Messages of this code, each a token-id sequence.
    std::vector<std::vector<TokenId>> messages;
  };

  // Token sequences of the templates one shard emits, in DFS emission
  // order (the order the pre-shard serial learner added them).
  using ShardEmits = std::vector<std::vector<std::string>>;

  void LearnGroup(const std::vector<const std::vector<TokenId>*>& msgs,
                  ShardEmits& out) const;
  void Split(const std::vector<const std::vector<TokenId>*>& msgs,
             std::vector<TokenId>& shape, ShardEmits& out) const;
  bool IsLocationToken(TokenId id) const;
  // Classifies every interned token up front so the parallel shards read
  // location_cache_ without writing it.
  void FillLocationCache() const;

  TemplateLearnerParams params_;
  StringInterner interner_;
  // Sentinel token ids used in `shape` during tree construction.
  static constexpr TokenId kOpen = 0xfffffffeu;   // position undecided
  static constexpr TokenId kMasked = 0xffffffffu;
  std::unordered_map<std::string, TypeData> types_;
  mutable std::vector<signed char> location_cache_;  // -1 unknown, 0/1
  std::size_t message_count_ = 0;
};

}  // namespace sld::core
