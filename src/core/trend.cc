#include "core/trend.h"

#include <algorithm>
#include <cmath>

namespace sld::core {
namespace {

double Mean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  double sum = 0;
  for (const double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

}  // namespace

std::vector<DailySeries> TemplateDailyCounts(
    std::span<const Augmented> stream, const TemplateSet& templates,
    TimeMs epoch_ms, int num_days) {
  std::map<TemplateId, std::vector<double>> counts;
  for (const Augmented& msg : stream) {
    const TimeMs offset = msg.time - epoch_ms;
    if (offset < 0) continue;
    const int day = static_cast<int>(offset / kMsPerDay);
    if (day >= num_days) continue;
    auto& series = counts[msg.tmpl];
    if (series.empty()) series.assign(static_cast<std::size_t>(num_days), 0);
    series[static_cast<std::size_t>(day)] += 1;
  }
  std::vector<DailySeries> out;
  out.reserve(counts.size());
  for (auto& [tmpl, values] : counts) {
    DailySeries series;
    series.name = templates.Get(tmpl).Canonical();
    series.epoch_ms = epoch_ms;
    series.counts = std::move(values);
    out.push_back(std::move(series));
  }
  return out;
}

std::vector<DailySeries> EventDailyCounts(const DigestResult& result,
                                          TimeMs epoch_ms, int num_days) {
  std::map<std::string, std::vector<double>> counts;
  for (const DigestEvent& ev : result.events) {
    const TimeMs offset = ev.start - epoch_ms;
    if (offset < 0) continue;
    const int day = static_cast<int>(offset / kMsPerDay);
    if (day >= num_days) continue;
    auto& series = counts[ev.label];
    if (series.empty()) series.assign(static_cast<std::size_t>(num_days), 0);
    series[static_cast<std::size_t>(day)] += 1;
  }
  std::vector<DailySeries> out;
  out.reserve(counts.size());
  for (auto& [label, values] : counts) {
    DailySeries series;
    series.name = label;
    series.epoch_ms = epoch_ms;
    series.counts = std::move(values);
    out.push_back(std::move(series));
  }
  return out;
}

std::vector<LevelShift> DetectLevelShifts(
    std::span<const DailySeries> series, const LevelShiftParams& params) {
  std::vector<LevelShift> shifts;
  const int w = params.window_days;
  for (const DailySeries& s : series) {
    const int days = static_cast<int>(s.counts.size());
    LevelShift best;
    double best_strength = 0.0;
    for (int day = w; day + w <= days; ++day) {
      const double before = Mean(std::span<const double>(
          s.counts.data() + day - w, static_cast<std::size_t>(w)));
      const double after = Mean(std::span<const double>(
          s.counts.data() + day, static_cast<std::size_t>(w)));
      if (std::max(before, after) < params.min_mean) continue;
      // Ratio with +1 smoothing so activations from zero register.
      const double up = (after + 1.0) / (before + 1.0);
      const double strength = std::max(up, 1.0 / up);
      if (strength >= params.min_ratio && strength > best_strength) {
        best_strength = strength;
        best.series = s.name;
        best.day = day;
        best.before = before;
        best.after = after;
      }
    }
    if (best_strength > 0.0) shifts.push_back(std::move(best));
  }
  std::sort(shifts.begin(), shifts.end(),
            [](const LevelShift& a, const LevelShift& b) {
              const double sa = (a.after + 1) / (a.before + 1);
              const double sb = (b.after + 1) / (b.before + 1);
              return std::max(sa, 1 / sa) > std::max(sb, 1 / sb);
            });
  return shifts;
}

}  // namespace sld::core
