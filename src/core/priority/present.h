// Event labeling and presentation (§4.2.4).
//
// A digest line is "start | end | locations | label | message count".  The
// label is derived from the templates present in the event via a small
// built-in phrasebook (the paper notes that domain experts can name event
// types; these defaults cover the common router subsystems), and the
// location field shows, per router, the most common highest-level location
// the event's messages mention.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "core/augment.h"
#include "core/templates/template.h"

namespace sld::core {

// An expert-supplied naming rule (§4.2.4: "domain experts can certainly
// assign a name for each type of event"): any template whose error code
// contains `code_marker` is labeled `noun` (with down/up/flap suffixes
// when `flappable`).  Custom rules take precedence over the built-ins.
struct LabelRule {
  std::string code_marker;
  std::string noun;
  bool flappable = false;
};

// Human-readable event type from the set of templates in the event, e.g.
// "link flap, line protocol flap" or "BGP adjacency change".
// `custom` rules, when given, are consulted before the built-in
// phrasebook.
std::string LabelFor(const std::vector<TemplateId>& templates,
                     const TemplateSet& set,
                     const std::vector<LabelRule>* custom = nullptr);

// Per-router location summary for the messages of one event.
std::string LocationTextFor(const std::vector<const Augmented*>& messages,
                            const LocationDict& dict);

}  // namespace sld::core
