#include "core/priority/report.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>

namespace sld::core {
namespace {

void Append(std::string& out, const char* fmt, auto... args) {
  char buf[512];
  std::snprintf(buf, sizeof(buf), fmt, args...);
  out += buf;
}

std::string CsvField(const std::string& value) {
  if (value.find_first_of(",\"\n") == std::string::npos) return value;
  std::string quoted = "\"";
  for (const char c : value) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

}  // namespace

std::string RenderReport(const DigestResult& result,
                         const LocationDict& dict,
                         const ReportOptions& options) {
  std::string out;
  Append(out, "network event digest\n====================\n");
  Append(out, "%zu events from %zu messages (compression %.2e, %zu active "
              "rules)\n\n",
         result.events.size(), result.message_count,
         result.CompressionRatio(), result.active_rule_count);

  // Events by type.
  std::map<std::string, std::pair<std::size_t, std::size_t>> by_label;
  for (const DigestEvent& ev : result.events) {
    by_label[ev.label].first += 1;
    by_label[ev.label].second += ev.messages.size();
  }
  std::vector<std::pair<std::size_t, std::string>> labels;
  for (const auto& [label, counts] : by_label) {
    labels.emplace_back(counts.first, label);
  }
  std::sort(labels.rbegin(), labels.rend());
  Append(out, "events by type:\n");
  for (const auto& [count, label] : labels) {
    Append(out, "  %5zu  %-50s (%zu messages)\n", count, label.c_str(),
           by_label[label].second);
  }

  // Top events by priority.
  Append(out, "\ntop %zu events by priority:\n",
         std::min(options.top_events, result.events.size()));
  for (std::size_t i = 0;
       i < result.events.size() && i < options.top_events; ++i) {
    Append(out, "  %3zu. [%8.1f] %s\n", i + 1, result.events[i].score,
           result.events[i].Format().c_str());
  }

  // Busiest routers by events.
  std::map<std::string, std::size_t> events_of;
  for (const DigestEvent& ev : result.events) {
    for (const std::uint32_t key : ev.router_keys) {
      if (key < dict.router_count()) ++events_of[dict.RouterName(key)];
    }
  }
  std::vector<std::pair<std::size_t, std::string>> routers;
  for (const auto& [router, count] : events_of) {
    routers.emplace_back(count, router);
  }
  std::sort(routers.rbegin(), routers.rend());
  Append(out, "\nrouters with most events:\n");
  for (std::size_t i = 0;
       i < routers.size() && i < options.top_routers; ++i) {
    Append(out, "  %5zu  %s\n", routers[i].first,
           routers[i].second.c_str());
  }
  return out;
}

std::string RenderTimeline(const DigestEvent& event,
                           std::span<const syslog::SyslogRecord> stream,
                           std::size_t max_lines) {
  std::vector<const syslog::SyslogRecord*> records;
  for (const std::size_t index : event.messages) {
    if (index < stream.size()) records.push_back(&stream[index]);
  }
  std::sort(records.begin(), records.end(),
            [](const syslog::SyslogRecord* a,
               const syslog::SyslogRecord* b) { return a->time < b->time; });
  std::string out;
  std::set<std::string> seen_codes;
  std::size_t lines = 0;
  for (const syslog::SyslogRecord* rec : records) {
    if (!seen_codes.insert(rec->code).second) continue;
    if (lines++ >= max_lines) {
      out += "  ...\n";
      break;
    }
    Append(out, "  %s %-14s %-40s %.70s\n",
           FormatTimestamp(rec->time).c_str(), rec->router.c_str(),
           rec->code.c_str(), rec->detail.c_str());
  }
  return out;
}

std::string ToCsv(const DigestResult& result) {
  std::string out = "start,end,score,messages,routers,label,locations\n";
  for (const DigestEvent& ev : result.events) {
    out += FormatTimestamp(ev.start);
    out += ',';
    out += FormatTimestamp(ev.end);
    out += ',';
    char score[32];
    std::snprintf(score, sizeof(score), "%.3f", ev.score);
    out += score;
    out += ',';
    out += std::to_string(ev.messages.size());
    out += ',';
    out += std::to_string(ev.router_keys.size());
    out += ',';
    out += CsvField(ev.label);
    out += ',';
    out += CsvField(ev.location_text);
    out += '\n';
  }
  return out;
}

}  // namespace sld::core
