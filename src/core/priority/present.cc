#include "core/priority/present.h"

#include <algorithm>
#include <map>

namespace sld::core {
namespace {

bool Contains(std::string_view hay, std::string_view needle) {
  return hay.find(needle) != std::string_view::npos;
}

bool AnyTokenIs(const Template& tmpl, std::string_view word) {
  for (const std::string& tok : tmpl.tokens) {
    if (tok == word) return true;
  }
  return false;
}

// One subsystem family recognized in error codes.
struct Family {
  std::string_view code_marker;
  std::string_view noun;
  bool flappable;  // "X flap" when both down and up variants are present
};

constexpr Family kFamilies[] = {
    {"LINEPROTO", "line protocol", true},
    {"LINK-", "link", true},
    {"SNMP-WARNING-link", "link", true},
    {"PORT-", "port", true},
    {"CONTROLLER", "controller", true},
    {"BGP", "BGP adjacency", true},
    {"OSPF", "OSPF adjacency", true},
    {"PIM", "PIM neighbor", true},
    {"LAG", "bundle", true},
    {"Multilink", "bundle", true},
    {"MPLS", "LSP", true},
    {"LSP", "LSP", true},
    {"CPU", "CPU threshold", false},
    {"BADAUTH", "TCP bad authentication", false},
    {"authenticationFailure", "authentication failures", false},
    {"AUTHFAIL", "authentication failures", false},
    {"LOGIN", "login failures", false},
    {"Login", "login failures", false},
    {"sap", "SAP status", false},
    {"service", "service status", false},
    {"CONFIG", "configuration change", false},
    {"configurationSaved", "configuration change", false},
    {"ENVMON", "environment alarm", false},
    {"TEMP", "environment alarm", false},
    {"EnvTemp", "environment alarm", false},
    {"fanFailure", "environment alarm", false},
    {"OIR", "card maintenance", false},
    {"SWITCHOVER", "redundancy switchover", false},
    {"cpmSwitchover", "redundancy switchover", false},
    {"card", "card maintenance", false},
    {"DUPLEX", "duplex mismatch", false},
    {"NTP", "time sync", false},
    {"TimeSync", "time sync", false},
};

}  // namespace

std::string LabelFor(const std::vector<TemplateId>& templates,
                     const TemplateSet& set,
                     const std::vector<LabelRule>* custom) {
  struct FamilyState {
    bool down = false;
    bool up = false;
    bool flappable = false;
  };
  // Keep insertion order for a stable, readable label.
  std::vector<std::pair<std::string, FamilyState>> found;
  const auto state_of = [&found](std::string_view noun) -> FamilyState& {
    for (auto& [name, st] : found) {
      if (name == noun) return st;
    }
    found.emplace_back(std::string(noun), FamilyState{});
    return found.back().second;
  };

  for (const TemplateId id : templates) {
    const Template& tmpl = set.Get(id);
    Family expert_match{};
    const Family* match = nullptr;
    if (custom != nullptr) {
      for (const LabelRule& rule : *custom) {
        if (Contains(tmpl.code, rule.code_marker)) {
          expert_match = Family{rule.code_marker, rule.noun,
                                rule.flappable};
          match = &expert_match;
          break;
        }
      }
    }
    if (match == nullptr) {
      for (const Family& family : kFamilies) {
        if (Contains(tmpl.code, family.code_marker)) {
          match = &family;
          break;
        }
      }
    }
    if (match == nullptr) {
      // Fall back to the code facility.
      std::string facility(tmpl.code.substr(0, tmpl.code.find('-')));
      for (char& c : facility) c = static_cast<char>(std::tolower(c));
      state_of(facility + " events");
      continue;
    }
    FamilyState& st = state_of(match->noun);
    st.flappable = st.flappable || match->flappable;
    const bool down = AnyTokenIs(tmpl, "down") || AnyTokenIs(tmpl, "Down") ||
                      AnyTokenIs(tmpl, "DOWN") || AnyTokenIs(tmpl, "lost") ||
                      Contains(tmpl.code, "Down") ||
                      Contains(tmpl.code, "Loss");
    const bool up = AnyTokenIs(tmpl, "up") || AnyTokenIs(tmpl, "Up") ||
                    AnyTokenIs(tmpl, "UP") ||
                    AnyTokenIs(tmpl, "operational") ||
                    Contains(tmpl.code, "linkup") ||
                    Contains(tmpl.code, "lspUp");
    st.down = st.down || down;
    st.up = st.up || (up && !down);
  }

  std::string label;
  for (const auto& [noun, st] : found) {
    if (!label.empty()) label += ", ";
    label += noun;
    if (st.flappable) {
      if (st.down && st.up) {
        label += " flap";
      } else if (st.down) {
        label += " down";
      } else if (st.up) {
        label += " up";
      } else {
        label += " change";
      }
    }
  }
  return label.empty() ? "unclassified" : label;
}

std::string LocationTextFor(const std::vector<const Augmented*>& messages,
                            const LocationDict& dict) {
  // Per router: count detail locations, remembering the most significant
  // (lowest-numbered) level seen.
  struct PerRouter {
    std::map<LocationId, std::size_t> counts;
    int best_level = 99;
  };
  std::map<std::string, PerRouter> routers;  // keyed by router name
  for (const Augmented* msg : messages) {
    if (!msg->router_known || msg->locs.empty()) continue;
    const std::string& rname = dict.RouterName(
        dict.Get(msg->locs.front()).router);
    PerRouter& pr = routers[rname];
    for (std::size_t i = 1; i < msg->locs.size(); ++i) {
      const Location& loc = dict.Get(msg->locs[i]);
      const int level = static_cast<int>(loc.level);
      ++pr.counts[msg->locs[i]];
      pr.best_level = std::min(pr.best_level, level);
    }
    if (msg->locs.size() == 1) pr.best_level = std::min(pr.best_level, 0);
  }

  std::string out;
  std::size_t shown = 0;
  for (const auto& [rname, pr] : routers) {
    if (shown == 4) {
      out += " +" + std::to_string(routers.size() - shown) + " more";
      break;
    }
    if (!out.empty()) out += "; ";
    out += rname;
    // The most common location at the most significant level.
    LocationId best = kNoId;
    std::size_t best_count = 0;
    for (const auto& [loc_id, count] : pr.counts) {
      if (static_cast<int>(dict.Get(loc_id).level) != pr.best_level) {
        continue;
      }
      if (count > best_count) {
        best_count = count;
        best = loc_id;
      }
    }
    if (best != kNoId) {
      out += ' ';
      out += dict.Get(best).name;
    }
    ++shown;
  }
  return out.empty() ? "(unknown routers)" : out;
}

}  // namespace sld::core
