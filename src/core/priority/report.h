// Digest reporting: operator-facing summaries and machine-readable export.
//
// The digest's value is what an operator reads at the top of their day
// (§6.2): how many events of which kinds, where, and which deserve
// attention first.  RenderReport produces that text; ToCsv exports the
// event list for downstream tooling (tickets, dashboards).
#pragma once

#include <string>

#include "core/digest.h"

namespace sld::core {

struct ReportOptions {
  std::size_t top_events = 15;   // rows in the "top events" section
  std::size_t top_routers = 10;  // rows in the per-router section
};

// Human-readable summary: headline counts, events by type, top events by
// priority, busiest routers by event count.
std::string RenderReport(const DigestResult& result,
                         const LocationDict& dict,
                         const ReportOptions& options = {});

// CSV export: header plus one row per event
// (start,end,score,messages,routers,label,locations).  Fields containing
// commas or quotes are quoted per RFC 4180.
std::string ToCsv(const DigestResult& result);

// Incident timeline: the event's raw messages with one line per FIRST
// occurrence of each error code, in time order — the view an operator
// reads to follow an incident's causal chain (§6.1).  `stream` must be
// the record span the digest was produced from.
std::string RenderTimeline(const DigestEvent& event,
                           std::span<const syslog::SyslogRecord> stream,
                           std::size_t max_lines = 20);

}  // namespace sld::core
