#include "core/query.h"

#include <algorithm>

namespace sld::core {

std::vector<const DigestEvent*> FilterEvents(const DigestResult& result,
                                             const LocationDict& dict,
                                             const EventFilter& filter) {
  // Resolve the router name once.
  std::optional<DictRouterId> router;
  if (!filter.router.empty()) {
    router = dict.RouterByName(filter.router);
    if (!router) return {};  // unknown router matches nothing
  }
  std::vector<const DigestEvent*> out;
  for (const DigestEvent& ev : result.events) {
    if (filter.from && ev.end < *filter.from) continue;
    if (filter.to && ev.start > *filter.to) continue;
    if (ev.score < filter.min_score) continue;
    if (ev.messages.size() < filter.min_messages) continue;
    if (!filter.label_contains.empty() &&
        ev.label.find(filter.label_contains) == std::string::npos) {
      continue;
    }
    if (router) {
      const bool involved =
          std::binary_search(ev.router_keys.begin(), ev.router_keys.end(),
                             static_cast<std::uint32_t>(*router));
      if (!involved) continue;
    }
    out.push_back(&ev);
  }
  return out;
}

std::vector<const syslog::SyslogRecord*> EventRecords(
    const DigestEvent& event,
    std::span<const syslog::SyslogRecord> stream) {
  std::vector<const syslog::SyslogRecord*> out;
  out.reserve(event.messages.size());
  for (const std::size_t index : event.messages) {
    if (index < stream.size()) out.push_back(&stream[index]);
  }
  std::sort(out.begin(), out.end(),
            [](const syslog::SyslogRecord* a,
               const syslog::SyslogRecord* b) { return a->time < b->time; });
  return out;
}

}  // namespace sld::core
