#include "core/location/extractor.h"

#include <algorithm>

#include "common/strings.h"
#include "core/templates/token_class.h"

namespace sld::core {

std::vector<LocationId> LocationExtractor::Extract(
    std::string_view router, std::string_view detail) const {
  std::vector<LocationId> out;
  const auto rid = dict_->RouterByName(router);
  if (!rid) return out;
  const auto add = [&out](LocationId id) {
    if (std::find(out.begin(), out.end(), id) == out.end()) {
      out.push_back(id);
    }
  };
  add(dict_->RouterLocation(*rid));

  // Extract() is const and runs concurrently on pool workers, so the
  // tokenization scratch is per-thread rather than a member.
  std::vector<std::string_view>& tokens = TlsTokenScratch();
  SplitWhitespace(detail, &tokens);
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const std::string_view s = StripPunct(tokens[i]);
    if (s.empty()) continue;
    if (LooksLikeIpv4(s)) {
      // A neighbor statement on this router (BGP session endpoint)...
      if (const auto sess = dict_->SessionOnRouter(*rid, s)) add(*sess);
      // ...and/or an address configured somewhere in the network; an
      // unconfigured address still resolves if it falls inside a
      // configured interface subnet (the far end of a point-to-point).
      if (const auto owner = dict_->ByIp(s)) {
        add(*owner);
      } else if (const auto subnet = dict_->ByIpInPrefix(s)) {
        add(*subnet);
      }
      continue;
    }
    // Two-token controller form: "T1 0/3".
    if (s.size() <= 3 && !s.empty() && i + 1 < tokens.size()) {
      const std::string_view pos = StripPunct(tokens[i + 1]);
      if (LooksLikeIfPosition(pos)) {
        std::string name(s);
        name += ' ';
        name += pos;
        if (const auto loc = dict_->NameOnRouter(*rid, name)) {
          add(*loc);
          ++i;
          continue;
        }
      }
    }
    if (const auto loc = dict_->NameOnRouter(*rid, s)) {
      add(*loc);
      continue;
    }
    if (const auto path = dict_->PathByName(s)) {
      add(*path);
      continue;
    }
  }
  return out;
}

}  // namespace sld::core
