// Online location extraction from syslog detail text (§4.1.2).
//
// Location-format patterns (addresses, interface names, port positions)
// are matched in the free text and then *validated against the dictionary*
// — an address that belongs to no configured interface (a scanner, a
// remote host) yields no location, as the paper requires ("naive pattern
// matching is not sufficient...").
#pragma once

#include <string_view>
#include <vector>

#include "core/location/location.h"

namespace sld::core {

class LocationExtractor {
 public:
  explicit LocationExtractor(const LocationDict* dict) : dict_(dict) {}

  // Locations mentioned by a message.  When the originating router is
  // known, its router-level location is always the first element; an
  // unknown router yields an empty result.  Results are deduplicated and
  // dictionary-validated.
  std::vector<LocationId> Extract(std::string_view router,
                                  std::string_view detail) const;

  const LocationDict& dict() const noexcept { return *dict_; }

 private:
  const LocationDict* dict_;
};

}  // namespace sld::core
