#include "core/location/location.h"

#include <algorithm>
#include <array>
#include <map>

#include "common/strings.h"
#include "net/addr.h"

namespace sld::core {
namespace {

bool IsAlpha(char c) noexcept {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
}
bool IsDigit(char c) noexcept { return c >= '0' && c <= '9'; }

// Extracts (slot, port) from an interface/port name: the first two numbers
// after the optional alphabetic prefix ("Serial1/0.10:0" -> 1/0,
// "GigabitEthernet0/1/0" -> 0/1, "2/1/3" -> 2/1).
void ParsePosition(std::string_view name, int& slot, int& port) noexcept {
  slot = -1;
  port = -1;
  std::size_t i = 0;
  while (i < name.size() && IsAlpha(name[i])) ++i;
  int* targets[2] = {&slot, &port};
  int found = 0;
  while (i < name.size() && found < 2) {
    if (IsDigit(name[i])) {
      int value = 0;
      while (i < name.size() && IsDigit(name[i])) {
        value = value * 10 + (name[i] - '0');
        ++i;
      }
      *targets[found++] = value;
    } else {
      ++i;
    }
  }
}

}  // namespace

double LevelWeight(LocLevel level) noexcept {
  // "The value of l_m at a higher level is several (e.g. 10) times that of
  // a lower level" (§4.2.4).  Router-scope messages weigh most.
  switch (level) {
    case LocLevel::kRouter:
      return 100.0;
    case LocLevel::kBundle:
    case LocLevel::kPath:
      return 50.0;
    case LocLevel::kSession:
      return 20.0;
    case LocLevel::kPhysIf:
      return 10.0;
    case LocLevel::kLogicalIf:
      return 5.0;
  }
  return 5.0;
}

std::string LocationDict::Key(DictRouterId router, std::string_view name) {
  std::string key = std::to_string(router);
  key += '\x1f';
  key += name;
  return key;
}

LocationId LocationDict::AddLocation(Location loc) {
  loc.id = static_cast<LocationId>(locations_.size());
  locations_.push_back(std::move(loc));
  return locations_.back().id;
}

LocationDict LocationDict::Build(
    const std::vector<net::ParsedConfig>& configs) {
  LocationDict dict;

  // Pass 1: routers (so cross-references resolve regardless of order).
  for (const net::ParsedConfig& cfg : configs) {
    if (dict.router_index_.count(cfg.hostname) != 0) continue;
    const DictRouterId rid =
        static_cast<DictRouterId>(dict.router_names_.size());
    dict.router_names_.push_back(cfg.hostname);
    dict.router_index_.emplace(cfg.hostname, rid);
    Location loc;
    loc.router = rid;
    loc.level = LocLevel::kRouter;
    loc.name = cfg.hostname;
    dict.router_locations_.push_back(dict.AddLocation(std::move(loc)));
  }

  // Pass 2: everything on each router.  Link claims are resolved after all
  // ports exist.
  struct LinkClaim {
    LocationId local = kNoId;
    std::string peer_router;
    std::string peer_if;
  };
  std::vector<LinkClaim> claims;
  // Port names kept separately: on V2 routers an untagged layer-3
  // interface shares its port's name, and both meanings must stay
  // addressable (ports for link resolution, interfaces for addresses).
  std::unordered_map<std::string, LocationId> port_names;

  for (const net::ParsedConfig& cfg : configs) {
    const DictRouterId rid = dict.router_index_.at(cfg.hostname);

    if (!cfg.loopback_ip.empty()) {
      dict.by_ip_.emplace(cfg.loopback_ip, dict.router_locations_[rid]);
    }

    for (const net::ParsedPort& port : cfg.ports) {
      Location loc;
      loc.router = rid;
      loc.level = LocLevel::kPhysIf;
      ParsePosition(port.name, loc.slot, loc.port);
      loc.name = port.name;
      const LocationId id = dict.AddLocation(std::move(loc));
      dict.names_.emplace(Key(rid, port.name), id);
      port_names.emplace(Key(rid, port.name), id);
      if (!port.peer_router.empty()) {
        claims.push_back({id, port.peer_router, port.peer_if});
      }
    }

    for (const std::string& ctrl : cfg.controllers) {
      Location loc;
      loc.router = rid;
      loc.level = LocLevel::kPhysIf;
      // "T1 0/0": position is in the second word.
      const std::size_t space = ctrl.find(' ');
      if (space != std::string::npos) {
        ParsePosition(std::string_view(ctrl).substr(space + 1), loc.slot,
                      loc.port);
      }
      loc.name = ctrl;
      const LocationId id = dict.AddLocation(std::move(loc));
      dict.names_.emplace(Key(rid, ctrl), id);
    }

    for (const net::ParsedInterface& intf : cfg.interfaces) {
      Location loc;
      loc.router = rid;
      loc.level = LocLevel::kLogicalIf;
      loc.name = intf.name;
      // Owning port: the name up to the first sub-interface separator
      // ("Serial1/0.10:0" -> "Serial1/0"; a V2 untagged interface is the
      // port name itself).
      const std::size_t dot = intf.name.find('.');
      const std::string parent_name = intf.name.substr(0, dot);
      const auto parent = port_names.find(Key(rid, parent_name));
      if (parent != port_names.end()) {
        loc.parent = parent->second;
        loc.slot = dict.locations_[parent->second].slot;
        loc.port = dict.locations_[parent->second].port;
      } else {
        ParsePosition(intf.name, loc.slot, loc.port);
      }
      const LocationId id = dict.AddLocation(std::move(loc));
      // The logical interface is the more specific meaning of the name
      // (V2 untagged interfaces share their port's name).
      dict.names_[Key(rid, intf.name)] = id;
      if (!intf.ip.empty()) {
        dict.by_ip_.emplace(intf.ip, id);
        if (intf.prefix_len < 32) {
          if (const auto parsed = net::Ipv4::Parse(intf.ip)) {
            const net::Ipv4Prefix block(*parsed, intf.prefix_len);
            dict.by_prefix_[intf.prefix_len].emplace(
                block.network().value(), id);
          }
        }
      }
    }

    for (const net::ParsedBundle& bundle : cfg.bundles) {
      Location loc;
      loc.router = rid;
      loc.level = LocLevel::kBundle;
      loc.name = bundle.name;
      for (const std::string& member : bundle.members) {
        int slot = -1;
        int port = -1;
        ParsePosition(member, slot, port);
        if (slot >= 0) loc.bundle_slots.push_back(slot);
      }
      const LocationId id = dict.AddLocation(std::move(loc));
      dict.names_.emplace(Key(rid, bundle.name), id);
    }

    for (const net::ParsedBgpNeighbor& nbr : cfg.bgp_neighbors) {
      Location loc;
      loc.router = rid;
      loc.level = LocLevel::kSession;
      loc.name = "bgp " + nbr.ip + (nbr.vrf.empty() ? "" : " vrf " + nbr.vrf);
      const LocationId id = dict.AddLocation(std::move(loc));
      dict.session_by_key_.emplace(Key(rid, nbr.ip), id);
    }

    for (const net::ParsedPath& path : cfg.paths) {
      DictPath dp;
      dp.name = path.name;
      for (const std::string& hop : path.hops) {
        const auto it = dict.router_index_.find(hop);
        if (it != dict.router_index_.end()) dp.hops.push_back(it->second);
      }
      const std::uint32_t path_idx =
          static_cast<std::uint32_t>(dict.paths_.size());
      dict.paths_.push_back(std::move(dp));
      Location loc;
      loc.router = rid;
      loc.level = LocLevel::kPath;
      loc.name = path.name;
      loc.path = path_idx;
      const LocationId id = dict.AddLocation(std::move(loc));
      dict.path_by_name_.emplace(path.name, id);
    }
  }

  // Resolve link claims: two claims describing the same pair collapse into
  // one link; a one-sided description still yields a link.
  std::map<std::pair<LocationId, LocationId>, std::uint32_t> link_index;
  for (const LinkClaim& claim : claims) {
    const auto rit = dict.router_index_.find(claim.peer_router);
    if (rit == dict.router_index_.end()) continue;
    // Descriptions name the peer's *port*.
    const auto pit = port_names.find(Key(rit->second, claim.peer_if));
    if (pit == port_names.end()) continue;
    const LocationId a = claim.local;
    const LocationId b = pit->second;
    const auto key = std::minmax(a, b);
    const auto [it, inserted] = link_index.emplace(
        std::make_pair(key.first, key.second),
        static_cast<std::uint32_t>(dict.links_.size()));
    if (inserted) {
      DictLink link;
      link.phys_a = key.first;
      link.phys_b = key.second;
      link.router_a = dict.locations_[key.first].router;
      link.router_b = dict.locations_[key.second].router;
      dict.links_.push_back(link);
    }
    dict.locations_[a].link = it->second;
    dict.locations_[b].link = it->second;
  }

  // Logical interfaces inherit their port's link.
  for (Location& loc : dict.locations_) {
    if (loc.level == LocLevel::kLogicalIf && loc.parent != kNoId) {
      loc.link = dict.locations_[loc.parent].link;
    }
  }

  return dict;
}

std::optional<DictRouterId> LocationDict::RouterByName(
    std::string_view name) const {
  const auto it = router_index_.find(std::string(name));
  if (it == router_index_.end()) return std::nullopt;
  return it->second;
}

LocationId LocationDict::RouterLocation(DictRouterId router) const {
  return router_locations_.at(router);
}

std::optional<LocationId> LocationDict::NameOnRouter(
    DictRouterId router, std::string_view name) const {
  const auto it = names_.find(Key(router, name));
  if (it == names_.end()) return std::nullopt;
  return it->second;
}

std::optional<LocationId> LocationDict::ByIp(std::string_view ip) const {
  const auto it = by_ip_.find(std::string(ip));
  if (it == by_ip_.end()) return std::nullopt;
  return it->second;
}

std::optional<LocationId> LocationDict::ByIpInPrefix(
    std::string_view ip) const {
  const auto parsed = net::Ipv4::Parse(ip);
  if (!parsed) return std::nullopt;
  for (const auto& [length, table] : by_prefix_) {  // longest prefix first
    const net::Ipv4Prefix block(*parsed, length);
    const auto it = table.find(block.network().value());
    if (it != table.end()) return it->second;
  }
  return std::nullopt;
}

std::optional<LocationId> LocationDict::PathByName(
    std::string_view name) const {
  const auto it = path_by_name_.find(std::string(name));
  if (it == path_by_name_.end()) return std::nullopt;
  return it->second;
}

std::optional<LocationId> LocationDict::SessionOnRouter(
    DictRouterId router, std::string_view neighbor) const {
  const auto it = session_by_key_.find(Key(router, neighbor));
  if (it == session_by_key_.end()) return std::nullopt;
  return it->second;
}

bool LocationDict::SpatiallyMatched(LocationId a, LocationId b) const {
  const Location& la = locations_.at(a);
  const Location& lb = locations_.at(b);
  // A path location matches anything on one of its hop routers.
  if (la.level == LocLevel::kPath || lb.level == LocLevel::kPath) {
    if (la.level == LocLevel::kPath && lb.level == LocLevel::kPath) {
      return la.path == lb.path;
    }
    const Location& path = la.level == LocLevel::kPath ? la : lb;
    const Location& other = la.level == LocLevel::kPath ? lb : la;
    const DictPath& dp = paths_.at(path.path);
    return std::find(dp.hops.begin(), dp.hops.end(), other.router) !=
           dp.hops.end();
  }
  if (la.router != lb.router) return false;
  // Slot sets: empty (router/session scope) matches everything on the
  // router; bundles carry their member slots.
  const auto slots_of = [](const Location& l) -> std::vector<int> {
    if (l.level == LocLevel::kBundle) return l.bundle_slots;
    if (l.slot >= 0) return {l.slot};
    return {};
  };
  const std::vector<int> sa = slots_of(la);
  const std::vector<int> sb = slots_of(lb);
  if (sa.empty() || sb.empty()) return true;
  for (const int s : sa) {
    if (std::find(sb.begin(), sb.end(), s) != sb.end()) return true;
  }
  return false;
}

bool LocationDict::Connected(LocationId a, LocationId b) const {
  const Location& la = locations_.at(a);
  const Location& lb = locations_.at(b);
  if (la.link != kNoId && la.link == lb.link) return true;
  if (la.level == LocLevel::kPath || lb.level == LocLevel::kPath) {
    return SpatiallyMatched(a, b);
  }
  // A message that names an address on the other message's router (e.g.
  // each end of a BGP session naming its peer's loopback).
  if (la.router == lb.router) return SpatiallyMatched(a, b);
  return false;
}

}  // namespace sld::core
