// Location model and dictionary (§4.1.2, Fig. 3).
//
// The dictionary is learned offline from router configuration text: every
// interface, port, controller, bundle and path becomes a Location with its
// place in the physical hierarchy (router -> slot -> port/interface ->
// logical interface), every layer-3 address maps to its interface, and
// cross-router relationships (links from description lines, BGP sessions
// from neighbor statements, multi-hop paths) are recorded so the online
// groupers can test both same-router spatial matching and cross-router
// connectedness.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "net/config_parser.h"

namespace sld::core {

using LocationId = std::uint32_t;
using DictRouterId = std::uint32_t;
inline constexpr std::uint32_t kNoId = 0xffffffffu;

// Hierarchy levels, ordered from most to least significant.  The scoring
// weight of a level is 10x the level below it (§4.2.4).
enum class LocLevel : std::uint8_t {
  kRouter = 0,
  kBundle,     // multilink/LAG: spans several ports
  kPath,       // multi-hop path: spans several routers
  kSession,    // BGP session endpoint on a router
  kPhysIf,     // port / physical interface / controller
  kLogicalIf,  // layer-3 sub-interface
};

// Importance weight of a level (router = 10^4 ... logical = 10^0).
double LevelWeight(LocLevel level) noexcept;

struct Location {
  LocationId id = kNoId;
  DictRouterId router = kNoId;  // owning router (head router for paths)
  LocLevel level = LocLevel::kRouter;
  int slot = -1;  // physical position; -1 when not applicable
  int port = -1;
  std::string name;            // display name ("cr01.dllstx Serial1/0")
  std::uint32_t link = kNoId;  // link index when this terminates a link
  std::uint32_t path = kNoId;  // path index for kPath locations
  LocationId parent = kNoId;   // owning port for logical interfaces
  std::vector<int> bundle_slots;  // member slots for kBundle locations
};

// A cross-router link learned from interface description lines.
struct DictLink {
  DictRouterId router_a = kNoId;
  DictRouterId router_b = kNoId;
  LocationId phys_a = kNoId;
  LocationId phys_b = kNoId;
};

// A multi-hop path learned from config.
struct DictPath {
  std::string name;
  std::vector<DictRouterId> hops;
};

// The learned location knowledge base.
class LocationDict {
 public:
  // Builds the dictionary from parsed router configurations.
  static LocationDict Build(const std::vector<net::ParsedConfig>& configs);

  // -- lookups -----------------------------------------------------------
  std::optional<DictRouterId> RouterByName(std::string_view name) const;
  // Router-level location of a router.
  LocationId RouterLocation(DictRouterId router) const;
  // Named location (interface/port/controller/bundle) on a router.
  std::optional<LocationId> NameOnRouter(DictRouterId router,
                                         std::string_view name) const;
  // Location owning a layer-3 address (any router).
  std::optional<LocationId> ByIp(std::string_view ip) const;
  // Longest-prefix resolution: an address that is not configured anywhere
  // but falls inside a configured interface subnet maps to that interface
  // (e.g. the far end of a /30 when only one side's config is on hand).
  std::optional<LocationId> ByIpInPrefix(std::string_view ip) const;
  // Path by name (any router).
  std::optional<LocationId> PathByName(std::string_view name) const;
  // BGP session-endpoint location for (router, neighbor address), learned
  // from the router's neighbor statements.
  std::optional<LocationId> SessionOnRouter(DictRouterId router,
                                            std::string_view neighbor) const;

  const Location& Get(LocationId id) const { return locations_.at(id); }
  std::size_t size() const noexcept { return locations_.size(); }
  std::size_t router_count() const noexcept { return router_names_.size(); }
  const std::string& RouterName(DictRouterId router) const {
    return router_names_.at(router);
  }
  const std::vector<DictLink>& links() const noexcept { return links_; }
  const std::vector<DictPath>& paths() const noexcept { return paths_; }

  // -- relations used by the groupers -------------------------------------
  // Same-router spatial match (§4.2 "mapped to the same location in the
  // hierarchy"): true when the locations share a router and either one has
  // no specific slot (router/session scope) or their slot sets intersect.
  bool SpatiallyMatched(LocationId a, LocationId b) const;
  // Cross-router connectedness: two ends of one link, membership of one
  // path, or a location that (via an address) resolves onto the other
  // location's router.
  bool Connected(LocationId a, LocationId b) const;

 private:
  LocationId AddLocation(Location loc);

  std::vector<Location> locations_;
  std::vector<std::string> router_names_;
  std::unordered_map<std::string, DictRouterId> router_index_;
  std::vector<LocationId> router_locations_;
  // Per-router name maps are merged into one keyed map "router\x1fname".
  std::unordered_map<std::string, LocationId> names_;
  std::unordered_map<std::string, LocationId> by_ip_;
  // prefix length (descending iteration) -> network address -> location.
  std::map<int, std::unordered_map<std::uint32_t, LocationId>,
           std::greater<int>>
      by_prefix_;
  std::unordered_map<std::string, LocationId> path_by_name_;
  std::unordered_map<std::string, LocationId> session_by_key_;
  std::vector<DictLink> links_;
  std::vector<DictPath> paths_;

  static std::string Key(DictRouterId router, std::string_view name);
};

}  // namespace sld::core
