// StreamingDigester: the truly online deployment form of the digester.
//
// The batch Digester (digest.h) processes a closed stream; this class
// accepts one record at a time, runs the same grouping stages
// incrementally, and emits an event as soon as its group has been idle
// long enough that no further message could join it.  With an unbounded
// idle horizon the stream partition is identical to the batch partition
// (tests/core/stream_test.cc holds the two against each other).
//
// Built on the src/pipeline stage graph: TemporalStage + RuleStage +
// CrossRouterStage produce merge edges, GroupTracker owns the union-find,
// the idle/max-age lifecycle, and arena compaction.  The single-threaded
// form here and the multi-threaded pipeline::ShardedPipeline are drivers
// over the same stages, so their partitions coincide by construction.
#pragma once

#include <vector>

#include "core/digest.h"
#include "obs/metrics.h"
#include "pipeline/stages.h"
#include "pipeline/tracker.h"

namespace sld::obs {
class Registry;
}  // namespace sld::obs

namespace sld::ckpt {
class Writer;
class Reader;
}  // namespace sld::ckpt

namespace sld::core {

class StreamingDigester {
 public:
  // `idle_close_ms`: a group closes once the stream clock passes its last
  // message by this much.  0 selects the smallest horizon that preserves
  // batch equivalence: S_max (the longest temporal-grouping gap) plus the
  // rule window W.
  // `max_group_age_ms`: a still-active group is force-closed (emitted)
  // once it has spanned this long, bounding both reporting latency and
  // memory for never-ending periodic trains; its continuation starts a
  // fresh event.
  StreamingDigester(KnowledgeBase* kb, const LocationDict* dict,
                    DigestOptions options = {}, TimeMs idle_close_ms = 0,
                    TimeMs max_group_age_ms = 24 * kMsPerHour);

  // Feeds one record (timestamps must be non-decreasing; a collector in
  // front guarantees that) and returns any events that closed.
  std::vector<DigestEvent> Push(const syslog::SyslogRecord& rec);

  // Closes and returns every open group (end of stream).
  std::vector<DigestEvent> Flush();

  // Registers driver + tracker metrics (digester_* and tracker_* series)
  // with `reg`, which must outlive the digester.  Call before the first
  // Push.
  void BindMetrics(obs::Registry* reg);

  // Checkpointing (DESIGN.md §14).  Writes the canonical stage-graph
  // state (pipeline/state_io.h) — byte-identical to a ShardedPipeline
  // snapshot of the same stream, so either driver restores the other's.
  // LoadState must run before the first Push on a fresh digester.
  void SaveState(ckpt::Writer* w);
  bool LoadState(ckpt::Reader* r);

  std::size_t open_group_count() const noexcept {
    return tracker_.open_group_count();
  }
  std::size_t open_message_count() const noexcept {
    return tracker_.open_message_count();
  }
  std::size_t processed_count() const noexcept {
    return tracker_.processed_count();
  }
  // Distinct rules that have fired so far.
  std::size_t active_rule_count() const noexcept {
    return tracker_.active_rule_count();
  }

 private:
  DigestOptions options_;
  Augmenter augmenter_;
  pipeline::TemporalStage temporal_;
  pipeline::RuleStage rules_;
  pipeline::CrossRouterStage cross_;
  pipeline::GroupTracker tracker_;

  // Scratch buffers reused across pushes.
  std::vector<pipeline::MergeEdge> edges_;
  std::vector<std::uint64_t> fired_rules_;

  // Metric cells (null until BindMetrics).
  obs::Counter* messages_cell_ = nullptr;
  obs::Counter* events_cell_ = nullptr;
};

}  // namespace sld::core
