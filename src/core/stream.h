// StreamingDigester: the truly online deployment form of the digester.
//
// The batch Digester (digest.h) processes a closed stream; this class
// accepts one record at a time, runs the same three grouping passes
// incrementally, and emits an event as soon as its group has been idle
// long enough that no further message could join it.  With an unbounded
// idle horizon the stream partition is identical to the batch partition
// (tests/core/stream_test.cc holds the two against each other).
//
// Memory is bounded: closed groups are dropped, and the message arena is
// compacted when closed messages dominate it.
#pragma once

#include <deque>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/union_find.h"
#include "core/digest.h"

namespace sld::core {

class StreamingDigester {
 public:
  // `idle_close_ms`: a group closes once the stream clock passes its last
  // message by this much.  0 selects the smallest horizon that preserves
  // batch equivalence: S_max (the longest temporal-grouping gap) plus the
  // rule window W.
  // `max_group_age_ms`: a still-active group is force-closed (emitted)
  // once it has spanned this long, bounding both reporting latency and
  // memory for never-ending periodic trains; its continuation starts a
  // fresh event.
  StreamingDigester(KnowledgeBase* kb, const LocationDict* dict,
                    DigestOptions options = {}, TimeMs idle_close_ms = 0,
                    TimeMs max_group_age_ms = 24 * kMsPerHour);

  // Feeds one record (timestamps must be non-decreasing; a collector in
  // front guarantees that) and returns any events that closed.
  std::vector<DigestEvent> Push(const syslog::SyslogRecord& rec);

  // Closes and returns every open group (end of stream).
  std::vector<DigestEvent> Flush();

  std::size_t open_group_count() const noexcept { return groups_.size(); }
  std::size_t open_message_count() const noexcept { return open_messages_; }
  std::size_t processed_count() const noexcept { return processed_; }
  // Distinct rules that have fired so far.
  std::size_t active_rule_count() const noexcept {
    return active_rules_.size();
  }

 private:
  struct GroupMeta {
    TimeMs first_time = 0;
    TimeMs last_time = 0;
  };

  void MergeRoots(std::size_t a, std::size_t b);
  std::vector<DigestEvent> CloseIdle(TimeMs now);
  void CompactArena();

  KnowledgeBase* kb_;
  const LocationDict* dict_;
  DigestOptions options_;
  TimeMs idle_close_ms_;
  TimeMs max_group_age_ms_;
  Augmenter augmenter_;
  TemporalGrouper temporal_;

  // Arena of messages still belonging to open groups (plus closed ones
  // awaiting compaction); union-find indexes into it.
  std::vector<Augmented> arena_;
  std::vector<bool> closed_;
  UnionFind uf_{0};
  std::size_t open_messages_ = 0;

  // root -> group bookkeeping (kept in sync across unions).
  std::unordered_map<std::size_t, GroupMeta> groups_;
  // temporal group id -> latest arena index of that temporal chain.
  std::unordered_map<std::size_t, std::size_t> temporal_tail_;
  // per-router sliding window (arena indices) for the rule pass.
  std::unordered_map<std::uint32_t, std::deque<std::size_t>> router_window_;
  // global sliding window for the cross-router pass.
  std::deque<std::size_t> cross_window_;
  std::unordered_set<std::uint64_t> active_rules_;

  TimeMs clock_ = INT64_MIN;
  std::size_t processed_ = 0;
};

}  // namespace sld::core
