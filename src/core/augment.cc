#include "core/augment.h"

namespace sld::core {

Augmented AugmentWithRouting(const syslog::SyslogRecord& rec,
                             std::size_t raw_index, std::uint32_t router_key,
                             bool router_known,
                             const LocationExtractor& extractor,
                             const LocationDict& dict) {
  Augmented aug;
  aug.time = rec.time;
  aug.raw_index = raw_index;
  aug.router_key = router_key;
  aug.router_known = router_known;
  if (router_known) {
    aug.locs = extractor.Extract(rec.router, rec.detail);
    // Most specific (deepest-level) location named in the text.
    aug.primary = aug.locs.front();
    for (std::size_t i = 1; i < aug.locs.size(); ++i) {
      if (static_cast<int>(dict.Get(aug.locs[i]).level) >
          static_cast<int>(dict.Get(aug.primary).level)) {
        aug.primary = aug.locs[i];
      }
    }
  }
  return aug;
}

Augmented Augmenter::Augment(const syslog::SyslogRecord& rec,
                             std::size_t raw_index) {
  const auto [router_key, known] = resolver_.Resolve(rec.router);
  Augmented aug = AugmentWithRouting(rec, raw_index, router_key, known,
                                     extractor_, *dict_);
  aug.tmpl = templates_->MatchOrFallback(rec.code, rec.detail);
  return aug;
}

std::vector<Augmented> Augmenter::AugmentAll(
    std::span<const syslog::SyslogRecord> records) {
  std::vector<Augmented> out;
  out.reserve(records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    out.push_back(Augment(records[i], i));
  }
  return out;
}

}  // namespace sld::core
