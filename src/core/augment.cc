#include "core/augment.h"

#include "common/strings.h"

namespace sld::core {

Augmented AugmentWithRouting(const syslog::SyslogRecord& rec,
                             std::size_t raw_index, std::uint32_t router_key,
                             bool router_known,
                             const LocationExtractor& extractor,
                             const LocationDict& dict) {
  Augmented aug;
  aug.time = rec.time;
  aug.raw_index = raw_index;
  aug.router_key = router_key;
  aug.router_known = router_known;
  if (router_known) {
    aug.locs = extractor.Extract(rec.router, rec.detail);
    // The extractor puts the router-level location first for any router
    // it can resolve, but a caller may assert router_known for a name
    // the dictionary cannot place (e.g. a renamed router between config
    // snapshots) — then the list is empty and there is no primary.
    if (!aug.locs.empty()) {
      // Most specific (deepest-level) location named in the text.
      aug.primary = aug.locs.front();
      for (std::size_t i = 1; i < aug.locs.size(); ++i) {
        if (static_cast<int>(dict.Get(aug.locs[i]).level) >
            static_cast<int>(dict.Get(aug.primary).level)) {
          aug.primary = aug.locs[i];
        }
      }
    }
  }
  return aug;
}

Augmented Augmenter::Augment(const syslog::SyslogRecord& rec,
                             std::size_t raw_index) {
  const auto [router_key, known] = resolver_.Resolve(rec.router);
  Augmented aug = AugmentWithRouting(rec, raw_index, router_key, known,
                                     extractor_, *dict_);
  aug.tmpl = templates_->MatchOrFallback(rec.code, rec.detail);
  return aug;
}

std::vector<Augmented> Augmenter::AugmentAll(
    std::span<const syslog::SyslogRecord> records, ThreadPool* pool) {
  std::vector<Augmented> out(records.size());

  // Router keys are interned in first-sight order; resolve them serially
  // so key assignment is identical at any thread count.
  std::vector<std::pair<std::uint32_t, bool>> keys(records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    keys[i] = resolver_.Resolve(records[i].router);
  }

  // Parallel phase: location extraction plus a read-only template match,
  // with per-worker tokenizer scratch.  The extractor and dict are
  // const-shared; each task writes only its own output slot.
  const std::size_t worker_count = pool != nullptr ? pool->thread_count() : 1;
  std::vector<std::vector<std::string_view>> scratch(worker_count);
  std::vector<unsigned char> missed(records.size(), 0);
  ParallelFor(pool, records.size(),
              [&](std::size_t i, std::size_t worker) {
                out[i] = AugmentWithRouting(records[i], i, keys[i].first,
                                            keys[i].second, extractor_,
                                            *dict_);
                std::vector<std::string_view>& sc = scratch[worker];
                SplitWhitespace(records[i].detail, &sc);
                if (const auto id = templates_->Match(records[i].code, sc)) {
                  out[i].tmpl = *id;
                } else {
                  missed[i] = 1;
                }
              });

  // Serial fixup in index order: unmatched messages mint their catch-all
  // fallback exactly as the serial Augment loop would — the first miss of
  // a (code, token-count) pair creates the template, later misses of the
  // same pair match it.  A record that matched a learned template above
  // is unaffected: learned templates always win the fixed-count
  // tie-break against an all-masked catch-all.
  std::vector<std::string_view> sc;
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (missed[i] != 0) {
      out[i].tmpl = templates_->MatchOrFallback(records[i].code,
                                                records[i].detail, &sc);
    }
  }
  return out;
}

}  // namespace sld::core
