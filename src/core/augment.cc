#include "core/augment.h"

namespace sld::core {

Augmented Augmenter::Augment(const syslog::SyslogRecord& rec,
                             std::size_t raw_index) {
  Augmented aug;
  aug.time = rec.time;
  aug.raw_index = raw_index;
  aug.tmpl = templates_->MatchOrFallback(rec.code, rec.detail);
  if (const auto rid = dict_->RouterByName(rec.router)) {
    aug.router_known = true;
    aug.router_key = *rid;
    aug.locs = extractor_.Extract(rec.router, rec.detail);
    // Most specific (deepest-level) location named in the text.
    aug.primary = aug.locs.front();
    for (std::size_t i = 1; i < aug.locs.size(); ++i) {
      if (static_cast<int>(dict_->Get(aug.locs[i]).level) >
          static_cast<int>(dict_->Get(aug.primary).level)) {
        aug.primary = aug.locs[i];
      }
    }
  } else {
    aug.router_key = static_cast<std::uint32_t>(dict_->router_count()) +
                     unknown_routers_.Intern(rec.router);
  }
  return aug;
}

std::vector<Augmented> Augmenter::AugmentAll(
    std::span<const syslog::SyslogRecord> records) {
  std::vector<Augmented> out;
  out.reserve(records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    out.push_back(Augment(records[i], i));
  }
  return out;
}

}  // namespace sld::core
