// Trend analysis over digested history: level-shift detection on daily
// counts (a MERCURY-style consumer, §1/§7 of the paper).
//
// The paper argues trend systems that track raw per-message frequencies
// would be "much more meaningful" with the relationships SyslogDigest
// learns.  This module provides both series — per-template daily message
// counts and per-label daily EVENT counts — plus a simple level-shift
// detector (compare the mean of a trailing window against the mean of the
// preceding window; flag sustained relative changes).
#pragma once

#include <map>
#include <span>
#include <string>
#include <vector>

#include "core/augment.h"
#include "core/digest.h"

namespace sld::core {

// A daily count series; index 0 is `first_day` (days since epoch_ms).
struct DailySeries {
  std::string name;
  TimeMs epoch_ms = 0;
  std::vector<double> counts;
};

// Per-template daily message counts from an augmented stream.
// `epoch_ms` anchors day 0; messages before it are ignored.
std::vector<DailySeries> TemplateDailyCounts(
    std::span<const Augmented> stream, const TemplateSet& templates,
    TimeMs epoch_ms, int num_days);

// Per-label daily event counts from a digest (events bucketed by start).
std::vector<DailySeries> EventDailyCounts(const DigestResult& result,
                                          TimeMs epoch_ms, int num_days);

struct LevelShiftParams {
  int window_days = 7;        // window on each side of the candidate day
  double min_ratio = 2.0;     // after/before mean ratio (or inverse)
  double min_mean = 1.0;      // ignore series quieter than this
};

struct LevelShift {
  std::string series;  // series name (template canonical or event label)
  int day = 0;         // first day of the new level
  double before = 0.0; // mean daily count before
  double after = 0.0;  // mean daily count after
};

// Detects sustained level shifts in each series; at most one (the
// strongest) shift is reported per series.
std::vector<LevelShift> DetectLevelShifts(
    std::span<const DailySeries> series, const LevelShiftParams& params = {});

}  // namespace sld::core
