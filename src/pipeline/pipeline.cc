#include "pipeline/pipeline.h"

#include <algorithm>
#include <chrono>
#include <string>

#include "core/location/extractor.h"
#include "pipeline/state_io.h"

namespace sld::pipeline {
namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

ShardedPipeline::ShardedPipeline(core::KnowledgeBase* kb,
                                 const core::LocationDict* dict,
                                 PipelineOptions options)
    : kb_(kb),
      dict_(dict),
      options_(options),
      matcher_(&kb->templates),
      resolver_(dict),
      tracker_(kb, dict, options.idle_close_ms, options.max_group_age_ms,
               &matcher_.mutex()),
      cross_(dict, options.digest.cross_router_window),
      // The order queue must never be the blocking edge: size it past the
      // worst-case number of in-flight batches so back-pressure always
      // comes from the shard queues.
      order_(std::max<std::size_t>(1, options.shards) *
                 options.queue_capacity * 2 +
             16) {
  const std::size_t n = std::max<std::size_t>(1, options_.shards);
  options_.shards = n;
  options_.batch_size = std::max<std::size_t>(1, options_.batch_size);
  shards_.reserve(n);
  pending_in_.resize(n);
  for (std::size_t k = 0; k < n; ++k) {
    shards_.push_back(
        std::make_unique<Shard>(options_.queue_capacity, kb_, dict_));
  }
  if (options_.metrics != nullptr) tracker_.BindMetrics(options_.metrics);
  for (std::size_t k = 0; k < n; ++k) {
    shards_[k]->worker =
        std::thread([this, k] { RunShard(*shards_[k], k); });
  }
  merge_thread_ = std::thread([this] { RunMerge(); });
}

ShardedPipeline::~ShardedPipeline() {
  if (!finished_) Finish();
}

void ShardedPipeline::SetEventSink(EventSink sink) {
  // Synchronizes with the merge thread through the queue mutexes: the
  // merge thread only reads the sink after popping work that was pushed
  // after this assignment (callers install the sink before the first
  // Push).
  sink_ = std::move(sink);
}

void ShardedPipeline::Push(const syslog::SyslogRecord& rec) {
  const auto [router_key, known] = resolver_.Resolve(rec.router);
  const auto sid =
      static_cast<std::uint32_t>(router_key % shards_.size());
  pending_in_[sid].push_back({seq_, router_key, known, rec});
  pending_order_.push_back(sid);
  ++seq_;
  if (pending_order_.size() >= options_.batch_size) FlushBatches();
}

void ShardedPipeline::FlushBatches() {
  // Shard batches first, their order batch last: when the merge thread
  // sees a sequence number in the schedule, its input is already queued.
  for (std::size_t k = 0; k < shards_.size(); ++k) {
    if (pending_in_[k].empty()) continue;
    std::vector<ShardInput> batch;
    batch.swap(pending_in_[k]);
    shards_[k]->in.Push(std::move(batch));
  }
  if (!pending_order_.empty()) {
    std::vector<std::uint32_t> order;
    order.swap(pending_order_);
    order_.Push(std::move(order));
  }
}

void ShardedPipeline::RunShard(Shard& shard, std::size_t shard_id) {
  core::LocationExtractor extractor(dict_);
  // Shard-private match state: the memo cache and the token scratch make
  // the steady-state signature match lock- and allocation-free.
  ShardMatchCache match_cache;
  ShardMatchCache* cache =
      options_.use_match_cache ? &match_cache : nullptr;
  std::vector<std::string_view> match_scratch;

  // Shard-private metric cells: messages/queue-depth carry a shard label
  // (per-shard rates are the point); the batch-latency histogram and the
  // memo-cache counters register unlabeled — every shard's cell folds
  // into one series at snapshot time.
  struct ShardCells {
    obs::Counter* messages = nullptr;
    obs::Gauge* queue_depth = nullptr;
    obs::Histogram* batch_seconds = nullptr;
    obs::Counter* cache_hits = nullptr;
    obs::Counter* cache_misses = nullptr;
    obs::Counter* cache_invalidations = nullptr;
  } cells;
  if (options_.metrics != nullptr) {
    obs::Registry* reg = options_.metrics;
    const obs::Labels shard_label = {{"shard", std::to_string(shard_id)}};
    cells.messages = reg->AddCounter("pipeline_shard_messages_total",
                                     "messages processed by this shard",
                                     shard_label);
    cells.queue_depth = reg->AddGauge("pipeline_shard_queue_depth",
                                      "input batches awaiting this shard",
                                      shard_label);
    cells.batch_seconds = reg->AddHistogram(
        "pipeline_shard_batch_seconds",
        "per-batch shard stage latency (augment+match+per-router stages)",
        obs::LatencyBucketsSeconds());
    cells.cache_hits = reg->AddCounter("pipeline_match_cache_hits_total",
                                       "memo-cache hits across shards");
    cells.cache_misses = reg->AddCounter(
        "pipeline_match_cache_misses_total",
        "memo-cache lookups that fell through to the shared matcher");
    cells.cache_invalidations = reg->AddCounter(
        "pipeline_match_cache_invalidations_total",
        "memo-cache epoch flushes across shards");
  }
  std::uint64_t prev_lookups = 0, prev_hits = 0, prev_invalidations = 0;

  while (auto batch = shard.in.Pop()) {
    const auto batch_start = std::chrono::steady_clock::now();
    std::vector<ShardOutput> out;
    out.reserve(batch->size());
    for (ShardInput& in : *batch) {
      ShardOutput o;
      o.msg = core::AugmentWithRouting(in.rec, in.seq, in.router_key,
                                       in.router_known, extractor, *dict_);
      o.msg.tmpl = matcher_.MatchOrFallback(in.rec.code, in.rec.detail,
                                            cache, &match_scratch);
      shard.temporal.Feed(o.msg, &o.edges);
      if (options_.digest.use_rules) {
        shard.rules.Feed(o.msg, &o.edges, &o.fired_rules);
      }
      out.push_back(std::move(o));
    }
    if (cells.messages != nullptr) {
      cells.messages->Inc(out.size());
      cells.batch_seconds->Observe(SecondsSince(batch_start));
      cells.queue_depth->Set(static_cast<std::int64_t>(shard.in.size()));
      if (cache != nullptr) {
        const std::uint64_t dl = cache->lookups() - prev_lookups;
        const std::uint64_t dh = cache->hits() - prev_hits;
        cells.cache_hits->Inc(dh);
        cells.cache_misses->Inc(dl - dh);
        cells.cache_invalidations->Inc(cache->invalidations() -
                                       prev_invalidations);
        prev_lookups = cache->lookups();
        prev_hits = cache->hits();
        prev_invalidations = cache->invalidations();
      }
    }
    if (!shard.out.Push(std::move(out))) break;  // merge side gone
  }
  shard.out.Close();
}

void ShardedPipeline::RunMerge() {
  std::vector<std::vector<ShardOutput>> current(shards_.size());
  std::vector<std::size_t> cursor(shards_.size(), 0);
  std::vector<MergeEdge> cross_edges;

  // Merge-thread metric cells: the backlog gauge is the pipeline's
  // primary back-pressure signal (schedule batches the merge thread has
  // not replayed yet).
  obs::Counter* merged_messages = nullptr;
  obs::Gauge* backlog = nullptr;
  obs::Histogram* merge_seconds = nullptr;
  if (options_.metrics != nullptr) {
    merged_messages = options_.metrics->AddCounter(
        "pipeline_merge_messages_total",
        "messages replayed by the sequenced merge thread");
    backlog = options_.metrics->AddGauge(
        "pipeline_merge_backlog_batches",
        "order-queue batches awaiting the merge thread");
    merge_seconds = options_.metrics->AddHistogram(
        "pipeline_merge_batch_seconds",
        "per-schedule-batch merge stage latency",
        obs::LatencyBucketsSeconds());
  }
  const auto emit = [this](std::vector<core::DigestEvent> events) {
    for (core::DigestEvent& ev : events) {
      if (sink_) {
        sink_(std::move(ev));
      } else {
        collected_.push_back(std::move(ev));
      }
    }
  };

  while (auto schedule = order_.Pop()) {
    const auto batch_start = std::chrono::steady_clock::now();
    for (const std::uint32_t sid : *schedule) {
      if (cursor[sid] >= current[sid].size()) {
        auto next = shards_[sid]->out.Pop();
        if (!next) return;  // shard aborted; drop the rest
        current[sid] = std::move(*next);
        cursor[sid] = 0;
      }
      ShardOutput& o = current[sid][cursor[sid]++];
      const TimeMs t = o.msg.time;
      const std::size_t seq = o.msg.raw_index;

      emit(tracker_.Observe(t));
      tracker_.Add(o.msg);
      tracker_.ApplyEdges(o.edges);
      tracker_.NoteRules(o.fired_rules);
      if (options_.digest.use_cross_router) {
        cross_edges.clear();
        cross_.Feed(
            o.msg,
            [this](std::size_t a, std::size_t b) {
              return tracker_.SameGroup(a, b);
            },
            &cross_edges);
        tracker_.ApplyEdges(cross_edges);
      }
      tracker_.Touch(seq, t);
    }
    if (merged_messages != nullptr) {
      merged_messages->Inc(schedule->size());
      merge_seconds->Observe(SecondsSince(batch_start));
      backlog->Set(static_cast<std::int64_t>(order_.size()));
    }
    {
      std::lock_guard<std::mutex> lock(quiesce_mutex_);
      merged_count_ += schedule->size();
    }
    quiesce_cv_.notify_all();
  }
  emit(tracker_.Flush());
}

void ShardedPipeline::Quiesce() {
  // After Finish() the threads are joined and every record replayed;
  // the queues are closed, so skip the flush-and-wait entirely.
  if (finished_) return;
  FlushBatches();
  std::unique_lock<std::mutex> lock(quiesce_mutex_);
  quiesce_cv_.wait(lock, [this] { return merged_count_ >= seq_; });
}

void ShardedPipeline::SaveState(ckpt::Writer* w) {
  Quiesce();
  w->U64(seq_);
  SaveResolverState(resolver_, w);
  std::vector<TemporalStage::ChainSnapshot> chains;
  for (const auto& shard : shards_) shard->temporal.ExportState(&chains);
  SaveTemporalChains(std::move(chains), w);
  std::vector<RuleStage::WindowSnapshot> windows;
  for (const auto& shard : shards_) shard->rules.ExportState(&windows);
  SaveRuleWindows(std::move(windows), w);
  std::vector<CrossRouterStage::EntrySnapshot> cross_entries;
  cross_.ExportState(&cross_entries);
  SaveCrossEntries(cross_entries, w);
  tracker_.SaveState(w);
}

bool ShardedPipeline::LoadState(ckpt::Reader* r) {
  seq_ = r->U64();
  bool ok = LoadResolverState(&resolver_, r);
  ok = ok && LoadTemporalChains(r, [this](
                                       const TemporalStage::ChainSnapshot& c) {
         const auto router =
             static_cast<std::uint32_t>(c.chain.key_a & 0xFFFFFFFFu);
         shards_[router % shards_.size()]->temporal.ImportChain(c);
       });
  ok = ok && LoadRuleWindows(r, [this](const RuleStage::WindowSnapshot& win) {
         shards_[win.router_key % shards_.size()]->rules.ImportWindow(win);
       });
  ok = ok &&
       LoadCrossEntries(r, [this](const CrossRouterStage::EntrySnapshot& e) {
         cross_.ImportEntry(e);
       });
  ok = ok && tracker_.LoadState(r);
  {
    // The restored records were already replayed in the previous life;
    // without this, the first Quiesce() would wait for seq_ forever.
    std::lock_guard<std::mutex> lock(quiesce_mutex_);
    merged_count_ = seq_;
  }
  return ok;
}

core::DigestResult ShardedPipeline::Finish() {
  if (!finished_) {
    finished_ = true;
    FlushBatches();
    for (auto& shard : shards_) shard->in.Close();
    order_.Close();
    for (auto& shard : shards_) shard->worker.join();
    merge_thread_.join();
  }
  core::DigestResult result;
  result.message_count = seq_;
  result.active_rule_count = tracker_.active_rule_count();
  result.events = std::move(collected_);
  collected_.clear();
  std::sort(result.events.begin(), result.events.end(),
            [](const core::DigestEvent& a, const core::DigestEvent& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.start < b.start;
            });
  return result;
}

}  // namespace sld::pipeline
