// Signature matching shared by pipeline shards.
//
// The template set is read-mostly: nearly every message matches a learned
// template, but the online system must stay total, so unmatched messages
// create a catch-all template on demand (TemplateSet::MatchOrFallback).
// Shards match under a reader lock and upgrade to a writer lock only on
// the rare miss.  The same mutex is reader-locked by the merge stage while
// it reads template text for event labels.
//
// Syslog is extremely repetitive (Table 5: a handful of templates cover
// most traffic), so each shard additionally keeps a private memo cache
// mapping hash(code, detail) -> TemplateId.  A memo hit touches no lock
// and performs no heap allocation — the steady-state cost of signature
// matching is one FNV-1a pass over the message plus one table probe.  The
// cache is versioned against the TemplateSet epoch: a catch-all insertion
// bumps the epoch, and every shard drops its (possibly stale) entries the
// next time it looks, without the hit path ever taking the shared lock.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string_view>
#include <vector>

#include "common/hash.h"
#include "common/strings.h"
#include "core/templates/template.h"

namespace sld::pipeline {

// 64-bit memo identity of a (code, detail) pair.  HashBytes folds each
// piece's length into the chain, so ("ab", "c") and ("a", "bc") stay
// distinct; the separator byte additionally splits the domains.  0 is
// remapped because it is the cache's empty-slot sentinel.
inline std::uint64_t MessageKey(std::string_view code,
                                std::string_view detail) noexcept {
  std::uint64_t h = HashBytes(code);
  h = HashBytes(detail, h ^ 0x1f);
  return h == 0 ? 1 : h;
}

// Open-addressed (linear probing, power-of-two capacity) memo table owned
// by exactly one shard thread — no synchronization inside.  Once half
// full it stops inserting rather than evicting: the hot keys of a skewed
// syslog stream are seen early, and refusing new one-off keys is cheaper
// and more predictable than periodically dumping the hot set.  The
// default (2^15 slots = 16K usable entries, ~384 KiB) keeps the table
// L2-resident; one day of dataset A has ~5.4K distinct (code, detail)
// pairs, so capacity is not the limiter.
class ShardMatchCache {
 public:
  explicit ShardMatchCache(std::size_t log2_capacity = 15)
      : keys_(std::size_t{1} << log2_capacity, 0),
        vals_(std::size_t{1} << log2_capacity, core::kNoTemplate),
        mask_((std::size_t{1} << log2_capacity) - 1) {}

  std::optional<core::TemplateId> Lookup(std::uint64_t key) noexcept {
    ++lookups_;
    for (std::size_t i = key & mask_;; i = (i + 1) & mask_) {
      if (keys_[i] == key) {
        ++hits_;
        return vals_[i];
      }
      if (keys_[i] == 0) return std::nullopt;
    }
  }

  void Insert(std::uint64_t key, core::TemplateId id) noexcept {
    for (std::size_t i = key & mask_;; i = (i + 1) & mask_) {
      if (keys_[i] == key) {
        vals_[i] = id;
        return;
      }
      if (keys_[i] == 0) {
        if ((size_ + 1) * 2 > keys_.size()) return;  // full: keep hot set
        keys_[i] = key;
        vals_[i] = id;
        ++size_;
        return;
      }
    }
  }

  // Drops every entry when the template set has moved past the epoch this
  // cache was filled under.
  void SyncEpoch(std::uint64_t epoch) noexcept {
    if (epoch != epoch_) {
      Clear();
      epoch_ = epoch;
      ++invalidations_;
    }
  }

  void Clear() noexcept {
    std::fill(keys_.begin(), keys_.end(), 0);
    std::fill(vals_.begin(), vals_.end(), core::kNoTemplate);
    size_ = 0;
  }

  std::size_t size() const noexcept { return size_; }
  std::uint64_t epoch() const noexcept { return epoch_; }
  std::uint64_t lookups() const noexcept { return lookups_; }
  std::uint64_t hits() const noexcept { return hits_; }
  // Epoch-change flushes this cache has performed (each one re-pays the
  // warmup misses; a high rate means the template set is still churning).
  std::uint64_t invalidations() const noexcept { return invalidations_; }
  double hit_rate() const noexcept {
    return lookups_ == 0 ? 0.0
                         : static_cast<double>(hits_) /
                               static_cast<double>(lookups_);
  }

 private:
  std::vector<std::uint64_t> keys_;  // 0 = empty slot
  std::vector<core::TemplateId> vals_;
  std::size_t mask_;
  std::size_t size_ = 0;
  std::uint64_t epoch_ = 0;
  std::uint64_t lookups_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t invalidations_ = 0;
};

class ConcurrentTemplateMatcher {
 public:
  explicit ConcurrentTemplateMatcher(core::TemplateSet* set)
      : set_(set), epoch_(set->epoch()) {}

  // The shard hot path.  `cache` (may be null) and `scratch` are owned by
  // the calling shard; a memo hit returns without locking or allocating.
  core::TemplateId MatchOrFallback(std::string_view code,
                                   std::string_view detail,
                                   ShardMatchCache* cache,
                                   std::vector<std::string_view>* scratch) {
    std::uint64_t key = 0;
    if (cache != nullptr) {
      cache->SyncEpoch(epoch_.load(std::memory_order_acquire));
      key = MessageKey(code, detail);
      if (const auto id = cache->Lookup(key)) return *id;
    }
    SplitWhitespace(detail, scratch);
    {
      std::shared_lock lock(mutex_);
      if (const auto id = set_->Match(code, *scratch)) {
        if (cache != nullptr) cache->Insert(key, *id);
        return *id;
      }
    }
    // Miss: take the writer lock and re-run the full fallback path
    // (another shard may have created the catch-all in between;
    // MatchOrFallback dedups on the canonical form).
    std::unique_lock lock(mutex_);
    const core::TemplateId id = set_->MatchOrFallback(code, detail, scratch);
    // Publish the (possibly bumped) epoch while still serialized by the
    // writer lock, so concurrent fallbacks cannot reorder the stores.
    epoch_.store(set_->epoch(), std::memory_order_release);
    if (cache != nullptr) {
      // Adopt the new epoch before inserting, or the entry would be
      // dropped by our own SyncEpoch on the next message.
      cache->SyncEpoch(set_->epoch());
      cache->Insert(key, id);
    }
    return id;
  }

  // Uncached convenience form (tests, single-shot callers).
  core::TemplateId MatchOrFallback(std::string_view code,
                                   std::string_view detail) {
    std::vector<std::string_view> scratch;
    return MatchOrFallback(code, detail, nullptr, &scratch);
  }

  // The template-set epoch as last published by a writer, readable
  // without any lock.
  std::uint64_t epoch() const noexcept {
    return epoch_.load(std::memory_order_acquire);
  }

  // Reader-lockable by stages that read template text (event labeling).
  std::shared_mutex& mutex() noexcept { return mutex_; }

 private:
  core::TemplateSet* set_;
  std::shared_mutex mutex_;
  std::atomic<std::uint64_t> epoch_;
};

}  // namespace sld::pipeline
