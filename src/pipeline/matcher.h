// Signature matching shared by pipeline shards.
//
// The template set is read-mostly: nearly every message matches a learned
// template, but the online system must stay total, so unmatched messages
// create a catch-all template on demand (TemplateSet::MatchOrFallback).
// Shards therefore match under a reader lock and upgrade to a writer lock
// only on the rare miss.  The same mutex is reader-locked by the merge
// stage while it reads template text for event labels.
#pragma once

#include <shared_mutex>
#include <string_view>

#include "core/templates/template.h"

namespace sld::pipeline {

class ConcurrentTemplateMatcher {
 public:
  explicit ConcurrentTemplateMatcher(core::TemplateSet* set) : set_(set) {}

  core::TemplateId MatchOrFallback(std::string_view code,
                                   std::string_view detail) {
    {
      std::shared_lock lock(mutex_);
      if (const auto id = set_->Match(code, detail)) return *id;
    }
    // Miss: take the writer lock and re-run the full fallback path (another
    // shard may have created the catch-all in between; MatchOrFallback
    // dedups on the canonical form).
    std::unique_lock lock(mutex_);
    return set_->MatchOrFallback(code, detail);
  }

  // Reader-lockable by stages that read template text (event labeling).
  std::shared_mutex& mutex() noexcept { return mutex_; }

 private:
  core::TemplateSet* set_;
  std::shared_mutex mutex_;
};

}  // namespace sld::pipeline
