// Canonical serialization of the stage-graph state (DESIGN.md §14).
//
// Both drivers over the stage graph — the single-threaded
// StreamingDigester and the ShardedPipeline — write their stage state
// through these helpers, in the same order and sorted the same way, so
// a snapshot taken at N shards restores bit-identically at M shards
// (state is re-partitioned by router key at import, exactly how Push
// deals records to shards).
#pragma once

#include <algorithm>
#include <functional>
#include <vector>

#include "ckpt/codec.h"
#include "core/augment.h"
#include "pipeline/stages.h"

namespace sld::pipeline {

// Router resolver: interned names in first-sight order.  Restoring
// re-Resolve()s each name, which recomputes the identical dense keys.
inline void SaveResolverState(const core::RouterResolver& resolver,
                              ckpt::Writer* w) {
  const std::size_t n = resolver.interned_count();
  w->U64(n);
  for (std::size_t id = 0; id < n; ++id) {
    w->Str(resolver.interned_name(static_cast<std::uint32_t>(id)));
  }
}

inline bool LoadResolverState(core::RouterResolver* resolver,
                              ckpt::Reader* r) {
  const std::uint64_t n = r->Count(8);
  for (std::uint64_t i = 0; i < n && r->ok(); ++i) {
    resolver->Resolve(r->Str());
  }
  return r->ok();
}

// Temporal chains, sorted by key (shard-count independent).
inline void SaveTemporalChains(
    std::vector<TemporalStage::ChainSnapshot> chains, ckpt::Writer* w) {
  std::sort(chains.begin(), chains.end(),
            [](const TemporalStage::ChainSnapshot& a,
               const TemporalStage::ChainSnapshot& b) {
              if (a.chain.key_a != b.chain.key_a) {
                return a.chain.key_a < b.chain.key_a;
              }
              return a.chain.key_b < b.chain.key_b;
            });
  w->U64(chains.size());
  for (const TemporalStage::ChainSnapshot& snap : chains) {
    w->U64(snap.chain.key_a);
    w->U32(snap.chain.key_b);
    w->I64(snap.chain.last_time);
    w->F64(snap.chain.shat);
    w->U64(snap.tail_seq);
  }
}

inline bool LoadTemporalChains(
    ckpt::Reader* r,
    const std::function<void(const TemporalStage::ChainSnapshot&)>& add) {
  const std::uint64_t n = r->Count(8 + 4 + 8 + 8 + 8);
  for (std::uint64_t i = 0; i < n && r->ok(); ++i) {
    TemporalStage::ChainSnapshot snap;
    snap.chain.key_a = r->U64();
    snap.chain.key_b = r->U32();
    snap.chain.last_time = r->I64();
    snap.chain.shat = r->F64();
    snap.tail_seq = r->U64();
    if (r->ok()) add(snap);
  }
  return r->ok();
}

// Rule windows, sorted by router key (each router's window lives on
// exactly one shard, so concatenating shard exports and sorting is
// canonical).  Entries stay in window (oldest-first) order.
inline void SaveRuleWindows(std::vector<RuleStage::WindowSnapshot> windows,
                            ckpt::Writer* w) {
  std::sort(windows.begin(), windows.end(),
            [](const RuleStage::WindowSnapshot& a,
               const RuleStage::WindowSnapshot& b) {
              return a.router_key < b.router_key;
            });
  w->U64(windows.size());
  for (const RuleStage::WindowSnapshot& win : windows) {
    w->U32(win.router_key);
    w->U64(win.entries.size());
    for (const RuleStage::EntrySnapshot& e : win.entries) {
      w->U64(e.seq);
      w->I64(e.time);
      w->U32(e.tmpl);
      w->U64(e.locs.size());
      for (const core::LocationId loc : e.locs) w->U32(loc);
    }
  }
}

inline bool LoadRuleWindows(
    ckpt::Reader* r,
    const std::function<void(const RuleStage::WindowSnapshot&)>& add) {
  const std::uint64_t n = r->Count(4 + 8);
  for (std::uint64_t i = 0; i < n && r->ok(); ++i) {
    RuleStage::WindowSnapshot win;
    win.router_key = r->U32();
    const std::uint64_t entries = r->Count(8 + 8 + 4 + 8);
    win.entries.reserve(entries);
    for (std::uint64_t j = 0; j < entries && r->ok(); ++j) {
      RuleStage::EntrySnapshot e;
      e.seq = r->U64();
      e.time = r->I64();
      e.tmpl = r->U32();
      e.locs.resize(r->Count(4));
      for (core::LocationId& loc : e.locs) loc = r->U32();
      win.entries.push_back(std::move(e));
    }
    if (r->ok()) add(win);
  }
  return r->ok();
}

// Cross-router window, already in global time order (merge-thread state).
inline void SaveCrossEntries(
    const std::vector<CrossRouterStage::EntrySnapshot>& entries,
    ckpt::Writer* w) {
  w->U64(entries.size());
  for (const CrossRouterStage::EntrySnapshot& e : entries) {
    w->U64(e.seq);
    w->I64(e.time);
    w->U32(e.tmpl);
    w->U32(e.router_key);
    w->U64(e.locs.size());
    for (const core::LocationId loc : e.locs) w->U32(loc);
  }
}

inline bool LoadCrossEntries(
    ckpt::Reader* r,
    const std::function<void(const CrossRouterStage::EntrySnapshot&)>& add) {
  const std::uint64_t n = r->Count(8 + 8 + 4 + 4 + 8);
  for (std::uint64_t i = 0; i < n && r->ok(); ++i) {
    CrossRouterStage::EntrySnapshot e;
    e.seq = r->U64();
    e.time = r->I64();
    e.tmpl = r->U32();
    e.router_key = r->U32();
    e.locs.resize(r->Count(4));
    for (core::LocationId& loc : e.locs) loc = r->U32();
    if (r->ok()) add(e);
  }
  return r->ok();
}

}  // namespace sld::pipeline
