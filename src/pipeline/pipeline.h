// ShardedPipeline: the deployment form of the stage graph (§4.2 online
// system at production scale).
//
// One ingest thread (the caller of Push) decodes/collects, resolves each
// record's router key, and deals records to N shard workers connected by
// BoundedQueues of record batches.  Each worker augments its records
// (signature match through the shared ConcurrentTemplateMatcher, location
// extraction) and runs the per-router stages (TemporalStage + RuleStage),
// emitting merge edges.  A single sequenced merge thread replays the
// shard outputs in global arrival order — an order queue carries the
// shard id of every sequence number — applies the edges to the one
// union-find (GroupTracker), runs the only globally-coupled pass
// (CrossRouterStage), and closes idle groups into events.
//
// Because the merge thread consumes messages in exactly the ingest order
// and every edge flows through one union-find, the event partition is
// bit-identical to the single-threaded StreamingDigester / batch Digester
// regardless of the shard count (tests/core/pipeline_threads_test.cc
// holds all three against each other).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/bounded_queue.h"
#include "core/digest.h"
#include "obs/registry.h"
#include "pipeline/matcher.h"
#include "pipeline/stages.h"
#include "pipeline/tracker.h"
#include "syslog/record.h"

namespace sld::ckpt {
class Writer;
class Reader;
}  // namespace sld::ckpt

namespace sld::pipeline {

struct PipelineOptions {
  core::DigestOptions digest;
  // Worker threads for the per-router stages (router_key % shards).
  std::size_t shards = 1;
  // Records per queue batch: one mutex round-trip per batch, not per
  // message, keeps the queues off the hot path.
  std::size_t batch_size = 256;
  // Batches buffered per queue before back-pressure reaches the ingest.
  std::size_t queue_capacity = 64;
  // Group lifecycle (see StreamingDigester): the defaults make the
  // pipeline a batch digester — nothing closes before Finish().
  TimeMs idle_close_ms = GroupTracker::kUnboundedMs;
  TimeMs max_group_age_ms = GroupTracker::kUnboundedMs;
  // Per-shard signature-match memo cache (see ShardMatchCache).  The
  // event partition is identical either way; disabling is for A/B
  // measurement and equivalence tests.
  bool use_match_cache = true;
  // Observability (may be null).  Each shard and the merge thread
  // register their own cells at thread start — DESIGN.md §9 lists the
  // series — so steady-state updates stay lock-free and allocation-free.
  // Must outlive the pipeline.
  obs::Registry* metrics = nullptr;
};

class ShardedPipeline {
 public:
  // Called on the merge thread for every event that closes before
  // Finish(); events closed by the final flush go through it too.
  using EventSink = std::function<void(core::DigestEvent)>;

  // `kb` must outlive the pipeline and may gain catch-all templates.
  ShardedPipeline(core::KnowledgeBase* kb, const core::LocationDict* dict,
                  PipelineOptions options = {});
  ~ShardedPipeline();

  ShardedPipeline(const ShardedPipeline&) = delete;
  ShardedPipeline& operator=(const ShardedPipeline&) = delete;

  // Install before the first Push.  With a sink, events are delivered as
  // they close and Finish() returns only counters.
  void SetEventSink(EventSink sink);

  // Feeds one record (timestamps non-decreasing; single producer thread).
  void Push(const syslog::SyslogRecord& rec);

  // Closes the stream, drains every stage, joins the threads, and returns
  // the digest (events sorted by score like the batch digester, unless a
  // sink consumed them).  Idempotent.
  core::DigestResult Finish();

  std::size_t shard_count() const noexcept { return shards_.size(); }

  // Blocks the calling (ingest) thread until the merge thread has
  // replayed every record pushed so far.  The queue mutexes plus the
  // quiesce mutex establish the happens-before needed to read every
  // stage's state from this thread afterwards; workers sit blocked on
  // their empty input queues meanwhile.
  void Quiesce();

  // Checkpointing (DESIGN.md §14).  SaveState quiesces, then writes the
  // canonical stage-graph state (state_io.h): snapshots are portable
  // across shard counts.  LoadState must run before the first Push on a
  // fresh pipeline; it re-partitions per-router state by router_key
  // modulo this pipeline's shard count.
  void SaveState(ckpt::Writer* w);
  bool LoadState(ckpt::Reader* r);

  // Open-group count (merge-thread state: exact after Quiesce/Finish,
  // approximate mid-stream).  The recovery bench sizes snapshots by it.
  std::size_t open_group_count() const noexcept {
    return tracker_.open_group_count();
  }

 private:
  struct ShardInput {
    std::size_t seq;
    std::uint32_t router_key;
    bool router_known;
    syslog::SyslogRecord rec;
  };
  struct ShardOutput {
    core::Augmented msg;
    std::vector<MergeEdge> edges;           // temporal + rule edges
    std::vector<std::uint64_t> fired_rules;
  };
  struct Shard {
    Shard(std::size_t capacity, const core::KnowledgeBase* kb,
          const core::LocationDict* dict)
        : in(capacity),
          out(capacity),
          temporal(kb->temporal_params, &kb->temporal_priors),
          rules(&kb->rules, kb->rule_params.window_ms, dict) {}
    BoundedQueue<std::vector<ShardInput>> in;
    BoundedQueue<std::vector<ShardOutput>> out;
    std::thread worker;
    // Per-router stage state, owned by the worker thread while running;
    // checkpointing reads it only after Quiesce() (the worker is then
    // parked on the empty input queue).
    TemporalStage temporal;
    RuleStage rules;
  };

  void RunShard(Shard& shard, std::size_t shard_id);
  void RunMerge();
  void FlushBatches();

  core::KnowledgeBase* kb_;
  const core::LocationDict* dict_;
  PipelineOptions options_;
  ConcurrentTemplateMatcher matcher_;
  core::RouterResolver resolver_;
  GroupTracker tracker_;
  // Merge-thread stage (hoisted so checkpoints can reach it).
  CrossRouterStage cross_;

  std::vector<std::unique_ptr<Shard>> shards_;
  // Shard id of every sequence number, in batches, in ingest order: the
  // merge thread's replay schedule.
  BoundedQueue<std::vector<std::uint32_t>> order_;
  std::thread merge_thread_;

  // Ingest-side pending batches (flushed every batch_size records).
  std::vector<std::vector<ShardInput>> pending_in_;
  std::vector<std::uint32_t> pending_order_;
  std::size_t seq_ = 0;

  // Quiesce rendezvous: the merge thread publishes how many records it
  // has replayed; Quiesce() waits for it to catch up with seq_.
  std::mutex quiesce_mutex_;
  std::condition_variable quiesce_cv_;
  std::size_t merged_count_ = 0;

  // Merge-thread state, read by Finish() only after the join.
  std::vector<core::DigestEvent> collected_;
  EventSink sink_;
  bool finished_ = false;
};

}  // namespace sld::pipeline
