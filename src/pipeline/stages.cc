#include "pipeline/stages.h"

namespace sld::pipeline {

void TemporalStage::Feed(const core::Augmented& msg,
                         std::vector<MergeEdge>* out) {
  const std::size_t group = grouper_.Feed(msg);
  const auto [it, fresh] = tail_.emplace(group, msg.raw_index);
  if (!fresh) {
    out->push_back({it->second, msg.raw_index});
    it->second = msg.raw_index;
  }
}

void RuleStage::Feed(const core::Augmented& msg, std::vector<MergeEdge>* out,
                     std::vector<std::uint64_t>* fired_rules) {
  std::deque<Entry>& window = windows_[msg.router_key];
  while (!window.empty() && msg.time - window.front().time > window_ms_) {
    window.pop_front();
  }
  for (const Entry& other : window) {
    if (other.tmpl == msg.tmpl) continue;
    if (!rules_->Has(msg.tmpl, other.tmpl)) continue;
    // Spatial match between any location pair of the two messages.
    bool matched = false;
    for (const core::LocationId la : msg.locs) {
      for (const core::LocationId lb : other.locs) {
        if (dict_->SpatiallyMatched(la, lb)) {
          matched = true;
          break;
        }
      }
      if (matched) break;
    }
    // Messages whose router is absent from the configs have no locations;
    // same router key is the best spatial evidence.
    if (msg.locs.empty() && other.locs.empty()) matched = true;
    if (!matched) continue;
    fired_rules->push_back(core::MiningStats::PairKey(msg.tmpl, other.tmpl));
    out->push_back({msg.raw_index, other.seq});
  }
  window.push_back({msg.raw_index, msg.time, msg.tmpl, msg.locs});
}

}  // namespace sld::pipeline
