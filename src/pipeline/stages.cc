#include "pipeline/stages.h"

namespace sld::pipeline {

void TemporalStage::Feed(const core::Augmented& msg,
                         std::vector<MergeEdge>* out) {
  const std::size_t group = grouper_.Feed(msg);
  const auto [it, fresh] = tail_.emplace(group, msg.raw_index);
  if (!fresh) {
    out->push_back({it->second, msg.raw_index});
    it->second = msg.raw_index;
  }
}

void RuleStage::Feed(const core::Augmented& msg, std::vector<MergeEdge>* out,
                     std::vector<std::uint64_t>* fired_rules) {
  std::deque<Entry>& window = windows_[msg.router_key];
  while (!window.empty() && msg.time - window.front().time > window_ms_) {
    window.pop_front();
  }
  for (const Entry& other : window) {
    if (other.tmpl == msg.tmpl) continue;
    if (!rules_->Has(msg.tmpl, other.tmpl)) continue;
    // Spatial match between any location pair of the two messages.
    bool matched = false;
    for (const core::LocationId la : msg.locs) {
      for (const core::LocationId lb : other.locs) {
        if (dict_->SpatiallyMatched(la, lb)) {
          matched = true;
          break;
        }
      }
      if (matched) break;
    }
    // Messages whose router is absent from the configs have no locations;
    // same router key is the best spatial evidence.
    if (msg.locs.empty() && other.locs.empty()) matched = true;
    if (!matched) continue;
    fired_rules->push_back(core::MiningStats::PairKey(msg.tmpl, other.tmpl));
    out->push_back({msg.raw_index, other.seq});
  }
  window.push_back({msg.raw_index, msg.time, msg.tmpl, msg.locs});
}

void TemporalStage::ExportState(std::vector<ChainSnapshot>* out) const {
  std::vector<core::TemporalGrouper::ChainState> chains;
  grouper_.ExportChains(&chains);
  out->reserve(out->size() + chains.size());
  for (const core::TemporalGrouper::ChainState& chain : chains) {
    // Every live chain has a tail: Feed records one the moment the
    // grouper returns a group id.
    ChainSnapshot snap;
    snap.chain = chain;
    snap.tail_seq = tail_.at(chain.group);
    out->push_back(std::move(snap));
  }
}

void TemporalStage::ImportChain(const ChainSnapshot& snap) {
  const std::size_t group = grouper_.ImportChain(snap.chain);
  tail_.emplace(group, static_cast<std::size_t>(snap.tail_seq));
}

void RuleStage::ExportState(std::vector<WindowSnapshot>* out) const {
  for (const auto& [router_key, window] : windows_) {
    if (window.empty()) continue;  // fully evicted: no behavioral state
    WindowSnapshot snap;
    snap.router_key = router_key;
    snap.entries.reserve(window.size());
    for (const Entry& e : window) {
      snap.entries.push_back({e.seq, e.time, e.tmpl, e.locs});
    }
    out->push_back(std::move(snap));
  }
}

void RuleStage::ImportWindow(const WindowSnapshot& snap) {
  std::deque<Entry>& window = windows_[snap.router_key];
  for (const EntrySnapshot& e : snap.entries) {
    window.push_back(
        {static_cast<std::size_t>(e.seq), e.time, e.tmpl, e.locs});
  }
}

}  // namespace sld::pipeline
