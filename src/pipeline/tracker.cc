#include "pipeline/tracker.h"

#include <algorithm>
#include <mutex>

#include "ckpt/codec.h"
#include "obs/registry.h"

namespace sld::pipeline {
namespace {

// Sweep for idle groups at most this often (stream-clock time).
constexpr TimeMs kSweepInterval = 30 * kMsPerSecond;

}  // namespace

GroupTracker::GroupTracker(const core::KnowledgeBase* kb,
                           const core::LocationDict* dict,
                           TimeMs idle_close_ms,
                           TimeMs max_group_age_ms,
                           std::shared_mutex* kb_mutex)
    : kb_(kb),
      dict_(dict),
      idle_close_ms_(idle_close_ms),
      max_group_age_ms_(max_group_age_ms),
      kb_mutex_(kb_mutex) {}

void GroupTracker::BindMetrics(obs::Registry* reg) {
  cells_.open_groups =
      reg->AddGauge("tracker_open_groups", "groups not yet closed");
  cells_.open_messages = reg->AddGauge(
      "tracker_open_messages", "messages belonging to open groups");
  cells_.closed_idle = reg->AddCounter(
      "tracker_groups_closed_total", "groups closed, by reason",
      {{"reason", "idle"}});
  cells_.closed_max_age = reg->AddCounter(
      "tracker_groups_closed_total", "groups closed, by reason",
      {{"reason", "max_age"}});
  cells_.closed_flush = reg->AddCounter(
      "tracker_groups_closed_total", "groups closed, by reason",
      {{"reason", "flush"}});
  cells_.event_messages = reg->AddHistogram(
      "tracker_event_messages", "messages per closed event",
      obs::SizeBuckets());
  SyncGauges();
}

void GroupTracker::SyncGauges() noexcept {
  if (cells_.open_groups == nullptr) return;
  cells_.open_groups->Set(static_cast<std::int64_t>(groups_.size()));
  cells_.open_messages->Set(static_cast<std::int64_t>(open_messages_));
}

std::vector<core::DigestEvent> GroupTracker::Observe(TimeMs now) {
  std::vector<core::DigestEvent> events;
  if (now >= clock_ + kSweepInterval) {
    events = CloseIdle(now, /*flushing=*/false);
  }
  clock_ = std::max(clock_, now);
  return events;
}

void GroupTracker::Add(core::Augmented msg) {
  const std::size_t index = arena_.size();
  const std::size_t seq = msg.raw_index;
  const TimeMs t = msg.time;
  arena_.push_back(std::move(msg));
  closed_.push_back(false);
  uf_.Add();
  slot_[seq] = index;
  groups_[uf_.Find(index)] = {t, t};
  ++open_messages_;
  ++processed_;
  SyncGauges();

  if (arena_.size() > 4096 && arena_.size() > 4 * open_messages_) {
    CompactArena();
  }
}

void GroupTracker::MergeSlots(std::size_t a, std::size_t b) {
  const std::size_t ra = uf_.Find(a);
  const std::size_t rb = uf_.Find(b);
  if (ra == rb) return;
  const GroupMeta ma = groups_[ra];
  const GroupMeta mb = groups_[rb];
  groups_.erase(ra);
  groups_.erase(rb);
  const std::size_t merged = uf_.Union(ra, rb);
  groups_[merged] = {std::min(ma.first_time, mb.first_time),
                     std::max(ma.last_time, mb.last_time)};
}

void GroupTracker::ApplyEdges(const std::vector<MergeEdge>& edges) {
  for (const MergeEdge& e : edges) {
    const auto a = slot_.find(e.a);
    if (a == slot_.end()) continue;  // already emitted; starts anew
    const auto b = slot_.find(e.b);
    if (b == slot_.end()) continue;
    MergeSlots(a->second, b->second);
  }
}

bool GroupTracker::SameGroup(std::size_t seq_a, std::size_t seq_b) {
  const auto a = slot_.find(seq_a);
  if (a == slot_.end()) return false;
  const auto b = slot_.find(seq_b);
  if (b == slot_.end()) return false;
  return uf_.Connected(a->second, b->second);
}

void GroupTracker::Touch(std::size_t seq, TimeMs t) {
  const auto it = slot_.find(seq);
  if (it == slot_.end()) return;
  groups_[uf_.Find(it->second)].last_time = t;
}

void GroupTracker::NoteRules(const std::vector<std::uint64_t>& keys) {
  active_rules_.insert(keys.begin(), keys.end());
}

core::DigestEvent GroupTracker::BuildLocked(
    const std::vector<const core::Augmented*>& members) const {
  if (kb_mutex_ == nullptr) return core::BuildEvent(members, *kb_, *dict_);
  std::shared_lock lock(*kb_mutex_);
  return core::BuildEvent(members, *kb_, *dict_);
}

std::vector<core::DigestEvent> GroupTracker::CloseIdle(TimeMs now,
                                                       bool flushing) {
  std::vector<std::size_t> closing;
  for (const auto& [root, meta] : groups_) {
    const bool idle = now - meta.last_time > idle_close_ms_;
    const bool aged = now - meta.first_time > max_group_age_ms_;
    if (idle || aged) {
      closing.push_back(root);
      if (cells_.closed_idle != nullptr) {
        if (flushing) {
          cells_.closed_flush->Inc();
        } else if (idle) {
          cells_.closed_idle->Inc();
        } else {
          cells_.closed_max_age->Inc();
        }
      }
    }
  }
  if (closing.empty()) return {};

  // One arena scan (ascending sequence order, so score summation matches
  // the batch digester bit for bit) collects every closing group.
  std::unordered_map<std::size_t, std::vector<const core::Augmented*>>
      members;
  for (const std::size_t root : closing) members[root];
  for (std::size_t i = 0; i < arena_.size(); ++i) {
    if (closed_[i]) continue;
    const auto it = members.find(uf_.Find(i));
    if (it == members.end()) continue;
    it->second.push_back(&arena_[i]);
    closed_[i] = true;
    slot_.erase(arena_[i].raw_index);
    --open_messages_;
  }
  std::vector<core::DigestEvent> events;
  events.reserve(closing.size());
  for (const std::size_t root : closing) {
    if (!members[root].empty()) {
      if (cells_.event_messages != nullptr) {
        cells_.event_messages->Observe(
            static_cast<double>(members[root].size()));
      }
      events.push_back(BuildLocked(members[root]));
    }
    groups_.erase(root);
  }
  SyncGauges();
  // Start-time ties are broken by the first member's stream index — a
  // total order over groups that survives checkpoint/restore, where the
  // groups_ map is rebuilt and its iteration order (the old implicit
  // tiebreak) changes.
  std::sort(events.begin(), events.end(),
            [](const core::DigestEvent& a, const core::DigestEvent& b) {
              if (a.start != b.start) return a.start < b.start;
              return a.messages.front() < b.messages.front();
            });
  return events;
}

std::vector<core::DigestEvent> GroupTracker::Flush() {
  clock_ = INT64_MAX - idle_close_ms_ - 1;
  std::vector<core::DigestEvent> events =
      CloseIdle(INT64_MAX - 1, /*flushing=*/true);
  CompactArena();
  SyncGauges();
  return events;
}

void GroupTracker::CompactArena() {
  // Remap open messages into a fresh arena, preserving group structure.
  std::vector<core::Augmented> new_arena;
  new_arena.reserve(open_messages_);
  std::vector<std::size_t> remap(arena_.size(), SIZE_MAX);
  for (std::size_t i = 0; i < arena_.size(); ++i) {
    if (closed_[i]) continue;
    remap[i] = new_arena.size();
    new_arena.push_back(std::move(arena_[i]));
  }
  UnionFind new_uf(new_arena.size());
  // Reconstruct unions: connect every open message to its root's first
  // open representative.
  std::unordered_map<std::size_t, std::size_t> first_of_root;
  std::unordered_map<std::size_t, GroupMeta> new_groups;
  for (std::size_t i = 0; i < arena_.size(); ++i) {
    if (remap[i] == SIZE_MAX) continue;
    const std::size_t root = uf_.Find(i);
    const auto [it, inserted] = first_of_root.emplace(root, remap[i]);
    if (!inserted) new_uf.Union(it->second, remap[i]);
  }
  for (const auto& [root, meta] : groups_) {
    const auto it = first_of_root.find(root);
    if (it != first_of_root.end()) {
      new_groups[new_uf.Find(it->second)] = meta;
    }
  }
  arena_ = std::move(new_arena);
  closed_.assign(arena_.size(), false);
  uf_ = std::move(new_uf);
  groups_ = std::move(new_groups);
  slot_.clear();
  for (std::size_t i = 0; i < arena_.size(); ++i) {
    slot_[arena_[i].raw_index] = i;
  }
}

namespace {

void SaveAugmented(const core::Augmented& msg, ckpt::Writer* w) {
  w->I64(msg.time);
  w->U64(msg.raw_index);
  w->U32(msg.tmpl);
  w->U32(msg.router_key);
  w->U8(msg.router_known ? 1 : 0);
  w->U64(msg.locs.size());
  for (const core::LocationId loc : msg.locs) w->U32(loc);
  w->U32(msg.primary);
}

core::Augmented LoadAugmented(ckpt::Reader* r) {
  core::Augmented msg;
  msg.time = r->I64();
  msg.raw_index = r->U64();
  msg.tmpl = r->U32();
  msg.router_key = r->U32();
  msg.router_known = r->U8() != 0;
  msg.locs.resize(r->Count(4));
  for (core::LocationId& loc : msg.locs) loc = r->U32();
  msg.primary = r->U32();
  return msg;
}

}  // namespace

void GroupTracker::SaveState(ckpt::Writer* w) {
  // After compaction the arena holds exactly the open messages in
  // sequence order, closed_ is all-false, and slot_ is the identity —
  // none of those need bytes in the snapshot.
  CompactArena();
  w->U64(arena_.size());
  for (const core::Augmented& msg : arena_) SaveAugmented(msg, w);
  for (const std::size_t p : uf_.parents()) w->U64(p);
  for (const std::size_t s : uf_.sizes()) w->U64(s);
  w->U64(groups_.size());
  // Group metadata sorted by root for a canonical byte stream.
  std::vector<std::pair<std::size_t, GroupMeta>> metas(groups_.begin(),
                                                       groups_.end());
  std::sort(metas.begin(), metas.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [root, meta] : metas) {
    w->U64(root);
    w->I64(meta.first_time);
    w->I64(meta.last_time);
  }
  std::vector<std::uint64_t> rules(active_rules_.begin(),
                                   active_rules_.end());
  std::sort(rules.begin(), rules.end());
  w->U64(rules.size());
  for (const std::uint64_t key : rules) w->U64(key);
  w->U64(processed_);
  w->I64(clock_);
}

bool GroupTracker::LoadState(ckpt::Reader* r) {
  const std::uint64_t n = r->Count(8);
  arena_.clear();
  arena_.reserve(n);
  slot_.clear();
  for (std::uint64_t i = 0; i < n && r->ok(); ++i) {
    arena_.push_back(LoadAugmented(r));
    slot_[arena_.back().raw_index] = i;
  }
  closed_.assign(arena_.size(), false);
  std::vector<std::size_t> parents(arena_.size());
  for (std::size_t& p : parents) p = r->U64();
  std::vector<std::size_t> sizes(arena_.size());
  for (std::size_t& s : sizes) s = r->U64();
  uf_.Rebuild(std::move(parents), std::move(sizes));
  groups_.clear();
  const std::uint64_t n_groups = r->Count(24);
  for (std::uint64_t i = 0; i < n_groups && r->ok(); ++i) {
    const std::size_t root = r->U64();
    GroupMeta meta;
    meta.first_time = r->I64();
    meta.last_time = r->I64();
    groups_[root] = meta;
  }
  active_rules_.clear();
  const std::uint64_t n_rules = r->Count(8);
  for (std::uint64_t i = 0; i < n_rules && r->ok(); ++i) {
    active_rules_.insert(r->U64());
  }
  open_messages_ = arena_.size();
  processed_ = r->U64();
  clock_ = r->I64();
  if (!r->ok()) return false;
  // Sanity: every union-find index must be in range and every group root
  // must exist; refuse rather than corrupt downstream state.
  for (const std::size_t p : uf_.parents()) {
    if (p >= arena_.size()) return false;
  }
  for (const auto& entry : groups_) {
    if (entry.first >= arena_.size()) return false;
  }
  SyncGauges();
  return true;
}

}  // namespace sld::pipeline
