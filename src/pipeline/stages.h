// The staged grouping pipeline (§4.2): the three grouping passes of the
// online system expressed as composable, single-responsibility stage types
// over the augmented stream.
//
// Every stage consumes messages in timestamp order and emits *merge
// edges* — pairs of message sequence numbers (raw indices) that belong to
// the same network event.  All edges flow into one union-find (the
// GroupTracker), so the final partition is independent of which stage
// found an edge first — the §4.2.3 order-independence property the seed
// digesters relied on, now load-bearing for sharding:
//
//   decode/collect -> signature match + augment -> per-router shard
//     (TemporalStage + RuleStage: only touch per-router state)
//   -> sequenced merge (CrossRouterStage + GroupTracker: the only
//      globally-coupled pass, §4.2.3's 1-second window)
//   -> prioritize / present.
//
// TemporalStage and RuleStage key every piece of state by (template,
// location, router) or by router alone, so a shard that owns a subset of
// routers and sees its messages in global timestamp order produces exactly
// the edges the single-threaded digester would.  CrossRouterStage compares
// messages across routers and therefore runs on the one sequenced merge
// thread.  Stages keep their own bounded copies of the window fields they
// need, so they never dangle into an arena that compacts underneath them.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "core/augment.h"
#include "core/rules/rules.h"
#include "core/temporal/temporal.h"

namespace sld::pipeline {

// A merge instruction: the messages with sequence numbers (raw indices)
// `a` and `b` belong to the same event.
struct MergeEdge {
  std::size_t a = 0;
  std::size_t b = 0;
};

// Pass 1 (§4.2.1): same template at the same location recurring at its
// learned period joins the previous message of the chain.  Per-router
// state only (the temporal key includes the router), so shardable.
class TemporalStage {
 public:
  TemporalStage(core::TemporalParams params,
                const core::TemporalPriors* priors)
      : grouper_(params, priors) {}

  // Appends the chain edge (previous tail, msg) when `msg` continues an
  // existing temporal chain.  The tail may already have been emitted by
  // the tracker under a short idle horizon; the edge applier skips those.
  void Feed(const core::Augmented& msg, std::vector<MergeEdge>* out);

  // Checkpointing (DESIGN.md §14): every live chain with the sequence
  // number of its latest message.  Exports are unordered; the caller
  // sorts by key for a canonical, shard-count-independent layout.
  struct ChainSnapshot {
    core::TemporalGrouper::ChainState chain;
    std::uint64_t tail_seq = 0;
  };
  void ExportState(std::vector<ChainSnapshot>* out) const;
  void ImportChain(const ChainSnapshot& snap);

 private:
  core::TemporalGrouper grouper_;
  // temporal group id -> sequence number of the chain's latest message.
  std::unordered_map<std::size_t, std::size_t> tail_;
};

// Pass 2 (§4.2.2): different templates on the same router related by a
// mined association rule, spatially matched, within the mining window W.
// Per-router sliding windows, so shardable.
class RuleStage {
 public:
  RuleStage(const core::RuleBase* rules, TimeMs window_ms,
            const core::LocationDict* dict)
      : rules_(rules), window_ms_(window_ms), dict_(dict) {}

  // Appends an edge per rule hit and the fired rule's pair key.
  void Feed(const core::Augmented& msg, std::vector<MergeEdge>* out,
            std::vector<std::uint64_t>* fired_rules);

  // Checkpointing: one router's sliding window, entries oldest-first.
  struct EntrySnapshot {
    std::uint64_t seq = 0;
    TimeMs time = 0;
    core::TemplateId tmpl = 0;
    std::vector<core::LocationId> locs;
  };
  struct WindowSnapshot {
    std::uint32_t router_key = 0;
    std::vector<EntrySnapshot> entries;
  };
  void ExportState(std::vector<WindowSnapshot>* out) const;
  void ImportWindow(const WindowSnapshot& snap);

 private:
  struct Entry {
    std::size_t seq;
    TimeMs time;
    core::TemplateId tmpl;
    std::vector<core::LocationId> locs;
  };

  const core::RuleBase* rules_;
  TimeMs window_ms_;
  const core::LocationDict* dict_;
  std::unordered_map<std::uint32_t, std::deque<Entry>> windows_;
};

// Pass 3 (§4.2.3): the same template on connected locations of different
// routers at "almost the same time" (the 1-second window).  This is the
// only stage whose window spans routers, so it runs on the sequenced
// merge thread, after the shard edges for the message have been applied.
class CrossRouterStage {
 public:
  CrossRouterStage(const core::LocationDict* dict, TimeMs window_ms)
      : dict_(dict), window_ms_(window_ms) {}

  // `same_group(a, b)` lets the stage skip the location scan for pairs the
  // tracker already holds together (an optimization, not a correctness
  // requirement: re-merging a joined pair is a no-op).
  template <typename SameGroupFn>
  void Feed(const core::Augmented& msg, SameGroupFn&& same_group,
            std::vector<MergeEdge>* out) {
    while (!window_.empty() &&
           msg.time - window_.front().time > window_ms_) {
      window_.pop_front();
    }
    for (const Entry& other : window_) {
      if (other.tmpl != msg.tmpl) continue;
      if (other.router_key == msg.router_key) continue;
      if (same_group(msg.raw_index, other.seq)) continue;
      bool connected = false;
      for (const core::LocationId la : msg.locs) {
        for (const core::LocationId lb : other.locs) {
          if (dict_->Connected(la, lb)) {
            connected = true;
            break;
          }
        }
        if (connected) break;
      }
      if (connected) out->push_back({msg.raw_index, other.seq});
    }
    window_.push_back(
        {msg.raw_index, msg.time, msg.tmpl, msg.router_key, msg.locs});
  }

  // Checkpointing: the cross-router window in deque (= global time)
  // order.  This stage lives on the one merge thread, so its snapshot is
  // already canonical.
  struct EntrySnapshot {
    std::uint64_t seq = 0;
    TimeMs time = 0;
    core::TemplateId tmpl = 0;
    std::uint32_t router_key = 0;
    std::vector<core::LocationId> locs;
  };
  void ExportState(std::vector<EntrySnapshot>* out) const {
    out->reserve(out->size() + window_.size());
    for (const Entry& e : window_) {
      out->push_back({e.seq, e.time, e.tmpl, e.router_key, e.locs});
    }
  }
  void ImportEntry(const EntrySnapshot& snap) {
    window_.push_back({static_cast<std::size_t>(snap.seq), snap.time,
                       snap.tmpl, snap.router_key, snap.locs});
  }

 private:
  struct Entry {
    std::size_t seq;
    TimeMs time;
    core::TemplateId tmpl;
    std::uint32_t router_key;
    std::vector<core::LocationId> locs;
  };

  const core::LocationDict* dict_;
  TimeMs window_ms_;
  std::deque<Entry> window_;
};

}  // namespace sld::pipeline
